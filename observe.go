package bgperf

import "bgperf/internal/obs"

// Observability types, re-exported from the instrumentation subsystem. See
// WithObserver for attaching them to solver and simulator calls.
type (
	// Observer receives instrumentation events from the solver stack; all
	// methods may be called concurrently and must be cheap.
	Observer = obs.Observer
	// Diagnostics is the standard Observer: a concurrency-safe collector
	// aggregating stage timings, convergence traces, simulator counters,
	// MAP-fit diagnostics, and workspace pool statistics. FlushJSON writes
	// the machine-readable report, WriteSummary a human-readable summary.
	Diagnostics = obs.Diagnostics
	// DiagReport is the snapshot Diagnostics.Report returns and FlushJSON
	// marshals.
	DiagReport = obs.Report
	// Stage identifies one stage of an analytic solve.
	Stage = obs.Stage
	// WorkspaceStats counts solver buffer-pool hits and misses.
	WorkspaceStats = obs.WorkspaceStats
	// SimCounters are the event counts of one simulator run.
	SimCounters = obs.SimCounters
	// FitDiag compares a MAP fit's achieved descriptors to its targets.
	FitDiag = obs.FitDiag
)

// Solver stages, in execution order.
const (
	StageBuild    = obs.StageBuild
	StageRSolve   = obs.StageRSolve
	StageBoundary = obs.StageBoundary
	StageMetrics  = obs.StageMetrics
)

// NewDiagnostics returns an empty Diagnostics collector, ready to pass to
// WithObserver (one collector may serve many concurrent calls).
func NewDiagnostics() *Diagnostics { return obs.NewDiagnostics() }
