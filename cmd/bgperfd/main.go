// Command bgperfd serves the paper's analytic model as a long-running
// HTTP/JSON daemon: a solver-as-a-service front-end with an LRU solve
// cache, singleflight request coalescing, per-request deadlines, and
// graceful draining on SIGTERM/SIGINT. Opt-in layers turn one process
// into a deployable tier: a persistent disk cache (-cache-dir), an
// admission gate (-max-inflight), and cluster mode (-peers/-self) —
// see docs/OPERATIONS.md for the handbook.
//
// Usage:
//
//	bgperfd -addr :8377
//	bgperfd -addr :8377 -cache-entries 8192 -cache-bytes 134217728 \
//	        -request-timeout 10s -workers 8 -drain-timeout 15s
//	bgperfd -addr :8377 -cache-dir /var/lib/bgperf -max-inflight 64 \
//	        -self host1:8377 -peers host1:8377,host2:8377,host3:8377
//
// Endpoints (see docs/API.md for schemas and examples):
//
//	POST /v1/solve            one parameter point → steady-state metrics
//	POST /v1/sweep            a batch of points, fanned out over the worker pool
//	                          (NDJSON-streamed under Accept: application/x-ndjson)
//	POST /v1/optimize         capacity plan: max p / X / α under a foreground SLO
//	POST /v1/plan-from-trace  NDJSON trace upload → MMPP(2) fit → capacity plan
//	GET  /healthz             200 while serving, 503 once draining
//	GET  /clusterz            cluster membership table (or {"enabled": false})
//	GET  /metrics             JSON snapshot: serve counters + solver diagnostics
//	GET  /debug/vars          process-wide expvar counters
//
// A cached or coalesced point never re-invokes the QBD solver, the daemon's
// metrics JSON for a point is byte-identical to `bgperf solve -json` for
// the same configuration, and its plan JSON is byte-identical to
// `bgperf plan -json`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bgperf/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bgperfd:", err)
		os.Exit(1)
	}
}

// run parses flags, starts the daemon, and blocks until a signal drains it.
func run(args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("bgperfd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8377", "listen address")
		cacheEntries = fs.Int("cache-entries", serve.DefaultCacheEntries, "solve cache entry bound (negative disables caching)")
		cacheBytes   = fs.Int64("cache-bytes", serve.DefaultCacheBytes, "solve cache byte budget (negative removes the bound)")
		reqTimeout   = fs.Duration("request-timeout", serve.DefaultRequestTimeout, "per-request solve deadline")
		workers      = fs.Int("workers", 0, "sweep fan-out workers (0 = one per core)")
		drainTimeout = fs.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on shutdown")
		cacheDir     = fs.String("cache-dir", "", "persistent disk-cache directory (empty disables the disk tier)")
		diskBytes    = fs.Int64("disk-cache-bytes", 0, "disk-cache size bound (0 = 256 MiB default, negative removes the bound)")
		maxInFlight  = fs.Int("max-inflight", 0, "admission gate: max concurrent requests (0 disables shedding)")
		maxQueue     = fs.Int("max-queue", 0, "admission gate wait-queue depth (0 = 2 × max-inflight)")
		self         = fs.String("self", "", "this daemon's advertised host:port in cluster mode")
		peers        = fs.String("peers", "", "comma-separated cluster membership, host:port each, including -self (empty = single node)")
		healthIvl    = fs.Duration("health-interval", 0, "cluster health-probe period (0 = 2s default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	s, err := serve.New(serve.Options{
		CacheEntries:   *cacheEntries,
		CacheBytes:     *cacheBytes,
		RequestTimeout: *reqTimeout,
		Workers:        *workers,
		CacheDir:       *cacheDir,
		DiskCacheBytes: *diskBytes,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		Self:           *self,
		Peers:          peerList,
		HealthInterval: *healthIvl,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(logw, "bgperfd: listening on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure to bind or serve.
		return err
	case <-ctx.Done():
	}

	// Drain: stop advertising health, reject new solve work with 503, and
	// give in-flight requests the grace period before closing the listener.
	fmt.Fprintln(logw, "bgperfd: signal received, draining")
	s.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(logw, "bgperfd: drained, exiting")
	return nil
}
