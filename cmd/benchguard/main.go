// Command benchguard compares a `go test -bench` output against the budgets
// recorded in a BENCH_*.json snapshot and fails when any guarded benchmark
// regresses beyond the allowed slack.
//
//	go test -run=NONE -bench='BenchmarkScalability|BenchmarkValidation' \
//	    -benchmem -benchtime=3x -count=5 . > bench_output.txt
//	go run ./cmd/benchguard -bench bench_output.txt \
//	    -budget BENCH_PR6.json -budget BENCH_PR7.json
//
// The budget for each benchmark is its "after.ns_op" value in the snapshot;
// a run passes while measured-min ns/op <= budget × slack (default 1.25, i.e.
// a >25% regression fails). With -count > 1 the guard takes the minimum over
// repetitions, which is the standard way to strip scheduler and frequency
// noise from wall-clock benchmarks on shared machines. Benchmarks present in
// only one of the two inputs are reported but never fail the run, so the
// snapshot can guard a subset of the suite.
//
// -budget repeats: later snapshots override earlier ones per benchmark name,
// so stacked PR snapshots compose (each PR's file re-budgets the benchmarks
// it touched and leaves the rest to older snapshots). With no -budget flags
// the guard loads every BENCH_PR*.json in the working directory, oldest
// first.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// snapshot mirrors the BENCH_*.json layout (only the fields the guard reads).
type snapshot struct {
	Benchmarks []struct {
		Name  string `json:"name"`
		After struct {
			NsOp float64 `json:"ns_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

// parseBench extracts min ns/op per benchmark name from `go test -bench`
// output, stripping the -GOMAXPROCS suffix so names match the snapshot.
func parseBench(r io.Reader) (map[string]float64, error) {
	mins := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines: Name  N  ns/op-value "ns/op" [more pairs...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchguard: bad ns/op on line %q: %w", sc.Text(), err)
		}
		if cur, ok := mins[name]; !ok || ns < cur {
			mins[name] = ns
		}
	}
	return mins, sc.Err()
}

// budgetList collects repeated -budget flags.
type budgetList []string

func (b *budgetList) String() string     { return strings.Join(*b, ",") }
func (b *budgetList) Set(s string) error { *b = append(*b, s); return nil }

func main() {
	benchPath := flag.String("bench", "", "go test -bench output file (default stdin)")
	var budgetPaths budgetList
	flag.Var(&budgetPaths, "budget", "benchmark snapshot with after.ns_op budgets (repeatable; later files override; default all BENCH_PR*.json)")
	slack := flag.Float64("slack", 1.25, "allowed ratio of measured to budget ns/op before failing")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *benchPath != "" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(budgetPaths) == 0 {
		// Lexical sort puts PR snapshots oldest-first (single-digit PR
		// numbers), so newer files override as documented.
		matches, err := filepath.Glob("BENCH_PR*.json")
		if err != nil || len(matches) == 0 {
			fatal(fmt.Errorf("benchguard: no -budget flags and no BENCH_PR*.json in the working directory"))
		}
		sort.Strings(matches)
		budgetPaths = matches
	}

	budgets := make(map[string]float64)
	for _, path := range budgetPaths {
		raw, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		var snap snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			fatal(fmt.Errorf("benchguard: parsing %s: %w", path, err))
		}
		for _, b := range snap.Benchmarks {
			if b.After.NsOp > 0 {
				budgets[b.Name] = b.After.NsOp
			}
		}
	}
	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := 0
	for _, name := range names {
		got, ok := measured[name]
		if !ok {
			fmt.Printf("SKIP %s: not in bench output\n", name)
			continue
		}
		budget := budgets[name]
		ratio := got / budget
		status := "ok  "
		if ratio > *slack {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s %s: %.0f ns/op vs budget %.0f (ratio %.2f, limit %.2f)\n",
			status, name, got, budget, ratio, *slack)
	}
	for name := range measured {
		if _, ok := budgets[name]; !ok {
			fmt.Printf("info %s: measured %.0f ns/op (no budget)\n", name, measured[name])
		}
	}
	if failed > 0 {
		fatal(fmt.Errorf("benchguard: %d benchmark(s) regressed beyond %.0f%% of budget", failed, (*slack-1)*100))
	}
	fmt.Println("benchguard: all guarded benchmarks within budget")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
