package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bgperf/internal/trace"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestNoSubcommand(t *testing.T) {
	if _, err := runCmd(t); err == nil {
		t.Error("missing subcommand accepted")
	}
	if _, err := runCmd(t, "bogus"); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestSolveCommand(t *testing.T) {
	out, err := runCmd(t, "solve", "-workload", "softdev", "-util", "0.3", "-p", "0.6")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fg queue length", "bg completion rate", "fg-util 0.3"} {
		if !strings.Contains(out, want) {
			t.Errorf("solve output missing %q:\n%s", want, out)
		}
	}
}

func TestSolveNativeLoad(t *testing.T) {
	out, err := runCmd(t, "solve", "-workload", "email")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fg-util 0.08") {
		t.Errorf("native load not used:\n%s", out)
	}
}

func TestSolvePerPeriodPolicy(t *testing.T) {
	out, err := runCmd(t, "solve", "-workload", "poisson", "-util", "0.4", "-policy", "per-period")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "per-period") {
		t.Errorf("policy not reflected:\n%s", out)
	}
}

func TestSolveErrors(t *testing.T) {
	tests := [][]string{
		{"solve", "-workload", "nope"},
		{"solve", "-policy", "sometimes"},
		{"solve", "-idlemult", "-1"},
		{"solve", "-workload", "email", "-util", "2"},
	}
	for _, args := range tests {
		if _, err := runCmd(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestPlanCommand(t *testing.T) {
	out, err := runCmd(t, "plan", "-workload", "softdev", "-util", "0.3", "-slo-qlen", "4.2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"max sustainable p", "first infeasible p", "sensitivity:", "fg queue length"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q:\n%s", want, out)
		}
	}
}

func TestPlanJSON(t *testing.T) {
	out, err := runCmd(t, "plan", "-workload", "softdev", "-util", "0.3", "-slo-qlen", "4.2", "-var", "x", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Var     string  `json:"var"`
		Value   float64 `json:"value"`
		AtCap   bool    `json:"atCap"`
		Solves  int     `json:"solves"`
		Metrics struct {
			QLenFG float64 `json:"qlenFG"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid plan JSON: %v\n%s", err, out)
	}
	if rep.Var != "x" || rep.Solves == 0 || rep.Metrics.QLenFG > 4.2 {
		t.Errorf("unexpected plan report: %+v", rep)
	}
}

func TestPlanInfeasible(t *testing.T) {
	_, err := runCmd(t, "plan", "-workload", "softdev", "-util", "0.3", "-slo-qlen", "0.001")
	if err == nil || !strings.Contains(err.Error(), "infeasible") {
		t.Errorf("infeasible SLO not reported: %v", err)
	}
}

func TestPlanTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.ndjson")
	m, err := workloadByName("email")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := trace.Generate(m, 2000, 1).WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCmd(t, "plan", "-trace", path, "-util", "0.3", "-slo-qlen", "1e9")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fitted MMPP2 from 2000 trace samples", "at the search cap"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan -trace output missing %q:\n%s", want, out)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	dir := t.TempDir()
	short := filepath.Join(dir, "short.ndjson")
	if err := os.WriteFile(short, []byte("{\"interarrival\": 50}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tests := [][]string{
		{"plan", "-workload", "softdev"},                              // no SLO set
		{"plan", "-workload", "nope", "-slo-qlen", "5"},               // unknown workload
		{"plan", "-slo-qlen", "5", "-var", "q"},                       // unknown variable
		{"plan", "-slo-qlen", "5", "-var", "alpha", "-idlescv", "4"},  // α-search needs exponential idle
		{"plan", "-slo-qlen", "5", "-tol", "-1"},                      // bad tolerance
		{"plan", "-slo-qlen", "5", "-maxiter", "-3"},                  // bad iteration bound
		{"plan", "-slo-qlen", "5", "-trace", filepath.Join(dir, "x")}, // missing trace file
		{"plan", "-slo-qlen", "5", "-trace", short},                   // too few samples to fit
		{"plan", "-slo-qlen", "5", "-idlemult", "0"},                  // explicit zero idle mult
	}
	for _, args := range tests {
		if _, err := runCmd(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestMultiDiagAndScheme(t *testing.T) {
	diagPath := filepath.Join(t.TempDir(), "multi-diag.json")
	out, err := runCmd(t, "multi", "-workload", "softdev", "-util", "0.2", "-scheme", "logarithmic", "-diag", diagPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "diagnostics") {
		t.Errorf("multi -diag output missing summary:\n%s", out)
	}
	if _, err := os.Stat(diagPath); err != nil {
		t.Errorf("diagnostics file not written: %v", err)
	}
	if _, err := runCmd(t, "multi", "-scheme", "bogus"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSimCommand(t *testing.T) {
	out, err := runCmd(t, "sim", "-workload", "poisson", "-util", "0.4", "-p", "0.5", "-time", "1e6", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"simulated", "fg arrivals", "qlen 95% half-width"} {
		if !strings.Contains(out, want) {
			t.Errorf("sim output missing %q:\n%s", want, out)
		}
	}
}

func TestSimDeterministicIdle(t *testing.T) {
	if _, err := runCmd(t, "sim", "-workload", "poisson", "-util", "0.4", "-time", "1e5", "-detidle"); err != nil {
		t.Fatal(err)
	}
}

func TestTraceCommand(t *testing.T) {
	dir := t.TempDir()
	dest := filepath.Join(dir, "trace.csv")
	out, err := runCmd(t, "trace", "-workload", "useraccounts", "-n", "5000", "-out", dest)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sample ACF") {
		t.Errorf("trace output missing stats:\n%s", out)
	}
	data, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 5001 { // header + rows
		t.Errorf("trace file has %d lines, want 5001", lines)
	}
}

func TestTraceErrors(t *testing.T) {
	if _, err := runCmd(t, "trace", "-n", "0"); err == nil {
		t.Error("zero-length trace accepted")
	}
	if _, err := runCmd(t, "trace", "-workload", "zzz"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFitCommand(t *testing.T) {
	out, err := runCmd(t, "fit", "-rate", "0.01", "-scv", "30", "-decay", "0.99")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MMPP2 fit") || !strings.Contains(out, "achieved") {
		t.Errorf("fit output incomplete:\n%s", out)
	}
}

func TestFitInfeasible(t *testing.T) {
	if _, err := runCmd(t, "fit", "-scv", "0.5"); err == nil {
		t.Error("infeasible fit accepted")
	}
}

func TestACFCommand(t *testing.T) {
	out, err := runCmd(t, "acf", "-workload", "email-ipp", "-lags", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rate=") || len(strings.Split(strings.TrimSpace(out), "\n")) != 6 {
		t.Errorf("acf output unexpected:\n%s", out)
	}
}

func TestACFErrors(t *testing.T) {
	if _, err := runCmd(t, "acf", "-lags", "0"); err == nil {
		t.Error("zero lags accepted")
	}
}

func TestWorkloadByNameAll(t *testing.T) {
	for _, name := range []string{"email", "softdev", "useraccounts", "email-lowacf", "email-ipp", "poisson", "Email", "SOFTDEV"} {
		if _, err := workloadByName(name); err != nil {
			t.Errorf("workload %q: %v", name, err)
		}
	}
}

func TestMultiCommand(t *testing.T) {
	out, err := runCmd(t, "multi", "-workload", "softdev", "-util", "0.2", "-p1", "0.3", "-p2", "0.3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"class-1 completion", "class-2 completion", "fg queue length"} {
		if !strings.Contains(out, want) {
			t.Errorf("multi output missing %q:\n%s", want, out)
		}
	}
}

func TestMultiErrors(t *testing.T) {
	if _, err := runCmd(t, "multi", "-p1", "0.8", "-p2", "0.8"); err == nil {
		t.Error("p1+p2 > 1 accepted")
	}
	if _, err := runCmd(t, "multi", "-idlemult", "0"); err == nil {
		t.Error("zero idlemult accepted")
	}
}

func TestTransientCommand(t *testing.T) {
	out, err := runCmd(t, "transient", "-workload", "poisson", "-util", "0.3", "-horizon", "100", "-points", "4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "warmup from an empty system") {
		t.Errorf("transient output unexpected:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 6 { // 2 headers + 4 rows
		t.Errorf("transient printed %d lines, want 6:\n%s", got, out)
	}
}

func TestTransientErrors(t *testing.T) {
	if _, err := runCmd(t, "transient", "-horizon", "-5"); err == nil {
		t.Error("negative horizon accepted")
	}
	if _, err := runCmd(t, "transient", "-maxlevel", "1"); err == nil {
		t.Error("tiny truncation accepted")
	}
}

func TestServiceSCVFlag(t *testing.T) {
	smooth, err := runCmd(t, "solve", "-workload", "poisson", "-util", "0.5", "-servicescv", "0.25")
	if err != nil {
		t.Fatal(err)
	}
	rough, err := runCmd(t, "solve", "-workload", "poisson", "-util", "0.5", "-servicescv", "4")
	if err != nil {
		t.Fatal(err)
	}
	if smooth == rough {
		t.Error("service SCV flag has no effect")
	}
	if _, err := runCmd(t, "solve", "-servicescv", "-1"); err == nil {
		t.Error("negative service SCV accepted")
	}
}

func TestIdleSCVFlag(t *testing.T) {
	expo, err := runCmd(t, "solve", "-workload", "poisson", "-util", "0.5", "-p", "0.6")
	if err != nil {
		t.Fatal(err)
	}
	erlang, err := runCmd(t, "solve", "-workload", "poisson", "-util", "0.5", "-p", "0.6", "-idlescv", "0.125")
	if err != nil {
		t.Fatal(err)
	}
	if expo == erlang {
		t.Error("idle SCV flag has no effect")
	}
	if _, err := runCmd(t, "solve", "-idlescv", "-2"); err == nil {
		t.Error("negative idle SCV accepted")
	}
}

func TestJSONOutput(t *testing.T) {
	out, err := runCmd(t, "solve", "-workload", "poisson", "-util", "0.4", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if m["qlenFG"] <= 0 || m["compBG"] <= 0 {
		t.Errorf("unexpected JSON metrics: %v", m)
	}
	simOut, err := runCmd(t, "sim", "-workload", "poisson", "-util", "0.4", "-time", "1e5", "-json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(simOut), &m); err != nil {
		t.Fatalf("invalid sim JSON: %v", err)
	}
}

func TestSolveTailOutput(t *testing.T) {
	out, err := runCmd(t, "solve", "-workload", "poisson", "-util", "0.5")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tail decay sp(R)", "fg qlen quantiles", "q95="} {
		if !strings.Contains(out, want) {
			t.Errorf("solve output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckCommand(t *testing.T) {
	out, err := runCmd(t, "check", "-n", "4", "-seed", "1", "-reps", "4")
	if err != nil {
		t.Fatalf("conformance check failed: %v\n%s", err, out)
	}
	if !strings.HasPrefix(out, "PASS:") {
		t.Errorf("check output missing PASS summary:\n%s", out)
	}

	jsonOut, err := runCmd(t, "check", "-n", "2", "-seed", "3", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Cases       int `json:"cases"`
		Comparisons int `json:"comparisons"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &rep); err != nil {
		t.Fatalf("invalid check JSON: %v", err)
	}
	if rep.Cases != 2 || rep.Comparisons != 10 {
		t.Errorf("check JSON reports %d cases, %d comparisons; want 2, 10 (5 paper metrics per case)", rep.Cases, rep.Comparisons)
	}

	diagPath := filepath.Join(t.TempDir(), "check-diag.json")
	out, err = runCmd(t, "check", "-n", "1", "-diag", diagPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sim runs") {
		t.Errorf("check diagnostics summary missing sim counters:\n%s", out)
	}
	if _, err := os.Stat(diagPath); err != nil {
		t.Errorf("diagnostics file not written: %v", err)
	}

	if _, err := runCmd(t, "check", "-n", "0"); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := runCmd(t, "check", "-reps", "1"); err == nil {
		t.Error("reps=1 accepted")
	}
}
