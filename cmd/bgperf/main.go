// Command bgperf solves, simulates, and characterizes the paper's
// foreground/background storage model from the command line.
//
// Usage:
//
//	bgperf solve -workload email -util 0.3 -p 0.3            # analytic metrics
//	bgperf plan  -workload email -util 0.3 -slo-qlen 5       # max sustainable p under an SLO
//	bgperf plan  -trace io.ndjson -slo-resp 50 -var alpha    # ingest → fit → project
//	bgperf sim   -workload softdev -util 0.5 -p 0.6 -time 2e8
//	bgperf sim   -workload email -util 0.2 -p 0.9 -reps 8 -workers 0  # parallel replications
//	bgperf trace -workload email -n 100000 -out trace.csv    # synthetic trace
//	bgperf fit   -rate 0.0133 -scv 100 -decay 0.999          # MMPP2 moment fit
//	bgperf acf   -workload useraccounts -lags 50             # analytic ACF
//	bgperf multi -workload softdev -util 0.2 -p1 0.25 -p2 0.5 # two BG priorities
//	bgperf transient -workload email -util 0.1 -horizon 500  # warmup trajectory
//	bgperf check -n 64 -seed 1                               # solver/simulator conformance
//
// Workloads: email, softdev, useraccounts (the paper's trace MMPPs), plus
// email-lowacf, email-ipp, poisson.
//
// Model parameters resolve through the same request struct the bgperfd
// daemon uses (internal/serve.SolveRequest), so a CLI invocation and the
// equivalent HTTP request always describe — and cache-key to — the same
// model, and `bgperf plan -json` is byte-identical to the daemon's
// /v1/optimize "plan" object.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bgperf"
	"bgperf/internal/arrival"
	"bgperf/internal/check"
	"bgperf/internal/core"
	"bgperf/internal/obs"
	"bgperf/internal/serve"
	"bgperf/internal/trace"
	"bgperf/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bgperf:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (solve | plan | sim | trace | fit | acf | multi | transient | check)")
	}
	switch args[0] {
	case "solve":
		return cmdSolve(args[1:], out)
	case "plan":
		return cmdPlan(args[1:], out)
	case "sim":
		return cmdSim(args[1:], out)
	case "trace":
		return cmdTrace(args[1:], out)
	case "fit":
		return cmdFit(args[1:], out)
	case "acf":
		return cmdACF(args[1:], out)
	case "multi":
		return cmdMulti(args[1:], out)
	case "transient":
		return cmdTransient(args[1:], out)
	case "check":
		return cmdCheck(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want solve | plan | sim | trace | fit | acf | multi | transient | check)", args[0])
	}
}

// workloadByName resolves a catalog workload.
func workloadByName(name string) (*arrival.MAP, error) {
	switch strings.ToLower(name) {
	case "email":
		return workload.Email()
	case "softdev", "software-development":
		return workload.SoftwareDevelopment()
	case "useraccounts", "user-accounts":
		return workload.UserAccounts()
	case "email-lowacf":
		return workload.EmailLowACF()
	case "email-ipp":
		return workload.EmailIPP()
	case "poisson":
		return workload.EmailPoisson()
	default:
		return nil, fmt.Errorf("unknown workload %q (want email | softdev | useraccounts | email-lowacf | email-ipp | poisson)", name)
	}
}

// modelFlags adds the flags shared by solve and sim.
type modelFlags struct {
	workload     *string
	util         *float64
	p            *float64
	buffer       *int
	idleMult     *float64
	policy       *string
	serviceSCV   *float64
	idleSCV      *float64
	modFactor    *float64
	admit        *string
	fgThreshold  *int
	deadlineRate *float64
}

func addModelFlags(fs *flag.FlagSet) modelFlags {
	return modelFlags{
		workload:     fs.String("workload", "email", "arrival workload (email | softdev | useraccounts | email-lowacf | email-ipp | poisson)"),
		util:         fs.Float64("util", 0, "foreground utilization to scale to (0 keeps the native trace load)"),
		p:            fs.Float64("p", 0.3, "probability a foreground completion spawns a background job"),
		buffer:       fs.Int("buffer", 5, "background buffer capacity"),
		idleMult:     fs.Float64("idlemult", 1, "mean idle wait in multiples of the 6 ms service time"),
		policy:       fs.String("policy", "per-job", "idle-wait policy (per-job | per-period)"),
		serviceSCV:   fs.Float64("servicescv", 1, "service-time SCV at the 6 ms mean (1: exponential; <1: Erlang; >1: hyperexponential)"),
		idleSCV:      fs.Float64("idlescv", 1, "idle-wait SCV at the chosen mean (1: exponential; <1: Erlang, approximating fixed firmware timers)"),
		modFactor:    fs.Float64("mod", 1, "capacity-modulation factor φ ∈ (0,1]: service rate while BG work is present (1 = no modulation)"),
		admit:        fs.String("admit", "all", "background admission policy (all | util-threshold | deadline)"),
		fgThreshold:  fs.Int("fgthreshold", 0, "util-threshold policy: admit BG only when at most this many FG jobs wait"),
		deadlineRate: fs.Float64("deadlinerate", 0, "deadline policy: renege rate δ per waiting background job"),
	}
}

// request lifts the flag values into the daemon's request vocabulary. The
// CLI guards -idlemult itself because its flag defaults to 1: an explicit 0
// is a user error here, whereas the zero value in a JSON body means "use
// the default".
func (f modelFlags) request() (serve.SolveRequest, error) {
	if *f.idleMult <= 0 {
		return serve.SolveRequest{}, fmt.Errorf("idlemult must be positive")
	}
	return serve.SolveRequest{
		Workload:     *f.workload,
		Utilization:  *f.util,
		BGProb:       *f.p,
		BGBuffer:     f.buffer,
		IdleMult:     *f.idleMult,
		Policy:       *f.policy,
		ServiceSCV:   *f.serviceSCV,
		IdleSCV:      *f.idleSCV,
		ModFactor:    *f.modFactor,
		BGAdmit:      *f.admit,
		FGThreshold:  *f.fgThreshold,
		DeadlineRate: *f.deadlineRate,
	}, nil
}

// build resolves the flags into a validated model configuration through the
// same serve.SolveRequest defaulting the bgperfd daemon applies, so a CLI
// invocation and the equivalent HTTP request describe the same model.
func (f modelFlags) build() (core.Config, error) {
	req, err := f.request()
	if err != nil {
		return core.Config{}, err
	}
	return req.Config()
}

// writeDiag writes the machine-readable diagnostics report to path and the
// human-readable convergence summary to out.
func writeDiag(path string, d *obs.Diagnostics, out io.Writer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.FlushJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "diagnostics (JSON report in %s):\n", path)
	return d.WriteSummary(out)
}

func printMetrics(out io.Writer, m core.Metrics) {
	fmt.Fprintf(out, "fg queue length      %12.6g\n", m.QLenFG)
	fmt.Fprintf(out, "fg response time ms  %12.6g\n", m.RespTimeFG)
	fmt.Fprintf(out, "fg delayed by bg     %12.6g\n", m.WaitPFG)
	fmt.Fprintf(out, "bg completion rate   %12.6g\n", m.CompBG)
	fmt.Fprintf(out, "bg queue length      %12.6g\n", m.QLenBG)
	fmt.Fprintf(out, "util fg/bg           %12.6g %.6g\n", m.UtilFG, m.UtilBG)
	fmt.Fprintf(out, "p(idle-wait)/p(empty)%12.6g %.6g\n", m.ProbIdleWait, m.ProbEmpty)
	fmt.Fprintf(out, "bg gen/drop rate     %12.6g %.6g\n", m.GenRateBG, m.DropRateBG)
}

// printTails appends tail descriptors to the solve output.
func printTails(out io.Writer, sol *core.Solution) {
	fmt.Fprintf(out, "fg qlen stddev       %12.6g\n", sol.FGQueueStdDev())
	fmt.Fprintf(out, "tail decay sp(R)     %12.6g\n", sol.TailDecayRate())
	qs := []float64{0.5, 0.95, 0.99}
	fmt.Fprintf(out, "fg qlen quantiles    ")
	for _, q := range qs {
		n, err := sol.FGQueueQuantile(q)
		if err != nil {
			fmt.Fprintf(out, "q%02.0f=err ", 100*q)
			continue
		}
		fmt.Fprintf(out, "q%02.0f=%d ", 100*q, n)
	}
	fmt.Fprintln(out)
}

func cmdSolve(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	mf := addModelFlags(fs)
	asJSON := fs.Bool("json", false, "emit the metrics as JSON")
	diagPath := fs.String("diag", "", "write a JSON diagnostics report (stage timings, convergence trace, workspace stats) to this file")
	schemeName := fs.String("scheme", "cyclic", "R iteration scheme: cyclic (default) or logarithmic (cross-check); metrics agree to 1e-12")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := bgperf.ParseRScheme(*schemeName)
	if err != nil {
		return err
	}
	cfg, err := mf.build()
	if err != nil {
		return err
	}
	model, err := bgperf.NewModel(cfg, bgperf.WithRScheme(scheme))
	if err != nil {
		return err
	}
	var diag *obs.Diagnostics
	if *diagPath != "" {
		diag = obs.NewDiagnostics()
	}
	sol, err := model.SolveObserved(diag)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sol.Metrics); err != nil {
			return err
		}
		if diag != nil {
			return writeDiag(*diagPath, diag, out)
		}
		return nil
	}
	idleMean := 0.0
	if cfg.IdleWait != nil {
		idleMean = cfg.IdleWait.Mean()
	} else if cfg.IdleRate > 0 {
		idleMean = 1 / cfg.IdleRate
	}
	fmt.Fprintf(out, "workload %s, fg-util %.4g, p %.3g, buffer %d, idle wait %.3g ms (%s)\n",
		*mf.workload, model.FGUtilization(), cfg.BGProb, cfg.BGBuffer, idleMean, cfg.IdlePolicy)
	printMetrics(out, sol.Metrics)
	printTails(out, sol)
	if diag != nil {
		return writeDiag(*diagPath, diag, out)
	}
	return nil
}

// cmdPlan runs the inverse solver: given a foreground SLO, it searches the
// largest sustainable value of one background knob (p, X, or α). With
// -trace it first fits an MMPP(2) to an uploaded NDJSON trace, mirroring
// the daemon's /v1/plan-from-trace; the -json report is byte-identical to
// the daemon's /v1/optimize "plan" object for the same parameters.
func cmdPlan(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	mf := addModelFlags(fs)
	var (
		sloQLen    = fs.Float64("slo-qlen", 0, "SLO: mean foreground queue length bound (0 = unset)")
		sloWaitP   = fs.Float64("slo-waitp", 0, "SLO: bound on the fraction of foreground arrivals delayed by background work (0 = unset)")
		sloResp    = fs.Float64("slo-resp", 0, "SLO: mean foreground response time bound in ms (0 = unset)")
		varName    = fs.String("var", "p", "decision variable: p (BG spawn probability), x (BG buffer), alpha (idle rate), or mod (minimum feasible modulation factor φ)")
		tol        = fs.Float64("tol", 0, "convergence tolerance of the continuous searches (0 = planner default)")
		maxIter    = fs.Int("maxiter", 0, "bisection iteration bound (0 = planner default)")
		tracePath  = fs.String("trace", "", "fit the arrival process from this NDJSON trace instead of -workload")
		workers    = fs.Int("workers", 0, "max goroutines for the sensitivity neighborhood (0 = all cores)")
		asJSON     = fs.Bool("json", false, "emit the plan report as JSON (byte-identical to the daemon's /v1/optimize plan object)")
		diagPath   = fs.String("diag", "", "write a JSON diagnostics report (stage timings across every search solve) to this file")
		schemeName = fs.String("scheme", "cyclic", "R iteration scheme: cyclic (default) or logarithmic")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := bgperf.ParseRScheme(*schemeName)
	if err != nil {
		return err
	}
	pv, err := bgperf.ParsePlanVar(*varName)
	if err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("workers must be >= 0")
	}
	req, err := mf.request()
	if err != nil {
		return err
	}
	var diag *obs.Diagnostics
	opts := []bgperf.Option{
		bgperf.WithPlanVar(pv),
		bgperf.WithRScheme(scheme),
		bgperf.WithWorkers(*workers),
	}
	if *tol != 0 {
		opts = append(opts, bgperf.WithTolerance(*tol))
	}
	if *maxIter != 0 {
		opts = append(opts, bgperf.WithMaxIter(*maxIter))
	}
	if *diagPath != "" {
		diag = obs.NewDiagnostics()
		opts = append(opts, bgperf.WithObserver(diag))
	}
	var cfg core.Config
	var fitted *arrival.MAP
	var fitSamples int
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		tr, err := bgperf.ReadTraceNDJSON(f)
		f.Close()
		if err != nil {
			return err
		}
		if fitted, err = bgperf.FitWorkloadFromTrace(tr); err != nil {
			return err
		}
		fitSamples = len(tr.Interarrivals)
		if cfg, err = req.ConfigWithArrival(fitted); err != nil {
			return err
		}
	} else if cfg, err = req.Config(); err != nil {
		return err
	}
	slo := bgperf.SLO{QLenFG: *sloQLen, WaitPFG: *sloWaitP, RespTimeFG: *sloResp}
	res, err := bgperf.Plan(cfg, slo, opts...)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
		if diag != nil {
			return writeDiag(*diagPath, diag, out)
		}
		return nil
	}
	if fitted != nil {
		fmt.Fprintf(out, "fitted MMPP2 from %d trace samples: rate=%.6g scv=%.6g acf1=%.6g\n",
			fitSamples, fitted.Rate(), fitted.SCV(), fitted.ACF(1))
	}
	frontier := "max sustainable"
	if pv == bgperf.PlanModFactor {
		// The φ search runs downward: its frontier is the deepest feasible
		// modulation, and the bracket (if any) lies below it.
		frontier = "min sustainable"
	}
	fmt.Fprintf(out, "%s %s   %12.6g", frontier, res.Var, res.Value)
	if res.AtCap {
		fmt.Fprintf(out, " (at the search cap: the SLO holds everywhere searched)")
	}
	fmt.Fprintln(out)
	if res.Bracket > 0 {
		fmt.Fprintf(out, "first infeasible %s  %12.6g\n", res.Var, res.Bracket)
	}
	fmt.Fprintf(out, "search               %d iterations, %d solves\n", res.Iterations, res.Solves)
	printMetrics(out, res.Metrics)
	if len(res.Neighborhood) > 0 {
		fmt.Fprintln(out, "sensitivity:")
		for _, nb := range res.Neighborhood {
			status := "holds"
			if !nb.Holds {
				status = "violates"
			}
			fmt.Fprintf(out, "  %s=%-10.6g %-8s qlen %.6g  delayed %.6g  resp %.6g ms\n",
				res.Var, nb.Value, status, nb.Metrics.QLenFG, nb.Metrics.WaitPFG, nb.Metrics.RespTimeFG)
		}
	}
	if diag != nil {
		return writeDiag(*diagPath, diag, out)
	}
	return nil
}

func cmdSim(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sim", flag.ContinueOnError)
	mf := addModelFlags(fs)
	var (
		simTime  = fs.Float64("time", 1e8, "measured simulation time in ms")
		seed     = fs.Int64("seed", 1, "random seed")
		reps     = fs.Int("reps", 1, "independent replications (seeds seed..seed+reps-1), aggregated as mean ± 95% CI")
		workers  = fs.Int("workers", 0, "max goroutines for replications (0 = all cores, 1 = serial); results are identical for every setting")
		detIdle  = fs.Bool("detidle", false, "use a deterministic idle wait instead of exponential")
		asJSON   = fs.Bool("json", false, "emit the metrics as JSON")
		diagPath = fs.String("diag", "", "write a JSON diagnostics report (event counters, replication progress) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reps < 1 {
		return fmt.Errorf("reps must be >= 1")
	}
	if *workers < 0 {
		return fmt.Errorf("workers must be >= 0")
	}
	cfg, err := mf.build()
	if err != nil {
		return err
	}
	simCfg := bgperf.SimConfig{
		Arrival:      cfg.Arrival,
		ServiceRate:  cfg.ServiceRate,
		Service:      cfg.Service,
		BGProb:       cfg.BGProb,
		BGBuffer:     cfg.BGBuffer,
		IdleRate:     cfg.IdleRate,
		IdleWait:     cfg.IdleWait,
		IdlePolicy:   cfg.IdlePolicy,
		ModFactor:    cfg.ModFactor,
		BGAdmit:      cfg.BGAdmit,
		FGThreshold:  cfg.FGThreshold,
		DeadlineRate: cfg.DeadlineRate,
		Seed:         *seed,
		WarmupTime:   *simTime / 20,
		MeasureTime:  *simTime,
	}
	if *detIdle {
		simCfg.IdleDist = bgperf.IdleDeterministic
	}
	var diag *obs.Diagnostics
	simOpts := []bgperf.Option{bgperf.WithWorkers(*workers), bgperf.WithReplications(*reps)}
	if *diagPath != "" {
		diag = obs.NewDiagnostics()
		simOpts = append(simOpts, bgperf.WithObserver(diag))
	}
	if *reps > 1 {
		agg, err := bgperf.SimulateReplications(simCfg, simOpts...)
		if err != nil {
			return err
		}
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(agg); err != nil {
				return err
			}
		} else {
			// The worker count is deliberately not echoed: output must be
			// byte-identical for every -workers setting.
			fmt.Fprintf(out, "simulated %d replications × %.4g ms (seeds %d..%d)\n",
				*reps, simCfg.MeasureTime, *seed, *seed+int64(*reps)-1)
			printMetrics(out, agg.Mean)
			fmt.Fprintf(out, "qlen 95%% half-width  %12.6g (fg) %.6g (bg)\n", agg.QLenFGHalf, agg.QLenBGHalf)
			fmt.Fprintf(out, "resp 95%% half-width  %12.6g ms (fg)\n", agg.RespTimeFGHalf)
		}
		if diag != nil {
			return writeDiag(*diagPath, diag, out)
		}
		return nil
	}
	res, err := bgperf.Simulate(simCfg, simOpts...)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Metrics); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "simulated %.4g ms (seed %d): %d fg arrivals, %d bg generated\n",
			res.SimTime, *seed, res.Counters.ArrivalsFG, res.Counters.GeneratedBG)
		printMetrics(out, res.Metrics)
		fmt.Fprintf(out, "qlen 95%% half-width  %12.6g (fg) %.6g (bg)\n", res.QLenFGHalf, res.QLenBGHalf)
	}
	if diag != nil {
		return writeDiag(*diagPath, diag, out)
	}
	return nil
}

func cmdTrace(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	var (
		name = fs.String("workload", "email", "arrival workload")
		n    = fs.Int("n", 100000, "number of requests")
		seed = fs.Int64("seed", 1, "random seed")
		dest = fs.String("out", "", "output CSV path (default: stats to stdout only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := workloadByName(*name)
	if err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("trace length must be positive")
	}
	tr := trace.GenerateWithService(m, *n, *seed, workload.ServiceRatePerMs)
	ia := tr.InterarrivalStats()
	sv := tr.ServiceStats()
	fmt.Fprintf(out, "trace: %d requests from %s\n", *n, *name)
	fmt.Fprintf(out, "inter-arrival mean %.6g ms, CV %.4g\n", ia.Mean, ia.CV)
	fmt.Fprintf(out, "service       mean %.6g ms, CV %.4g\n", sv.Mean, sv.CV)
	fmt.Fprintf(out, "utilization   %.4g\n", tr.Utilization())
	acf := tr.InterarrivalACF(10)
	fmt.Fprintf(out, "sample ACF(1..10): ")
	for _, v := range acf {
		fmt.Fprintf(out, "%.3f ", v)
	}
	fmt.Fprintln(out)
	if *dest == "" {
		return nil
	}
	f, err := os.Create(*dest)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteCSV(f); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", *dest)
	return f.Close()
}

func cmdFit(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fit", flag.ContinueOnError)
	var (
		rate  = fs.Float64("rate", 1.0/75, "target mean arrival rate (per ms)")
		scv   = fs.Float64("scv", 20, "target squared coefficient of variation")
		acf1  = fs.Float64("acf1", 0, "target lag-1 ACF (0: implied by scv and decay)")
		decay = fs.Float64("decay", 0.99, "target geometric ACF decay")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := arrival.FitMMPP2(arrival.FitSpec{Rate: *rate, SCV: *scv, ACF1: *acf1, Decay: *decay})
	if err != nil {
		return err
	}
	d0, d1 := m.D0(), m.D1()
	fmt.Fprintf(out, "MMPP2 fit: v1=%.8g v2=%.8g l1=%.8g l2=%.8g\n",
		d0.At(0, 1), d0.At(1, 0), d1.At(0, 0), d1.At(1, 1))
	fmt.Fprintf(out, "achieved: rate=%.6g scv=%.6g acf1=%.6g decay=%.6g\n",
		m.Rate(), m.SCV(), m.ACF(1), m.ACFDecay())
	return nil
}

func cmdACF(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("acf", flag.ContinueOnError)
	var (
		name = fs.String("workload", "email", "arrival workload")
		lags = fs.Int("lags", 20, "number of lags")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := workloadByName(*name)
	if err != nil {
		return err
	}
	if *lags < 1 {
		return fmt.Errorf("lags must be >= 1")
	}
	fmt.Fprintf(out, "%s: rate=%.6g scv=%.6g\n", *name, m.Rate(), m.SCV())
	for k, v := range m.ACFSeries(*lags) {
		fmt.Fprintf(out, "%4d %.6f\n", k+1, v)
	}
	return nil
}

func cmdMulti(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("multi", flag.ContinueOnError)
	var (
		name       = fs.String("workload", "softdev", "arrival workload")
		util       = fs.Float64("util", 0, "foreground utilization to scale to (0 keeps the native trace load)")
		p1         = fs.Float64("p1", 0.25, "spawn probability of class-1 (priority) background jobs")
		p2         = fs.Float64("p2", 0.5, "spawn probability of class-2 background jobs")
		buf1       = fs.Int("buffer1", 5, "class-1 buffer capacity")
		buf2       = fs.Int("buffer2", 5, "class-2 buffer capacity")
		idleMult   = fs.Float64("idlemult", 1, "mean idle wait in multiples of the 6 ms service time")
		diagPath   = fs.String("diag", "", "write a JSON diagnostics report (stage timings, convergence trace) to this file")
		schemeName = fs.String("scheme", "cyclic", "R iteration scheme: cyclic (default) or logarithmic")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme, err := bgperf.ParseRScheme(*schemeName)
	if err != nil {
		return err
	}
	m, err := workloadByName(*name)
	if err != nil {
		return err
	}
	if *util > 0 {
		if m, err = workload.AtUtilization(m, *util); err != nil {
			return err
		}
	}
	if *idleMult <= 0 {
		return fmt.Errorf("idlemult must be positive")
	}
	var diag *obs.Diagnostics
	opts := []bgperf.Option{bgperf.WithRScheme(scheme)}
	if *diagPath != "" {
		diag = obs.NewDiagnostics()
		opts = append(opts, bgperf.WithObserver(diag))
	}
	sol, err := bgperf.SolveMulti(bgperf.MultiConfig{
		Arrival:     m,
		ServiceRate: workload.ServiceRatePerMs,
		BG1Prob:     *p1,
		BG2Prob:     *p2,
		BG1Buffer:   *buf1,
		BG2Buffer:   *buf2,
		IdleRate:    workload.ServiceRatePerMs / *idleMult,
	}, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "workload %s, p1 %.3g (priority), p2 %.3g, buffers %d+%d\n",
		*name, *p1, *p2, *buf1, *buf2)
	fmt.Fprintf(out, "fg queue length        %12.6g\n", sol.QLenFG)
	fmt.Fprintf(out, "fg delayed by bg       %12.6g\n", sol.WaitPFG)
	fmt.Fprintf(out, "class-1 completion     %12.6g\n", sol.CompBG1)
	fmt.Fprintf(out, "class-2 completion     %12.6g\n", sol.CompBG2)
	fmt.Fprintf(out, "class-1/2 queue length %12.6g %.6g\n", sol.QLenBG1, sol.QLenBG2)
	fmt.Fprintf(out, "class-1/2 throughput   %12.6g %.6g\n", sol.ThroughputBG1, sol.ThroughputBG2)
	if diag != nil {
		return writeDiag(*diagPath, diag, out)
	}
	return nil
}

func cmdTransient(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("transient", flag.ContinueOnError)
	mf := addModelFlags(fs)
	var (
		horizon  = fs.Float64("horizon", 500, "trajectory horizon in ms")
		points   = fs.Int("points", 10, "number of evenly spaced time points")
		maxLevel = fs.Int("maxlevel", 60, "chain truncation level (raise for high loads)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := mf.build()
	if err != nil {
		return err
	}
	if *horizon <= 0 || *points < 1 {
		return fmt.Errorf("horizon and points must be positive")
	}
	model, err := bgperf.NewModel(cfg)
	if err != nil {
		return err
	}
	times := make([]float64, *points)
	for i := range times {
		times[i] = *horizon * float64(i+1) / float64(*points)
	}
	pts, err := model.Transient(*maxLevel, times)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "warmup from an empty system (workload %s, fg-util %.4g, p %.3g)\n",
		*mf.workload, model.FGUtilization(), cfg.BGProb)
	fmt.Fprintf(out, "%10s %10s %10s %10s %10s\n", "t-ms", "fg-qlen", "bg-qlen", "p(empty)", "util-bg")
	for _, pt := range pts {
		fmt.Fprintf(out, "%10.4g %10.6g %10.6g %10.6g %10.6g\n",
			pt.Time, pt.QLenFG, pt.QLenBG, pt.ProbEmpty, pt.UtilBG)
	}
	return nil
}

// cmdCheck runs the cross-model conformance harness (internal/check): random
// valid configurations solved analytically and simulated with replications,
// with CI-calibrated agreement on the paper's four metrics, structural
// invariants at solver precision, and exact-oracle limit collapses. A
// failing run prints every violation and exits nonzero.
func cmdCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 64, "number of random configurations to check")
		seed     = fs.Int64("seed", 1, "configuration-generator seed (failures reproduce from seed and case index)")
		tol      = fs.Float64("tol", 0.02, "deterministic part of the agreement band, added to 4x the replication CI half-width")
		reps     = fs.Int("reps", 6, "simulation replications per configuration")
		workers  = fs.Int("workers", 0, "max goroutines for replications (0 = all cores)")
		asJSON   = fs.Bool("json", false, "emit the full conformance report as JSON")
		diagPath = fs.String("diag", "", "write a JSON diagnostics report (solver stages, sim event counters) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("n must be >= 1")
	}
	if *reps < 2 {
		return fmt.Errorf("reps must be >= 2 (confidence intervals need replication)")
	}
	var diag *obs.Diagnostics
	if *diagPath != "" {
		diag = obs.NewDiagnostics()
	}
	rep, err := check.Run(context.Background(), check.Options{
		N: *n, Seed: *seed, Tol: *tol, Reps: *reps, Workers: *workers, Observer: diag,
	})
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(out, rep.Summary())
		for _, v := range rep.Violations {
			fmt.Fprintf(out, "violation: %s\n", v)
		}
		for _, d := range rep.Disagreements {
			fmt.Fprintf(out, "disagreement: %s %s analytic %.6g vs sim %.6g (diff %.3g, allowed %.3g)\n",
				d.Case, d.Metric, d.Analytic, d.Sim, d.Diff, d.Allowed)
		}
	}
	if diag != nil {
		if err := writeDiag(*diagPath, diag, out); err != nil {
			return err
		}
	}
	if !rep.OK() {
		return fmt.Errorf("conformance check failed: %d violations, %d disagreements",
			len(rep.Violations), len(rep.Disagreements))
	}
	return nil
}
