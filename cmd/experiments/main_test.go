package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestList(t *testing.T) {
	out, err := runCmd(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 5", "validation", "ablation", "extension"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q:\n%s", want, out)
		}
	}
}

func TestSingleFigureText(t *testing.T) {
	out, err := runCmd(t, "-figure", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fig2-table") || !strings.Contains(out, "MMPP parameters") {
		t.Errorf("figure 2 output incomplete:\n%s", out)
	}
}

func TestSingleFigureCSVStdout(t *testing.T) {
	out, err := runCmd(t, "-figure", "2", "-format", "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# fig2") || !strings.Contains(out, "workload,v1,v2") {
		t.Errorf("CSV output incomplete:\n%s", out)
	}
}

func TestOutdir(t *testing.T) {
	dir := t.TempDir()
	if _, err := runCmd(t, "-figure", "ablation", "-outdir", dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"ablation-idle-policy.txt", "ablation-buffer.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
}

func TestOutdirCSV(t *testing.T) {
	dir := t.TempDir()
	if _, err := runCmd(t, "-figure", "extension", "-outdir", dir, "-format", "csv"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "extension-priorities.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "util,") {
		t.Errorf("CSV header unexpected: %q", string(data[:20]))
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCmd(t, "-figure", "99"); err == nil {
		t.Error("unknown figure accepted")
	}
	if _, err := runCmd(t, "-format", "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestOutdirGnuplot(t *testing.T) {
	dir := t.TempDir()
	if _, err := runCmd(t, "-figure", "2", "-outdir", dir, "-format", "gnuplot"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2.gp"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "plot $data0") {
		t.Errorf("gnuplot script incomplete:\n%s", data)
	}
	// Tables fall back to text even in gnuplot mode.
	if _, err := os.Stat(filepath.Join(dir, "fig2-table.gp")); err != nil {
		t.Errorf("table artifact missing: %v", err)
	}
}
