// Command experiments regenerates the paper's tables and figures (and the
// repository's validation/ablation additions) as text or CSV.
//
// Usage:
//
//	experiments                      # every artifact, text, to stdout
//	experiments -figure 5            # just Fig. 5
//	experiments -figure validation   # analytic vs simulation table
//	experiments -format csv -outdir results/
//	experiments -list
//
// Figure names: 1 2 5 6 7 8 9 10 11 12 13 validation ablation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"bgperf/internal/experiments"
	"bgperf/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		figure   = fs.String("figure", "all", "artifact to generate (all | 1 | 2 | 5..13 | validation | ablation)")
		format   = fs.String("format", "text", "output format (text | csv | gnuplot)")
		outdir   = fs.String("outdir", "", "write one file per artifact into this directory instead of stdout")
		seed     = fs.Int64("seed", 1, "seed for stochastic experiments")
		simTime  = fs.Float64("simtime", 2e8, "validation simulation window (ms)")
		workers  = fs.Int("workers", 0, "max goroutines for the sweep engine (0 = all cores, 1 = serial); output is identical for every setting")
		list     = fs.Bool("list", false, "list available artifacts and exit")
		diagPath = fs.String("diag", "", "write a JSON diagnostics report (solver stage timings, convergence, workspace reuse) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "csv" && *format != "gnuplot" {
		return fmt.Errorf("unknown format %q", *format)
	}
	if *workers < 0 {
		return fmt.Errorf("workers must be >= 0")
	}
	var diag *obs.Diagnostics
	if *diagPath != "" {
		diag = obs.NewDiagnostics()
	}
	opts := experiments.Options{
		Seed:       *seed,
		Workers:    *workers,
		Validation: experiments.ValidationOptions{MeasureTime: *simTime},
		Observer:   diag,
	}
	gens := experiments.All(opts)
	if *list {
		for _, g := range gens {
			fmt.Fprintf(out, "%-12s %s\n", g.Name, g.Paper)
		}
		return nil
	}
	if *figure != "all" {
		g, ok := experiments.Lookup(*figure, opts)
		if !ok {
			return fmt.Errorf("unknown figure %q (try -list)", *figure)
		}
		gens = []experiments.Generator{g}
	}
	for _, g := range gens {
		fmt.Fprintf(out, "generating %s (%s)\n", g.Name, g.Paper)
		res, err := g.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", g.Name, err)
		}
		if err := emit(res, *format, *outdir, out); err != nil {
			return fmt.Errorf("%s: %w", g.Name, err)
		}
	}
	if diag != nil {
		if err := writeDiag(*diagPath, diag, out); err != nil {
			return err
		}
	}
	return nil
}

// writeDiag writes the JSON diagnostics report to path and a human-readable
// convergence summary to out.
func writeDiag(path string, d *obs.Diagnostics, out io.Writer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.FlushJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "diagnostics (JSON report in %s):\n", path)
	return d.WriteSummary(out)
}

// emit writes a result either to stdout or as per-artifact files.
func emit(res experiments.Result, format, outdir string, out io.Writer) error {
	tableRender := func(t experiments.Table) func(io.Writer) error {
		if format == "csv" {
			return t.WriteCSV
		}
		return t.WriteText // tables have no gnuplot form
	}
	figureRender := func(f experiments.Figure) func(io.Writer) error {
		switch format {
		case "csv":
			return f.WriteCSV
		case "gnuplot":
			return f.WriteGnuplot
		default:
			return f.WriteText
		}
	}
	if outdir == "" {
		for _, t := range res.Tables {
			if format != "text" {
				fmt.Fprintf(out, "# %s\n", t.ID)
			}
			if err := tableRender(t)(out); err != nil {
				return err
			}
		}
		for _, f := range res.Figures {
			if format != "text" {
				fmt.Fprintf(out, "# %s\n", f.ID)
			}
			if err := figureRender(f)(out); err != nil {
				return err
			}
		}
		return nil
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	ext := map[string]string{"text": ".txt", "csv": ".csv", "gnuplot": ".gp"}[format]
	write := func(id string, render func(io.Writer) error) error {
		path := filepath.Join(outdir, id+ext)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "  wrote %s\n", path)
		return nil
	}
	for _, t := range res.Tables {
		if err := write(t.ID, tableRender(t)); err != nil {
			return err
		}
	}
	for _, f := range res.Figures {
		if err := write(f.ID, figureRender(f)); err != nil {
			return err
		}
	}
	return nil
}
