package bgperf_test

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/api_surface.golden from the current source")

// TestAPISurface snapshots the package's exported identifiers into a golden
// file, so any change to the public API — adding, removing, or renaming an
// exported function, type, method, constant, or variable — shows up as an
// explicit diff in review. Regenerate with:
//
//	go test -run TestAPISurface -update .
func TestAPISurface(t *testing.T) {
	got := strings.Join(exportedSurface(t, "."), "\n") + "\n"
	golden := filepath.Join("testdata", "api_surface.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestAPISurface -update .`): %v", err)
	}
	if got != string(want) {
		t.Errorf("exported API surface changed; if intentional, run `go test -run TestAPISurface -update .` and review the diff\n%s",
			surfaceDiff(string(want), got))
	}
}

// exportedSurface lists one line per exported top-level identifier of the
// package in dir: "func Name", "type Name", "method (Recv) Name", "const
// Name", or "var Name", sorted.
func exportedSurface(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["bgperf"]
	if !ok {
		t.Fatalf("package bgperf not found in %s (got %v)", dir, pkgs)
	}
	var lines []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					recv := recvTypeName(d.Recv)
					if !ast.IsExported(strings.TrimPrefix(recv, "*")) {
						continue
					}
					lines = append(lines, fmt.Sprintf("method (%s) %s", recv, d.Name.Name))
					continue
				}
				lines = append(lines, "func "+d.Name.Name)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							lines = append(lines, "type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, name := range s.Names {
							if name.IsExported() {
								lines = append(lines, kind+" "+name.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

// recvTypeName renders a method receiver type ("T" or "*T").
func recvTypeName(fl *ast.FieldList) string {
	if len(fl.List) == 0 {
		return ""
	}
	switch t := fl.List[0].Type.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return "*" + id.Name
		}
	}
	return ""
}

// surfaceDiff reports lines only in want (removed) and only in got (added).
func surfaceDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	return b.String()
}
