package bgperf_test

// One benchmark per reproduced paper table/figure: each iteration regenerates
// the artifact end to end (workload construction, QBD solves across the
// sweep, rendering-ready series). BenchmarkValidation additionally runs the
// event simulator. Stochastic knobs are reduced from the defaults so a
// benchmark iteration stays in the hundreds of milliseconds; the full-size
// artifacts are produced by cmd/experiments.

import (
	"testing"

	"bgperf"
	"bgperf/internal/experiments"
)

func benchOptions() experiments.Options {
	return experiments.Options{
		Seed:        1,
		TraceLength: 300000,
		Validation:  experiments.ValidationOptions{MeasureTime: 2e6},
	}
}

func benchFigure(b *testing.B, name string) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh registry per iteration defeats the Suite's sweep cache, so
		// every iteration measures the full artifact regeneration.
		gen, ok := experiments.Lookup(name, benchOptions())
		if !ok {
			b.Fatalf("unknown experiment %q", name)
		}
		res, err := gen.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Figures)+len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure01(b *testing.B) { benchFigure(b, "1") }
func BenchmarkFigure02(b *testing.B) { benchFigure(b, "2") }
func BenchmarkFigure05(b *testing.B) { benchFigure(b, "5") }
func BenchmarkFigure06(b *testing.B) { benchFigure(b, "6") }
func BenchmarkFigure07(b *testing.B) { benchFigure(b, "7") }
func BenchmarkFigure08(b *testing.B) { benchFigure(b, "8") }
func BenchmarkFigure09(b *testing.B) { benchFigure(b, "9") }
func BenchmarkFigure10(b *testing.B) { benchFigure(b, "10") }
func BenchmarkFigure11(b *testing.B) { benchFigure(b, "11") }
func BenchmarkFigure12(b *testing.B) { benchFigure(b, "12") }
func BenchmarkFigure13(b *testing.B) { benchFigure(b, "13") }

// BenchmarkValidation exercises the analytic-vs-simulation table (V-1).
func BenchmarkValidation(b *testing.B) { benchFigure(b, "validation") }

// BenchmarkSimEvents measures the raw event loop: one long single-class run
// over the paper's MMPP(2) workload per iteration, reporting throughput as
// events/sec alongside ns/op. This is the microbench behind the PR 7 event
// loop rewrite; the window-gated Counters.Events drives the custom metric.
func BenchmarkSimEvents(b *testing.B) {
	m, err := bgperf.MMPP2(0.02, 0.05, 0.9, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bgperf.SimConfig{
		Arrival: m, ServiceRate: 1, BGProb: 0.6, BGBuffer: 4,
		IdleRate: 1, Seed: 1, WarmupTime: 1000, MeasureTime: 2e6,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := bgperf.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Counters.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkPlan measures one full inverse solve: each iteration bisects the
// maximum sustainable BG probability under a foreground queue-length SLO on
// the software-development workload at utilization 0.3 (the ExamplePlan
// configuration), including the sensitivity-neighborhood fan-out — about
// twenty forward QBD solves per iteration.
func BenchmarkPlan(b *testing.B) {
	sd, err := bgperf.SoftwareDevelopmentWorkload()
	if err != nil {
		b.Fatal(err)
	}
	arr, err := bgperf.AtUtilization(sd, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bgperf.Config{
		Arrival:     arr,
		ServiceRate: bgperf.ServiceRatePerMs,
		BGBuffer:    5,
		IdleRate:    bgperf.ServiceRatePerMs,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bgperf.Plan(cfg, bgperf.SLO{QLenFG: 4.2})
		if err != nil {
			b.Fatal(err)
		}
		if res.Value <= 0 || res.AtCap {
			b.Fatalf("degenerate plan: %+v", res)
		}
	}
}

// BenchmarkModulatedSolve measures one analytic solve of the full PR 10
// scenario stack — capacity modulation (φ = 0.7) plus deadline admission
// (δ = 0.4) on the paper's MMPP(2) email workload — so the scenario kernels
// (modulated blocks, renege generators) are guarded alongside the baseline.
func BenchmarkModulatedSolve(b *testing.B) {
	m, err := bgperf.MMPP2(0.02, 0.05, 0.9, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bgperf.Config{
		Arrival: m, ServiceRate: 1, BGProb: 0.6, BGBuffer: 4,
		IdleRate: 1, ModFactor: 0.7,
		BGAdmit: bgperf.AdmitDeadline, DeadlineRate: 0.4,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := bgperf.Solve(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Metrics.DeadlineMissBG <= 0 {
			b.Fatalf("degenerate solve: miss %g", sol.Metrics.DeadlineMissBG)
		}
	}
}

// BenchmarkModulatedSim is the simulator counterpart of
// BenchmarkModulatedSolve: the same modulated/deadline configuration through
// the event loop, reporting events/sec like BenchmarkSimEvents so the
// scenario branches (whole-draw stretch, pooled renege timer) are held to the
// baseline event-loop throughput.
func BenchmarkModulatedSim(b *testing.B) {
	m, err := bgperf.MMPP2(0.02, 0.05, 0.9, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bgperf.SimConfig{
		Arrival: m, ServiceRate: 1, BGProb: 0.6, BGBuffer: 4,
		IdleRate: 1, ModFactor: 0.7,
		BGAdmit: bgperf.AdmitDeadline, DeadlineRate: 0.4,
		Seed: 1, WarmupTime: 1000, MeasureTime: 2e6,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := bgperf.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Counters.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkAblation exercises the idle-policy and buffer ablations (A-1).
func BenchmarkAblation(b *testing.B) { benchFigure(b, "ablation") }

// BenchmarkExtension exercises the two-priority background table (E-1).
func BenchmarkExtension(b *testing.B) { benchFigure(b, "extension") }

// BenchmarkBaseline exercises the vacation-decomposition comparison (B-1).
func BenchmarkBaseline(b *testing.B) { benchFigure(b, "baseline") }

// BenchmarkScalability exercises the solver-scaling table (S-1); each
// iteration runs the full buffer/order sweep including X = 50.
func BenchmarkScalability(b *testing.B) { benchFigure(b, "scalability") }

// benchSuiteWorkers regenerates Figures 5–8 from a fresh Suite per iteration
// with the given worker-pool width, measuring the whole utilization ×
// BG-probability sweep (the Suite's cached computation) plus rendering prep.
func benchSuiteWorkers(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuiteWorkers(workers)
		for _, run := range []func() (experiments.Result, error){
			s.Figure5, s.Figure6, s.Figure7, s.Figure8,
		} {
			res, err := run()
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Figures) == 0 {
				b.Fatal("empty result")
			}
		}
	}
}

// BenchmarkSuiteSerial and BenchmarkSuiteParallel compare the sweep engine
// with a single worker against the full worker pool (one goroutine per
// core). Their outputs are bit-identical; only wall-clock differs, by about
// the core count on sufficiently parallel hardware.
func BenchmarkSuiteSerial(b *testing.B)   { benchSuiteWorkers(b, 1) }
func BenchmarkSuiteParallel(b *testing.B) { benchSuiteWorkers(b, 0) }
