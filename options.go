package bgperf

import (
	"context"
	"fmt"
	"math"

	"bgperf/internal/core"
	"bgperf/internal/obs"
	"bgperf/internal/plan"
	"bgperf/internal/qbd"
	"bgperf/internal/sim"
)

// RScheme selects the matrix iteration the analytic solver uses to compute
// the rate matrix R of the QBD chain. Both schemes converge to the same
// minimal solution (they agree to 1e-12 on every model configuration, pinned
// by tests); they differ in per-iteration cost.
type RScheme = qbd.RScheme

// R iteration schemes for WithRScheme.
const (
	// RSchemeCyclic is cyclic reduction (Bini–Meini) — the default and the
	// faster scheme on every block size.
	RSchemeCyclic = qbd.RSchemeCyclic
	// RSchemeLogarithmic is logarithmic reduction (Latouche–Ramaswami), the
	// scheme the paper cites; kept as an independent cross-check and for
	// convergence traces in G-defect form.
	RSchemeLogarithmic = qbd.RSchemeLogarithmic
)

// ParseRScheme maps "cyclic" / "logarithmic" back to the scheme constants
// (the inverse of RScheme.String).
func ParseRScheme(s string) (RScheme, error) { return qbd.ParseRScheme(s) }

// Option configures a single call to one of the package entry points
// (Solve, NewModel, Simulate, SimulateReplications, SolveMulti, FitMMPP2).
// Options compose left to right; zero options reproduce the uninstrumented
// default behavior exactly. Options irrelevant to a particular entry point
// (WithReplications on Solve, say) are accepted and ignored, so one option
// slice can be threaded through a pipeline of calls.
type Option func(*callOpts)

// callOpts is the resolved option set of one call.
type callOpts struct {
	observer obs.Observer
	ctx      context.Context
	workers  int
	reps     int
	scheme   RScheme
	planVar  plan.Var
	tol      float64
	maxIter  int

	// err defers option-argument validation to the call site, so invalid
	// options surface as ordinary errors rather than panics.
	err error
}

// apply resolves opts over the defaults: no observer, no cancellation
// context, all cores, one replication.
func apply(opts []Option) callOpts {
	o := callOpts{reps: 1}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// ctxErr reports an already-canceled WithContext before starting work, so
// fast analytic calls honor cancellation too.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("bgperf: canceled before start: %w", err)
	}
	return nil
}

// WithObserver attaches an Observer (typically a *Diagnostics collector) to
// the call. Every solver stage, reduction iteration, simulation run, and
// workspace pool the call touches reports to it. Without this option the
// solver runs its zero-overhead fast path: no clocks are read and no
// instrumentation allocates.
func WithObserver(o Observer) Option {
	return func(c *callOpts) { c.observer = o }
}

// WithContext attaches a cancellation context. Long operations — simulation
// event loops, replication sweeps — poll it cooperatively and return a
// context.Canceled- (or DeadlineExceeded-) wrapped error promptly after
// cancellation, matchable with errors.Is.
func WithContext(ctx context.Context) Option {
	return func(c *callOpts) { c.ctx = ctx }
}

// WithWorkers bounds the goroutine pool of parallel operations to n workers:
// the replication sweep of SimulateReplications, and the block-row-banded
// matrix multiplies inside the analytic solves (Solve, NewModel, SolveMulti).
// n <= 0 means all cores for simulation and serial multiplies for the
// analytic path. Results are bit-identical for every worker count.
func WithWorkers(n int) Option {
	return func(c *callOpts) { c.workers = n }
}

// WithRScheme selects the R iteration of the analytic solves (Solve,
// NewModel, SolveMulti): RSchemeCyclic (the default) or RSchemeLogarithmic.
// Both yield metrics that agree to far below the solver tolerance; the
// option exists for cross-checking and for logarithmic-reduction convergence
// traces under WithObserver.
func WithRScheme(s RScheme) Option {
	return func(c *callOpts) { c.scheme = s }
}

// tuning bundles the resolved solver knobs for the analytic entry points.
func (c callOpts) tuning() qbd.Tuning {
	return qbd.Tuning{Scheme: c.scheme, Workers: c.workers}
}

// planOptions bundles the resolved knobs for the inverse-solver entry points
// (Plan, PlanFromTrace, PlanCacheKey). Zero values pass through: the plan
// package is the single defaulting point, so the facade, the CLI, and the
// daemon resolve (and cache-key) identically.
func (c callOpts) planOptions() plan.Options {
	return plan.Options{
		Var:      c.planVar,
		Tol:      c.tol,
		MaxIter:  c.maxIter,
		Workers:  c.workers,
		Scheme:   c.scheme,
		Observer: c.observer,
		Ctx:      c.ctx,
	}
}

// WithPlanVar selects the decision variable of the inverse-solver entry
// points (Plan, PlanFromTrace): PlanBGProb (the default), PlanBGBuffer,
// PlanIdleRate, or PlanModFactor. Forward entry points accept and ignore it.
func WithPlanVar(v PlanVar) Option {
	return func(c *callOpts) {
		switch v {
		case plan.VarBGProb, plan.VarBGBuffer, plan.VarIdleRate, plan.VarModFactor:
			c.planVar = v
		default:
			c.err = core.NewValidationError(core.ErrConfig, "PlanVar",
				"unknown decision variable %d (want PlanBGProb | PlanBGBuffer | PlanIdleRate | PlanModFactor)", int(v))
		}
	}
}

// WithTolerance sets the convergence tolerance of the continuous inverse
// searches (default plan.DefaultTol = 1e-4: absolute on p, multiplicative on
// the idle rate). Non-positive or non-finite tolerances yield a
// ValidationError from the call. Forward entry points accept and ignore it.
func WithTolerance(tol float64) Option {
	return func(c *callOpts) {
		if !(tol > 0) || math.IsInf(tol, 0) {
			c.err = core.NewValidationError(core.ErrConfig, "Tolerance",
				"tolerance %g must be positive and finite", tol)
			return
		}
		c.tol = tol
	}
}

// WithMaxIter bounds the bisection iterations of the inverse searches
// (default 64). n < 1 yields a ValidationError from the call. Forward entry
// points accept and ignore it.
func WithMaxIter(n int) Option {
	return func(c *callOpts) {
		if n < 1 {
			c.err = core.NewValidationError(core.ErrConfig, "MaxIter",
				"need at least 1 iteration, got %d", n)
			return
		}
		c.maxIter = n
	}
}

// WithReplications sets the number of independent simulation replications
// (default 1). n < 1 yields a ValidationError from the call.
func WithReplications(n int) Option {
	return func(c *callOpts) {
		if n < 1 {
			c.err = core.NewValidationError(sim.ErrConfig, "Replications", "need at least 1 replication, got %d", n)
			return
		}
		c.reps = n
	}
}
