package bgperf

import (
	"context"
	"fmt"

	"bgperf/internal/core"
	"bgperf/internal/obs"
	"bgperf/internal/sim"
)

// Option configures a single call to one of the package entry points
// (Solve, NewModel, Simulate, SimulateReplications, SolveMulti, FitMMPP2).
// Options compose left to right; zero options reproduce the uninstrumented
// default behavior exactly. Options irrelevant to a particular entry point
// (WithReplications on Solve, say) are accepted and ignored, so one option
// slice can be threaded through a pipeline of calls.
type Option func(*callOpts)

// callOpts is the resolved option set of one call.
type callOpts struct {
	observer obs.Observer
	ctx      context.Context
	workers  int
	reps     int

	// err defers option-argument validation to the call site, so invalid
	// options surface as ordinary errors rather than panics.
	err error
}

// apply resolves opts over the defaults: no observer, no cancellation
// context, all cores, one replication.
func apply(opts []Option) callOpts {
	o := callOpts{reps: 1}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// ctxErr reports an already-canceled WithContext before starting work, so
// fast analytic calls honor cancellation too.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("bgperf: canceled before start: %w", err)
	}
	return nil
}

// WithObserver attaches an Observer (typically a *Diagnostics collector) to
// the call. Every solver stage, reduction iteration, simulation run, and
// workspace pool the call touches reports to it. Without this option the
// solver runs its zero-overhead fast path: no clocks are read and no
// instrumentation allocates.
func WithObserver(o Observer) Option {
	return func(c *callOpts) { c.observer = o }
}

// WithContext attaches a cancellation context. Long operations — simulation
// event loops, replication sweeps — poll it cooperatively and return a
// context.Canceled- (or DeadlineExceeded-) wrapped error promptly after
// cancellation, matchable with errors.Is.
func WithContext(ctx context.Context) Option {
	return func(c *callOpts) { c.ctx = ctx }
}

// WithWorkers bounds the goroutine pool of parallel operations
// (SimulateReplications) to n workers; n <= 0 means all cores. Results are
// bit-identical for every worker count.
func WithWorkers(n int) Option {
	return func(c *callOpts) { c.workers = n }
}

// WithReplications sets the number of independent simulation replications
// (default 1). n < 1 yields a ValidationError from the call.
func WithReplications(n int) Option {
	return func(c *callOpts) {
		if n < 1 {
			c.err = core.NewValidationError(sim.ErrConfig, "Replications", "need at least 1 replication, got %d", n)
			return
		}
		c.reps = n
	}
}
