// WRITE-verification budget advisor.
//
// READ-after-WRITE verification turns a fraction p of user requests into
// background jobs with the same service demand (the paper's motivating
// case). Dropped verifications are reliability debt, so an operator wants
// the largest p that still completes a target fraction of the generated
// verification work. This example finds that p across foreground loads by
// bisection on the analytic model and shows how sharply the answer depends
// on the dependence structure of the arrivals.
//
//	go run ./examples/writeverify
package main

import (
	"errors"
	"fmt"
	"log"

	"bgperf"
)

// targetCompletion is the minimum acceptable BG completion rate.
const targetCompletion = 0.90

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	email, err := bgperf.EmailWorkload()
	if err != nil {
		return err
	}
	soft, err := bgperf.SoftwareDevelopmentWorkload()
	if err != nil {
		return err
	}
	fmt.Printf("largest verification fraction p with ≥ %.0f%% of verifications completed\n", 100*targetCompletion)
	fmt.Println("(idle wait = service time, buffer 5; '-' means even p=0.01 cannot meet the target)")
	fmt.Println()
	fmt.Println("fg-util   E-mail (high ACF)   Soft.Dev. (low ACF)")
	for _, util := range []float64{0.05, 0.10, 0.15, 0.20, 0.30, 0.40} {
		rowE, err := maxVerificationLoad(email, util)
		if err != nil {
			return err
		}
		rowS, err := maxVerificationLoad(soft, util)
		if err != nil {
			return err
		}
		fmt.Printf("%7.2f   %-19s %-19s\n", util, rowE, rowS)
	}
	fmt.Println()
	fmt.Println("Reading: under bursty, correlated arrivals (E-mail) the verification")
	fmt.Println("budget collapses one load decade earlier — the paper's conclusion that")
	fmt.Println("background load must be set from the arrival dependence, not the mean.")
	return nil
}

// maxVerificationLoad bisects on p for the largest completion-target-meeting
// verification fraction at the given utilization.
func maxVerificationLoad(m *bgperf.MAP, util float64) (string, error) {
	arr, err := bgperf.AtUtilization(m, util)
	if err != nil {
		return "", err
	}
	comp := func(p float64) (float64, error) {
		sol, err := bgperf.Solve(bgperf.Config{
			Arrival:     arr,
			ServiceRate: bgperf.ServiceRatePerMs,
			BGProb:      p,
			BGBuffer:    5,
			IdleRate:    bgperf.ServiceRatePerMs,
		})
		if err != nil {
			return 0, err
		}
		return sol.CompBG, nil
	}
	// Completion falls monotonically in p, so bisection applies.
	c, err := comp(0.01)
	if err != nil {
		return "", err
	}
	if c < targetCompletion {
		return "-", nil
	}
	if c, err = comp(1); err != nil {
		return "", err
	}
	if c >= targetCompletion {
		return "p=1.00 (all writes)", nil
	}
	lo, hi := 0.01, 1.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		c, err := comp(mid)
		if err != nil {
			return "", err
		}
		if c >= targetCompletion {
			lo = mid
		} else {
			hi = mid
		}
	}
	if lo < 0.01 {
		return "", errors.New("bisection collapsed below the probe point")
	}
	return fmt.Sprintf("p=%.3f", lo), nil
}
