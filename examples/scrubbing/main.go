// Idle-wait tuning for disk scrubbing.
//
// Disk scrubbing reads media in the background to catch latent sector
// errors. The knob the paper studies in Sec. 5.3 is the idle wait: how long
// the drive stays idle before starting background work. A long wait
// protects foreground latency but starves the scrubber. This example sweeps
// the idle wait, prints the trade-off curve, picks the shortest wait whose
// foreground queue-length penalty stays within a budget, and uses the
// simulator to check the common firmware variant of a *deterministic*
// (fixed) idle timer, which the Markov chain cannot express.
//
//	go run ./examples/scrubbing
package main

import (
	"fmt"
	"log"

	"bgperf"
)

const (
	fgUtil    = 0.10 // foreground load
	scrubProb = 0.6  // fraction of FG completions that queue a scrub unit
	fgBudget  = 1.05 // allow 5% foreground queue-length inflation vs no-BG
	simWindow = 2e8  // ms of simulated time for the deterministic check
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	email, err := bgperf.EmailWorkload()
	if err != nil {
		return err
	}
	arr, err := bgperf.AtUtilization(email, fgUtil)
	if err != nil {
		return err
	}
	solveAt := func(idleMult, p float64) (*bgperf.Solution, error) {
		return bgperf.Solve(bgperf.Config{
			Arrival:     arr,
			ServiceRate: bgperf.ServiceRatePerMs,
			BGProb:      p,
			BGBuffer:    5,
			IdleRate:    bgperf.ServiceRatePerMs / idleMult,
		})
	}
	baseline, err := solveAt(1, 0) // no scrubbing at all
	if err != nil {
		return err
	}

	fmt.Printf("E-mail workload at %.0f%% load, scrub fraction p=%.1f\n", 100*fgUtil, scrubProb)
	fmt.Printf("foreground baseline queue length (no scrubbing): %.4f\n\n", baseline.QLenFG)
	fmt.Println("idle-wait   fg-qlen   fg-penalty   scrub-completion")
	mults := []float64{0.25, 0.5, 1, 2, 4, 8}
	best := -1.0
	var bestComp float64
	for _, mult := range mults {
		sol, err := solveAt(mult, scrubProb)
		if err != nil {
			return err
		}
		penalty := sol.QLenFG / baseline.QLenFG
		marker := ""
		if penalty <= fgBudget && sol.CompBG > bestComp {
			best, bestComp = mult, sol.CompBG
			marker = "  <- candidate"
		}
		fmt.Printf("%6.2f×µ   %8.4f   %9.3f   %9.3f%s\n",
			mult, sol.QLenFG, penalty, sol.CompBG, marker)
	}
	if best < 0 {
		fmt.Printf("\nno idle wait keeps the foreground penalty within %.0f%%\n", 100*(fgBudget-1))
		return nil
	}
	fmt.Printf("\nchosen idle wait: %.2f service times (%.1f ms) — scrub completion %.1f%%\n",
		best, best*bgperf.MeanServiceTimeMs, 100*bestComp)

	// Firmware check: a fixed (deterministic) timer of the same mean. The
	// chain approximates it analytically with a near-deterministic
	// Erlang-32 idle wait; the event simulator runs the exact fixed timer.
	erl, err := bgperf.PHErlang(32, 32/(best*bgperf.MeanServiceTimeMs))
	if err != nil {
		return err
	}
	erlSol, err := bgperf.Solve(bgperf.Config{
		Arrival:     arr,
		ServiceRate: bgperf.ServiceRatePerMs,
		BGProb:      scrubProb,
		BGBuffer:    5,
		IdleWait:    erl,
	})
	if err != nil {
		return err
	}
	fmt.Printf("analytic Erlang-32 (≈fixed) timer: fg-qlen %.4f, scrub completion %.3f\n",
		erlSol.QLenFG, erlSol.CompBG)

	for _, dist := range []struct {
		name string
		d    bgperf.IdleDist
	}{
		{"exponential", bgperf.IdleExponential},
		{"deterministic", bgperf.IdleDeterministic},
	} {
		res, err := bgperf.Simulate(bgperf.SimConfig{
			Arrival:     arr,
			ServiceRate: bgperf.ServiceRatePerMs,
			BGProb:      scrubProb,
			BGBuffer:    5,
			IdleRate:    bgperf.ServiceRatePerMs / best,
			IdleDist:    dist.d,
			Seed:        7,
			WarmupTime:  simWindow / 20,
			MeasureTime: simWindow,
		})
		if err != nil {
			return err
		}
		fmt.Printf("simulated %-13s timer: fg-qlen %.4f ± %.4f, scrub completion %.3f\n",
			dist.name, res.Metrics.QLenFG, res.QLenFGHalf, res.Metrics.CompBG)
	}
	return nil
}
