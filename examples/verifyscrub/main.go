// Two background priorities: WRITE verification over scrubbing.
//
// The paper closes by announcing a model extension to "more than one job
// priority level, i.e., different classes of background jobs"; this
// repository implements it. The scenario: a drive must verify a fraction of
// its writes (urgent, class 1) while also scrubbing media in the remaining
// idle time (bulk, class 2). The example solves the two-priority model
// across foreground loads, shows how strict priority shields verification
// from the scrubbing load, and cross-checks one point with the two-class
// event simulator.
//
//	go run ./examples/verifyscrub
package main

import (
	"fmt"
	"log"

	"bgperf"
)

const (
	verifyProb = 0.25 // fraction of completions spawning a verification
	scrubProb  = 0.50 // fraction of completions spawning a scrub unit
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	soft, err := bgperf.SoftwareDevelopmentWorkload()
	if err != nil {
		return err
	}
	fmt.Printf("verification p1=%.2f (priority) + scrubbing p2=%.2f, buffers 5+5\n\n", verifyProb, scrubProb)
	fmt.Println("fg-util   verify-done   scrub-done   fg-qlen   fg-delayed")
	for _, util := range []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30} {
		arr, err := bgperf.AtUtilization(soft, util)
		if err != nil {
			return err
		}
		sol, err := bgperf.SolveMulti(bgperf.MultiConfig{
			Arrival:     arr,
			ServiceRate: bgperf.ServiceRatePerMs,
			BG1Prob:     verifyProb,
			BG2Prob:     scrubProb,
			BG1Buffer:   5,
			BG2Buffer:   5,
			IdleRate:    bgperf.ServiceRatePerMs,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%7.2f   %10.1f%%   %9.1f%%   %7.3f   %9.2f%%\n",
			util, 100*sol.CompBG1, 100*sol.CompBG2, sol.QLenFG, 100*sol.WaitPFG)
	}

	// Cross-check one operating point against the two-class simulator.
	arr, err := bgperf.AtUtilization(soft, 0.15)
	if err != nil {
		return err
	}
	ana, err := bgperf.SolveMulti(bgperf.MultiConfig{
		Arrival: arr, ServiceRate: bgperf.ServiceRatePerMs,
		BG1Prob: verifyProb, BG2Prob: scrubProb,
		BG1Buffer: 5, BG2Buffer: 5,
		IdleRate: bgperf.ServiceRatePerMs,
	})
	if err != nil {
		return err
	}
	simr, err := bgperf.SimulateMulti(bgperf.MultiSimConfig{
		Arrival: arr, ServiceRate: bgperf.ServiceRatePerMs,
		BG1Prob: verifyProb, BG2Prob: scrubProb,
		BG1Buffer: 5, BG2Buffer: 5,
		IdleRate: bgperf.ServiceRatePerMs,
		Seed:     3, WarmupTime: 1e6, MeasureTime: 2e8,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\ncross-check at 15%% load: verify-done analytic %.3f vs simulated %.3f; scrub-done %.3f vs %.3f\n",
		ana.CompBG1, simr.CompBG1, ana.CompBG2, simr.CompBG2)
	fmt.Println("\nReading: strict priority keeps verification completion high while")
	fmt.Println("scrubbing absorbs the starvation as the foreground load climbs.")
	return nil
}
