// Background backlog drain time — a RAID-rebuild-style what-if.
//
// After a disk replacement, a drive owes a large, fixed backlog of
// background work (reconstruction reads). The sustainable background
// throughput under live foreground traffic bounds the rebuild time. This
// example derives that throughput from the analytic model across foreground
// loads and idle-wait settings and converts it into the time to drain a
// backlog of rebuild units, contrasting the bursty E-mail workload with
// independent arrivals of the same mean.
//
//	go run ./examples/raidrebuild
package main

import (
	"fmt"
	"log"
	"time"

	"bgperf"
)

const (
	rebuildUnits = 2_000_000 // backlog: e.g. 1 TB at 512 KB per unit
	rebuildProb  = 0.9       // aggressive rebuild injection
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	email, err := bgperf.EmailWorkload()
	if err != nil {
		return err
	}
	poisson, err := bgperf.Poisson(email.Rate())
	if err != nil {
		return err
	}
	fmt.Printf("time to drain %d rebuild units (p=%.1f, buffer 5, idle wait = service time)\n\n", rebuildUnits, rebuildProb)
	fmt.Println("fg-util   E-mail arrivals      Poisson arrivals")
	for _, util := range []float64{0.05, 0.10, 0.20, 0.30} {
		rowE, err := drainTime(email, util)
		if err != nil {
			return err
		}
		rowP, err := drainTime(poisson, util)
		if err != nil {
			return err
		}
		fmt.Printf("%7.2f   %-20s %-20s\n", util, rowE, rowP)
	}
	fmt.Println()
	fmt.Println("The rebuild-time gap at equal mean load is the paper's point: burstiness")
	fmt.Println("(not just utilization) dictates how much background work a disk sustains.")
	return nil
}

// drainTime renders the backlog drain time at the model's sustainable BG
// throughput for the given workload and load.
func drainTime(m *bgperf.MAP, util float64) (string, error) {
	arr, err := bgperf.AtUtilization(m, util)
	if err != nil {
		return "", err
	}
	sol, err := bgperf.Solve(bgperf.Config{
		Arrival:     arr,
		ServiceRate: bgperf.ServiceRatePerMs,
		BGProb:      rebuildProb,
		BGBuffer:    5,
		IdleRate:    bgperf.ServiceRatePerMs,
	})
	if err != nil {
		return "", err
	}
	if sol.ThroughputBG <= 0 {
		return "never (no BG slots)", nil
	}
	ms := float64(rebuildUnits) / sol.ThroughputBG
	d := time.Duration(ms * float64(time.Millisecond))
	return fmt.Sprintf("%s (%.1f units/s)", d.Round(time.Minute), 1000*sol.ThroughputBG), nil
}
