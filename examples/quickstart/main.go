// Quickstart: solve the paper's model once and read every metric.
//
// The scenario is the paper's default setting — the E-mail server workload
// scaled to a chosen foreground load, WRITE-verification-style background
// jobs spawned by 30% of foreground completions, a 5-entry background
// buffer, and an idle wait of one mean service time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bgperf"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	email, err := bgperf.EmailWorkload()
	if err != nil {
		return err
	}
	arr, err := bgperf.AtUtilization(email, 0.10) // 10% foreground load
	if err != nil {
		return err
	}
	sol, err := bgperf.Solve(bgperf.Config{
		Arrival:     arr,
		ServiceRate: bgperf.ServiceRatePerMs, // 6 ms exponential service
		BGProb:      0.3,                     // 30% of FG jobs spawn a BG job
		BGBuffer:    5,                       // ~0.5-1 MB of BG buffer
		IdleRate:    bgperf.ServiceRatePerMs, // idle wait ≈ one service time
	})
	if err != nil {
		return err
	}

	fmt.Println("E-mail workload at 10% foreground utilization, p = 0.3")
	fmt.Printf("  foreground queue length        %8.4f jobs\n", sol.QLenFG)
	fmt.Printf("  foreground response time       %8.4f ms\n", sol.RespTimeFG)
	fmt.Printf("  foreground jobs delayed by BG  %8.2f %%\n", 100*sol.WaitPFG)
	fmt.Printf("  background completion rate     %8.2f %%\n", 100*sol.CompBG)
	fmt.Printf("  background queue length        %8.4f jobs\n", sol.QLenBG)
	fmt.Printf("  server: fg %.3f / bg %.3f / idle-wait %.3f / empty %.3f\n",
		sol.UtilFG, sol.UtilBG, sol.ProbIdleWait, sol.ProbEmpty)

	// The distribution queries go beyond the headline averages.
	dist := sol.FGQueueDist(4)
	fmt.Println("  P(n foreground jobs in system):")
	for n, p := range dist {
		fmt.Printf("    n=%d  %.4f\n", n, p)
	}

	// Cross-check the analytic answer with the independent simulator.
	res, err := bgperf.Simulate(bgperf.SimConfig{
		Arrival:     arr,
		ServiceRate: bgperf.ServiceRatePerMs,
		BGProb:      0.3,
		BGBuffer:    5,
		IdleRate:    bgperf.ServiceRatePerMs,
		Seed:        1,
		WarmupTime:  1e6,
		MeasureTime: 2e8,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  simulator cross-check: fg qlen %.4f ± %.4f, bg completion %.2f %%\n",
		res.Metrics.QLenFG, res.QLenFGHalf, 100*res.Metrics.CompBG)
	return nil
}
