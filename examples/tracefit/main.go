// From a measured trace to a capacity answer.
//
// The paper's workflow starts from disk-level traces: characterize the
// inter-arrival process (mean, CV, ACF), fit a 2-state MMPP by moment
// matching, and only then ask the model questions. This example walks the
// whole pipeline on a trace file: here the "measured" trace is synthesized
// from a hidden bursty process and written to CSV first, so the example is
// self-contained — point `-in` at your own CSV (header `interarrival`,
// optionally `,service`) to analyze real measurements.
//
//	go run ./examples/tracefit [-in trace.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bgperf"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	in := flag.String("in", "", "trace CSV to analyze (default: synthesize a demo trace)")
	flag.Parse()

	var tr *bgperf.Trace
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		if tr, err = bgperf.ReadTraceCSV(f); err != nil {
			return err
		}
		fmt.Printf("loaded %d requests from %s\n", len(tr.Interarrivals), *in)
	} else {
		// A hidden ground truth: a bursty, correlated arrival process the
		// fitting step knows nothing about.
		hidden, err := bgperf.MMPP2(0.004, 0.008, 0.5, 0.02)
		if err != nil {
			return err
		}
		hidden, err = hidden.WithRate(0.02) // ~12% load at 6 ms service
		if err != nil {
			return err
		}
		tr = bgperf.GenerateTrace(hidden, 400000, 7, bgperf.ServiceRatePerMs)
		fmt.Println("synthesized a 400k-request demo trace from a hidden bursty process")
	}

	// 1. Characterize (the paper's Fig. 1 descriptors).
	ia := tr.InterarrivalStats()
	acf := tr.InterarrivalACF(10)
	fmt.Printf("inter-arrival mean %.4g ms, CV %.3g; sample ACF(1) %.3f, ACF(10) %.3f\n",
		ia.Mean, ia.CV, acf[0], acf[9])

	// 2. Fit the MMPP (the paper's Fig. 2 step).
	fit, err := bgperf.FitWorkloadFromTrace(tr)
	if err != nil {
		return err
	}
	fmt.Printf("fitted MMPP: rate %.4g/ms, CV %.3g, ACF decay %.5f\n",
		fit.Rate(), fit.CV(), fit.ACFDecay())

	// 3. Ask the capacity question: how much WRITE-verification load fits
	// while completing 90% of verifications?
	fmt.Println("\nbackground budget at the trace's own load:")
	for _, p := range []float64{0.1, 0.3, 0.6, 0.9} {
		sol, err := bgperf.Solve(bgperf.Config{
			Arrival:     fit,
			ServiceRate: bgperf.ServiceRatePerMs,
			BGProb:      p,
			BGBuffer:    5,
			IdleRate:    bgperf.ServiceRatePerMs,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  p=%.1f: bg completion %5.1f%%, fg queue %7.4f, fg delayed %5.2f%%\n",
			p, 100*sol.CompBG, sol.QLenFG, 100*sol.WaitPFG)
	}
	return nil
}
