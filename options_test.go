package bgperf_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"bgperf"
	"bgperf/internal/sim"
)

// replicationConfig is a small, fast simulation shared by the option tests.
func replicationConfig() bgperf.SimConfig {
	p, err := bgperf.Poisson(1)
	if err != nil {
		panic(err)
	}
	return bgperf.SimConfig{
		Arrival:     p,
		ServiceRate: 2,
		BGProb:      0.5,
		BGBuffer:    3,
		IdleRate:    2,
		Seed:        1,
		WarmupTime:  100,
		MeasureTime: 5000,
	}
}

// TestSimulateReplicationsOptionEquivalence pins the API redesign's
// compatibility contract: the variadic-option call must reproduce the old
// positional sim.RunReplications(cfg, reps, workers) byte for byte, for any
// worker count.
func TestSimulateReplicationsOptionEquivalence(t *testing.T) {
	cfg := replicationConfig()
	old, err := sim.RunReplications(cfg, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(old)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		res, err := bgperf.SimulateReplications(cfg,
			bgperf.WithReplications(30), bgperf.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("workers=%d: option call diverged from positional call\ngot  %s\nwant %s",
				workers, got, want)
		}
	}
}

// TestSimulateReplicationsDefault checks the zero-option call runs one
// replication, matching a plain Simulate of the same seed.
func TestSimulateReplicationsDefault(t *testing.T) {
	cfg := replicationConfig()
	res, err := bgperf.SimulateReplications(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps != 1 {
		t.Fatalf("default replications = %d, want 1", res.Reps)
	}
	single, err := bgperf.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean.QLenFG != single.Metrics.QLenFG {
		t.Errorf("single replication %v != direct run %v", res.Mean.QLenFG, single.Metrics.QLenFG)
	}
}

func TestWithReplicationsInvalid(t *testing.T) {
	for _, n := range []int{0, -3} {
		_, err := bgperf.SimulateReplications(replicationConfig(), bgperf.WithReplications(n))
		if err == nil {
			t.Fatalf("WithReplications(%d) accepted", n)
		}
		var verr *bgperf.ValidationError
		if !errors.As(err, &verr) {
			t.Fatalf("WithReplications(%d): got %T (%v), want *ValidationError", n, err, err)
		}
		if verr.Field != "Replications" {
			t.Errorf("Field = %q, want Replications", verr.Field)
		}
	}
	// The positional internal path must reject reps < 1 identically.
	var verr *bgperf.ValidationError
	if _, err := sim.RunReplications(replicationConfig(), 0, 1); !errors.As(err, &verr) {
		t.Errorf("sim.RunReplications(cfg, 0, 1): got %v, want ValidationError", err)
	}
}

func TestWithContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	email, err := bgperf.EmailWorkload()
	if err != nil {
		t.Fatal(err)
	}
	arr, err := bgperf.AtUtilization(email, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bgperf.Config{
		Arrival: arr, ServiceRate: bgperf.ServiceRatePerMs,
		BGProb: 0.3, BGBuffer: 5, IdleRate: bgperf.ServiceRatePerMs,
	}
	if _, err := bgperf.Solve(cfg, bgperf.WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Errorf("Solve with canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := bgperf.Simulate(replicationConfig(), bgperf.WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Errorf("Simulate with canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := bgperf.SimulateReplications(replicationConfig(),
		bgperf.WithContext(ctx), bgperf.WithReplications(4)); !errors.Is(err, context.Canceled) {
		t.Errorf("SimulateReplications with canceled ctx: %v, want context.Canceled", err)
	}
}

// TestWithContextCancelsSimulation cancels a long event loop mid-run and
// expects a prompt context.Canceled-wrapped return.
func TestWithContextCancelsSimulation(t *testing.T) {
	cfg := replicationConfig()
	cfg.MeasureTime = 1e12 // would take minutes uncanceled
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := bgperf.Simulate(cfg, bgperf.WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
}

// TestWithObserverDiagnostics runs a Figure 5-style solve with a Diagnostics
// collector and checks the report carries the acceptance-criterion fields:
// non-zero R-iteration count, final residual, stage timings, and workspace
// hit/miss counters.
func TestWithObserverDiagnostics(t *testing.T) {
	email, err := bgperf.EmailWorkload()
	if err != nil {
		t.Fatal(err)
	}
	arr, err := bgperf.AtUtilization(email, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	diag := bgperf.NewDiagnostics()
	_, err = bgperf.Solve(bgperf.Config{
		Arrival: arr, ServiceRate: bgperf.ServiceRatePerMs,
		BGProb: 0.6, BGBuffer: 5, IdleRate: bgperf.ServiceRatePerMs,
	}, bgperf.WithObserver(diag))
	if err != nil {
		t.Fatal(err)
	}
	r := diag.Report()
	if r.Solves != 1 || r.RSolves != 1 {
		t.Errorf("Solves=%d RSolves=%d, want 1/1", r.Solves, r.RSolves)
	}
	if r.RIterations == 0 || r.LastRIterations == 0 {
		t.Errorf("R iterations not recorded: total %d, last %d", r.RIterations, r.LastRIterations)
	}
	if r.LastResidual <= 0 || r.LastResidual > 1e-6 {
		t.Errorf("LastResidual = %g, want converged positive residual", r.LastResidual)
	}
	if r.LastSpectralRadius <= 0 || r.LastSpectralRadius >= 1 {
		t.Errorf("sp(R) = %g, want in (0,1) for a stable model", r.LastSpectralRadius)
	}
	if len(r.ConvergenceTrace) != r.LastRIterations {
		t.Errorf("trace length %d != last iterations %d", len(r.ConvergenceTrace), r.LastRIterations)
	}
	for _, stage := range []bgperf.Stage{
		bgperf.StageBuild, bgperf.StageRSolve, bgperf.StageBoundary, bgperf.StageMetrics,
	} {
		sr, ok := r.Stages[stage.String()]
		if !ok || sr.Count != 1 {
			t.Errorf("stage %s missing or miscounted: %+v", stage, sr)
		}
	}
	if r.Workspace.Hits()+r.Workspace.Misses() == 0 {
		t.Error("workspace pool statistics empty")
	}
}

// TestWithObserverSimulate checks simulator counters and replication
// progress flow into the collector.
func TestWithObserverSimulate(t *testing.T) {
	diag := bgperf.NewDiagnostics()
	_, err := bgperf.SimulateReplications(replicationConfig(),
		bgperf.WithReplications(3), bgperf.WithWorkers(2), bgperf.WithObserver(diag))
	if err != nil {
		t.Fatal(err)
	}
	r := diag.Report()
	if r.SimRuns != 3 {
		t.Errorf("SimRuns = %d, want 3", r.SimRuns)
	}
	if r.Sim.ArrivalsFG == 0 || r.Sim.CompletedFG == 0 {
		t.Errorf("simulator counters empty: %+v", r.Sim)
	}
	if r.ReplicationsDone != 3 || r.ReplicationsTotal != 3 {
		t.Errorf("replication progress %d/%d, want 3/3", r.ReplicationsDone, r.ReplicationsTotal)
	}
}

func TestTypedErrors(t *testing.T) {
	p, err := bgperf.Poisson(3) // offered load 1.5 at rate-2 service: unstable
	if err != nil {
		t.Fatal(err)
	}
	_, err = bgperf.Solve(bgperf.Config{
		Arrival: p, ServiceRate: 2, BGProb: 0.5, BGBuffer: 3, IdleRate: 2,
	})
	if !errors.Is(err, bgperf.ErrUnstable) {
		t.Errorf("saturated model: got %v, want ErrUnstable", err)
	}

	_, err = bgperf.Solve(bgperf.Config{
		Arrival: p, ServiceRate: 2, BGProb: 1.5, BGBuffer: 3, IdleRate: 2,
	})
	var verr *bgperf.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("invalid BGProb: got %T (%v), want *ValidationError", err, err)
	}
	if verr.Field != "BGProb" || verr.Reason == "" {
		t.Errorf("ValidationError = %+v, want Field BGProb with a reason", verr)
	}
}

func TestParseHelpers(t *testing.T) {
	for _, p := range []bgperf.IdleWaitPolicy{bgperf.IdleWaitPerJob, bgperf.IdleWaitPerPeriod} {
		got, err := bgperf.ParseIdleWaitPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseIdleWaitPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	for _, d := range []bgperf.IdleDist{bgperf.IdleExponential, bgperf.IdleDeterministic} {
		got, err := bgperf.ParseIdleDist(d.String())
		if err != nil || got != d {
			t.Errorf("ParseIdleDist(%q) = %v, %v", d.String(), got, err)
		}
	}
	for _, k := range []bgperf.Kind{bgperf.KindEmpty, bgperf.KindFG, bgperf.KindBG, bgperf.KindIdle} {
		got, err := bgperf.ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	var verr *bgperf.ValidationError
	if _, err := bgperf.ParseIdleWaitPolicy("bogus"); !errors.As(err, &verr) {
		t.Errorf("ParseIdleWaitPolicy(bogus): %v, want ValidationError", err)
	}
	if _, err := bgperf.ParseIdleDist("bogus"); !errors.As(err, &verr) {
		t.Errorf("ParseIdleDist(bogus): %v, want ValidationError", err)
	}
	if _, err := bgperf.ParseKind("bogus"); !errors.As(err, &verr) {
		t.Errorf("ParseKind(bogus): %v, want ValidationError", err)
	}
}
