// Package phtype implements continuous phase-type (PH) distributions — the
// absorption times of finite transient Markov chains. The paper models
// service as exponential (measured service CV < 1, "approximated by
// exponential"); its footnote 3 notes that the same chain construction works
// for MAP/PH service via Kronecker products. This package supplies the PH
// representations ((β, T) pairs), their moments, two-moment fitting, and
// sampling, used by the PH-service variant of the model and by the
// simulator.
package phtype

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bgperf/internal/mat"
)

// ErrInvalid reports a malformed PH representation.
var ErrInvalid = errors.New("phtype: invalid distribution")

// Dist is a continuous phase-type distribution (β, T): β is the initial
// probability vector over S transient phases and T the S×S transient
// generator (strictly substochastic rows). The exit-rate vector is t = −T·1.
// A Dist is immutable after construction and safe to share across
// goroutines; only its Samplers carry mutable state.
type Dist struct {
	beta []float64
	t    *mat.Matrix
	exit []float64
	invT *mat.Matrix // (−T)⁻¹, cached
}

// New validates (beta, t) and returns the distribution. Requirements:
// matching dimensions; β ≥ 0 summing to 1; T with nonnegative off-diagonal,
// negative diagonal, and nonpositive row sums with at least one strictly
// negative (so absorption happens).
func New(beta []float64, t *mat.Matrix) (*Dist, error) {
	s := len(beta)
	if s == 0 || t.Rows() != s || t.Cols() != s {
		return nil, fmt.Errorf("%w: β has %d entries, T is %dx%d", ErrInvalid, s, t.Rows(), t.Cols())
	}
	var sum float64
	for i, b := range beta {
		if b < 0 || math.IsNaN(b) {
			return nil, fmt.Errorf("%w: β[%d] = %g", ErrInvalid, i, b)
		}
		sum += b
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("%w: β sums to %g", ErrInvalid, sum)
	}
	exit := make([]float64, s)
	anyExit := false
	for i := 0; i < s; i++ {
		var row float64
		for j := 0; j < s; j++ {
			v := t.At(i, j)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: non-finite T[%d][%d]", ErrInvalid, i, j)
			}
			if i == j {
				if v >= 0 {
					return nil, fmt.Errorf("%w: T[%d][%d] = %g must be negative", ErrInvalid, i, j, v)
				}
			} else if v < 0 {
				return nil, fmt.Errorf("%w: negative off-diagonal T[%d][%d]", ErrInvalid, i, j)
			}
			row += v
		}
		if row > 1e-9 {
			return nil, fmt.Errorf("%w: row %d of T sums to %g > 0", ErrInvalid, i, row)
		}
		exit[i] = -row
		if exit[i] < 0 {
			exit[i] = 0
		}
		if exit[i] > 0 {
			anyExit = true
		}
	}
	if !anyExit {
		return nil, fmt.Errorf("%w: no exit rates (absorption impossible)", ErrInvalid)
	}
	invT, err := mat.Inverse(t.Clone().Scale(-1))
	if err != nil {
		return nil, fmt.Errorf("%w: singular −T", ErrInvalid)
	}
	b := make([]float64, s)
	copy(b, beta)
	return &Dist{beta: b, t: t.Clone(), exit: exit, invT: invT}, nil
}

// MustNew is New but panics on error.
func MustNew(beta []float64, t *mat.Matrix) *Dist {
	d, err := New(beta, t)
	if err != nil {
		panic(err)
	}
	return d
}

// Exponential returns the one-phase PH (an exponential distribution).
func Exponential(rate float64) (*Dist, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("%w: rate %g", ErrInvalid, rate)
	}
	return New([]float64{1}, mat.MustFromRows([][]float64{{-rate}}))
}

// Erlang returns the Erlang-k distribution with the given stage rate
// (mean k/stageRate, SCV 1/k).
func Erlang(k int, stageRate float64) (*Dist, error) {
	if k < 1 || stageRate <= 0 {
		return nil, fmt.Errorf("%w: Erlang(%d, %g)", ErrInvalid, k, stageRate)
	}
	t := mat.New(k, k)
	for i := 0; i < k; i++ {
		t.Set(i, i, -stageRate)
		if i+1 < k {
			t.Set(i, i+1, stageRate)
		}
	}
	beta := make([]float64, k)
	beta[0] = 1
	return New(beta, t)
}

// Hyperexponential returns the mixture of exponentials: with probability
// probs[i], the sample is exponential with rates[i] (SCV > 1 unless
// degenerate).
func Hyperexponential(probs, rates []float64) (*Dist, error) {
	if len(probs) != len(rates) || len(probs) == 0 {
		return nil, fmt.Errorf("%w: %d probs, %d rates", ErrInvalid, len(probs), len(rates))
	}
	t := mat.New(len(probs), len(probs))
	beta := make([]float64, len(probs))
	var sum float64
	for i := range probs {
		if probs[i] < 0 || rates[i] <= 0 {
			return nil, fmt.Errorf("%w: branch %d (%g, %g)", ErrInvalid, i, probs[i], rates[i])
		}
		sum += probs[i]
		beta[i] = probs[i]
		t.Set(i, i, -rates[i])
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("%w: probabilities sum to %g", ErrInvalid, sum)
	}
	return New(beta, t)
}

// Coxian returns the Coxian distribution with the given stage rates: stage i
// completes at rates[i] and then either continues to stage i+1 (with
// probability cont[i]) or absorbs. cont must have one entry fewer than
// rates. Coxian representations are dense in the PH class and are the usual
// shape for fitted service laws.
func Coxian(rates, cont []float64) (*Dist, error) {
	n := len(rates)
	if n == 0 || len(cont) != n-1 {
		return nil, fmt.Errorf("%w: Coxian with %d rates and %d continuation probs", ErrInvalid, n, len(cont))
	}
	t := mat.New(n, n)
	for i := 0; i < n; i++ {
		if rates[i] <= 0 {
			return nil, fmt.Errorf("%w: Coxian rate %g at stage %d", ErrInvalid, rates[i], i)
		}
		t.Set(i, i, -rates[i])
		if i+1 < n {
			if cont[i] < 0 || cont[i] > 1 {
				return nil, fmt.Errorf("%w: Coxian continuation %g at stage %d", ErrInvalid, cont[i], i)
			}
			t.Set(i, i+1, rates[i]*cont[i])
		}
	}
	beta := make([]float64, n)
	beta[0] = 1
	return New(beta, t)
}

// FitTwoMoment returns a PH distribution matching the given mean and SCV by
// the classical recipe: an Erlang-k for SCV ≤ 1 (k = ⌈1/SCV⌉, matched in
// mean with SCV = 1/k, exact when 1/SCV is integral), an exponential for
// SCV = 1, and a balanced-means two-phase hyperexponential for SCV > 1
// (exact).
func FitTwoMoment(mean, scv float64) (*Dist, error) {
	switch {
	case mean <= 0 || scv <= 0:
		return nil, fmt.Errorf("%w: mean %g, scv %g", ErrInvalid, mean, scv)
	case scv == 1:
		return Exponential(1 / mean)
	case scv < 1:
		k := int(math.Ceil(1 / scv))
		return Erlang(k, float64(k)/mean)
	default:
		// Balanced-means H2: p1/r1 = p2/r2 = mean/2.
		root := math.Sqrt((scv - 1) / (scv + 1))
		p1 := (1 + root) / 2
		p2 := 1 - p1
		r1 := 2 * p1 / mean
		r2 := 2 * p2 / mean
		return Hyperexponential([]float64{p1, p2}, []float64{r1, r2})
	}
}

// Order returns the number of transient phases S.
func (d *Dist) Order() int { return len(d.beta) }

// Beta returns a copy of the initial phase distribution.
func (d *Dist) Beta() []float64 {
	out := make([]float64, len(d.beta))
	copy(out, d.beta)
	return out
}

// T returns a copy of the transient generator.
func (d *Dist) T() *mat.Matrix { return d.t.Clone() }

// ExitRates returns a copy of t = −T·1.
func (d *Dist) ExitRates() []float64 {
	out := make([]float64, len(d.exit))
	copy(out, d.exit)
	return out
}

// Moment returns the k-th raw moment, E[X^k] = k!·β(−T)⁻ᵏ·1.
func (d *Dist) Moment(k int) float64 {
	if k < 1 {
		panic("phtype: moment order must be >= 1")
	}
	v := d.Beta()
	fact := 1.0
	for i := 1; i <= k; i++ {
		v = d.invT.Transpose().MulVec(v)
		fact *= float64(i)
	}
	return fact * mat.Sum(v)
}

// Mean returns E[X].
func (d *Dist) Mean() float64 { return d.Moment(1) }

// Rate returns 1/E[X].
func (d *Dist) Rate() float64 { return 1 / d.Mean() }

// SCV returns the squared coefficient of variation.
func (d *Dist) SCV() float64 {
	m1 := d.Moment(1)
	return d.Moment(2)/(m1*m1) - 1
}

// CDF returns P(X ≤ x) via uniformized matrix exponential: 1 − β·exp(Tx)·1.
func (d *Dist) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	s := d.Order()
	// Uniformize: P = I + T/θ; exp(Tx) = Σ_k e^{−θx}(θx)^k/k! · P^k.
	theta := 0.0
	for i := 0; i < s; i++ {
		if r := -d.t.At(i, i); r > theta {
			theta = r
		}
	}
	p := d.t.Clone().Scale(1 / theta)
	for i := 0; i < s; i++ {
		p.Add(i, i, 1)
	}
	v := d.Beta() // v = β·P^k as we go
	lambda := theta * x
	logTerm := -lambda // log of e^{−λ}λ^0/0!
	survival := 0.0
	// Sum until the Poisson tail is negligible.
	kMax := int(lambda + 12*math.Sqrt(lambda+4) + 30)
	for k := 0; ; k++ {
		survival += math.Exp(logTerm) * mat.Sum(v)
		if k >= kMax {
			break
		}
		logTerm += math.Log(lambda) - math.Log(float64(k+1))
		v = p.Transpose().MulVec(v)
	}
	if survival < 0 {
		survival = 0
	}
	if survival > 1 {
		survival = 1
	}
	return 1 - survival
}

// Sampler draws variates from the distribution. A Sampler is not safe for
// concurrent use: give each goroutine its own via NewSampler.
type Sampler struct {
	d   *Dist
	rng *rand.Rand
}

// NewSampler returns a deterministic sampler for d.
func NewSampler(d *Dist, seed int64) *Sampler {
	return &Sampler{d: d, rng: rand.New(rand.NewSource(seed))}
}

// Next draws one absorption time.
func (s *Sampler) Next() float64 {
	return SampleOnce(s.d, s.rng)
}

// SampleOnce draws one absorption time of d using the provided source.
func SampleOnce(d *Dist, rng *rand.Rand) float64 {
	// Pick the initial phase.
	u := rng.Float64()
	phase := len(d.beta) - 1
	acc := 0.0
	for i, b := range d.beta {
		acc += b
		if u < acc {
			phase = i
			break
		}
	}
	var total float64
	for {
		rate := -d.t.At(phase, phase)
		total += -math.Log(1-rng.Float64()) / rate
		// Choose the next phase or absorption.
		u := rng.Float64() * rate
		acc := 0.0
		next := -1
		for j := 0; j < d.Order(); j++ {
			if j == phase {
				continue
			}
			acc += d.t.At(phase, j)
			if u < acc {
				next = j
				break
			}
		}
		if next < 0 {
			// Exit (absorption) chosen.
			return total
		}
		phase = next
	}
}
