package phtype

import "bgperf/internal/rng"

// Compiled is a flattened sampler for a phase-type distribution, built once
// and driven by an external rng.Rand. SampleOnce walks the (β, T) matrices
// through At calls on every draw; Compiled precomputes the per-phase total
// rates and cumulative jump tables into contiguous arrays so a draw costs
// one ziggurat exponential per phase visit plus a short linear scan, with no
// matrix access and no allocation. A Compiled is immutable and safe to share
// across goroutines (all mutable state lives in the caller's generator).
type Compiled struct {
	// cumBeta is the cumulative initial-phase distribution.
	cumBeta []float64
	// invRate[i] = 1 / (−T[i][i]), the mean sojourn of phase i.
	invRate []float64
	// Entries off[i]..off[i+1]-1 are phase i's off-diagonal jumps: cumRate
	// holds cumulative T[i][j] (compared against u·rate, matching
	// SampleOnce), target the destination phases. A draw beyond the last
	// cumulative rate absorbs.
	off     []int32
	cumRate []float64
	target  []int32
	// expScale is nonzero for the one-phase (exponential) fast path.
	expScale float64
}

// Compile flattens d into a Compiled sampler.
func Compile(d *Dist) *Compiled {
	n := d.Order()
	c := &Compiled{
		cumBeta: make([]float64, n),
		invRate: make([]float64, n),
		off:     make([]int32, n+1),
	}
	acc := 0.0
	for i, b := range d.beta {
		acc += b
		c.cumBeta[i] = acc
	}
	for i := 0; i < n; i++ {
		c.invRate[i] = 1 / -d.t.At(i, i)
		cum := 0.0
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			cum += d.t.At(i, j)
			c.cumRate = append(c.cumRate, cum)
			c.target = append(c.target, int32(j))
		}
		c.off[i+1] = int32(len(c.cumRate))
	}
	if n == 1 {
		c.expScale = c.invRate[0]
	}
	return c
}

// Sample draws one absorption time using r as the randomness source.
func (c *Compiled) Sample(r *rng.Rand) float64 {
	if c.expScale > 0 {
		return r.ExpFloat64() * c.expScale
	}
	// Pick the initial phase.
	u := r.Float64()
	phase := len(c.cumBeta) - 1
	for i, b := range c.cumBeta {
		if u < b {
			phase = i
			break
		}
	}
	var total float64
	for {
		inv := c.invRate[phase]
		total += r.ExpFloat64() * inv
		// Choose the next phase or absorption: u scaled by the total exit
		// rate lands either inside the cumulative jump rates or beyond them
		// (the exit rate's share), which absorbs.
		u := r.Float64() / inv
		next := -1
		for j := c.off[phase]; j < c.off[phase+1]; j++ {
			if u < c.cumRate[j] {
				next = int(c.target[j])
				break
			}
		}
		if next < 0 {
			return total
		}
		phase = next
	}
}
