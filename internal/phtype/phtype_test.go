package phtype

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bgperf/internal/mat"
)

func TestExponentialMoments(t *testing.T) {
	d, err := Exponential(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-0.5) > 1e-12 {
		t.Errorf("mean = %v, want 0.5", d.Mean())
	}
	if math.Abs(d.SCV()-1) > 1e-12 {
		t.Errorf("scv = %v, want 1", d.SCV())
	}
	if math.Abs(d.Moment(3)-6.0/8) > 1e-12 { // E[X³] = 3!/λ³
		t.Errorf("third moment = %v, want 0.75", d.Moment(3))
	}
}

func TestExponentialRejects(t *testing.T) {
	if _, err := Exponential(0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestErlangMoments(t *testing.T) {
	d, err := Erlang(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-2) > 1e-12 {
		t.Errorf("mean = %v, want 2", d.Mean())
	}
	if math.Abs(d.SCV()-0.25) > 1e-12 {
		t.Errorf("scv = %v, want 1/4", d.SCV())
	}
	if d.Order() != 4 {
		t.Errorf("order = %d, want 4", d.Order())
	}
}

func TestHyperexponentialMoments(t *testing.T) {
	d, err := Hyperexponential([]float64{0.5, 0.5}, []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 0.5 + 0.05
	if math.Abs(d.Mean()-wantMean) > 1e-12 {
		t.Errorf("mean = %v, want %v", d.Mean(), wantMean)
	}
	wantM2 := 0.5*2 + 0.5*0.02
	if math.Abs(d.Moment(2)-wantM2) > 1e-12 {
		t.Errorf("m2 = %v, want %v", d.Moment(2), wantM2)
	}
}

func TestNewValidation(t *testing.T) {
	okT := mat.MustFromRows([][]float64{{-1}})
	tests := []struct {
		name string
		beta []float64
		t    *mat.Matrix
	}{
		{"empty", nil, okT},
		{"shape", []float64{1}, mat.New(2, 2)},
		{"beta sum", []float64{0.5}, okT},
		{"negative beta", []float64{-1, 2}, mat.MustFromRows([][]float64{{-1, 0}, {0, -1}})},
		{"positive diagonal", []float64{1}, mat.MustFromRows([][]float64{{1}})},
		{"negative offdiag", []float64{0.5, 0.5}, mat.MustFromRows([][]float64{{-1, -1}, {0, -1}})},
		{"row sum positive", []float64{1}, mat.MustFromRows([][]float64{{-1}}).Clone()},
	}
	// Fix the last case to actually have a positive row sum.
	tests[len(tests)-1].t = mat.MustFromRows([][]float64{{-1}})
	tests[len(tests)-1].t.Set(0, 0, -1)
	tests = tests[:len(tests)-1]
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.beta, tt.t); err == nil {
				t.Error("invalid PH accepted")
			}
		})
	}
	// No absorption: conservative generator.
	cons := mat.MustFromRows([][]float64{{-1, 1}, {1, -1}})
	if _, err := New([]float64{1, 0}, cons); err == nil {
		t.Error("non-absorbing PH accepted")
	}
}

func TestFitTwoMoment(t *testing.T) {
	tests := []struct {
		mean, scv float64
		exactSCV  bool
	}{
		{2, 1, true},
		{2, 0.25, true}, // Erlang-4
		{2, 0.5, true},  // Erlang-2
		{5, 4, true},    // H2
		{1, 16, true},
		{3, 0.3, false}, // 1/0.3 not integral: k=4 gives scv 0.25
	}
	for _, tt := range tests {
		d, err := FitTwoMoment(tt.mean, tt.scv)
		if err != nil {
			t.Fatalf("fit(%v, %v): %v", tt.mean, tt.scv, err)
		}
		if math.Abs(d.Mean()-tt.mean) > 1e-9*tt.mean {
			t.Errorf("fit(%v, %v): mean = %v", tt.mean, tt.scv, d.Mean())
		}
		if tt.exactSCV && math.Abs(d.SCV()-tt.scv) > 1e-9*tt.scv {
			t.Errorf("fit(%v, %v): scv = %v", tt.mean, tt.scv, d.SCV())
		}
	}
	if _, err := FitTwoMoment(-1, 1); err == nil {
		t.Error("negative mean accepted")
	}
}

func TestExitRates(t *testing.T) {
	d, err := Erlang(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	exit := d.ExitRates()
	if exit[0] != 0 || exit[1] != 3 {
		t.Errorf("exit = %v, want [0 3]", exit)
	}
}

func TestAccessorsCopy(t *testing.T) {
	d, _ := Erlang(2, 1)
	b := d.Beta()
	b[0] = 99
	if d.Beta()[0] == 99 {
		t.Error("Beta exposes internals")
	}
	tm := d.T()
	tm.Set(0, 0, 99)
	if d.T().At(0, 0) == 99 {
		t.Error("T exposes internals")
	}
}

func TestCDFExponential(t *testing.T) {
	d, _ := Exponential(2)
	for _, x := range []float64{0.1, 0.5, 1, 3} {
		want := 1 - math.Exp(-2*x)
		if got := d.CDF(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
	if d.CDF(0) != 0 || d.CDF(-1) != 0 {
		t.Error("CDF must be 0 at nonpositive x")
	}
}

func TestCDFErlang(t *testing.T) {
	// Erlang-2 with rate 1: CDF(x) = 1 − e^{−x}(1+x).
	d, _ := Erlang(2, 1)
	for _, x := range []float64{0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x)*(1+x)
		if got := d.CDF(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestSamplerMatchesMoments(t *testing.T) {
	d, err := Hyperexponential([]float64{0.3, 0.7}, []float64{0.5, 5})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(d, 42)
	const n = 300000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Next()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	m2 := sumSq / n
	if rel := math.Abs(mean-d.Mean()) / d.Mean(); rel > 0.02 {
		t.Errorf("sample mean %v vs %v", mean, d.Mean())
	}
	if rel := math.Abs(m2-d.Moment(2)) / d.Moment(2); rel > 0.05 {
		t.Errorf("sample m2 %v vs %v", m2, d.Moment(2))
	}
}

func TestSamplerErlangPhases(t *testing.T) {
	// Erlang sampling must traverse the chain, not just exit from phase 1.
	d, _ := Erlang(3, 3)
	s := NewSampler(d, 7)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Next()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("Erlang-3 sample mean %v, want 1", mean)
	}
}

func TestQuickMomentConsistency(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%5) + 1
		d, err := Erlang(k, rng.Float64()*5+0.1)
		if err != nil {
			return false
		}
		// SCV from moments equals 1/k; CDF is monotone.
		if math.Abs(d.SCV()-1/float64(k)) > 1e-9 {
			return false
		}
		prev := 0.0
		for _, x := range []float64{0.1, 0.5, 1, 2, 4, 8} {
			c := d.CDF(x * d.Mean())
			if c < prev-1e-12 || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCoxian(t *testing.T) {
	// A Coxian that always continues is an Erlang.
	cox, err := Coxian([]float64{2, 2, 2}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	erl, _ := Erlang(3, 2)
	if math.Abs(cox.Mean()-erl.Mean()) > 1e-12 || math.Abs(cox.SCV()-erl.SCV()) > 1e-12 {
		t.Errorf("full-continuation Coxian != Erlang: mean %v vs %v", cox.Mean(), erl.Mean())
	}
	// Zero continuation is exponential.
	cox1, err := Coxian([]float64{3, 5}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cox1.Mean()-1.0/3) > 1e-12 {
		t.Errorf("no-continuation Coxian mean %v, want 1/3", cox1.Mean())
	}
	// Partial continuation: E[X] = 1/r1 + c·(1/r2).
	cox2, err := Coxian([]float64{2, 4}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.5 + 0.5*0.25; math.Abs(cox2.Mean()-want) > 1e-12 {
		t.Errorf("Coxian mean %v, want %v", cox2.Mean(), want)
	}
}

func TestCoxianValidation(t *testing.T) {
	if _, err := Coxian(nil, nil); err == nil {
		t.Error("empty Coxian accepted")
	}
	if _, err := Coxian([]float64{1, 2}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Coxian([]float64{0, 1}, []float64{0.5}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Coxian([]float64{1, 2}, []float64{1.5}); err == nil {
		t.Error("continuation > 1 accepted")
	}
}
