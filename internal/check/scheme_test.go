package check

import (
	"math"
	"testing"

	"bgperf/internal/core"
	"bgperf/internal/qbd"
)

// TestSchemeAgreementOnGeneratedConfigs cross-checks the default
// cyclic-reduction R iteration against logarithmic reduction on every
// configuration the conformance generator draws: the two R matrices (and the
// headline metrics assembled from them) must agree to 1e-12 element-wise.
// This is the package-level pin of the tentpole claim that the schemes are
// interchangeable on real model chains, not just on the synthetic processes
// of the qbd-level tests.
func TestSchemeAgreementOnGeneratedConfigs(t *testing.T) {
	const (
		cases = 32
		tol   = 1e-12
	)
	gen := NewGenerator(1)
	for i := 0; i < cases; i++ {
		c := gen.Next()
		t.Run(c.Name, func(t *testing.T) {
			solve := func(s qbd.RScheme) *core.Solution {
				m, err := core.NewModel(c.Cfg)
				if err != nil {
					t.Fatalf("NewModel: %v", err)
				}
				m.Tune(qbd.Tuning{Scheme: s})
				sol, err := m.Solve()
				if err != nil {
					t.Fatalf("Solve(%v): %v", s, err)
				}
				return sol
			}
			cr := solve(qbd.RSchemeCyclic)
			lr := solve(qbd.RSchemeLogarithmic)

			rCR, rLR := cr.QBD().R, lr.QBD().R
			if rCR.Rows() != rLR.Rows() || rCR.Cols() != rLR.Cols() {
				t.Fatalf("R shape mismatch: %dx%d vs %dx%d", rCR.Rows(), rCR.Cols(), rLR.Rows(), rLR.Cols())
			}
			for r := 0; r < rCR.Rows(); r++ {
				for col := 0; col < rCR.Cols(); col++ {
					if d := math.Abs(rCR.At(r, col) - rLR.At(r, col)); d > tol {
						t.Errorf("R(%d,%d): |cyclic−logarithmic| = %g > %g", r, col, d, tol)
					}
				}
			}

			metrics := []struct {
				name string
				c, l float64
			}{
				{"QLenFG", cr.QLenFG, lr.QLenFG},
				{"WaitPFG", cr.WaitPFG, lr.WaitPFG},
				{"CompBG", cr.CompBG, lr.CompBG},
				{"QLenBG", cr.QLenBG, lr.QLenBG},
			}
			for _, m := range metrics {
				if d := math.Abs(m.c - m.l); d > tol*(1+math.Abs(m.c)) {
					t.Errorf("%s: |cyclic−logarithmic| = %g (cyclic %g, logarithmic %g)", m.name, d, m.c, m.l)
				}
			}
		})
	}
}
