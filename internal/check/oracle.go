package check

import (
	"fmt"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/refqueue"
)

// oracleTol is the tolerance for limit collapses against closed forms. The
// identities are exact; the tolerance absorbs solver round-off only.
const oracleTol = 1e-9

func solveMetrics(cfg core.Config) (*core.Model, *core.Solution, error) {
	model, err := core.NewModel(cfg)
	if err != nil {
		return nil, nil, err
	}
	sol, err := model.Solve()
	if err != nil {
		return nil, nil, err
	}
	return model, sol, nil
}

// MM1Collapse checks the exact-oracle limit: with p = 0 the model is the
// arrival process feeding an M/1 server, and with Poisson or equal-rate-MMPP
// arrivals (where the modulation is irrelevant) it must reproduce refqueue's
// M/M/1 closed forms to solver precision — queue length ρ/(1−ρ), response
// time 1/(µ−λ), empty probability 1−ρ.
func MM1Collapse() []Violation {
	var out []Violation
	for _, rho := range []float64{0.2, 0.5, 0.8} {
		for _, mk := range []struct {
			kind  string
			build func() (*arrival.MAP, error)
		}{
			{"poisson", func() (*arrival.MAP, error) { return arrival.Poisson(rho) }},
			// Equal per-state rates: the phase process modulates nothing.
			{"equal-rate-mmpp2", func() (*arrival.MAP, error) { return arrival.MMPP2(0.3, 0.7, rho, rho) }},
		} {
			arr, err := mk.build()
			if err != nil {
				out = append(out, Violation{Check: "mm1-collapse", Case: mk.kind,
					Detail: fmt.Sprintf("building arrival process: %v", err)})
				continue
			}
			vs := &violations{caseName: fmt.Sprintf("mm1[%s,rho=%.1f]", mk.kind, rho)}
			_, sol, err := solveMetrics(core.Config{Arrival: arr, ServiceRate: 1})
			if err != nil {
				vs.assert("mm1-collapse", fmt.Sprintf("solve failed: %v", err), false)
				out = append(out, vs.list...)
				continue
			}
			wantQ, err := refqueue.MM1QueueLength(rho)
			if err != nil {
				vs.assert("mm1-collapse", fmt.Sprintf("refqueue: %v", err), false)
				out = append(out, vs.list...)
				continue
			}
			wantW, err := refqueue.MM1Wait(rho, 1)
			if err != nil {
				vs.assert("mm1-collapse", fmt.Sprintf("refqueue: %v", err), false)
				out = append(out, vs.list...)
				continue
			}
			m := sol.Metrics
			vs.add("mm1-qlen", "QLenFG must match the M/M/1 closed form ρ/(1−ρ)", m.QLenFG, wantQ, oracleTol)
			// MM1Wait is the queueing wait W_q; the response time adds the
			// mean service time 1/µ = 1.
			vs.add("mm1-resptime", "RespTimeFG must match the M/M/1 closed form W_q + 1/µ", m.RespTimeFG, wantW+1, oracleTol)
			vs.add("mm1-empty", "ProbEmpty must equal 1−ρ", m.ProbEmpty, 1-rho, oracleTol)
			vs.add("mm1-util", "UtilFG must equal ρ", m.UtilFG, rho, oracleTol)
			vs.add("mm1-compBG", "CompBG must be exactly 1 with no BG work", m.CompBG, 1, 0)
			for _, z := range []struct {
				name string
				v    float64
			}{{"WaitPFG", m.WaitPFG}, {"QLenBG", m.QLenBG}, {"UtilBG", m.UtilBG}, {"ProbIdleWait", m.ProbIdleWait}} {
				vs.add("mm1-no-bg", z.name+" must be exactly 0 with no BG work", z.v, 0, 0)
			}
			out = append(out, vs.list...)
		}
	}
	return out
}

// PZeroPruning checks that p → 0 prunes the background dimension exactly:
// for a bursty (genuinely modulated) MMPP the solved metrics must be
// bit-stable against every BG parameter — buffer size, idle rate, idle
// policy — because no BG job is ever generated. This is the MMPP/M/1
// collapse for arrival processes refqueue has no closed form for.
func PZeroPruning() []Violation {
	arr, err := arrival.MMPP2(0.11, 0.23, 0.9, 0.1)
	if err != nil {
		return []Violation{{Check: "pzero-pruning", Detail: err.Error()}}
	}
	base := core.Config{Arrival: arr, ServiceRate: 1, BGProb: 0, BGBuffer: 0}
	_, ref, err := solveMetrics(base)
	if err != nil {
		return []Violation{{Check: "pzero-pruning", Detail: err.Error()}}
	}
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"X=5,a=0.7", core.Config{Arrival: arr, ServiceRate: 1, BGProb: 0, BGBuffer: 5, IdleRate: 0.7}},
		{"X=3,a=2,per-period", core.Config{Arrival: arr, ServiceRate: 1, BGProb: 0, BGBuffer: 3,
			IdleRate: 2, IdlePolicy: core.IdleWaitPerPeriod}},
	}
	var out []Violation
	for _, v := range variants {
		vs := &violations{caseName: "pzero[" + v.name + "]"}
		_, sol, err := solveMetrics(v.cfg)
		if err != nil {
			vs.assert("pzero-pruning", fmt.Sprintf("solve failed: %v", err), false)
			out = append(out, vs.list...)
			continue
		}
		pairs := []struct {
			name     string
			got, ref float64
		}{
			{"QLenFG", sol.QLenFG, ref.QLenFG},
			{"RespTimeFG", sol.RespTimeFG, ref.RespTimeFG},
			{"ProbEmpty", sol.ProbEmpty, ref.ProbEmpty},
			{"UtilFG", sol.UtilFG, ref.UtilFG},
			{"ThroughputFG", sol.ThroughputFG, ref.ThroughputFG},
		}
		for _, p := range pairs {
			vs.add("pzero-pruning", p.name+" must be invariant to pruned BG parameters at p=0",
				p.got, p.ref, oracleTol)
		}
		vs.add("pzero-compBG", "CompBG must be exactly 1 at p=0", sol.CompBG, 1, 0)
		vs.add("pzero-qlenBG", "QLenBG must be exactly 0 at p=0", sol.QLenBG, 0, 0)
		out = append(out, vs.list...)
	}
	return out
}

// Monotonicity checks the model's comparative statics: raising the BG spawn
// probability p can only lengthen the FG queue and lower the BG completion
// fraction (same drain capacity, more offered BG work), and enlarging the
// buffer X can only raise the completion fraction. The checks allow a
// round-off slack of 1e-9 per step.
func Monotonicity() []Violation {
	arr, err := arrival.MMPP2(0.2, 0.3, 0.8, 0.2)
	if err != nil {
		return []Violation{{Check: "monotonicity", Detail: err.Error()}}
	}
	arr, err = arr.WithRate(0.5)
	if err != nil {
		return []Violation{{Check: "monotonicity", Detail: err.Error()}}
	}
	var out []Violation

	// Sweep p at fixed X.
	ps := []float64{0, 0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.9}
	vs := &violations{caseName: "mono-p[X=5,a=1]"}
	var prevQ, prevC float64
	for i, p := range ps {
		_, sol, err := solveMetrics(core.Config{Arrival: arr, ServiceRate: 1,
			BGProb: p, BGBuffer: 5, IdleRate: 1})
		if err != nil {
			vs.assert("monotonicity", fmt.Sprintf("solve failed at p=%g: %v", p, err), false)
			break
		}
		if i > 0 {
			vs.assert("qlenFG-monotone-p",
				fmt.Sprintf("QLenFG fell from %.12g to %.12g as p rose to %g", prevQ, sol.QLenFG, p),
				sol.QLenFG >= prevQ-invariantTol)
			vs.assert("compBG-monotone-p",
				fmt.Sprintf("CompBG rose from %.12g to %.12g as p rose to %g", prevC, sol.CompBG, p),
				sol.CompBG <= prevC+invariantTol)
		}
		prevQ, prevC = sol.QLenFG, sol.CompBG
	}
	out = append(out, vs.list...)

	// Sweep X at fixed p.
	vs = &violations{caseName: "mono-X[p=0.3,a=1]"}
	prevC = -1
	for x := 0; x <= 8; x++ {
		_, sol, err := solveMetrics(core.Config{Arrival: arr, ServiceRate: 1,
			BGProb: 0.3, BGBuffer: x, IdleRate: 1})
		if err != nil {
			vs.assert("monotonicity", fmt.Sprintf("solve failed at X=%d: %v", x, err), false)
			break
		}
		if x > 0 {
			vs.assert("compBG-monotone-X",
				fmt.Sprintf("CompBG fell from %.12g to %.12g as X rose to %d", prevC, sol.CompBG, x),
				sol.CompBG >= prevC-invariantTol)
		}
		prevC = sol.CompBG
	}
	out = append(out, vs.list...)
	return out
}

// Oracles runs every exact-oracle suite and returns the combined violations.
func Oracles() []Violation {
	var out []Violation
	out = append(out, MM1Collapse()...)
	out = append(out, PZeroPruning()...)
	out = append(out, Monotonicity()...)
	return out
}
