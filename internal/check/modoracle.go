package check

import (
	"fmt"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
)

// Scenario oracles (PR 10): exact degenerate collapses and comparative
// statics of the capacity-modulated model and the smart admission policies.
// Like the other oracle suites, the identities are exact in the model; the
// tolerance absorbs solver round-off only.

// modOracleConfig is the shared base configuration of the scenario oracles:
// a genuinely bursty MMPP at moderate load, a nontrivial buffer, and an
// idle-wait rate fast enough that BG work is regularly present.
func modOracleConfig() (core.Config, error) {
	arr, err := arrival.MMPP2(0.2, 0.3, 0.8, 0.2)
	if err != nil {
		return core.Config{}, err
	}
	// Load 0.3 keeps the φ sweep down to 0.5 strictly stable: even with BG
	// work present all the time the modulated load λ/(φµ) stays at 0.6.
	arr, err = arr.WithRate(0.3)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{Arrival: arr, ServiceRate: 1, BGProb: 0.4, BGBuffer: 4, IdleRate: 1}, nil
}

// metricsPairs lists every metric of a solution for exact comparisons.
func metricsPairs(a, b core.Metrics) []struct {
	name     string
	got, ref float64
} {
	return []struct {
		name     string
		got, ref float64
	}{
		{"QLenFG", a.QLenFG, b.QLenFG},
		{"QLenBG", a.QLenBG, b.QLenBG},
		{"CompBG", a.CompBG, b.CompBG},
		{"WaitPFG", a.WaitPFG, b.WaitPFG},
		{"UtilFG", a.UtilFG, b.UtilFG},
		{"UtilBG", a.UtilBG, b.UtilBG},
		{"ProbIdleWait", a.ProbIdleWait, b.ProbIdleWait},
		{"ProbEmpty", a.ProbEmpty, b.ProbEmpty},
		{"ThroughputFG", a.ThroughputFG, b.ThroughputFG},
		{"ThroughputBG", a.ThroughputBG, b.ThroughputBG},
		{"GenRateBG", a.GenRateBG, b.GenRateBG},
		{"DropRateBG", a.DropRateBG, b.DropRateBG},
		{"RespTimeFG", a.RespTimeFG, b.RespTimeFG},
		{"RespTimeBG", a.RespTimeBG, b.RespTimeBG},
		{"DeadlineMissBG", a.DeadlineMissBG, b.DeadlineMissBG},
	}
}

// ModFactorDegenerate checks the Marin–Mitrani-style degenerate collapse:
// φ = 1 with blind admission IS the baseline model — the same chain, the
// same cache key, and (because the modulated kernels alias the unmodulated
// ones at φ = 1) bit-for-bit the same solution.
func ModFactorDegenerate() []Violation {
	base, err := modOracleConfig()
	if err != nil {
		return []Violation{{Check: "modfactor-degenerate", Detail: err.Error()}}
	}
	vs := &violations{caseName: "mod-degenerate[phi=1]"}
	_, ref, err := solveMetrics(base)
	if err != nil {
		return []Violation{{Check: "modfactor-degenerate", Detail: err.Error()}}
	}
	mod := base
	mod.ModFactor = 1
	mod.BGAdmit = core.AdmitAll
	_, sol, err := solveMetrics(mod)
	if err != nil {
		vs.assert("modfactor-degenerate", fmt.Sprintf("solve failed: %v", err), false)
		return vs.list
	}
	for _, p := range metricsPairs(sol.Metrics, ref.Metrics) {
		vs.add("modfactor-degenerate", p.name+" must be bit-identical to the baseline at φ=1",
			p.got, p.ref, 0)
	}
	kBase, err := core.CacheKey(base)
	if err != nil {
		vs.assert("modfactor-degenerate", fmt.Sprintf("baseline cache key: %v", err), false)
		return vs.list
	}
	kMod, err := core.CacheKey(mod)
	if err != nil {
		vs.assert("modfactor-degenerate", fmt.Sprintf("modulated cache key: %v", err), false)
		return vs.list
	}
	vs.assert("modfactor-degenerate-key",
		fmt.Sprintf("cache key must be identical at φ=1: %s vs %s", kMod, kBase), kMod == kBase)
	return vs.list
}

// ModFactorMonotonicity checks the comparative statics of modulation:
// slowing the server while BG work is present (smaller φ) can only lengthen
// the FG queue.
func ModFactorMonotonicity() []Violation {
	base, err := modOracleConfig()
	if err != nil {
		return []Violation{{Check: "modfactor-monotone", Detail: err.Error()}}
	}
	vs := &violations{caseName: "mod-monotone[phi-sweep]"}
	phis := []float64{0.5, 0.65, 0.8, 0.9, 1}
	prevQ := -1.0
	for i, phi := range phis {
		cfg := base
		cfg.ModFactor = phi
		_, sol, err := solveMetrics(cfg)
		if err != nil {
			vs.assert("modfactor-monotone", fmt.Sprintf("solve failed at φ=%g: %v", phi, err), false)
			break
		}
		if i > 0 {
			vs.assert("qlenFG-monotone-phi",
				fmt.Sprintf("QLenFG rose from %.12g to %.12g as φ rose to %g", prevQ, sol.QLenFG, phi),
				sol.QLenFG <= prevQ+invariantTol)
		}
		prevQ = sol.QLenFG
	}
	return vs.list
}

// UtilThresholdDegenerate checks that a util-threshold policy whose K
// exceeds any reachable FG queue position within the modelled levels is
// blind admission: with a huge threshold nothing is ever denied, and the
// solved metrics collapse to AdmitAll at solver precision.
func UtilThresholdDegenerate() []Violation {
	base, err := modOracleConfig()
	if err != nil {
		return []Violation{{Check: "util-degenerate", Detail: err.Error()}}
	}
	vs := &violations{caseName: "util-degenerate[K=40]"}
	_, ref, err := solveMetrics(base)
	if err != nil {
		return []Violation{{Check: "util-degenerate", Detail: err.Error()}}
	}
	huge := base
	huge.BGAdmit = core.AdmitUtilThreshold
	huge.FGThreshold = 40
	_, sol, err := solveMetrics(huge)
	if err != nil {
		vs.assert("util-degenerate", fmt.Sprintf("solve failed: %v", err), false)
		return vs.list
	}
	for _, p := range metricsPairs(sol.Metrics, ref.Metrics) {
		vs.add("util-degenerate", p.name+" must match blind admission under a never-binding threshold",
			p.got, p.ref, oracleTol)
	}
	return vs.list
}

// DeadlineMonotonicity checks the comparative statics of reneging: a faster
// deadline clock can only raise the miss fraction and lower the BG
// completion throughput.
func DeadlineMonotonicity() []Violation {
	base, err := modOracleConfig()
	if err != nil {
		return []Violation{{Check: "deadline-monotone", Detail: err.Error()}}
	}
	vs := &violations{caseName: "deadline-monotone[delta-sweep]"}
	deltas := []float64{0.1, 0.3, 1, 3}
	prevMiss, prevTput := -1.0, -1.0
	for i, delta := range deltas {
		cfg := base
		cfg.BGAdmit = core.AdmitDeadline
		cfg.DeadlineRate = delta
		_, sol, err := solveMetrics(cfg)
		if err != nil {
			vs.assert("deadline-monotone", fmt.Sprintf("solve failed at δ=%g: %v", delta, err), false)
			break
		}
		vs.assert("deadline-miss-positive",
			fmt.Sprintf("DeadlineMissBG = %g must be positive at δ=%g", sol.DeadlineMissBG, delta),
			sol.DeadlineMissBG > 0)
		if i > 0 {
			vs.assert("deadline-miss-monotone",
				fmt.Sprintf("DeadlineMissBG fell from %.12g to %.12g as δ rose to %g", prevMiss, sol.DeadlineMissBG, delta),
				sol.DeadlineMissBG >= prevMiss-invariantTol)
			vs.assert("bg-throughput-monotone-delta",
				fmt.Sprintf("ThroughputBG rose from %.12g to %.12g as δ rose to %g", prevTput, sol.ThroughputBG, delta),
				sol.ThroughputBG <= prevTput+invariantTol)
		}
		prevMiss, prevTput = sol.DeadlineMissBG, sol.ThroughputBG
	}
	return vs.list
}

// ScenarioOracles runs every scenario-expansion oracle suite.
func ScenarioOracles() []Violation {
	var out []Violation
	out = append(out, ModFactorDegenerate()...)
	out = append(out, ModFactorMonotonicity()...)
	out = append(out, UtilThresholdDegenerate()...)
	out = append(out, DeadlineMonotonicity()...)
	return out
}
