package check

import (
	"context"
	"strings"
	"testing"

	"bgperf/internal/core"
)

// TestOracles pins every exact-oracle suite green: the M/M/1 collapse against
// refqueue, the p=0 pruning invariance, and the monotonicity sweeps.
func TestOracles(t *testing.T) {
	for _, v := range Oracles() {
		t.Errorf("oracle violation: %s", v)
	}
}

// TestRunConformance is the in-tree face of `bgperf check`: a moderate run
// must pass with zero violations and zero disagreements.
func TestRunConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance run simulates dozens of configurations")
	}
	rep, err := Run(context.Background(), Options{N: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	for _, d := range rep.Disagreements {
		t.Errorf("disagreement: %s %s analytic %.6g vs sim %.6g (allowed %.3g, diff %.3g)",
			d.Case, d.Metric, d.Analytic, d.Sim, d.Allowed, d.Diff)
	}
	if rep.Comparisons != 16*len(paperMetrics) {
		t.Errorf("expected %d comparisons, got %d", 16*len(paperMetrics), rep.Comparisons)
	}
	if !rep.OK() || !strings.HasPrefix(rep.Summary(), "PASS") {
		t.Errorf("report not OK: %s", rep.Summary())
	}
}

// TestPlanInversion runs the plan-inversion oracle on its own: the inverse
// solver must round-trip against the forward solver with zero violations,
// cycling all three decision variables.
func TestPlanInversion(t *testing.T) {
	n := 6
	if !testing.Short() {
		n = planCases
	}
	vs, inv, err := PlanInversion(context.Background(), n, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("plan-inversion violation: %s", v)
	}
	if inv < n*5 {
		t.Errorf("plan-inversion performed %d invariant checks, want >= %d", inv, n*5)
	}
}

// TestPlanInversionCancellation pins that a canceled context surfaces as an
// error, not a vacuously green (empty) violation list.
func TestPlanInversionCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := PlanInversion(ctx, 4, 1); err == nil {
		t.Fatal("cancelled oracle returned no error")
	}
}

// TestGeneratorDeterministic pins that the case stream is a pure function of
// the seed — conformance failures must be reproducible from (seed, index).
func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGenerator(7), NewGenerator(7)
	other := NewGenerator(8)
	var differs bool
	for i := 0; i < 20; i++ {
		ca, cb, co := a.Next(), b.Next(), other.Next()
		if ca.Name != cb.Name {
			t.Fatalf("case %d differs across equal seeds: %q vs %q", i, ca.Name, cb.Name)
		}
		if ca.Name != co.Name {
			differs = true
		}
	}
	if !differs {
		t.Error("seeds 7 and 8 generated identical case streams")
	}
}

// TestGeneratorValid draws a few hundred cases and checks each is accepted
// by the model constructor with the documented parameter bounds.
func TestGeneratorValid(t *testing.T) {
	g := NewGenerator(3)
	for i := 0; i < 300; i++ {
		c := g.Next()
		model, err := core.NewModel(c.Cfg)
		if err != nil {
			t.Fatalf("case %s invalid: %v", c.Name, err)
		}
		if rho := model.FGUtilization(); rho < 0.1-1e-9 || rho > 0.6+1e-9 {
			t.Errorf("case %s: utilization %g outside [0.1, 0.6]", c.Name, rho)
		}
		if c.Cfg.BGBuffer > 6 {
			t.Errorf("case %s: buffer %d above generator bound", c.Name, c.Cfg.BGBuffer)
		}
	}
}

// TestSolvedPointDetectsViolations corrupts a correct solution and checks the
// invariant checker actually fires — guarding against a vacuously green
// harness.
func TestSolvedPointDetectsViolations(t *testing.T) {
	c := NewGenerator(1).Next()
	model, err := core.NewModel(c.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if vs := SolvedPoint(c.Name, model, sol); len(vs) != 0 {
		t.Fatalf("clean solution flagged: %v", vs)
	}
	sol.Metrics.QLenFG += 0.5
	vs := SolvedPoint(c.Name, model, sol)
	if len(vs) == 0 {
		t.Fatal("corrupted QLenFG not detected")
	}
	var found bool
	for _, v := range vs {
		if v.Check == "littles-law-fg" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected littles-law-fg violation, got %v", vs)
	}
}

// TestRunCancellation checks ctx cancellation surfaces as an error instead
// of a partial report.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Options{N: 4, Seed: 1}); err == nil {
		t.Fatal("cancelled run returned no error")
	}
}
