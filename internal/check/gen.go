package check

import (
	"fmt"
	"math"
	"math/rand"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/sim"
)

// Case is one generated conformance configuration: the analytic config plus
// a compact label for reports.
type Case struct {
	// Name encodes the generation index and headline parameters.
	Name string
	// Cfg is the model configuration, valid by construction.
	Cfg core.Config
}

// Generator draws random valid model configurations from a seeded stream.
// The parameter ranges are deliberately moderate — offered load in
// [0.1, 0.6], buffers up to 6, modulation fast enough that a simulation
// window of a few 10^4 time units cycles every arrival phase many times —
// so that replicated simulations of each case converge tightly enough for
// CI-calibrated agreement checks. The generator is deterministic in its
// seed: the same seed yields the same case sequence on every platform.
type Generator struct {
	rng *rand.Rand
	n   int
}

// NewGenerator returns a generator seeded with seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// uniform returns a sample of U[lo, hi].
func (g *Generator) uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.rng.Float64()
}

// Next draws the next configuration. The service rate is fixed at µ = 1
// (time is measured in mean service times, without loss of generality);
// arrival processes are Poisson (1 in 8) or 2-state MMPPs rescaled to the
// target utilization, with burst ratios up to 8 and squared coefficients of
// variation moderate enough for stable simulation estimates.
func (g *Generator) Next() Case {
	idx := g.n
	g.n++

	util := g.uniform(0.10, 0.60)
	var (
		arr  *arrival.MAP
		err  error
		kind string
	)
	if g.rng.Intn(8) == 0 {
		arr, err = arrival.Poisson(util)
		kind = "poisson"
	} else {
		// Burstiness: per-state rates with ratio up to 8, modulation rates
		// in [0.05, 0.6] so a 3·10^4-unit window sees >1500 phase flips.
		ratio := g.uniform(1, 8)
		v1 := g.uniform(0.05, 0.6)
		v2 := g.uniform(0.05, 0.6)
		arr, err = arrival.MMPP2(v1, v2, ratio, 1)
		if err == nil {
			arr, err = arr.WithRate(util)
		}
		kind = "mmpp2"
	}
	if err != nil {
		// Unreachable for the ranges above; fail loudly rather than skip.
		panic(fmt.Sprintf("check: generator produced invalid arrival process: %v", err))
	}

	// p = 0 in one case out of 8 keeps the degenerate MMPP/M/1 branch in
	// every conformance run.
	p := 0.0
	if g.rng.Intn(8) != 0 {
		p = g.uniform(0.05, 0.95)
	}
	x := g.rng.Intn(7) // 0..6
	alpha := g.uniform(0.2, 3)
	policy := core.IdleWaitPerJob
	if g.rng.Intn(5) == 0 {
		policy = core.IdleWaitPerPeriod
	}

	// Capacity modulation in one case out of three. φ is drawn above
	// util/0.7 so the modulated system stays comfortably stable even if BG
	// work were present all the time (λ/(φµ) ≤ 0.7), which also keeps the
	// simulation windows convergent.
	phi := 1.0
	if g.rng.Intn(3) == 0 {
		phi = g.uniform(math.Min(0.95, util/0.7), 1)
	}

	// Admission policy: 1 in 6 util-threshold, 1 in 6 deadline, the rest
	// blind. The deadline rate stays moderate so the renege flow is a
	// visible but not dominant fraction of the admitted flow.
	admit := core.AdmitAll
	fgThreshold := 0
	deadlineRate := 0.0
	extras := ""
	switch g.rng.Intn(6) {
	case 0:
		admit = core.AdmitUtilThreshold
		fgThreshold = g.rng.Intn(4)
		extras = fmt.Sprintf(",util-K=%d", fgThreshold)
	case 1:
		admit = core.AdmitDeadline
		deadlineRate = g.uniform(0.05, 0.5)
		extras = fmt.Sprintf(",dl=%.2f", deadlineRate)
	}
	if phi != 1 {
		extras += fmt.Sprintf(",phi=%.2f", phi)
	}

	cfg := core.Config{
		Arrival:      arr,
		ServiceRate:  1,
		BGProb:       p,
		BGBuffer:     x,
		IdleRate:     alpha,
		IdlePolicy:   policy,
		ModFactor:    phi,
		BGAdmit:      admit,
		FGThreshold:  fgThreshold,
		DeadlineRate: deadlineRate,
	}
	return Case{
		Name: fmt.Sprintf("case%03d[%s,util=%.2f,p=%.2f,X=%d,a=%.2f,%s%s]",
			idx, kind, util, p, x, alpha, policy, extras),
		Cfg: cfg,
	}
}

// SimConfig translates an analytic configuration into the equivalent
// simulation configuration with the given seed and measurement windows.
func SimConfig(cfg core.Config, seed int64, warmup, measure float64) sim.Config {
	return sim.Config{
		Arrival:      cfg.Arrival,
		ServiceRate:  cfg.ServiceRate,
		Service:      cfg.Service,
		ServiceMAP:   cfg.ServiceMAP,
		BGProb:       cfg.BGProb,
		BGBuffer:     cfg.BGBuffer,
		IdleRate:     cfg.IdleRate,
		IdleWait:     cfg.IdleWait,
		IdlePolicy:   cfg.IdlePolicy,
		ModFactor:    cfg.ModFactor,
		BGAdmit:      cfg.BGAdmit,
		FGThreshold:  cfg.FGThreshold,
		DeadlineRate: cfg.DeadlineRate,
		Seed:         seed,
		WarmupTime:   warmup,
		MeasureTime:  measure,
	}
}
