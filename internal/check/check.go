// Package check is the cross-model conformance harness: it generates random
// valid model configurations and verifies that the repository's three
// independent implementations of the paper's model — the matrix-geometric
// analytic solver (internal/core), the event-driven simulator (internal/sim),
// and the closed-form reference queues (internal/refqueue) — agree with each
// other and with exact structural invariants.
//
// Three layers of checking, in increasing strictness:
//
//   - Statistical agreement: for every generated configuration the analytic
//     solution of the paper metrics (QLenFG, WaitPFG, CompBG, QLenBG, and
//     the scenario extension's DeadlineMissBG) must fall inside a
//     confidence-calibrated band around the replicated simulation estimate.
//   - Structural invariants, at numerical precision, on every solved point:
//     stationary mass is 1, state-kind probabilities partition, the busy
//     probability equals the offered load ρ = λ/µ, foreground throughput
//     equals the arrival rate, BG flow balances (throughput = generation −
//     drops), CompBG is the surviving-flow fraction, and both classes obey
//     Little's law.
//   - Exact oracles at limits: p → 0 collapses to an MMPP/M/1 queue whose
//     solution must be invariant to the pruned BG parameters and, with
//     Poisson or equal-rate-MMPP input, must match refqueue's M/M/1 closed
//     forms to 1e-9; QLenFG and CompBG must be monotone in p and X.
//
// The harness runs as `bgperf check`, as package tests, and as native fuzz
// targets (FuzzSolveVsSim, FuzzCacheKeyRoundTrip).
package check

import (
	"fmt"
	"math"

	"bgperf/internal/core"
)

// invariantTol is the absolute tolerance for structural identities that hold
// exactly in the model and are limited only by solver round-off.
const invariantTol = 1e-9

// Violation records one failed conformance check.
type Violation struct {
	// Check names the violated property (e.g. "littles-law-fg").
	Check string `json:"check"`
	// Case identifies the configuration the check ran on.
	Case string `json:"case"`
	// Detail is a human-readable account of the failure.
	Detail string `json:"detail"`
	// Got and Want are the two sides of the violated identity; Diff is
	// |Got−Want|.
	Got  float64 `json:"got"`
	Want float64 `json:"want"`
	Diff float64 `json:"diff"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s [%s]: %s (got %.12g, want %.12g, diff %.3g)",
		v.Check, v.Case, v.Detail, v.Got, v.Want, v.Diff)
}

// violations collects failures with a shared case label.
type violations struct {
	caseName string
	list     []Violation
}

func (vs *violations) add(check, detail string, got, want, tol float64) {
	diff := math.Abs(got - want)
	if diff <= tol && !math.IsNaN(got) && !math.IsNaN(want) {
		return
	}
	vs.list = append(vs.list, Violation{
		Check: check, Case: vs.caseName, Detail: detail,
		Got: got, Want: want, Diff: diff,
	})
}

func (vs *violations) assert(check, detail string, ok bool) {
	if ok {
		return
	}
	vs.list = append(vs.list, Violation{Check: check, Case: vs.caseName, Detail: detail})
}

// SolvedPoint verifies every structural invariant of one analytic solution
// and returns the violations (nil when the point conforms). The identities
// hold exactly in the model; tolerances only absorb floating-point round-off
// from the matrix-geometric solve.
func SolvedPoint(caseName string, model *core.Model, sol *core.Solution) []Violation {
	vs := &violations{caseName: caseName}
	m := sol.Metrics
	cfg := model.Config()

	// Stationary distribution: total mass 1, state kinds partition it.
	vs.add("total-mass", "stationary probabilities must sum to 1",
		sol.TotalMass(), 1, invariantTol)
	kindSum := sol.KindProb(core.KindEmpty) + sol.KindProb(core.KindFG) +
		sol.KindProb(core.KindBG) + sol.KindProb(core.KindIdle)
	vs.add("kind-partition", "empty/fg/bg/idle-wait probabilities must partition the mass",
		kindSum, 1, invariantTol)
	vs.add("kind-metrics", "metric probabilities must partition the mass",
		m.ProbEmpty+m.UtilFG+m.UtilBG+m.ProbIdleWait, 1, invariantTol)

	// Rate identities. In steady state the server is FG-busy exactly a
	// fraction ρ = λ/µ of the time — when capacity is modulated (φ < 1) the
	// server is slower while BG work is present, so FG-busy time can only
	// grow and the exact identity relaxes to a lower bound. The FG
	// completion rate equals the arrival rate either way (nothing is dropped
	// or lost in the FG class, whatever the admission policy does to BG).
	lambda := cfg.Arrival.Rate()
	if cfg.ModFactor == 1 {
		vs.add("busy-probability", "P(FG in service) must equal the offered load λ/µ",
			m.UtilFG, model.FGUtilization(), invariantTol)
	} else {
		vs.assert("busy-probability-modulated",
			fmt.Sprintf("P(FG in service) = %g must be at least the offered load %g under modulation",
				m.UtilFG, model.FGUtilization()),
			m.UtilFG >= model.FGUtilization()-invariantTol)
	}
	vs.add("fg-throughput", "FG completion rate must equal the arrival rate",
		m.ThroughputFG, lambda, invariantTol)

	// BG flow balance: completions are exactly the admitted jobs that did
	// not renege, and CompBG is the non-dropped fraction of generated flow.
	// The renege rate is DeadlineMissBG · admission rate (0 except under the
	// deadline policy).
	admitted := m.GenRateBG - m.DropRateBG
	vs.add("bg-flow-balance", "BG throughput must equal generation minus drops minus reneges",
		m.ThroughputBG, admitted*(1-m.DeadlineMissBG), invariantTol)
	if m.GenRateBG > 0 {
		vs.add("compBG-flow", "CompBG must be the non-dropped fraction of generated flow",
			m.CompBG, 1-m.DropRateBG/m.GenRateBG, invariantTol)
	} else {
		vs.add("compBG-degenerate", "CompBG must be 1 when no BG jobs are generated",
			m.CompBG, 1, 0)
	}

	// Little's law for both classes. The FG population sees arrival rate λ;
	// the BG population sees the admission rate (which exceeds the
	// completion rate exactly by the renege flow under the deadline policy).
	vs.add("littles-law-fg", "QLenFG must equal RespTimeFG × FG throughput",
		m.RespTimeFG*m.ThroughputFG, m.QLenFG, invariantTol)
	vs.add("littles-law-bg", "QLenBG must equal RespTimeBG × BG admission rate",
		m.RespTimeBG*admitted, m.QLenBG, invariantTol)

	// DeadlineMissBG is a fraction of admitted flow under the deadline
	// policy and identically zero under every other policy.
	if cfg.BGAdmit == core.AdmitDeadline {
		vs.assert("deadline-miss-range",
			fmt.Sprintf("DeadlineMissBG = %g must lie in [0,1]", m.DeadlineMissBG),
			m.DeadlineMissBG >= -invariantTol && m.DeadlineMissBG <= 1+invariantTol)
	} else {
		vs.add("deadline-miss-degenerate", "DeadlineMissBG must be exactly 0 off the deadline policy",
			m.DeadlineMissBG, 0, 0)
	}

	// Ranges: probabilities and ratios live in [0,1], queue lengths and
	// rates are nonnegative and finite, and the BG queue fits its buffer
	// plus the job in service.
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"CompBG", m.CompBG}, {"WaitPFG", m.WaitPFG}, {"UtilFG", m.UtilFG},
		{"UtilBG", m.UtilBG}, {"ProbIdleWait", m.ProbIdleWait}, {"ProbEmpty", m.ProbEmpty},
	} {
		vs.assert("probability-range", fmt.Sprintf("%s = %g must lie in [0,1]", p.name, p.v),
			p.v >= -invariantTol && p.v <= 1+invariantTol)
	}
	for _, n := range []struct {
		name string
		v    float64
	}{
		{"QLenFG", m.QLenFG}, {"QLenBG", m.QLenBG}, {"ThroughputFG", m.ThroughputFG},
		{"ThroughputBG", m.ThroughputBG}, {"GenRateBG", m.GenRateBG},
		{"DropRateBG", m.DropRateBG}, {"RespTimeFG", m.RespTimeFG}, {"RespTimeBG", m.RespTimeBG},
	} {
		vs.assert("nonnegative-finite", fmt.Sprintf("%s = %g must be nonnegative and finite", n.name, n.v),
			n.v >= -invariantTol && !math.IsInf(n.v, 0) && !math.IsNaN(n.v))
	}
	vs.assert("bg-buffer-bound",
		fmt.Sprintf("QLenBG = %g must not exceed buffer+1 = %d", m.QLenBG, cfg.BGBuffer+1),
		m.QLenBG <= float64(cfg.BGBuffer)+1+invariantTol)

	return vs.list
}
