package check

import (
	"context"
	"fmt"
	"math"

	"bgperf/internal/core"
	"bgperf/internal/obs"
	"bgperf/internal/sim"
)

// Options parameterizes a conformance run.
type Options struct {
	// N is the number of random configurations to generate and check
	// (default 32).
	N int
	// Seed seeds the configuration generator and, offset per case, the
	// simulations (default 1).
	Seed int64
	// Tol scales the deterministic part of the agreement band: a sim and an
	// analytic value agree when their difference is at most
	// ciMult·halfwidth + Tol·(0.1 + |analytic|) (default 0.02).
	Tol float64
	// Reps is the number of simulation replications per case (default 6).
	Reps int
	// Workers bounds simulation parallelism (0: all cores).
	Workers int
	// Observer optionally receives solver and simulator diagnostics.
	Observer obs.Observer
}

func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Tol == 0 {
		o.Tol = 0.02
	}
	if o.Reps == 0 {
		o.Reps = 6
	}
	return o
}

// Simulation window per case. Warm-up covers transients at the loads the
// generator emits (util ≤ 0.6); the measurement window cycles the slowest
// generated MMPP modulation (rate ≥ 0.05) more than a thousand times.
const (
	warmupTime  = 2000.0
	measureTime = 30000.0
	// planSeedOffset decorrelates the plan-inversion oracle's case stream
	// from the sim-agreement stream while staying deterministic in the seed.
	planSeedOffset = 7_654_321
	// ciMult widens the per-metric Student-t 95% half-width: with four
	// metrics on dozens of cases, 5% misses per comparison would make runs
	// flaky, while 4× the half-width keeps false alarms below ~1e-4 per run
	// and still catches any systematic model disagreement.
	ciMult = 4.0
)

// Agreement records one sim-vs-analytic comparison of a paper metric.
type Agreement struct {
	Case      string  `json:"case"`
	Metric    string  `json:"metric"`
	Analytic  float64 `json:"analytic"`
	Sim       float64 `json:"sim"`
	HalfWidth float64 `json:"halfWidth"`
	Allowed   float64 `json:"allowed"`
	Diff      float64 `json:"diff"`
	OK        bool    `json:"ok"`
}

// Report is the outcome of a conformance run.
type Report struct {
	// Cases is the number of generated configurations checked.
	Cases int `json:"cases"`
	// Seed is the generator seed the run used.
	Seed int64 `json:"seed"`
	// Comparisons counts sim-vs-analytic metric comparisons; Invariants
	// counts structural and oracle checks (violations listed on failure).
	Comparisons int `json:"comparisons"`
	Invariants  int `json:"invariants"`
	// Violations are the failed structural/oracle checks (empty on pass).
	Violations []Violation `json:"violations"`
	// Disagreements are the failed metric comparisons (empty on pass).
	Disagreements []Agreement `json:"disagreements"`
	// Agreements holds every comparison, passed or failed, for reporting.
	Agreements []Agreement `json:"agreements"`
}

// OK reports whether the run passed: no invariant violations and no metric
// disagreements.
func (r *Report) OK() bool {
	return len(r.Violations) == 0 && len(r.Disagreements) == 0
}

// Summary is a one-line human-readable outcome.
func (r *Report) Summary() string {
	status := "PASS"
	if !r.OK() {
		status = "FAIL"
	}
	return fmt.Sprintf("%s: %d cases, %d metric comparisons (%d disagree), %d invariant checks (%d violated)",
		status, r.Cases, r.Comparisons, len(r.Disagreements), r.Invariants, len(r.Violations))
}

// paperMetrics are the four headline metrics the paper reports, extracted
// from a metric set.
var paperMetrics = []struct {
	name string
	get  func(core.Metrics) float64
}{
	{"qlenFG", func(m core.Metrics) float64 { return m.QLenFG }},
	{"waitPFG", func(m core.Metrics) float64 { return m.WaitPFG }},
	{"compBG", func(m core.Metrics) float64 { return m.CompBG }},
	{"qlenBG", func(m core.Metrics) float64 { return m.QLenBG }},
	{"deadlineMissBG", func(m core.Metrics) float64 { return m.DeadlineMissBG }},
}

// Run executes the conformance harness: the exact-oracle suites once, then
// for each generated configuration the structural invariants on the analytic
// solution and the CI-calibrated agreement between the replicated simulation
// and the analytic values of the four paper metrics. ctx cancels in-flight
// simulations (nil is treated as background).
func Run(ctx context.Context, opts Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	rep := &Report{Seed: opts.Seed}

	rep.Violations = append(rep.Violations, Oracles()...)
	// Count oracle checks: MM1Collapse runs 9 adds per config over 6
	// configs, PZeroPruning 7 per variant over 2, Monotonicity the sweeps.
	// Exact bookkeeping matters less than a nonzero denominator for the
	// summary; tally what the suites actually inspected.
	rep.Invariants += 6*9 + 2*7 + (len([]float64{0, 0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.9})-1)*2 + 8

	rep.Violations = append(rep.Violations, ScenarioOracles()...)
	// ScenarioOracles: 16 degenerate φ=1 identities (15 metrics + key), a
	// 5-point φ sweep (4 steps), 15 huge-K identities, and a 4-point δ sweep
	// (4 positivity + 3·2 monotone steps).
	rep.Invariants += 16 + 4 + 15 + 4 + 6

	// Plan-inversion oracle: the inverse solver must round-trip against the
	// forward solver on its own case stream (seed offset keeps it independent
	// of the sim comparison stream below).
	pvs, pinv, err := PlanInversion(ctx, opts.N, opts.Seed+planSeedOffset)
	if err != nil {
		return nil, err
	}
	rep.Violations = append(rep.Violations, pvs...)
	rep.Invariants += pinv

	gen := NewGenerator(opts.Seed)
	for i := 0; i < opts.N; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c := gen.Next()
		model, err := core.NewModel(c.Cfg)
		if err != nil {
			return nil, fmt.Errorf("check: generated invalid config %s: %w", c.Name, err)
		}
		sol, err := model.SolveObserved(opts.Observer)
		if err != nil {
			return nil, fmt.Errorf("check: solving %s: %w", c.Name, err)
		}
		vs := SolvedPoint(c.Name, model, sol)
		rep.Violations = append(rep.Violations, vs...)
		rep.Invariants += 26 // checks per solved point in SolvedPoint

		// Independent simulation: give every case its own seed region far
		// from the others so replication streams never overlap.
		simCfg := SimConfig(c.Cfg, opts.Seed+int64(i+1)*1_000_003, warmupTime, measureTime)
		agg, err := sim.RunReplicationsOpts(ctx, simCfg, opts.Reps, opts.Workers, opts.Observer)
		if err != nil {
			return nil, fmt.Errorf("check: simulating %s: %w", c.Name, err)
		}
		for _, pm := range paperMetrics {
			ana := pm.get(sol.Metrics)
			simVal := pm.get(agg.Mean)
			half := replicationHalfWidth(agg, pm.get)
			allowed := ciMult*half + opts.Tol*(0.1+math.Abs(ana))
			diff := math.Abs(simVal - ana)
			a := Agreement{
				Case: c.Name, Metric: pm.name, Analytic: ana, Sim: simVal,
				HalfWidth: half, Allowed: allowed, Diff: diff,
				OK: diff <= allowed && !math.IsNaN(diff),
			}
			rep.Agreements = append(rep.Agreements, a)
			rep.Comparisons++
			if !a.OK {
				rep.Disagreements = append(rep.Disagreements, a)
			}
		}
	}
	rep.Cases = opts.N
	return rep, nil
}

// t95 holds two-sided 95% Student-t critical values for 1..30 degrees of
// freedom; beyond that the normal value is close enough.
var t95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// replicationHalfWidth is the ±half-width of a 95% Student-t confidence
// interval on the across-replication mean of the given metric. sim exports
// half-widths only for the headline queue lengths; the conformance harness
// needs them for WaitPFG and CompBG too, so it derives them from the compact
// per-replication metric rows (populated at any replication count, unlike
// the full Replications slice).
func replicationHalfWidth(agg *sim.ReplicationResult, get func(core.Metrics) float64) float64 {
	n := len(agg.RepMetrics)
	if n < 2 {
		return 0
	}
	var mean float64
	for _, m := range agg.RepMetrics {
		mean += get(m)
	}
	mean /= float64(n)
	var ss float64
	for _, m := range agg.RepMetrics {
		d := get(m) - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	t := 1.96
	if df := n - 1; df <= len(t95) {
		t = t95[df-1]
	}
	return t * sd / math.Sqrt(float64(n))
}
