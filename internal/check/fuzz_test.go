package check

import (
	"math"
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/sim"
)

// fold maps an arbitrary finite float into [lo, hi) deterministically, so
// fuzz inputs always land in the generator's validated parameter space and
// every interesting corner (p = 0, X = 0, extreme burst ratios) stays
// reachable.
func fold(v, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return lo
	}
	span := hi - lo
	f := math.Mod(math.Abs(v), span)
	return lo + f
}

// fuzzConfig maps raw fuzz inputs to a valid model configuration, or ok=false
// for inputs with no valid interpretation. The ranges mirror the conformance
// generator (see gen.go) so simulation windows stay statistically calibrated.
func fuzzConfig(v1, v2, ratio, util, p, alpha float64, x int, perPeriod bool) (core.Config, bool) {
	util = fold(util, 0.10, 0.60)
	ratio = fold(ratio, 1, 8)
	v1 = fold(v1, 0.05, 0.6)
	v2 = fold(v2, 0.05, 0.6)
	p = fold(p, 0, 1)
	if p < 0.03 {
		p = 0 // keep the degenerate branch reachable, avoid starving CompBG
	}
	alpha = fold(alpha, 0.2, 3)
	if x < 0 {
		x = -x
	}
	x %= 7
	policy := core.IdleWaitPerJob
	if perPeriod {
		policy = core.IdleWaitPerPeriod
	}
	arr, err := arrival.MMPP2(v1, v2, ratio, 1)
	if err != nil {
		return core.Config{}, false
	}
	arr, err = arr.WithRate(util)
	if err != nil {
		return core.Config{}, false
	}
	return core.Config{
		Arrival: arr, ServiceRate: 1, BGProb: p, BGBuffer: x,
		IdleRate: alpha, IdlePolicy: policy,
	}, true
}

// FuzzSolveVsSim cross-checks the analytic solver and the simulator on
// fuzzer-chosen configurations: the solution must satisfy every structural
// invariant exactly, the simulator's raw counters must conserve flow, both
// sides must agree exactly on the degenerate p = 0 metrics, and the four
// paper metrics must agree within a deliberately generous statistical band
// (the tight CI-calibrated band is `bgperf check`'s job — here windows are
// short so fuzzing covers many configurations per second).
func FuzzSolveVsSim(f *testing.F) {
	f.Add(0.2, 0.3, 4.0, 0.5, 0.3, 1.0, 5, false)
	f.Add(0.1, 0.5, 1.5, 0.2, 0.0, 0.5, 3, true)
	f.Add(0.6, 0.05, 7.9, 0.59, 0.94, 2.9, 6, false)
	f.Add(0.05, 0.05, 1.0, 0.1, 0.5, 0.2, 0, false)
	f.Fuzz(func(t *testing.T, v1, v2, ratio, util, p, alpha float64, x int, perPeriod bool) {
		cfg, ok := fuzzConfig(v1, v2, ratio, util, p, alpha, x, perPeriod)
		if !ok {
			t.Skip("no valid interpretation")
		}
		model, err := core.NewModel(cfg)
		if err != nil {
			t.Fatalf("folded config rejected: %v", err)
		}
		sol, err := model.Solve()
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		for _, v := range SolvedPoint("fuzz", model, sol) {
			t.Errorf("invariant violation: %s", v)
		}

		simCfg := SimConfig(cfg, 1, 500, 6000)
		agg, err := sim.RunReplicationsOpts(nil, simCfg, 2, 2, nil)
		if err != nil {
			t.Fatalf("sim: %v", err)
		}
		for _, r := range agg.Replications {
			c := r.Counters
			if c.GeneratedBG != c.AdmittedBG+c.DroppedBG {
				t.Errorf("sim flow leak: generated %d != admitted %d + dropped %d",
					c.GeneratedBG, c.AdmittedBG, c.DroppedBG)
			}
			for _, pr := range []struct {
				name string
				v    float64
			}{
				{"CompBG", r.Metrics.CompBG}, {"WaitPFG", r.Metrics.WaitPFG},
				{"UtilFG", r.Metrics.UtilFG}, {"ProbEmpty", r.Metrics.ProbEmpty},
			} {
				if pr.v < 0 || pr.v > 1 || math.IsNaN(pr.v) {
					t.Errorf("sim %s = %v outside [0,1]", pr.name, pr.v)
				}
			}
		}
		if cfg.BGProb == 0 {
			if agg.Mean.CompBG != 1 || agg.Mean.QLenBG != 0 || sol.CompBG != 1 || sol.QLenBG != 0 {
				t.Errorf("p=0 degenerate metrics differ: sim CompBG %v QLenBG %v, analytic CompBG %v QLenBG %v",
					agg.Mean.CompBG, agg.Mean.QLenBG, sol.CompBG, sol.QLenBG)
			}
		}
		for _, pm := range paperMetrics {
			ana, simVal := pm.get(sol.Metrics), pm.get(agg.Mean)
			allowed := 8*replicationHalfWidth(agg, pm.get) + 0.5*(0.3+math.Abs(ana))
			if d := math.Abs(simVal - ana); d > allowed {
				t.Errorf("%s: analytic %.6g vs sim %.6g differ by %.3g (allowed %.3g)",
					pm.name, ana, simVal, d, allowed)
			}
		}
	})
}

// FuzzCacheKeyRoundTrip checks the solve-cache key (core.CacheKey) on
// fuzzer-chosen configurations: keying is deterministic, canonicalizes
// defaulted fields (an explicit default policy keys identically to the zero
// value), and is sensitive to every model parameter it must distinguish —
// a collision would silently serve one model's metrics for another.
func FuzzCacheKeyRoundTrip(f *testing.F) {
	f.Add(0.2, 0.3, 4.0, 0.5, 0.3, 1.0, 5, false)
	f.Add(0.1, 0.5, 1.5, 0.2, 0.0, 0.5, 0, true)
	f.Add(0.6, 0.05, 7.9, 0.59, 0.94, 2.9, 6, false)
	f.Fuzz(func(t *testing.T, v1, v2, ratio, util, p, alpha float64, x int, perPeriod bool) {
		cfg, ok := fuzzConfig(v1, v2, ratio, util, p, alpha, x, perPeriod)
		if !ok {
			t.Skip("no valid interpretation")
		}
		k1, err := core.CacheKey(cfg)
		if err != nil {
			t.Fatalf("folded config rejected: %v", err)
		}
		k2, err := core.CacheKey(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Fatalf("key not deterministic: %s vs %s", k1, k2)
		}
		if len(k1) != 64 {
			t.Fatalf("key %q is not a sha256 hex digest", k1)
		}

		// Defaults canonicalize: the zero-value policy means per-job, so
		// spelling it out must not change the key.
		if !perPeriod {
			canon := cfg
			canon.IdlePolicy = 0
			ck, err := core.CacheKey(canon)
			if err != nil {
				t.Fatal(err)
			}
			if ck != k1 {
				t.Errorf("explicit default policy changed the key: %s vs %s", ck, k1)
			}
		}

		// Sensitivity: any semantic change must change the key.
		perturb := func(name string, mutate func(*core.Config)) {
			mut := cfg
			mutate(&mut)
			mk, err := core.CacheKey(mut)
			if err != nil {
				t.Fatalf("%s perturbation rejected: %v", name, err)
			}
			if mk == k1 {
				t.Errorf("%s perturbation did not change the key", name)
			}
		}
		perturb("BGBuffer", func(c *core.Config) { c.BGBuffer++ })
		perturb("BGProb", func(c *core.Config) { c.BGProb = c.BGProb/2 + 0.01 })
		perturb("IdleRate", func(c *core.Config) { c.IdleRate *= 1.5 })
		perturb("IdlePolicy", func(c *core.Config) {
			if c.IdlePolicy == core.IdleWaitPerPeriod {
				c.IdlePolicy = core.IdleWaitPerJob
			} else {
				c.IdlePolicy = core.IdleWaitPerPeriod
			}
		})
		perturb("Arrival", func(c *core.Config) {
			scaled, err := c.Arrival.WithRate(c.Arrival.Rate() * 1.125)
			if err != nil {
				t.Fatal(err)
			}
			c.Arrival = scaled
		})
	})
}
