package check

import (
	"context"
	"errors"
	"fmt"

	"bgperf/internal/core"
	"bgperf/internal/plan"
	"bgperf/internal/qbd"
)

// planSlack bounds how far below a known-feasible value the planner's
// frontier may land: the continuous searches converge to DefaultTol (p:
// absolute, α: relative), so twice that covers the final bracket.
const planSlack = 2 * plan.DefaultTol

// planCases caps the plan-inversion sample: each case costs a full bisection
// (~20 forward solves), so the oracle samples rather than mirrors -n.
const planCases = 16

// PlanInversion cross-checks the inverse solver (internal/plan) against the
// forward solver on generated configurations — the round-trip oracle behind
// `bgperf check`. For each case it forward-solves the generated point, sets
// the SLO exactly at that point's QLenFG, and verifies the planner's
// contract:
//
//   - the plan succeeds (the generated value itself is feasible);
//   - the frontier is no lower than the known-feasible generated value
//     (within the convergence tolerance for the continuous variables);
//   - an independent forward solve at the frontier reproduces the reported
//     metrics to solver precision and satisfies the SLO;
//   - the bracket, when present, genuinely violates the SLO on re-solve,
//     and an at-cap result carries no bracket;
//   - an SLO below the variable's reachable minimum (half the queue length
//     with background disabled) returns ErrInfeasible — never a silently
//     clamped frontier.
//
// The decision variable cycles p → X → α → φ across cases, so every search
// mode is exercised each run. At most planCases cases are checked (n
// permitting). It returns the violations and the number of invariant checks
// performed; the error reports harness-level failures (canceled context, a
// generated config the forward solver rejects), not oracle verdicts.
func PlanInversion(ctx context.Context, n int, seed int64) ([]Violation, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n > planCases {
		n = planCases
	}
	gen := NewGenerator(seed)
	vars := []plan.Var{plan.VarBGProb, plan.VarBGBuffer, plan.VarIdleRate, plan.VarModFactor}
	var list []Violation
	invariants := 0
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, invariants, err
		}
		c := gen.Next()
		v := vars[i%len(vars)]
		vs := &violations{caseName: fmt.Sprintf("plan[%s]-%s", v, c.Name)}

		// The p/X/α searches rely on the BASELINE comparative statics
		// (QLenFG monotone in each variable's aggressive direction), which
		// capacity modulation deliberately breaks — under φ < 1 a slower
		// idle rate can lengthen the FG queue by keeping BG work, and with
		// it the slowdown, in the system longer. The oracle therefore
		// normalizes the scenario fields out of the generated case and
		// exercises φ through its own dedicated search leg, which needs no
		// such assumption (QLenFG IS monotone in φ with everything else
		// fixed). The generated φ doubles as that leg's known-feasible
		// point.
		phiGen := c.Cfg.ModFactor
		if phiGen == 0 || phiGen == 1 {
			phiGen = 0.8
		}
		c.Cfg.ModFactor, c.Cfg.BGAdmit = 1, core.AdmitAll
		c.Cfg.FGThreshold, c.Cfg.DeadlineRate = 0, 0
		if v == plan.VarModFactor {
			c.Cfg.ModFactor = phiGen
		}

		genVal := generatedValue(c.Cfg, v)
		base, err := solveConfig(c.Cfg)
		if err != nil {
			return nil, invariants, fmt.Errorf("check: plan oracle forward solve %s: %w", c.Name, err)
		}
		slo := plan.SLO{QLenFG: base.QLenFG}
		opts := plan.Options{Var: v, Ctx: ctx}

		res, err := plan.Maximize(c.Cfg, slo, opts)
		invariants++
		if err != nil {
			vs.assert("plan-feasible",
				fmt.Sprintf("plan with the SLO at its own forward solution must succeed, got: %v", err), false)
			list = append(list, vs.list...)
			continue
		}

		// The generated value is feasible by construction, so the search
		// cannot land on its infeasible side (beyond the convergence
		// bracket) — below it for the maximum-seeking variables, above it
		// for the downward φ search.
		invariants++
		if v == plan.VarModFactor {
			vs.assert("plan-covers-feasible",
				fmt.Sprintf("frontier %s = %g must not be above the known-feasible %g",
					v, res.Value, genVal),
				res.Value <= genVal+planSlack)
		} else {
			vs.assert("plan-covers-feasible",
				fmt.Sprintf("frontier %s = %g must not be below the known-feasible %g",
					v, res.Value, genVal),
				res.Value >= feasibleFloor(v, genVal))
		}

		// Independent re-solve at the frontier: the deterministic forward
		// solver must reproduce the reported metrics and satisfy the SLO.
		front, err := solveConfig(withPlanVar(c.Cfg, v, res.Value))
		if err != nil {
			return nil, invariants, fmt.Errorf("check: plan oracle frontier solve %s: %w", vs.caseName, err)
		}
		invariants += 2
		vs.add("plan-frontier-metrics", "re-solving the frontier must reproduce the reported QLenFG",
			front.QLenFG, res.Metrics.QLenFG, invariantTol)
		vs.assert("plan-slo-holds",
			fmt.Sprintf("SLO (QLenFG <= %g) must hold at the frontier %s = %g (got QLenFG %g)",
				slo.QLenFG, v, res.Value, front.QLenFG),
			slo.Holds(front))

		// The bracket is the nearest value the search proved infeasible —
		// above the frontier for the maximum searches, below it for φ; an
		// at-cap result proved nothing infeasible and must carry no bracket.
		invariants++
		if res.AtCap {
			vs.add("plan-bracket-atcap", "an at-cap result must carry no bracket", res.Bracket, 0, 0)
		} else if v == plan.VarModFactor {
			brk, ok, err := resolveModBracket(c.Cfg, slo, res.Bracket)
			if err != nil {
				return nil, invariants, fmt.Errorf("check: plan oracle bracket solve %s: %w", vs.caseName, err)
			}
			vs.assert("plan-bracket-violates",
				fmt.Sprintf("SLO (QLenFG <= %g) must be violated at the bracket %s = %g (got QLenFG %g)",
					slo.QLenFG, v, res.Bracket, brk.QLenFG),
				res.Bracket < res.Value && !ok)
		} else {
			brk, err := solveConfig(withPlanVar(c.Cfg, v, res.Bracket))
			if err != nil {
				return nil, invariants, fmt.Errorf("check: plan oracle bracket solve %s: %w", vs.caseName, err)
			}
			vs.assert("plan-bracket-violates",
				fmt.Sprintf("SLO (QLenFG <= %g) must be violated at the bracket %s = %g (got QLenFG %g)",
					slo.QLenFG, v, res.Bracket, brk.QLenFG),
				res.Bracket > res.Value && !slo.Holds(brk))
		}

		// Unreachable SLO: half the queue length at the variable's
		// least-aggressive endpoint (background disabled, or φ = 1 for the
		// downward modulation search) is below its reachable minimum, so the
		// planner must report ErrInfeasible — never clamp to an endpoint and
		// call it a plan.
		zero := c.Cfg
		if v == plan.VarModFactor {
			zero.ModFactor = 1
		} else {
			zero.BGProb = 0
		}
		floor, err := solveConfig(zero)
		if err != nil {
			return nil, invariants, fmt.Errorf("check: plan oracle floor solve %s: %w", c.Name, err)
		}
		_, err = plan.Maximize(c.Cfg, plan.SLO{QLenFG: floor.QLenFG / 2}, opts)
		invariants++
		vs.assert("plan-infeasible-typed",
			fmt.Sprintf("an unreachable SLO (QLenFG <= %g, floor %g) must return ErrInfeasible, got: %v",
				floor.QLenFG/2, floor.QLenFG, err),
			err != nil && errors.Is(err, plan.ErrInfeasible))

		list = append(list, vs.list...)
	}
	return list, invariants, nil
}

// generatedValue reads the decision variable's value out of a generated
// configuration.
func generatedValue(cfg core.Config, v plan.Var) float64 {
	switch v {
	case plan.VarBGBuffer:
		return float64(cfg.BGBuffer)
	case plan.VarIdleRate:
		return cfg.IdleRate
	case plan.VarModFactor:
		return cfg.ModFactor
	default:
		return cfg.BGProb
	}
}

// withPlanVar returns cfg with the decision variable set to val, mirroring
// the planner's own override.
func withPlanVar(cfg core.Config, v plan.Var, val float64) core.Config {
	switch v {
	case plan.VarBGBuffer:
		cfg.BGBuffer = int(val)
	case plan.VarIdleRate:
		cfg.IdleRate = val
	case plan.VarModFactor:
		cfg.ModFactor = val
	default:
		cfg.BGProb = val
	}
	return cfg
}

// resolveModBracket forward-solves the φ bracket, treating a saturated model
// as a (vacuously confirmed) SLO violation: deep modulation can push the
// chain past stability, and the planner counts such candidates infeasible.
func resolveModBracket(cfg core.Config, slo plan.SLO, bracket float64) (core.Metrics, bool, error) {
	m, err := solveConfig(withPlanVar(cfg, plan.VarModFactor, bracket))
	if err != nil {
		if errors.Is(err, qbd.ErrUnstable) {
			return core.Metrics{}, false, nil
		}
		return core.Metrics{}, false, err
	}
	return m, slo.Holds(m), nil
}

// feasibleFloor is the lowest frontier the search may report when genVal is
// known feasible: exact for the integer buffer, one converged bracket below
// for the continuous variables (absolute for p, relative for α).
func feasibleFloor(v plan.Var, genVal float64) float64 {
	switch v {
	case plan.VarBGBuffer:
		return genVal
	case plan.VarIdleRate:
		return genVal * (1 - planSlack)
	default:
		return genVal - planSlack
	}
}

// solveConfig forward-solves one configuration with the default tuning (the
// same path the planner's evaluations take).
func solveConfig(cfg core.Config) (core.Metrics, error) {
	model, err := core.NewModel(cfg)
	if err != nil {
		return core.Metrics{}, err
	}
	sol, err := model.Solve()
	if err != nil {
		return core.Metrics{}, err
	}
	return sol.Metrics, nil
}
