// Package plan implements the inverse solver of the capacity-planning
// subsystem: instead of the paper's forward question (given background
// probability p, buffer X, and idle rate α, what happens to foreground
// performance), it answers the operator's question — how much background
// work can the system admit before a foreground SLO breaks.
//
// The search exploits the monotonicity the conformance oracles prove
// (internal/check: QLenFG non-decreasing in p and X, FG interference
// non-decreasing in the idle rate α, and non-increasing in the modulation
// factor φ): the feasible set of each decision variable is an interval
// anchored at its least-aggressive endpoint, so bisection over the fast
// analytic engine finds the frontier in a few dozen solves. Continuous
// variables (p, α) bisect to a relative tolerance; the integer buffer X
// binary-searches [0, MaxBuffer]; the modulation factor φ (PR 10) bisects
// DOWNWARD over [ModFactorFloor, 1] to the minimum feasible value, since
// its aggressive direction is toward deeper degradation. Every reported
// frontier is an actually-solved feasible point — the search never
// extrapolates — and the infeasible side of the final bracket is reported,
// so a forward solve can independently confirm both sides of the frontier.
//
// An SLO that fails even at the least-aggressive endpoint (p = 0, X = 0, a
// vanishing α, or φ = 1) is reported with ErrInfeasible, never silently
// clamped. A saturated foreground load (qbd.ErrUnstable) is likewise
// infeasible for p, X, and α, whose values cannot affect stability; for the
// φ search — where a deep modulation CAN saturate an otherwise stable
// model — a saturated candidate is just an infeasible point.
package plan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"bgperf/internal/core"
	"bgperf/internal/obs"
	"bgperf/internal/par"
	"bgperf/internal/qbd"
)

// ErrInfeasible reports an SLO that no value of the decision variable can
// meet: the constraint is violated even at the least-aggressive endpoint of
// the search domain (or the foreground load alone saturates the server).
// Match it with errors.Is through any wrapping.
var ErrInfeasible = errors.New("plan: SLO infeasible")

// Search defaults and domain bounds.
const (
	// DefaultTol is the default relative convergence tolerance of the
	// continuous searches (absolute on p ∈ [0,1], multiplicative on α).
	DefaultTol = 1e-4
	// DefaultMaxIter is the default bisection iteration budget.
	DefaultMaxIter = 64
	// MaxBuffer caps the integer buffer search: X* = MaxBuffer with AtCap
	// set means the SLO tolerates any buffer the model will realistically
	// run with.
	MaxBuffer = 64
	// alphaLoFrac and alphaHiFrac bound the idle-rate search domain as
	// multiples of the service rate µ: from an idle wait of 10^3 service
	// times (background effectively disabled) down to 1/1024 of one
	// (background admitted almost immediately). Wider windows hit the
	// numerical limits of the boundary solve (extreme time-scale separation
	// between idle expiry and service) without changing any answer.
	alphaLoFrac = 1e-3
	alphaHiFrac = 1024
	// ModFactorFloor bounds the modulation-factor search from below: a
	// server degraded to 5% of its capacity while background work is present
	// is already far beyond any regime the paper's scenarios consider, and
	// smaller factors mostly produce saturated (unstable) models anyway.
	ModFactorFloor = 0.05
)

// Var selects the decision variable of the inverse search.
type Var int

// Decision variables.
const (
	// VarBGProb searches the background spawn probability p over [0, 1].
	VarBGProb Var = iota + 1
	// VarBGBuffer searches the integer buffer capacity X over [0, MaxBuffer].
	VarBGBuffer
	// VarIdleRate searches the idle-wait rate α (higher α, shorter idle
	// wait, more aggressive background admission) over a multiplicative
	// window around the service rate.
	VarIdleRate
	// VarModFactor searches the capacity-modulation factor φ over
	// [ModFactorFloor, 1]. Unlike the other variables its aggressive
	// direction points down — smaller φ degrades the foreground harder — so
	// the search finds the MINIMUM feasible φ: the deepest modulation the
	// SLO tolerates. Value is that minimum, Bracket the largest evaluated
	// infeasible φ below it, and AtCap means even ModFactorFloor is
	// feasible.
	VarModFactor
)

// String returns the CLI/JSON spelling: "p", "x", or "alpha".
func (v Var) String() string {
	switch v {
	case VarBGProb:
		return "p"
	case VarBGBuffer:
		return "x"
	case VarIdleRate:
		return "alpha"
	case VarModFactor:
		return "mod"
	default:
		return fmt.Sprintf("Var(%d)", int(v))
	}
}

// ParseVar maps "p" / "x" / "alpha" / "mod" back to the variable constants
// (the inverse of Var.String). The empty string means the default, VarBGProb.
func ParseVar(s string) (Var, error) {
	switch strings.ToLower(s) {
	case "", "p":
		return VarBGProb, nil
	case "x", "buffer":
		return VarBGBuffer, nil
	case "alpha", "a", "idlerate":
		return VarIdleRate, nil
	case "mod", "phi", "modfactor":
		return VarModFactor, nil
	default:
		return 0, core.NewValidationError(core.ErrConfig, "var",
			"unknown decision variable %q (want p | x | alpha | mod)", s)
	}
}

// SLO bounds the foreground metrics a capacity plan must preserve. A zero
// field is unconstrained; at least one bound must be set. All bounds are
// upper bounds on the solved steady-state metric.
type SLO struct {
	// QLenFG bounds the mean foreground queue length (the paper's headline
	// degradation metric); 0 means unconstrained.
	QLenFG float64 `json:"qlenFG,omitempty"`
	// WaitPFG bounds the fraction of foreground jobs delayed by background
	// work, in (0, 1]; 0 means unconstrained.
	WaitPFG float64 `json:"waitPFG,omitempty"`
	// RespTimeFG bounds the mean foreground response time (model time
	// units; milliseconds for the catalog workloads); 0 means unconstrained.
	RespTimeFG float64 `json:"respTimeFG,omitempty"`
}

// Validate checks the SLO: at least one bound set, every set bound positive
// and finite, WaitPFG at most 1 (it bounds a probability). Errors are
// *core.ValidationError naming the offending field.
func (s SLO) Validate() error {
	check := func(field string, v float64) error {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return core.NewValidationError(core.ErrConfig, field,
				"SLO bound %g must be positive and finite", v)
		}
		return nil
	}
	if err := check("QLenFG", s.QLenFG); err != nil {
		return err
	}
	if err := check("WaitPFG", s.WaitPFG); err != nil {
		return err
	}
	if err := check("RespTimeFG", s.RespTimeFG); err != nil {
		return err
	}
	if s.WaitPFG > 1 {
		return core.NewValidationError(core.ErrConfig, "WaitPFG",
			"WaitPFG bounds a probability, %g must be at most 1", s.WaitPFG)
	}
	if s.QLenFG == 0 && s.WaitPFG == 0 && s.RespTimeFG == 0 {
		return core.NewValidationError(core.ErrConfig, "SLO",
			"at least one of QLenFG, WaitPFG, RespTimeFG must be set")
	}
	return nil
}

// Holds reports whether the solved metrics meet every set bound.
func (s SLO) Holds(m core.Metrics) bool {
	if s.QLenFG > 0 && !(m.QLenFG <= s.QLenFG) {
		return false
	}
	if s.WaitPFG > 0 && !(m.WaitPFG <= s.WaitPFG) {
		return false
	}
	if s.RespTimeFG > 0 && !(m.RespTimeFG <= s.RespTimeFG) {
		return false
	}
	return true
}

// violation names the first violated bound for error messages.
func (s SLO) violation(m core.Metrics) string {
	switch {
	case s.QLenFG > 0 && !(m.QLenFG <= s.QLenFG):
		return fmt.Sprintf("QLenFG %.6g exceeds bound %.6g", m.QLenFG, s.QLenFG)
	case s.WaitPFG > 0 && !(m.WaitPFG <= s.WaitPFG):
		return fmt.Sprintf("WaitPFG %.6g exceeds bound %.6g", m.WaitPFG, s.WaitPFG)
	case s.RespTimeFG > 0 && !(m.RespTimeFG <= s.RespTimeFG):
		return fmt.Sprintf("RespTimeFG %.6g exceeds bound %.6g", m.RespTimeFG, s.RespTimeFG)
	default:
		return "no bound violated"
	}
}

// Options parameterizes one inverse search. The zero value searches p with
// the default tolerance and iteration budget, serially and unobserved.
type Options struct {
	// Var is the decision variable (default VarBGProb).
	Var Var
	// Tol is the convergence tolerance of the continuous searches; 0 means
	// DefaultTol. The p search stops when the feasible/infeasible bracket is
	// narrower than Tol; the α search when the bracket ratio is below 1+Tol.
	Tol float64
	// MaxIter bounds the bisection iterations; 0 means DefaultMaxIter.
	MaxIter int
	// Workers bounds the intra-solve parallelism and the sensitivity-
	// neighborhood fan-out; <= 0 means serial solves and one worker per
	// neighbor.
	Workers int
	// Scheme selects the R iteration of the underlying solves.
	Scheme qbd.RScheme
	// Observer optionally receives the diagnostics of every forward solve
	// the search performs.
	Observer obs.Observer
	// Ctx cancels the search between solves; nil means never.
	Ctx context.Context
}

// withDefaults resolves the zero values. It is the single defaulting point:
// the facade, the CLI, and the daemon all pass zero-valued knobs through
// here, so the same request always searches identically and cache-keys
// identically.
func (o Options) withDefaults() Options {
	if o.Var == 0 {
		o.Var = VarBGProb
	}
	if o.Tol == 0 {
		o.Tol = DefaultTol
	}
	if o.MaxIter == 0 {
		o.MaxIter = DefaultMaxIter
	}
	return o
}

// Neighbor is one point of the sensitivity neighborhood around the frontier:
// the decision-variable value, whether the SLO holds there, and the full
// solved metrics.
type Neighbor struct {
	// Value is the decision-variable value of this point.
	Value float64 `json:"value"`
	// Holds reports whether the SLO is met at this point.
	Holds bool `json:"holds"`
	// Metrics are the solved steady-state metrics at this point.
	Metrics core.Metrics `json:"metrics"`
}

// Result is a capacity plan: the frontier value of the decision variable,
// the solved metrics there, and a small sensitivity neighborhood. The JSON
// encoding is the byte-for-byte contract shared by `bgperf plan -json` and
// the daemon's /v1/optimize "plan" object.
type Result struct {
	// Var is the decision variable searched ("p", "x", or "alpha").
	Var string `json:"var"`
	// Value is the maximum feasible value found: the SLO holds at the
	// forward solve of this exact point.
	Value float64 `json:"value"`
	// AtCap reports that the SLO holds at the most aggressive end of the
	// domain (p = 1, X = MaxBuffer, the top of the α window, or — for the
	// downward-searching "mod" variable — ModFactorFloor), so Value is that
	// cap rather than a constraint frontier and Bracket is 0.
	AtCap bool `json:"atCap"`
	// Bracket is the infeasible side of the final bisection bracket (0 when
	// AtCap): the smallest evaluated value at which the SLO failed, or for
	// the "mod" variable the largest evaluated infeasible φ below Value. A
	// forward solve at Bracket independently confirms the frontier.
	Bracket float64 `json:"bracket"`
	// Iterations counts bisection steps.
	Iterations int `json:"iterations"`
	// Solves counts every forward solve the search performed, endpoints
	// and neighborhood included.
	Solves int `json:"solves"`
	// SLO echoes the constraints the plan satisfies.
	SLO SLO `json:"slo"`
	// Metrics are the solved steady-state metrics at Value.
	Metrics core.Metrics `json:"metrics"`
	// Neighborhood holds the frontier and its perturbed neighbors in
	// ascending Value order, for sensitivity reading ("one buffer slot more
	// breaks the SLO; 5% less p buys this much margin").
	Neighborhood []Neighbor `json:"neighborhood"`
}

// CacheKey returns the canonical identity of a plan request: the config key
// (core.CacheKey) with the searched variable normalized out, extended with a
// KeySectionPlan-tagged encoding of the SLO bounds and search knobs
// (core.CacheKeyExt). Two requests receive the same key exactly when
// Maximize returns bit-identical results for them, so the key is safe for
// memoizing plans; option defaults are resolved first, so explicit and
// implicit defaults key identically.
func CacheKey(cfg core.Config, slo SLO, opts Options) (string, error) {
	opts = opts.withDefaults()
	if err := slo.Validate(); err != nil {
		return "", err
	}
	if err := validateVar(cfg, opts.Var); err != nil {
		return "", err
	}
	// The searched variable's base value never reaches a solve, so it is
	// canonicalized out of the key: plans differing only in the overridden
	// field share an entry.
	norm := cfg
	switch opts.Var {
	case VarBGProb:
		norm.BGProb = 0
	case VarBGBuffer:
		norm.BGBuffer = 0
	case VarIdleRate:
		norm.IdleRate = 1
	case VarModFactor:
		norm.ModFactor = 0
	}
	return core.CacheKeyExt(norm, core.KeySectionPlan,
		[]int64{int64(opts.Var), int64(opts.MaxIter)},
		[]float64{slo.QLenFG, slo.WaitPFG, slo.RespTimeFG, opts.Tol})
}

// validateVar checks variable-specific preconditions on the base config.
func validateVar(cfg core.Config, v Var) error {
	switch v {
	case VarBGProb, VarBGBuffer:
		if v == VarBGBuffer && cfg.IdleRate <= 0 && cfg.IdleWait == nil {
			return core.NewValidationError(core.ErrConfig, "IdleRate",
				"buffer search needs an idle-wait law (IdleRate or IdleWait) so nonzero buffers are solvable")
		}
		return nil
	case VarIdleRate:
		if cfg.IdleWait != nil {
			return core.NewValidationError(core.ErrConfig, "IdleWait",
				"idle-rate search requires an exponential idle wait (IdleRate), not a phase-type IdleWait")
		}
		return nil
	case VarModFactor:
		return nil
	default:
		return core.NewValidationError(core.ErrConfig, "Var",
			"unknown decision variable %d", int(v))
	}
}

// searcher carries one search's state: the base config, constraints, and
// resolved options, plus the running solve count.
type searcher struct {
	cfg    core.Config
	slo    SLO
	opts   Options
	solves int
}

// Maximize finds the most aggressive value of the decision variable
// opts.Var at which cfg still meets slo, by bisection (p, α), integer binary
// search (X), or downward bisection (mod, whose aggressive direction is
// toward smaller φ) over forward analytic solves. It returns ErrInfeasible
// (wrapped, with the violated bound named) when even the least-aggressive
// endpoint fails, and a *core.ValidationError for invalid SLOs, configs, or
// variable/config combinations. The result's Value is always a point that
// was actually solved and found feasible.
func Maximize(cfg core.Config, slo SLO, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := slo.Validate(); err != nil {
		return nil, err
	}
	if err := validateVar(cfg, opts.Var); err != nil {
		return nil, err
	}
	// Validate the base config once, before any solve: the searched field is
	// overridden per candidate, but every other field must already be sound.
	if _, err := core.CacheKey(cfg); err != nil {
		return nil, err
	}
	s := &searcher{cfg: cfg, slo: slo, opts: opts}
	var (
		res *Result
		err error
	)
	switch opts.Var {
	case VarBGBuffer:
		res, err = s.searchInt()
	case VarModFactor:
		res, err = s.searchContMin()
	default:
		res, err = s.searchCont()
	}
	if err != nil {
		return nil, err
	}
	if err := s.neighborhood(res); err != nil {
		return nil, err
	}
	res.Var = opts.Var.String()
	res.SLO = slo
	res.Solves = s.solves
	return res, nil
}

// domain returns the continuous search interval [lo, hi] for the variable.
func (s *searcher) domain() (lo, hi float64) {
	if s.opts.Var == VarBGProb {
		return 0, 1
	}
	mu := serviceRateOf(s.cfg)
	return alphaLoFrac * mu, alphaHiFrac * mu
}

// serviceRateOf extracts the (mean) service rate µ, the natural scale of
// the idle-rate domain.
func serviceRateOf(cfg core.Config) float64 {
	switch {
	case cfg.Service != nil:
		return 1 / cfg.Service.Mean()
	case cfg.ServiceMAP != nil:
		return cfg.ServiceMAP.Rate()
	default:
		return cfg.ServiceRate
	}
}

// eval forward-solves the base config with the decision variable set to val
// and reports whether the SLO holds there, counting the solve.
func (s *searcher) eval(val float64) (core.Metrics, bool, error) {
	s.solves++
	return evalAt(s.cfg, s.slo, s.opts, val)
}

// evalAt is the goroutine-safe core of eval: it owns no searcher state, so
// the neighborhood fan-out can call it concurrently. A saturated model maps
// to ErrInfeasible directly: stability does not depend on any of the
// decision variables, so no value can rescue it.
func evalAt(cfg core.Config, slo SLO, opts Options, val float64) (core.Metrics, bool, error) {
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return core.Metrics{}, false, fmt.Errorf("plan: canceled: %w", err)
		}
	}
	switch opts.Var {
	case VarBGProb:
		cfg.BGProb = val
	case VarBGBuffer:
		cfg.BGBuffer = int(math.Round(val))
	case VarIdleRate:
		cfg.IdleRate = val
	case VarModFactor:
		cfg.ModFactor = val
	}
	model, err := core.NewModel(cfg)
	if err != nil {
		return core.Metrics{}, false, err
	}
	model.Tune(qbd.Tuning{Scheme: opts.Scheme, Workers: opts.Workers})
	sol, err := model.SolveObserved(opts.Observer)
	if err != nil {
		if errors.Is(err, qbd.ErrUnstable) {
			if opts.Var == VarModFactor {
				// Stability DOES depend on φ: a deep modulation can saturate
				// a model that is comfortably stable at φ = 1. A saturated
				// candidate is simply an infeasible point of the search, not
				// a verdict on the whole domain.
				return core.Metrics{}, false, nil
			}
			return core.Metrics{}, false, fmt.Errorf(
				"%w: foreground load alone saturates the server: %v", ErrInfeasible, err)
		}
		return core.Metrics{}, false, err
	}
	return sol.Metrics, slo.Holds(sol.Metrics), nil
}

// searchCont bisects the continuous variables. The p search halves an
// absolute bracket; the α search halves in log space (the domain spans eight
// orders of magnitude), both maintaining the invariant lo feasible / hi
// infeasible.
func (s *searcher) searchCont() (*Result, error) {
	lo, hi := s.domain()
	mLo, okLo, err := s.eval(lo)
	if err != nil {
		return nil, err
	}
	if !okLo {
		return nil, fmt.Errorf("%w: %s even at %s = %g", ErrInfeasible,
			s.slo.violation(mLo), s.opts.Var, lo)
	}
	mHi, okHi, err := s.eval(hi)
	if err != nil {
		return nil, err
	}
	if okHi {
		return &Result{Value: hi, AtCap: true, Metrics: mHi}, nil
	}
	iters := 0
	for iters < s.opts.MaxIter && !s.converged(lo, hi) {
		mid := s.midpoint(lo, hi)
		if !(mid > lo && mid < hi) {
			break // bracket exhausted at float resolution
		}
		m, ok, err := s.eval(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			lo, mLo = mid, m
		} else {
			hi = mid
		}
		iters++
	}
	return &Result{Value: lo, Bracket: hi, Iterations: iters, Metrics: mLo}, nil
}

// searchContMin bisects the modulation factor downward: the feasible set is
// an interval anchored at φ = 1 (no modulation), so the search maintains the
// reversed invariant hi feasible / lo infeasible and converges on the
// minimum feasible φ. ErrInfeasible means the SLO fails even with the
// modulation disabled; AtCap means even ModFactorFloor meets it.
func (s *searcher) searchContMin() (*Result, error) {
	lo, hi := ModFactorFloor, 1.0
	mHi, okHi, err := s.eval(hi)
	if err != nil {
		return nil, err
	}
	if !okHi {
		return nil, fmt.Errorf("%w: %s even with modulation disabled (%s = 1)",
			ErrInfeasible, s.slo.violation(mHi), s.opts.Var)
	}
	mLo, okLo, err := s.eval(lo)
	if err != nil {
		return nil, err
	}
	if okLo {
		return &Result{Value: lo, AtCap: true, Metrics: mLo}, nil
	}
	iters := 0
	for iters < s.opts.MaxIter && hi-lo > s.opts.Tol {
		mid := (lo + hi) / 2
		if !(mid > lo && mid < hi) {
			break // bracket exhausted at float resolution
		}
		m, ok, err := s.eval(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			hi, mHi = mid, m
		} else {
			lo = mid
		}
		iters++
	}
	return &Result{Value: hi, Bracket: lo, Iterations: iters, Metrics: mHi}, nil
}

// converged reports whether the bracket is within tolerance.
func (s *searcher) converged(lo, hi float64) bool {
	if s.opts.Var == VarIdleRate {
		return hi <= lo*(1+s.opts.Tol)
	}
	return hi-lo <= s.opts.Tol
}

// midpoint bisects arithmetically for p and geometrically for α.
func (s *searcher) midpoint(lo, hi float64) float64 {
	if s.opts.Var == VarIdleRate {
		return math.Sqrt(lo * hi)
	}
	return (lo + hi) / 2
}

// searchInt binary-searches the integer buffer on [0, MaxBuffer] with the
// same feasible-lo / infeasible-hi invariant.
func (s *searcher) searchInt() (*Result, error) {
	lo, hi := 0, MaxBuffer
	mLo, okLo, err := s.eval(float64(lo))
	if err != nil {
		return nil, err
	}
	if !okLo {
		return nil, fmt.Errorf("%w: %s even at X = 0 (no background admitted)",
			ErrInfeasible, s.slo.violation(mLo))
	}
	mHi, okHi, err := s.eval(float64(hi))
	if err != nil {
		return nil, err
	}
	if okHi {
		return &Result{Value: float64(hi), AtCap: true, Metrics: mHi}, nil
	}
	iters := 0
	for iters < s.opts.MaxIter && hi-lo > 1 {
		mid := (lo + hi) / 2
		m, ok, err := s.eval(float64(mid))
		if err != nil {
			return nil, err
		}
		if ok {
			lo, mLo = mid, m
		} else {
			hi = mid
		}
		iters++
	}
	return &Result{Value: float64(lo), Bracket: float64(hi), Iterations: iters, Metrics: mLo}, nil
}

// neighborhood solves the sensitivity points around the frontier (fanned
// over the worker pool) and attaches them, frontier included, in ascending
// value order.
func (s *searcher) neighborhood(res *Result) error {
	vals := s.neighborValues(res)
	points := make([]Neighbor, len(vals)+1)
	points[0] = Neighbor{Value: res.Value, Holds: true, Metrics: res.Metrics}
	// Each worker solves an independent candidate through the stateless
	// evalAt; the solve count is totaled up-front.
	s.solves += len(vals)
	if err := par.ForCtx(s.opts.Ctx, s.opts.Workers, len(vals), func(i int) error {
		m, ok, err := evalAt(s.cfg, s.slo, s.opts, vals[i])
		if err != nil {
			// Neighbors beyond the frontier are expected to violate the SLO,
			// not to fail; any solve error aborts the plan.
			return err
		}
		points[i+1] = Neighbor{Value: vals[i], Holds: ok, Metrics: m}
		return nil
	}); err != nil {
		return err
	}
	// Deterministic ascending order regardless of fan-out scheduling.
	for i := 1; i < len(points); i++ {
		for j := i; j > 0 && points[j].Value < points[j-1].Value; j-- {
			points[j], points[j-1] = points[j-1], points[j]
		}
	}
	res.Neighborhood = points
	return nil
}

// neighborValues picks the perturbed sensitivity points: ±1 buffer slot for
// X, ±5% (at least one tolerance) for p, ×/÷1.05 for α, clamped to the
// domain and deduplicated against the frontier.
func (s *searcher) neighborValues(res *Result) []float64 {
	v := res.Value
	var cands []float64
	switch s.opts.Var {
	case VarBGBuffer:
		cands = []float64{v - 1, v + 1}
		lo, hi := 0.0, float64(MaxBuffer)
		return clampVals(cands, v, lo, hi)
	case VarIdleRate:
		lo, hi := s.domain()
		cands = []float64{v / 1.05, v * 1.05}
		return clampVals(cands, v, lo, hi)
	case VarModFactor:
		step := math.Max(0.05*v, s.opts.Tol)
		cands = []float64{v - step, v + step}
		return clampVals(cands, v, ModFactorFloor, 1)
	default:
		step := math.Max(0.05*v, s.opts.Tol)
		cands = []float64{v - step, v + step}
		return clampVals(cands, v, 0, 1)
	}
}

// clampVals clamps candidates into [lo, hi] and drops duplicates of the
// frontier value v.
func clampVals(cands []float64, v, lo, hi float64) []float64 {
	out := cands[:0]
	for _, c := range cands {
		c = math.Min(math.Max(c, lo), hi)
		if c == v {
			continue
		}
		out = append(out, c)
	}
	return out
}
