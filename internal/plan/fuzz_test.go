package plan

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"bgperf/internal/core"
	"bgperf/internal/qbd"
	"bgperf/internal/trace"
	"bgperf/internal/workload"
)

// FuzzPlanFromTrace drives the complete trace-to-plan pipeline — NDJSON
// parse, MMPP(2) fit, inverse search — with arbitrary upload bytes and
// requires every failure to be one of the pipeline's typed errors
// (trace.ErrFormat, workload.ErrFitTrace, *core.ValidationError,
// qbd.ErrUnstable, ErrInfeasible): no panics, no stringly-typed errors the
// daemon could not map to a status code. Seed inputs cover the corpus in
// testdata/fuzz/FuzzPlanFromTrace plus generated valid traces.
func FuzzPlanFromTrace(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{\"interarrival\": 50}\n"))
	f.Add([]byte("{\"interarrival\": 50, \"service\": 6}\n{\"interarrival\": 10}\n"))
	f.Add([]byte("{\"interarrival\": -3}\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte("{\"interarrival\": 1e308}\n{\"interarrival\": 1e-308}\n"))
	// A fittable trace: bursty alternation keeps the sample SCV above 1.
	var bursty bytes.Buffer
	for i := 0; i < 1200; i++ {
		gap := "2"
		if i%13 == 0 {
			gap = "400"
		}
		bursty.WriteString("{\"interarrival\": " + gap + "}\n")
	}
	f.Add(bursty.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.ReadNDJSON(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, trace.ErrFormat) {
				t.Fatalf("ReadNDJSON returned an untyped error: %v", err)
			}
			return
		}
		m, err := workload.FromTrace(tr)
		if err != nil {
			if !errors.Is(err, workload.ErrFitTrace) {
				t.Fatalf("FromTrace returned an untyped error: %v", err)
			}
			return
		}
		cfg := core.Config{
			Arrival:     m,
			ServiceRate: workload.ServiceRatePerMs,
			BGBuffer:    5,
			IdleRate:    workload.ServiceRatePerMs,
		}
		res, err := Maximize(cfg, SLO{QLenFG: 1}, Options{MaxIter: 24})
		if err != nil {
			var verr *core.ValidationError
			switch {
			case errors.Is(err, ErrInfeasible), errors.Is(err, qbd.ErrUnstable),
				errors.Is(err, qbd.ErrNoConvergence), errors.As(err, &verr):
				return
			default:
				t.Fatalf("Maximize returned an untyped error: %v", err)
			}
		}
		if res.Value < 0 || res.Value > 1 || strings.TrimSpace(res.Var) == "" {
			t.Fatalf("malformed plan result: %+v", res)
		}
		if !res.SLO.Holds(res.Metrics) {
			t.Fatalf("reported frontier violates its own SLO: %+v", res)
		}
	})
}
