package plan

import (
	"context"
	"errors"
	"math"
	"testing"

	"bgperf/internal/core"
	"bgperf/internal/workload"
)

// baseConfig is the Fig.-5 style base point: email workload at 20% FG load,
// paper defaults for buffer and idle wait.
func baseConfig(t *testing.T) core.Config {
	t.Helper()
	m, err := workload.Email()
	if err != nil {
		t.Fatal(err)
	}
	if m, err = workload.AtUtilization(m, 0.2); err != nil {
		t.Fatal(err)
	}
	return core.Config{
		Arrival:     m,
		ServiceRate: workload.ServiceRatePerMs,
		BGProb:      0.3,
		BGBuffer:    5,
		IdleRate:    workload.ServiceRatePerMs,
	}
}

// solveAt forward-solves cfg with the decision variable forced to val.
func solveAt(t *testing.T, cfg core.Config, v Var, val float64) core.Metrics {
	t.Helper()
	switch v {
	case VarBGProb:
		cfg.BGProb = val
	case VarBGBuffer:
		cfg.BGBuffer = int(math.Round(val))
	case VarIdleRate:
		cfg.IdleRate = val
	}
	model, err := core.NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return sol.Metrics
}

func TestMaximizePRecoversForwardSolve(t *testing.T) {
	cfg := baseConfig(t)
	// The bound is the solved QLenFG at p = 0.5, so the frontier must come
	// back within one tolerance of 0.5 (QLenFG is monotone in p).
	target := solveAt(t, cfg, VarBGProb, 0.5).QLenFG
	res, err := Maximize(cfg, SLO{QLenFG: target}, Options{Var: VarBGProb})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-0.5) > 2*DefaultTol {
		t.Fatalf("frontier p = %g, want 0.5 ± %g", res.Value, 2*DefaultTol)
	}
	if res.AtCap {
		t.Fatal("interior frontier must not report AtCap")
	}
	slo := SLO{QLenFG: target}
	if !slo.Holds(solveAt(t, cfg, VarBGProb, res.Value)) {
		t.Fatalf("SLO must hold at the returned frontier p = %g", res.Value)
	}
	if slo.Holds(solveAt(t, cfg, VarBGProb, res.Bracket)) {
		t.Fatalf("SLO must fail at the bracket p = %g", res.Bracket)
	}
	if res.Bracket-res.Value > DefaultTol {
		t.Fatalf("bracket width %g exceeds tolerance", res.Bracket-res.Value)
	}
	if res.Solves < res.Iterations {
		t.Fatalf("solve count %d below iteration count %d", res.Solves, res.Iterations)
	}
	if len(res.Neighborhood) < 2 {
		t.Fatalf("want a sensitivity neighborhood, got %d points", len(res.Neighborhood))
	}
	for i := 1; i < len(res.Neighborhood); i++ {
		if res.Neighborhood[i].Value <= res.Neighborhood[i-1].Value {
			t.Fatal("neighborhood must be strictly ascending")
		}
	}
}

func TestMaximizeAtCap(t *testing.T) {
	cfg := baseConfig(t)
	// A bound far above the p = 1 metrics is met everywhere: the search
	// reports the domain cap, not a fake frontier.
	loose := 10 * solveAt(t, cfg, VarBGProb, 1).QLenFG
	res, err := Maximize(cfg, SLO{QLenFG: loose}, Options{Var: VarBGProb})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AtCap || res.Value != 1 || res.Bracket != 0 {
		t.Fatalf("want AtCap at p = 1 with zero bracket, got %+v", res)
	}
}

func TestMaximizeInfeasible(t *testing.T) {
	cfg := baseConfig(t)
	// Half the p = 0 queue length is unattainable: no BG admission policy
	// can push FG delay below the no-background baseline.
	impossible := 0.5 * solveAt(t, cfg, VarBGProb, 0).QLenFG
	for _, v := range []Var{VarBGProb, VarBGBuffer, VarIdleRate} {
		_, err := Maximize(cfg, SLO{QLenFG: impossible}, Options{Var: v})
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("var %s: want ErrInfeasible, got %v", v, err)
		}
	}
}

func TestMaximizeUnstableIsInfeasible(t *testing.T) {
	cfg := baseConfig(t)
	m, err := cfg.Arrival.WithRate(1.2 * workload.ServiceRatePerMs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Arrival = m
	_, err = Maximize(cfg, SLO{QLenFG: 100}, Options{Var: VarBGProb})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("saturated FG load: want ErrInfeasible, got %v", err)
	}
}

func TestMaximizeBufferInteger(t *testing.T) {
	cfg := baseConfig(t)
	cfg.BGProb = 0.6
	// Bound at the X = 3 queue length: the integer search must land exactly
	// on 3 with bracket 4 (QLenFG is monotone non-decreasing in X).
	target := solveAt(t, cfg, VarBGBuffer, 3).QLenFG
	res, err := Maximize(cfg, SLO{QLenFG: target}, Options{Var: VarBGBuffer})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3 {
		t.Fatalf("frontier X = %g, want 3", res.Value)
	}
	if !res.AtCap && res.Bracket != 4 {
		t.Fatalf("bracket X = %g, want 4", res.Bracket)
	}
	slo := SLO{QLenFG: target}
	if slo.Holds(solveAt(t, cfg, VarBGBuffer, res.Bracket)) {
		t.Fatal("SLO must fail one buffer slot past the frontier")
	}
}

func TestMaximizeAlphaMonotoneFrontier(t *testing.T) {
	cfg := baseConfig(t)
	cfg.BGProb = 0.8
	// A tighter SLO must admit at most the idle rate a looser one does.
	tight := solveAt(t, cfg, VarIdleRate, workload.ServiceRatePerMs).QLenFG
	loose := solveAt(t, cfg, VarIdleRate, 4*workload.ServiceRatePerMs).QLenFG
	if loose <= tight {
		t.Fatalf("precondition: QLenFG must grow with alpha (tight %g, loose %g)", tight, loose)
	}
	rTight, err := Maximize(cfg, SLO{QLenFG: tight}, Options{Var: VarIdleRate})
	if err != nil {
		t.Fatal(err)
	}
	rLoose, err := Maximize(cfg, SLO{QLenFG: loose}, Options{Var: VarIdleRate})
	if err != nil {
		t.Fatal(err)
	}
	if rTight.Value > rLoose.Value {
		t.Fatalf("tighter SLO admitted more idle rate: %g > %g", rTight.Value, rLoose.Value)
	}
	slo := SLO{QLenFG: tight}
	if !slo.Holds(solveAt(t, cfg, VarIdleRate, rTight.Value)) {
		t.Fatal("SLO must hold at the alpha frontier")
	}
	if !rTight.AtCap && slo.Holds(solveAt(t, cfg, VarIdleRate, rTight.Bracket)) {
		t.Fatal("SLO must fail at the alpha bracket")
	}
}

func TestMaximizeDeterministicAcrossWorkers(t *testing.T) {
	cfg := baseConfig(t)
	target := solveAt(t, cfg, VarBGProb, 0.4).QLenFG
	r1, err := Maximize(cfg, SLO{QLenFG: target}, Options{Var: VarBGProb, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Maximize(cfg, SLO{QLenFG: target}, Options{Var: VarBGProb, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Value != r4.Value || r1.Solves != r4.Solves || len(r1.Neighborhood) != len(r4.Neighborhood) {
		t.Fatalf("worker count changed the plan: %+v vs %+v", r1, r4)
	}
	for i := range r1.Neighborhood {
		if r1.Neighborhood[i] != r4.Neighborhood[i] {
			t.Fatalf("neighborhood point %d differs across worker counts", i)
		}
	}
}

func TestMaximizeCanceled(t *testing.T) {
	cfg := baseConfig(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Maximize(cfg, SLO{QLenFG: 1}, Options{Var: VarBGProb, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSLOValidate(t *testing.T) {
	cases := []struct {
		name string
		slo  SLO
		ok   bool
	}{
		{"empty", SLO{}, false},
		{"negative", SLO{QLenFG: -1}, false},
		{"nan", SLO{QLenFG: math.NaN()}, false},
		{"inf", SLO{RespTimeFG: math.Inf(1)}, false},
		{"waitp above one", SLO{WaitPFG: 1.5}, false},
		{"qlen only", SLO{QLenFG: 2}, true},
		{"all three", SLO{QLenFG: 2, WaitPFG: 0.5, RespTimeFG: 30}, true},
	}
	for _, c := range cases {
		err := c.slo.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok {
			var verr *core.ValidationError
			if !errors.As(err, &verr) {
				t.Errorf("%s: want *core.ValidationError, got %v", c.name, err)
			}
		}
	}
}

func TestParseVarRoundTrip(t *testing.T) {
	for _, v := range []Var{VarBGProb, VarBGBuffer, VarIdleRate} {
		got, err := ParseVar(v.String())
		if err != nil || got != v {
			t.Fatalf("ParseVar(%q) = %v, %v", v.String(), got, err)
		}
	}
	if v, err := ParseVar(""); err != nil || v != VarBGProb {
		t.Fatalf("empty var must default to p, got %v, %v", v, err)
	}
	if _, err := ParseVar("bogus"); err == nil {
		t.Fatal("want error for unknown var")
	}
}

func TestCacheKeyNormalizesSearchedVariable(t *testing.T) {
	cfg := baseConfig(t)
	slo := SLO{QLenFG: 2}
	k1, err := CacheKey(cfg, slo, Options{Var: VarBGProb})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.BGProb = 0.9 // overridden by the search, must not split the cache
	k2, err := CacheKey(cfg2, slo, Options{Var: VarBGProb})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("base p must be normalized out of the p-search key")
	}
	k3, err := CacheKey(cfg, SLO{QLenFG: 3}, Options{Var: VarBGProb})
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("different SLOs must key differently")
	}
	k4, err := CacheKey(cfg, slo, Options{Var: VarBGBuffer})
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k1 {
		t.Fatal("different decision variables must key differently")
	}
	k5, err := CacheKey(cfg, slo, Options{Var: VarBGProb, Tol: DefaultTol, MaxIter: DefaultMaxIter})
	if err != nil {
		t.Fatal(err)
	}
	if k5 != k1 {
		t.Fatal("explicit defaults must key identically to implicit ones")
	}
	plain, err := core.CacheKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain == k1 {
		t.Fatal("plan keys must not collide with solve keys")
	}
}

func TestMaximizeVarPreconditions(t *testing.T) {
	cfg := baseConfig(t)
	cfg.IdleRate = 0
	cfg.IdleWait = nil
	cfg.BGBuffer = 0
	cfg.BGProb = 0
	// Buffer search without any idle-wait law cannot solve X > 0 candidates.
	_, err := Maximize(cfg, SLO{QLenFG: 2}, Options{Var: VarBGBuffer})
	var verr *core.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("want ValidationError for buffer search without idle law, got %v", err)
	}
}
