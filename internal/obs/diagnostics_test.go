package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageStringRoundTrip(t *testing.T) {
	want := map[Stage]string{
		StageBuild:    "build",
		StageRSolve:   "r-solve",
		StageBoundary: "boundary",
		StageMetrics:  "metrics",
		Stage(99):     "unknown",
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("Stage(%d).String() = %q, want %q", s, got, name)
		}
	}
}

func TestDiagnosticsAggregation(t *testing.T) {
	d := NewDiagnostics()
	d.StageDone(StageBuild, 2*time.Millisecond)
	d.StageDone(StageBuild, 3*time.Millisecond)
	d.RIteration(1, 0.5)
	d.RIteration(2, 0.01)
	d.RIteration(3, 1e-12)
	d.RSolved(3, 1e-12, 0.9)
	d.WorkspaceStats(WorkspaceStats{MatrixHits: 4, MatrixMisses: 1, LUHits: 2})
	d.WorkspaceStats(WorkspaceStats{MatrixHits: 1, VectorMisses: 3})
	d.SimRun(SimCounters{ArrivalsFG: 100, CompletedFG: 99, DroppedBG: 2})
	d.ReplicationDone(1, 2)
	d.ReplicationDone(2, 2)
	d.FitDone(FitDiag{TargetRate: 1, Rate: 1.001})

	r := d.Report()
	if got := r.Stages["build"]; got.Count != 2 || got.Seconds < 0.004 || got.Seconds > 0.006 {
		t.Errorf("build stage = %+v, want count 2, ~5ms", got)
	}
	if r.RSolves != 1 || r.RIterations != 3 || r.LastRIterations != 3 {
		t.Errorf("R counters = %d/%d/%d", r.RSolves, r.RIterations, r.LastRIterations)
	}
	if r.LastResidual != 1e-12 || r.LastSpectralRadius != 0.9 {
		t.Errorf("last solve = %g / %g", r.LastResidual, r.LastSpectralRadius)
	}
	if len(r.ConvergenceTrace) != 3 || r.ConvergenceTrace[0] != 0.5 {
		t.Errorf("trace = %v", r.ConvergenceTrace)
	}
	if r.Workspace.Hits() != 7 || r.Workspace.Misses() != 4 {
		t.Errorf("workspace = %+v", r.Workspace)
	}
	if r.SimRuns != 1 || r.Sim.ArrivalsFG != 100 {
		t.Errorf("sim = %d runs, %+v", r.SimRuns, r.Sim)
	}
	if r.ReplicationsDone != 2 || r.ReplicationsTotal != 2 {
		t.Errorf("replications = %d/%d", r.ReplicationsDone, r.ReplicationsTotal)
	}
	if len(r.Fits) != 1 || r.Fits[0].Rate != 1.001 {
		t.Errorf("fits = %+v", r.Fits)
	}
}

// TestDiagnosticsTraceRestart checks a fresh reduction (iteration 1) resets
// the convergence trace while the aggregate iteration count keeps growing.
func TestDiagnosticsTraceRestart(t *testing.T) {
	d := NewDiagnostics()
	d.RIteration(1, 0.5)
	d.RIteration(2, 0.1)
	d.RIteration(1, 0.4)
	r := d.Report()
	if len(r.ConvergenceTrace) != 1 || r.ConvergenceTrace[0] != 0.4 {
		t.Errorf("trace = %v, want [0.4]", r.ConvergenceTrace)
	}
	if r.RIterations != 3 {
		t.Errorf("RIterations = %d, want 3", r.RIterations)
	}
}

// TestNilDiagnostics pins the typed-nil safety contract: a nil *Diagnostics
// smuggled into the Observer interface must degrade to a no-op rather than
// panic, because producers only check the interface for nil.
func TestNilDiagnostics(t *testing.T) {
	var d *Diagnostics
	var o Observer = d
	if o == nil {
		t.Fatal("typed nil compared equal to nil interface")
	}
	o.StageDone(StageBuild, time.Millisecond)
	o.RIteration(1, 0.5)
	o.RSolved(1, 1e-12, 0.9)
	o.WorkspaceStats(WorkspaceStats{MatrixHits: 1})
	o.SimRun(SimCounters{ArrivalsFG: 1})
	o.ReplicationDone(1, 1)
	o.FitDone(FitDiag{})
}

func TestDiagnosticsConcurrentSafety(t *testing.T) {
	d := NewDiagnostics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d.StageDone(StageRSolve, time.Microsecond)
				d.RIteration(i%5+1, 0.1)
				d.WorkspaceStats(WorkspaceStats{MatrixHits: 1})
			}
		}()
	}
	wg.Wait()
	r := d.Report()
	if r.RIterations != 800 {
		t.Errorf("RIterations = %d, want 800", r.RIterations)
	}
	if r.Stages["r-solve"].Count != 800 {
		t.Errorf("r-solve count = %d, want 800", r.Stages["r-solve"].Count)
	}
	if r.Workspace.MatrixHits != 800 {
		t.Errorf("matrix hits = %d, want 800", r.Workspace.MatrixHits)
	}
}

func TestFlushJSONAndSummary(t *testing.T) {
	d := NewDiagnostics()
	d.StageDone(StageMetrics, time.Millisecond)
	d.RSolved(10, 1e-11, 0.95)
	d.WorkspaceStats(WorkspaceStats{MatrixHits: 3, MatrixMisses: 1})
	var buf bytes.Buffer
	if err := d.FlushJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatalf("FlushJSON output not valid JSON: %v", err)
	}
	if r.Solves != 1 || r.LastRIterations != 10 {
		t.Errorf("round-tripped report = %+v", r)
	}
	var sum bytes.Buffer
	if err := d.WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"solves", "last reduction", "workspace pool", "75.0% reuse"} {
		if !strings.Contains(sum.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sum.String())
		}
	}
}
