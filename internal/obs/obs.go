// Package obs is the solver observability layer: a zero-overhead-when-
// disabled instrumentation subsystem for the analytic engine (build, R
// iteration, boundary solve, metric extraction), the event simulator, the
// MAP fitting pipeline, and the mat.Workspace buffer pools.
//
// The design contract is that every producer (qbd, core, multiclass, sim,
// par, mat) carries an optional Observer and guards each report with a nil
// check, so the unobserved fast path performs no timing calls and no heap
// allocations — pinned by AllocsPerRun regression tests. When an Observer is
// attached, producers report stage durations, per-iteration convergence
// residuals, event counters, and pool statistics; the concrete Diagnostics
// collector aggregates them, mirrors totals into package-level expvar
// counters, and renders a machine-readable JSON report (FlushJSON) or a
// human-readable convergence summary (WriteSummary).
//
// obs sits below every other internal package (it imports only the standard
// library), so any layer may report without import cycles.
package obs

import "time"

// Stage identifies one stage of an analytic solve. Stages are reported with
// wall-clock durations by core and qbd when an Observer is attached.
type Stage int

const (
	// StageBuild is chain assembly: Kronecker blocks and QBD boundary/
	// repeating block construction.
	StageBuild Stage = iota
	// StageRSolve is the logarithmic-reduction computation of G and the
	// rate matrix R — the innermost iterative solver.
	StageRSolve
	// StageBoundary is the boundary linear system: the backward/forward
	// level-reduction sweeps and the geometric tail moments.
	StageBoundary
	// StageMetrics is metric extraction from the stationary distribution.
	StageMetrics

	numStages
)

// String returns the stable machine-readable stage name used in JSON
// reports.
func (s Stage) String() string {
	switch s {
	case StageBuild:
		return "build"
	case StageRSolve:
		return "r-solve"
	case StageBoundary:
		return "boundary"
	case StageMetrics:
		return "metrics"
	default:
		return "unknown"
	}
}

// WorkspaceStats counts buffer-pool hits (acquisitions served from a
// released buffer) and misses (fresh allocations) of a mat.Workspace, split
// by buffer kind.
type WorkspaceStats struct {
	MatrixHits   int64 `json:"matrixHits"`
	MatrixMisses int64 `json:"matrixMisses"`
	VectorHits   int64 `json:"vectorHits"`
	VectorMisses int64 `json:"vectorMisses"`
	LUHits       int64 `json:"luHits"`
	LUMisses     int64 `json:"luMisses"`
}

// Hits returns the total pool hits across buffer kinds.
func (w WorkspaceStats) Hits() int64 { return w.MatrixHits + w.VectorHits + w.LUHits }

// Misses returns the total pool misses across buffer kinds.
func (w WorkspaceStats) Misses() int64 { return w.MatrixMisses + w.VectorMisses + w.LUMisses }

// add accumulates o into w.
func (w *WorkspaceStats) add(o WorkspaceStats) {
	w.MatrixHits += o.MatrixHits
	w.MatrixMisses += o.MatrixMisses
	w.VectorHits += o.VectorHits
	w.VectorMisses += o.VectorMisses
	w.LUHits += o.LUHits
	w.LUMisses += o.LUMisses
}

// SimCounters are the event counts of one simulator run, mirroring
// sim.Counters (obs cannot import sim).
type SimCounters struct {
	ArrivalsFG      int64 `json:"arrivalsFG"`
	CompletedFG     int64 `json:"completedFG"`
	DelayedFG       int64 `json:"delayedFG"`
	GeneratedBG     int64 `json:"generatedBG"`
	AdmittedBG      int64 `json:"admittedBG"`
	DroppedBG       int64 `json:"droppedBG"`
	CompletedBG     int64 `json:"completedBG"`
	IdleExpirations int64 `json:"idleExpirations"`
	RenegedBG       int64 `json:"renegedBG"`
	// Events is the simulator's own count of events processed inside the
	// measurement window (each event may bump several of the counters
	// above).
	Events int64 `json:"events"`
}

// total returns the "events" figure mirrored to expvar: the simulator's own
// event count when reported (PR 7+), otherwise the legacy sum of the
// per-kind counters.
func (c SimCounters) total() int64 {
	if c.Events > 0 {
		return c.Events
	}
	return c.ArrivalsFG + c.CompletedFG + c.DelayedFG + c.GeneratedBG +
		c.AdmittedBG + c.DroppedBG + c.CompletedBG + c.IdleExpirations +
		c.RenegedBG
}

// add accumulates o into c.
func (c *SimCounters) add(o SimCounters) {
	c.ArrivalsFG += o.ArrivalsFG
	c.CompletedFG += o.CompletedFG
	c.DelayedFG += o.DelayedFG
	c.GeneratedBG += o.GeneratedBG
	c.AdmittedBG += o.AdmittedBG
	c.DroppedBG += o.DroppedBG
	c.CompletedBG += o.CompletedBG
	c.IdleExpirations += o.IdleExpirations
	c.RenegedBG += o.RenegedBG
	c.Events += o.Events
}

// FitDiag records how closely a MAP fit matched its target descriptors
// (inter-arrival mean rate, SCV, lag-1 ACF, geometric ACF decay). Target
// fields of 0 mean "not specified".
type FitDiag struct {
	TargetRate  float64 `json:"targetRate"`
	TargetSCV   float64 `json:"targetSCV"`
	TargetACF1  float64 `json:"targetACF1"`
	TargetDecay float64 `json:"targetDecay"`
	Rate        float64 `json:"rate"`
	SCV         float64 `json:"scv"`
	ACF1        float64 `json:"acf1"`
	Decay       float64 `json:"decay"`
}

// Observer receives instrumentation events from the solver stack. All
// methods may be called concurrently (parallel sweeps share one Observer)
// and must be cheap: producers call them only when an Observer is attached,
// but possibly from hot paths. Diagnostics is the standard implementation;
// custom Observers can stream events elsewhere (metrics systems, logs).
type Observer interface {
	// StageDone reports the wall-clock duration of one solver stage.
	StageDone(s Stage, d time.Duration)
	// RIteration reports the convergence residual after one logarithmic-
	// reduction iteration (1-based).
	RIteration(iter int, residual float64)
	// RSolved reports a completed R computation: the iteration count, the
	// final residual, and the spectral radius sp(R) (the tail decay rate).
	RSolved(iters int, residual, spectralRadius float64)
	// WorkspaceStats reports the buffer-pool statistics of one solve.
	WorkspaceStats(ws WorkspaceStats)
	// SimRun reports the event counters of one completed simulator run.
	SimRun(c SimCounters)
	// ReplicationDone reports simulation replication progress (done of
	// total).
	ReplicationDone(done, total int)
	// FitDone reports the matched-versus-target descriptors of a MAP fit.
	FitDone(f FitDiag)
}
