package obs

import (
	"expvar"
	"sort"
	"sync"
	"time"
)

// Serve-layer counters exported via expvar, alongside the solver counters
// above. The bgperfd daemon mounts expvar.Handler at /debug/vars, so these
// process-wide totals are scrapeable even without the /metrics snapshot.
var (
	expServeRequests    = expvar.NewInt("bgperf.serve.requests")
	expServeCacheHits   = expvar.NewInt("bgperf.serve.cache_hits")
	expServeCacheMisses = expvar.NewInt("bgperf.serve.cache_misses")
	expServeCoalesced   = expvar.NewInt("bgperf.serve.coalesced")
	expServeSolves      = expvar.NewInt("bgperf.serve.solves")
	expServePlans       = expvar.NewInt("bgperf.serve.plans")
	expServeInFlight    = expvar.NewInt("bgperf.serve.in_flight")
	expServeRejected    = expvar.NewInt("bgperf.serve.rejected")
	expServeDiskHits    = expvar.NewInt("bgperf.serve.disk_hits")
	expServeForwarded   = expvar.NewInt("bgperf.serve.forwarded")
	expServeForwardFail = expvar.NewInt("bgperf.serve.forward_failures")
	expServeShed        = expvar.NewInt("bgperf.serve.shed")
	expServeQueueDepth  = expvar.NewInt("bgperf.serve.queue_depth")
	expServeStreams     = expvar.NewInt("bgperf.serve.streams")
)

// serveLatencyWindow bounds the latency reservoir: quantiles are computed
// over the most recent window of solve durations, so a long-running daemon
// reports current behavior rather than its lifetime average.
const serveLatencyWindow = 1024

// ServeStats is the snapshot of one ServeCollector — the serve-layer section
// of the bgperfd /metrics report.
type ServeStats struct {
	// Requests counts solve-point requests handled (solve requests plus
	// individual sweep points), whatever their outcome.
	Requests int64 `json:"requests"`
	// CacheHits counts requests answered straight from the solve cache.
	CacheHits int64 `json:"cacheHits"`
	// CacheMisses counts requests that found no cached solution.
	CacheMisses int64 `json:"cacheMisses"`
	// Coalesced counts requests that piggybacked on an identical in-flight
	// solve instead of starting their own.
	Coalesced int64 `json:"coalesced"`
	// Solves counts solver invocations actually performed — cache misses
	// that won their coalescing group and ran the QBD machinery.
	Solves int64 `json:"solves"`
	// Plans counts inverse-solver searches actually performed — capacity
	// plans that missed the plan cache and won their coalescing group. One
	// plan runs many internal forward solves; those are not counted under
	// Solves, which tallies only request-level solver invocations.
	Plans int64 `json:"plans"`
	// InFlight is the number of solves running at snapshot time.
	InFlight int64 `json:"inFlight"`
	// Rejected counts requests refused with 503 while draining.
	Rejected int64 `json:"rejected"`
	// DiskHits counts requests answered from the persistent disk tier
	// (internal/cas) after missing the in-memory LRU. A restarted daemon
	// re-serving a warmed sweep shows DiskHits equal to the grid size and
	// zero Solves.
	DiskHits int64 `json:"diskHits"`
	// Forwarded counts points routed to their owning cluster peer and
	// answered by it.
	Forwarded int64 `json:"forwarded"`
	// ForwardFailures counts forwards that failed (peer dead, breaker
	// open, transport error) and fell back to a local solve.
	ForwardFailures int64 `json:"forwardFailures"`
	// Shed counts requests refused with 503 + Retry-After by the
	// admission gate (max in-flight and queue both full).
	Shed int64 `json:"shed"`
	// Queued is the number of requests waiting at the admission gate at
	// snapshot time.
	Queued int64 `json:"queued"`
	// Streams counts NDJSON streaming sweeps started.
	Streams int64 `json:"streams"`
	// LatencySamples is how many solve durations the quantiles below are
	// computed from (at most the most recent 1024).
	LatencySamples int64 `json:"latencySamples"`
	// LatencyP50Ms and LatencyP99Ms are nearest-rank quantiles of the solve
	// duration in milliseconds, over the recent-sample window.
	LatencyP50Ms float64 `json:"latencyP50Ms"`
	LatencyP99Ms float64 `json:"latencyP99Ms"`
}

// ServeCollector aggregates serving-layer events — cache effectiveness,
// request coalescing, in-flight pressure, and solve-latency quantiles — for
// the bgperfd daemon. Like Diagnostics, it is concurrency-safe, mirrors its
// totals into package-level expvar counters, and every method is a nil-safe
// no-op so an unobserved serving stack costs nothing.
type ServeCollector struct {
	mu sync.Mutex

	requests    int64
	cacheHits   int64
	cacheMiss   int64
	coalesced   int64
	solves      int64
	plans       int64
	inFlight    int64
	rejected    int64
	diskHits    int64
	forwarded   int64
	forwardFail int64
	shed        int64
	queued      int64
	streams     int64
	recorded    int64
	latMs       [serveLatencyWindow]float64
}

// NewServeCollector returns an empty serve-layer collector.
func NewServeCollector() *ServeCollector { return &ServeCollector{} }

// Request records one solve-point request entering the serving stack.
func (s *ServeCollector) Request() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.requests++
	s.mu.Unlock()
	expServeRequests.Add(1)
}

// CacheHit records a request answered from the solve cache.
func (s *ServeCollector) CacheHit() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.cacheHits++
	s.mu.Unlock()
	expServeCacheHits.Add(1)
}

// CacheMiss records a request that found no cached solution.
func (s *ServeCollector) CacheMiss() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.cacheMiss++
	s.mu.Unlock()
	expServeCacheMisses.Add(1)
}

// Coalesced records a request that joined an identical in-flight solve.
func (s *ServeCollector) Coalesced() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.coalesced++
	s.mu.Unlock()
	expServeCoalesced.Add(1)
}

// Rejected records a request refused while the daemon drains.
func (s *ServeCollector) Rejected() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
	expServeRejected.Add(1)
}

// DiskHit records a request answered from the persistent disk cache tier.
func (s *ServeCollector) DiskHit() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.diskHits++
	s.mu.Unlock()
	expServeDiskHits.Add(1)
}

// Forwarded records a point routed to and answered by its owning peer.
func (s *ServeCollector) Forwarded() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.forwarded++
	s.mu.Unlock()
	expServeForwarded.Add(1)
}

// ForwardFailure records a forward that failed and fell back to a local
// solve.
func (s *ServeCollector) ForwardFailure() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.forwardFail++
	s.mu.Unlock()
	expServeForwardFail.Add(1)
}

// Shed records a request refused by the admission gate.
func (s *ServeCollector) Shed() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.shed++
	s.mu.Unlock()
	expServeShed.Add(1)
}

// QueueDepth adjusts the admission-gate queue gauge by delta (+1 on
// enqueue, -1 on dequeue).
func (s *ServeCollector) QueueDepth(delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.queued += delta
	s.mu.Unlock()
	expServeQueueDepth.Add(delta)
}

// Stream records an NDJSON streaming sweep starting.
func (s *ServeCollector) Stream() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.streams++
	s.mu.Unlock()
	expServeStreams.Add(1)
}

// SolveStart records a solver invocation beginning; pair it with SolveDone.
func (s *ServeCollector) SolveStart() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()
	expServeInFlight.Add(1)
}

// SolveDone records a solver invocation completing after duration d.
func (s *ServeCollector) SolveDone(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.inFlight--
	s.solves++
	s.latMs[s.recorded%serveLatencyWindow] = float64(d) / float64(time.Millisecond)
	s.recorded++
	s.mu.Unlock()
	expServeInFlight.Add(-1)
	expServeSolves.Add(1)
}

// PlanStart records an inverse-solver search beginning; pair with PlanDone.
func (s *ServeCollector) PlanStart() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()
	expServeInFlight.Add(1)
}

// PlanDone records an inverse-solver search completing. Plan durations are
// deliberately kept out of the solve-latency reservoir: one plan spans many
// forward solves, so mixing the two would skew the quantiles.
func (s *ServeCollector) PlanDone() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.inFlight--
	s.plans++
	s.mu.Unlock()
	expServeInFlight.Add(-1)
	expServePlans.Add(1)
}

// Snapshot returns a consistent copy of the serve-layer statistics,
// including nearest-rank latency quantiles over the recent-sample window.
func (s *ServeCollector) Snapshot() ServeStats {
	if s == nil {
		return ServeStats{}
	}
	s.mu.Lock()
	st := ServeStats{
		Requests:        s.requests,
		CacheHits:       s.cacheHits,
		CacheMisses:     s.cacheMiss,
		Coalesced:       s.coalesced,
		Solves:          s.solves,
		Plans:           s.plans,
		InFlight:        s.inFlight,
		Rejected:        s.rejected,
		DiskHits:        s.diskHits,
		Forwarded:       s.forwarded,
		ForwardFailures: s.forwardFail,
		Shed:            s.shed,
		Queued:          s.queued,
		Streams:         s.streams,
	}
	n := s.recorded
	if n > serveLatencyWindow {
		n = serveLatencyWindow
	}
	lats := append([]float64(nil), s.latMs[:n]...)
	s.mu.Unlock()
	st.LatencySamples = n
	if n > 0 {
		sort.Float64s(lats)
		st.LatencyP50Ms = quantileNearestRank(lats, 0.50)
		st.LatencyP99Ms = quantileNearestRank(lats, 0.99)
	}
	return st
}

// quantileNearestRank returns the nearest-rank q-quantile of sorted (q in
// (0, 1]): the smallest sample with rank ≥ q·n.
func quantileNearestRank(sorted []float64, q float64) float64 {
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
