package obs

import (
	"sync"
	"testing"
	"time"
)

func TestServeCollectorCounters(t *testing.T) {
	s := NewServeCollector()
	for i := 0; i < 5; i++ {
		s.Request()
	}
	s.CacheHit()
	s.CacheHit()
	s.CacheMiss()
	s.Coalesced()
	s.Rejected()
	s.SolveStart()
	st := s.Snapshot()
	if st.Requests != 5 || st.CacheHits != 2 || st.CacheMisses != 1 || st.Coalesced != 1 || st.Rejected != 1 {
		t.Fatalf("counter mismatch: %+v", st)
	}
	if st.InFlight != 1 || st.Solves != 0 {
		t.Fatalf("want 1 in flight before SolveDone, got %+v", st)
	}
	s.SolveDone(2 * time.Millisecond)
	st = s.Snapshot()
	if st.InFlight != 0 || st.Solves != 1 || st.LatencySamples != 1 {
		t.Fatalf("after SolveDone: %+v", st)
	}
	if st.LatencyP50Ms != 2 || st.LatencyP99Ms != 2 {
		t.Fatalf("single-sample quantiles should equal the sample: %+v", st)
	}
}

func TestServeCollectorQuantiles(t *testing.T) {
	s := NewServeCollector()
	// 100 solves at 1..100 ms: nearest-rank p50 = 50, p99 = 99.
	for i := 1; i <= 100; i++ {
		s.SolveStart()
		s.SolveDone(time.Duration(i) * time.Millisecond)
	}
	st := s.Snapshot()
	if st.LatencySamples != 100 {
		t.Fatalf("want 100 samples, got %d", st.LatencySamples)
	}
	if st.LatencyP50Ms != 50 || st.LatencyP99Ms != 99 {
		t.Fatalf("want p50=50 p99=99, got p50=%g p99=%g", st.LatencyP50Ms, st.LatencyP99Ms)
	}
}

// TestServeCollectorWindow pins that the latency reservoir holds only the
// most recent serveLatencyWindow samples.
func TestServeCollectorWindow(t *testing.T) {
	s := NewServeCollector()
	// Fill the window with 1 ms, then overwrite it entirely with 10 ms.
	for i := 0; i < serveLatencyWindow; i++ {
		s.SolveStart()
		s.SolveDone(time.Millisecond)
	}
	for i := 0; i < serveLatencyWindow; i++ {
		s.SolveStart()
		s.SolveDone(10 * time.Millisecond)
	}
	st := s.Snapshot()
	if st.LatencySamples != serveLatencyWindow {
		t.Fatalf("want window-bounded samples, got %d", st.LatencySamples)
	}
	if st.LatencyP50Ms != 10 || st.LatencyP99Ms != 10 {
		t.Fatalf("old samples leaked into the window: %+v", st)
	}
}

func TestServeCollectorNilSafe(t *testing.T) {
	var s *ServeCollector
	s.Request()
	s.CacheHit()
	s.CacheMiss()
	s.Coalesced()
	s.Rejected()
	s.SolveStart()
	s.SolveDone(time.Millisecond)
	if st := s.Snapshot(); st != (ServeStats{}) {
		t.Fatalf("nil collector snapshot not zero: %+v", st)
	}
}

func TestServeCollectorConcurrent(t *testing.T) {
	s := NewServeCollector()
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Request()
				s.CacheMiss()
				s.SolveStart()
				s.SolveDone(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	st := s.Snapshot()
	if st.Requests != workers*per || st.Solves != workers*per || st.InFlight != 0 {
		t.Fatalf("lost events under concurrency: %+v", st)
	}
}

// TestServeCollectorTierAndAdmissionCounters covers the cluster-era
// counters: disk-tier hits, forwards and their failures, admission-gate
// shedding and queue depth, and streaming sweeps.
func TestServeCollectorTierAndAdmissionCounters(t *testing.T) {
	s := NewServeCollector()
	s.DiskHit()
	s.DiskHit()
	s.Forwarded()
	s.ForwardFailure()
	s.Shed()
	s.QueueDepth(1)
	s.QueueDepth(1)
	s.Stream()
	st := s.Snapshot()
	if st.DiskHits != 2 || st.Forwarded != 1 || st.ForwardFailures != 1 {
		t.Fatalf("tier counters: %+v", st)
	}
	if st.Shed != 1 || st.Queued != 2 || st.Streams != 1 {
		t.Fatalf("admission counters: %+v", st)
	}
	s.QueueDepth(-1)
	s.QueueDepth(-1)
	if st := s.Snapshot(); st.Queued != 0 {
		t.Fatalf("queue gauge did not drain: %+v", st)
	}

	// Nil safety, matching every other collector method.
	var nilC *ServeCollector
	nilC.DiskHit()
	nilC.Forwarded()
	nilC.ForwardFailure()
	nilC.Shed()
	nilC.QueueDepth(1)
	nilC.Stream()
	if st := nilC.Snapshot(); st != (ServeStats{}) {
		t.Fatalf("nil collector snapshot not zero: %+v", st)
	}
}
