package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the report-schema golden file")

// TestReportSchemaGolden pins the exact JSON wire format of the two report
// structs the repo documents and serves — obs.Report (the `-diag` file of
// both CLIs, documented in README) and obs.ServeStats (the serve section of
// the bgperfd /metrics endpoint). Any field rename, tag change, or casing
// drift (camelCase is the repo-wide convention) shows up as an explicit
// golden diff in review. Regenerate with:
//
//	go test ./internal/obs -run TestReportSchemaGolden -update
func TestReportSchemaGolden(t *testing.T) {
	report := Report{
		Solves: 2,
		Stages: map[string]StageReport{
			"build":    {Count: 2, Seconds: 0.001},
			"r-solve":  {Count: 2, Seconds: 0.002},
			"boundary": {Count: 2, Seconds: 0.003},
			"metrics":  {Count: 2, Seconds: 0.004},
		},
		RSolves:            2,
		RIterations:        14,
		LastRIterations:    7,
		LastResidual:       1e-15,
		LastSpectralRadius: 0.5,
		ConvergenceTrace:   []float64{0.25, 0.0625, 1e-15},
		Workspace: WorkspaceStats{
			MatrixHits: 10, MatrixMisses: 1,
			VectorHits: 20, VectorMisses: 2,
			LUHits: 30, LUMisses: 3,
		},
		SimRuns: 1,
		Sim: SimCounters{
			ArrivalsFG: 100, CompletedFG: 99, DelayedFG: 5,
			GeneratedBG: 30, AdmittedBG: 25, DroppedBG: 5,
			CompletedBG: 20, IdleExpirations: 15,
		},
		ReplicationsDone:  4,
		ReplicationsTotal: 8,
		Fits: []FitDiag{{
			TargetRate: 0.0133, TargetSCV: 100, TargetACF1: 0.4, TargetDecay: 0.999,
			Rate: 0.0133, SCV: 99.8, ACF1: 0.39, Decay: 0.998,
		}},
	}
	serve := ServeStats{
		Requests: 10, CacheHits: 6, CacheMisses: 4, Coalesced: 2,
		Solves: 2, InFlight: 1, Rejected: 1,
		DiskHits: 3, Forwarded: 2, ForwardFailures: 1,
		Shed: 1, Queued: 1, Streams: 1,
		LatencySamples: 2, LatencyP50Ms: 0.5, LatencyP99Ms: 1.5,
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Diag  Report     `json:"diag"`
		Serve ServeStats `json:"serve"`
	}{report, serve}); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "report_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report JSON schema drifted from %s\n-- got --\n%s\n-- want --\n%s",
			golden, buf.Bytes(), want)
	}
}
