package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sync"
	"time"
)

// Package-level counters exported via expvar (reachable through
// expvar.Handler or net/http/pprof-style debug endpoints in a long-running
// service). Every Diagnostics instance mirrors its events into these, so the
// process-wide totals survive individual collectors.
var (
	expSolves       = expvar.NewInt("bgperf.solves")
	expRIterations  = expvar.NewInt("bgperf.r_iterations")
	expSimRuns      = expvar.NewInt("bgperf.sim_runs")
	expSimEvents    = expvar.NewInt("bgperf.sim_events")
	expReplications = expvar.NewInt("bgperf.replications")
	expWsHits       = expvar.NewInt("bgperf.workspace_hits")
	expWsMisses     = expvar.NewInt("bgperf.workspace_misses")
	expFits         = expvar.NewInt("bgperf.map_fits")
)

// Diagnostics is the standard Observer: a mutex-guarded collector that
// aggregates stage timings, convergence traces, simulator counters, and
// workspace pool statistics across any number of solves and simulation runs
// (possibly concurrent — one Diagnostics may be shared by a whole parallel
// sweep). Use Report for programmatic access, FlushJSON for the
// machine-readable report, and WriteSummary for a human-readable
// convergence summary.
//
// All Observer methods are safe on a nil *Diagnostics and discard the event,
// so a typed-nil collector smuggled into an Observer interface degrades to
// no-op instrumentation instead of panicking.
type Diagnostics struct {
	mu sync.Mutex

	stageTime  [numStages]time.Duration
	stageCount [numStages]int64

	rSolves     int64
	rIterations int64
	trace       []float64 // residuals of the most recent R solve
	lastIters   int
	lastRes     float64
	lastSpR     float64

	ws WorkspaceStats

	simRuns int64
	sim     SimCounters

	repsDone, repsTotal int64

	fits []FitDiag
}

// NewDiagnostics returns an empty collector.
func NewDiagnostics() *Diagnostics { return &Diagnostics{} }

// StageDone implements Observer.
func (d *Diagnostics) StageDone(s Stage, dur time.Duration) {
	if d == nil {
		return
	}
	if s < 0 || s >= numStages {
		return
	}
	d.mu.Lock()
	d.stageTime[s] += dur
	d.stageCount[s]++
	if s == StageMetrics {
		expSolves.Add(1)
	}
	d.mu.Unlock()
}

// RIteration implements Observer. Iteration 1 starts a fresh convergence
// trace; under concurrent solves the trace interleaves reductions and only
// the aggregate counters stay exact.
func (d *Diagnostics) RIteration(iter int, residual float64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.rIterations++
	if iter <= 1 {
		d.trace = d.trace[:0]
	}
	d.trace = append(d.trace, residual)
	d.mu.Unlock()
	expRIterations.Add(1)
}

// RSolved implements Observer.
func (d *Diagnostics) RSolved(iters int, residual, spectralRadius float64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.rSolves++
	d.lastIters = iters
	d.lastRes = residual
	d.lastSpR = spectralRadius
	d.mu.Unlock()
}

// WorkspaceStats implements Observer.
func (d *Diagnostics) WorkspaceStats(ws WorkspaceStats) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.ws.add(ws)
	d.mu.Unlock()
	expWsHits.Add(ws.Hits())
	expWsMisses.Add(ws.Misses())
}

// SimRun implements Observer.
func (d *Diagnostics) SimRun(c SimCounters) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.simRuns++
	d.sim.add(c)
	d.mu.Unlock()
	expSimRuns.Add(1)
	expSimEvents.Add(c.total())
}

// ReplicationDone implements Observer.
func (d *Diagnostics) ReplicationDone(done, total int) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.repsDone = int64(done)
	d.repsTotal = int64(total)
	d.mu.Unlock()
	expReplications.Add(1)
}

// FitDone implements Observer.
func (d *Diagnostics) FitDone(f FitDiag) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.fits = append(d.fits, f)
	d.mu.Unlock()
	expFits.Add(1)
}

// StageReport is the aggregated timing of one solver stage.
type StageReport struct {
	// Count is how many times the stage completed.
	Count int64 `json:"count"`
	// Seconds is the accumulated wall-clock time.
	Seconds float64 `json:"seconds"`
}

// Report is the machine-readable snapshot of a Diagnostics collector —
// exactly what FlushJSON marshals.
type Report struct {
	// Solves counts completed analytic solves (metric extractions).
	Solves int64 `json:"solves"`
	// Stages maps stage name (build, r-solve, boundary, metrics) to its
	// accumulated timing.
	Stages map[string]StageReport `json:"stages"`

	// RSolves and RIterations count R computations and their summed
	// logarithmic-reduction iterations.
	RSolves     int64 `json:"rSolves"`
	RIterations int64 `json:"rIterations"`
	// LastRIterations, LastResidual, and LastSpectralRadius describe the
	// most recent R computation.
	LastRIterations    int     `json:"lastRIterations"`
	LastResidual       float64 `json:"lastResidual"`
	LastSpectralRadius float64 `json:"lastSpectralRadius"`
	// ConvergenceTrace is the per-iteration residual of the most recent
	// reduction (approximate when solves ran concurrently).
	ConvergenceTrace []float64 `json:"convergenceTrace,omitempty"`

	// Workspace aggregates mat.Workspace pool hits and misses.
	Workspace WorkspaceStats `json:"workspace"`

	// SimRuns and Sim aggregate simulator runs and their event counters.
	SimRuns int64       `json:"simRuns"`
	Sim     SimCounters `json:"sim"`
	// ReplicationsDone / ReplicationsTotal report replication progress.
	ReplicationsDone  int64 `json:"replicationsDone"`
	ReplicationsTotal int64 `json:"replicationsTotal"`

	// Fits lists MAP-fit diagnostics in completion order.
	Fits []FitDiag `json:"fits,omitempty"`
}

// Report returns a consistent snapshot of everything collected so far.
func (d *Diagnostics) Report() Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	r := Report{
		Solves:             d.stageCount[StageMetrics],
		Stages:             make(map[string]StageReport, numStages),
		RSolves:            d.rSolves,
		RIterations:        d.rIterations,
		LastRIterations:    d.lastIters,
		LastResidual:       d.lastRes,
		LastSpectralRadius: d.lastSpR,
		Workspace:          d.ws,
		SimRuns:            d.simRuns,
		Sim:                d.sim,
		ReplicationsDone:   d.repsDone,
		ReplicationsTotal:  d.repsTotal,
	}
	for s := Stage(0); s < numStages; s++ {
		if d.stageCount[s] == 0 {
			continue
		}
		r.Stages[s.String()] = StageReport{
			Count:   d.stageCount[s],
			Seconds: d.stageTime[s].Seconds(),
		}
	}
	r.ConvergenceTrace = append([]float64(nil), d.trace...)
	r.Fits = append([]FitDiag(nil), d.fits...)
	return r
}

// FlushJSON writes the indented JSON report to w.
func (d *Diagnostics) FlushJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d.Report())
}

// WriteSummary writes a short human-readable convergence summary to w.
func (d *Diagnostics) WriteSummary(w io.Writer) error {
	r := d.Report()
	if r.Solves > 0 || r.RSolves > 0 {
		fmt.Fprintf(w, "solves               %12d\n", r.Solves)
		fmt.Fprintf(w, "R iterations         %12d (total over %d reductions)\n", r.RIterations, r.RSolves)
		fmt.Fprintf(w, "last reduction       %12d iterations, residual %.3g, sp(R) %.6g\n",
			r.LastRIterations, r.LastResidual, r.LastSpectralRadius)
		for _, s := range []Stage{StageBuild, StageRSolve, StageBoundary, StageMetrics} {
			if sr, ok := r.Stages[s.String()]; ok {
				fmt.Fprintf(w, "stage %-14s %12.3fms over %d calls\n", s.String(), 1e3*sr.Seconds, sr.Count)
			}
		}
	}
	if hits, misses := r.Workspace.Hits(), r.Workspace.Misses(); hits+misses > 0 {
		fmt.Fprintf(w, "workspace pool       %12d hits, %d misses (%.1f%% reuse)\n",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	}
	if r.SimRuns > 0 {
		fmt.Fprintf(w, "sim runs             %12d (%d arrivals, %d BG drops, %d idle expirations)\n",
			r.SimRuns, r.Sim.ArrivalsFG, r.Sim.DroppedBG, r.Sim.IdleExpirations)
	}
	if r.ReplicationsTotal > 0 {
		fmt.Fprintf(w, "replications         %12d/%d\n", r.ReplicationsDone, r.ReplicationsTotal)
	}
	for _, f := range r.Fits {
		fmt.Fprintf(w, "map fit              rate %.6g (target %.6g), scv %.6g (target %.6g), decay %.6g (target %.6g)\n",
			f.Rate, f.TargetRate, f.SCV, f.TargetSCV, f.Decay, f.TargetDecay)
	}
	return nil
}
