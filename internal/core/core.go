// Package core implements the paper's primary contribution: the analytic
// performability model of a storage system serving foreground (FG) user
// requests and best-effort background (BG) jobs (DSN 2006, Sec. 3–4).
//
// The system is a single non-preemptive FCFS server with exponential service
// (rate µ). FG jobs arrive according to a MAP (the paper uses 2-state MMPPs
// fitted to disk traces). Each FG completion generates a BG job with
// probability p. BG jobs occupy a finite buffer of size X and are served only
// while no FG job is present, after an exponentially distributed idle wait
// (rate α); a BG job generated while the buffer is full is dropped. Neither
// class preempts the other — the disk-seek argument of the paper.
//
// The resulting Markov chain, levelled by the total job count x+y, is a
// Quasi-Birth-Death process with X+1 boundary levels; package qbd solves it
// with the matrix-geometric method, and Solution exposes the paper's four
// metrics (FG queue length, FG-delayed percentage, BG completion rate, BG
// queue length) plus supporting rates and distributions.
package core

import (
	"errors"
	"fmt"

	"bgperf/internal/arrival"
	"bgperf/internal/mat"
	"bgperf/internal/phtype"
	"bgperf/internal/qbd"
)

// ErrConfig reports an invalid model configuration.
var ErrConfig = errors.New("core: invalid configuration")

// IdleWaitPolicy selects when the server re-arms the idle-wait timer.
type IdleWaitPolicy int

const (
	// IdleWaitPerJob re-arms the idle-wait timer after every completed BG
	// job: each BG service during an idle period is preceded by a fresh
	// exponential wait. This matches the symmetric (x,0)/(x',0) state pairs
	// of the paper's chain and is the default.
	IdleWaitPerJob IdleWaitPolicy = iota + 1
	// IdleWaitPerPeriod waits once per idle period and then drains BG jobs
	// back to back until an FG job arrives.
	IdleWaitPerPeriod
)

func (p IdleWaitPolicy) String() string {
	switch p {
	case IdleWaitPerJob:
		return "per-job"
	case IdleWaitPerPeriod:
		return "per-period"
	default:
		return fmt.Sprintf("IdleWaitPolicy(%d)", int(p))
	}
}

// ParseIdleWaitPolicy is the inverse of IdleWaitPolicy.String: it maps
// "per-job" and "per-period" back to the policy constants, so CLI flags and
// JSON configs round-trip without hard-coding integers.
func ParseIdleWaitPolicy(s string) (IdleWaitPolicy, error) {
	switch s {
	case "per-job":
		return IdleWaitPerJob, nil
	case "per-period":
		return IdleWaitPerPeriod, nil
	default:
		return 0, NewValidationError(ErrConfig, "IdlePolicy", "unknown idle-wait policy %q (want per-job or per-period)", s)
	}
}

// BGAdmission selects how BG jobs generated at FG completions are admitted
// into the buffer — the paper's blind admit-if-space policy or one of the
// smart background schedulers of Kachmar's follow-up work.
type BGAdmission int

const (
	// AdmitAll admits every generated BG job that finds buffer space — the
	// paper's blind policy and the default.
	AdmitAll BGAdmission = iota + 1
	// AdmitUtilThreshold admits a generated BG job only when, besides buffer
	// space, the foreground backlog the completing job leaves behind is at
	// most FGThreshold jobs: BG work is accepted only while the system looks
	// lightly utilized. Denied jobs are dropped (counted in DropRateBG).
	AdmitUtilThreshold
	// AdmitDeadline admits every generated BG job that finds buffer space
	// (like AdmitAll) but attaches an exponential deadline with rate
	// DeadlineRate to each *waiting* BG job: a job whose deadline expires
	// before its service starts reneges and leaves. The DeadlineMissBG
	// metric reports the fraction of admitted jobs lost this way.
	AdmitDeadline
)

func (a BGAdmission) String() string {
	switch a {
	case AdmitAll:
		return "all"
	case AdmitUtilThreshold:
		return "util-threshold"
	case AdmitDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("BGAdmission(%d)", int(a))
	}
}

// ParseBGAdmission is the inverse of BGAdmission.String. The empty string
// maps to AdmitAll so optional CLI flags and JSON fields default cleanly;
// anything else unknown returns a typed *ValidationError.
func ParseBGAdmission(s string) (BGAdmission, error) {
	switch s {
	case "", "all":
		return AdmitAll, nil
	case "util-threshold":
		return AdmitUtilThreshold, nil
	case "deadline":
		return AdmitDeadline, nil
	default:
		return 0, NewValidationError(ErrConfig, "BGAdmit", "unknown BG admission policy %q (want all, util-threshold, or deadline)", s)
	}
}

// Config parameterizes the FG/BG model.
type Config struct {
	// Arrival is the FG arrival process (MMPP in the paper).
	Arrival *arrival.MAP
	// ServiceRate is µ, the exponential service rate shared by FG and BG
	// jobs (the paper studies BG work such as WRITE verification whose
	// demands match FG demands). Leave it 0 when Service is set.
	ServiceRate float64
	// Service optionally replaces the exponential service law with a
	// phase-type distribution (the paper's footnote 3 extension, built with
	// Kronecker products). When set, ServiceRate must be 0 — the mean rate
	// is implied. The PH representation must have every phase reachable
	// from the support of its initial vector.
	Service *phtype.Dist
	// ServiceMAP optionally makes service times a Markovian Arrival
	// Process: consecutive service times are *correlated* (disk locality
	// streaks), with the service phase carried from job to job and frozen
	// while the server is not serving. Mutually exclusive with ServiceRate
	// and Service.
	ServiceMAP *arrival.MAP
	// BGProb is p, the probability that a completing FG job generates a BG
	// job, in [0, 1].
	BGProb float64
	// BGBuffer is X, the BG buffer capacity (paper default 5). X = 0 models
	// a system that drops all BG work.
	BGBuffer int
	// IdleRate is α, the rate of the exponential idle wait before BG
	// service begins (paper default: 1/mean service time). Required
	// positive when BGBuffer > 0, unless IdleWait is set.
	IdleRate float64
	// IdleWait optionally replaces the exponential idle wait with a
	// phase-type distribution (the remaining footnote-3 generalization;
	// e.g. an Erlang-k approximates the deterministic timers of real
	// firmware). When set, IdleRate must be 0.
	IdleWait *phtype.Dist
	// IdlePolicy selects the idle-wait re-arming semantics; zero value
	// means IdleWaitPerJob.
	IdlePolicy IdleWaitPolicy
	// ModFactor is the capacity-modulation factor φ ∈ (0, 1]: while any BG
	// work is in the system (in service or waiting) the server runs at rate
	// φ·µ instead of µ — Marin–Mitrani's speed-modulated FG-BG model, where
	// background activity degrades foreground capacity. Zero means 1 (no
	// modulation), the paper's fixed-capacity server.
	ModFactor float64
	// BGAdmit selects the BG admission policy; zero value means AdmitAll.
	BGAdmit BGAdmission
	// FGThreshold is the utilization threshold K of AdmitUtilThreshold: a
	// generated BG job is admitted only when at most K foreground jobs
	// remain behind the completing one. Must be 0 unless BGAdmit is
	// AdmitUtilThreshold.
	FGThreshold int
	// DeadlineRate is the renege rate δ of AdmitDeadline: each waiting BG
	// job independently abandons after an exponential deadline with rate δ.
	// Required positive exactly when BGAdmit is AdmitDeadline.
	DeadlineRate float64
}

func (c Config) withDefaults() Config {
	if c.IdlePolicy == 0 {
		c.IdlePolicy = IdleWaitPerJob
	}
	if c.ModFactor == 0 {
		c.ModFactor = 1
	}
	if c.BGAdmit == 0 {
		c.BGAdmit = AdmitAll
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Arrival == nil:
		return NewValidationError(ErrConfig, "Arrival", "nil arrival process")
	case c.Service == nil && c.ServiceMAP == nil && c.ServiceRate <= 0:
		return NewValidationError(ErrConfig, "ServiceRate", "service rate %g must be positive", c.ServiceRate)
	case c.Service != nil && (c.ServiceRate != 0 || c.ServiceMAP != nil):
		return NewValidationError(ErrConfig, "Service", "set exactly one of ServiceRate, Service, ServiceMAP")
	case c.ServiceMAP != nil && c.ServiceRate != 0:
		return NewValidationError(ErrConfig, "ServiceMAP", "set exactly one of ServiceRate, Service, ServiceMAP")
	case c.BGProb < 0 || c.BGProb > 1:
		return NewValidationError(ErrConfig, "BGProb", "BG probability %g must lie in [0,1]", c.BGProb)
	case c.BGBuffer < 0:
		return NewValidationError(ErrConfig, "BGBuffer", "BG buffer %d must be nonnegative", c.BGBuffer)
	case c.IdleWait != nil && c.IdleRate != 0:
		return NewValidationError(ErrConfig, "IdleWait", "set either IdleRate or IdleWait, not both")
	case c.BGBuffer > 0 && c.IdleRate <= 0 && c.IdleWait == nil:
		return NewValidationError(ErrConfig, "IdleRate", "idle rate %g must be positive when the BG buffer is nonempty", c.IdleRate)
	case c.IdlePolicy != IdleWaitPerJob && c.IdlePolicy != IdleWaitPerPeriod:
		return NewValidationError(ErrConfig, "IdlePolicy", "unknown idle-wait policy %d", int(c.IdlePolicy))
	case !(c.ModFactor > 0 && c.ModFactor <= 1):
		return NewValidationError(ErrConfig, "ModFactor", "modulation factor %g must lie in (0,1]", c.ModFactor)
	case c.BGAdmit != AdmitAll && c.BGAdmit != AdmitUtilThreshold && c.BGAdmit != AdmitDeadline:
		return NewValidationError(ErrConfig, "BGAdmit", "unknown BG admission policy %d", int(c.BGAdmit))
	case c.FGThreshold < 0:
		return NewValidationError(ErrConfig, "FGThreshold", "FG threshold %d must be nonnegative", c.FGThreshold)
	case c.FGThreshold != 0 && c.BGAdmit != AdmitUtilThreshold:
		return NewValidationError(ErrConfig, "FGThreshold", "FG threshold requires the util-threshold admission policy")
	case c.BGAdmit == AdmitDeadline && c.DeadlineRate <= 0:
		return NewValidationError(ErrConfig, "DeadlineRate", "deadline rate %g must be positive with the deadline admission policy", c.DeadlineRate)
	case c.BGAdmit != AdmitDeadline && c.DeadlineRate != 0:
		return NewValidationError(ErrConfig, "DeadlineRate", "deadline rate requires the deadline admission policy")
	}
	return nil
}

// Kind classifies the server condition of a chain state.
type Kind int

const (
	// KindEmpty is the empty system (no jobs at all).
	KindEmpty Kind = iota + 1
	// KindFG is a state with a foreground job in service.
	KindFG
	// KindBG is a state with a background job in service.
	KindBG
	// KindIdle is an idle-wait state: BG jobs present, server idle, timer
	// running.
	KindIdle
)

func (k Kind) String() string {
	switch k {
	case KindEmpty:
		return "empty"
	case KindFG:
		return "fg-serving"
	case KindBG:
		return "bg-serving"
	case KindIdle:
		return "idle-wait"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "empty":
		return KindEmpty, nil
	case "fg-serving":
		return KindFG, nil
	case "bg-serving":
		return KindBG, nil
	case "idle-wait":
		return KindIdle, nil
	default:
		return 0, NewValidationError(ErrConfig, "Kind", "unknown state kind %q (want empty, fg-serving, bg-serving, or idle-wait)", s)
	}
}

// block identifies one group of MAP phases within a level: the paper's
// (x,y) / (x',y) / idle-wait states. The FG count y is implied by the level:
// y = level − x.
type block struct {
	kind Kind
	x    int // BG jobs in system (waiting or in service)
}

// Model is a validated, solvable instance of the FG/BG chain. Each chain
// state carries a composite phase (arrival phase, service stage); with the
// default exponential service the service dimension is 1 and the chain is
// exactly the paper's.
type Model struct {
	cfg Config

	aPhases int          // arrival (MAP) order A
	sPhases int          // service order S (PH phases or service-MAP phases)
	wPhases int          // idle-wait (PH) order W
	svc     *phtype.Dist // nil when ServiceMAP drives the service process
	svcMAP  *arrival.MAP // nil unless ServiceMAP is set
	idle    *phtype.Dist // nil when the buffer never idles (BGBuffer = 0)
	mu      float64      // mean service rate 1/E[S]

	// Composite transition blocks of dimension A·S·W, built once with
	// Kronecker products (the paper's footnote 3 construction). The service
	// stage is parked at 0 in non-serving states, the idle stage at 0 in
	// non-idle-wait states.
	// Every transition out of a non-idle block collapses the idle stage to
	// 0 (1e₀ on the W factor): the stage is meaningless there, and keeping
	// it would clone the repeating chain into W disconnected copies.
	fServe         *mat.Matrix // F ⊗ I_S ⊗ 1e₀: arrival while a job is in service
	fStart         *mat.Matrix // F ⊗ 1β ⊗ 1e₀: arrival that begins a service (empty or idle-wait origin)
	lServe         *mat.Matrix // L ⊗ I_S ⊗ 1e₀: arrival-phase moves outside idle waits
	lIdle          *mat.Matrix // L ⊗ I_S ⊗ I_W: arrival-phase moves during an idle wait
	tOff           *mat.Matrix // I_A ⊗ offdiag(T) ⊗ 1e₀: service-stage moves
	complServe     *mat.Matrix // I_A ⊗ tβ ⊗ 1e₀: completion, next service starts
	complStopEmpty *mat.Matrix // I_A ⊗ t e₀ ⊗ 1e₀: completion emptying the system
	complStopIdle  *mat.Matrix // I_A ⊗ t e₀ ⊗ 1κ: completion arming the idle timer
	vOff           *mat.Matrix // I_A ⊗ I_S ⊗ offdiag(V): idle-stage moves
	idleGo         *mat.Matrix // I_A ⊗ 1β ⊗ v e₀: idle expiry starts BG service

	// Capacity modulation (ModFactor φ < 1): while BG work is in the system
	// the server runs at φ·µ, so every service-derived kernel out of a
	// modulated block (x ≥ 1) is the baseline kernel scaled by φ. When
	// φ = 1 the modulated fields alias the baseline ones, which keeps the
	// degenerate model bit-identical to the baseline chain.
	tOffMod *mat.Matrix // φ · tOff

	// Deadline reneging (AdmitDeadline): each waiting BG job abandons at
	// rate δ, a down transition that preserves the arrival and service
	// phases. renegeServe[w] = w·δ·(I_A ⊗ I_S ⊗ collapse) serves blocks
	// whose idle stage is parked (FG/BG service, and the x = 1 idle-wait
	// exit to Empty); renegeIdle[w] = w·δ·(I_A ⊗ I_S ⊗ I_W) preserves a
	// running idle-wait stage. Both are nil unless the policy is active.
	renegeServe []*mat.Matrix
	renegeIdle  []*mat.Matrix

	rateVec []float64 // per-composite-state arrival rates (D1 row sums)
	exitVec []float64 // per-composite-state service completion rates

	// complCache holds the precomputed completion-rate matrices
	// [target][prob] for prob ∈ {1, p, 1−p}; see completionRate.
	// complCacheMod is the φ-scaled variant used out of modulated blocks
	// (aliasing complCache when φ = 1).
	complCache    [3][3]*mat.Matrix
	complCacheMod [3][3]*mat.Matrix

	// blockLayout[j] caches levelBlocks(j) for the boundary levels
	// j = 0..xEff; repLayout is the shared layout of every repeating level
	// (> xEff). Chain assembly resolves block indices per transition, so
	// levelBlocks must not allocate per call. The cached slices are shared:
	// callers must not modify them.
	blockLayout [][]block
	repLayout   []block

	// xEff is the buffer size used for state-space construction: it equals
	// cfg.BGBuffer except when BGProb = 0, where BG and idle-wait states are
	// unreachable and are pruned to keep the phase process irreducible.
	xEff int

	// boundaryTop is the last level treated as a QBD boundary level. It
	// equals xEff except under AdmitUtilThreshold, where admission depends
	// on the foreground backlog K = FGThreshold: levels up to
	// xEff + K + 1 can still admit BG jobs, and only above that is every
	// admission uniformly denied, making the chain level-homogeneous.
	boundaryTop int

	// tuning is forwarded to the qbd.Process built by each solve.
	tuning qbd.Tuning
}

// Tune installs numerical strategy knobs (R iteration scheme, intra-solve
// worker fan-out) for all subsequent solves on m. The zero Tuning is the
// default configuration. It must not be called concurrently with a solve.
func (m *Model) Tune(t qbd.Tuning) { m.tuning = t }

// NewModel validates cfg and prepares the chain builder.
func NewModel(cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	svc := cfg.Service
	if svc == nil && cfg.ServiceMAP == nil {
		var err error
		svc, err = phtype.Exponential(cfg.ServiceRate)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrConfig, err)
		}
	} else if svc != nil {
		if err := checkPHReachable(svc, "Service"); err != nil {
			return nil, err
		}
	}
	idle := cfg.IdleWait
	if idle == nil && cfg.IdleRate > 0 {
		var err error
		idle, err = phtype.Exponential(cfg.IdleRate)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrConfig, err)
		}
	}
	if idle != nil {
		if err := checkPHReachable(idle, "IdleWait"); err != nil {
			return nil, err
		}
	}

	d0 := cfg.Arrival.D0()
	a := d0.Rows()
	lArr := mat.New(a, a)
	for i := 0; i < a; i++ {
		for j := 0; j < a; j++ {
			if i != j {
				lArr.Set(i, j, d0.At(i, j))
			}
		}
	}
	f := cfg.Arrival.D1()
	// Service kernels on the S dimension, covering both service laws:
	//   stage moves  — within-service phase transitions (no completion)
	//   complServe/S — completion when another service starts immediately
	//   complStop/S  — completion into a non-serving state
	//   start/S      — how a fresh service sets the stage
	// PH(β, T): completions exit via t = −T·1 and restart in β; the stage is
	// parked at 0 while not serving. MAP (S0, S1): completions follow S1 and
	// the stage is FROZEN (preserved) while not serving.
	var (
		sN                                     int
		tOffS, complServeS, complStopS, startS *mat.Matrix
		exit                                   []float64
		svcRate                                float64
	)
	if cfg.ServiceMAP != nil {
		sMAP := cfg.ServiceMAP
		sN = sMAP.Order()
		s0 := sMAP.D0()
		s1 := sMAP.D1()
		tOffS = mat.New(sN, sN)
		for i := 0; i < sN; i++ {
			for j := 0; j < sN; j++ {
				if i != j {
					tOffS.Set(i, j, s0.At(i, j))
				}
			}
		}
		complServeS = s1
		complStopS = s1
		startS = mat.Identity(sN)
		exit = s1.RowSums()
		svcRate = sMAP.Rate()
	} else {
		sN = svc.Order()
		tm := svc.T()
		tOffS = mat.New(sN, sN)
		for i := 0; i < sN; i++ {
			for j := 0; j < sN; j++ {
				if i != j {
					tOffS.Set(i, j, tm.At(i, j))
				}
			}
		}
		beta := svc.Beta()
		exit = svc.ExitRates()
		complServeS = mat.New(sN, sN)
		complStopS = mat.New(sN, sN)
		startS = mat.New(sN, sN)
		for i := 0; i < sN; i++ {
			for j := 0; j < sN; j++ {
				startS.Set(i, j, beta[j])
				complServeS.Set(i, j, exit[i]*beta[j])
			}
			complStopS.Set(i, 0, exit[i])
		}
		svcRate = svc.Rate()
	}
	wN := 1
	if idle != nil {
		wN = idle.Order()
	}
	var (
		iS = mat.Identity(sN)
		iA = mat.Identity(a)
		iW = mat.Identity(wN)
		// Idle-wait building blocks on the W dimension.
		oneKappa = mat.New(wN, wN) // reset the idle stage to κ
		collapse = mat.New(wN, wN) // abandon the idle timer (park at 0)
		vStop    = mat.New(wN, wN) // expire from stage w at rate v_w, park at 0
		vOffW    = mat.New(wN, wN) // idle-stage moves
	)
	for i := 0; i < wN; i++ {
		collapse.Set(i, 0, 1)
	}
	if idle != nil {
		kappa := idle.Beta()
		vExit := idle.ExitRates()
		vT := idle.T()
		for i := 0; i < wN; i++ {
			for j := 0; j < wN; j++ {
				oneKappa.Set(i, j, kappa[j])
				if i != j {
					vOffW.Set(i, j, vT.At(i, j))
				}
			}
			vStop.Set(i, 0, vExit[i])
		}
	}

	xEff := cfg.BGBuffer
	if cfg.BGProb == 0 {
		xEff = 0
	}
	m := &Model{
		cfg:            cfg,
		aPhases:        a,
		sPhases:        sN,
		wPhases:        wN,
		svc:            svc,
		svcMAP:         cfg.ServiceMAP,
		idle:           idle,
		mu:             svcRate,
		fServe:         f.Kron(iS).Kron(collapse),
		fStart:         f.Kron(startS).Kron(collapse),
		lServe:         lArr.Kron(iS).Kron(collapse),
		lIdle:          lArr.Kron(iS).Kron(iW),
		tOff:           iA.Kron(tOffS).Kron(collapse),
		complServe:     iA.Kron(complServeS).Kron(collapse),
		complStopEmpty: iA.Kron(complStopS).Kron(collapse),
		complStopIdle:  iA.Kron(complStopS).Kron(oneKappa),
		xEff:           xEff,
	}
	if idle != nil {
		m.vOff = iA.Kron(iS).Kron(vOffW)
		m.idleGo = iA.Kron(startS).Kron(vStop)
	}
	if phi := cfg.ModFactor; phi != 1 {
		m.tOffMod = m.tOff.Clone().Scale(phi)
	} else {
		m.tOffMod = m.tOff
	}
	m.boundaryTop = xEff
	if cfg.BGAdmit == AdmitUtilThreshold && xEff > 0 {
		m.boundaryTop = xEff + cfg.FGThreshold + 1
	}
	if cfg.BGAdmit == AdmitDeadline && xEff > 0 {
		paused := iA.Kron(iS).Kron(collapse)
		pausedIdle := iA.Kron(iS).Kron(iW)
		m.renegeServe = make([]*mat.Matrix, xEff+1)
		m.renegeIdle = make([]*mat.Matrix, xEff+1)
		for w := 1; w <= xEff; w++ {
			rate := float64(w) * cfg.DeadlineRate
			m.renegeServe[w] = scaled(paused, rate)
			m.renegeIdle[w] = scaled(pausedIdle, rate)
		}
	}
	m.buildComplCache()
	m.blockLayout = make([][]block, xEff+1)
	for j := 0; j <= xEff; j++ {
		m.blockLayout[j] = buildLevelBlocks(j, xEff)
	}
	m.repLayout = buildLevelBlocks(xEff+1, xEff)
	dim := a * sN * wN
	m.rateVec = make([]float64, dim)
	m.exitVec = make([]float64, dim)
	arrRates := f.RowSums()
	for ai := 0; ai < a; ai++ {
		for si := 0; si < sN; si++ {
			for wi := 0; wi < wN; wi++ {
				idx := (ai*sN+si)*wN + wi
				m.rateVec[idx] = arrRates[ai]
				m.exitVec[idx] = exit[si]
			}
		}
	}
	return m, nil
}

// checkPHReachable verifies every service phase is reachable from the
// support of β through T, which the chain construction requires for an
// irreducible phase process.
func checkPHReachable(d *phtype.Dist, field string) error {
	s := d.Order()
	t := d.T()
	reached := make([]bool, s)
	var stack []int
	for i, b := range d.Beta() {
		if b > 0 {
			reached[i] = true
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < s; j++ {
			if j != i && !reached[j] && t.At(i, j) > 0 {
				reached[j] = true
				stack = append(stack, j)
			}
		}
	}
	for i, ok := range reached {
		if !ok {
			return NewValidationError(ErrConfig, field, "phase %d unreachable from β (trim the representation)", i)
		}
	}
	return nil
}

// Config returns the model configuration (with defaults applied).
func (m *Model) Config() Config { return m.cfg }

// Phases returns the composite phase count per block: the MAP order times
// the service-PH order times the idle-wait-PH order (the PH orders are 1
// for the default exponential laws).
func (m *Model) Phases() int { return m.aPhases * m.sPhases * m.wPhases }

// ServiceRate returns the effective mean service rate µ.
func (m *Model) ServiceRate() float64 { return m.mu }

// FGUtilization returns the offered foreground load ρ = λ/µ.
func (m *Model) FGUtilization() float64 {
	return m.cfg.Arrival.Rate() / m.mu
}

// levelBlocks enumerates the blocks of one level in the paper's π order:
// (0,j), then (x,j−x) and (x',j−x) for growing x, ending at boundary levels
// with the idle-wait pair (j,0), (j',0). The returned slice is cached and
// shared — callers must treat it as read-only.
func (m *Model) levelBlocks(level int) []block {
	if level <= m.xEff {
		return m.blockLayout[level]
	}
	return m.repLayout
}

// buildLevelBlocks constructs the block layout of one level for a buffer of
// size x; levelBlocks serves cached copies of these.
func buildLevelBlocks(level, x int) []block {
	if level == 0 {
		return []block{{kind: KindEmpty}}
	}
	var blocks []block
	if level <= x {
		blocks = make([]block, 0, 2*level+1)
		blocks = append(blocks, block{kind: KindFG, x: 0})
		for i := 1; i < level; i++ {
			blocks = append(blocks, block{kind: KindFG, x: i}, block{kind: KindBG, x: i})
		}
		blocks = append(blocks, block{kind: KindIdle, x: level}, block{kind: KindBG, x: level})
		return blocks
	}
	blocks = make([]block, 0, 2*x+1)
	blocks = append(blocks, block{kind: KindFG, x: 0})
	for i := 1; i <= x; i++ {
		blocks = append(blocks, block{kind: KindFG, x: i}, block{kind: KindBG, x: i})
	}
	return blocks
}

// blockIndex returns the position of a block within its level, or −1.
func (m *Model) blockIndex(level int, b block) int {
	for i, cand := range m.levelBlocks(level) {
		if cand == b {
			return i
		}
	}
	return -1
}

// levelStates returns the number of chain states in one level.
func (m *Model) levelStates(level int) int {
	return len(m.levelBlocks(level)) * m.Phases()
}
