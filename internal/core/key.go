package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"bgperf/internal/arrival"
	"bgperf/internal/mat"
	"bgperf/internal/phtype"
)

// Field tags of the canonical Config encoding hashed by CacheKey. Every
// optional component writes its tag before its payload, so "Service unset"
// and "Service set to an empty-looking distribution" can never collide, and
// new fields can be appended without perturbing existing keys.
const (
	keyTagArrival byte = iota + 1
	keyTagServiceRate
	keyTagServicePH
	keyTagServiceMAP
	keyTagBGProb
	keyTagBGBuffer
	keyTagIdleRate
	keyTagIdlePH
	keyTagIdlePolicy
	// PR 10 scenario fields. Each is written only when it deviates from its
	// default (φ = 1, AdmitAll), so every pre-existing configuration keeps
	// its byte-identical key, and the tag prefix keeps a modulated or
	// policy-carrying config from ever colliding with a baseline one.
	keyTagModFactor
	keyTagBGAdmit
	keyTagFGThreshold
	keyTagDeadlineRate
)

// KeySectionPlan tags the planner extension section appended by CacheKeyExt:
// the inverse solver's SLO bounds, decision variable, and search knobs. The
// value sits far above the config field tags so a future config field can
// never collide with a section tag.
const KeySectionPlan byte = 0x50

// CacheKey returns a canonical, collision-resistant identity for a model
// configuration: the hex-encoded SHA-256 of a tagged binary encoding of the
// validated Config (defaults applied). Two configurations receive the same
// key exactly when they describe the same chain — the same arrival MAP
// matrices, service law, BG probability and buffer, idle-wait law, and idle
// policy — which makes the key safe to use for memoizing Solve results:
// identical keys always yield bit-identical solutions. Invalid
// configurations return the same *ValidationError that NewModel would.
func CacheKey(cfg Config) (string, error) {
	h := sha256.New()
	if err := hashConfig(h, cfg); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// CacheKeyExt returns CacheKey(cfg) extended with a tagged trailing section
// of scalar parameters — the identity of a derived computation over the
// configuration (a capacity plan, say) rather than of the bare solve. The
// section byte (KeySectionPlan, …) namespaces the extension: the same
// scalars under different sections, and a plain CacheKey with no section,
// can never collide. Invalid configurations return the same
// *ValidationError that NewModel would.
func CacheKeyExt(cfg Config, section byte, ints []int64, floats []float64) (string, error) {
	h := sha256.New()
	if err := hashConfig(h, cfg); err != nil {
		return "", err
	}
	keyInts(h, section, int64(len(ints)), int64(len(floats)))
	keyInts(h, section, ints...)
	keyFloats(h, section, floats...)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ValidCacheKey reports whether s has the shape of a key produced by
// CacheKey or CacheKeyExt: exactly 64 lowercase hexadecimal characters (a
// hex-encoded SHA-256). Stores that use cache keys as on-disk file names
// (internal/cas) gate on this before touching the filesystem, so a
// corrupted or adversarial key can never escape the store's directory or
// collide with its temp-file and quarantine namespaces.
func ValidCacheKey(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// hashConfig writes the tagged canonical encoding of the validated config
// (defaults applied) into the hash.
func hashConfig(h hash.Hash, cfg Config) error {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	keyMAP(h, keyTagArrival, cfg.Arrival)
	switch {
	case cfg.Service != nil:
		keyPH(h, keyTagServicePH, cfg.Service)
	case cfg.ServiceMAP != nil:
		keyMAP(h, keyTagServiceMAP, cfg.ServiceMAP)
	default:
		keyFloats(h, keyTagServiceRate, cfg.ServiceRate)
	}
	keyFloats(h, keyTagBGProb, cfg.BGProb)
	keyInts(h, keyTagBGBuffer, int64(cfg.BGBuffer))
	if cfg.IdleWait != nil {
		keyPH(h, keyTagIdlePH, cfg.IdleWait)
	} else {
		keyFloats(h, keyTagIdleRate, cfg.IdleRate)
	}
	keyInts(h, keyTagIdlePolicy, int64(cfg.IdlePolicy))
	if cfg.ModFactor != 1 {
		keyFloats(h, keyTagModFactor, cfg.ModFactor)
	}
	if cfg.BGAdmit != AdmitAll {
		keyInts(h, keyTagBGAdmit, int64(cfg.BGAdmit))
		switch cfg.BGAdmit {
		case AdmitUtilThreshold:
			keyInts(h, keyTagFGThreshold, int64(cfg.FGThreshold))
		case AdmitDeadline:
			keyFloats(h, keyTagDeadlineRate, cfg.DeadlineRate)
		}
	}
	return nil
}

// keyInts writes a tagged sequence of integers into the hash.
func keyInts(h hash.Hash, tag byte, vals ...int64) {
	h.Write([]byte{tag})
	for _, v := range vals {
		binary.Write(h, binary.LittleEndian, v)
	}
}

// keyFloats writes a tagged sequence of float64 bit patterns into the hash.
func keyFloats(h hash.Hash, tag byte, vals ...float64) {
	h.Write([]byte{tag})
	for _, v := range vals {
		binary.Write(h, binary.LittleEndian, v)
	}
}

// keyMatrix writes a dimension-prefixed dense matrix into the hash.
func keyMatrix(h hash.Hash, m *mat.Matrix) {
	binary.Write(h, binary.LittleEndian, int64(m.Rows()))
	binary.Write(h, binary.LittleEndian, int64(m.Cols()))
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			binary.Write(h, binary.LittleEndian, m.At(i, j))
		}
	}
}

// keyMAP writes a tagged (D0, D1) MAP description into the hash.
func keyMAP(h hash.Hash, tag byte, m *arrival.MAP) {
	h.Write([]byte{tag})
	keyMatrix(h, m.D0())
	keyMatrix(h, m.D1())
}

// keyPH writes a tagged (β, T) phase-type description into the hash.
func keyPH(h hash.Hash, tag byte, d *phtype.Dist) {
	h.Write([]byte{tag})
	beta := d.Beta()
	binary.Write(h, binary.LittleEndian, int64(len(beta)))
	for _, b := range beta {
		binary.Write(h, binary.LittleEndian, b)
	}
	keyMatrix(h, d.T())
}
