package core

import (
	"fmt"

	"bgperf/internal/mat"
	"bgperf/internal/qbd"
)

// trans is one emitted block transition: from block fromIdx of some level to
// block toIdx of level+dLevel, with a composite (A·S)×(A·S) rate matrix.
type trans struct {
	dLevel  int // −1, 0, +1
	fromIdx int
	toIdx   int
	rate    *mat.Matrix
}

// scaled returns rate·base as a fresh matrix, or nil when rate is zero.
func scaled(base *mat.Matrix, rate float64) *mat.Matrix {
	if rate == 0 {
		return nil
	}
	return base.Clone().Scale(rate)
}

// downTargetAfterFGCompletion classifies the state reached when an FG job
// leaves behind x BG jobs and yLeft FG jobs.
func downTargetAfterFGCompletion(x, yLeft int) block {
	if yLeft >= 1 {
		return block{kind: KindFG, x: x}
	}
	if x == 0 {
		return block{kind: KindEmpty}
	}
	return block{kind: KindIdle, x: x}
}

// completionRate returns the composite-rate matrix for a service completion
// leading into the given target block, scaled by prob: a completion that
// starts another service (FG or BG target) resets the service phase with
// t·β; one that empties the system parks the stage with t·e₀; one that
// arms the idle-wait timer additionally resets the idle stage to κ.
// mod selects the φ-scaled matrices of a modulated from-block (BG work in
// the system slows the server to φ·µ); with φ = 1 the two caches alias, so
// the degenerate model assembles bit-identically.
//
// Every call during chain assembly uses prob ∈ {1, p, 1−p}, and the scaled
// products are identical across levels, so they are precomputed once at
// build time (buildComplCache); unknown probabilities fall back to a fresh
// scale. The returned matrix is shared and must not be mutated.
func (m *Model) completionRate(to block, prob float64, mod bool) *mat.Matrix {
	base := complStopEmptyIdx
	switch to.kind {
	case KindFG, KindBG:
		base = complServeIdx
	case KindIdle:
		base = complStopIdleIdx
	}
	cache := &m.complCache
	if mod {
		cache = &m.complCacheMod
	}
	switch prob {
	case 1:
		return cache[base][0]
	case m.cfg.BGProb:
		return cache[base][1]
	case 1 - m.cfg.BGProb:
		return cache[base][2]
	}
	if mod {
		prob *= m.cfg.ModFactor
	}
	return scaled(m.complBase(base), prob)
}

// Completion-rate cache indices: the base matrix by completion target.
const (
	complServeIdx = iota
	complStopIdleIdx
	complStopEmptyIdx
)

func (m *Model) complBase(base int) *mat.Matrix {
	switch base {
	case complServeIdx:
		return m.complServe
	case complStopIdleIdx:
		return m.complStopIdle
	default:
		return m.complStopEmpty
	}
}

// buildComplCache precomputes completionRate's scaled matrices for the three
// probabilities chain assembly uses (1, p, 1−p) across the three completion
// targets, plus the φ-scaled modulated variants (aliased when φ = 1).
func (m *Model) buildComplCache() {
	p := m.cfg.BGProb
	phi := m.cfg.ModFactor
	for base := complServeIdx; base <= complStopEmptyIdx; base++ {
		src := m.complBase(base)
		m.complCache[base] = [3]*mat.Matrix{scaled(src, 1), scaled(src, p), scaled(src, 1-p)}
		if phi == 1 {
			m.complCacheMod[base] = m.complCache[base]
		} else {
			m.complCacheMod[base] = [3]*mat.Matrix{
				scaled(src, phi), scaled(src, phi*p), scaled(src, phi*(1-p)),
			}
		}
	}
}

// admitBG reports whether a BG job generated at an FG completion is admitted
// when the completing job leaves behind x BG jobs and yLeft foreground jobs:
// buffer space is always required, and the util-threshold policy additionally
// demands a foreground backlog of at most FGThreshold. Above the model's
// boundaryTop level (yLeft > xEff + FGThreshold − x … ) the answer is
// uniformly false under util-threshold, which keeps the repeating chain
// level-homogeneous.
func (m *Model) admitBG(x, yLeft int) bool {
	if x >= m.xEff {
		return false
	}
	if m.cfg.BGAdmit == AdmitUtilThreshold && yLeft > m.cfg.FGThreshold {
		return false
	}
	return true
}

// serviceOff returns the within-service stage-move kernel for a block,
// modulated or not.
func (m *Model) serviceOff(mod bool) *mat.Matrix {
	if mod {
		return m.tOffMod
	}
	return m.tOff
}

// transitionsFrom emits every off-diagonal block transition out of the given
// level, encoding the chain of the paper's Fig. 3/4 (with the service
// dimension of footnote 3 folded into the composite phases).
func (m *Model) transitionsFrom(level int) []trans {
	blocks := m.levelBlocks(level)
	var (
		cfg    = m.cfg
		p      = cfg.BGProb
		renege = cfg.DeadlineRate > 0
		// Worst case: six emitted transitions per block (FG with BG
		// admission and deadline reneging); one allocation instead of
		// log-many append growths.
		out = make([]trans, 0, 6*len(blocks))
	)
	emit := func(from block, dLevel int, to block, rate *mat.Matrix) {
		if rate == nil {
			return
		}
		fromIdx := m.blockIndex(level, from)
		toIdx := m.blockIndex(level+dLevel, to)
		if fromIdx < 0 || toIdx < 0 {
			panic(fmt.Sprintf("core: unmapped transition level %d %+v -> %+v", level, from, to))
		}
		out = append(out, trans{dLevel: dLevel, fromIdx: fromIdx, toIdx: toIdx, rate: rate})
	}
	for _, b := range blocks {
		y := level - b.x // FG jobs in system (0 for Empty/Idle by construction)
		switch b.kind {
		case KindEmpty:
			emit(b, +1, block{kind: KindFG, x: 0}, m.fStart)
			emit(b, 0, b, m.lServe)

		case KindFG:
			// With BG work in the system the server is modulated: every
			// service-derived kernel is scaled by φ.
			mod := b.x >= 1
			emit(b, +1, block{kind: KindFG, x: b.x}, m.fServe)
			emit(b, 0, b, m.lServe)
			emit(b, 0, b, m.serviceOff(mod))
			// Completion without BG generation.
			to := downTargetAfterFGCompletion(b.x, y-1)
			emit(b, -1, to, m.completionRate(to, 1-p, mod))
			if p > 0 {
				if m.admitBG(b.x, y-1) {
					// BG admitted: FG leaves, BG joins — same level.
					to := block{kind: KindFG, x: b.x + 1}
					if y-1 == 0 {
						to = block{kind: KindIdle, x: b.x + 1}
					}
					emit(b, 0, to, m.completionRate(to, p, mod))
				} else {
					// Buffer full (or the foreground backlog exceeds the
					// util threshold): the generated BG job is dropped.
					to := downTargetAfterFGCompletion(b.x, y-1)
					emit(b, -1, to, m.completionRate(to, p, mod))
				}
			}
			if renege && b.x >= 1 {
				// All b.x BG jobs wait during an FG service; each abandons
				// at rate δ.
				emit(b, -1, block{kind: KindFG, x: b.x - 1}, m.renegeServe[b.x])
			}

		case KindBG:
			emit(b, +1, block{kind: KindBG, x: b.x}, m.fServe)
			emit(b, 0, b, m.lServe)
			emit(b, 0, b, m.serviceOff(true))
			if y >= 1 {
				// BG completes with FG waiting: an FG job starts service.
				to := block{kind: KindFG, x: b.x - 1}
				emit(b, -1, to, m.completionRate(to, 1, true))
			} else {
				// BG completes with the system otherwise empty.
				var to block
				switch {
				case b.x-1 == 0:
					to = block{kind: KindEmpty}
				case cfg.IdlePolicy == IdleWaitPerPeriod:
					to = block{kind: KindBG, x: b.x - 1}
				default: // IdleWaitPerJob
					to = block{kind: KindIdle, x: b.x - 1}
				}
				emit(b, -1, to, m.completionRate(to, 1, true))
			}
			if renege && b.x >= 2 {
				// The in-service BG job cannot renege; the other x−1 wait.
				emit(b, -1, block{kind: KindBG, x: b.x - 1}, m.renegeServe[b.x-1])
			}

		case KindIdle:
			// An arriving FG job seizes the idle server immediately,
			// abandoning the idle timer.
			emit(b, +1, block{kind: KindFG, x: b.x}, m.fStart)
			emit(b, 0, b, m.lIdle)
			emit(b, 0, b, m.vOff)
			// Idle wait expires: a BG job starts service.
			emit(b, 0, block{kind: KindBG, x: b.x}, m.idleGo)
			if renege {
				// All x jobs wait during an idle wait. The last renege
				// abandons the timer and empties the system; earlier ones
				// keep the idle stage running.
				if b.x >= 2 {
					emit(b, -1, block{kind: KindIdle, x: b.x - 1}, m.renegeIdle[b.x])
				} else {
					emit(b, -1, block{kind: KindEmpty}, m.renegeServe[1])
				}
			}
		}
	}
	return out
}

// levelMatrices assembles (Down, Local, Up) for one level from the emitted
// transitions, with the Local diagonal left at zero (fixed globally later).
func (m *Model) levelMatrices(level int) (down, local, up *mat.Matrix) {
	nHere := m.levelStates(level)
	local = mat.New(nHere, nHere)
	up = mat.New(nHere, m.levelStates(level+1))
	if level > 0 {
		down = mat.New(nHere, m.levelStates(level-1))
	}
	a := m.Phases()
	for _, tr := range m.transitionsFrom(level) {
		var dst *mat.Matrix
		switch tr.dLevel {
		case -1:
			dst = down
		case 0:
			dst = local
		case +1:
			dst = up
		}
		dst.AddBlockAt(tr.fromIdx*a, tr.toIdx*a, tr.rate)
	}
	return down, local, up
}

// fixDiagonal sets local's diagonal so every global row sums to zero.
func fixDiagonal(local *mat.Matrix, others ...*mat.Matrix) {
	n := local.Rows()
	for i := 0; i < n; i++ {
		sum := local.RowSum(i)
		for _, o := range others {
			if o != nil {
				sum += o.RowSum(i)
			}
		}
		local.Add(i, i, -sum)
	}
}

// qbdBlocks builds the boundary (levels 0..boundaryTop) and repeating
// (levels > boundaryTop) blocks of the chain. boundaryTop is X except under
// the util-threshold admission policy, whose level-dependent admission
// pushes the homogeneous region up to X + K + 1.
func (m *Model) qbdBlocks() (qbd.Boundary, *qbd.Process, error) {
	top := m.boundaryTop
	boundary := qbd.Boundary{
		Local: make([]*mat.Matrix, top+1),
		Up:    make([]*mat.Matrix, top+1),
		Down:  make([]*mat.Matrix, top+1),
	}
	for j := 0; j <= top; j++ {
		down, local, up := m.levelMatrices(j)
		fixDiagonal(local, up, down)
		boundary.Local[j] = local
		boundary.Up[j] = up
		boundary.Down[j] = down
	}
	// Transitions from the first repeating level down into the last
	// boundary level differ structurally from the homogeneous A2 (they can
	// enter idle-wait states), so they are built explicitly.
	repDown, _, _ := m.levelMatrices(top + 1)
	boundary.RepDown = repDown

	// The repeating blocks are built at a virtual level two past the
	// boundary, where both neighbouring levels already have the repeating
	// layout.
	a2, a1, a0 := m.levelMatrices(top + 2)
	fixDiagonal(a1, a0, a2)
	proc, err := qbd.New(a0, a1, a2)
	if err != nil {
		return qbd.Boundary{}, nil, fmt.Errorf("core: assembling QBD: %w", err)
	}
	proc.Tune(m.tuning)
	return boundary, proc, nil
}

// Generator builds the truncated global generator covering levels
// 0..maxLevel, with down-only truncation at the top (the top level keeps its
// true diagonal minus up-rates, so row sums are zero). Intended for tests and
// brute-force validation on small instances.
func (m *Model) Generator(maxLevel int) *mat.Matrix {
	offsets := make([]int, maxLevel+1)
	total := 0
	for j := 0; j <= maxLevel; j++ {
		offsets[j] = total
		total += m.levelStates(j)
	}
	g := mat.New(total, total)
	a := m.Phases()
	for j := 0; j <= maxLevel; j++ {
		for _, tr := range m.transitionsFrom(j) {
			if j+tr.dLevel > maxLevel || j+tr.dLevel < 0 {
				continue
			}
			g.AddBlockAt(offsets[j]+tr.fromIdx*a, offsets[j+tr.dLevel]+tr.toIdx*a, tr.rate)
		}
	}
	for i := 0; i < total; i++ {
		g.Add(i, i, -g.RowSum(i))
	}
	return g
}

// matSpectralRadius estimates the spectral radius of a nonnegative matrix.
func matSpectralRadius(r *mat.Matrix) float64 {
	return mat.SpectralRadius(r, 1e-12, 10000)
}
