package core

import (
	"errors"
	"math"
	"testing"

	"bgperf/internal/markov"
)

// TestModFactorOneBitIdentical pins the degenerate-modulation contract: an
// explicit ModFactor of 1 under the default admission policy must reproduce
// the baseline model bit for bit — same cache key, same metrics to the last
// ulp — because the modulated kernels alias the baseline ones.
func TestModFactorOneBitIdentical(t *testing.T) {
	base := mmppCfg(t, 0.3, 1.0/6, 0.6, 5, 1.0/6)
	mod := base
	mod.ModFactor = 1
	mod.BGAdmit = AdmitAll

	kBase, err := CacheKey(base)
	if err != nil {
		t.Fatal(err)
	}
	kMod, err := CacheKey(mod)
	if err != nil {
		t.Fatal(err)
	}
	if kBase != kMod {
		t.Errorf("cache key drifted: baseline %s, φ=1 %s", kBase, kMod)
	}

	sBase := solve(t, base)
	sMod := solve(t, mod)
	if sBase.Metrics != sMod.Metrics {
		t.Errorf("φ=1 metrics differ from baseline:\nbase %+v\nφ=1  %+v", sBase.Metrics, sMod.Metrics)
	}
}

// TestBruteForceAgreementModulated validates the modulated chain against
// brute-force truncation: the matrix-geometric solve and a directly solved
// truncated generator must agree on masses, and the flow metrics must match
// sums computed from the stationary vector with the φ-scaled exit rates.
func TestBruteForceAgreementModulated(t *testing.T) {
	cfg := poissonCfg(t, 0.2, 2, 0.7, 2, 1.5)
	cfg.ModFactor = 0.6
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}

	const maxLevel = 70
	pi, err := markov.StationaryCTMC(m.Generator(maxLevel))
	if err != nil {
		t.Fatal(err)
	}
	mu := cfg.ServiceRate
	phi := cfg.ModFactor
	var qlenFG, utilFG, utilBG, complFG, complDenied, tputBG float64
	idx := 0
	for j := 0; j <= maxLevel; j++ {
		for _, b := range m.levelBlocks(j) {
			mass := pi[idx] // exponential service, Poisson arrivals: 1 phase
			idx++
			qlenFG += float64(j-b.x) * mass
			speed := 1.0
			if b.x >= 1 {
				speed = phi
			}
			switch b.kind {
			case KindFG:
				utilFG += mass
				complFG += mass * mu * speed
				if b.x == cfg.BGBuffer {
					complDenied += mass * mu * speed
				}
			case KindBG:
				utilBG += mass
				tputBG += mass * mu * speed
			}
		}
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"QLenFG", s.QLenFG, qlenFG},
		{"UtilFG", s.UtilFG, utilFG},
		{"UtilBG", s.UtilBG, utilBG},
		{"ThroughputFG", s.ThroughputFG, complFG},
		{"ThroughputBG", s.ThroughputBG, tputBG},
		{"CompBG", s.CompBG, 1 - complDenied/complFG},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-6*(1+math.Abs(c.want)) {
			t.Errorf("%s: matrix-geometric %v vs brute force %v", c.name, c.got, c.want)
		}
	}
	// A slowed server spends strictly more time FG-serving than the
	// unmodulated λ/µ lower bound.
	if rho := 0.2 / mu; s.UtilFG <= rho {
		t.Errorf("UtilFG %v not above unmodulated load %v", s.UtilFG, rho)
	}
}

// TestBruteForceAgreementUtilThreshold validates the extended-boundary chain
// of the util-threshold admission policy against brute-force truncation.
func TestBruteForceAgreementUtilThreshold(t *testing.T) {
	cfg := poissonCfg(t, 0.25, 2, 0.8, 3, 1.2)
	cfg.BGAdmit = AdmitUtilThreshold
	cfg.FGThreshold = 2
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.BGBuffer + cfg.FGThreshold + 1; m.boundaryTop != want {
		t.Fatalf("boundaryTop = %d, want %d", m.boundaryTop, want)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}

	const maxLevel = 70
	pi, err := markov.StationaryCTMC(m.Generator(maxLevel))
	if err != nil {
		t.Fatal(err)
	}
	mu := cfg.ServiceRate
	var qlenFG, qlenBG, complFG, complDenied float64
	idx := 0
	for j := 0; j <= maxLevel; j++ {
		for _, b := range m.levelBlocks(j) {
			mass := pi[idx]
			idx++
			qlenFG += float64(j-b.x) * mass
			qlenBG += float64(b.x) * mass
			if b.kind == KindFG {
				complFG += mass * mu
				if !m.admitBG(b.x, j-b.x-1) {
					complDenied += mass * mu
				}
			}
		}
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"QLenFG", s.QLenFG, qlenFG},
		{"QLenBG", s.QLenBG, qlenBG},
		{"CompBG", s.CompBG, 1 - complDenied/complFG},
		{"DropRateBG", s.DropRateBG, cfg.BGProb * complDenied},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-6*(1+math.Abs(c.want)) {
			t.Errorf("%s: matrix-geometric %v vs brute force %v", c.name, c.got, c.want)
		}
	}
	// The threshold policy drops strictly more BG work than blind admission.
	blind := solve(t, poissonCfg(t, 0.25, 2, 0.8, 3, 1.2))
	if !(s.CompBG < blind.CompBG) {
		t.Errorf("util-threshold CompBG %v not below AdmitAll %v", s.CompBG, blind.CompBG)
	}
}

// TestBruteForceAgreementDeadline validates the reneging chain of the
// deadline admission policy against brute-force truncation, including the
// BG flow balance admitted = completed + reneged.
func TestBruteForceAgreementDeadline(t *testing.T) {
	cfg := poissonCfg(t, 0.25, 2, 0.8, 3, 1.2)
	cfg.BGAdmit = AdmitDeadline
	cfg.DeadlineRate = 0.4
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}

	const maxLevel = 70
	pi, err := markov.StationaryCTMC(m.Generator(maxLevel))
	if err != nil {
		t.Fatal(err)
	}
	mu := cfg.ServiceRate
	var qlenBG, waiting, tputBG, complFG, complFull float64
	idx := 0
	for j := 0; j <= maxLevel; j++ {
		for _, b := range m.levelBlocks(j) {
			mass := pi[idx]
			idx++
			qlenBG += float64(b.x) * mass
			w := b.x
			if b.kind == KindBG {
				w--
				tputBG += mass * mu
			}
			waiting += float64(w) * mass
			if b.kind == KindFG {
				complFG += mass * mu
				if b.x == cfg.BGBuffer {
					complFull += mass * mu
				}
			}
		}
	}
	admitted := cfg.BGProb * (complFG - complFull)
	checks := []struct {
		name      string
		got, want float64
	}{
		{"QLenBG", s.QLenBG, qlenBG},
		{"ThroughputBG", s.ThroughputBG, tputBG},
		{"DeadlineMissBG", s.DeadlineMissBG, cfg.DeadlineRate * waiting / admitted},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-6*(1+math.Abs(c.want)) {
			t.Errorf("%s: matrix-geometric %v vs brute force %v", c.name, c.got, c.want)
		}
	}
	// Flow balance: every admitted BG job either completes or reneges.
	adm := s.GenRateBG - s.DropRateBG
	if miss := s.DeadlineMissBG * adm; math.Abs(adm-s.ThroughputBG-miss) > 1e-8 {
		t.Errorf("BG flow unbalanced: admitted %v, completed %v, reneged %v", adm, s.ThroughputBG, miss)
	}
	if s.DeadlineMissBG <= 0 || s.DeadlineMissBG >= 1 {
		t.Errorf("DeadlineMissBG = %v, want in (0,1)", s.DeadlineMissBG)
	}
}

// TestQLenFGMonotoneInModFactor pins the Marin–Mitrani monotonicity: a
// faster modulated server (larger φ) never lengthens the foreground queue.
func TestQLenFGMonotoneInModFactor(t *testing.T) {
	prev := math.Inf(1)
	for _, phi := range []float64{0.5, 0.65, 0.8, 0.9, 1} {
		cfg := mmppCfg(t, 0.3, 1.0/6, 0.6, 5, 1.0/6)
		cfg.ModFactor = phi
		s := solve(t, cfg)
		if s.QLenFG > prev+1e-9 {
			t.Errorf("QLenFG(φ=%g) = %v rose above %v", phi, s.QLenFG, prev)
		}
		prev = s.QLenFG
	}
}

// TestUtilThresholdHugeKMatchesAdmitAll pins that an effectively unbinding
// utilization threshold reproduces blind admission: the extended-boundary
// chain is a pure refactoring of the same process.
func TestUtilThresholdHugeKMatchesAdmitAll(t *testing.T) {
	base := mmppCfg(t, 0.3, 1.0/6, 0.6, 4, 1.0/6)
	blind := solve(t, base)
	thr := base
	thr.BGAdmit = AdmitUtilThreshold
	thr.FGThreshold = 40
	s := solve(t, thr)
	checks := []struct {
		name      string
		got, want float64
	}{
		{"QLenFG", s.QLenFG, blind.QLenFG},
		{"QLenBG", s.QLenBG, blind.QLenBG},
		{"CompBG", s.CompBG, blind.CompBG},
		{"WaitPFG", s.WaitPFG, blind.WaitPFG},
		{"ThroughputBG", s.ThroughputBG, blind.ThroughputBG},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-9*(1+math.Abs(c.want)) {
			t.Errorf("%s: huge-K threshold %v vs AdmitAll %v", c.name, c.got, c.want)
		}
	}
}

// TestDeadlineMissMonotoneInRate pins that a tighter deadline (larger δ)
// never lowers the miss fraction and never raises BG throughput.
func TestDeadlineMissMonotoneInRate(t *testing.T) {
	prevMiss := 0.0
	prevTput := math.Inf(1)
	for _, delta := range []float64{0.1, 0.3, 1, 3} {
		cfg := mmppCfg(t, 0.3, 1.0/6, 0.6, 5, 1.0/6)
		cfg.BGAdmit = AdmitDeadline
		cfg.DeadlineRate = delta
		s := solve(t, cfg)
		if s.DeadlineMissBG < prevMiss-1e-9 {
			t.Errorf("DeadlineMissBG(δ=%g) = %v fell below %v", delta, s.DeadlineMissBG, prevMiss)
		}
		if s.ThroughputBG > prevTput+1e-9 {
			t.Errorf("ThroughputBG(δ=%g) = %v rose above %v", delta, s.ThroughputBG, prevTput)
		}
		prevMiss = s.DeadlineMissBG
		prevTput = s.ThroughputBG
	}
}

// TestScenarioConfigValidation covers the new-field validation rules.
func TestScenarioConfigValidation(t *testing.T) {
	valid := func() Config { return poissonCfg(t, 0.2, 2, 0.5, 3, 1) }
	tests := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"negative mod factor", func(c *Config) { c.ModFactor = -0.5 }, "ModFactor"},
		{"mod factor above 1", func(c *Config) { c.ModFactor = 1.5 }, "ModFactor"},
		{"NaN mod factor", func(c *Config) { c.ModFactor = math.NaN() }, "ModFactor"},
		{"unknown admission", func(c *Config) { c.BGAdmit = 99 }, "BGAdmit"},
		{"negative threshold", func(c *Config) { c.BGAdmit = AdmitUtilThreshold; c.FGThreshold = -1 }, "FGThreshold"},
		{"threshold without policy", func(c *Config) { c.FGThreshold = 2 }, "FGThreshold"},
		{"deadline without rate", func(c *Config) { c.BGAdmit = AdmitDeadline }, "DeadlineRate"},
		{"rate without deadline", func(c *Config) { c.DeadlineRate = 0.5 }, "DeadlineRate"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := valid()
			tt.mutate(&cfg)
			_, err := NewModel(cfg)
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("want *ValidationError, got %T: %v", err, err)
			}
			if verr.Field != tt.field {
				t.Errorf("error field %q, want %q", verr.Field, tt.field)
			}
		})
	}
	ok := valid()
	ok.ModFactor = 0.7
	ok.BGAdmit = AdmitUtilThreshold
	ok.FGThreshold = 3
	if _, err := NewModel(ok); err != nil {
		t.Errorf("valid modulated util-threshold config rejected: %v", err)
	}
}

// TestEnumRoundTrips pins Parse(v.String()) identity for every declared
// variant of every config enum, and typed errors for unknown inputs.
func TestEnumRoundTrips(t *testing.T) {
	for _, p := range []IdleWaitPolicy{IdleWaitPerJob, IdleWaitPerPeriod} {
		got, err := ParseIdleWaitPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseIdleWaitPolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	for _, a := range []BGAdmission{AdmitAll, AdmitUtilThreshold, AdmitDeadline} {
		got, err := ParseBGAdmission(a.String())
		if err != nil || got != a {
			t.Errorf("ParseBGAdmission(%q) = %v, %v; want %v", a.String(), got, err, a)
		}
	}
	for _, k := range []Kind{KindEmpty, KindFG, KindBG, KindIdle} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if got, err := ParseBGAdmission(""); err != nil || got != AdmitAll {
		t.Errorf("ParseBGAdmission(\"\") = %v, %v; want AdmitAll", got, err)
	}
	var verr *ValidationError
	for name, parse := range map[string]func(string) error{
		"ParseIdleWaitPolicy": func(s string) error { _, err := ParseIdleWaitPolicy(s); return err },
		"ParseBGAdmission":    func(s string) error { _, err := ParseBGAdmission(s); return err },
		"ParseKind":           func(s string) error { _, err := ParseKind(s); return err },
	} {
		err := parse("no-such-variant")
		if err == nil {
			t.Errorf("%s accepted an unknown variant", name)
			continue
		}
		if !errors.As(err, &verr) {
			t.Errorf("%s: want *ValidationError, got %T: %v", name, err, err)
		}
		if !errors.Is(err, ErrConfig) {
			t.Errorf("%s: error does not wrap ErrConfig", name)
		}
	}
}
