package core

import "fmt"

// ValidationError reports a configuration field that failed validation. It
// wraps a package sentinel (core.ErrConfig, sim.ErrConfig, …) so callers can
// match either coarsely with errors.Is(err, ErrConfig) or structurally with
// errors.As to read the offending Field and Reason.
type ValidationError struct {
	// Field names the Config field that failed (e.g. "BGProb").
	Field string
	// Reason explains the failure in human terms.
	Reason string

	sentinel error
}

// NewValidationError builds a ValidationError for a field, wrapping the given
// package sentinel. It is shared by the sibling model packages (sim,
// multiclass) so every configuration error across the repo carries the same
// inspectable shape.
func NewValidationError(sentinel error, field, format string, args ...any) *ValidationError {
	return &ValidationError{
		Field:    field,
		Reason:   fmt.Sprintf(format, args...),
		sentinel: sentinel,
	}
}

// Error formats as "<sentinel>: <Field>: <Reason>", preserving the prefix
// style of the fmt.Errorf strings it replaced.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("%v: %s: %s", e.sentinel, e.Field, e.Reason)
}

// Unwrap exposes the package sentinel for errors.Is.
func (e *ValidationError) Unwrap() error { return e.sentinel }
