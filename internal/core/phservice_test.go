package core

import (
	"math"
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/markov"
	"bgperf/internal/mat"
	"bgperf/internal/phtype"
)

func phCfg(t testing.TB, lambda float64, svc *phtype.Dist, p float64, buf int, alpha float64) Config {
	t.Helper()
	ap, err := arrival.Poisson(lambda)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Arrival: ap, Service: svc, BGProb: p, BGBuffer: buf, IdleRate: alpha}
}

func TestPHServiceConfigValidation(t *testing.T) {
	ap, _ := arrival.Poisson(1)
	svc, _ := phtype.Erlang(2, 4)
	if _, err := NewModel(Config{Arrival: ap, ServiceRate: 2, Service: svc}); err == nil {
		t.Error("both ServiceRate and Service accepted")
	}
	// An H2 with a zero-probability branch has an unreachable phase.
	defective, err := phtype.Hyperexponential([]float64{1, 0}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewModel(Config{Arrival: ap, Service: defective}); err == nil {
		t.Error("unreachable service phase accepted")
	}
}

func TestPHExponentialEquivalence(t *testing.T) {
	// A one-phase PH service is the exponential model; every metric must
	// match the ServiceRate path exactly.
	expo, err := phtype.Exponential(2)
	if err != nil {
		t.Fatal(err)
	}
	mmpp, err := arrival.MMPP2(0.01, 0.02, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	mmpp, err = mmpp.WithRate(0.35 * 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []IdleWaitPolicy{IdleWaitPerJob, IdleWaitPerPeriod} {
		ref := solve(t, Config{Arrival: mmpp, ServiceRate: 2, BGProb: 0.6, BGBuffer: 4, IdleRate: 1.5, IdlePolicy: policy})
		got := solve(t, Config{Arrival: mmpp, Service: expo, BGProb: 0.6, BGBuffer: 4, IdleRate: 1.5, IdlePolicy: policy})
		pairs := []struct {
			name string
			a, b float64
		}{
			{"QLenFG", ref.QLenFG, got.QLenFG},
			{"QLenBG", ref.QLenBG, got.QLenBG},
			{"CompBG", ref.CompBG, got.CompBG},
			{"WaitPFG", ref.WaitPFG, got.WaitPFG},
			{"UtilFG", ref.UtilFG, got.UtilFG},
			{"UtilBG", ref.UtilBG, got.UtilBG},
			{"ThroughputBG", ref.ThroughputBG, got.ThroughputBG},
			{"GenRateBG", ref.GenRateBG, got.GenRateBG},
		}
		for _, pr := range pairs {
			if math.Abs(pr.a-pr.b) > 1e-10*(1+math.Abs(pr.a)) {
				t.Errorf("%v %s: exponential %v vs PH(1) %v", policy, pr.name, pr.a, pr.b)
			}
		}
	}
}

func TestPHServiceMatchesPollaczekKhinchine(t *testing.T) {
	// With Poisson arrivals and p = 0 the model is an M/PH/1 queue:
	// E[N] = ρ + ρ²(1+cs²)/(2(1−ρ)).
	services := []struct {
		name string
		svc  func() (*phtype.Dist, error)
		cs2  float64
	}{
		{"Erlang-2", func() (*phtype.Dist, error) { return phtype.Erlang(2, 4) }, 0.5},
		{"Erlang-4", func() (*phtype.Dist, error) { return phtype.Erlang(4, 8) }, 0.25},
		{"H2", func() (*phtype.Dist, error) { return phtype.FitTwoMoment(0.5, 4) }, 4},
	}
	for _, tt := range services {
		svc, err := tt.svc()
		if err != nil {
			t.Fatal(err)
		}
		for _, rho := range []float64{0.3, 0.7} {
			lambda := rho / svc.Mean()
			s := solve(t, phCfg(t, lambda, svc, 0, 2, 1))
			want := rho + rho*rho*(1+tt.cs2)/(2*(1-rho))
			if math.Abs(s.QLenFG-want) > 1e-7*(1+want) {
				t.Errorf("%s ρ=%v: E[N] = %v, P-K %v", tt.name, rho, s.QLenFG, want)
			}
			if math.Abs(s.UtilFG-rho) > 1e-9 {
				t.Errorf("%s ρ=%v: UtilFG = %v", tt.name, rho, s.UtilFG)
			}
		}
	}
}

func TestPHServiceBruteForce(t *testing.T) {
	svc, err := phtype.Erlang(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := phCfg(t, 0.25, svc, 0.7, 2, 1.1)
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	const maxLevel = 60
	pi, err := markov.StationaryCTMC(m.Generator(maxLevel))
	if err != nil {
		t.Fatal(err)
	}
	var qlenFG, utilFG, utilBG, idleW float64
	idx := 0
	a := m.Phases()
	for j := 0; j <= maxLevel; j++ {
		for _, b := range m.levelBlocks(j) {
			var mass float64
			for ph := 0; ph < a; ph++ {
				mass += pi[idx]
				idx++
			}
			qlenFG += float64(j-b.x) * mass
			switch b.kind {
			case KindFG:
				utilFG += mass
			case KindBG:
				utilBG += mass
			case KindIdle:
				idleW += mass
			}
		}
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"QLenFG", s.QLenFG, qlenFG},
		{"UtilFG", s.UtilFG, utilFG},
		{"UtilBG", s.UtilBG, utilBG},
		{"ProbIdleWait", s.ProbIdleWait, idleW},
	} {
		if math.Abs(c.got-c.want) > 1e-6*(1+math.Abs(c.want)) {
			t.Errorf("%s: matrix-geometric %v vs brute force %v", c.name, c.got, c.want)
		}
	}
}

func TestServiceVariabilityHurts(t *testing.T) {
	// At a fixed mean, more variable service inflates the FG queue and (by
	// stretching busy periods and delaying idle windows) reduces neither
	// monotonically nor trivially the BG completion — assert the queue
	// ordering, which is the P-K-driven certainty.
	ap, err := arrival.Poisson(1.2)
	if err != nil {
		t.Fatal(err)
	}
	var prevQ float64
	for i, scv := range []float64{0.25, 1, 4} {
		svc, err := phtype.FitTwoMoment(0.5, scv)
		if err != nil {
			t.Fatal(err)
		}
		s := solve(t, Config{Arrival: ap, Service: svc, BGProb: 0.5, BGBuffer: 5, IdleRate: 2})
		if i > 0 && s.QLenFG <= prevQ {
			t.Errorf("scv %v: QLenFG %v not above previous %v", scv, s.QLenFG, prevQ)
		}
		prevQ = s.QLenFG
	}
}

func TestPHThroughputMatchesLambda(t *testing.T) {
	svc, err := phtype.Erlang(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := phCfg(t, 0.9, svc, 0.4, 3, 1)
	s := solve(t, cfg)
	if math.Abs(s.ThroughputFG-0.9) > 1e-8 {
		t.Errorf("ThroughputFG = %v, want λ = 0.9", s.ThroughputFG)
	}
	// Flow balance still holds with PH service.
	if adm := s.GenRateBG - s.DropRateBG; math.Abs(adm-s.ThroughputBG) > 1e-9*(1+adm) {
		t.Errorf("admitted %v != BG throughput %v", adm, s.ThroughputBG)
	}
	if math.Abs(s.TotalMass()-1) > 1e-8 {
		t.Errorf("total mass %v", s.TotalMass())
	}
}

func TestPHServiceRateAccessor(t *testing.T) {
	svc, err := phtype.Erlang(4, 2) // mean 2 → rate 0.5
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(phCfg(t, 0.2, svc, 0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ServiceRate()-0.5) > 1e-12 {
		t.Errorf("ServiceRate = %v, want 0.5", m.ServiceRate())
	}
	if math.Abs(m.FGUtilization()-0.4) > 1e-12 {
		t.Errorf("FGUtilization = %v, want 0.4", m.FGUtilization())
	}
	if m.Phases() != 4 { // Poisson (1) × Erlang-4
		t.Errorf("Phases = %d, want 4", m.Phases())
	}
}

func TestPHGeneratorRowsSumZero(t *testing.T) {
	svc, err := phtype.FitTwoMoment(1, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	mmpp, err := arrival.MMPP2(0.05, 0.1, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(Config{Arrival: mmpp, Service: svc, BGProb: 0.5, BGBuffer: 2, IdleRate: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Generator(6)
	for r, sum := range g.RowSums() {
		if math.Abs(sum) > 1e-9 {
			t.Fatalf("row %d sums to %g", r, sum)
		}
	}
	if err := markov.CheckGenerator(g, 1e-8); err != nil {
		t.Fatal(err)
	}
}

func TestPHKroneckerStructure(t *testing.T) {
	// The composite arrival block must be F ⊗ I_S: check one entry pattern.
	svc, _ := phtype.Erlang(2, 4)
	ap, _ := arrival.MMPP2(0.1, 0.2, 1, 0.3)
	m, err := NewModel(Config{Arrival: ap, Service: svc, BGProb: 0.5, BGBuffer: 1, IdleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	d1 := ap.D1()
	want := d1.Kron(mat.Identity(2))
	if !m.fServe.Equalf(want, 1e-15) {
		t.Error("fServe != D1 ⊗ I_S")
	}
}
