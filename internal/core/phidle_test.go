package core

import (
	"math"
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/markov"
	"bgperf/internal/phtype"
)

func TestPHIdleConfigValidation(t *testing.T) {
	ap, _ := arrival.Poisson(1)
	idle, _ := phtype.Erlang(2, 4)
	if _, err := NewModel(Config{Arrival: ap, ServiceRate: 2, BGProb: 0.5, BGBuffer: 2, IdleRate: 1, IdleWait: idle}); err == nil {
		t.Error("both IdleRate and IdleWait accepted")
	}
	defective, err := phtype.Hyperexponential([]float64{1, 0}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewModel(Config{Arrival: ap, ServiceRate: 2, BGProb: 0.5, BGBuffer: 2, IdleWait: defective}); err == nil {
		t.Error("unreachable idle phase accepted")
	}
}

func TestPHIdleExponentialEquivalence(t *testing.T) {
	// A one-phase PH idle wait is the IdleRate path; every metric matches.
	idle, err := phtype.Exponential(1.5)
	if err != nil {
		t.Fatal(err)
	}
	mmpp, err := arrival.MMPP2(0.01, 0.02, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	mmpp, err = mmpp.WithRate(0.3 * 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []IdleWaitPolicy{IdleWaitPerJob, IdleWaitPerPeriod} {
		ref := solve(t, Config{Arrival: mmpp, ServiceRate: 2, BGProb: 0.6, BGBuffer: 4, IdleRate: 1.5, IdlePolicy: policy})
		got := solve(t, Config{Arrival: mmpp, ServiceRate: 2, BGProb: 0.6, BGBuffer: 4, IdleWait: idle, IdlePolicy: policy})
		pairs := []struct {
			name string
			a, b float64
		}{
			{"QLenFG", ref.QLenFG, got.QLenFG},
			{"QLenBG", ref.QLenBG, got.QLenBG},
			{"CompBG", ref.CompBG, got.CompBG},
			{"WaitPFG", ref.WaitPFG, got.WaitPFG},
			{"ProbIdleWait", ref.ProbIdleWait, got.ProbIdleWait},
			{"UtilBG", ref.UtilBG, got.UtilBG},
		}
		for _, pr := range pairs {
			if math.Abs(pr.a-pr.b) > 1e-10*(1+math.Abs(pr.a)) {
				t.Errorf("%v %s: IdleRate %v vs PH(1) %v", policy, pr.name, pr.a, pr.b)
			}
		}
	}
}

func TestPHIdleBruteForce(t *testing.T) {
	idle, err := phtype.Erlang(3, 3) // mean 1, SCV 1/3
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}
	{
		ap, err := arrival.Poisson(0.3)
		if err != nil {
			t.Fatal(err)
		}
		cfg = Config{Arrival: ap, ServiceRate: 2, BGProb: 0.7, BGBuffer: 2, IdleWait: idle}
	}
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	const maxLevel = 60
	pi, err := markov.StationaryCTMC(m.Generator(maxLevel))
	if err != nil {
		t.Fatal(err)
	}
	var qlenFG, utilBG, idleW float64
	idx := 0
	a := m.Phases()
	for j := 0; j <= maxLevel; j++ {
		for _, b := range m.levelBlocks(j) {
			var mass float64
			for ph := 0; ph < a; ph++ {
				mass += pi[idx]
				idx++
			}
			qlenFG += float64(j-b.x) * mass
			switch b.kind {
			case KindBG:
				utilBG += mass
			case KindIdle:
				idleW += mass
			}
		}
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"QLenFG", s.QLenFG, qlenFG},
		{"UtilBG", s.UtilBG, utilBG},
		{"ProbIdleWait", s.ProbIdleWait, idleW},
	} {
		if math.Abs(c.got-c.want) > 1e-6*(1+math.Abs(c.want)) {
			t.Errorf("%s: matrix-geometric %v vs brute force %v", c.name, c.got, c.want)
		}
	}
}

func TestPHIdleErlangVsExponential(t *testing.T) {
	// An Erlang idle wait of the same mean is less variable: fewer very
	// short waits means fewer BG starts right before FG bursts, so the
	// delayed-FG fraction cannot rise.
	ap, err := arrival.Poisson(0.5)
	if err != nil {
		t.Fatal(err)
	}
	expo := solve(t, Config{Arrival: ap, ServiceRate: 2, BGProb: 0.6, BGBuffer: 5, IdleRate: 2})
	erl, err := phtype.Erlang(8, 16) // mean 0.5 like IdleRate 2, SCV 1/8
	if err != nil {
		t.Fatal(err)
	}
	erlSol := solve(t, Config{Arrival: ap, ServiceRate: 2, BGProb: 0.6, BGBuffer: 5, IdleWait: erl})
	// With Poisson arrivals the exponential lack-of-memory makes the wait
	// shape matter little for delays, but completion must drop: a near-
	// deterministic timer never fires "early", so fewer BG jobs start.
	if erlSol.CompBG >= expo.CompBG {
		t.Errorf("Erlang idle CompBG %v not below exponential %v", erlSol.CompBG, expo.CompBG)
	}
	if math.Abs(erlSol.UtilFG-expo.UtilFG) > 1e-9 {
		t.Errorf("FG utilization moved: %v vs %v", erlSol.UtilFG, expo.UtilFG)
	}
}

func TestPHIdleApproachesDeterministicSim(t *testing.T) {
	// Chain with an Erlang-16 idle wait ≈ simulator with a deterministic
	// timer of the same mean (the firmware case of the scrubbing example).
	// Checked in the sim package against the event simulator; here assert
	// the analytic trend: higher Erlang order → CompBG approaches a limit
	// monotonically from above.
	ap, err := arrival.Poisson(0.5)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = 2
	for _, k := range []int{1, 2, 4, 8, 16} {
		idle, err := phtype.Erlang(k, float64(k)*2) // mean 0.5
		if err != nil {
			t.Fatal(err)
		}
		s := solve(t, Config{Arrival: ap, ServiceRate: 2, BGProb: 0.6, BGBuffer: 5, IdleWait: idle})
		if s.CompBG >= prev {
			t.Errorf("Erlang-%d CompBG %v not below Erlang-%d's %v", k, s.CompBG, k/2, prev)
		}
		prev = s.CompBG
	}
}
