package core

import (
	"fmt"
	"math"
	"time"

	"bgperf/internal/obs"
	"bgperf/internal/qbd"
)

// Metrics bundles the steady-state quantities the paper reports, plus the
// supporting rates needed to reason about them. All probabilities are
// time-stationary unless stated otherwise.
type Metrics struct {
	// QLenFG is the average number of foreground jobs in the system
	// (waiting or in service) — paper Fig. 5/9/11.
	QLenFG float64 `json:"qlenFG"`
	// QLenBG is the average number of background jobs in the system —
	// paper Fig. 8.
	QLenBG float64 `json:"qlenBG"`
	// CompBG is the completion (admission) rate of background jobs: the
	// fraction of generated BG jobs that are not dropped at a full buffer —
	// paper Fig. 7/10/12. When BGProb = 0 no BG jobs exist and CompBG is 1.
	CompBG float64 `json:"compBG"`
	// WaitPFG is the fraction of foreground jobs delayed by a background
	// job, i.e. arriving while a BG job holds the non-preemptive server —
	// paper Fig. 6/13. Arrivals are weighted by the per-phase MAP rate, not
	// by time (MMPP arrivals do not see time averages).
	WaitPFG float64 `json:"waitPFG"`

	// UtilFG is the probability a foreground job is in service; in steady
	// state it equals λ/µ.
	UtilFG float64 `json:"utilFG"`
	// UtilBG is the probability a background job is in service.
	UtilBG float64 `json:"utilBG"`
	// ProbIdleWait is the probability of an idle-wait state (BG work
	// pending, server idle, timer running).
	ProbIdleWait float64 `json:"probIdleWait"`
	// ProbEmpty is the probability of the empty system.
	ProbEmpty float64 `json:"probEmpty"`

	// ThroughputFG is the foreground completion rate µ·P(FG serving) = λ.
	ThroughputFG float64 `json:"throughputFG"`
	// ThroughputBG is the background completion rate µ·P(BG serving).
	ThroughputBG float64 `json:"throughputBG"`
	// GenRateBG is the generation rate of background jobs, µ·p·P(FG serving).
	GenRateBG float64 `json:"genRateBG"`
	// DropRateBG is the rate at which generated BG jobs are dropped.
	DropRateBG float64 `json:"dropRateBG"`
	// RespTimeFG is the mean foreground response time by Little's law.
	RespTimeFG float64 `json:"respTimeFG"`
	// RespTimeBG is the mean sojourn time of admitted background jobs
	// (admission to completion), by Little's law over the BG population.
	RespTimeBG float64 `json:"respTimeBG"`
	// DeadlineMissBG is the fraction of admitted background jobs that
	// renege — their exponential deadline (rate Config.DeadlineRate)
	// expires before their service starts. Always 0 unless BGAdmit is
	// AdmitDeadline.
	DeadlineMissBG float64 `json:"deadlineMissBG"`
}

// Solution is a solved model: the metrics plus access to the underlying
// stationary distribution for finer-grained queries.
type Solution struct {
	Metrics

	model *Model
	sol   *qbd.Solution

	repBlocks []block

	// Geometric-tail moment vectors, fetched once from the QBD solution:
	// maskedMass probes them for every metric, so they are not re-fetched
	// (and re-copied) per call.
	tail, tailW, tailW2 []float64
}

// Solve builds the QBD, computes its stationary distribution, and assembles
// the metrics. It returns qbd.ErrUnstable when the offered foreground load
// (plus the portion of background work the system admits) saturates the
// server.
func (m *Model) Solve() (*Solution, error) {
	return m.SolveObserved(nil)
}

// SolveObserved is Solve reporting to an optional obs.Observer (nil reverts
// to the uninstrumented fast path: no clocks, no reports, no allocations
// beyond Solve's own — pinned by TestSolveAllocBudget). With an observer it
// reports the chain-build, R-solve, boundary, and metric-extraction stage
// durations plus the convergence trace and workspace statistics collected by
// the QBD layer.
func (m *Model) SolveObserved(o obs.Observer) (*Solution, error) {
	var t0 time.Time
	if o != nil {
		t0 = time.Now()
	}
	boundary, proc, err := m.qbdBlocks()
	if err != nil {
		return nil, err
	}
	if o != nil {
		o.StageDone(obs.StageBuild, time.Since(t0))
	}
	qsol, err := qbd.SolveObserved(boundary, proc, o)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if o != nil {
		t0 = time.Now()
	}
	s := &Solution{model: m, sol: qsol, repBlocks: m.levelBlocks(m.boundaryTop + 1)}
	s.tail = qsol.TailSum()
	s.tailW = qsol.TailWeightedSum()
	s.tailW2 = qsol.TailSquareWeightedSum()
	s.computeMetrics()
	if o != nil {
		o.StageDone(obs.StageMetrics, time.Since(t0))
	}
	return s, nil
}

// maskedMass sums stationary probability over states selected by keep,
// weighting each state's phase mass by weight (per state) — the workhorse
// behind every metric. keep receives the block and the level's FG count; the
// weight receives the same plus the phase index.
func (s *Solution) maskedMass(keep func(b block, level int) bool, weight func(b block, level, phase int) float64) float64 {
	m := s.model
	a := m.Phases()
	total := 0.0
	// Boundary levels 0..boundaryTop.
	for j := 0; j <= m.boundaryTop; j++ {
		pi := s.sol.BoundaryPi[j]
		for bi, b := range m.levelBlocks(j) {
			if !keep(b, j) {
				continue
			}
			for ph := 0; ph < a; ph++ {
				total += pi[bi*a+ph] * weight(b, j, ph)
			}
		}
	}
	// Geometric tail: levels X+1, X+2, … Weights polynomial in the level
	// (degree ≤ 2) are folded exactly via the closed-form tail moments: the
	// quadratic coefficients are recovered per block/phase by probing the
	// weight at three consecutive levels.
	first := s.sol.FirstRepLevel()
	tail, tailW, tailW2 := s.tail, s.tailW, s.tailW2
	for bi, b := range s.repBlocks {
		if !keep(b, first) || !keep(b, first+1) {
			// Keeps must be level-uniform over repeating levels; every
			// metric predicate used here qualifies.
			if keep(b, first) != keep(b, first+1) {
				panic("core: non-uniform keep over repeating levels")
			}
			continue
		}
		for ph := 0; ph < a; ph++ {
			w0 := weight(b, first, ph)
			w1 := weight(b, first+1, ph)
			w2 := weight(b, first+2, ph)
			// w(k) = w0 + bk·k + ck·k² with k the offset past `first`.
			ck := (w2 - 2*w1 + w0) / 2
			bk := w1 - w0 - ck
			idx := bi*a + ph
			total += w0*tail[idx] + bk*tailW[idx] + ck*tailW2[idx]
		}
	}
	return total
}

// kindMass returns the stationary probability of a server condition.
func (s *Solution) kindMass(k Kind) float64 {
	return s.maskedMass(
		func(b block, _ int) bool { return b.kind == k },
		func(block, int, int) float64 { return 1 },
	)
}

func (s *Solution) computeMetrics() {
	m := s.model
	cfg := m.cfg
	all := func(block, int) bool { return true }

	s.UtilFG = s.kindMass(KindFG)
	s.UtilBG = s.kindMass(KindBG)
	s.ProbIdleWait = s.kindMass(KindIdle)
	s.ProbEmpty = s.kindMass(KindEmpty)

	// E[y]: y = level − x for every state.
	s.QLenFG = s.maskedMass(all, func(b block, level, _ int) float64 {
		return float64(level - b.x)
	})
	// E[x].
	s.QLenBG = s.maskedMass(all, func(b block, level, _ int) float64 {
		return float64(b.x)
	})

	// BG completion rate: BG jobs are generated at FG completion epochs — at
	// per-state rate p·t_s with PH service — and dropped exactly when the
	// admission policy denies them (buffer full, or foreground backlog above
	// the util threshold), so CompBG is one minus the completion-rate-
	// weighted denial probability among FG-serving states. For exponential
	// service under AdmitAll this reduces to 1 − P(x=X | FG serving).
	// Modulated blocks (x ≥ 1) complete at φ·t_s, so their exit rates carry
	// the φ factor; with φ = 1 the unweighted fast path keeps the baseline
	// metric bit-identical.
	exits := m.exitVec
	exitWeight := func(_ block, _ int, ph int) float64 { return exits[ph] }
	if phi := cfg.ModFactor; phi != 1 {
		exitWeight = func(b block, _ int, ph int) float64 {
			if b.x >= 1 {
				return phi * exits[ph]
			}
			return exits[ph]
		}
	}
	complFG := s.maskedMass(func(b block, _ int) bool { return b.kind == KindFG }, exitWeight)
	var complFGDenied float64
	if cfg.BGProb > 0 {
		complFGDenied = s.maskedMass(
			func(b block, level int) bool {
				return b.kind == KindFG && !m.admitBG(b.x, level-b.x-1)
			},
			exitWeight,
		)
	}
	switch {
	case cfg.BGProb == 0 || complFG <= 0:
		s.CompBG = 1
	default:
		s.CompBG = 1 - complFGDenied/complFG
	}

	// Fraction of FG arrivals that land during a BG service. MAP arrivals
	// occur at per-phase rate D1 row sums, so arrival-weighted masses are
	// the correct observer distribution.
	rates := m.rateVec
	arrivalWeighted := func(k Kind) float64 {
		return s.maskedMass(
			func(b block, _ int) bool { return b.kind == k },
			func(_ block, _ int, ph int) float64 { return rates[ph] },
		)
	}
	lambdaEff := s.maskedMass(all, func(_ block, _ int, ph int) float64 { return rates[ph] })
	if lambdaEff > 0 {
		s.WaitPFG = arrivalWeighted(KindBG) / lambdaEff
	}

	s.ThroughputFG = complFG
	s.ThroughputBG = s.maskedMass(func(b block, _ int) bool { return b.kind == KindBG }, exitWeight)
	s.GenRateBG = cfg.BGProb * complFG
	if cfg.BGProb > 0 {
		s.DropRateBG = cfg.BGProb * complFGDenied
	}
	// Little's law against the solved effective throughput, not the nominal
	// arrival rate: the two agree only up to solver round-off, and using the
	// nominal rate leaves RespTimeFG·ThroughputFG ≠ QLenFG by that error.
	if complFG > 0 {
		s.RespTimeFG = s.QLenFG / complFG
	}
	admitted := s.GenRateBG - s.DropRateBG
	if admitted > 0 {
		s.RespTimeBG = s.QLenBG / admitted
	}
	if cfg.DeadlineRate > 0 && admitted > 0 {
		// Renege flow: each waiting BG job (x minus the one in BG service)
		// abandons at rate δ, so the loss rate is δ·E[waiting BG jobs] and
		// the miss fraction is that rate over the admission rate.
		waiting := s.maskedMass(all, func(b block, _, _ int) float64 {
			w := b.x
			if b.kind == KindBG {
				w--
			}
			return float64(w)
		})
		s.DeadlineMissBG = cfg.DeadlineRate * waiting / admitted
	}
}

// FGQueueMoment2 returns E[y²], the second moment of the foreground
// population.
func (s *Solution) FGQueueMoment2() float64 {
	return s.maskedMass(
		func(block, int) bool { return true },
		func(b block, level, _ int) float64 {
			y := float64(level - b.x)
			return y * y
		},
	)
}

// FGQueueStdDev returns the standard deviation of the foreground population.
func (s *Solution) FGQueueStdDev() float64 {
	v := s.FGQueueMoment2() - s.QLenFG*s.QLenFG
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// TotalMass returns the stationary mass (≈1); exposed for validation.
func (s *Solution) TotalMass() float64 { return s.sol.TotalMass() }

// KindProb returns the stationary probability of a server condition.
func (s *Solution) KindProb(k Kind) float64 { return s.kindMass(k) }

// BGOccupancyDist returns P(x = v) for v = 0..X: the distribution of the
// number of background jobs in the system.
func (s *Solution) BGOccupancyDist() []float64 {
	x := s.model.cfg.BGBuffer
	dist := make([]float64, x+1)
	for v := 0; v <= x; v++ {
		v := v
		dist[v] = s.maskedMass(
			func(b block, _ int) bool { return b.x == v },
			func(block, int, int) float64 { return 1 },
		)
	}
	return dist
}

// FGQueueDist returns P(y = n) for n = 0..maxN: the distribution of the
// number of foreground jobs in the system.
func (s *Solution) FGQueueDist(maxN int) []float64 {
	m := s.model
	a := m.Phases()
	dist := make([]float64, maxN+1)
	// Boundary levels.
	for j := 0; j <= m.boundaryTop; j++ {
		pi := s.sol.BoundaryPi[j]
		for bi, b := range m.levelBlocks(j) {
			y := j - b.x
			if y > maxN {
				continue
			}
			for ph := 0; ph < a; ph++ {
				dist[y] += pi[bi*a+ph]
			}
		}
	}
	// Tail levels: y = level − x; walk R powers once, ping-ponging two
	// vector buffers (π·R is a row-vector product, so the former per-level
	// R.Transpose() is gone entirely). FGQueueQuantile calls this in a
	// doubling loop, so the walk must not allocate per level.
	first := s.sol.FirstRepLevel()
	maxLevel := first + maxN + m.xEff
	v := s.sol.LevelPi(first)
	w := make([]float64, len(v))
	for level := first; level <= maxLevel; level++ {
		for bi, b := range s.repBlocks {
			y := level - b.x
			if y < 0 || y > maxN {
				continue
			}
			for ph := 0; ph < a; ph++ {
				dist[y] += v[bi*a+ph]
			}
		}
		s.sol.R.VecMulInto(w, v)
		v, w = w, v
	}
	return dist
}

// QBD exposes the underlying stationary solution for advanced inspection.
func (s *Solution) QBD() *qbd.Solution { return s.sol }

// TailDecayRate returns the caudal characteristic sp(R): asymptotically
// P(population = n+1)/P(population = n) → sp(R), so it bounds how fast the
// queue tail thins. Values near 1 are the signature of strongly dependent
// arrivals.
func (s *Solution) TailDecayRate() float64 {
	return matSpectralRadius(s.sol.R)
}

// FGQueueQuantile returns the smallest n with P(y ≤ n) ≥ q, for q in (0,1).
func (s *Solution) FGQueueQuantile(q float64) (int, error) {
	if q <= 0 || q >= 1 {
		return 0, fmt.Errorf("%w: quantile %g outside (0,1)", ErrConfig, q)
	}
	for maxN := 64; ; maxN *= 2 {
		dist := s.FGQueueDist(maxN)
		cum := 0.0
		for n, p := range dist {
			cum += p
			if cum >= q {
				return n, nil
			}
		}
		if maxN > 1<<22 {
			return 0, fmt.Errorf("%w: quantile %g beyond 2^22 jobs (near-critical load)", ErrConfig, q)
		}
	}
}
