package core

import (
	"math"
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/phtype"
)

// TestLittlesLawRespTimeFG is the regression test for RespTimeFG being
// derived from the nominal arrival rate instead of the solved effective
// throughput: the two agree only up to solver round-off, so Little's law
// must hold exactly against the computed ThroughputFG and QLenFG.
func TestLittlesLawRespTimeFG(t *testing.T) {
	mmpp, err := arrival.MMPP2(0.9e-6, 1.9e-6, 1.0e-4, 3.5e-2) // paper's Soft.Dev.
	if err != nil {
		t.Fatal(err)
	}
	poisson, err := arrival.Poisson(0.08)
	if err != nil {
		t.Fatal(err)
	}
	erlang, err := phtype.FitTwoMoment(6, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"mmpp-expo", Config{Arrival: mmpp, ServiceRate: 1.0 / 6, BGProb: 0.6, BGBuffer: 5, IdleRate: 1.0 / 6}},
		{"poisson-expo", Config{Arrival: poisson, ServiceRate: 1.0 / 6, BGProb: 0.3, BGBuffer: 3, IdleRate: 1.0 / 6}},
		{"mmpp-erlang", Config{Arrival: mmpp, Service: erlang, BGProb: 0.9, BGBuffer: 5, IdleRate: 1.0 / 12}},
		{"per-period", Config{Arrival: poisson, ServiceRate: 1.0 / 6, BGProb: 0.6, BGBuffer: 5,
			IdleRate: 1.0 / 6, IdlePolicy: IdleWaitPerPeriod}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			model, err := NewModel(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := model.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if sol.ThroughputFG <= 0 || sol.QLenFG <= 0 {
				t.Fatalf("degenerate solution: throughput %g, qlen %g", sol.ThroughputFG, sol.QLenFG)
			}
			want := sol.QLenFG / sol.ThroughputFG
			if rel := math.Abs(sol.RespTimeFG-want) / want; rel > 1e-12 {
				t.Fatalf("RespTimeFG = %.17g, want QLenFG/ThroughputFG = %.17g (rel err %g > 1e-12)",
					sol.RespTimeFG, want, rel)
			}
		})
	}
}
