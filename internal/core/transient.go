package core

import (
	"fmt"

	"bgperf/internal/markov"
)

// TransientPoint is a time slice of the transient behaviour of the model,
// started from an empty system with the arrival process in its
// time-stationary phase mix.
type TransientPoint struct {
	// Time is the elapsed model time.
	Time float64
	// QLenFG and QLenBG are the expected FG/BG populations at Time.
	QLenFG, QLenBG float64
	// UtilFG, UtilBG, ProbIdleWait, ProbEmpty partition the server state.
	UtilFG, UtilBG, ProbIdleWait, ProbEmpty float64
}

// Transient computes the time-dependent behaviour of the chain by
// uniformization on the generator truncated at maxLevel (arrivals are
// suppressed at the truncation level, so choose maxLevel well above the
// occupancies reached within the horizon — a safe rule is several times the
// stationary QLenFG). Times must be nondecreasing.
func (m *Model) Transient(maxLevel int, times []float64) ([]TransientPoint, error) {
	if maxLevel < m.xEff+2 {
		return nil, fmt.Errorf("%w: truncation level %d below boundary %d", ErrConfig, maxLevel, m.xEff+2)
	}
	g := m.Generator(maxLevel)
	// Initial vector: empty system, time-stationary arrival phase, service
	// stage parked at 0 (the dummy stage used by non-serving states).
	pi0 := make([]float64, g.Rows())
	arrPi := m.cfg.Arrival.TimeStationary()
	for a, v := range arrPi {
		pi0[a*m.sPhases] = v
	}
	dists, err := markov.Transient(g, pi0, times)
	if err != nil {
		return nil, fmt.Errorf("core: transient: %w", err)
	}
	out := make([]TransientPoint, len(times))
	for ti, dist := range dists {
		pt := TransientPoint{Time: times[ti]}
		idx := 0
		dim := m.Phases()
		for j := 0; j <= maxLevel; j++ {
			for _, b := range m.levelBlocks(j) {
				var mass float64
				for ph := 0; ph < dim; ph++ {
					mass += dist[idx]
					idx++
				}
				pt.QLenFG += float64(j-b.x) * mass
				pt.QLenBG += float64(b.x) * mass
				switch b.kind {
				case KindFG:
					pt.UtilFG += mass
				case KindBG:
					pt.UtilBG += mass
				case KindIdle:
					pt.ProbIdleWait += mass
				case KindEmpty:
					pt.ProbEmpty += mass
				}
			}
		}
		out[ti] = pt
	}
	return out, nil
}
