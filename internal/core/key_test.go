package core

import (
	"errors"
	"strings"
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/phtype"
)

func keyTestConfig(t *testing.T) Config {
	t.Helper()
	m, err := arrival.MMPP2(9e-7, 1.9e-6, 1e-4, 3.5e-2)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Arrival:     m,
		ServiceRate: 1.0 / 6,
		BGProb:      0.3,
		BGBuffer:    5,
		IdleRate:    1.0 / 6,
	}
}

func TestCacheKeyDeterministic(t *testing.T) {
	cfg := keyTestConfig(t)
	k1, err := CacheKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CacheKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("same config hashed to %s and %s", k1, k2)
	}
	if len(k1) != 64 || strings.ToLower(k1) != k1 {
		t.Fatalf("want lowercase hex sha256, got %q", k1)
	}
}

// TestCacheKeyDefaultsApplied pins that the zero IdlePolicy and the explicit
// default hash identically: the key is an identity of the *model*, not of
// the literal struct.
func TestCacheKeyDefaultsApplied(t *testing.T) {
	cfg := keyTestConfig(t)
	implicit, err := CacheKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.IdlePolicy = IdleWaitPerJob
	explicit, err := CacheKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if implicit != explicit {
		t.Fatalf("zero-value policy key %s != explicit default key %s", implicit, explicit)
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	base := keyTestConfig(t)
	baseKey, err := CacheKey(base)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := phtype.Erlang(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	otherMAP, err := arrival.MMPP2(9e-7, 1.9e-6, 1e-4, 3.6e-2)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Config){
		"Arrival":     func(c *Config) { c.Arrival = otherMAP },
		"ServiceRate": func(c *Config) { c.ServiceRate = 1.0 / 7 },
		"Service":     func(c *Config) { c.ServiceRate = 0; c.Service = ph },
		"ServiceMAP":  func(c *Config) { c.ServiceRate = 0; c.ServiceMAP = otherMAP },
		"BGProb":      func(c *Config) { c.BGProb = 0.31 },
		"BGBuffer":    func(c *Config) { c.BGBuffer = 6 },
		"IdleRate":    func(c *Config) { c.IdleRate = 1.0 / 12 },
		"IdleWait":    func(c *Config) { c.IdleRate = 0; c.IdleWait = ph },
		"IdlePolicy":  func(c *Config) { c.IdlePolicy = IdleWaitPerPeriod },
		"ModFactor":   func(c *Config) { c.ModFactor = 0.8 },
		"BGAdmit":     func(c *Config) { c.BGAdmit = AdmitUtilThreshold },
		"FGThreshold": func(c *Config) { c.BGAdmit = AdmitUtilThreshold; c.FGThreshold = 2 },
		"DeadlineRate": func(c *Config) {
			c.BGAdmit = AdmitDeadline
			c.DeadlineRate = 0.5
		},
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		key, err := CacheKey(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if key == baseKey {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}
}

// TestCacheKeyPinnedStability pins the literal key bytes of pre-PR 10
// configurations. The scenario fields (ModFactor, BGAdmit, FGThreshold,
// DeadlineRate) are hashed only when they deviate from their defaults, so
// every key minted before the fields existed must still verbatim: these
// hex strings were captured from the CacheKey implementation before the
// scenario fields were added, and any drift would orphan on-disk cas
// entries and distributed cache state.
func TestCacheKeyPinnedStability(t *testing.T) {
	cfg := keyTestConfig(t)
	key, err := CacheKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const wantBase = "185d549102729fd83b5856d62b6a28702961a91479a75b31eea8b7f5270ff871"
	if key != wantBase {
		t.Errorf("pre-PR10 base key drifted:\n  got  %s\n  want %s", key, wantBase)
	}
	cfg.IdlePolicy = IdleWaitPerPeriod
	key, err = CacheKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const wantPeriod = "8ffb0f491ec71cd6ad161986bfd9f09b5589ba554a8bc50e5307706feee0b9d9"
	if key != wantPeriod {
		t.Errorf("pre-PR10 per-period key drifted:\n  got  %s\n  want %s", key, wantPeriod)
	}
}

// TestCacheKeyScenarioDefaults pins that the explicit scenario defaults
// (φ = 1, AdmitAll) hash identically to leaving the fields unset — the new
// fields are written to the hash only when they carry information.
func TestCacheKeyScenarioDefaults(t *testing.T) {
	base := keyTestConfig(t)
	implicit, err := CacheKey(base)
	if err != nil {
		t.Fatal(err)
	}
	base.ModFactor = 1
	base.BGAdmit = AdmitAll
	explicit, err := CacheKey(base)
	if err != nil {
		t.Fatal(err)
	}
	if implicit != explicit {
		t.Fatalf("explicit scenario defaults perturbed the key:\n  unset    %s\n  explicit %s", implicit, explicit)
	}
}

// TestCacheKeyScenarioTagDisambiguation pins that the two policy payloads
// cannot collide through their tag prefixes: a util-threshold config and a
// deadline config whose scalar payloads share a bit pattern still hash
// differently, and each policy differs from the baseline.
func TestCacheKeyScenarioTagDisambiguation(t *testing.T) {
	base := keyTestConfig(t)
	util := base
	util.BGAdmit = AdmitUtilThreshold
	util.FGThreshold = 0
	utilKey, err := CacheKey(util)
	if err != nil {
		t.Fatal(err)
	}
	deadline := base
	deadline.BGAdmit = AdmitDeadline
	deadline.DeadlineRate = 1
	deadlineKey, err := CacheKey(deadline)
	if err != nil {
		t.Fatal(err)
	}
	baseKey, err := CacheKey(base)
	if err != nil {
		t.Fatal(err)
	}
	if utilKey == deadlineKey || utilKey == baseKey || deadlineKey == baseKey {
		t.Fatalf("scenario policy keys collided: base %s, util %s, deadline %s", baseKey, utilKey, deadlineKey)
	}
	// The threshold payload must be sensitive even at its zero value versus
	// a different K.
	util2 := util
	util2.FGThreshold = 1
	util2Key, err := CacheKey(util2)
	if err != nil {
		t.Fatal(err)
	}
	if util2Key == utilKey {
		t.Fatal("FGThreshold 0 and 1 collided under util-threshold")
	}
}

// TestCacheKeyTagDisambiguation pins that an exponential service given as a
// rate and the same law given as a one-phase PH hash differently: the key
// identifies the configuration, and the chain builders treat the two
// representations through different code paths.
func TestCacheKeyTagDisambiguation(t *testing.T) {
	cfg := keyTestConfig(t)
	rateKey, err := CacheKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := phtype.Exponential(cfg.ServiceRate)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ServiceRate = 0
	cfg.Service = exp
	phKey, err := CacheKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rateKey == phKey {
		t.Fatal("rate-form and PH-form service collided")
	}
}

func TestCacheKeyInvalidConfig(t *testing.T) {
	_, err := CacheKey(Config{})
	if err == nil {
		t.Fatal("want validation error for zero Config")
	}
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("want *ValidationError, got %T: %v", err, err)
	}
}

// TestValidCacheKey pins the key-shape gate the disk store relies on: real
// CacheKey output passes, and anything that could escape a file-per-key
// directory layout (path separators, dots, wrong length, uppercase hex)
// is rejected.
func TestValidCacheKey(t *testing.T) {
	key, err := CacheKey(keyTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if !ValidCacheKey(key) {
		t.Fatalf("real cache key rejected: %q", key)
	}
	bad := []string{
		"",
		"abc",
		strings.Repeat("a", 63),
		strings.Repeat("a", 65),
		strings.Repeat("A", 64),         // uppercase hex
		strings.Repeat("g", 64),         // not hex
		"../" + strings.Repeat("a", 61), // path traversal
		strings.Repeat("a", 32) + "." + strings.Repeat("a", 31),
	}
	for _, s := range bad {
		if ValidCacheKey(s) {
			t.Errorf("ValidCacheKey(%q) = true, want false", s)
		}
	}
}
