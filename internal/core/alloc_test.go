package core

import (
	"testing"

	"bgperf/internal/raceflag"
)

// TestSolveAllocBudget pins an upper bound on the allocation count of a full
// model build + solve, so solver-path allocation regressions (the kind fixed
// by the workspace-reuse rewrite) fail loudly instead of silently degrading
// sweep throughput. The bound carries ~30% headroom over the measured count;
// if a legitimate change raises it, re-measure and update the budget.
func TestSolveAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	cfg := poissonCfg(t, 0.7, 1.0, 0.3, 5, 10.0)
	run := func() {
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Solve(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm up lazy runtime state
	allocs := testing.AllocsPerRun(10, run)
	const budget = 500 // measured ~374 on go1.x amd64
	if allocs > budget {
		t.Fatalf("NewModel+Solve allocated %.0f times per run, budget %d", allocs, budget)
	}
	t.Logf("NewModel+Solve: %.0f allocs per run (budget %d)", allocs, budget)
}
