package core

import (
	"math"
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/markov"
	"bgperf/internal/mat"
	"bgperf/internal/phtype"
)

// phAsMAP rewrites a PH renewal distribution as a service MAP
// (D0 = T, D1 = t·β): same marginal law, independent consecutive services.
func phAsMAP(t *testing.T, d *phtype.Dist) *arrival.MAP {
	t.Helper()
	tm := d.T()
	exit := d.ExitRates()
	beta := d.Beta()
	n := d.Order()
	d1 := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d1.Set(i, j, exit[i]*beta[j])
		}
	}
	m, err := arrival.New(tm, d1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestServiceMAPConfigValidation(t *testing.T) {
	ap, _ := arrival.Poisson(1)
	svcMAP := phAsMAP(t, phtype.MustNew([]float64{1}, mat.MustFromRows([][]float64{{-2}})))
	if _, err := NewModel(Config{Arrival: ap, ServiceRate: 2, ServiceMAP: svcMAP}); err == nil {
		t.Error("ServiceRate + ServiceMAP accepted")
	}
	svc, _ := phtype.Erlang(2, 4)
	if _, err := NewModel(Config{Arrival: ap, Service: svc, ServiceMAP: svcMAP}); err == nil {
		t.Error("Service + ServiceMAP accepted")
	}
}

func TestServiceMAPExponentialEquivalence(t *testing.T) {
	// An exponential service MAP is the plain model.
	expo, err := arrival.Poisson(2) // D0=−2, D1=2: exponential "services"
	if err != nil {
		t.Fatal(err)
	}
	mmpp, err := arrival.MMPP2(0.01, 0.02, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	mmpp, err = mmpp.WithRate(0.3 * 2)
	if err != nil {
		t.Fatal(err)
	}
	ref := solve(t, Config{Arrival: mmpp, ServiceRate: 2, BGProb: 0.6, BGBuffer: 4, IdleRate: 1.5})
	got := solve(t, Config{Arrival: mmpp, ServiceMAP: expo, BGProb: 0.6, BGBuffer: 4, IdleRate: 1.5})
	pairs := []struct {
		name string
		a, b float64
	}{
		{"QLenFG", ref.QLenFG, got.QLenFG},
		{"QLenBG", ref.QLenBG, got.QLenBG},
		{"CompBG", ref.CompBG, got.CompBG},
		{"WaitPFG", ref.WaitPFG, got.WaitPFG},
		{"ThroughputBG", ref.ThroughputBG, got.ThroughputBG},
	}
	for _, pr := range pairs {
		if math.Abs(pr.a-pr.b) > 1e-10*(1+math.Abs(pr.a)) {
			t.Errorf("%s: exponential %v vs MAP(1) %v", pr.name, pr.a, pr.b)
		}
	}
}

func TestServiceMAPRenewalMatchesPH(t *testing.T) {
	// A PH law written as a renewal service MAP must reproduce the PH-service
	// model exactly: same marginals, no correlation.
	svc, err := phtype.Erlang(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := arrival.Poisson(0.8)
	if err != nil {
		t.Fatal(err)
	}
	ref := solve(t, Config{Arrival: ap, Service: svc, BGProb: 0.6, BGBuffer: 3, IdleRate: 1})
	got := solve(t, Config{Arrival: ap, ServiceMAP: phAsMAP(t, svc), BGProb: 0.6, BGBuffer: 3, IdleRate: 1})
	pairs := []struct {
		name string
		a, b float64
	}{
		{"QLenFG", ref.QLenFG, got.QLenFG},
		{"QLenBG", ref.QLenBG, got.QLenBG},
		{"CompBG", ref.CompBG, got.CompBG},
		{"WaitPFG", ref.WaitPFG, got.WaitPFG},
		{"UtilBG", ref.UtilBG, got.UtilBG},
		{"ProbEmpty", ref.ProbEmpty, got.ProbEmpty},
	}
	for _, pr := range pairs {
		if math.Abs(pr.a-pr.b) > 1e-9*(1+math.Abs(pr.a)) {
			t.Errorf("%s: PH %v vs renewal MAP %v", pr.name, pr.a, pr.b)
		}
	}
}

func TestServiceMAPBruteForce(t *testing.T) {
	// A genuinely correlated service MAP (modulated service speed).
	mod := mat.MustFromRows([][]float64{{-0.05, 0.05}, {0.03, -0.03}})
	svcMAP, err := arrival.MMPP([]float64{3, 0.8}, mod)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := arrival.Poisson(0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Arrival: ap, ServiceMAP: svcMAP, BGProb: 0.7, BGBuffer: 2, IdleRate: 1}
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	const maxLevel = 70
	pi, err := markov.StationaryCTMC(m.Generator(maxLevel))
	if err != nil {
		t.Fatal(err)
	}
	var qlenFG, utilFG, utilBG float64
	idx := 0
	a := m.Phases()
	for j := 0; j <= maxLevel; j++ {
		for _, b := range m.levelBlocks(j) {
			var mass float64
			for ph := 0; ph < a; ph++ {
				mass += pi[idx]
				idx++
			}
			qlenFG += float64(j-b.x) * mass
			switch b.kind {
			case KindFG:
				utilFG += mass
			case KindBG:
				utilBG += mass
			}
		}
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"QLenFG", s.QLenFG, qlenFG},
		{"UtilFG", s.UtilFG, utilFG},
		{"UtilBG", s.UtilBG, utilBG},
	} {
		if math.Abs(c.got-c.want) > 1e-5*(1+math.Abs(c.want)) {
			t.Errorf("%s: matrix-geometric %v vs brute force %v", c.name, c.got, c.want)
		}
	}
	// Throughput must still equal the arrival rate.
	if math.Abs(s.ThroughputFG-0.3) > 1e-8 {
		t.Errorf("ThroughputFG = %v, want 0.3", s.ThroughputFG)
	}
}

func TestServiceCorrelationHurts(t *testing.T) {
	// Correlated service (slow streaks) inflates the queue beyond a renewal
	// service with the same marginal distribution.
	mod := mat.MustFromRows([][]float64{{-0.02, 0.02}, {0.02, -0.02}})
	corr, err := arrival.MMPP([]float64{4, 0.8}, mod)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := arrival.Poisson(0.6)
	if err != nil {
		t.Fatal(err)
	}
	corrSol := solve(t, Config{Arrival: ap, ServiceMAP: corr, BGProb: 0.3, BGBuffer: 3, IdleRate: 1})
	// Renewal counterpart: same inter-event marginal, independence.
	// A hyperexponential with the MAP's first two moments is close enough
	// for the qualitative ordering.
	h2, err := phtype.FitTwoMoment(corr.MeanInterarrival(), corr.SCV())
	if err != nil {
		t.Fatal(err)
	}
	renSol := solve(t, Config{Arrival: ap, Service: h2, BGProb: 0.3, BGBuffer: 3, IdleRate: 1})
	if corrSol.QLenFG <= renSol.QLenFG {
		t.Errorf("correlated service QLenFG %v not above renewal %v", corrSol.QLenFG, renSol.QLenFG)
	}
}
