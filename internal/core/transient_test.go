package core

import (
	"math"
	"testing"
)

func TestTransientStartsEmpty(t *testing.T) {
	cfg := poissonCfg(t, 0.5, 2, 0.5, 3, 1)
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := m.Transient(30, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	p0 := pts[0]
	if p0.ProbEmpty != 1 || p0.QLenFG != 0 || p0.QLenBG != 0 {
		t.Errorf("t=0 point = %+v, want empty system", p0)
	}
}

func TestTransientConvergesToStationary(t *testing.T) {
	cfg := poissonCfg(t, 0.5, 2, 0.6, 3, 1.5)
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := m.Transient(60, []float64{200})
	if err != nil {
		t.Fatal(err)
	}
	late := pts[0]
	checks := []struct {
		name      string
		got, want float64
	}{
		{"QLenFG", late.QLenFG, st.QLenFG},
		{"QLenBG", late.QLenBG, st.QLenBG},
		{"UtilFG", late.UtilFG, st.UtilFG},
		{"UtilBG", late.UtilBG, st.UtilBG},
		{"ProbIdleWait", late.ProbIdleWait, st.ProbIdleWait},
		{"ProbEmpty", late.ProbEmpty, st.ProbEmpty},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-6*(1+math.Abs(c.want)) {
			t.Errorf("%s: transient(200) %v vs stationary %v", c.name, c.got, c.want)
		}
	}
}

func TestTransientMonotoneWarmup(t *testing.T) {
	// From an empty start the expected FG population grows toward its
	// stationary value (for these light loads; no overshoot pathologies).
	cfg := poissonCfg(t, 0.4, 2, 0.3, 2, 1)
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0.5, 1, 2, 4, 8, 16, 32}
	pts, err := m.Transient(40, times)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].QLenFG < pts[i-1].QLenFG-1e-9 {
			t.Errorf("QLenFG not monotone at t=%v: %v after %v", pts[i].Time, pts[i].QLenFG, pts[i-1].QLenFG)
		}
	}
}

func TestTransientValidation(t *testing.T) {
	cfg := poissonCfg(t, 0.5, 2, 0.5, 3, 1)
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transient(2, []float64{1}); err == nil {
		t.Error("truncation below the boundary accepted")
	}
	if _, err := m.Transient(20, []float64{-1}); err == nil {
		t.Error("negative time accepted")
	}
}

func TestTransientWithMMPPPhases(t *testing.T) {
	// With a 2-phase MMPP the initial vector spreads over arrival phases;
	// mass must stay 1 and the server-state split must partition.
	cfg := mmppCfg(t, 0.3, 1.0/6, 0.5, 3, 1.0/6)
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := m.Transient(25, []float64{0, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		total := pt.UtilFG + pt.UtilBG + pt.ProbIdleWait + pt.ProbEmpty
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("t=%v: server states sum to %v", pt.Time, total)
		}
	}
}
