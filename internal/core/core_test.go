package core

import (
	"math"
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/markov"
	"bgperf/internal/mat"
	"bgperf/internal/qbd"
)

func poissonCfg(t testing.TB, lambda, mu, p float64, buf int, alpha float64) Config {
	t.Helper()
	ap, err := arrival.Poisson(lambda)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Arrival: ap, ServiceRate: mu, BGProb: p, BGBuffer: buf, IdleRate: alpha}
}

func mmppCfg(t testing.TB, util, mu, p float64, buf int, alpha float64) Config {
	t.Helper()
	m, err := arrival.MMPP2(0.9e-6, 1.9e-6, 1.0e-4, 3.5e-2) // paper's Soft.Dev.
	if err != nil {
		t.Fatal(err)
	}
	m, err = m.WithRate(util * mu)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Arrival: m, ServiceRate: mu, BGProb: p, BGBuffer: buf, IdleRate: alpha}
}

func solve(t testing.TB, cfg Config) *Solution {
	t.Helper()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	ap, _ := arrival.Poisson(1)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil arrival", Config{ServiceRate: 1}},
		{"zero service", Config{Arrival: ap}},
		{"negative p", Config{Arrival: ap, ServiceRate: 2, BGProb: -0.1}},
		{"p over 1", Config{Arrival: ap, ServiceRate: 2, BGProb: 1.1}},
		{"negative buffer", Config{Arrival: ap, ServiceRate: 2, BGBuffer: -1}},
		{"missing idle rate", Config{Arrival: ap, ServiceRate: 2, BGBuffer: 3}},
		{"bad policy", Config{Arrival: ap, ServiceRate: 2, BGBuffer: 1, IdleRate: 1, IdlePolicy: 99}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewModel(tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestDefaultsApplied(t *testing.T) {
	m, err := NewModel(poissonCfg(t, 1, 2, 0.5, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Config().IdlePolicy != IdleWaitPerJob {
		t.Errorf("default policy = %v, want per-job", m.Config().IdlePolicy)
	}
}

func TestLevelBlockLayout(t *testing.T) {
	m, err := NewModel(poissonCfg(t, 1, 2, 0.5, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		level int
		want  []block
	}{
		{0, []block{{kind: KindEmpty}}},
		{1, []block{{kind: KindFG, x: 0}, {kind: KindIdle, x: 1}, {kind: KindBG, x: 1}}},
		{2, []block{
			{kind: KindFG, x: 0},
			{kind: KindFG, x: 1}, {kind: KindBG, x: 1},
			{kind: KindIdle, x: 2}, {kind: KindBG, x: 2},
		}},
		{3, []block{
			{kind: KindFG, x: 0},
			{kind: KindFG, x: 1}, {kind: KindBG, x: 1},
			{kind: KindFG, x: 2}, {kind: KindBG, x: 2},
		}},
		{4, []block{
			{kind: KindFG, x: 0},
			{kind: KindFG, x: 1}, {kind: KindBG, x: 1},
			{kind: KindFG, x: 2}, {kind: KindBG, x: 2},
		}},
	}
	for _, tt := range tests {
		got := m.levelBlocks(tt.level)
		if len(got) != len(tt.want) {
			t.Fatalf("level %d: %d blocks, want %d", tt.level, len(got), len(tt.want))
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("level %d block %d = %+v, want %+v", tt.level, i, got[i], tt.want[i])
			}
		}
	}
}

func TestGeneratorRowsSumZero(t *testing.T) {
	configs := []Config{
		poissonCfg(t, 1, 2, 0.5, 2, 2),
		poissonCfg(t, 0.3, 2, 0.9, 5, 1.0/6),
		mmppCfg(t, 0.4, 1.0/6, 0.6, 5, 1.0/6),
		func() Config {
			c := poissonCfg(t, 1, 2, 0.5, 3, 2)
			c.IdlePolicy = IdleWaitPerPeriod
			return c
		}(),
		poissonCfg(t, 1, 2, 0.7, 0, 0), // X = 0: drop everything
	}
	for i, cfg := range configs {
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		g := m.Generator(cfg.BGBuffer + 4)
		for r, s := range g.RowSums() {
			if math.Abs(s) > 1e-9 {
				t.Fatalf("config %d: generator row %d sums to %g", i, r, s)
			}
		}
	}
}

func TestPoissonNoBGReducesToMM1(t *testing.T) {
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		mu := 2.0
		s := solve(t, poissonCfg(t, rho*mu, mu, 0, 3, 1))
		if want := rho / (1 - rho); math.Abs(s.QLenFG-want) > 1e-8 {
			t.Errorf("ρ=%v: QLenFG = %v, want %v (M/M/1)", rho, s.QLenFG, want)
		}
		if math.Abs(s.UtilFG-rho) > 1e-9 {
			t.Errorf("ρ=%v: UtilFG = %v", rho, s.UtilFG)
		}
		if math.Abs(s.ProbEmpty-(1-rho)) > 1e-9 {
			t.Errorf("ρ=%v: ProbEmpty = %v", rho, s.ProbEmpty)
		}
		if s.QLenBG != 0 || s.WaitPFG != 0 || s.UtilBG != 0 {
			t.Errorf("ρ=%v: BG metrics nonzero without BG work: %+v", rho, s.Metrics)
		}
		if s.CompBG != 1 {
			t.Errorf("ρ=%v: CompBG = %v, want 1 when p=0", rho, s.CompBG)
		}
	}
}

func TestMMPPNoBGMatchesDirectQBD(t *testing.T) {
	// p = 0 must reduce the chain to a plain MMPP/M/1 queue, which we build
	// directly as an independent QBD.
	cfg := mmppCfg(t, 0.5, 1.0/6, 0, 5, 1.0/6)
	s := solve(t, cfg)

	d0 := cfg.Arrival.D0()
	d1 := cfg.Arrival.D1()
	mu := cfg.ServiceRate
	a := d0.Rows()
	muI := mat.Identity(a).Scale(mu)
	a1 := d0.SubMat(muI)
	proc, err := qbd.New(d1, a1, muI)
	if err != nil {
		t.Fatal(err)
	}
	b := qbd.Boundary{
		Local: []*mat.Matrix{d0.Clone()},
		Up:    []*mat.Matrix{d1.Clone()},
		Down:  []*mat.Matrix{nil},
	}
	ref, err := qbd.Solve(b, proc)
	if err != nil {
		t.Fatal(err)
	}
	if want := ref.MeanLevel(); math.Abs(s.QLenFG-want) > 1e-7*(1+want) {
		t.Errorf("QLenFG = %v, want %v (direct MMPP/M/1)", s.QLenFG, want)
	}
}

func TestThroughputMatchesArrivalRate(t *testing.T) {
	cfg := mmppCfg(t, 0.4, 1.0/6, 0.6, 5, 1.0/6)
	s := solve(t, cfg)
	lambda := cfg.Arrival.Rate()
	if math.Abs(s.ThroughputFG-lambda) > 1e-8*lambda {
		t.Errorf("ThroughputFG = %v, want λ = %v", s.ThroughputFG, lambda)
	}
}

func TestBGFlowBalance(t *testing.T) {
	// Admitted BG rate must equal BG completion rate: µp·P(FG) − drop = µ·P(BG).
	for _, cfg := range []Config{
		poissonCfg(t, 0.5, 2, 0.6, 5, 2),
		mmppCfg(t, 0.3, 1.0/6, 0.9, 5, 1.0/6),
		func() Config {
			c := mmppCfg(t, 0.3, 1.0/6, 0.9, 5, 1.0/6)
			c.IdlePolicy = IdleWaitPerPeriod
			return c
		}(),
	} {
		s := solve(t, cfg)
		admitted := s.GenRateBG - s.DropRateBG
		if math.Abs(admitted-s.ThroughputBG) > 1e-9*(1+s.ThroughputBG) {
			t.Errorf("%v: admitted %v != BG throughput %v", cfg.IdlePolicy, admitted, s.ThroughputBG)
		}
		// CompBG is the admitted fraction.
		if s.GenRateBG > 0 {
			if frac := admitted / s.GenRateBG; math.Abs(frac-s.CompBG) > 1e-9 {
				t.Errorf("CompBG = %v, flow fraction %v", s.CompBG, frac)
			}
		}
	}
}

func TestIdleWaitFlowBalance(t *testing.T) {
	// Under the per-job policy every BG service begins with an idle-wait
	// expiry, so the macro-state balance α·P(idle-wait) = µ·P(BG serving)
	// holds exactly.
	for _, cfg := range []Config{
		poissonCfg(t, 0.5, 2, 0.6, 5, 3),
		mmppCfg(t, 0.2, 1.0/6, 0.9, 5, 1.0/12),
	} {
		s := solve(t, cfg)
		lhs := cfg.IdleRate * s.ProbIdleWait
		rhs := cfg.ServiceRate * s.UtilBG
		if math.Abs(lhs-rhs) > 1e-10*(1+rhs) {
			t.Errorf("α·P(idle) = %v != µ·P(BG) = %v", lhs, rhs)
		}
	}
	// Under per-period draining the identity must break (BG services can
	// follow each other without a fresh wait).
	cfg := poissonCfg(t, 0.5, 2, 0.9, 5, 0.5)
	cfg.IdlePolicy = IdleWaitPerPeriod
	s := solve(t, cfg)
	if math.Abs(cfg.IdleRate*s.ProbIdleWait-cfg.ServiceRate*s.UtilBG) < 1e-9 {
		t.Error("per-period policy unexpectedly satisfies the per-job flow identity")
	}
}

func TestTotalMassOne(t *testing.T) {
	for _, cfg := range []Config{
		poissonCfg(t, 0.5, 2, 0.6, 5, 2),
		poissonCfg(t, 1.8, 2, 0.9, 1, 5),
		mmppCfg(t, 0.6, 1.0/6, 0.3, 5, 1.0/6),
	} {
		s := solve(t, cfg)
		if math.Abs(s.TotalMass()-1) > 1e-8 {
			t.Errorf("total mass = %v", s.TotalMass())
		}
	}
}

func TestZeroBufferDropsEverything(t *testing.T) {
	s := solve(t, poissonCfg(t, 1, 2, 0.8, 0, 0))
	if s.CompBG != 0 {
		t.Errorf("CompBG = %v, want 0 with no buffer", s.CompBG)
	}
	if s.QLenBG != 0 || s.UtilBG != 0 {
		t.Errorf("BG presence without buffer: %+v", s.Metrics)
	}
	// FG behaves exactly like M/M/1 regardless of p.
	if want := 0.5 / (1 - 0.5); math.Abs(s.QLenFG-want) > 1e-8 {
		t.Errorf("QLenFG = %v, want %v", s.QLenFG, want)
	}
}

func TestBruteForceAgreement(t *testing.T) {
	// Solve a small instance by brute-force truncation of the global
	// generator and compare every metric. Low utilization keeps the
	// truncation error far below the tolerance.
	cfg := poissonCfg(t, 0.2, 2, 0.7, 2, 1.5)
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}

	const maxLevel = 60
	g := m.Generator(maxLevel)
	pi, err := markov.StationaryCTMC(g)
	if err != nil {
		t.Fatal(err)
	}
	var (
		qlenFG, qlenBG, utilFG, utilBG, idleW, empty, fullFG float64
	)
	idx := 0
	a := m.Phases()
	for j := 0; j <= maxLevel; j++ {
		for _, b := range m.levelBlocks(j) {
			var mass float64
			for ph := 0; ph < a; ph++ {
				mass += pi[idx]
				idx++
			}
			y := j - b.x
			qlenFG += float64(y) * mass
			qlenBG += float64(b.x) * mass
			switch b.kind {
			case KindFG:
				utilFG += mass
				if b.x == cfg.BGBuffer {
					fullFG += mass
				}
			case KindBG:
				utilBG += mass
			case KindIdle:
				idleW += mass
			case KindEmpty:
				empty += mass
			}
		}
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"QLenFG", s.QLenFG, qlenFG},
		{"QLenBG", s.QLenBG, qlenBG},
		{"UtilFG", s.UtilFG, utilFG},
		{"UtilBG", s.UtilBG, utilBG},
		{"ProbIdleWait", s.ProbIdleWait, idleW},
		{"ProbEmpty", s.ProbEmpty, empty},
		{"CompBG", s.CompBG, 1 - fullFG/utilFG},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-6*(1+math.Abs(c.want)) {
			t.Errorf("%s: matrix-geometric %v vs brute force %v", c.name, c.got, c.want)
		}
	}
}

func TestBruteForceAgreementPerPeriodPolicy(t *testing.T) {
	cfg := poissonCfg(t, 0.3, 2, 0.9, 2, 0.8)
	cfg.IdlePolicy = IdleWaitPerPeriod
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	const maxLevel = 60
	pi, err := markov.StationaryCTMC(m.Generator(maxLevel))
	if err != nil {
		t.Fatal(err)
	}
	var qlenFG, utilBG float64
	idx := 0
	for j := 0; j <= maxLevel; j++ {
		for _, b := range m.levelBlocks(j) {
			mass := pi[idx]
			idx++
			qlenFG += float64(j-b.x) * mass
			if b.kind == KindBG {
				utilBG += mass
			}
		}
	}
	if math.Abs(s.QLenFG-qlenFG) > 1e-6 {
		t.Errorf("QLenFG = %v, brute force %v", s.QLenFG, qlenFG)
	}
	if math.Abs(s.UtilBG-utilBG) > 1e-6 {
		t.Errorf("UtilBG = %v, brute force %v", s.UtilBG, utilBG)
	}
}

func TestIdlePolicyComparison(t *testing.T) {
	// Draining BG jobs back to back (per-period) completes at least as much
	// BG work as re-arming the timer per job, at the cost of more FG delay.
	base := mmppCfg(t, 0.3, 1.0/6, 0.6, 5, 1.0/6)
	perJob := solve(t, base)
	perPeriod := base
	perPeriod.IdlePolicy = IdleWaitPerPeriod
	pp := solve(t, perPeriod)
	if pp.CompBG < perJob.CompBG-1e-9 {
		t.Errorf("per-period CompBG %v < per-job %v", pp.CompBG, perJob.CompBG)
	}
	if pp.UtilBG < perJob.UtilBG-1e-9 {
		t.Errorf("per-period UtilBG %v < per-job %v", pp.UtilBG, perJob.UtilBG)
	}
}

func TestIdleRateTradeoff(t *testing.T) {
	// Paper Sec. 5.3: longer idle wait (smaller α) improves FG queue length
	// but hurts BG completion.
	mu := 1.0 / 6
	short := solve(t, mmppCfg(t, 0.3, mu, 0.6, 5, mu*4)) // wait = service/4
	long := solve(t, mmppCfg(t, 0.3, mu, 0.6, 5, mu/4))  // wait = 4·service
	if !(long.QLenFG < short.QLenFG) {
		t.Errorf("QLenFG: long wait %v, short wait %v — want long < short", long.QLenFG, short.QLenFG)
	}
	if !(long.CompBG < short.CompBG) {
		t.Errorf("CompBG: long wait %v, short wait %v — want long < short", long.CompBG, short.CompBG)
	}
	if !(long.WaitPFG < short.WaitPFG) {
		t.Errorf("WaitPFG: long wait %v, short wait %v — want long < short", long.WaitPFG, short.WaitPFG)
	}
}

func TestBGLoadRaisesFGQueue(t *testing.T) {
	mu := 1.0 / 6
	prev := -1.0
	for _, p := range []float64{0, 0.3, 0.9} {
		s := solve(t, mmppCfg(t, 0.3, mu, p, 5, mu))
		if s.QLenFG < prev-1e-12 {
			t.Errorf("QLenFG not monotone in p: p=%v gives %v after %v", p, s.QLenFG, prev)
		}
		prev = s.QLenFG
	}
}

func TestFGQueueDist(t *testing.T) {
	cfg := poissonCfg(t, 1, 2, 0.5, 3, 2)
	s := solve(t, cfg)
	dist := s.FGQueueDist(400)
	var sum, mean float64
	for n, p := range dist {
		if p < -1e-12 {
			t.Fatalf("P(y=%d) = %v < 0", n, p)
		}
		sum += p
		mean += float64(n) * p
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Errorf("FG queue distribution sums to %v", sum)
	}
	if math.Abs(mean-s.QLenFG) > 1e-6 {
		t.Errorf("distribution mean %v vs QLenFG %v", mean, s.QLenFG)
	}
}

func TestBGOccupancyDist(t *testing.T) {
	cfg := poissonCfg(t, 1, 2, 0.5, 3, 2)
	s := solve(t, cfg)
	dist := s.BGOccupancyDist()
	if len(dist) != 4 {
		t.Fatalf("got %d entries, want 4", len(dist))
	}
	var sum, mean float64
	for v, p := range dist {
		if p < -1e-12 {
			t.Fatalf("P(x=%d) = %v < 0", v, p)
		}
		sum += p
		mean += float64(v) * p
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Errorf("BG occupancy sums to %v", sum)
	}
	if math.Abs(mean-s.QLenBG) > 1e-8 {
		t.Errorf("distribution mean %v vs QLenBG %v", mean, s.QLenBG)
	}
}

func TestUnstableLoadRejected(t *testing.T) {
	m, err := NewModel(poissonCfg(t, 3, 2, 0.5, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(); err == nil {
		t.Error("overloaded system solved")
	}
}

func TestWaitPFGPoissonPASTA(t *testing.T) {
	// Poisson arrivals see time averages, so the fraction of FG arrivals
	// landing during BG service equals P(BG serving) exactly.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		s := solve(t, poissonCfg(t, 0.5, 2, p, 5, 2))
		if math.Abs(s.WaitPFG-s.UtilBG) > 1e-9 {
			t.Errorf("p=%v: WaitPFG = %v, PASTA expects UtilBG = %v", p, s.WaitPFG, s.UtilBG)
		}
	}
}

func TestWaitPFGBounded(t *testing.T) {
	// Even at p=0.9 the delayed fraction stays a modest minority. (Whether
	// it sits above or below the time-average P(BG serving) depends on load:
	// under bursty arrivals BG service concentrates in the low-rate MMPP
	// phase, which few arrivals observe — the simulator cross-validates the
	// arrival-weighted value.)
	mu := 1.0 / 6
	for _, util := range []float64{0.1, 0.3, 0.5} {
		s := solve(t, mmppCfg(t, util, mu, 0.9, 5, mu))
		if s.WaitPFG < 0 || s.WaitPFG > 0.35 {
			t.Errorf("util %v: WaitPFG = %v, want in [0, 0.35]", util, s.WaitPFG)
		}
	}
}

func TestFGUtilization(t *testing.T) {
	m, err := NewModel(poissonCfg(t, 1, 2, 0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.FGUtilization(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FGUtilization = %v, want 0.5", got)
	}
}

func TestKindStrings(t *testing.T) {
	if KindEmpty.String() == "" || KindFG.String() == "" || KindBG.String() == "" || KindIdle.String() == "" {
		t.Error("empty Kind strings")
	}
	if IdleWaitPerJob.String() != "per-job" || IdleWaitPerPeriod.String() != "per-period" {
		t.Error("unexpected policy strings")
	}
	if Kind(99).String() == "" || IdleWaitPolicy(99).String() == "" {
		t.Error("unknown values must still render")
	}
}

func BenchmarkSolvePaperDefault(b *testing.B) {
	cfg := mmppCfg(b, 0.3, 1.0/6, 0.6, 5, 1.0/6)
	m, err := NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveLargeBuffer(b *testing.B) {
	cfg := mmppCfg(b, 0.3, 1.0/6, 0.6, 25, 1.0/6)
	m, err := NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFGQueueVarianceMM1(t *testing.T) {
	// M/M/1: Var(N) = ρ/(1−ρ)².
	for _, rho := range []float64{0.3, 0.6, 0.9} {
		mu := 2.0
		s := solve(t, poissonCfg(t, rho*mu, mu, 0, 2, 1))
		want := rho / ((1 - rho) * (1 - rho))
		got := s.FGQueueStdDev() * s.FGQueueStdDev()
		if math.Abs(got-want) > 1e-7*(1+want) {
			t.Errorf("ρ=%v: Var(N) = %v, want %v", rho, got, want)
		}
	}
}

func TestFGQueueMoment2MatchesDistribution(t *testing.T) {
	cfg := mmppCfg(t, 0.3, 1.0/6, 0.6, 5, 1.0/6)
	s := solve(t, cfg)
	dist := s.FGQueueDist(3000)
	var m2 float64
	for n, p := range dist {
		m2 += float64(n) * float64(n) * p
	}
	if rel := math.Abs(m2-s.FGQueueMoment2()) / (1 + s.FGQueueMoment2()); rel > 1e-5 {
		t.Errorf("E[y²] from distribution %v vs closed form %v", m2, s.FGQueueMoment2())
	}
}

func TestRespTimeBGLittle(t *testing.T) {
	cfg := poissonCfg(t, 0.8, 2, 0.6, 5, 1.5)
	s := solve(t, cfg)
	// By construction RespTimeBG·(admitted rate) = QLenBG; check the value
	// is sensible: at least one service time plus idle wait.
	if s.RespTimeBG < 1/cfg.ServiceRate {
		t.Errorf("RespTimeBG = %v below a single service time", s.RespTimeBG)
	}
	admitted := s.GenRateBG - s.DropRateBG
	if math.Abs(s.RespTimeBG*admitted-s.QLenBG) > 1e-9 {
		t.Error("Little identity violated for BG class")
	}
}

func TestOrder3MMPPBruteForce(t *testing.T) {
	// The chain accepts arbitrary-order MAPs; verify an order-3 MMPP
	// end to end against a brute-force truncated solve.
	mod := mat.MustFromRows([][]float64{
		{-0.04, 0.02, 0.02},
		{0.01, -0.02, 0.01},
		{0.004, 0.006, -0.01},
	})
	// Mild burstiness keeps the stationary tail inside the brute-force
	// truncation window.
	ap, err := arrival.MMPP([]float64{0.6, 0.25, 0.08}, mod)
	if err != nil {
		t.Fatal(err)
	}
	ap, err = ap.WithRate(0.2 * 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Arrival: ap, ServiceRate: 2, BGProb: 0.6, BGBuffer: 2, IdleRate: 1}
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	const maxLevel = 80
	pi, err := markov.StationaryCTMC(m.Generator(maxLevel))
	if err != nil {
		t.Fatal(err)
	}
	var qlenFG, utilBG float64
	idx := 0
	a := m.Phases()
	for j := 0; j <= maxLevel; j++ {
		for _, b := range m.levelBlocks(j) {
			var mass float64
			for ph := 0; ph < a; ph++ {
				mass += pi[idx]
				idx++
			}
			qlenFG += float64(j-b.x) * mass
			if b.kind == KindBG {
				utilBG += mass
			}
		}
	}
	if math.Abs(s.QLenFG-qlenFG) > 1e-5*(1+qlenFG) {
		t.Errorf("QLenFG = %v, brute force %v", s.QLenFG, qlenFG)
	}
	// Tolerance reflects the brute-force truncation tail at maxLevel.
	if math.Abs(s.UtilBG-utilBG) > 1e-5*(1+utilBG) {
		t.Errorf("UtilBG = %v, brute force %v", s.UtilBG, utilBG)
	}
}

func TestTailDecayRateMM1(t *testing.T) {
	// M/M/1: P(N=n+1)/P(N=n) = ρ exactly.
	s := solve(t, poissonCfg(t, 1.2, 2, 0, 1, 1))
	if math.Abs(s.TailDecayRate()-0.6) > 1e-9 {
		t.Errorf("tail decay = %v, want 0.6", s.TailDecayRate())
	}
}

func TestTailDecayOrdersWorkloads(t *testing.T) {
	// At matched utilization the high-ACF workload has the heavier tail.
	mu := 1.0 / 6
	email := solve(t, mmppCfg(t, 0.3, mu, 0.3, 5, mu))
	pois := solve(t, poissonCfg(t, 0.3*mu, mu, 0.3, 5, mu))
	if email.TailDecayRate() <= pois.TailDecayRate() {
		t.Errorf("decay: bursty %v not above Poisson %v", email.TailDecayRate(), pois.TailDecayRate())
	}
}

func TestFGQueueQuantile(t *testing.T) {
	// M/M/1 at ρ=0.5: P(N ≤ n) = 1 − ρ^{n+1}; the 0.9 quantile is the
	// smallest n with 0.5^{n+1} ≤ 0.1 → n = 3.
	s := solve(t, poissonCfg(t, 1, 2, 0, 1, 1))
	n, err := s.FGQueueQuantile(0.9)
	if err != nil || n != 3 {
		t.Errorf("q90 = %v, %v; want 3", n, err)
	}
	if _, err := s.FGQueueQuantile(1.5); err == nil {
		t.Error("quantile outside (0,1) accepted")
	}
	// Median of a mostly-empty system is 0.
	n, err = s.FGQueueQuantile(0.5)
	if err != nil || n != 0 {
		t.Errorf("q50 = %v, %v; want 0", n, err)
	}
}
