package rng

import (
	"math"
	"sort"
	"testing"
)

// TestSplitMixReferenceVector pins the SplitMix64 sequence against the
// published outputs of the reference implementation (splitmix64.c,
// prng.di.unimi.it) for seed 0. Any drift here would silently re-seed every
// stream of every simulation run.
func TestSplitMixReferenceVector(t *testing.T) {
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
	}
	sm := NewSplitMix(0)
	for i, w := range want {
		if got := sm.Uint64(); got != w {
			t.Fatalf("splitmix64(seed 0) output %d = %#x, want %#x", i, got, w)
		}
	}
}

// TestXoshiroReferenceVector pins the raw xoshiro256** engine against
// outputs of the reference implementation (xoshiro256starstar.c,
// prng.di.unimi.it) run from the state {1, 2, 3, 4}.
func TestXoshiroReferenceVector(t *testing.T) {
	want := []uint64{
		11520, 0, 1509978240, 1215971899390074240, 1216172134540287360,
		607988272756665600, 16172922978634559625, 8476171486693032832,
	}
	r := Rand{s0: 1, s1: 2, s2: 3, s3: 4}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("xoshiro256** output %d = %d, want %d", i, got, w)
		}
	}
}

// TestSeededReferenceVector pins the composed seeding path — New expands the
// seed through SplitMix64 into the xoshiro state — against the reference
// implementations composed the same way.
func TestSeededReferenceVector(t *testing.T) {
	want := []uint64{
		0x15780b2e0c2ec716, 0x6104d9866d113a7e, 0xae17533239e499a1, 0xecb8ad4703b360a1,
	}
	r := New(42)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("New(42) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 1_000_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", v)
		}
	}
}

func TestDeterminismAndSeedSensitivity(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c, d := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 1000 outputs", same)
	}
}

// TestZigguratTablesClose checks the layer recurrence closes: the top layer's
// height plus one strip area over its width must reach f(0) = 1, which is the
// defining property of the published (r, v) constants.
func TestZigguratTablesClose(t *testing.T) {
	if d := math.Abs(zigF[255] + zigV/zigX[255] - 1); d > 1e-9 {
		t.Fatalf("ziggurat layers do not close: residual %g", d)
	}
	if d := math.Abs(zigX[0] - (zigR + 1)); d > 1e-9 {
		t.Fatalf("virtual base width %v, want r+1 = %v", zigX[0], zigR+1)
	}
	for i := 1; i < 256; i++ {
		if zigX[i] <= zigX[i+1] {
			t.Fatalf("layer edges not strictly decreasing at %d: %v <= %v", i, zigX[i], zigX[i+1])
		}
		if want := math.Exp(-zigX[i]); math.Abs(zigF[i]-want) > 1e-12 {
			t.Fatalf("zigF[%d] = %v, want f(x) = %v", i, zigF[i], want)
		}
	}
}

// TestExpFloat64Distribution checks the ziggurat sampler against the
// standard exponential: first two moments and a Kolmogorov–Smirnov bound on
// the empirical CDF. With n = 200000 the KS critical value at α = 1e-6 is
// about 2.6/√n ≈ 0.0058; a broken layer or tail would overshoot by orders of
// magnitude.
func TestExpFloat64Distribution(t *testing.T) {
	const n = 200000
	r := New(12345)
	xs := make([]float64, n)
	var sum, sumSq float64
	for i := range xs {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		xs[i] = x
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("mean = %v, want 1 ± 0.01", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want 1 ± 0.03", variance)
	}
	sort.Float64s(xs)
	var ks float64
	for i, x := range xs {
		cdf := 1 - math.Exp(-x)
		lo := cdf - float64(i)/n
		hi := float64(i+1)/n - cdf
		ks = math.Max(ks, math.Max(lo, hi))
	}
	if ks > 2.6/math.Sqrt(n) {
		t.Errorf("KS statistic %v exceeds %v", ks, 2.6/math.Sqrt(float64(n)))
	}
}

// TestExpFloat64Tail exercises the tail branch explicitly: beyond the base
// strip edge r the law must still be exponential (memorylessness), so
// P(X > zigR + 1 | X > zigR) ≈ e⁻¹.
func TestExpFloat64Tail(t *testing.T) {
	r := New(6)
	var tail, deep int
	const n = 20_000_000
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x > zigR {
			tail++
			if x > zigR+1 {
				deep++
			}
		}
	}
	if tail == 0 {
		t.Fatal("tail branch never taken")
	}
	frac := float64(deep) / float64(tail)
	if math.Abs(frac-math.Exp(-1)) > 0.03 {
		t.Errorf("conditional tail mass %v, want e^-1 = %v (tail n = %d)", frac, math.Exp(-1), tail)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += r.Uint64()
	}
	sinkU = acc
}

func BenchmarkExpFloat64(b *testing.B) {
	r := New(1)
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += r.ExpFloat64()
	}
	sinkF = acc
}

var (
	sinkU uint64
	sinkF float64
)
