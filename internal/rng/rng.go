// Package rng provides the simulator's random-number machinery: SplitMix64
// stream-seed derivation and an inline xoshiro256** generator with a
// ziggurat exponential sampler.
//
// math/rand dispatches every draw through the rand.Source interface and
// draws exponentials as -log(1-U), which together dominated the simulator's
// profile (interface dispatch plus one math.Log per event). Rand here is a
// concrete struct whose Uint64 inlines into callers, and ExpFloat64 uses the
// 256-layer ziggurat of Marsaglia & Tsang ("The Ziggurat Method for
// Generating Random Variables", JSS 2000), which resolves ~98.9% of draws
// with one 64-bit draw, one table multiply, and one compare.
//
// Stream derivation is unchanged from the PR 5 scheme: SplitMix64 (Steele,
// Lea & Flood, OOPSLA 2014) with the golden-ratio increment, evaluated as a
// counter sequence from the run seed. internal/sim's seedStream delegates
// here, so derived stream seeds are bit-for-bit identical to the pre-rng
// layout and the replication-r ≡ Run(seed+r) contract is untouched.
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64Gamma is the odd golden-ratio increment of the SplitMix64
// counter sequence.
const SplitMix64Gamma = 0x9e3779b97f4a7c15

// SplitMix is a SplitMix64 sequence: a bijective avalanche mixer evaluated
// at seed + k·γ for k = 1, 2, …. Successive outputs serve as well-separated
// stream seeds. The zero value is the sequence for seed 0.
type SplitMix struct{ state uint64 }

// NewSplitMix returns the SplitMix64 sequence for the given seed.
func NewSplitMix(seed uint64) SplitMix { return SplitMix{state: seed} }

// Uint64 returns the next output of the sequence.
func (s *SplitMix) Uint64() uint64 {
	s.state += SplitMix64Gamma
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** 1.0 generator (Blackman & Vigna, "Scrambled linear
// pseudorandom number generators", TOMS 2021): 256 bits of state, period
// 2^256−1, and a two-multiply output scrambler. It is a plain value so hot
// loops can embed it and the compiler can inline Uint64/Float64; it is not
// safe for concurrent use — derive one per goroutine from distinct
// SplitMix64 stream seeds.
type Rand struct{ s0, s1, s2, s3 uint64 }

// New returns a generator whose state is expanded from seed through
// SplitMix64, the seeding procedure recommended by the xoshiro authors
// (low-entropy seeds such as small integers must not feed the linear state
// directly).
func New(seed int64) Rand {
	var r Rand
	r.Seed(seed)
	return r
}

// Seed resets the generator state, expanding seed through SplitMix64.
func (r *Rand) Seed(seed int64) {
	sm := NewSplitMix(uint64(seed))
	r.s0, r.s1, r.s2, r.s3 = sm.Uint64(), sm.Uint64(), sm.Uint64(), sm.Uint64()
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		// The all-zero state is the one fixed point of the linear engine;
		// SplitMix64 cannot practically produce it, but guard anyway.
		r.s3 = SplitMix64Gamma
	}
}

// Uint64 returns the next 64 uniformly distributed bits. The rotations use
// math/bits intrinsics, which also keeps the body inside the compiler's
// inlining budget — Uint64 inlines into Float64, ExpFloat64, and the
// simulator's event loop.
func (r *Rand) Uint64() uint64 {
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	result := bits.RotateLeft64(s1*5, 7) * 9
	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = bits.RotateLeft64(s3, 45)
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits (the full
// significand of a float64), as x >> 11 · 2⁻⁵³.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Ziggurat tables for the standard exponential density f(x) = e^(−x) with
// 256 layers. zigR is the right edge of the base strip and zigV the common
// area of every strip (v = (r+1)·e^(−r)); both are the published constants
// of the 256-layer exponential ziggurat. The remaining table entries follow
// from the layer recurrence and are generated at init rather than
// transcribed: zigX[i] is the right edge of layer i (zigX[0] is the virtual
// base width v/f(r) = r+1 covering the tail), zigF[i] = f(zigX[i]).
const (
	zigR = 7.69711747013104972
	zigV = 3.9496598225815571993e-3
)

var (
	zigX [257]float64
	zigF [257]float64
)

func init() {
	zigX[1], zigF[1] = zigR, math.Exp(-zigR)
	zigX[0] = zigV / zigF[1] // = zigR + 1 up to round-off
	zigF[0] = 1              // unused sentinel; layer 0 accepts on x < zigX[1]
	for i := 2; i <= 255; i++ {
		zigF[i] = zigF[i-1] + zigV/zigX[i-1]
		zigX[i] = -math.Log(zigF[i])
	}
	zigX[256], zigF[256] = 0, 1
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1) via the
// ziggurat method. Divide by the rate for other scales. The common case
// costs one Uint64, one multiply, and one compare, and is small enough to
// inline into callers; the curved-edge and tail cases (~1.1% of draws) fall
// out of line to expSlow.
func (r *Rand) ExpFloat64() float64 {
	bits := r.Uint64()
	i := bits & 0xff
	// The uniform uses bits 11..63, disjoint from the 8 layer-index bits.
	x := float64(bits>>11) * 0x1p-53 * zigX[i]
	if x < zigX[i+1] {
		return x
	}
	return r.expSlow(i, x)
}

// expSlow resolves a draw that landed on the curved edge of layer i (or in
// the tail for i = 0), retrying from fresh layers until one accepts.
func (r *Rand) expSlow(i uint64, x float64) float64 {
	for {
		if i == 0 {
			// Tail beyond zigR: memorylessness gives zigR + Exp(1).
			return zigR - math.Log(1-r.Float64())
		}
		if zigF[i]+(zigF[i+1]-zigF[i])*r.Float64() < math.Exp(-x) {
			return x
		}
		bits := r.Uint64()
		i = bits & 0xff
		x = float64(bits>>11) * 0x1p-53 * zigX[i]
		if x < zigX[i+1] {
			return x
		}
	}
}
