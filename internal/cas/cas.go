// Package cas implements the disk tier of the bgperfd solve cache: a
// persistent, content-addressed store of solved results keyed by the
// canonical configuration hash (core.CacheKey). It is the layer that lets
// solves survive daemon restarts — the in-memory LRU in internal/serve
// answers the hot set, and everything it has ever solved is also written
// here, so a restarted daemon re-solves nothing it has already answered.
//
// Layout and durability contract:
//
//   - one file per key at <dir>/objects/<key[:2]>/<key>, sharded on the
//     first key byte so no directory grows past ~1/256 of the store;
//   - every file carries a versioned envelope (magic, format version,
//     payload length, SHA-256 payload checksum) and is verified on read —
//     a mismatch quarantines the file instead of returning bad bytes;
//   - writes are atomic: payloads land in a temp file in the same shard
//     directory, are synced, then renamed over the final name, so a crash
//     mid-write leaves either the old entry or a stray temp file, never a
//     half-written entry under a valid name;
//   - Open scans the tree: stray temp files are deleted, structurally
//     invalid entries (bad name, bad envelope, truncation) are moved to
//     <dir>/quarantine, and the byte accounting for GC is rebuilt;
//   - the store is size-bounded: once the configured byte budget is
//     exceeded, the oldest entries (by modification time, refreshed on
//     read, so eviction approximates LRU) are deleted until the store is
//     back under its low-water mark.
//
// The store is concurrency-safe within one process. It deliberately does
// not coordinate across processes: each bgperfd owns its cache directory
// (see docs/OPERATIONS.md).
package cas

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"bgperf/internal/core"
)

// On-disk envelope constants. The envelope is:
//
//	offset 0  magic   "BGCS" (4 bytes)
//	offset 4  version uint32 little-endian
//	offset 8  length  uint64 little-endian (payload bytes)
//	offset 16 sha256  32 bytes (checksum of the payload)
//	offset 48 payload
const (
	// Version is the current envelope format version. Readers reject (and
	// quarantine) any other version, so a future format change can never be
	// misparsed as v1.
	Version = 1
	// headerSize is the fixed envelope size before the payload.
	headerSize = 48
	// magic marks every entry file; anything else is quarantined on sight.
	magic = "BGCS"
)

// MaxPayload bounds one entry's payload. Solved metrics marshal to a few
// hundred bytes; the megabyte bound exists purely so a corrupted length
// field cannot make the reader allocate unbounded memory.
const MaxPayload = 1 << 20

// DefaultMaxBytes is the default byte budget of a store (256 MiB — roughly
// half a million solved points at typical payload sizes).
const DefaultMaxBytes int64 = 256 << 20

// gcLowWater is the fraction of the byte budget GC shrinks to once the
// budget is exceeded, so evictions run in batches instead of one per Put.
const gcLowWater = 0.9

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("cas: store is closed")

// Options configures a Store. The zero value takes every default.
type Options struct {
	// MaxBytes bounds the total payload+envelope bytes kept on disk; 0
	// means DefaultMaxBytes, negative removes the bound.
	MaxBytes int64
}

// Stats is a snapshot of a store's counters and occupancy.
type Stats struct {
	// Entries is the number of valid entries currently on disk.
	Entries int `json:"entries"`
	// Bytes is the total on-disk size (envelopes included) of those entries.
	Bytes int64 `json:"bytes"`
	// Hits counts Gets answered from disk with a verified payload.
	Hits int64 `json:"hits"`
	// Misses counts Gets that found no entry.
	Misses int64 `json:"misses"`
	// Writes counts successful Puts.
	Writes int64 `json:"writes"`
	// Quarantined counts entries moved aside for failing verification —
	// at Open (structural damage) or on Get (checksum mismatch).
	Quarantined int64 `json:"quarantined"`
	// GCEvictions counts entries deleted by the size-bounded GC.
	GCEvictions int64 `json:"gcEvictions"`
	// RepairedTemp counts stray temp files deleted by the Open scan —
	// evidence of a crash mid-write that the rename protocol contained.
	RepairedTemp int64 `json:"repairedTemp"`
}

// entry is the in-memory index record for one on-disk file.
type entry struct {
	size  int64
	mtime time.Time
}

// Store is a persistent content-addressed cache. Create one with Open.
type Store struct {
	dir      string
	maxBytes int64

	mu       sync.Mutex
	closed   bool
	index    map[string]entry
	bytes    int64
	hits     int64
	misses   int64
	writes   int64
	quarant  int64
	gcEvict  int64
	repaired int64
}

// Open creates (if needed) and scans the store rooted at dir, repairing
// crash leftovers: stray temp files are removed, files that fail the
// structural envelope check are quarantined, and the GC byte accounting is
// rebuilt from what survives. Payload checksums are deliberately not
// verified here — that would read every byte of a possibly huge cache at
// startup; they are verified on every Get instead.
func Open(dir string, opts Options) (*Store, error) {
	maxBytes := opts.MaxBytes
	switch {
	case maxBytes == 0:
		maxBytes = DefaultMaxBytes
	case maxBytes < 0:
		maxBytes = 0 // unbounded
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		index:    make(map[string]entry),
	}
	for _, d := range []string{s.objectsDir(), s.quarantineDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("cas: create %s: %w", d, err)
		}
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// objectsDir is the root of the sharded entry tree.
func (s *Store) objectsDir() string { return filepath.Join(s.dir, "objects") }

// quarantineDir holds entries that failed verification, kept for operator
// inspection; the store never reads them again.
func (s *Store) quarantineDir() string { return filepath.Join(s.dir, "quarantine") }

// path returns the entry file for a (pre-validated) key.
func (s *Store) path(key string) string {
	return filepath.Join(s.objectsDir(), key[:2], key)
}

// scan walks the object tree rebuilding the index: temp files from
// interrupted writes are deleted, structurally bad entries quarantined.
func (s *Store) scan() error {
	return filepath.WalkDir(s.objectsDir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if !core.ValidCacheKey(name) {
			// Either a temp file from an interrupted write (key + ".tmp…")
			// or junk that has no business in the tree. Temp files are the
			// expected crash residue: count them separately.
			if os.Remove(path) == nil {
				s.mu.Lock()
				s.repaired++
				s.mu.Unlock()
			}
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with removal; nothing to index
		}
		if !s.structurallyValid(path, info.Size()) {
			s.quarantine(name, path)
			return nil
		}
		s.mu.Lock()
		s.index[name] = entry{size: info.Size(), mtime: info.ModTime()}
		s.bytes += info.Size()
		s.mu.Unlock()
		return nil
	})
}

// structurallyValid checks the envelope header against the file size
// without reading the payload: magic, version, and the recorded payload
// length must match exactly what is on disk.
func (s *Store) structurallyValid(path string, size int64) bool {
	if size < headerSize {
		return false
	}
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := f.Read(hdr[:]); err != nil {
		return false
	}
	if string(hdr[:4]) != magic {
		return false
	}
	if binary.LittleEndian.Uint32(hdr[4:8]) != Version {
		return false
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	return n <= MaxPayload && size == headerSize+int64(n)
}

// quarantine moves a damaged file out of the object tree, uniquified by a
// timestamp so repeated damage to the same key never collides.
func (s *Store) quarantine(name, path string) {
	dst := filepath.Join(s.quarantineDir(),
		fmt.Sprintf("%s.%d.corrupt", name, time.Now().UnixNano()))
	if os.Rename(path, dst) != nil {
		os.Remove(path) // rename failed (cross-device?): drop it instead
	}
	s.mu.Lock()
	s.quarant++
	s.mu.Unlock()
}

// Get returns the verified payload stored under key. A checksum or
// envelope mismatch quarantines the entry and reports a miss — callers
// re-solve, they never see damaged bytes. A hit refreshes the entry's
// modification time so the size-bounded GC approximates LRU.
func (s *Store) Get(key string) ([]byte, bool) {
	if s == nil || !core.ValidCacheKey(key) {
		return nil, false
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false
	}
	e, ok := s.index[key]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	path := s.path(key)
	payload, err := readVerified(path)
	if err != nil {
		// Damaged on disk: quarantine under the lock-held accounting, then
		// report a miss.
		delete(s.index, key)
		s.bytes -= e.size
		s.misses++
		s.mu.Unlock()
		s.quarantine(key, path)
		return nil, false
	}
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort recency for GC ordering
	e.mtime = now
	s.index[key] = e
	s.hits++
	s.mu.Unlock()
	return payload, true
}

// readVerified reads one entry file and verifies magic, version, length,
// and payload checksum.
func readVerified(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < headerSize {
		return nil, fmt.Errorf("cas: entry truncated below header (%d bytes)", len(raw))
	}
	if string(raw[:4]) != magic {
		return nil, errors.New("cas: bad magic")
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != Version {
		return nil, fmt.Errorf("cas: unsupported envelope version %d", v)
	}
	n := binary.LittleEndian.Uint64(raw[8:16])
	if n > MaxPayload || int64(len(raw)) != headerSize+int64(n) {
		return nil, fmt.Errorf("cas: length field %d does not match file size %d", n, len(raw))
	}
	payload := raw[headerSize:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(raw[16:48]) {
		return nil, errors.New("cas: payload checksum mismatch")
	}
	return payload, nil
}

// Put stores payload under key, atomically: the envelope is written to a
// temp file in the final shard directory, synced, and renamed into place.
// Re-putting an existing key rewrites it (values for a key are bit-identical
// by the solver's determinism, so this only refreshes the file). Once the
// byte budget is exceeded, oldest entries are evicted until the store is
// back under its low-water mark.
func (s *Store) Put(key string, payload []byte) error {
	if s == nil {
		return nil
	}
	if !core.ValidCacheKey(key) {
		return fmt.Errorf("cas: invalid cache key %q", key)
	}
	if len(payload) > MaxPayload {
		return fmt.Errorf("cas: payload of %d bytes exceeds the %d-byte bound", len(payload), MaxPayload)
	}
	env := make([]byte, headerSize+len(payload))
	copy(env[:4], magic)
	binary.LittleEndian.PutUint32(env[4:8], Version)
	binary.LittleEndian.PutUint64(env[8:16], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(env[16:48], sum[:])
	copy(env[headerSize:], payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	path := s.path(key)
	shard := filepath.Dir(path)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("cas: create shard: %w", err)
	}
	// The temp name starts with the key and a ".tmp" marker, so the Open
	// scan recognizes (and removes) crash leftovers by shape.
	f, err := os.CreateTemp(shard, key+".tmp*")
	if err != nil {
		return fmt.Errorf("cas: create temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(env); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cas: write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cas: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cas: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cas: rename into place: %w", err)
	}
	if old, ok := s.index[key]; ok {
		s.bytes -= old.size
	}
	s.index[key] = entry{size: int64(len(env)), mtime: time.Now()}
	s.bytes += int64(len(env))
	s.writes++
	s.gcLocked()
	return nil
}

// gcLocked evicts oldest-first until the store is under the low-water
// fraction of its byte budget; callers hold s.mu.
func (s *Store) gcLocked() {
	if s.maxBytes <= 0 || s.bytes <= s.maxBytes {
		return
	}
	type aged struct {
		key string
		entry
	}
	all := make([]aged, 0, len(s.index))
	for k, e := range s.index {
		all = append(all, aged{k, e})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mtime.Before(all[j].mtime) })
	target := int64(gcLowWater * float64(s.maxBytes))
	for _, a := range all {
		if s.bytes <= target || len(s.index) <= 1 {
			break
		}
		if err := os.Remove(s.path(a.key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			continue
		}
		delete(s.index, a.key)
		s.bytes -= a.size
		s.gcEvict++
	}
}

// Len returns the number of valid entries currently indexed.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats returns a snapshot of the store's counters and occupancy.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:      len(s.index),
		Bytes:        s.bytes,
		Hits:         s.hits,
		Misses:       s.misses,
		Writes:       s.writes,
		Quarantined:  s.quarant,
		GCEvictions:  s.gcEvict,
		RepairedTemp: s.repaired,
	}
}

// Close marks the store closed; subsequent Puts fail with ErrClosed and
// Gets miss. Close never deletes data — the directory is the durable
// artifact a restarted daemon reopens.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
