package cas

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// testKey derives a deterministic valid cache key from a seed string.
func testKey(seed string) string {
	sum := sha256.Sum256([]byte(seed))
	return hex.EncodeToString(sum[:])
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	key := testKey("point-1")
	payload := []byte(`{"qlenFG":1.25}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want payload back", got, ok)
	}
	if _, ok := s.Get(testKey("never-stored")); ok {
		t.Fatal("Get of an absent key reported a hit")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v, want 1 entry / 1 hit / 1 miss / 1 write", st)
	}
	if st.Bytes != headerSize+int64(len(payload)) {
		t.Fatalf("bytes = %d, want envelope %d + payload %d", st.Bytes, headerSize, len(payload))
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	for _, key := range []string{"", "short", "../../../../etc/passwd", strings.Repeat("A", 64)} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) hit on an invalid key", key)
		}
	}
}

// TestReopenSurvivesRestart pins the tentpole durability contract: a new
// Store over the same directory serves every entry the old one wrote.
func TestReopenSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(fmt.Sprint(i)), []byte(fmt.Sprintf(`{"point":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	re := mustOpen(t, dir, Options{})
	if re.Len() != n {
		t.Fatalf("reopened store indexed %d entries, want %d", re.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, ok := re.Get(testKey(fmt.Sprint(i)))
		if !ok || string(got) != fmt.Sprintf(`{"point":%d}`, i) {
			t.Fatalf("entry %d lost across reopen: %q %v", i, got, ok)
		}
	}
	if st := re.Stats(); st.Quarantined != 0 || st.RepairedTemp != 0 {
		t.Fatalf("clean reopen reported repairs: %+v", st)
	}
}

// TestCrashRecovery simulates a kill mid-write: a stray temp file and a
// truncated entry are both left in the tree. Open must delete the temp
// file, quarantine the truncated entry, and leave the healthy entry
// readable.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	goodKey := testKey("survivor")
	if err := s.Put(goodKey, []byte("good payload")); err != nil {
		t.Fatal(err)
	}
	deadKey := testKey("victim")
	if err := s.Put(deadKey, []byte("about to be truncated")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Crash residue 1: a temp file abandoned mid-write.
	shard := filepath.Join(dir, "objects", goodKey[:2])
	tmp := filepath.Join(shard, goodKey+".tmp123456")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash residue 2: an entry truncated below its recorded length (as if
	// the filesystem lost the tail of a non-atomic write).
	deadPath := filepath.Join(dir, "objects", deadKey[:2], deadKey)
	if err := os.Truncate(deadPath, headerSize+3); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir, Options{})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stray temp file survived the reopen scan")
	}
	if got, ok := re.Get(goodKey); !ok || string(got) != "good payload" {
		t.Fatalf("healthy entry damaged by recovery: %q %v", got, ok)
	}
	if _, ok := re.Get(deadKey); ok {
		t.Fatal("truncated entry still readable")
	}
	st := re.Stats()
	if st.RepairedTemp != 1 {
		t.Fatalf("repairedTemp = %d, want 1", st.RepairedTemp)
	}
	if st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
	quarantined, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(quarantined) != 1 {
		t.Fatalf("quarantine dir: %v entries, err %v; want exactly 1", len(quarantined), err)
	}
	if !strings.HasPrefix(quarantined[0].Name(), deadKey) {
		t.Fatalf("quarantined file %q does not name the damaged key", quarantined[0].Name())
	}
}

// TestCorruptedEntryQuarantine flips payload bytes behind the store's back:
// the checksum catches it on Get, the entry is quarantined, and the caller
// sees a clean miss — never the damaged bytes.
func TestCorruptedEntryQuarantine(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key := testKey("bitrot")
	if err := s.Put(key, []byte("pristine payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "objects", key[:2], key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize] ^= 0xFF // flip one payload byte; length stays right
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(key); ok {
		t.Fatal("corrupted entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupted entry still in the object tree")
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after quarantine: %+v, want 1 quarantined, empty store", st)
	}
	// The key is re-writable after quarantine — the slot is clean again.
	if err := s.Put(key, []byte("fresh solve")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || string(got) != "fresh solve" {
		t.Fatalf("re-put after quarantine failed: %q %v", got, ok)
	}
}

// TestGCBoundsBytes fills past the byte budget and checks oldest-first
// eviction down to the low-water mark, with recently-read entries retained.
func TestGCBoundsBytes(t *testing.T) {
	// Budget for ~8 entries of (header + 52)-byte envelopes.
	payload := bytes.Repeat([]byte("x"), 52)
	entrySize := int64(headerSize + len(payload))
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 8 * entrySize})
	for i := 0; i < 32; i++ {
		if err := s.Put(testKey(fmt.Sprint(i)), payload); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Bytes > 8*entrySize {
		t.Fatalf("GC left %d bytes, budget %d", st.Bytes, 8*entrySize)
	}
	if st.GCEvictions == 0 {
		t.Fatal("no GC evictions recorded")
	}
	if st.Entries+int(st.GCEvictions) != 32 {
		t.Fatalf("entries %d + evictions %d != 32 puts", st.Entries, st.GCEvictions)
	}
	// The newest entry must have survived oldest-first eviction.
	if _, ok := s.Get(testKey("31")); !ok {
		t.Fatal("newest entry evicted by oldest-first GC")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	var wg sync.WaitGroup
	const workers, per = 8, 40
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := testKey(fmt.Sprintf("%d-%d", w, i))
				payload := []byte(fmt.Sprintf("w%d i%d", w, i))
				if err := s.Put(key, payload); err != nil {
					t.Error(err)
					return
				}
				got, ok := s.Get(key)
				if !ok || !bytes.Equal(got, payload) {
					t.Errorf("read own write failed for %s", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != workers*per {
		t.Fatalf("entries = %d, want %d", s.Len(), workers*per)
	}
}

func TestClosedStore(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	key := testKey("closing time")
	if err := s.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Put(key, []byte("y")); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("Get after Close reported a hit")
	}
}

func TestNilStoreSafe(t *testing.T) {
	var s *Store
	if err := s.Put(testKey("nil"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey("nil")); ok {
		t.Fatal("nil store hit")
	}
	if s.Len() != 0 || s.Stats() != (Stats{}) || s.Close() != nil {
		t.Fatal("nil store accessors not zero-valued")
	}
}
