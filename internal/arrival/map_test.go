package arrival

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bgperf/internal/mat"
)

// softDev is the paper's Software Development MMPP (Fig. 2 table),
// rates per millisecond.
func softDev(t testing.TB) *MAP {
	t.Helper()
	m, err := MMPP2(0.9e-6, 1.9e-6, 1.0e-4, 3.5e-2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPoissonDescriptors(t *testing.T) {
	p, err := Poisson(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Rate()-2.5) > 1e-12 {
		t.Errorf("rate = %v, want 2.5", p.Rate())
	}
	if math.Abs(p.SCV()-1) > 1e-12 {
		t.Errorf("scv = %v, want 1", p.SCV())
	}
	for k := 1; k <= 5; k++ {
		if acf := p.ACF(k); math.Abs(acf) > 1e-12 {
			t.Errorf("ACF(%d) = %v, want 0", k, acf)
		}
	}
	if p.ACFDecay() != 0 {
		t.Errorf("decay = %v, want 0", p.ACFDecay())
	}
}

func TestPoissonRejectsNonPositiveRate(t *testing.T) {
	for _, r := range []float64{0, -1} {
		if _, err := Poisson(r); err == nil {
			t.Errorf("Poisson(%v) accepted", r)
		}
	}
}

func TestMMPP2PaperParameterization(t *testing.T) {
	m := softDev(t)
	// λ = (v2·l1 + v1·l2)/(v1+v2); with the paper's numbers ≈ 0.0113/ms,
	// i.e. ~6.8% utilization at 6 ms service — the paper reports 6%.
	wantRate := (1.9e-6*1.0e-4 + 0.9e-6*3.5e-2) / (0.9e-6 + 1.9e-6)
	if math.Abs(m.Rate()-wantRate) > 1e-12 {
		t.Errorf("rate = %v, want %v", m.Rate(), wantRate)
	}
	if m.SCV() <= 1 {
		t.Errorf("scv = %v, want > 1 for a bursty MMPP", m.SCV())
	}
	if acf1 := m.ACF(1); acf1 <= 0 || acf1 >= 1 {
		t.Errorf("ACF(1) = %v, want in (0,1)", acf1)
	}
}

func TestMMPP2Validation(t *testing.T) {
	tests := []struct {
		name           string
		v1, v2, l1, l2 float64
	}{
		{"zero v1", 0, 1, 1, 1},
		{"negative v2", 1, -1, 1, 1},
		{"negative l1", 1, 1, -1, 1},
		{"all arrival rates zero", 1, 1, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := MMPP2(tt.v1, tt.v2, tt.l1, tt.l2); err == nil {
				t.Error("invalid MMPP2 accepted")
			}
		})
	}
}

func TestMMPP2OneArrivalStateAllowed(t *testing.T) {
	// l1 = 0 is an IPP written as an MMPP2; must be accepted.
	if _, err := MMPP2(1, 1, 0, 2); err != nil {
		t.Fatalf("MMPP2 with l1=0 rejected: %v", err)
	}
}

func TestMeanInterarrivalIsInverseRate(t *testing.T) {
	m := softDev(t)
	if got := m.Moment(1); math.Abs(got*m.Rate()-1) > 1e-9 {
		t.Errorf("E[X]·λ = %v, want 1", got*m.Rate())
	}
	if math.Abs(m.MeanInterarrival()-1/m.Rate()) > 1e-15 {
		t.Error("MeanInterarrival != 1/Rate")
	}
}

func TestSCVMatchesMoments(t *testing.T) {
	m := softDev(t)
	m1, m2 := m.Moment(1), m.Moment(2)
	scvFromMoments := m2/(m1*m1) - 1
	if math.Abs(scvFromMoments-m.SCV()) > 1e-6*m.SCV() {
		t.Errorf("SCV = %v from Eq.2, %v from moments", m.SCV(), scvFromMoments)
	}
}

func TestACFGeometricDecayOrder2(t *testing.T) {
	m := softDev(t)
	acf := m.ACFSeries(50)
	gamma := m.ACFDecay()
	for k := 2; k <= 50; k++ {
		want := acf[0] * math.Pow(gamma, float64(k-1))
		if math.Abs(acf[k-1]-want) > 1e-9 {
			t.Fatalf("ACF(%d) = %v, want geometric %v", k, acf[k-1], want)
		}
	}
}

func TestACFSeriesMatchesACF(t *testing.T) {
	m := softDev(t)
	series := m.ACFSeries(10)
	for k := 1; k <= 10; k++ {
		if series[k-1] != m.ACF(k) {
			t.Errorf("ACFSeries[%d] = %v, ACF(%d) = %v", k-1, series[k-1], k, m.ACF(k))
		}
	}
}

func TestACFPanicsOnBadLag(t *testing.T) {
	m := softDev(t)
	defer func() {
		if recover() == nil {
			t.Fatal("ACF(0) did not panic")
		}
	}()
	m.ACF(0)
}

func TestIPPIsRenewal(t *testing.T) {
	ipp, err := IPP(1.0, 0.01, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if ipp.SCV() <= 1 {
		t.Errorf("IPP scv = %v, want > 1", ipp.SCV())
	}
	for k := 1; k <= 10; k++ {
		if acf := ipp.ACF(k); math.Abs(acf) > 1e-9 {
			t.Errorf("IPP ACF(%d) = %v, want 0 (renewal process)", k, acf)
		}
	}
}

func TestIPPFromMoments(t *testing.T) {
	ipp, err := IPPFromMoments(0.0133, 20, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ipp.Rate()-0.0133) > 1e-9 {
		t.Errorf("rate = %v, want 0.0133", ipp.Rate())
	}
	if math.Abs(ipp.SCV()-20) > 0.05 {
		t.Errorf("scv = %v, want 20", ipp.SCV())
	}
	if acf := ipp.ACF(1); math.Abs(acf) > 1e-9 {
		t.Errorf("ACF(1) = %v, want 0", acf)
	}
}

func TestIPPFromMomentsRejectsLowSCV(t *testing.T) {
	if _, err := IPPFromMoments(1, 0.9, 0.5); err == nil {
		t.Error("scv < 1 accepted")
	}
}

func TestErlangRenewal(t *testing.T) {
	e, err := ErlangRenewal(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Erlang-4 with stage rate 2: mean 2, rate 0.5, SCV 1/4.
	if math.Abs(e.Rate()-0.5) > 1e-9 {
		t.Errorf("rate = %v, want 0.5", e.Rate())
	}
	if math.Abs(e.SCV()-0.25) > 1e-9 {
		t.Errorf("scv = %v, want 0.25", e.SCV())
	}
	if acf := e.ACF(1); math.Abs(acf) > 1e-9 {
		t.Errorf("ACF(1) = %v, want 0", acf)
	}
}

func TestHyperexpRenewal(t *testing.T) {
	h, err := HyperexpRenewal([]float64{0.5, 0.5}, []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	// E[X] = .5(1) + .5(.1) = .55; E[X²] = .5·2 + .5·0.02 = 1.01.
	wantRate := 1 / 0.55
	if math.Abs(h.Rate()-wantRate) > 1e-9 {
		t.Errorf("rate = %v, want %v", h.Rate(), wantRate)
	}
	wantSCV := 1.01/(0.55*0.55) - 1
	if math.Abs(h.SCV()-wantSCV) > 1e-9 {
		t.Errorf("scv = %v, want %v", h.SCV(), wantSCV)
	}
	if acf := h.ACF(3); math.Abs(acf) > 1e-9 {
		t.Errorf("ACF(3) = %v, want 0", acf)
	}
}

func TestHyperexpRenewalValidation(t *testing.T) {
	if _, err := HyperexpRenewal([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := HyperexpRenewal([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("zero total probability accepted")
	}
}

func TestScaleTimePreservesShape(t *testing.T) {
	m := softDev(t)
	scaled, err := m.ScaleTime(7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scaled.Rate()-7*m.Rate()) > 1e-12 {
		t.Errorf("rate = %v, want %v", scaled.Rate(), 7*m.Rate())
	}
	if math.Abs(scaled.SCV()-m.SCV()) > 1e-9 {
		t.Errorf("scv changed: %v vs %v", scaled.SCV(), m.SCV())
	}
	for k := 1; k <= 5; k++ {
		if math.Abs(scaled.ACF(k)-m.ACF(k)) > 1e-9 {
			t.Errorf("ACF(%d) changed: %v vs %v", k, scaled.ACF(k), m.ACF(k))
		}
	}
}

func TestWithRate(t *testing.T) {
	m := softDev(t)
	target := 1.0 / 6 * 0.4 // 40% utilization at µ = 1/6
	scaled, err := m.WithRate(target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scaled.Rate()-target) > 1e-12 {
		t.Errorf("rate = %v, want %v", scaled.Rate(), target)
	}
	if _, err := m.WithRate(-1); err == nil {
		t.Error("negative target rate accepted")
	}
}

func TestSuperposePoissons(t *testing.T) {
	a, _ := Poisson(1)
	b, _ := Poisson(2)
	s, err := a.Superpose(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Rate()-3) > 1e-12 {
		t.Errorf("superposed rate = %v, want 3", s.Rate())
	}
	if math.Abs(s.SCV()-1) > 1e-9 {
		t.Errorf("superposed Poisson scv = %v, want 1", s.SCV())
	}
}

func TestSuperposeRates(t *testing.T) {
	m := softDev(t)
	p, _ := Poisson(0.05)
	s, err := m.Superpose(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Rate()-(m.Rate()+0.05)) > 1e-12 {
		t.Errorf("rate = %v, want %v", s.Rate(), m.Rate()+0.05)
	}
	if s.Order() != 2 {
		t.Errorf("order = %d, want 2", s.Order())
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	tests := []struct {
		name   string
		d0, d1 *mat.Matrix
	}{
		{"shape mismatch", mat.New(2, 2), mat.New(3, 3)},
		{"negative D1", mat.MustFromRows([][]float64{{-1}}), mat.MustFromRows([][]float64{{-1}})},
		{"row sums", mat.MustFromRows([][]float64{{-1}}), mat.MustFromRows([][]float64{{2}})},
		{"zero rate", mat.MustFromRows([][]float64{{-1, 1}, {1, -1}}), mat.New(2, 2)},
		{
			"negative off-diagonal D0",
			mat.MustFromRows([][]float64{{0, -1}, {1, -2}}),
			mat.MustFromRows([][]float64{{1, 0}, {0, 1}}),
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.d0, tt.d1); err == nil {
				t.Error("invalid MAP accepted")
			}
		})
	}
}

func TestAccessorsReturnCopies(t *testing.T) {
	m := softDev(t)
	d0 := m.D0()
	d0.Set(0, 0, 999)
	if m.D0().At(0, 0) == 999 {
		t.Error("D0 exposes internal state")
	}
	pi := m.TimeStationary()
	pi[0] = 42
	if m.TimeStationary()[0] == 42 {
		t.Error("TimeStationary exposes internal state")
	}
}

func TestEventStationaryIsDistribution(t *testing.T) {
	m := softDev(t)
	p := m.EventStationary()
	if math.Abs(mat.Sum(p)-1) > 1e-9 {
		t.Errorf("event-stationary sums to %v", mat.Sum(p))
	}
	for i, v := range p {
		if v < 0 {
			t.Errorf("p[%d] = %v < 0", i, v)
		}
	}
}

func TestFitMMPP2RoundTrip(t *testing.T) {
	ref := softDev(t)
	spec := FitSpec{
		Rate:  ref.Rate(),
		SCV:   ref.SCV(),
		ACF1:  ref.ACF(1),
		Decay: ref.ACFDecay(),
	}
	fit, err := FitMMPP2(spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Rate()-spec.Rate) > 1e-9*spec.Rate {
		t.Errorf("rate = %v, want %v", fit.Rate(), spec.Rate)
	}
	if math.Abs(fit.SCV()-spec.SCV) > 1e-3*spec.SCV {
		t.Errorf("scv = %v, want %v", fit.SCV(), spec.SCV)
	}
	if math.Abs(fit.ACF(1)-spec.ACF1) > 1e-3*spec.ACF1 {
		t.Errorf("acf1 = %v, want %v", fit.ACF(1), spec.ACF1)
	}
	if math.Abs(fit.ACFDecay()-spec.Decay) > 1e-3 {
		t.Errorf("decay = %v, want %v", fit.ACFDecay(), spec.Decay)
	}
}

func TestFitMMPP2HighDependence(t *testing.T) {
	// An LRD-like target: slow decay and high variability with the lag-1 ACF
	// implied — the shape of the paper's E-mail workload. For slow decay the
	// implied ACF1 sits near its MMPP2 ceiling (1 − 1/SCV)/2.
	fit, err := FitMMPP2(FitSpec{Rate: 1.0 / 75, SCV: 12, Decay: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Rate()-1.0/75) > 1e-9 {
		t.Errorf("rate = %v, want %v", fit.Rate(), 1.0/75)
	}
	if math.Abs(fit.SCV()-12) > 0.01 {
		t.Errorf("scv = %v, want 12", fit.SCV())
	}
	if math.Abs(fit.ACFDecay()-0.999) > 1e-6 {
		t.Errorf("decay = %v, want 0.999", fit.ACFDecay())
	}
	if fit.ACF(1) < 0.4 {
		t.Errorf("implied acf1 = %v, want near the (1−1/scv)/2 ≈ 0.458 ceiling", fit.ACF(1))
	}
	if fit.ACF(100) < 0.3 {
		t.Errorf("slow decay expected: ACF(100) = %v", fit.ACF(100))
	}
}

func TestFitMMPP2LowDependence(t *testing.T) {
	fit, err := FitMMPP2(FitSpec{Rate: 0.5, SCV: 3, Decay: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.SCV()-3) > 0.01 {
		t.Errorf("scv = %v, want 3", fit.SCV())
	}
	if math.Abs(fit.ACFDecay()-0.5) > 1e-6 {
		t.Errorf("decay = %v, want 0.5", fit.ACFDecay())
	}
	if fit.ACF(5) > fit.ACF(1) {
		t.Error("ACF must decay")
	}
}

func TestFitMMPP2Infeasible(t *testing.T) {
	tests := []struct {
		name string
		spec FitSpec
	}{
		{"scv below 1", FitSpec{Rate: 1, SCV: 0.5, ACF1: 0.1, Decay: 0.5}},
		{"zero rate", FitSpec{Rate: 0, SCV: 2, ACF1: 0.1, Decay: 0.5}},
		{"acf1 too large", FitSpec{Rate: 1, SCV: 2, ACF1: 0.6, Decay: 0.5}},
		{"decay out of range", FitSpec{Rate: 1, SCV: 2, ACF1: 0.1, Decay: 1.5}},
		{"acf1 unreachable at low scv", FitSpec{Rate: 1, SCV: 1.01, ACF1: 0.45, Decay: 0.9}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FitMMPP2(tt.spec); err == nil {
				t.Error("infeasible fit accepted")
			}
		})
	}
}

func TestQuickMMPP2DescriptorBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := math.Pow(10, rng.Float64()*4-2)
		m, err := MMPP2(
			scale*math.Pow(10, rng.Float64()*3-3),
			scale*math.Pow(10, rng.Float64()*3-3),
			scale*math.Pow(10, rng.Float64()*2-1),
			scale*math.Pow(10, rng.Float64()*2-1),
		)
		if err != nil {
			return true // invalid draw, skip
		}
		if m.Rate() <= 0 || m.SCV() < 1-1e-9 {
			return false
		}
		gamma := m.ACFDecay()
		if gamma < -1e-9 || gamma >= 1 {
			return false
		}
		for _, a := range m.ACFSeries(20) {
			if a < -1e-9 || a > 0.5+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickScaleInvariance(t *testing.T) {
	f := func(seed int64, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := MMPP2(rng.Float64()+0.01, rng.Float64()+0.01, rng.Float64()+0.01, rng.Float64()+0.01)
		if err != nil {
			return true
		}
		c := float64(cRaw%50+1) / 10
		s, err := m.ScaleTime(c)
		if err != nil {
			return false
		}
		return math.Abs(s.SCV()-m.SCV()) < 1e-7*(1+m.SCV()) &&
			math.Abs(s.ACF(1)-m.ACF(1)) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSamplerDeterministic(t *testing.T) {
	m := softDev(t)
	s1 := NewSampler(m, 42)
	s2 := NewSampler(m, 42)
	for i := 0; i < 100; i++ {
		if s1.Next() != s2.Next() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestSamplerMatchesAnalytics(t *testing.T) {
	m, err := MMPP2(0.02, 0.05, 1.0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(m, 7)
	const n = 400000
	xs := make([]float64, n)
	var sum float64
	for i := range xs {
		xs[i] = s.Next()
		sum += xs[i]
	}
	mean := sum / n
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	variance := ss / float64(n-1)
	cv2 := variance / (mean * mean)

	if rel := math.Abs(mean-m.MeanInterarrival()) / m.MeanInterarrival(); rel > 0.05 {
		t.Errorf("empirical mean %v vs analytic %v (rel err %.3f)", mean, m.MeanInterarrival(), rel)
	}
	if rel := math.Abs(cv2-m.SCV()) / m.SCV(); rel > 0.1 {
		t.Errorf("empirical SCV %v vs analytic %v (rel err %.3f)", cv2, m.SCV(), rel)
	}
	// Lag-1 autocorrelation.
	var acc float64
	for i := 0; i+1 < n; i++ {
		acc += (xs[i] - mean) * (xs[i+1] - mean)
	}
	acf1 := acc / float64(n-2) / variance
	if math.Abs(acf1-m.ACF(1)) > 0.03 {
		t.Errorf("empirical ACF(1) %v vs analytic %v", acf1, m.ACF(1))
	}
}

func TestSamplerPoissonExponential(t *testing.T) {
	p, _ := Poisson(4)
	s := NewSampler(p, 11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Next()
	}
	if mean := sum / n; math.Abs(mean-0.25) > 0.005 {
		t.Errorf("Poisson(4) empirical mean gap %v, want 0.25", mean)
	}
}

func TestMMPPGeneralOrder(t *testing.T) {
	mod := mat.MustFromRows([][]float64{
		{-0.02, 0.01, 0.01},
		{0.005, -0.01, 0.005},
		{0.002, 0.003, -0.005},
	})
	m, err := MMPP([]float64{2, 0.2, 0.01}, mod)
	if err != nil {
		t.Fatal(err)
	}
	if m.Order() != 3 {
		t.Fatalf("order = %d, want 3", m.Order())
	}
	// Mean rate is the π-weighted rate mix.
	pi := m.TimeStationary()
	want := pi[0]*2 + pi[1]*0.2 + pi[2]*0.01
	if math.Abs(m.Rate()-want) > 1e-12 {
		t.Errorf("rate = %v, want %v", m.Rate(), want)
	}
	if m.SCV() <= 1 {
		t.Errorf("scv = %v, want > 1 for a modulated process", m.SCV())
	}
	if acf := m.ACF(1); acf <= 0 {
		t.Errorf("ACF(1) = %v, want positive", acf)
	}
	// MMPP2 through the general constructor must match MMPP2 exactly.
	mod2 := mat.MustFromRows([][]float64{{-0.9e-6, 0.9e-6}, {1.9e-6, -1.9e-6}})
	viaGeneral, err := MMPP([]float64{1.0e-4, 3.5e-2}, mod2)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := MMPP2(0.9e-6, 1.9e-6, 1.0e-4, 3.5e-2)
	if math.Abs(viaGeneral.Rate()-direct.Rate()) > 1e-15 || math.Abs(viaGeneral.SCV()-direct.SCV()) > 1e-9 {
		t.Error("general MMPP disagrees with MMPP2")
	}
}

func TestMMPPValidation(t *testing.T) {
	mod := mat.MustFromRows([][]float64{{-1, 1}, {1, -1}})
	if _, err := MMPP(nil, mod); err == nil {
		t.Error("empty rates accepted")
	}
	if _, err := MMPP([]float64{1}, mod); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := MMPP([]float64{-1, 1}, mod); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestQuickSuperposeRateAdds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := MMPP2(rng.Float64()+0.01, rng.Float64()+0.01, rng.Float64()+0.1, rng.Float64()*0.1)
		if err != nil {
			return true
		}
		b, err := Poisson(rng.Float64() + 0.01)
		if err != nil {
			return true
		}
		s, err := a.Superpose(b)
		if err != nil {
			return false
		}
		if math.Abs(s.Rate()-(a.Rate()+b.Rate())) > 1e-9*(a.Rate()+b.Rate()) {
			return false
		}
		// Descriptors of the superposition stay in their MAP ranges.
		return s.SCV() > 0 && math.Abs(s.ACF(1)) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEventStationaryIsPStationary(t *testing.T) {
	// p must be the stationary vector of the embedded chain P = (−D0)⁻¹D1.
	m := softDev(t)
	p := m.EventStationary()
	d0 := m.D0().Scale(-1)
	inv, err := mat.Inverse(d0)
	if err != nil {
		t.Fatal(err)
	}
	pEmbed := inv.Mul(m.D1())
	after := pEmbed.Transpose().MulVec(p)
	for i := range p {
		if math.Abs(after[i]-p[i]) > 1e-10 {
			t.Errorf("p·P != p at phase %d: %v vs %v", i, after[i], p[i])
		}
	}
}
