// Package arrival models Markovian Arrival Processes (MAPs) and their
// special cases used by the paper: the 2-state Markov-Modulated Poisson
// Process (MMPP), the Interrupted Poisson Process (IPP), the Poisson process,
// and phase-type renewal processes.
//
// A MAP of order A is described by two A×A matrices (D0, D1): D0 holds the
// phase transitions without an arrival (and the negative total rates on its
// diagonal) while D1 holds the transition rates that are accompanied by an
// arrival. D = D0 + D1 is the infinitesimal generator of the phase process.
//
// The package computes the descriptors the paper uses to characterize
// workloads — mean rate, squared coefficient of variation (SCV), and the
// lag-k autocorrelation function (ACF) of inter-arrival times (paper
// Eq. 1–3) — and fits 2-state MMPPs to target descriptors by moment matching
// (paper Sec. 3.1).
package arrival

import (
	"errors"
	"fmt"
	"math"

	"bgperf/internal/markov"
	"bgperf/internal/mat"
)

// ErrInvalidMAP reports (D0, D1) pairs that do not form a valid MAP.
var ErrInvalidMAP = errors.New("arrival: invalid MAP")

// MAP is a Markovian Arrival Process (D0, D1). The zero value is not usable;
// construct with New or one of the named constructors.
//
// A MAP is immutable after construction: all transforming methods return new
// processes, so a MAP may be shared freely across goroutines.
type MAP struct {
	d0, d1 *mat.Matrix

	// Cached analytics, computed eagerly by New.
	pi     []float64 // time-stationary phase distribution: π(D0+D1)=0
	embPi  []float64 // event-stationary phase distribution: p = πD1/λ
	rate   float64   // mean arrival rate λ = πD1e
	invD0  *mat.Matrix
	pEmbed *mat.Matrix // P = (−D0)⁻¹ D1, the phase chain embedded at arrivals
}

// New validates (d0, d1) and returns the MAP. Requirements: matching square
// shapes; D1 ≥ 0 entrywise; D0 off-diagonal ≥ 0; D0+D1 an irreducible
// generator; positive mean arrival rate.
func New(d0, d1 *mat.Matrix) (*MAP, error) {
	n := d0.Rows()
	if d0.Cols() != n || d1.Rows() != n || d1.Cols() != n || n == 0 {
		return nil, fmt.Errorf("%w: D0 is %dx%d, D1 is %dx%d", ErrInvalidMAP,
			d0.Rows(), d0.Cols(), d1.Rows(), d1.Cols())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d1.At(i, j) < 0 {
				return nil, fmt.Errorf("%w: D1[%d][%d] = %g < 0", ErrInvalidMAP, i, j, d1.At(i, j))
			}
			if i != j && d0.At(i, j) < 0 {
				return nil, fmt.Errorf("%w: off-diagonal D0[%d][%d] = %g < 0", ErrInvalidMAP, i, j, d0.At(i, j))
			}
		}
	}
	d := d0.AddMat(d1)
	if err := markov.CheckGenerator(d, 1e-8); err != nil {
		return nil, fmt.Errorf("%w: D0+D1: %v", ErrInvalidMAP, err)
	}
	m := &MAP{d0: d0.Clone(), d1: d1.Clone()}
	var err error
	if n == 1 {
		m.pi = []float64{1}
	} else {
		// GTH is subtraction-free and stays exact on the stiff modulating
		// chains of trace-fitted MMPPs (rates spanning many decades).
		m.pi, err = markov.StationaryCTMCGTH(d)
		if err != nil {
			return nil, fmt.Errorf("%w: phase process: %v", ErrInvalidMAP, err)
		}
	}
	m.rate = mat.Sum(m.d1.VecMul(m.pi))
	if m.rate <= 0 || math.IsNaN(m.rate) {
		return nil, fmt.Errorf("%w: mean rate %g must be positive", ErrInvalidMAP, m.rate)
	}
	negD0 := m.d0.Clone().Scale(-1)
	m.invD0, err = mat.Inverse(negD0)
	if err != nil {
		return nil, fmt.Errorf("%w: −D0 is singular", ErrInvalidMAP)
	}
	m.pEmbed = m.invD0.Mul(m.d1)
	m.embPi = mat.ScaleVec(m.d1.VecMul(m.pi), 1/m.rate)
	return m, nil
}

// MustNew is New but panics on error; for constructing known-valid processes.
func MustNew(d0, d1 *mat.Matrix) *MAP {
	m, err := New(d0, d1)
	if err != nil {
		panic(err)
	}
	return m
}

// Order returns the number of phases.
func (m *MAP) Order() int { return m.d0.Rows() }

// D0 returns a copy of the D0 matrix.
func (m *MAP) D0() *mat.Matrix { return m.d0.Clone() }

// D1 returns a copy of the D1 matrix.
func (m *MAP) D1() *mat.Matrix { return m.d1.Clone() }

// TimeStationary returns a copy of the time-stationary phase distribution π,
// the solution of π(D0+D1)=0, πe=1 used throughout the paper.
func (m *MAP) TimeStationary() []float64 {
	out := make([]float64, len(m.pi))
	copy(out, m.pi)
	return out
}

// EventStationary returns a copy of the phase distribution seen just after an
// arrival, p = πD1/λ.
func (m *MAP) EventStationary() []float64 {
	out := make([]float64, len(m.embPi))
	copy(out, m.embPi)
	return out
}

// Rate returns the mean arrival rate λ = πD1e (paper Eq. 1).
func (m *MAP) Rate() float64 { return m.rate }

// MeanInterarrival returns 1/λ.
func (m *MAP) MeanInterarrival() float64 { return 1 / m.rate }

// SCV returns the squared coefficient of variation of inter-arrival times,
// CV² = 2λ·π(−D0)⁻¹e − 1 (paper Eq. 2).
func (m *MAP) SCV() float64 {
	return 2*m.rate*mat.Dot(m.pi, m.invD0.RowSums()) - 1
}

// CV returns the coefficient of variation of inter-arrival times.
func (m *MAP) CV() float64 { return math.Sqrt(m.SCV()) }

// Moment returns the k-th raw moment of the stationary inter-arrival time,
// E[X^k] = k!·p(−D0)⁻ᵏe, for k ≥ 1.
func (m *MAP) Moment(k int) float64 {
	if k < 1 {
		panic("arrival: moment order must be >= 1")
	}
	v := make([]float64, len(m.embPi))
	copy(v, m.embPi)
	fact := 1.0
	for i := 1; i <= k; i++ {
		v = m.invD0.Transpose().MulVec(v) // v = v · invD0 as a row vector
		fact *= float64(i)
	}
	return fact * mat.Sum(v)
}

// ACF returns the lag-k autocorrelation of inter-arrival times,
// ACF(k) = (λ·π Pᵏ (−D0)⁻¹ e − 1)/CV² (paper Eq. 3), for k ≥ 1.
// A renewal process (e.g. Poisson, IPP) has ACF(k) = 0 for all k.
func (m *MAP) ACF(k int) float64 {
	if k < 1 {
		panic("arrival: ACF lag must be >= 1")
	}
	series := m.ACFSeries(k)
	return series[k-1]
}

// ACFSeries returns [ACF(1), …, ACF(maxLag)] computed with a single pass of
// repeated vector-matrix products.
func (m *MAP) ACFSeries(maxLag int) []float64 {
	if maxLag < 1 {
		return nil
	}
	scv := m.SCV()
	tail := m.invD0.RowSums() // (−D0)⁻¹ e
	out := make([]float64, maxLag)
	if scv <= 0 {
		// Deterministic-like processes cannot arise from a MAP with finite
		// phases except degenerately; guard against division blowups.
		return out
	}
	v := make([]float64, len(m.pi))
	copy(v, m.pi)
	for k := 1; k <= maxLag; k++ {
		v = m.pEmbed.Transpose().MulVec(v) // v = v·P as a row vector
		out[k-1] = (m.rate*mat.Dot(v, tail) - 1) / scv
	}
	return out
}

// ACFDecay returns the geometric decay factor γ of the ACF: the second
// largest modulus eigenvalue of P = (−D0)⁻¹D1. For order-2 processes this is
// exact (ACF(k) = ACF(1)·γ^(k−1)); for higher orders it is the asymptotic
// decay rate, estimated by power iteration on the deflated chain.
func (m *MAP) ACFDecay() float64 {
	n := m.Order()
	if n == 1 {
		return 0
	}
	if n == 2 {
		// Eigenvalues of the stochastic P are 1 and tr(P)−1.
		return m.pEmbed.At(0, 0) + m.pEmbed.At(1, 1) - 1
	}
	// Deflate the Perron eigenvalue: Pd = P − e·p where p is the stationary
	// vector of P; the dominant eigenvalue of Pd is the subdominant of P.
	p := m.embPi
	pd := m.pEmbed.Clone()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pd.Add(i, j, -p[j])
		}
	}
	return mat.SpectralRadius(pd, 1e-12, 10000)
}

// ScaleTime multiplies every rate by c > 0, dividing all time scales by c.
// Mean rate becomes c·λ while CV and the event-lag ACF are unchanged. This is
// exactly how the paper sweeps foreground utilization ("we scale the mean of
// the two MMPPs").
func (m *MAP) ScaleTime(c float64) (*MAP, error) {
	if c <= 0 || math.IsInf(c, 0) || math.IsNaN(c) {
		return nil, fmt.Errorf("%w: time scale %g must be positive and finite", ErrInvalidMAP, c)
	}
	return New(m.d0.Clone().Scale(c), m.d1.Clone().Scale(c))
}

// WithRate rescales the process so its mean rate equals target.
func (m *MAP) WithRate(target float64) (*MAP, error) {
	if target <= 0 {
		return nil, fmt.Errorf("%w: target rate %g must be positive", ErrInvalidMAP, target)
	}
	return m.ScaleTime(target / m.rate)
}

// Superpose returns the superposition of m and n (arrivals of both streams),
// the standard Kronecker-sum construction.
func (m *MAP) Superpose(n *MAP) (*MAP, error) {
	ia := mat.Identity(m.Order())
	ib := mat.Identity(n.Order())
	d0 := m.d0.Kron(ib).AddInPlace(ia.Kron(n.d0))
	d1 := m.d1.Kron(ib).AddInPlace(ia.Kron(n.d1))
	return New(d0, d1)
}

// String summarizes the process.
func (m *MAP) String() string {
	return fmt.Sprintf("MAP(order=%d, rate=%.6g, cv=%.4g, acf1=%.4g)",
		m.Order(), m.Rate(), m.CV(), m.ACFSeries(1)[0])
}
