package arrival

import (
	"fmt"

	"bgperf/internal/mat"
)

// Poisson returns the Poisson process with the given rate as an order-1 MAP.
func Poisson(rate float64) (*MAP, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("%w: Poisson rate %g must be positive", ErrInvalidMAP, rate)
	}
	d0 := mat.MustFromRows([][]float64{{-rate}})
	d1 := mat.MustFromRows([][]float64{{rate}})
	return New(d0, d1)
}

// MMPP2 returns the 2-state Markov-Modulated Poisson Process with the
// parameterization of the paper's Eq. 4:
//
//	D0 = [ −(l1+v1)   v1      ]     D1 = [ l1  0  ]
//	     [  v2       −(l2+v2) ]          [ 0   l2 ]
//
// l1, l2 are the per-state Poisson arrival rates and v1, v2 the modulation
// rates between the states. At least one arrival rate must be positive and
// both modulation rates must be positive (otherwise the phase process is
// reducible; for a one-way process use IPP).
func MMPP2(v1, v2, l1, l2 float64) (*MAP, error) {
	if v1 <= 0 || v2 <= 0 {
		return nil, fmt.Errorf("%w: MMPP2 modulation rates (v1=%g, v2=%g) must be positive", ErrInvalidMAP, v1, v2)
	}
	if l1 < 0 || l2 < 0 || l1+l2 == 0 {
		return nil, fmt.Errorf("%w: MMPP2 arrival rates (l1=%g, l2=%g) must be nonnegative with a positive sum", ErrInvalidMAP, l1, l2)
	}
	d0 := mat.MustFromRows([][]float64{
		{-(l1 + v1), v1},
		{v2, -(l2 + v2)},
	})
	d1 := mat.MustFromRows([][]float64{
		{l1, 0},
		{0, l2},
	})
	return New(d0, d1)
}

// MMPP returns a general n-state Markov-Modulated Poisson Process: arrivals
// occur at rates[i] while the modulating chain (with generator modulator,
// an n×n CTMC generator) sits in state i. The 2-state special case is
// MMPP2; higher orders capture richer dependence structures (e.g. three
// activity regimes of a disk workload).
func MMPP(rates []float64, modulator *mat.Matrix) (*MAP, error) {
	n := len(rates)
	if n == 0 || modulator.Rows() != n || modulator.Cols() != n {
		return nil, fmt.Errorf("%w: MMPP with %d rates and %dx%d modulator",
			ErrInvalidMAP, n, modulator.Rows(), modulator.Cols())
	}
	d1 := mat.New(n, n)
	d0 := modulator.Clone()
	for i := 0; i < n; i++ {
		if rates[i] < 0 {
			return nil, fmt.Errorf("%w: MMPP rate %g in state %d", ErrInvalidMAP, rates[i], i)
		}
		d1.Set(i, i, rates[i])
		d0.Add(i, i, -rates[i])
	}
	return New(d0, d1)
}

// IPP returns the Interrupted Poisson Process: arrivals at rate lambdaOn
// while in the ON state, none while OFF, with exponential ON and OFF sojourns
// of rates onToOff and offToOn. An IPP is a (hyperexponential) renewal
// process — high variability, zero autocorrelation — which is exactly why the
// paper uses it to isolate variability from dependence (Sec. 5.4).
func IPP(lambdaOn, onToOff, offToOn float64) (*MAP, error) {
	if lambdaOn <= 0 || onToOff <= 0 || offToOn <= 0 {
		return nil, fmt.Errorf("%w: IPP rates (λ=%g, on→off=%g, off→on=%g) must be positive",
			ErrInvalidMAP, lambdaOn, onToOff, offToOn)
	}
	d0 := mat.MustFromRows([][]float64{
		{-(lambdaOn + onToOff), onToOff},
		{offToOn, -offToOn},
	})
	d1 := mat.MustFromRows([][]float64{
		{lambdaOn, 0},
		{0, 0},
	})
	return New(d0, d1)
}

// IPPFromMoments builds the IPP with mean rate `rate` and inter-arrival SCV
// `scv` (> 1). The ON fraction is the remaining degree of freedom; onFrac in
// (0, 1) sets the stationary probability of the ON state. The inter-arrival
// times of an IPP are H2-distributed, so any scv > 1 is reachable.
func IPPFromMoments(rate, scv, onFrac float64) (*MAP, error) {
	if scv <= 1 {
		return nil, fmt.Errorf("%w: IPP requires scv > 1, got %g", ErrInvalidMAP, scv)
	}
	if onFrac <= 0 || onFrac >= 1 {
		return nil, fmt.Errorf("%w: onFrac %g must lie in (0,1)", ErrInvalidMAP, onFrac)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("%w: rate %g must be positive", ErrInvalidMAP, rate)
	}
	// With π_on = onFrac, the mean rate λ = λ_on·π_on fixes λ_on. Holding
	// π_on = offToOn/(onToOff+offToOn) fixed ties onToOff to offToOn, and the
	// SCV then falls monotonically in offToOn (faster switching → closer to
	// Poisson), so a bisection on offToOn hits the target SCV.
	lambdaOn := rate / onFrac
	build := func(offToOn float64) (*MAP, error) {
		onToOff := offToOn * (1 - onFrac) / onFrac
		return IPP(lambdaOn, onToOff, offToOn)
	}
	lo, hi := 1e-12*rate, 1e6*rate
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		m, err := build(mid)
		if err != nil {
			return nil, err
		}
		got := m.SCV()
		if got > scv {
			lo = mid
		} else {
			hi = mid
		}
	}
	m, err := build((lo + hi) / 2)
	if err != nil {
		return nil, err
	}
	if diff := m.SCV() - scv; diff > 1e-3*scv || diff < -1e-3*scv {
		return nil, fmt.Errorf("%w: IPP fit did not converge (scv %g, want %g)", ErrInvalidMAP, m.SCV(), scv)
	}
	return m.WithRate(rate)
}

// HyperexpRenewal returns the renewal process whose inter-arrival times are a
// mixture of exponentials: with probability probs[i] the next gap is
// exponential with rate rates[i]. Useful as a high-variability,
// zero-correlation baseline of arbitrary order.
func HyperexpRenewal(probs, rates []float64) (*MAP, error) {
	if len(probs) != len(rates) || len(probs) == 0 {
		return nil, fmt.Errorf("%w: probs and rates must be equal-length and nonempty", ErrInvalidMAP)
	}
	var sum float64
	for i, p := range probs {
		if p < 0 || rates[i] <= 0 {
			return nil, fmt.Errorf("%w: branch %d has prob %g rate %g", ErrInvalidMAP, i, p, rates[i])
		}
		sum += p
	}
	if sum <= 0 {
		return nil, fmt.Errorf("%w: probabilities sum to %g", ErrInvalidMAP, sum)
	}
	n := len(probs)
	d0 := mat.New(n, n)
	d1 := mat.New(n, n)
	for i := 0; i < n; i++ {
		d0.Set(i, i, -rates[i])
		for j := 0; j < n; j++ {
			d1.Set(i, j, rates[i]*probs[j]/sum)
		}
	}
	return New(d0, d1)
}

// ErlangRenewal returns the renewal process with Erlang-k inter-arrival times
// (k exponential stages of the given stage rate). Erlang arrivals have
// SCV = 1/k < 1, a smooth-traffic baseline.
func ErlangRenewal(k int, stageRate float64) (*MAP, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: Erlang order %d must be >= 1", ErrInvalidMAP, k)
	}
	if stageRate <= 0 {
		return nil, fmt.Errorf("%w: stage rate %g must be positive", ErrInvalidMAP, stageRate)
	}
	d0 := mat.New(k, k)
	d1 := mat.New(k, k)
	for i := 0; i < k; i++ {
		d0.Set(i, i, -stageRate)
		if i+1 < k {
			d0.Set(i, i+1, stageRate)
		} else {
			d1.Set(i, 0, stageRate)
		}
	}
	return New(d0, d1)
}
