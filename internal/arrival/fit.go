package arrival

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInfeasibleFit reports descriptor targets no 2-state MMPP can reach.
var ErrInfeasibleFit = errors.New("arrival: descriptors not reachable by an MMPP(2)")

// FitSpec describes the inter-arrival descriptors an MMPP2 fit must match.
// This mirrors the paper's moment-matching parameterization (Sec. 3.1): the
// mean and CV of the trace plus its dependence structure. A 2-state MMPP has
// four parameters, so (Rate, SCV, ACF1, Decay) determines it (up to numeric
// tolerance); matching only (Rate, SCV, Decay) leaves the paper's "one degree
// of freedom".
type FitSpec struct {
	// Rate is the mean arrival rate λ (> 0).
	Rate float64
	// SCV is the squared coefficient of variation of inter-arrival times
	// (must exceed 1; an MMPP is strictly more variable than Poisson).
	SCV float64
	// ACF1 is the lag-1 autocorrelation of inter-arrival times. Leave it 0
	// to let the fit imply it from SCV and Decay: the three shape
	// descriptors of an MMPP(2) are not independent — for slow decay the
	// lag-1 ACF is pinned near (1−1/SCV)/2 — so an explicit ACF1 is only
	// reachable in a narrow band and the fit fails otherwise.
	ACF1 float64
	// Decay is the geometric decay factor γ of the ACF: ACF(k) = ACF1·γ^(k−1),
	// in (0, 1). Values near 1 give long-range-dependence-like slow decay.
	Decay float64
}

func (s FitSpec) validate() error {
	switch {
	case s.Rate <= 0:
		return fmt.Errorf("%w: rate %g must be positive", ErrInfeasibleFit, s.Rate)
	case s.SCV <= 1:
		return fmt.Errorf("%w: scv %g must exceed 1", ErrInfeasibleFit, s.SCV)
	case s.ACF1 < 0 || s.ACF1 >= 0.5:
		return fmt.Errorf("%w: acf1 %g must lie in [0, 0.5), with 0 meaning unspecified", ErrInfeasibleFit, s.ACF1)
	case s.Decay <= 0 || s.Decay >= 1:
		return fmt.Errorf("%w: decay %g must lie in (0, 1)", ErrInfeasibleFit, s.Decay)
	}
	return nil
}

// FitMMPP2 fits a 2-state MMPP to the descriptors in spec and returns it, or
// ErrInfeasibleFit when the target combination lies outside the MMPP(2)
// feasibility region (e.g. ACF1 too large for the requested SCV).
//
// The search exploits two exact reductions. First, descriptors other than the
// rate are invariant under time scaling, so the fit runs with l1 = 1 and
// rescales afterwards. Second, the ACF decay of an MMPP2 has the closed form
// γ = l1·l2 / (l1·l2 + l1·v2 + l2·v1), so v2 can be eliminated to match Decay
// exactly, leaving a 2-D problem in (l2, v1) for (SCV, ACF1) that is solved
// by a coarse grid plus damped-Newton polish.
func FitMMPP2(spec FitSpec) (*MAP, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	// With l1 = 1 and decay matched exactly: v2 = l2·(vBudget − v1) where
	// vBudget = (1−γ)/γ, requiring 0 < v1 < vBudget.
	vBudget := (1 - spec.Decay) / spec.Decay
	// θ = (log l2, logit(v1/vBudget)).
	build := func(theta [2]float64) (*MAP, error) {
		l2 := math.Exp(theta[0])
		frac := 1 / (1 + math.Exp(-theta[1]))
		v1 := frac * vBudget
		v2 := l2 * (vBudget - v1)
		return MMPP2(v1, v2, 1, l2)
	}
	if spec.ACF1 == 0 {
		return fitTwoDescriptor(spec, vBudget, build)
	}
	residual := func(theta [2]float64) ([2]float64, *MAP, error) {
		m, err := build(theta)
		if err != nil {
			return [2]float64{}, nil, err
		}
		return [2]float64{
			m.SCV() - spec.SCV,
			m.ACFSeries(1)[0] - spec.ACF1,
		}, m, nil
	}
	norm := func(r [2]float64) float64 {
		return math.Hypot(r[0]/spec.SCV, r[1]/spec.ACF1)
	}

	// Stage 1: coarse grid over (l2, v1 fraction).
	type cand struct {
		theta [2]float64
		err   float64
	}
	var starts []cand
	for il := 0; il < 40; il++ {
		ll2 := math.Log(1e-8) + (math.Log(0.99)-math.Log(1e-8))*float64(il)/39
		for ifr := 0; ifr < 40; ifr++ {
			logit := -14 + 28*float64(ifr)/39
			theta := [2]float64{ll2, logit}
			r, _, err := residual(theta)
			if err != nil {
				continue
			}
			starts = append(starts, cand{theta, norm(r)})
		}
	}
	if len(starts) == 0 {
		return nil, fmt.Errorf("%w: empty feasible grid for %+v", ErrInfeasibleFit, spec)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].err < starts[j].err })
	if len(starts) > 12 {
		starts = starts[:12]
	}

	// Stage 2: damped-Newton polish from the best grid points.
	var best *MAP
	bestErr := math.Inf(1)
	for _, start := range starts {
		theta := start.theta
		r, m, err := residual(theta)
		if err != nil {
			continue
		}
		cur := norm(r)
		for iter := 0; iter < 120 && cur > 1e-12; iter++ {
			const h = 1e-7
			var jac [2][2]float64
			ok := true
			for j := 0; j < 2; j++ {
				tp := theta
				tp[j] += h
				rp, _, err := residual(tp)
				if err != nil {
					ok = false
					break
				}
				for i := 0; i < 2; i++ {
					jac[i][j] = (rp[i] - r[i]) / h
				}
			}
			if !ok {
				break
			}
			step, ok := solve2(jac, r)
			if !ok {
				break
			}
			improved := false
			for damp := 1.0; damp > 1e-8; damp /= 2 {
				tn := theta
				for j := 0; j < 2; j++ {
					tn[j] -= damp * step[j]
				}
				rn, mn, err := residual(tn)
				if err != nil {
					continue
				}
				if n := norm(rn); n < cur {
					theta, r, m, cur = tn, rn, mn, n
					improved = true
					break
				}
			}
			if !improved {
				break
			}
		}
		if cur < bestErr && m != nil {
			bestErr, best = cur, m
			if bestErr < 1e-9 {
				break
			}
		}
	}
	if best == nil || bestErr > 1e-4 {
		return nil, fmt.Errorf("%w: best residual %.3g for %+v", ErrInfeasibleFit, bestErr, spec)
	}
	return best.WithRate(spec.Rate)
}

// fitTwoDescriptor matches (Rate, SCV) with Decay already pinned exactly by
// the v2 elimination. The residual SCV is monotone along log l2 for a fixed
// modulation split, so a bracket scan plus bisection suffices; several splits
// are tried because extreme splits shrink the reachable SCV range.
func fitTwoDescriptor(spec FitSpec, vBudget float64, build func([2]float64) (*MAP, error)) (*MAP, error) {
	logits := []float64{0, -2.2, 2.2, -4.6, 4.6, -8, 8}
	for _, logit := range logits {
		scvAt := func(ll2 float64) (float64, bool) {
			m, err := build([2]float64{ll2, logit})
			if err != nil {
				return 0, false
			}
			return m.SCV(), true
		}
		// Scan for a sign change of SCV(l2) − target.
		const n = 120
		lo, hi := math.Log(1e-12), math.Log(0.999)
		prevX := math.NaN()
		prevF := 0.0
		var bracketLo, bracketHi float64
		found := false
		for i := 0; i <= n; i++ {
			x := lo + (hi-lo)*float64(i)/n
			s, ok := scvAt(x)
			if !ok {
				continue
			}
			f := s - spec.SCV
			if !math.IsNaN(prevX) && f*prevF <= 0 {
				bracketLo, bracketHi = prevX, x
				found = true
				break
			}
			prevX, prevF = x, f
		}
		if !found {
			continue
		}
		fLo, _ := scvAt(bracketLo)
		for iter := 0; iter < 200; iter++ {
			mid := (bracketLo + bracketHi) / 2
			s, ok := scvAt(mid)
			if !ok {
				break
			}
			if (s-spec.SCV)*(fLo-spec.SCV) > 0 {
				bracketLo, fLo = mid, s
			} else {
				bracketHi = mid
			}
		}
		m, err := build([2]float64{(bracketLo + bracketHi) / 2, logit})
		if err != nil {
			continue
		}
		if math.Abs(m.SCV()-spec.SCV) > 1e-4*spec.SCV {
			continue
		}
		return m.WithRate(spec.Rate)
	}
	return nil, fmt.Errorf("%w: no (SCV=%g, decay=%g) MMPP2 found", ErrInfeasibleFit, spec.SCV, spec.Decay)
}

// solve2 solves the 2×2 linear system J·x = r; ok is false when J is
// singular or the solution is non-finite.
func solve2(j [2][2]float64, r [2]float64) (x [2]float64, ok bool) {
	det := j[0][0]*j[1][1] - j[0][1]*j[1][0]
	if det == 0 {
		return x, false
	}
	x[0] = (r[0]*j[1][1] - r[1]*j[0][1]) / det
	x[1] = (j[0][0]*r[1] - j[1][0]*r[0]) / det
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return x, false
		}
	}
	return x, true
}
