package arrival

import "bgperf/internal/rng"

// Sampler draws inter-arrival times from a MAP by simulating its underlying
// phase process. It is the bridge between the analytic workload models and
// the event simulator / trace generator. A Sampler is not safe for concurrent
// use; create one per goroutine.
//
// The per-phase transition tables are flattened into contiguous arrays
// (indexed through off) and the generator is an inline xoshiro256** with a
// ziggurat exponential sampler, so Next costs no interface dispatch, no
// nested slice hops, and no math.Log on the common path. A Poisson MAP
// (one phase whose only transition is an arrival back to itself) short-cuts
// to a single exponential draw.
type Sampler struct {
	rng   rng.Rand
	phase int

	// poissonScale is nonzero for the order-1 all-arrival fast path: the
	// mean inter-arrival time, multiplying a unit exponential draw.
	poissonScale float64

	// invExit[i] is the mean sojourn 1/(−D0[i][i]) of phase i, multiplying
	// unit exponential draws (a validated MAP has no absorbing phase, so
	// every exit rate is strictly positive).
	invExit []float64
	// Flattened per-phase cumulative transition tables: entries
	// off[i]..off[i+1]-1 belong to phase i, first the D0 off-diagonal
	// targets (no arrival), then the D1 targets (arrival).
	off     []int32
	cumProb []float64
	target  []int32
	arrival []bool
}

// NewSampler returns a sampler for m seeded deterministically by seed. The
// initial phase is drawn from the time-stationary distribution so the
// generated sequence starts in steady state.
func NewSampler(m *MAP, seed int64) *Sampler {
	s := &Sampler{rng: rng.New(seed)}
	n := m.Order()
	s.invExit = make([]float64, n)
	s.off = make([]int32, n+1)
	for i := 0; i < n; i++ {
		exit := -m.d0.At(i, i)
		s.invExit[i] = 1 / exit
		acc := 0.0
		for j := 0; j < n; j++ {
			if j != i && m.d0.At(i, j) > 0 {
				acc += m.d0.At(i, j) / exit
				s.cumProb = append(s.cumProb, acc)
				s.target = append(s.target, int32(j))
				s.arrival = append(s.arrival, false)
			}
		}
		for j := 0; j < n; j++ {
			if m.d1.At(i, j) > 0 {
				acc += m.d1.At(i, j) / exit
				s.cumProb = append(s.cumProb, acc)
				s.target = append(s.target, int32(j))
				s.arrival = append(s.arrival, true)
			}
		}
		s.off[i+1] = int32(len(s.cumProb))
	}
	if n == 1 && len(s.arrival) == 1 && s.arrival[0] && s.invExit[0] > 0 {
		s.poissonScale = s.invExit[0]
	}
	s.phase = s.drawStationaryPhase(m)
	return s
}

func (s *Sampler) drawStationaryPhase(m *MAP) int {
	u := s.rng.Float64()
	acc := 0.0
	for i, p := range m.pi {
		acc += p
		if u < acc {
			return i
		}
	}
	return m.Order() - 1
}

// Phase returns the current phase of the modulating chain.
func (s *Sampler) Phase() int { return s.phase }

// Next returns the time until the next arrival, advancing the phase process.
func (s *Sampler) Next() float64 {
	if s.poissonScale > 0 {
		return s.rng.ExpFloat64() * s.poissonScale
	}
	var t float64
	for {
		i := s.phase
		t += s.rng.ExpFloat64() * s.invExit[i]
		u := s.rng.Float64()
		end := s.off[i+1]
		k := end - 1
		for j := s.off[i]; j < end; j++ {
			if u < s.cumProb[j] {
				k = j
				break
			}
		}
		s.phase = int(s.target[k])
		if s.arrival[k] {
			return t
		}
	}
}
