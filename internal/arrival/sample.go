package arrival

import (
	"math"
	"math/rand"
)

// Sampler draws inter-arrival times from a MAP by simulating its underlying
// phase process. It is the bridge between the analytic workload models and
// the event simulator / trace generator. A Sampler is not safe for concurrent
// use; create one per goroutine.
type Sampler struct {
	m   *MAP
	rng *rand.Rand

	phase     int
	exitRates []float64
	// Per-phase cumulative transition tables: first the D0 off-diagonal
	// targets (no arrival), then the D1 targets (arrival).
	cumProb [][]float64
	target  [][]int
	arrival [][]bool
}

// NewSampler returns a sampler for m seeded deterministically by seed. The
// initial phase is drawn from the time-stationary distribution so the
// generated sequence starts in steady state.
func NewSampler(m *MAP, seed int64) *Sampler {
	s := &Sampler{m: m, rng: rand.New(rand.NewSource(seed))}
	n := m.Order()
	s.exitRates = make([]float64, n)
	s.cumProb = make([][]float64, n)
	s.target = make([][]int, n)
	s.arrival = make([][]bool, n)
	for i := 0; i < n; i++ {
		exit := -m.d0.At(i, i)
		s.exitRates[i] = exit
		var probs []float64
		var targets []int
		var arrivals []bool
		acc := 0.0
		for j := 0; j < n; j++ {
			if j != i && m.d0.At(i, j) > 0 {
				acc += m.d0.At(i, j) / exit
				probs = append(probs, acc)
				targets = append(targets, j)
				arrivals = append(arrivals, false)
			}
		}
		for j := 0; j < n; j++ {
			if m.d1.At(i, j) > 0 {
				acc += m.d1.At(i, j) / exit
				probs = append(probs, acc)
				targets = append(targets, j)
				arrivals = append(arrivals, true)
			}
		}
		s.cumProb[i] = probs
		s.target[i] = targets
		s.arrival[i] = arrivals
	}
	s.phase = s.drawStationaryPhase()
	return s
}

func (s *Sampler) drawStationaryPhase() int {
	u := s.rng.Float64()
	acc := 0.0
	for i, p := range s.m.pi {
		acc += p
		if u < acc {
			return i
		}
	}
	return s.m.Order() - 1
}

// Phase returns the current phase of the modulating chain.
func (s *Sampler) Phase() int { return s.phase }

// Next returns the time until the next arrival, advancing the phase process.
func (s *Sampler) Next() float64 {
	var t float64
	for {
		i := s.phase
		t += s.exp(s.exitRates[i])
		u := s.rng.Float64()
		probs := s.cumProb[i]
		k := len(probs) - 1
		for idx, p := range probs {
			if u < p {
				k = idx
				break
			}
		}
		s.phase = s.target[i][k]
		if s.arrival[i][k] {
			return t
		}
	}
}

// exp draws an exponential variate with the given rate.
func (s *Sampler) exp(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return -math.Log(1-s.rng.Float64()) / rate
}
