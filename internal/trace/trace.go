// Package trace generates and characterizes synthetic I/O traces. It stands
// in for the proprietary disk-level traces of the paper's Fig. 1 (E-mail,
// Software Development, User Accounts servers): traces are sampled from the
// fitted MMPPs, and the same descriptors the paper tabulates — mean and CV of
// inter-arrival and service times, utilization, and the sample
// autocorrelation function — are estimated from the samples.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"bgperf/internal/arrival"
)

// ErrFormat reports malformed trace data on read.
var ErrFormat = errors.New("trace: malformed trace data")

// Trace holds a sequence of request inter-arrival times and, optionally,
// per-request service times. Units follow the generating process (the
// workload catalog uses milliseconds).
type Trace struct {
	// Interarrivals are the gaps between consecutive request arrivals.
	Interarrivals []float64
	// Services are per-request service times; empty when not recorded.
	Services []float64
}

// Generate samples n inter-arrival times from the MAP, starting from the
// time-stationary phase, using the deterministic seed.
func Generate(m *arrival.MAP, n int, seed int64) *Trace {
	s := arrival.NewSampler(m, seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Next()
	}
	return &Trace{Interarrivals: out}
}

// GenerateWithService additionally draws exponential service times with the
// given rate, mirroring the paper's service model.
func GenerateWithService(m *arrival.MAP, n int, seed int64, serviceRate float64) *Trace {
	t := Generate(m, n, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x7ace))
	t.Services = make([]float64, n)
	for i := range t.Services {
		t.Services[i] = -math.Log(1-rng.Float64()) / serviceRate
	}
	return t
}

// Stats summarizes a sample: count, mean, coefficient of variation, and its
// square.
type Stats struct {
	Count int
	Mean  float64
	CV    float64
	SCV   float64
}

func describe(xs []float64) Stats {
	n := len(xs)
	if n == 0 {
		return Stats{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	st := Stats{Count: n, Mean: mean}
	if n < 2 || mean == 0 {
		return st
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	variance := ss / float64(n-1)
	st.SCV = variance / (mean * mean)
	st.CV = math.Sqrt(st.SCV)
	return st
}

// InterarrivalStats returns descriptors of the inter-arrival sample.
func (t *Trace) InterarrivalStats() Stats { return describe(t.Interarrivals) }

// ServiceStats returns descriptors of the service-time sample.
func (t *Trace) ServiceStats() Stats { return describe(t.Services) }

// Utilization estimates the offered load: mean service time over mean
// inter-arrival time. It returns 0 when either sample is missing.
func (t *Trace) Utilization() float64 {
	ia := t.InterarrivalStats()
	sv := t.ServiceStats()
	if ia.Mean == 0 || sv.Count == 0 {
		return 0
	}
	return sv.Mean / ia.Mean
}

// ACF estimates the sample autocorrelation function of xs for lags
// 1..maxLag (the paper's dependence metric, Sec. 3.1).
func ACF(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag < 1 || n < 2 {
		return nil
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	var variance float64
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(n)
	out := make([]float64, maxLag)
	if variance == 0 {
		return out
	}
	for k := 1; k <= maxLag; k++ {
		if k >= n {
			break
		}
		var acc float64
		for i := 0; i+k < n; i++ {
			acc += (xs[i] - mean) * (xs[i+k] - mean)
		}
		out[k-1] = acc / float64(n) / variance
	}
	return out
}

// InterarrivalACF estimates the sample ACF of the inter-arrival times.
func (t *Trace) InterarrivalACF(maxLag int) []float64 {
	return ACF(t.Interarrivals, maxLag)
}

// WriteCSV writes the trace as CSV with a header. Columns are
// interarrival[,service] depending on whether services are recorded.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	withService := len(t.Services) > 0
	if withService && len(t.Services) != len(t.Interarrivals) {
		return fmt.Errorf("%w: %d services for %d arrivals", ErrFormat, len(t.Services), len(t.Interarrivals))
	}
	header := "interarrival"
	if withService {
		header += ",service"
	}
	if _, err := fmt.Fprintln(bw, header); err != nil {
		return err
	}
	for i, ia := range t.Interarrivals {
		if _, err := bw.WriteString(strconv.FormatFloat(ia, 'g', -1, 64)); err != nil {
			return err
		}
		if withService {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
			if _, err := bw.WriteString(strconv.FormatFloat(t.Services[i], 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: empty input", ErrFormat)
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ",")
	withService := false
	switch {
	case len(header) == 1 && header[0] == "interarrival":
	case len(header) == 2 && header[0] == "interarrival" && header[1] == "service":
		withService = true
	default:
		return nil, fmt.Errorf("%w: unexpected header %q", ErrFormat, sc.Text())
	}
	t := &Trace{}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		want := 1
		if withService {
			want = 2
		}
		if len(fields) != want {
			return nil, fmt.Errorf("%w: line %d has %d fields, want %d", ErrFormat, line, len(fields), want)
		}
		ia, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || ia < 0 || math.IsNaN(ia) || math.IsInf(ia, 0) {
			return nil, fmt.Errorf("%w: line %d: bad interarrival %q", ErrFormat, line, fields[0])
		}
		t.Interarrivals = append(t.Interarrivals, ia)
		if withService {
			sv, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || sv < 0 || math.IsNaN(sv) || math.IsInf(sv, 0) {
				return nil, fmt.Errorf("%w: line %d: bad service %q", ErrFormat, line, fields[1])
			}
			t.Services = append(t.Services, sv)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
