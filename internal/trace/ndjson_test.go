package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"bgperf/internal/arrival"
)

func TestNDJSONRoundTrip(t *testing.T) {
	m, err := arrival.Poisson(0.5)
	if err != nil {
		t.Fatal(err)
	}
	orig := GenerateWithService(m, 200, 7, 1)
	var buf bytes.Buffer
	if err := orig.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Interarrivals) != len(orig.Interarrivals) || len(got.Services) != len(orig.Services) {
		t.Fatalf("length mismatch: %d/%d vs %d/%d",
			len(got.Interarrivals), len(got.Services), len(orig.Interarrivals), len(orig.Services))
	}
	for i := range orig.Interarrivals {
		if got.Interarrivals[i] != orig.Interarrivals[i] || got.Services[i] != orig.Services[i] {
			t.Fatalf("row %d drifted through the round trip", i)
		}
	}
}

func TestNDJSONRoundTripNoService(t *testing.T) {
	m, err := arrival.Poisson(2)
	if err != nil {
		t.Fatal(err)
	}
	orig := Generate(m, 50, 3)
	var buf bytes.Buffer
	if err := orig.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("service")) {
		t.Fatal("service field must be omitted when unrecorded")
	}
	got, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Interarrivals) != 50 || len(got.Services) != 0 {
		t.Fatalf("unexpected shape: %d arrivals, %d services", len(got.Interarrivals), len(got.Services))
	}
}

func TestNDJSONMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"not json", "hello\n"},
		{"missing interarrival", `{"service": 1}` + "\n"},
		{"negative", `{"interarrival": -1}` + "\n"},
		{"nan-ish string", `{"interarrival": "x"}` + "\n"},
		{"service appears mid-trace", `{"interarrival": 1}` + "\n" + `{"interarrival": 1, "service": 2}` + "\n"},
		{"service disappears mid-trace", `{"interarrival": 1, "service": 2}` + "\n" + `{"interarrival": 1}` + "\n"},
	}
	for _, c := range cases {
		if _, err := ReadNDJSON(strings.NewReader(c.in)); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: want ErrFormat, got %v", c.name, err)
		}
	}
}

func TestNDJSONSkipsBlankLines(t *testing.T) {
	in := "\n" + `{"interarrival": 1.5}` + "\n\n  \n" + `{"interarrival": 2.5}` + "\n"
	got, err := ReadNDJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Interarrivals) != 2 || got.Interarrivals[0] != 1.5 || got.Interarrivals[1] != 2.5 {
		t.Fatalf("unexpected parse: %+v", got.Interarrivals)
	}
}
