package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// ndjsonRecord is one line of the NDJSON trace interchange format: a JSON
// object per request with its inter-arrival gap and, optionally, its service
// time. Pointer fields distinguish absent from zero.
type ndjsonRecord struct {
	Interarrival *float64 `json:"interarrival"`
	Service      *float64 `json:"service,omitempty"`
}

// WriteNDJSON writes the trace as newline-delimited JSON, one
// {"interarrival": …, "service": …} object per request ("service" omitted
// when the trace records none). NDJSON is the upload format of the bgperfd
// /v1/plan-from-trace endpoint and of `bgperf plan -trace`.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	withService := len(t.Services) > 0
	if withService && len(t.Services) != len(t.Interarrivals) {
		return fmt.Errorf("%w: %d services for %d arrivals", ErrFormat, len(t.Services), len(t.Interarrivals))
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, ia := range t.Interarrivals {
		rec := ndjsonRecord{Interarrival: &ia}
		if withService {
			rec.Service = &t.Services[i]
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses a newline-delimited JSON trace: one object per line with
// a required non-negative finite "interarrival" and an optional "service"
// (all lines must agree on whether services are present). Blank lines are
// skipped. Malformed input returns an error wrapping ErrFormat, so callers
// can distinguish bad uploads from I/O failures.
func ReadNDJSON(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(trimSpaceBytes(raw)) == 0 {
			continue
		}
		var rec ndjsonRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, line, err)
		}
		if rec.Interarrival == nil {
			return nil, fmt.Errorf("%w: line %d: missing interarrival", ErrFormat, line)
		}
		ia := *rec.Interarrival
		if ia < 0 || math.IsNaN(ia) || math.IsInf(ia, 0) {
			return nil, fmt.Errorf("%w: line %d: bad interarrival %g", ErrFormat, line, ia)
		}
		if rec.Service != nil {
			sv := *rec.Service
			if sv < 0 || math.IsNaN(sv) || math.IsInf(sv, 0) {
				return nil, fmt.Errorf("%w: line %d: bad service %g", ErrFormat, line, sv)
			}
			if len(t.Services) != len(t.Interarrivals) {
				return nil, fmt.Errorf("%w: line %d: service field appears mid-trace", ErrFormat, line)
			}
			t.Services = append(t.Services, sv)
		} else if len(t.Services) > 0 {
			return nil, fmt.Errorf("%w: line %d: service field disappears mid-trace", ErrFormat, line)
		}
		t.Interarrivals = append(t.Interarrivals, ia)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.Interarrivals) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrFormat)
	}
	return t, nil
}

// trimSpaceBytes reports the line with ASCII whitespace trimmed, without
// allocating.
func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && isSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n'
}
