package trace

import (
	"bytes"
	"testing"
)

// FuzzReadCSV asserts the parser never panics and that everything it
// accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"interarrival\n1\n2.5\n",
		"interarrival,service\n1,2\n3,4\n",
		"interarrival\n\n1\n",
		"interarrival,service\n1\n",
		"bogus\n1\n",
		"interarrival\nNaN\n",
		"interarrival\n-3\n",
		"interarrival\n1e308\n",
		"",
		"interarrival,service\n0,0\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted traces must round-trip losslessly.
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted trace failed to write: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\ninput: %q", err, buf.String())
		}
		if len(back.Interarrivals) != len(tr.Interarrivals) || len(back.Services) != len(tr.Services) {
			t.Fatalf("round trip changed row counts: %d/%d vs %d/%d",
				len(tr.Interarrivals), len(tr.Services), len(back.Interarrivals), len(back.Services))
		}
		for i := range tr.Interarrivals {
			if tr.Interarrivals[i] != back.Interarrivals[i] {
				t.Fatalf("row %d changed: %v vs %v", i, tr.Interarrivals[i], back.Interarrivals[i])
			}
		}
		// Statistics must not panic on any accepted trace.
		_ = tr.InterarrivalStats()
		_ = tr.ServiceStats()
		_ = tr.Utilization()
		_ = tr.InterarrivalACF(5)
	})
}

// FuzzACF asserts the sample-ACF estimator stays within [-1, 1] and never
// panics for arbitrary inputs.
func FuzzACF(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 0, 255, 0, 255, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		xs := make([]float64, len(raw))
		for i, b := range raw {
			xs[i] = float64(b)
		}
		for _, v := range ACF(xs, 4) {
			if v < -1.0000001 || v > 1.0000001 {
				t.Fatalf("ACF value %v outside [-1,1] for %v", v, xs)
			}
		}
	})
}
