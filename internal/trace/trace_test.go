package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"bgperf/internal/arrival"
)

func TestGenerateMatchesProcess(t *testing.T) {
	m, err := arrival.MMPP2(0.02, 0.05, 1.0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	tr := Generate(m, 300000, 42)
	st := tr.InterarrivalStats()
	if rel := math.Abs(st.Mean-m.MeanInterarrival()) / m.MeanInterarrival(); rel > 0.05 {
		t.Errorf("mean = %v, analytic %v", st.Mean, m.MeanInterarrival())
	}
	if rel := math.Abs(st.SCV-m.SCV()) / m.SCV(); rel > 0.1 {
		t.Errorf("scv = %v, analytic %v", st.SCV, m.SCV())
	}
	acf := tr.InterarrivalACF(5)
	for k, got := range acf {
		if want := m.ACF(k + 1); math.Abs(got-want) > 0.03 {
			t.Errorf("ACF(%d) = %v, analytic %v", k+1, got, want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m, _ := arrival.Poisson(1)
	a := Generate(m, 100, 7)
	b := Generate(m, 100, 7)
	for i := range a.Interarrivals {
		if a.Interarrivals[i] != b.Interarrivals[i] {
			t.Fatal("same seed gave different traces")
		}
	}
}

func TestGenerateWithService(t *testing.T) {
	m, _ := arrival.Poisson(1.0 / 75)
	tr := GenerateWithService(m, 200000, 3, 1.0/6)
	sv := tr.ServiceStats()
	if math.Abs(sv.Mean-6) > 0.1 {
		t.Errorf("service mean = %v, want 6", sv.Mean)
	}
	if math.Abs(sv.CV-1) > 0.05 {
		t.Errorf("service CV = %v, want 1 (exponential)", sv.CV)
	}
	if util := tr.Utilization(); math.Abs(util-0.08) > 0.01 {
		t.Errorf("utilization = %v, want 0.08", util)
	}
}

func TestPoissonTraceUncorrelated(t *testing.T) {
	m, _ := arrival.Poisson(2)
	tr := Generate(m, 200000, 5)
	for k, v := range tr.InterarrivalACF(5) {
		if math.Abs(v) > 0.02 {
			t.Errorf("Poisson sample ACF(%d) = %v, want ~0", k+1, v)
		}
	}
}

func TestStatsEdgeCases(t *testing.T) {
	var empty Trace
	if st := empty.InterarrivalStats(); st.Count != 0 || st.Mean != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	if empty.Utilization() != 0 {
		t.Error("utilization of empty trace must be 0")
	}
	one := Trace{Interarrivals: []float64{5}}
	st := one.InterarrivalStats()
	if st.Mean != 5 || st.CV != 0 {
		t.Errorf("single-sample stats = %+v", st)
	}
}

func TestACFEdgeCases(t *testing.T) {
	if ACF(nil, 5) != nil {
		t.Error("ACF of empty series should be nil")
	}
	if ACF([]float64{1, 2, 3}, 0) != nil {
		t.Error("ACF with maxLag 0 should be nil")
	}
	constant := ACF([]float64{2, 2, 2, 2}, 2)
	for _, v := range constant {
		if v != 0 {
			t.Errorf("constant series ACF = %v, want 0", v)
		}
	}
	// Alternating series has strongly negative lag-1 correlation.
	alt := ACF([]float64{1, -1, 1, -1, 1, -1, 1, -1}, 1)
	if alt[0] > -0.5 {
		t.Errorf("alternating ACF(1) = %v, want strongly negative", alt[0])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	m, _ := arrival.Poisson(1)
	tr := GenerateWithService(m, 500, 9, 0.5)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Interarrivals) != 500 || len(back.Services) != 500 {
		t.Fatalf("round trip lost rows: %d/%d", len(back.Interarrivals), len(back.Services))
	}
	for i := range tr.Interarrivals {
		if tr.Interarrivals[i] != back.Interarrivals[i] || tr.Services[i] != back.Services[i] {
			t.Fatalf("row %d changed in round trip", i)
		}
	}
}

func TestCSVRoundTripNoService(t *testing.T) {
	tr := &Trace{Interarrivals: []float64{1, 2.5, 3}}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Services) != 0 || len(back.Interarrivals) != 3 {
		t.Fatalf("unexpected round trip: %+v", back)
	}
}

func TestWriteCSVMismatched(t *testing.T) {
	tr := &Trace{Interarrivals: []float64{1, 2}, Services: []float64{1}}
	if err := tr.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Error("mismatched services accepted")
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "foo,bar\n1,2\n"},
		{"wrong fields", "interarrival\n1,2\n"},
		{"bad number", "interarrival\nxyz\n"},
		{"negative", "interarrival\n-1\n"},
		{"bad service", "interarrival,service\n1,NaNish\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in)); err == nil {
				t.Error("malformed input accepted")
			}
		})
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	tr, err := ReadCSV(strings.NewReader("interarrival\n1\n\n2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Interarrivals) != 2 {
		t.Fatalf("got %d rows, want 2", len(tr.Interarrivals))
	}
}

func TestQuickSampleACFBounded(t *testing.T) {
	f := func(seed int64) bool {
		m, err := arrival.MMPP2(0.1, 0.2, 1, 0.2)
		if err != nil {
			return false
		}
		tr := Generate(m, 2000, seed)
		for _, v := range tr.InterarrivalACF(20) {
			if v < -1-1e-9 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
