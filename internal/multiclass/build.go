package multiclass

import (
	"fmt"

	"bgperf/internal/core"
	"bgperf/internal/mat"
	"bgperf/internal/qbd"
)

// trans is one emitted block transition.
type trans struct {
	dLevel  int
	fromIdx int
	toIdx   int
	rate    *mat.Matrix
}

// scaledIdentity returns rate·I, cached per distinct rate: the emitter
// requests the same handful of rate blocks for every level, so the chain
// build allocates each exactly once per model. Callers must not mutate the
// result.
func (m *Model) scaledIdentity(rate float64) *mat.Matrix {
	if rate == 0 {
		return nil
	}
	if s, ok := m.scaled[rate]; ok {
		return s
	}
	s := mat.Identity(m.phases).Scale(rate)
	m.scaled[rate] = s
	return s
}

// downTarget classifies the state reached when a foreground completion (or a
// buffer-full drop) leaves behind (x1, x2) background jobs and yLeft
// foreground jobs.
func downTarget(x1, x2, yLeft int) block {
	if yLeft >= 1 {
		return block{kind: kindFG, x1: x1, x2: x2}
	}
	if x1+x2 == 0 {
		return block{kind: kindEmpty}
	}
	return block{kind: kindIdle, x1: x1, x2: x2}
}

// transitionsFrom emits every off-diagonal block transition out of a level.
func (m *Model) transitionsFrom(level int) []trans {
	var (
		cfg    = m.cfg
		mu     = cfg.ServiceRate
		p1, p2 = cfg.BG1Prob, cfg.BG2Prob
		out    []trans
	)
	emit := func(from block, dLevel int, to block, rate *mat.Matrix) {
		if rate == nil {
			return
		}
		fromIdx := m.blockIndex(level, from)
		toIdx := m.blockIndex(level+dLevel, to)
		if fromIdx < 0 || toIdx < 0 {
			panic(fmt.Sprintf("multiclass: unmapped transition level %d %+v -> %+v", level, from, to))
		}
		out = append(out, trans{dLevel: dLevel, fromIdx: fromIdx, toIdx: toIdx, rate: rate})
	}
	for _, b := range m.levelBlocks(level) {
		y := level - b.x1 - b.x2
		switch b.kind {
		case kindEmpty:
			emit(b, +1, block{kind: kindFG}, m.f)
			emit(b, 0, b, m.l)

		case kindFG:
			emit(b, +1, b, m.f)
			emit(b, 0, b, m.l)
			emit(b, -1, downTarget(b.x1, b.x2, y-1), m.scaledIdentity(mu*(1-p1-p2)))
			if p1 > 0 {
				if b.x1 < m.x1 {
					to := block{kind: kindFG, x1: b.x1 + 1, x2: b.x2}
					if y-1 == 0 {
						to = block{kind: kindIdle, x1: b.x1 + 1, x2: b.x2}
					}
					emit(b, 0, to, m.scaledIdentity(mu*p1))
				} else {
					emit(b, -1, downTarget(b.x1, b.x2, y-1), m.scaledIdentity(mu*p1))
				}
			}
			if p2 > 0 {
				if b.x2 < m.x2 {
					to := block{kind: kindFG, x1: b.x1, x2: b.x2 + 1}
					if y-1 == 0 {
						to = block{kind: kindIdle, x1: b.x1, x2: b.x2 + 1}
					}
					emit(b, 0, to, m.scaledIdentity(mu*p2))
				} else {
					emit(b, -1, downTarget(b.x1, b.x2, y-1), m.scaledIdentity(mu*p2))
				}
			}

		case kindBG1:
			emit(b, +1, b, m.f)
			emit(b, 0, b, m.l)
			var to block
			switch {
			case y >= 1:
				to = block{kind: kindFG, x1: b.x1 - 1, x2: b.x2}
			case b.x1-1 == 0 && b.x2 == 0:
				to = block{kind: kindEmpty}
			case cfg.IdlePolicy == core.IdleWaitPerPeriod && b.x1-1 >= 1:
				to = block{kind: kindBG1, x1: b.x1 - 1, x2: b.x2}
			case cfg.IdlePolicy == core.IdleWaitPerPeriod: // x1−1 = 0, x2 ≥ 1
				to = block{kind: kindBG2, x2: b.x2}
			default:
				to = block{kind: kindIdle, x1: b.x1 - 1, x2: b.x2}
			}
			emit(b, -1, to, m.scaledIdentity(mu))

		case kindBG2: // x1 = 0 by construction
			emit(b, +1, b, m.f)
			emit(b, 0, b, m.l)
			var to block
			switch {
			case y >= 1:
				to = block{kind: kindFG, x2: b.x2 - 1}
			case b.x2-1 == 0:
				to = block{kind: kindEmpty}
			case cfg.IdlePolicy == core.IdleWaitPerPeriod:
				to = block{kind: kindBG2, x2: b.x2 - 1}
			default:
				to = block{kind: kindIdle, x2: b.x2 - 1}
			}
			emit(b, -1, to, m.scaledIdentity(mu))

		case kindIdle:
			emit(b, +1, block{kind: kindFG, x1: b.x1, x2: b.x2}, m.f)
			emit(b, 0, b, m.l)
			// Priority pick at idle-wait expiry: class 1 first.
			to := block{kind: kindBG2, x2: b.x2}
			if b.x1 >= 1 {
				to = block{kind: kindBG1, x1: b.x1, x2: b.x2}
			}
			emit(b, 0, to, m.scaledIdentity(cfg.IdleRate))
		}
	}
	return out
}

// levelMatrices assembles (Down, Local, Up) for one level; the Local
// diagonal is left at zero.
func (m *Model) levelMatrices(level int) (down, local, up *mat.Matrix) {
	nHere := m.levelStates(level)
	local = mat.New(nHere, nHere)
	up = mat.New(nHere, m.levelStates(level+1))
	if level > 0 {
		down = mat.New(nHere, m.levelStates(level-1))
	}
	a := m.phases
	for _, tr := range m.transitionsFrom(level) {
		var dst *mat.Matrix
		switch tr.dLevel {
		case -1:
			dst = down
		case 0:
			dst = local
		case +1:
			dst = up
		}
		dst.AddBlockAt(tr.fromIdx*a, tr.toIdx*a, tr.rate)
	}
	return down, local, up
}

func fixDiagonal(local *mat.Matrix, others ...*mat.Matrix) {
	for i := 0; i < local.Rows(); i++ {
		sum := local.RowSum(i)
		for _, o := range others {
			if o != nil {
				sum += o.RowSum(i)
			}
		}
		local.Add(i, i, -sum)
	}
}

// qbdBlocks builds the boundary (levels 0..X1+X2) and repeating blocks.
func (m *Model) qbdBlocks() (qbd.Boundary, *qbd.Process, error) {
	b := m.x1 + m.x2
	boundary := qbd.Boundary{
		Local: make([]*mat.Matrix, b+1),
		Up:    make([]*mat.Matrix, b+1),
		Down:  make([]*mat.Matrix, b+1),
	}
	for j := 0; j <= b; j++ {
		down, local, up := m.levelMatrices(j)
		fixDiagonal(local, up, down)
		boundary.Local[j] = local
		boundary.Up[j] = up
		boundary.Down[j] = down
	}
	repDown, _, _ := m.levelMatrices(b + 1)
	boundary.RepDown = repDown
	a2, a1, a0 := m.levelMatrices(b + 2)
	fixDiagonal(a1, a0, a2)
	proc, err := qbd.New(a0, a1, a2)
	if err != nil {
		return qbd.Boundary{}, nil, fmt.Errorf("multiclass: assembling QBD: %w", err)
	}
	proc.Tune(m.tuning)
	return boundary, proc, nil
}

// Generator builds the truncated global generator for levels 0..maxLevel
// (up-transitions cut at the top level); for tests.
func (m *Model) Generator(maxLevel int) *mat.Matrix {
	offsets := make([]int, maxLevel+1)
	total := 0
	for j := 0; j <= maxLevel; j++ {
		offsets[j] = total
		total += m.levelStates(j)
	}
	g := mat.New(total, total)
	a := m.phases
	for j := 0; j <= maxLevel; j++ {
		for _, tr := range m.transitionsFrom(j) {
			if j+tr.dLevel > maxLevel || j+tr.dLevel < 0 {
				continue
			}
			g.AddBlockAt(offsets[j]+tr.fromIdx*a, offsets[j+tr.dLevel]+tr.toIdx*a, tr.rate)
		}
	}
	for i := 0; i < total; i++ {
		g.Add(i, i, -mat.Sum(g.Row(i)))
	}
	return g
}
