package multiclass

import (
	"fmt"
	"time"

	"bgperf/internal/obs"
	"bgperf/internal/qbd"
)

// Metrics are the steady-state quantities of the two-priority model,
// mirroring the single-class core.Metrics with per-class splits.
type Metrics struct {
	// QLenFG is the average number of foreground jobs in the system.
	QLenFG float64
	// QLenBG1 and QLenBG2 are the per-class average background occupancies.
	QLenBG1, QLenBG2 float64
	// CompBG1 and CompBG2 are the per-class completion (admission) rates:
	// the fraction of generated class-c jobs not dropped at a full class-c
	// buffer. A class with zero spawn probability reports 1.
	CompBG1, CompBG2 float64
	// WaitPFG is the arrival-weighted fraction of foreground jobs that find
	// any background job in service.
	WaitPFG float64

	// UtilFG, UtilBG1, UtilBG2 are the server-occupancy probabilities.
	UtilFG, UtilBG1, UtilBG2 float64
	// ProbIdleWait and ProbEmpty complete the server-state partition.
	ProbIdleWait, ProbEmpty float64

	// ThroughputFG and the per-class background throughputs (µ·P(serving)).
	ThroughputFG, ThroughputBG1, ThroughputBG2 float64
	// GenRateBG1/2 and DropRateBG1/2 are per-class generation and drop
	// rates.
	GenRateBG1, GenRateBG2   float64
	DropRateBG1, DropRateBG2 float64
	// RespTimeFG is the mean foreground response time (Little's law).
	RespTimeFG float64
}

// Solution is a solved two-priority model.
type Solution struct {
	Metrics

	model     *Model
	sol       *qbd.Solution
	repBlocks []block
}

// Solve builds and solves the QBD and assembles the metrics.
func (m *Model) Solve() (*Solution, error) {
	return m.SolveObserved(nil)
}

// SolveObserved is Solve reporting stage timings, the convergence trace, and
// workspace statistics to an optional obs.Observer (nil skips all
// instrumentation).
func (m *Model) SolveObserved(o obs.Observer) (*Solution, error) {
	var t0 time.Time
	if o != nil {
		t0 = time.Now()
	}
	boundary, proc, err := m.qbdBlocks()
	if err != nil {
		return nil, err
	}
	if o != nil {
		o.StageDone(obs.StageBuild, time.Since(t0))
	}
	qsol, err := qbd.SolveObserved(boundary, proc, o)
	if err != nil {
		return nil, fmt.Errorf("multiclass: %w", err)
	}
	if o != nil {
		t0 = time.Now()
	}
	s := &Solution{model: m, sol: qsol, repBlocks: m.levelBlocks(m.boundaryLevels() + 1)}
	s.computeMetrics()
	if o != nil {
		o.StageDone(obs.StageMetrics, time.Since(t0))
	}
	return s, nil
}

// maskedMass sums stationary probability over selected states with per-state
// weights; weights must be affine in the level over repeating levels (all
// uses here qualify).
func (s *Solution) maskedMass(keep func(b block) bool, weight func(b block, level, phase int) float64) float64 {
	m := s.model
	a := m.phases
	total := 0.0
	for j := 0; j < m.boundaryLevels(); j++ {
		pi := s.sol.BoundaryPi[j]
		for bi, b := range m.levelBlocks(j) {
			if !keep(b) {
				continue
			}
			for ph := 0; ph < a; ph++ {
				total += pi[bi*a+ph] * weight(b, j, ph)
			}
		}
	}
	first := s.sol.FirstRepLevel()
	tail := s.sol.TailSum()
	tailW := s.sol.TailWeightedSum()
	for bi, b := range s.repBlocks {
		if !keep(b) {
			continue
		}
		for ph := 0; ph < a; ph++ {
			w0 := weight(b, first, ph)
			slope := weight(b, first+1, ph) - w0
			idx := bi*a + ph
			total += w0*tail[idx] + slope*tailW[idx]
		}
	}
	return total
}

func (s *Solution) kindMass(k kind) float64 {
	return s.maskedMass(
		func(b block) bool { return b.kind == k },
		func(block, int, int) float64 { return 1 },
	)
}

func (s *Solution) computeMetrics() {
	m := s.model
	cfg := m.cfg
	one := func(block, int, int) float64 { return 1 }
	all := func(block) bool { return true }

	s.UtilFG = s.kindMass(kindFG)
	s.UtilBG1 = s.kindMass(kindBG1)
	s.UtilBG2 = s.kindMass(kindBG2)
	s.ProbIdleWait = s.kindMass(kindIdle)
	s.ProbEmpty = s.kindMass(kindEmpty)

	s.QLenFG = s.maskedMass(all, func(b block, level, _ int) float64 {
		return float64(level - b.x1 - b.x2)
	})
	s.QLenBG1 = s.maskedMass(all, func(b block, _, _ int) float64 { return float64(b.x1) })
	s.QLenBG2 = s.maskedMass(all, func(b block, _, _ int) float64 { return float64(b.x2) })

	full1 := s.maskedMass(func(b block) bool { return b.kind == kindFG && b.x1 == cfg.BG1Buffer }, one)
	full2 := s.maskedMass(func(b block) bool { return b.kind == kindFG && b.x2 == cfg.BG2Buffer }, one)
	s.CompBG1, s.CompBG2 = 1, 1
	if cfg.BG1Prob > 0 && s.UtilFG > 0 {
		s.CompBG1 = 1 - full1/s.UtilFG
	}
	if cfg.BG2Prob > 0 && s.UtilFG > 0 {
		s.CompBG2 = 1 - full2/s.UtilFG
	}

	rates := m.rateVec
	lambdaEff := s.maskedMass(all, func(_ block, _ int, ph int) float64 { return rates[ph] })
	if lambdaEff > 0 {
		delayed := s.maskedMass(
			func(b block) bool { return b.kind == kindBG1 || b.kind == kindBG2 },
			func(_ block, _ int, ph int) float64 { return rates[ph] },
		)
		s.WaitPFG = delayed / lambdaEff
	}

	mu := cfg.ServiceRate
	s.ThroughputFG = mu * s.UtilFG
	s.ThroughputBG1 = mu * s.UtilBG1
	s.ThroughputBG2 = mu * s.UtilBG2
	s.GenRateBG1 = mu * cfg.BG1Prob * s.UtilFG
	s.GenRateBG2 = mu * cfg.BG2Prob * s.UtilFG
	if cfg.BG1Prob > 0 {
		s.DropRateBG1 = mu * cfg.BG1Prob * full1
	}
	if cfg.BG2Prob > 0 {
		s.DropRateBG2 = mu * cfg.BG2Prob * full2
	}
	if lambda := cfg.Arrival.Rate(); lambda > 0 {
		s.RespTimeFG = s.QLenFG / lambda
	}
}

// TotalMass returns the stationary probability mass (≈1).
func (s *Solution) TotalMass() float64 { return s.sol.TotalMass() }
