package multiclass

import (
	"math"
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/markov"
	"bgperf/internal/sim"
)

func poissonCfg(t testing.TB, lambda, mu, p1, p2 float64, x1, x2 int, alpha float64) Config {
	t.Helper()
	ap, err := arrival.Poisson(lambda)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Arrival: ap, ServiceRate: mu,
		BG1Prob: p1, BG2Prob: p2,
		BG1Buffer: x1, BG2Buffer: x2,
		IdleRate: alpha,
	}
}

func mmppCfg(t testing.TB, util, mu, p1, p2 float64, x1, x2 int, alpha float64) Config {
	t.Helper()
	m, err := arrival.MMPP2(0.01, 0.02, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m, err = m.WithRate(util * mu)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Arrival: m, ServiceRate: mu,
		BG1Prob: p1, BG2Prob: p2,
		BG1Buffer: x1, BG2Buffer: x2,
		IdleRate: alpha,
	}
}

func solve(t testing.TB, cfg Config) *Solution {
	t.Helper()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	ap, _ := arrival.Poisson(1)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil arrival", Config{ServiceRate: 1}},
		{"zero service", Config{Arrival: ap}},
		{"negative p1", Config{Arrival: ap, ServiceRate: 2, BG1Prob: -0.1}},
		{"sum over 1", Config{Arrival: ap, ServiceRate: 2, BG1Prob: 0.6, BG2Prob: 0.6}},
		{"negative buffer", Config{Arrival: ap, ServiceRate: 2, BG1Buffer: -1}},
		{"missing idle rate", Config{Arrival: ap, ServiceRate: 2, BG1Prob: 0.1, BG1Buffer: 2}},
		{"bad policy", Config{Arrival: ap, ServiceRate: 2, IdlePolicy: 42}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewModel(tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestGeneratorRowsSumZero(t *testing.T) {
	configs := []Config{
		poissonCfg(t, 1, 2, 0.3, 0.3, 2, 2, 1),
		poissonCfg(t, 1, 2, 0.2, 0.5, 3, 1, 2),
		mmppCfg(t, 0.3, 2, 0.4, 0.3, 2, 2, 2),
		func() Config {
			c := poissonCfg(t, 1, 2, 0.3, 0.3, 2, 2, 1)
			c.IdlePolicy = core.IdleWaitPerPeriod
			return c
		}(),
	}
	for i, cfg := range configs {
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		g := m.Generator(cfg.BG1Buffer + cfg.BG2Buffer + 4)
		for r, s := range g.RowSums() {
			if math.Abs(s) > 1e-9 {
				t.Fatalf("config %d: generator row %d sums to %g", i, r, s)
			}
		}
	}
}

func TestReducesToSingleClass(t *testing.T) {
	// With p2 = 0 the two-priority model must match the single-class model
	// exactly (and symmetrically for p1 = 0: with one class, priority is
	// irrelevant).
	ap, err := arrival.MMPP2(0.01, 0.02, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ap, err = ap.WithRate(0.3 * 2)
	if err != nil {
		t.Fatal(err)
	}
	single, err := core.NewModel(core.Config{
		Arrival: ap, ServiceRate: 2, BGProb: 0.5, BGBuffer: 4, IdleRate: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := single.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []struct {
		name   string
		p1, p2 float64
		x1, x2 int
	}{
		{"class 1 only", 0.5, 0, 4, 3},
		{"class 2 only", 0, 0.5, 3, 4},
	} {
		t.Run(variant.name, func(t *testing.T) {
			s := solve(t, Config{
				Arrival: ap, ServiceRate: 2,
				BG1Prob: variant.p1, BG2Prob: variant.p2,
				BG1Buffer: variant.x1, BG2Buffer: variant.x2,
				IdleRate: 1.5,
			})
			comp := s.CompBG1
			qlen := s.QLenBG1
			util := s.UtilBG1
			if variant.p1 == 0 {
				comp, qlen, util = s.CompBG2, s.QLenBG2, s.UtilBG2
			}
			const tol = 1e-8
			if math.Abs(s.QLenFG-ref.QLenFG) > tol*(1+ref.QLenFG) {
				t.Errorf("QLenFG = %v, single-class %v", s.QLenFG, ref.QLenFG)
			}
			if math.Abs(comp-ref.CompBG) > tol {
				t.Errorf("CompBG = %v, single-class %v", comp, ref.CompBG)
			}
			if math.Abs(qlen-ref.QLenBG) > tol*(1+ref.QLenBG) {
				t.Errorf("QLenBG = %v, single-class %v", qlen, ref.QLenBG)
			}
			if math.Abs(util-ref.UtilBG) > tol {
				t.Errorf("UtilBG = %v, single-class %v", util, ref.UtilBG)
			}
			if math.Abs(s.WaitPFG-ref.WaitPFG) > tol {
				t.Errorf("WaitPFG = %v, single-class %v", s.WaitPFG, ref.WaitPFG)
			}
		})
	}
}

func TestBruteForceAgreement(t *testing.T) {
	cfg := poissonCfg(t, 0.3, 2, 0.4, 0.4, 2, 2, 1.2)
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	const maxLevel = 50
	pi, err := markov.StationaryCTMC(m.Generator(maxLevel))
	if err != nil {
		t.Fatal(err)
	}
	var (
		qlenFG, qlenB1, qlenB2           float64
		utilFG, utilB1, utilB2, idle, em float64
		full1, full2                     float64
	)
	idx := 0
	a := m.Phases()
	for j := 0; j <= maxLevel; j++ {
		for _, b := range m.levelBlocks(j) {
			var mass float64
			for ph := 0; ph < a; ph++ {
				mass += pi[idx]
				idx++
			}
			qlenFG += float64(j-b.x1-b.x2) * mass
			qlenB1 += float64(b.x1) * mass
			qlenB2 += float64(b.x2) * mass
			switch b.kind {
			case kindFG:
				utilFG += mass
				if b.x1 == cfg.BG1Buffer {
					full1 += mass
				}
				if b.x2 == cfg.BG2Buffer {
					full2 += mass
				}
			case kindBG1:
				utilB1 += mass
			case kindBG2:
				utilB2 += mass
			case kindIdle:
				idle += mass
			case kindEmpty:
				em += mass
			}
		}
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"QLenFG", s.QLenFG, qlenFG},
		{"QLenBG1", s.QLenBG1, qlenB1},
		{"QLenBG2", s.QLenBG2, qlenB2},
		{"UtilFG", s.UtilFG, utilFG},
		{"UtilBG1", s.UtilBG1, utilB1},
		{"UtilBG2", s.UtilBG2, utilB2},
		{"ProbIdleWait", s.ProbIdleWait, idle},
		{"ProbEmpty", s.ProbEmpty, em},
		{"CompBG1", s.CompBG1, 1 - full1/utilFG},
		{"CompBG2", s.CompBG2, 1 - full2/utilFG},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-6*(1+math.Abs(c.want)) {
			t.Errorf("%s: matrix-geometric %v vs brute force %v", c.name, c.got, c.want)
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	// With symmetric spawn probabilities and buffers, the high-priority
	// class must complete at least as much of its work and hold a shorter
	// queue.
	for _, cfg := range []Config{
		poissonCfg(t, 1.0, 2, 0.3, 0.3, 4, 4, 1),
		mmppCfg(t, 0.4, 2, 0.3, 0.3, 4, 4, 2),
	} {
		s := solve(t, cfg)
		if s.CompBG1 < s.CompBG2 {
			t.Errorf("CompBG1 %v < CompBG2 %v", s.CompBG1, s.CompBG2)
		}
		if s.QLenBG1 > s.QLenBG2 {
			t.Errorf("QLenBG1 %v > QLenBG2 %v", s.QLenBG1, s.QLenBG2)
		}
		if s.UtilBG1 < s.UtilBG2 {
			t.Errorf("UtilBG1 %v < UtilBG2 %v (class 1 should win the server)", s.UtilBG1, s.UtilBG2)
		}
	}
}

func TestFlowBalances(t *testing.T) {
	cfg := poissonCfg(t, 0.8, 2, 0.4, 0.3, 3, 3, 1.5)
	s := solve(t, cfg)
	// Per-class: admitted = completed.
	if adm := s.GenRateBG1 - s.DropRateBG1; math.Abs(adm-s.ThroughputBG1) > 1e-9*(1+adm) {
		t.Errorf("class 1: admitted %v != throughput %v", adm, s.ThroughputBG1)
	}
	if adm := s.GenRateBG2 - s.DropRateBG2; math.Abs(adm-s.ThroughputBG2) > 1e-9*(1+adm) {
		t.Errorf("class 2: admitted %v != throughput %v", adm, s.ThroughputBG2)
	}
	// FG throughput equals the arrival rate.
	if math.Abs(s.ThroughputFG-cfg.Arrival.Rate()) > 1e-8 {
		t.Errorf("FG throughput %v != λ %v", s.ThroughputFG, cfg.Arrival.Rate())
	}
	// Per-job policy: α·P(idle) = µ·P(BG serving, either class).
	lhs := cfg.IdleRate * s.ProbIdleWait
	rhs := cfg.ServiceRate * (s.UtilBG1 + s.UtilBG2)
	if math.Abs(lhs-rhs) > 1e-10*(1+rhs) {
		t.Errorf("idle-wait flow: α·P(idle) %v != µ·P(BG) %v", lhs, rhs)
	}
	// State probabilities partition.
	total := s.UtilFG + s.UtilBG1 + s.UtilBG2 + s.ProbIdleWait + s.ProbEmpty
	if math.Abs(total-1) > 1e-8 {
		t.Errorf("server-state probabilities sum to %v", total)
	}
	if math.Abs(s.TotalMass()-1) > 1e-8 {
		t.Errorf("total mass %v", s.TotalMass())
	}
}

func TestSimulatorAgreement(t *testing.T) {
	cfg := mmppCfg(t, 0.35, 2, 0.4, 0.3, 3, 3, 1.0)
	s := solve(t, cfg)
	res, err := sim.RunMulti(sim.MultiConfig{
		Arrival:     cfg.Arrival,
		ServiceRate: cfg.ServiceRate,
		BG1Prob:     cfg.BG1Prob,
		BG2Prob:     cfg.BG2Prob,
		BG1Buffer:   cfg.BG1Buffer,
		BG2Buffer:   cfg.BG2Buffer,
		IdleRate:    cfg.IdleRate,
		Seed:        9,
		WarmupTime:  1e4,
		MeasureTime: 3e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, simV, anaV, absTol, relTol float64) {
		t.Helper()
		tol := math.Max(absTol, relTol*math.Abs(anaV))
		if math.Abs(simV-anaV) > tol {
			t.Errorf("%s: simulated %v vs analytic %v", name, simV, anaV)
		}
	}
	check("QLenFG", res.QLenFG, s.QLenFG, 0.02, 0.05)
	check("QLenBG1", res.QLenBG1, s.QLenBG1, 0.02, 0.05)
	check("QLenBG2", res.QLenBG2, s.QLenBG2, 0.02, 0.05)
	check("CompBG1", res.CompBG1, s.CompBG1, 0.01, 0.03)
	check("CompBG2", res.CompBG2, s.CompBG2, 0.01, 0.03)
	check("WaitPFG", res.WaitPFG, s.WaitPFG, 0.005, 0.05)
	check("UtilBG1", res.UtilBG1, s.UtilBG1, 0.003, 0.05)
	check("UtilBG2", res.UtilBG2, s.UtilBG2, 0.003, 0.05)
	check("ProbIdleWait", res.ProbIdleWait, s.ProbIdleWait, 0.003, 0.05)
}

func TestSimulatorAgreementPerPeriod(t *testing.T) {
	cfg := poissonCfg(t, 1.0, 2, 0.5, 0.4, 3, 3, 0.8)
	cfg.IdlePolicy = core.IdleWaitPerPeriod
	s := solve(t, cfg)
	res, err := sim.RunMulti(sim.MultiConfig{
		Arrival:     cfg.Arrival,
		ServiceRate: cfg.ServiceRate,
		BG1Prob:     cfg.BG1Prob,
		BG2Prob:     cfg.BG2Prob,
		BG1Buffer:   cfg.BG1Buffer,
		BG2Buffer:   cfg.BG2Buffer,
		IdleRate:    cfg.IdleRate,
		IdlePolicy:  core.IdleWaitPerPeriod,
		Seed:        4,
		WarmupTime:  1e4,
		MeasureTime: 2e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.QLenFG-s.QLenFG) > 0.05*s.QLenFG+0.02 {
		t.Errorf("QLenFG: simulated %v vs analytic %v", res.QLenFG, s.QLenFG)
	}
	if math.Abs(res.CompBG1-s.CompBG1) > 0.02 {
		t.Errorf("CompBG1: simulated %v vs analytic %v", res.CompBG1, s.CompBG1)
	}
	if math.Abs(res.CompBG2-s.CompBG2) > 0.02 {
		t.Errorf("CompBG2: simulated %v vs analytic %v", res.CompBG2, s.CompBG2)
	}
}

func TestSplitBracketedByPooledBuffers(t *testing.T) {
	// Splitting a total spawn probability of 0.6 across two classes with
	// buffers of 4 each gives 8 segregated slots: total BG throughput must
	// land between a single class with a 4-slot buffer (fewer slots) and one
	// with a pooled 8-slot buffer (same slots, freely shared).
	total := 0.6
	lower := solve(t, poissonCfg(t, 0.8, 2, total, 0, 4, 4, 1))
	upper := solve(t, poissonCfg(t, 0.8, 2, total, 0, 8, 4, 1))
	for _, p1 := range []float64{0.45, 0.3, 0.15} {
		s := solve(t, poissonCfg(t, 0.8, 2, p1, total-p1, 4, 4, 1))
		got := s.ThroughputBG1 + s.ThroughputBG2
		if got < lower.ThroughputBG1-1e-9 || got > upper.ThroughputBG1+1e-9 {
			t.Errorf("p1=%v: total BG throughput %v outside [%v, %v]",
				p1, got, lower.ThroughputBG1, upper.ThroughputBG1)
		}
	}
}

func TestUnstableRejected(t *testing.T) {
	m, err := NewModel(poissonCfg(t, 3, 2, 0.3, 0.3, 2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(); err == nil {
		t.Error("overloaded system solved")
	}
}

func TestNoBackgroundAtAll(t *testing.T) {
	s := solve(t, poissonCfg(t, 1, 2, 0, 0, 3, 3, 1))
	if want := 0.5 / (1 - 0.5); math.Abs(s.QLenFG-want) > 1e-8 {
		t.Errorf("QLenFG = %v, want M/M/1 %v", s.QLenFG, want)
	}
	if s.QLenBG1 != 0 || s.QLenBG2 != 0 || s.WaitPFG != 0 {
		t.Errorf("BG metrics nonzero: %+v", s.Metrics)
	}
	if s.CompBG1 != 1 || s.CompBG2 != 1 {
		t.Errorf("completion rates = %v, %v; want 1", s.CompBG1, s.CompBG2)
	}
}

func BenchmarkSolveTwoClass(b *testing.B) {
	cfg := mmppCfg(b, 0.3, 2, 0.3, 0.3, 5, 5, 2)
	m, err := NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
