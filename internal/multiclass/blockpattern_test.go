package multiclass

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/mat"
)

// TestBuilderBlockMulBitIdentical is the two-priority twin of the core
// package's test of the same name: the CSR multiply paths must reproduce the
// dense MulInto bits exactly on the precise zero-block patterns the
// multiclass chain builder emits (scaled-identity A2/Down blocks, one
// arrival block per phase group in A0/Up).
func TestBuilderBlockMulBitIdentical(t *testing.T) {
	ap, err := arrival.MMPP2(0.3, 0.1, 2.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ap, err = ap.WithRate(0.4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(Config{
		Arrival:     ap,
		ServiceRate: 1,
		BG1Prob:     0.2,
		BG2Prob:     0.3,
		BG1Buffer:   3,
		BG2Buffer:   2,
		IdleRate:    0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	boundary, proc, err := m.qbdBlocks()
	if err != nil {
		t.Fatal(err)
	}

	blocks := map[string]*mat.Matrix{
		"A0":      proc.A0(),
		"A1":      proc.A1(),
		"A2":      proc.A2(),
		"RepDown": boundary.RepDown,
	}
	for j := range boundary.Local {
		blocks[fmt.Sprintf("Local[%d]", j)] = boundary.Local[j]
		blocks[fmt.Sprintf("Up[%d]", j)] = boundary.Up[j]
		if boundary.Down[j] != nil {
			blocks[fmt.Sprintf("Down[%d]", j)] = boundary.Down[j]
		}
	}

	rng := rand.New(rand.NewSource(13))
	for name, b := range blocks {
		if b == nil {
			continue
		}
		s := mat.NewSparse(b)
		if d := s.Dense(); !d.Equalf(b, 0) {
			t.Fatalf("%s: Dense(NewSparse(b)) != b", name)
		}

		right := randDense(rng, b.Cols(), b.Cols())
		want := mat.New(b.Rows(), b.Cols())
		want.MulInto(b, right)
		got := mat.New(b.Rows(), b.Cols())
		s.MulInto(got, right)
		requireSameBits(t, name+" (sparse·dense)", got, want)

		left := randDense(rng, b.Rows(), b.Rows())
		want2 := mat.New(b.Rows(), b.Cols())
		want2.MulInto(left, b)
		got2 := mat.New(b.Rows(), b.Cols())
		s.MulRightInto(got2, left)
		requireSameBits(t, name+" (dense·sparse)", got2, want2)
	}
}

func randDense(rng *rand.Rand, r, c int) *mat.Matrix {
	m := mat.New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func requireSameBits(t *testing.T, what string, got, want *mat.Matrix) {
	t.Helper()
	for i := 0; i < got.Rows(); i++ {
		for j := 0; j < got.Cols(); j++ {
			g, w := got.At(i, j), want.At(i, j)
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("%s: (%d,%d) got bits %x want %x (%g vs %g)",
					what, i, j, math.Float64bits(g), math.Float64bits(w), g, w)
			}
		}
	}
}
