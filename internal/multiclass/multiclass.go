// Package multiclass implements the extension the paper announces as future
// work (Sec. 6): background jobs of more than one priority level. A single
// non-preemptive server serves foreground jobs under MAP arrivals; each
// foreground completion spawns a class-1 (high-priority) background job with
// probability p1 or a class-2 (low-priority) one with probability p2. Each
// class has its own finite buffer. When the idle wait expires, the server
// picks a class-1 job if any is buffered, otherwise a class-2 job — the
// storage scenario of urgent WRITE verification coexisting with bulk
// scrubbing.
//
// The model keeps the paper's exponential service and idle-wait laws (the
// single-class core additionally supports PH/MAP variants). The chain
// levels by the total job count x1+x2+y and remains a QBD: the
// boundary spans levels 0..X1+X2, after which the layout repeats. A useful
// structural fact keeps the state space small: class-2 service can only
// start when no class-1 job is buffered, and no class-1 job can appear while
// a class-2 job holds the server (background jobs are born only at
// foreground completions), so class-2-serving states always carry x1 = 0.
package multiclass

import (
	"errors"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/mat"
	"bgperf/internal/qbd"
)

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("multiclass: invalid configuration")

// Config parameterizes the two-priority background model.
type Config struct {
	// Arrival is the foreground arrival process.
	Arrival *arrival.MAP
	// ServiceRate is the exponential service rate µ shared by all classes.
	ServiceRate float64
	// BG1Prob and BG2Prob are the per-completion spawn probabilities of the
	// high- and low-priority background classes (p1 + p2 ≤ 1).
	BG1Prob, BG2Prob float64
	// BG1Buffer and BG2Buffer are the per-class buffer capacities.
	BG1Buffer, BG2Buffer int
	// IdleRate is the idle-wait rate α.
	IdleRate float64
	// IdlePolicy selects per-job or per-period idle-wait re-arming (zero
	// value: per-job), with the same semantics as the single-class model.
	IdlePolicy core.IdleWaitPolicy
}

func (c Config) withDefaults() Config {
	if c.IdlePolicy == 0 {
		c.IdlePolicy = core.IdleWaitPerJob
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Arrival == nil:
		return core.NewValidationError(ErrConfig, "Arrival", "nil arrival process")
	case c.ServiceRate <= 0:
		return core.NewValidationError(ErrConfig, "ServiceRate", "service rate %g must be positive", c.ServiceRate)
	case c.BG1Prob < 0 || c.BG2Prob < 0 || c.BG1Prob+c.BG2Prob > 1:
		return core.NewValidationError(ErrConfig, "BG1Prob", "spawn probabilities (%g, %g) must be nonnegative with sum <= 1", c.BG1Prob, c.BG2Prob)
	case c.BG1Buffer < 0 || c.BG2Buffer < 0:
		return core.NewValidationError(ErrConfig, "BG1Buffer", "negative buffer")
	case (c.BG1Buffer > 0 && c.BG1Prob > 0 || c.BG2Buffer > 0 && c.BG2Prob > 0) && c.IdleRate <= 0:
		return core.NewValidationError(ErrConfig, "IdleRate", "idle rate %g must be positive when background work exists", c.IdleRate)
	case c.IdlePolicy != core.IdleWaitPerJob && c.IdlePolicy != core.IdleWaitPerPeriod:
		return core.NewValidationError(ErrConfig, "IdlePolicy", "unknown idle-wait policy %d", int(c.IdlePolicy))
	}
	return nil
}

// kind classifies the server condition.
type kind int

const (
	kindEmpty kind = iota + 1
	kindFG
	kindBG1 // serving a class-1 background job
	kindBG2 // serving a class-2 background job (x1 is always 0 here)
	kindIdle
)

// block identifies a phase group within a level. y = level − x1 − x2.
type block struct {
	kind   kind
	x1, x2 int
}

// levelLayout is the cached block enumeration of one level: the canonical
// block order plus the inverse index used by the transition emitter.
type levelLayout struct {
	blocks []block
	index  map[block]int
}

// Model is a validated, solvable instance.
type Model struct {
	cfg     Config
	phases  int
	f       *mat.Matrix
	l       *mat.Matrix
	rateVec []float64
	// x1, x2 are the effective buffer sizes (pruned to 0 when the matching
	// spawn probability is 0, keeping the phase process irreducible).
	x1, x2 int

	// layouts[j] caches the block layout of level j for j = 0..x1+x2+1; every
	// level at or past x1+x2+1 has the identical repeating layout and shares
	// the last entry. Built once in NewModel so the chain build, the metric
	// masks, and the transition emitter all run allocation-free lookups.
	layouts []*levelLayout
	// scaled caches the handful of distinct scaled-identity rate blocks
	// (µ(1−p1−p2), µp1, µp2, µ, α) the transition emitter reuses across every
	// level instead of allocating one per emitted transition.
	scaled map[float64]*mat.Matrix

	// tuning is forwarded to the qbd.Process built by each solve.
	tuning qbd.Tuning
}

// Tune installs numerical strategy knobs (R iteration scheme, intra-solve
// worker fan-out) for all subsequent solves. It must not be called
// concurrently with a solve.
func (m *Model) Tune(t qbd.Tuning) { m.tuning = t }

// NewModel validates cfg and prepares the chain builder.
func NewModel(cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d0 := cfg.Arrival.D0()
	a := d0.Rows()
	l := mat.New(a, a)
	for i := 0; i < a; i++ {
		for j := 0; j < a; j++ {
			if i != j {
				l.Set(i, j, d0.At(i, j))
			}
		}
	}
	f := cfg.Arrival.D1()
	m := &Model{
		cfg:     cfg,
		phases:  a,
		f:       f,
		l:       l,
		rateVec: f.RowSums(),
		x1:      cfg.BG1Buffer,
		x2:      cfg.BG2Buffer,
	}
	if cfg.BG1Prob == 0 {
		m.x1 = 0
	}
	if cfg.BG2Prob == 0 {
		m.x2 = 0
	}
	m.layouts = make([]*levelLayout, m.x1+m.x2+2)
	for j := range m.layouts {
		blocks := m.buildLevelBlocks(j)
		index := make(map[block]int, len(blocks))
		for i, b := range blocks {
			index[b] = i
		}
		m.layouts[j] = &levelLayout{blocks: blocks, index: index}
	}
	m.scaled = make(map[float64]*mat.Matrix)
	return m, nil
}

// layout returns the cached block layout of a level; levels past the
// boundary share the repeating layout.
func (m *Model) layout(level int) *levelLayout {
	if level >= len(m.layouts) {
		level = len(m.layouts) - 1
	}
	return m.layouts[level]
}

// Config returns the configuration with defaults applied.
func (m *Model) Config() Config { return m.cfg }

// Phases returns the MAP order.
func (m *Model) Phases() int { return m.phases }

// boundaryLevels returns the number of boundary levels (X1+X2+1).
func (m *Model) boundaryLevels() int { return m.x1 + m.x2 + 1 }

// levelBlocks returns the blocks of one level in the fixed canonical order:
// FG states by (x1, x2), then BG1-serving, then BG2-serving, then idle-wait
// states (boundary levels only). The returned slice is the cached layout and
// must not be mutated.
func (m *Model) levelBlocks(level int) []block {
	return m.layout(level).blocks
}

// buildLevelBlocks enumerates a level's blocks from scratch; NewModel caches
// one layout per distinct level shape.
func (m *Model) buildLevelBlocks(level int) []block {
	if level == 0 {
		return []block{{kind: kindEmpty}}
	}
	var blocks []block
	// FG: y = level − x1 − x2 ≥ 1.
	for x1 := 0; x1 <= m.x1; x1++ {
		for x2 := 0; x2 <= m.x2; x2++ {
			if level-x1-x2 >= 1 {
				blocks = append(blocks, block{kind: kindFG, x1: x1, x2: x2})
			}
		}
	}
	// BG1-serving: x1 ≥ 1, y ≥ 0.
	for x1 := 1; x1 <= m.x1; x1++ {
		for x2 := 0; x2 <= m.x2; x2++ {
			if level-x1-x2 >= 0 {
				blocks = append(blocks, block{kind: kindBG1, x1: x1, x2: x2})
			}
		}
	}
	// BG2-serving: x1 = 0, x2 ≥ 1, y ≥ 0.
	for x2 := 1; x2 <= m.x2; x2++ {
		if level-x2 >= 0 {
			blocks = append(blocks, block{kind: kindBG2, x2: x2})
		}
	}
	// Idle-wait: y = 0, x1+x2 = level ≥ 1 (boundary levels only).
	for x1 := 0; x1 <= m.x1; x1++ {
		x2 := level - x1
		if x2 >= 0 && x2 <= m.x2 && x1+x2 >= 1 {
			blocks = append(blocks, block{kind: kindIdle, x1: x1, x2: x2})
		}
	}
	return blocks
}

// blockIndex returns the position of b within its level, or −1.
func (m *Model) blockIndex(level int, b block) int {
	if i, ok := m.layout(level).index[b]; ok {
		return i
	}
	return -1
}

// levelStates returns the number of chain states in one level.
func (m *Model) levelStates(level int) int {
	return len(m.levelBlocks(level)) * m.phases
}
