// Package refqueue collects classical closed-form queueing results used as
// independent oracles for the matrix-analytic solver and as the baseline
// the paper's related work builds on: M/M/1, M/M/1/K, the Pollaczek–
// Khinchine M/G/1 formulas, and the M/G/1 queue with multiple server
// vacations (the decomposition behind vacation-model treatments of
// background work, e.g. the paper's reference [2]).
//
// All functions are pure formulas; errors flag parameter ranges where the
// formula is undefined (ρ ≥ 1 and similar).
package refqueue

import (
	"errors"
	"fmt"
	"math"
)

// ErrParams reports parameters outside a formula's domain.
var ErrParams = errors.New("refqueue: invalid parameters")

// MM1QueueLength returns E[N] = ρ/(1−ρ) for the M/M/1 queue.
func MM1QueueLength(rho float64) (float64, error) {
	if rho < 0 || rho >= 1 {
		return 0, fmt.Errorf("%w: utilization %g outside [0,1)", ErrParams, rho)
	}
	return rho / (1 - rho), nil
}

// MM1Wait returns the mean waiting time (excluding service) of the M/M/1
// queue with arrival rate lambda and service rate mu.
func MM1Wait(lambda, mu float64) (float64, error) {
	if lambda < 0 || mu <= 0 || lambda >= mu {
		return 0, fmt.Errorf("%w: λ=%g µ=%g", ErrParams, lambda, mu)
	}
	rho := lambda / mu
	return rho / (mu - lambda), nil
}

// MM1KDist returns the stationary distribution [P(N=0) … P(N=K)] of the
// M/M/1/K queue (K waiting-plus-service slots). Defined for any rho ≥ 0,
// including rho ≥ 1.
func MM1KDist(rho float64, k int) ([]float64, error) {
	if rho < 0 || k < 1 {
		return nil, fmt.Errorf("%w: rho=%g K=%d", ErrParams, rho, k)
	}
	dist := make([]float64, k+1)
	if rho == 1 {
		for i := range dist {
			dist[i] = 1 / float64(k+1)
		}
		return dist, nil
	}
	norm := (1 - math.Pow(rho, float64(k+1))) / (1 - rho)
	for i := 0; i <= k; i++ {
		dist[i] = math.Pow(rho, float64(i)) / norm
	}
	return dist, nil
}

// MM1KBlocking returns the blocking probability P(N=K) of the M/M/1/K
// queue.
func MM1KBlocking(rho float64, k int) (float64, error) {
	dist, err := MM1KDist(rho, k)
	if err != nil {
		return 0, err
	}
	return dist[k], nil
}

// MG1QueueLength returns the Pollaczek–Khinchine mean population of the
// M/G/1 queue: E[N] = ρ + ρ²(1+cs²)/(2(1−ρ)).
func MG1QueueLength(rho, serviceSCV float64) (float64, error) {
	if rho < 0 || rho >= 1 || serviceSCV < 0 {
		return 0, fmt.Errorf("%w: rho=%g scv=%g", ErrParams, rho, serviceSCV)
	}
	return rho + rho*rho*(1+serviceSCV)/(2*(1-rho)), nil
}

// MG1Wait returns the Pollaczek–Khinchine mean waiting time
// E[W] = λ·E[S²]/(2(1−ρ)) of the M/G/1 queue, from the first two service
// moments.
func MG1Wait(lambda, svcMean, svcM2 float64) (float64, error) {
	rho := lambda * svcMean
	if lambda < 0 || svcMean <= 0 || svcM2 < svcMean*svcMean || rho >= 1 {
		return 0, fmt.Errorf("%w: λ=%g E[S]=%g E[S²]=%g", ErrParams, lambda, svcMean, svcM2)
	}
	return lambda * svcM2 / (2 * (1 - rho)), nil
}

// MG1VacationWait returns the mean waiting time of the M/G/1 queue with
// multiple server vacations (Takagi's decomposition): whenever the queue
// empties the server takes i.i.d. vacations V back to back until work is
// present, and
//
//	E[W] = λ·E[S²]/(2(1−ρ)) + E[V²]/(2·E[V]).
//
// The second term is the mean residual vacation an arriving customer waits
// out — the classical way to account for background work stealing the
// server, and the approximation the exact chain is compared against in the
// baseline experiment.
func MG1VacationWait(lambda, svcMean, svcM2, vacMean, vacM2 float64) (float64, error) {
	base, err := MG1Wait(lambda, svcMean, svcM2)
	if err != nil {
		return 0, err
	}
	if vacMean <= 0 || vacM2 < vacMean*vacMean {
		return 0, fmt.Errorf("%w: E[V]=%g E[V²]=%g", ErrParams, vacMean, vacM2)
	}
	return base + vacM2/(2*vacMean), nil
}

// MG1VacationQueueLength returns the mean population of the multiple-
// vacation M/G/1 queue by Little's law, E[N] = λ(E[W]+E[S]).
func MG1VacationQueueLength(lambda, svcMean, svcM2, vacMean, vacM2 float64) (float64, error) {
	w, err := MG1VacationWait(lambda, svcMean, svcM2, vacMean, vacM2)
	if err != nil {
		return 0, err
	}
	return lambda * (w + svcMean), nil
}
