package refqueue

import (
	"math"
	"testing"
)

func TestMM1QueueLength(t *testing.T) {
	got, err := MM1QueueLength(0.5)
	if err != nil || got != 1 {
		t.Errorf("E[N](0.5) = %v, %v; want 1", got, err)
	}
	if _, err := MM1QueueLength(1); err == nil {
		t.Error("critical load accepted")
	}
	if _, err := MM1QueueLength(-0.1); err == nil {
		t.Error("negative load accepted")
	}
}

func TestMM1Wait(t *testing.T) {
	// λ=1, µ=2: W = ρ/(µ−λ) = 0.5.
	got, err := MM1Wait(1, 2)
	if err != nil || math.Abs(got-0.5) > 1e-15 {
		t.Errorf("W = %v, %v; want 0.5", got, err)
	}
	if _, err := MM1Wait(2, 2); err == nil {
		t.Error("λ = µ accepted")
	}
}

func TestMM1KDist(t *testing.T) {
	dist, err := MM1KDist(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// π ∝ (1, 0.5, 0.25): norm 1.75.
	want := []float64{4.0 / 7, 2.0 / 7, 1.0 / 7}
	for i := range want {
		if math.Abs(dist[i]-want[i]) > 1e-12 {
			t.Errorf("π[%d] = %v, want %v", i, dist[i], want[i])
		}
	}
	// ρ = 1: uniform.
	uni, err := MM1KDist(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range uni {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("critical M/M/1/K not uniform: %v", uni)
		}
	}
	// Overload is fine for a finite buffer.
	over, err := MM1KDist(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if over[2] < over[0] {
		t.Error("overloaded M/M/1/K should pile at the top")
	}
	if _, err := MM1KDist(0.5, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestMM1KBlocking(t *testing.T) {
	b, err := MM1KBlocking(0.5, 2)
	if err != nil || math.Abs(b-1.0/7) > 1e-12 {
		t.Errorf("blocking = %v, %v; want 1/7", b, err)
	}
}

func TestMG1QueueLength(t *testing.T) {
	// Exponential service (scv 1) reduces to M/M/1.
	mm1, _ := MM1QueueLength(0.6)
	mg1, err := MG1QueueLength(0.6, 1)
	if err != nil || math.Abs(mg1-mm1) > 1e-12 {
		t.Errorf("M/G/1(scv=1) = %v, M/M/1 = %v", mg1, mm1)
	}
	// Deterministic service (scv 0) halves the queueing term.
	det, _ := MG1QueueLength(0.6, 0)
	if det >= mg1 {
		t.Errorf("deterministic %v not below exponential %v", det, mg1)
	}
	if _, err := MG1QueueLength(1.2, 1); err == nil {
		t.Error("overload accepted")
	}
}

func TestMG1Wait(t *testing.T) {
	// Exponential service: E[S²] = 2/µ²; W = ρ/(µ−λ).
	lambda, mu := 1.0, 2.0
	w, err := MG1Wait(lambda, 1/mu, 2/(mu*mu))
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.5; math.Abs(w-want) > 1e-12 {
		t.Errorf("W = %v, want %v", w, want)
	}
	if _, err := MG1Wait(1, 0.5, 0.1); err == nil {
		t.Error("E[S²] < E[S]² accepted")
	}
}

func TestMG1VacationWait(t *testing.T) {
	// Exponential vacations of mean v add exactly v (residual of an
	// exponential is its mean).
	lambda, mu, v := 1.0, 2.0, 0.25
	base, _ := MG1Wait(lambda, 1/mu, 2/(mu*mu))
	w, err := MG1VacationWait(lambda, 1/mu, 2/(mu*mu), v, 2*v*v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-(base+v)) > 1e-12 {
		t.Errorf("vacation W = %v, want %v", w, base+v)
	}
	if _, err := MG1VacationWait(lambda, 1/mu, 2/(mu*mu), 0, 0); err == nil {
		t.Error("zero vacation accepted")
	}
}

func TestMG1VacationQueueLength(t *testing.T) {
	lambda, mu, v := 1.0, 2.0, 0.25
	w, _ := MG1VacationWait(lambda, 1/mu, 2/(mu*mu), v, 2*v*v)
	n, err := MG1VacationQueueLength(lambda, 1/mu, 2/(mu*mu), v, 2*v*v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n-lambda*(w+1/mu)) > 1e-12 {
		t.Error("Little inconsistency")
	}
}
