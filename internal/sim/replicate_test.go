package sim

import (
	"math"
	"reflect"
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/workload"
)

func replicationConfig(t *testing.T) Config {
	t.Helper()
	m, err := arrival.Poisson(0.5 * workload.ServiceRatePerMs)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Arrival:     m,
		ServiceRate: workload.ServiceRatePerMs,
		BGProb:      0.6,
		BGBuffer:    5,
		IdleRate:    workload.ServiceRatePerMs,
		Seed:        7,
		WarmupTime:  5e4,
		MeasureTime: 1e6,
	}
}

// TestRunReplicationsDeterministicAcrossWorkers pins the tentpole guarantee:
// parallel replications aggregate to exactly the serial result.
func TestRunReplicationsDeterministicAcrossWorkers(t *testing.T) {
	cfg := replicationConfig(t)
	serial, err := RunReplications(cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunReplications(cfg, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Mean, parallel.Mean) {
		t.Fatalf("means differ across worker counts:\nserial   %+v\nparallel %+v", serial.Mean, parallel.Mean)
	}
	if serial.QLenFGHalf != parallel.QLenFGHalf || serial.QLenBGHalf != parallel.QLenBGHalf ||
		serial.RespTimeFGHalf != parallel.RespTimeFGHalf {
		t.Fatalf("half-widths differ across worker counts")
	}
}

// TestRunReplicationsSeedStreams checks replication r is exactly Run with
// seed cfg.Seed + r, i.e. replications use distinct deterministic streams.
func TestRunReplicationsSeedStreams(t *testing.T) {
	cfg := replicationConfig(t)
	agg, err := RunReplications(cfg, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Reps != 3 || len(agg.Replications) != 3 {
		t.Fatalf("want 3 replications, got Reps=%d len=%d", agg.Reps, len(agg.Replications))
	}
	for r := 0; r < 3; r++ {
		repCfg := cfg
		repCfg.Seed = cfg.Seed + int64(r)
		want, err := Run(repCfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(agg.Replications[r].Metrics, want.Metrics) {
			t.Fatalf("replication %d does not match Run with seed %d", r, repCfg.Seed)
		}
		if r > 0 && reflect.DeepEqual(agg.Replications[r].Counters, agg.Replications[0].Counters) {
			t.Fatalf("replication %d produced identical counters to replication 0 — streams not independent", r)
		}
	}
	// The mean is the arithmetic mean of the per-replication values.
	wantMean := (agg.Replications[0].Metrics.QLenFG +
		agg.Replications[1].Metrics.QLenFG +
		agg.Replications[2].Metrics.QLenFG) / 3
	if math.Abs(agg.Mean.QLenFG-wantMean) > 1e-15*math.Abs(wantMean) {
		t.Fatalf("Mean.QLenFG = %g, want %g", agg.Mean.QLenFG, wantMean)
	}
}

func TestRunReplicationsSingleFallsBackToBatchCI(t *testing.T) {
	cfg := replicationConfig(t)
	agg, err := RunReplications(cfg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(agg.Mean, single.Metrics) {
		t.Fatalf("single-replication mean differs from Run")
	}
	if agg.QLenFGHalf != single.QLenFGHalf || agg.QLenBGHalf != single.QLenBGHalf {
		t.Fatalf("single-replication CI should fall back to batch means")
	}
}

func TestRunReplicationsValidatesReps(t *testing.T) {
	cfg := replicationConfig(t)
	if _, err := RunReplications(cfg, 0, 0); err == nil {
		t.Fatal("want error for reps=0")
	}
}

func TestTCritical95(t *testing.T) {
	if got := tCritical95(1); got != 12.706 {
		t.Fatalf("t(1) = %g", got)
	}
	if got := tCritical95(30); got != 2.042 {
		t.Fatalf("t(30) = %g", got)
	}
	if got := tCritical95(31); got != 1.96 {
		t.Fatalf("t(31) = %g", got)
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Fatal("t(0) should be NaN")
	}
}
