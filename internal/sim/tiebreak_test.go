package sim

import "testing"

// TestEventTieBreakOrder pins the event-loop dispatch order at equal
// timestamps: arrival before service completion before idle expiry before
// deadline renege. The order is semantically load-bearing — an FG arrival
// coinciding with a BG completion must be processed while the BG job is
// still in service, so it counts as delayed (WaitPFG); an arrival coinciding
// with an idle expiry must claim the server before the BG job does; and a
// renege tied with any other event must lose, so a BG job completing (or
// being started) at the very instant its deadline fires is served rather
// than discarded. Before PR 7 the order was implicit in the switch statement
// of the event loop; nextEvent makes it explicit.
func TestEventTieBreakOrder(t *testing.T) {
	cases := []struct {
		name                   string
		arr, svc, idle, renege float64
		wantT                  float64
		wantKind               eventKind
	}{
		{"arrival strictly first", 1, 2, 3, 4, 1, evArrival},
		{"service strictly first", 3, 1, 2, 4, 1, evService},
		{"idle strictly first", 3, 2, 1, 4, 1, evIdle},
		{"renege strictly first", 3, 2, 4, 1, 1, evRenege},
		{"four-way tie -> arrival", 5, 5, 5, 5, 5, evArrival},
		{"arrival/service tie -> arrival", 5, 5, 7, 7, 5, evArrival},
		{"arrival/idle tie -> arrival", 5, 9, 5, 9, 5, evArrival},
		{"service/idle tie -> service", 9, 5, 5, 9, 5, evService},
		{"service/renege tie -> service", 9, 5, 9, 5, 5, evService},
		{"idle/renege tie -> idle", 9, 9, 5, 5, 5, evIdle},
		{"arrival/renege tie -> arrival", 5, 9, 9, 5, 5, evArrival},
		{"no timers armed", inf, inf, inf, inf, inf, evArrival},
		{"service tied with unarmed", 5, 5, inf, inf, 5, evArrival},
		{"renege alone armed", inf, inf, inf, 5, 5, evRenege},
	}
	for _, tc := range cases {
		gotT, gotKind := nextEvent(tc.arr, tc.svc, tc.idle, tc.renege)
		if gotT != tc.wantT || gotKind != tc.wantKind {
			t.Errorf("%s: nextEvent(%g, %g, %g, %g) = (%g, %d), want (%g, %d)",
				tc.name, tc.arr, tc.svc, tc.idle, tc.renege, gotT, gotKind, tc.wantT, tc.wantKind)
		}
	}
}

// TestTieBreakDelayedFGSemantics exercises the arrival-before-service rule
// end to end on a forced tie: with the server completing a BG job at exactly
// the moment an FG job arrives, the arrival must be dispatched first and
// therefore counted as delayed. The tie is manufactured by driving the
// dispatch sequence of the real event loop — a runState whose timers are set
// by hand, processed through the same nextEvent the loop uses.
func TestTieBreakDelayedFGSemantics(t *testing.T) {
	// At t=5 both an FG arrival and the end of a BG service are pending.
	_, kind := nextEvent(5, 5, inf, inf)
	if kind != evArrival {
		t.Fatalf("arrival tied with BG completion dispatched as %d, want evArrival", kind)
	}
	// Processed in that order, the arrival sees state == stateServingBG and
	// is counted as delayed; dispatching the completion first would have
	// freed the server and lost the delay. The counting itself is covered by
	// the window-additivity and conformance suites; this test pins that the
	// dispatch order feeding it cannot silently flip.
	_, kind = nextEvent(5, 5, 5, inf)
	if kind != evArrival {
		t.Fatalf("three-way tie dispatched as %d, want evArrival", kind)
	}
	if _, kind = nextEvent(6, 5, 5, inf); kind != evService {
		t.Fatalf("service/idle tie dispatched as %d, want evService", kind)
	}
	// A renege tied with the completion of the job ahead of it must lose:
	// the queued BG job is still present after the completion is dispatched,
	// and the pooled renege timer is redrawn before it can fire.
	if _, kind = nextEvent(6, 5, inf, 5); kind != evService {
		t.Fatalf("service/renege tie dispatched as %d, want evService", kind)
	}
}
