package sim

import (
	"errors"
	"testing"

	"bgperf/internal/core"
)

// Scenario-expansion conformance tests (PR 10): the simulator's capacity
// modulation, util-threshold admission, and deadline reneging against the
// analytic chain, plus the degenerate φ = 1 identity.

// TestSimModFactorOneIdentical pins that an explicit ModFactor of 1 and an
// AdmitAll policy are byte-identical no-ops: the stretch multiplies service
// draws by 1/φ = 1 and the renege timer is never armed, so the run consumes
// the same random stream and reproduces the baseline result exactly.
func TestSimModFactorOneIdentical(t *testing.T) {
	base := Config{
		Arrival: poisson(t, 1), ServiceRate: 2, BGProb: 0.6, BGBuffer: 5,
		IdleRate: 2, Seed: 21, WarmupTime: 2000, MeasureTime: 2e5,
	}
	mod := base
	mod.ModFactor = 1
	mod.BGAdmit = core.AdmitAll
	rBase, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rMod, err := Run(mod)
	if err != nil {
		t.Fatal(err)
	}
	if rBase.Metrics != rMod.Metrics {
		t.Errorf("φ=1 metrics diverge from baseline:\n  base %+v\n  φ=1  %+v", rBase.Metrics, rMod.Metrics)
	}
	if rBase.Counters != rMod.Counters {
		t.Errorf("φ=1 counters diverge from baseline:\n  base %+v\n  φ=1  %+v", rBase.Counters, rMod.Counters)
	}
}

// TestModulatedAgreementWithAnalytic checks the stretched-service simulator
// against the modulated QBD chain.
func TestModulatedAgreementWithAnalytic(t *testing.T) {
	ap := poisson(t, 0.5)
	model, err := core.NewModel(core.Config{
		Arrival: ap, ServiceRate: 2, BGProb: 0.6, BGBuffer: 4, IdleRate: 1.5,
		ModFactor: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{
		Arrival: ap, ServiceRate: 2, BGProb: 0.6, BGBuffer: 4, IdleRate: 1.5,
		ModFactor: 0.6, Seed: 41, WarmupTime: 5000, MeasureTime: 8e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgree(t, "QLenFG", r.Metrics.QLenFG, ana.QLenFG, 3*r.QLenFGHalf, 0.05)
	checkAgree(t, "UtilFG", r.Metrics.UtilFG, ana.UtilFG, 0.01, 0.03)
	checkAgree(t, "UtilBG", r.Metrics.UtilBG, ana.UtilBG, 0.01, 0.05)
	checkAgree(t, "CompBG", r.Metrics.CompBG, ana.CompBG, 0.015, 0.03)
	checkAgree(t, "ThroughputBG", r.Metrics.ThroughputBG, ana.ThroughputBG, 0.005, 0.05)
	checkAgree(t, "WaitPFG", r.Metrics.WaitPFG, ana.WaitPFG, 0.01, 0.08)
}

// TestUtilThresholdAgreementWithAnalytic checks the FG-queue-gated admission
// simulator against the chain with the extended boundary.
func TestUtilThresholdAgreementWithAnalytic(t *testing.T) {
	ap := poisson(t, 0.8)
	model, err := core.NewModel(core.Config{
		Arrival: ap, ServiceRate: 2, BGProb: 0.7, BGBuffer: 3, IdleRate: 1.2,
		BGAdmit: core.AdmitUtilThreshold, FGThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{
		Arrival: ap, ServiceRate: 2, BGProb: 0.7, BGBuffer: 3, IdleRate: 1.2,
		BGAdmit: core.AdmitUtilThreshold, FGThreshold: 2,
		Seed: 43, WarmupTime: 5000, MeasureTime: 8e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgree(t, "QLenFG", r.Metrics.QLenFG, ana.QLenFG, 3*r.QLenFGHalf, 0.05)
	checkAgree(t, "QLenBG", r.Metrics.QLenBG, ana.QLenBG, 0.02, 0.05)
	checkAgree(t, "CompBG", r.Metrics.CompBG, ana.CompBG, 0.015, 0.03)
	checkAgree(t, "DropRateBG", r.Metrics.DropRateBG, ana.DropRateBG, 0.005, 0.08)
	checkAgree(t, "ThroughputBG", r.Metrics.ThroughputBG, ana.ThroughputBG, 0.005, 0.05)
}

// TestDeadlineAgreementWithAnalytic checks the pooled-renege-timer simulator
// against the chain's per-level renege kernels, including the new
// DeadlineMissBG metric and its flow balance.
func TestDeadlineAgreementWithAnalytic(t *testing.T) {
	ap := poisson(t, 0.6)
	model, err := core.NewModel(core.Config{
		Arrival: ap, ServiceRate: 2, BGProb: 0.6, BGBuffer: 4, IdleRate: 1,
		BGAdmit: core.AdmitDeadline, DeadlineRate: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{
		Arrival: ap, ServiceRate: 2, BGProb: 0.6, BGBuffer: 4, IdleRate: 1,
		BGAdmit: core.AdmitDeadline, DeadlineRate: 0.4,
		Seed: 47, WarmupTime: 5000, MeasureTime: 8e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgree(t, "QLenFG", r.Metrics.QLenFG, ana.QLenFG, 3*r.QLenFGHalf, 0.05)
	checkAgree(t, "QLenBG", r.Metrics.QLenBG, ana.QLenBG, 0.02, 0.05)
	checkAgree(t, "ThroughputBG", r.Metrics.ThroughputBG, ana.ThroughputBG, 0.005, 0.05)
	checkAgree(t, "DeadlineMissBG", r.Metrics.DeadlineMissBG, ana.DeadlineMissBG, 0.01, 0.08)
	if r.Counters.RenegedBG <= 0 {
		t.Errorf("deadline run reneged %d jobs, want > 0", r.Counters.RenegedBG)
	}
	// Sim-side flow balance: every admitted job either completes, reneges,
	// or is still in the system at the window edge (a bounded remainder).
	rem := r.Counters.AdmittedBG - r.Counters.CompletedBG - r.Counters.RenegedBG
	if rem < -int64(2*4) || rem > int64(2*4) {
		t.Errorf("admitted %d vs completed %d + reneged %d: remainder %d exceeds buffer bound",
			r.Counters.AdmittedBG, r.Counters.CompletedBG, r.Counters.RenegedBG, rem)
	}
}

// TestModulatedDeadlineAgreementWithAnalytic crosses both axes: modulated
// capacity with deadline reneging, exercising the mid-service rescale when a
// renege drains the BG queue under a stretched draw.
func TestModulatedDeadlineAgreementWithAnalytic(t *testing.T) {
	ap := poisson(t, 0.5)
	model, err := core.NewModel(core.Config{
		Arrival: ap, ServiceRate: 2, BGProb: 0.6, BGBuffer: 3, IdleRate: 1,
		ModFactor: 0.7, BGAdmit: core.AdmitDeadline, DeadlineRate: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{
		Arrival: ap, ServiceRate: 2, BGProb: 0.6, BGBuffer: 3, IdleRate: 1,
		ModFactor: 0.7, BGAdmit: core.AdmitDeadline, DeadlineRate: 0.5,
		Seed: 53, WarmupTime: 5000, MeasureTime: 8e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgree(t, "QLenFG", r.Metrics.QLenFG, ana.QLenFG, 3*r.QLenFGHalf, 0.05)
	checkAgree(t, "UtilFG", r.Metrics.UtilFG, ana.UtilFG, 0.01, 0.03)
	checkAgree(t, "ThroughputBG", r.Metrics.ThroughputBG, ana.ThroughputBG, 0.005, 0.06)
	checkAgree(t, "DeadlineMissBG", r.Metrics.DeadlineMissBG, ana.DeadlineMissBG, 0.015, 0.10)
}

// TestScenarioConfigValidationSim mirrors the core-side validation table for
// the simulator's copies of the scenario fields.
func TestScenarioConfigValidationSim(t *testing.T) {
	ap := poisson(t, 1)
	base := Config{Arrival: ap, ServiceRate: 2, BGProb: 0.5, BGBuffer: 2, IdleRate: 1, MeasureTime: 10}
	cases := []struct {
		name   string
		mut    func(*Config)
		field  string
		wantOK bool
	}{
		{"mod out of range", func(c *Config) { c.ModFactor = 1.5 }, "ModFactor", false},
		{"mod negative", func(c *Config) { c.ModFactor = -0.5 }, "ModFactor", false},
		{"threshold without policy", func(c *Config) { c.FGThreshold = 2 }, "FGThreshold", false},
		{"deadline policy without rate", func(c *Config) { c.BGAdmit = core.AdmitDeadline }, "DeadlineRate", false},
		{"rate without deadline policy", func(c *Config) { c.DeadlineRate = 0.5 }, "DeadlineRate", false},
		{"valid modulated util", func(c *Config) {
			c.ModFactor = 0.8
			c.BGAdmit = core.AdmitUtilThreshold
			c.FGThreshold = 1
		}, "", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			_, err := Run(cfg)
			if tc.wantOK {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			var verr *core.ValidationError
			if !errors.As(err, &verr) || verr.Field != tc.field {
				t.Fatalf("got %v, want ValidationError on %s", err, tc.field)
			}
		})
	}
}
