package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/mat"
	"bgperf/internal/phtype"
)

// matFromRowsT builds a matrix in tests.
func matFromRowsT(t testing.TB, rows [][]float64) *mat.Matrix {
	t.Helper()
	m, err := mat.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mustPoisson builds a Poisson MAP outside a testing context.
func mustPoisson(rate float64) *arrival.MAP {
	m, err := arrival.Poisson(rate)
	if err != nil {
		panic(err)
	}
	return m
}

func poisson(t testing.TB, rate float64) *arrival.MAP {
	t.Helper()
	m, err := arrival.Poisson(rate)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func softDev(t testing.TB, util, mu float64) *arrival.MAP {
	t.Helper()
	m, err := arrival.MMPP2(0.9e-6, 1.9e-6, 1.0e-4, 3.5e-2)
	if err != nil {
		t.Fatal(err)
	}
	m, err = m.WithRate(util * mu)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidation(t *testing.T) {
	ap := poisson(t, 1)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil arrival", Config{ServiceRate: 1, MeasureTime: 10}},
		{"no service", Config{Arrival: ap, MeasureTime: 10}},
		{"bad p", Config{Arrival: ap, ServiceRate: 2, BGProb: 2, MeasureTime: 10}},
		{"no idle rate", Config{Arrival: ap, ServiceRate: 2, BGBuffer: 2, MeasureTime: 10}},
		{"no window", Config{Arrival: ap, ServiceRate: 2}},
		{"negative warmup", Config{Arrival: ap, ServiceRate: 2, MeasureTime: 1, WarmupTime: -1}},
		{"one batch", Config{Arrival: ap, ServiceRate: 2, MeasureTime: 1, Batches: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := Config{
		Arrival: poisson(t, 1), ServiceRate: 2, BGProb: 0.5, BGBuffer: 5,
		IdleRate: 2, Seed: 99, WarmupTime: 100, MeasureTime: 5000,
	}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Metrics != r2.Metrics || r1.Counters != r2.Counters {
		t.Error("same seed produced different results")
	}
	cfg.Seed = 100
	r3, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Counters == r3.Counters {
		t.Error("different seeds produced identical counters")
	}
}

func TestMM1QueueLength(t *testing.T) {
	const rho = 0.5
	cfg := Config{
		Arrival: poisson(t, rho*2), ServiceRate: 2, Seed: 7,
		WarmupTime: 1000, MeasureTime: 200000,
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := rho / (1 - rho)
	if math.Abs(r.Metrics.QLenFG-want) > math.Max(3*r.QLenFGHalf, 0.03) {
		t.Errorf("QLenFG = %v ± %v, want %v", r.Metrics.QLenFG, r.QLenFGHalf, want)
	}
	if math.Abs(r.Metrics.UtilFG-rho) > 0.01 {
		t.Errorf("UtilFG = %v, want %v", r.Metrics.UtilFG, rho)
	}
}

func TestLittleLaw(t *testing.T) {
	cfg := Config{
		Arrival: poisson(t, 1), ServiceRate: 2, BGProb: 0.6, BGBuffer: 5,
		IdleRate: 2, Seed: 3, WarmupTime: 1000, MeasureTime: 100000,
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lambda := float64(r.Counters.CompletedFG) / r.SimTime
	little := lambda * r.Metrics.RespTimeFG
	if math.Abs(little-r.Metrics.QLenFG) > 0.05*r.Metrics.QLenFG {
		t.Errorf("λW = %v vs L = %v", little, r.Metrics.QLenFG)
	}
}

func TestBGFlowConservation(t *testing.T) {
	cfg := Config{
		Arrival: poisson(t, 1), ServiceRate: 2, BGProb: 0.8, BGBuffer: 4,
		IdleRate: 1, Seed: 11, WarmupTime: 500, MeasureTime: 50000,
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Counters
	if c.GeneratedBG != c.AdmittedBG+c.DroppedBG {
		t.Errorf("generated %d != admitted %d + dropped %d", c.GeneratedBG, c.AdmittedBG, c.DroppedBG)
	}
	// Completions may lag admissions by at most the jobs still in system
	// (window boundaries add a few more); the discrepancy must stay tiny.
	if diff := c.AdmittedBG - c.CompletedBG; diff < -10 || diff > 10 {
		t.Errorf("admitted %d vs completed %d", c.AdmittedBG, c.CompletedBG)
	}
}

// analyticCfg mirrors a sim config into the analytic model.
func analyticCfg(t testing.TB, cfg Config) core.Metrics {
	t.Helper()
	m, err := core.NewModel(core.Config{
		Arrival:     cfg.Arrival,
		ServiceRate: cfg.ServiceRate,
		BGProb:      cfg.BGProb,
		BGBuffer:    cfg.BGBuffer,
		IdleRate:    cfg.IdleRate,
		IdlePolicy:  cfg.IdlePolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return s.Metrics
}

func checkAgree(t *testing.T, name string, simV, anaV, absTol, relTol float64) {
	t.Helper()
	tol := math.Max(absTol, relTol*math.Abs(anaV))
	if math.Abs(simV-anaV) > tol {
		t.Errorf("%s: simulated %v vs analytic %v (tol %v)", name, simV, anaV, tol)
	}
}

func TestAgreementWithAnalyticPoisson(t *testing.T) {
	cfg := Config{
		Arrival: poisson(t, 1), ServiceRate: 2, BGProb: 0.6, BGBuffer: 5,
		IdleRate: 2, Seed: 21, WarmupTime: 2000, MeasureTime: 400000,
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ana := analyticCfg(t, cfg)
	checkAgree(t, "QLenFG", r.Metrics.QLenFG, ana.QLenFG, 3*r.QLenFGHalf, 0.02)
	checkAgree(t, "QLenBG", r.Metrics.QLenBG, ana.QLenBG, 3*r.QLenBGHalf, 0.02)
	checkAgree(t, "CompBG", r.Metrics.CompBG, ana.CompBG, 0.01, 0.02)
	checkAgree(t, "WaitPFG", r.Metrics.WaitPFG, ana.WaitPFG, 0.005, 0.05)
	checkAgree(t, "UtilFG", r.Metrics.UtilFG, ana.UtilFG, 0.005, 0.02)
	checkAgree(t, "UtilBG", r.Metrics.UtilBG, ana.UtilBG, 0.005, 0.03)
	checkAgree(t, "ProbIdleWait", r.Metrics.ProbIdleWait, ana.ProbIdleWait, 0.005, 0.03)
	checkAgree(t, "ProbEmpty", r.Metrics.ProbEmpty, ana.ProbEmpty, 0.005, 0.02)
	checkAgree(t, "RespTimeBG", r.Metrics.RespTimeBG, ana.RespTimeBG, 0.05, 0.03)
}

func TestAgreementWithAnalyticMMPP(t *testing.T) {
	if testing.Short() {
		t.Skip("long MMPP simulation")
	}
	// A bursty but fast-mixing MMPP: the paper's trace MMPPs switch phases
	// every ~10⁶ time units, far too slowly for a simulation to average over
	// in test time, so agreement of the chain semantics under correlated
	// arrivals is checked on a compressed-timescale MMPP instead.
	bursty, err := arrival.MMPP2(0.01, 0.02, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	mu := 2.0
	ap, err := bursty.WithRate(0.3 * mu)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Arrival: ap, ServiceRate: mu, BGProb: 0.6, BGBuffer: 5,
		IdleRate: mu, Seed: 5, WarmupTime: 1e4, MeasureTime: 2e6, Batches: 30,
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ana := analyticCfg(t, cfg)
	// Correlated arrivals converge slowly; compare within batch CIs.
	checkAgree(t, "QLenFG", r.Metrics.QLenFG, ana.QLenFG, 3*r.QLenFGHalf, 0.10)
	checkAgree(t, "QLenBG", r.Metrics.QLenBG, ana.QLenBG, 3*r.QLenBGHalf, 0.10)
	checkAgree(t, "CompBG", r.Metrics.CompBG, ana.CompBG, 0.02, 0.05)
	checkAgree(t, "WaitPFG", r.Metrics.WaitPFG, ana.WaitPFG, 0.004, 0.10)
	checkAgree(t, "UtilFG", r.Metrics.UtilFG, ana.UtilFG, 0.01, 0.05)
}

func TestAgreementPerPeriodPolicy(t *testing.T) {
	cfg := Config{
		Arrival: poisson(t, 1), ServiceRate: 2, BGProb: 0.9, BGBuffer: 4,
		IdleRate: 0.5, IdlePolicy: core.IdleWaitPerPeriod,
		Seed: 31, WarmupTime: 2000, MeasureTime: 400000,
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ana := analyticCfg(t, cfg)
	checkAgree(t, "QLenFG", r.Metrics.QLenFG, ana.QLenFG, 3*r.QLenFGHalf, 0.02)
	checkAgree(t, "CompBG", r.Metrics.CompBG, ana.CompBG, 0.01, 0.02)
	checkAgree(t, "UtilBG", r.Metrics.UtilBG, ana.UtilBG, 0.005, 0.03)
	checkAgree(t, "ProbIdleWait", r.Metrics.ProbIdleWait, ana.ProbIdleWait, 0.005, 0.05)
}

func TestDeterministicIdleWait(t *testing.T) {
	cfg := Config{
		Arrival: poisson(t, 1), ServiceRate: 2, BGProb: 0.6, BGBuffer: 5,
		IdleRate: 2, IdleDist: IdleDeterministic,
		Seed: 41, WarmupTime: 1000, MeasureTime: 100000,
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Metrics
	if m.QLenFG <= 0 || m.CompBG <= 0 || m.CompBG > 1 {
		t.Errorf("implausible metrics with deterministic idle wait: %+v", m)
	}
	// State probabilities must still partition.
	total := m.UtilFG + m.UtilBG + m.ProbIdleWait + m.ProbEmpty
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("state probabilities sum to %v", total)
	}
}

func TestNoBGWork(t *testing.T) {
	cfg := Config{
		Arrival: poisson(t, 1), ServiceRate: 2, Seed: 1,
		WarmupTime: 100, MeasureTime: 20000,
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Counters
	if c.GeneratedBG != 0 || c.CompletedBG != 0 || c.DelayedFG != 0 {
		t.Errorf("BG activity without BG work: %+v", c)
	}
	if r.Metrics.CompBG != 1 {
		t.Errorf("CompBG = %v, want 1", r.Metrics.CompBG)
	}
}

func BenchmarkSimulate(b *testing.B) {
	cfg := Config{
		Arrival: poisson(b, 1), ServiceRate: 2, BGProb: 0.6, BGBuffer: 5,
		IdleRate: 2, Seed: 1, WarmupTime: 100, MeasureTime: 10000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPHServiceAgreementWithAnalytic(t *testing.T) {
	svc, err := phtype.FitTwoMoment(0.5, 3) // bursty H2 service
	if err != nil {
		t.Fatal(err)
	}
	ap, err := arrival.Poisson(1.0)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.NewModel(core.Config{Arrival: ap, Service: svc, BGProb: 0.6, BGBuffer: 4, IdleRate: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Arrival: ap, Service: svc, BGProb: 0.6, BGBuffer: 4, IdleRate: 2,
		Seed: 17, WarmupTime: 2000, MeasureTime: 4e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, simV, anaV, absTol, relTol float64) {
		t.Helper()
		tol := math.Max(absTol, relTol*math.Abs(anaV))
		if math.Abs(simV-anaV) > tol {
			t.Errorf("%s: simulated %v vs analytic %v", name, simV, anaV)
		}
	}
	check("QLenFG", res.Metrics.QLenFG, s.QLenFG, 3*res.QLenFGHalf, 0.03)
	check("QLenBG", res.Metrics.QLenBG, s.QLenBG, 3*res.QLenBGHalf, 0.03)
	check("CompBG", res.Metrics.CompBG, s.CompBG, 0.01, 0.02)
	check("WaitPFG", res.Metrics.WaitPFG, s.WaitPFG, 0.005, 0.05)
	check("UtilBG", res.Metrics.UtilBG, s.UtilBG, 0.005, 0.05)
}

func TestQuickRandomConfigAgreement(t *testing.T) {
	// Randomized cross-validation: the analytic chain and the simulator
	// must agree on arbitrary (stable, Poisson-fed) configurations.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 1 + rng.Float64()*3
		rho := 0.2 + rng.Float64()*0.6
		cfg := Config{
			Arrival:     mustPoisson(rho * mu),
			ServiceRate: mu,
			BGProb:      rng.Float64(),
			BGBuffer:    1 + rng.Intn(5),
			IdleRate:    0.2*mu + rng.Float64()*2*mu,
			Seed:        seed,
			WarmupTime:  2000 / mu,
			MeasureTime: 3e5 / mu,
		}
		if rng.Intn(2) == 1 {
			cfg.IdlePolicy = core.IdleWaitPerPeriod
		}
		r, err := Run(cfg)
		if err != nil {
			return false
		}
		ana := analyticCfg(t, cfg)
		within := func(simV, anaV, absTol, relTol float64) bool {
			return math.Abs(simV-anaV) <= math.Max(absTol, relTol*math.Abs(anaV))
		}
		return within(r.Metrics.QLenFG, ana.QLenFG, math.Max(0.05, 4*r.QLenFGHalf), 0.08) &&
			within(r.Metrics.CompBG, ana.CompBG, 0.03, 0.05) &&
			within(r.Metrics.UtilBG, ana.UtilBG, 0.01, 0.10) &&
			within(r.Metrics.WaitPFG, ana.WaitPFG, 0.01, 0.10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestPHIdleAgreementWithAnalytic(t *testing.T) {
	// Erlang-4 idle wait: chain vs simulator.
	idle, err := phtype.Erlang(4, 8) // mean 0.5
	if err != nil {
		t.Fatal(err)
	}
	ap := poisson(t, 1)
	model, err := core.NewModel(core.Config{
		Arrival: ap, ServiceRate: 2, BGProb: 0.7, BGBuffer: 4, IdleWait: idle,
	})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{
		Arrival: ap, ServiceRate: 2, BGProb: 0.7, BGBuffer: 4, IdleWait: idle,
		Seed: 23, WarmupTime: 2000, MeasureTime: 4e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgree(t, "QLenFG", r.Metrics.QLenFG, ana.QLenFG, 3*r.QLenFGHalf, 0.03)
	checkAgree(t, "CompBG", r.Metrics.CompBG, ana.CompBG, 0.01, 0.02)
	checkAgree(t, "UtilBG", r.Metrics.UtilBG, ana.UtilBG, 0.005, 0.05)
	checkAgree(t, "ProbIdleWait", r.Metrics.ProbIdleWait, ana.ProbIdleWait, 0.005, 0.05)
	checkAgree(t, "WaitPFG", r.Metrics.WaitPFG, ana.WaitPFG, 0.005, 0.05)
}

func TestErlangIdleApproachesDeterministic(t *testing.T) {
	// The chain with a high-order Erlang idle wait must approach the
	// simulator's deterministic timer of the same mean.
	idle, err := phtype.Erlang(32, 64) // mean 0.5, SCV 1/32
	if err != nil {
		t.Fatal(err)
	}
	ap := poisson(t, 1)
	model, err := core.NewModel(core.Config{
		Arrival: ap, ServiceRate: 2, BGProb: 0.7, BGBuffer: 4, IdleWait: idle,
	})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	det, err := Run(Config{
		Arrival: ap, ServiceRate: 2, BGProb: 0.7, BGBuffer: 4,
		IdleRate: 2, IdleDist: IdleDeterministic,
		Seed: 29, WarmupTime: 2000, MeasureTime: 4e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgree(t, "CompBG", det.Metrics.CompBG, ana.CompBG, 0.02, 0.03)
	checkAgree(t, "QLenFG", det.Metrics.QLenFG, ana.QLenFG, 3*det.QLenFGHalf, 0.05)
}

func TestPHIdleValidation(t *testing.T) {
	idle, _ := phtype.Erlang(2, 4)
	ap := poisson(t, 1)
	if _, err := Run(Config{Arrival: ap, ServiceRate: 2, BGProb: 0.5, BGBuffer: 2,
		IdleRate: 1, IdleWait: idle, MeasureTime: 10}); err == nil {
		t.Error("both IdleRate and IdleWait accepted")
	}
	if _, err := Run(Config{Arrival: ap, ServiceRate: 2, BGProb: 0.5, BGBuffer: 2,
		IdleWait: idle, IdleDist: IdleDeterministic, MeasureTime: 10}); err == nil {
		t.Error("IdleWait with deterministic dist accepted")
	}
}

func TestServiceMAPAgreementWithAnalytic(t *testing.T) {
	// Correlated service times: chain vs simulator.
	mod, err := arrival.MMPP([]float64{3, 0.8},
		matFromRowsT(t, [][]float64{{-0.05, 0.05}, {0.03, -0.03}}))
	if err != nil {
		t.Fatal(err)
	}
	ap := poisson(t, 0.3)
	model, err := core.NewModel(core.Config{
		Arrival: ap, ServiceMAP: mod, BGProb: 0.6, BGBuffer: 3, IdleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{
		Arrival: ap, ServiceMAP: mod, BGProb: 0.6, BGBuffer: 3, IdleRate: 1,
		Seed: 37, WarmupTime: 5000, MeasureTime: 8e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgree(t, "QLenFG", r.Metrics.QLenFG, ana.QLenFG, 3*r.QLenFGHalf, 0.05)
	checkAgree(t, "CompBG", r.Metrics.CompBG, ana.CompBG, 0.015, 0.03)
	checkAgree(t, "UtilFG", r.Metrics.UtilFG, ana.UtilFG, 0.01, 0.03)
	checkAgree(t, "UtilBG", r.Metrics.UtilBG, ana.UtilBG, 0.01, 0.05)
	checkAgree(t, "WaitPFG", r.Metrics.WaitPFG, ana.WaitPFG, 0.01, 0.08)
}
