package sim

import (
	"math"
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/phtype"
)

// Warm-up boundary accounting regression tests.
//
// The measurement window is [measStart, measEnd) with measStart =
// WarmupTime: event counters (ArrivalsFG, AdmittedBG, DroppedBG,
// IdleExpirations, …) and the WaitPFG estimator count exactly the events
// with timestamp in the window, and queue-length integrals clip every
// inter-event interval to the window, so a job in service straddling
// measStart contributes only its post-warmup area.
//
// The tests pin this via exact window additivity: the event sequence of a
// run depends only on the seed, never on the window, so a run measuring
// [0, W) and a warm-started run measuring [W, W+T) (warm-up W) must
// together account for exactly what a single run measuring [0, W+T) sees —
// counter by counter, and area by area to float round-off. Any gating bug
// (an event counted during warm-up, a straddling interval double-counted or
// dropped, an off-by-one at a window edge) breaks the partition.

func addCounters(a, b Counters) Counters {
	a.ArrivalsFG += b.ArrivalsFG
	a.CompletedFG += b.CompletedFG
	a.DelayedFG += b.DelayedFG
	a.GeneratedBG += b.GeneratedBG
	a.AdmittedBG += b.AdmittedBG
	a.DroppedBG += b.DroppedBG
	a.CompletedBG += b.CompletedBG
	a.IdleExpirations += b.IdleExpirations
	a.RenegedBG += b.RenegedBG
	a.Events += b.Events
	return a
}

func TestWarmupWindowAdditivity(t *testing.T) {
	m, err := arrival.MMPP2(0.02, 0.05, 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := phtype.FitTwoMoment(1.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	idlePH, err := phtype.FitTwoMoment(0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	svcMAP, err := arrival.MMPP2(0.1, 0.2, 1.5, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"exp", Config{Arrival: m, ServiceRate: 1, BGProb: 0.6, BGBuffer: 4, IdleRate: 1}},
		{"ph-service", Config{Arrival: m, Service: ph, BGProb: 0.4, BGBuffer: 3, IdleRate: 2}},
		{"map-service", Config{Arrival: m, ServiceMAP: svcMAP, BGProb: 0.5, BGBuffer: 2, IdleRate: 1}},
		{"ph-idle", Config{Arrival: m, ServiceRate: 1, BGProb: 0.6, BGBuffer: 4, IdleWait: idlePH}},
		{"det-idle", Config{Arrival: m, ServiceRate: 1, BGProb: 0.6, BGBuffer: 4, IdleRate: 1, IdleDist: IdleDeterministic}},
		{"per-period", Config{Arrival: m, ServiceRate: 1, BGProb: 0.6, BGBuffer: 4, IdleRate: 1, IdlePolicy: core.IdleWaitPerPeriod}},
		// PR 10 scenario axes: the idle-wait timer, the stretched service
		// draws, and the pooled renege timer must all respect the window
		// boundary exactly — a straddling modulated service or a renege
		// landing on measStart partitions like any other event.
		{"modulated", Config{Arrival: m, ServiceRate: 1, BGProb: 0.6, BGBuffer: 4, IdleRate: 1, ModFactor: 0.6}},
		{"util-threshold", Config{Arrival: m, ServiceRate: 1, BGProb: 0.6, BGBuffer: 4, IdleRate: 1,
			BGAdmit: core.AdmitUtilThreshold, FGThreshold: 2}},
		{"deadline", Config{Arrival: m, ServiceRate: 1, BGProb: 0.6, BGBuffer: 4, IdleRate: 1,
			BGAdmit: core.AdmitDeadline, DeadlineRate: 0.3}},
		{"modulated-deadline", Config{Arrival: m, ServiceRate: 1, BGProb: 0.6, BGBuffer: 4, IdleRate: 1,
			ModFactor: 0.7, BGAdmit: core.AdmitDeadline, DeadlineRate: 0.5}},
		{"modulated-util-per-period", Config{Arrival: m, ServiceRate: 1, BGProb: 0.6, BGBuffer: 4, IdleRate: 1,
			ModFactor: 0.8, BGAdmit: core.AdmitUtilThreshold, FGThreshold: 1, IdlePolicy: core.IdleWaitPerPeriod}},
	}
	// Non-round window edges so batch boundaries and event times never
	// align by construction.
	const W, T = 3333.3, 7777.7
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				warm := tc.cfg
				warm.Seed = seed
				head, mid, full := warm, warm, warm
				head.WarmupTime, head.MeasureTime = 0, W
				mid.WarmupTime, mid.MeasureTime = W, T
				full.WarmupTime, full.MeasureTime = 0, W+T
				rHead, err := Run(head)
				if err != nil {
					t.Fatal(err)
				}
				rMid, err := Run(mid)
				if err != nil {
					t.Fatal(err)
				}
				rFull, err := Run(full)
				if err != nil {
					t.Fatal(err)
				}
				if sum := addCounters(rHead.Counters, rMid.Counters); sum != rFull.Counters {
					t.Errorf("seed %d: counters do not partition at the warm-up boundary:\n  [0,W)+[W,W+T) = %+v\n  [0,W+T)       = %+v",
						seed, sum, rFull.Counters)
				}
				areas := []struct {
					name             string
					head, mid, whole float64
				}{
					{"QLenFG", rHead.Metrics.QLenFG, rMid.Metrics.QLenFG, rFull.Metrics.QLenFG},
					{"QLenBG", rHead.Metrics.QLenBG, rMid.Metrics.QLenBG, rFull.Metrics.QLenBG},
					{"UtilFG", rHead.Metrics.UtilFG, rMid.Metrics.UtilFG, rFull.Metrics.UtilFG},
					{"UtilBG", rHead.Metrics.UtilBG, rMid.Metrics.UtilBG, rFull.Metrics.UtilBG},
					{"ProbIdleWait", rHead.Metrics.ProbIdleWait, rMid.Metrics.ProbIdleWait, rFull.Metrics.ProbIdleWait},
					{"ProbEmpty", rHead.Metrics.ProbEmpty, rMid.Metrics.ProbEmpty, rFull.Metrics.ProbEmpty},
				}
				for _, a := range areas {
					if d := math.Abs(a.head*W+a.mid*T-a.whole*(W+T)) / (W + T); d > 1e-9 {
						t.Errorf("seed %d: %s area leaks %g across the warm-up boundary", seed, a.name, d)
					}
				}
			}
		})
	}
}

// TestWarmupWindowAdditivityMulti is the same partition check for the
// two-priority simulator.
func TestWarmupWindowAdditivityMulti(t *testing.T) {
	m, err := arrival.MMPP2(0.02, 0.05, 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	base := MultiConfig{Arrival: m, ServiceRate: 1, BG1Prob: 0.3, BG2Prob: 0.4,
		BG1Buffer: 3, BG2Buffer: 4, IdleRate: 1}
	const W, T = 3333.3, 7777.7
	for seed := int64(1); seed <= 5; seed++ {
		base.Seed = seed
		head, mid, full := base, base, base
		head.WarmupTime, head.MeasureTime = 0, W
		mid.WarmupTime, mid.MeasureTime = W, T
		full.WarmupTime, full.MeasureTime = 0, W+T
		rHead, err := RunMulti(head)
		if err != nil {
			t.Fatal(err)
		}
		rMid, err := RunMulti(mid)
		if err != nil {
			t.Fatal(err)
		}
		rFull, err := RunMulti(full)
		if err != nil {
			t.Fatal(err)
		}
		sum := rHead.Counters
		sum.ArrivalsFG += rMid.Counters.ArrivalsFG
		sum.CompletedFG += rMid.Counters.CompletedFG
		sum.DelayedFG += rMid.Counters.DelayedFG
		sum.GeneratedBG1 += rMid.Counters.GeneratedBG1
		sum.GeneratedBG2 += rMid.Counters.GeneratedBG2
		sum.DroppedBG1 += rMid.Counters.DroppedBG1
		sum.DroppedBG2 += rMid.Counters.DroppedBG2
		sum.CompletedBG1 += rMid.Counters.CompletedBG1
		sum.CompletedBG2 += rMid.Counters.CompletedBG2
		sum.Events += rMid.Counters.Events
		if sum != rFull.Counters {
			t.Errorf("seed %d: multiclass counters do not partition at the warm-up boundary:\n  sum  %+v\n  full %+v",
				seed, sum, rFull.Counters)
		}
		for _, a := range [][3]float64{
			{rHead.QLenFG, rMid.QLenFG, rFull.QLenFG},
			{rHead.QLenBG1, rMid.QLenBG1, rFull.QLenBG1},
			{rHead.QLenBG2, rMid.QLenBG2, rFull.QLenBG2},
		} {
			if d := math.Abs(a[0]*W+a[1]*T-a[2]*(W+T)) / (W + T); d > 1e-9 {
				t.Errorf("seed %d: multiclass area leaks %g across the warm-up boundary", seed, d)
			}
		}
	}
}

// TestWarmupLongVsWarmStarted checks the statistical face of the same
// property: a run with a long warm-up must agree with a "warm-started" run
// over the identical measurement window — here literally the same window
// [W, W+T) measured by a run that burned a warm-up of W, versus the
// tail-window accounting of the full run. With identical seeds the two are
// the same sample path, so the in-window estimates must agree exactly, not
// just statistically.
func TestWarmupLongVsWarmStarted(t *testing.T) {
	m, err := arrival.MMPP2(0.02, 0.05, 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Arrival: m, ServiceRate: 1, BGProb: 0.6, BGBuffer: 4,
		IdleRate: 1, Seed: 77, WarmupTime: 50000, MeasureTime: 100000}
	long, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shifting the warm-up/measure split while keeping the total horizon
	// and the overlap window fixed must leave in-window rates consistent:
	// compare the long-warm-up run against the additivity reconstruction.
	head := cfg
	head.WarmupTime, head.MeasureTime = 0, cfg.WarmupTime
	rHead, err := Run(head)
	if err != nil {
		t.Fatal(err)
	}
	full := cfg
	full.WarmupTime, full.MeasureTime = 0, cfg.WarmupTime+cfg.MeasureTime
	rFull, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := addCounters(rHead.Counters, long.Counters), rFull.Counters; got != want {
		t.Errorf("long-warm-up window is not the tail of the full run:\n  head+tail %+v\n  full      %+v", got, want)
	}
	wantArea := rFull.Metrics.QLenFG*(cfg.WarmupTime+cfg.MeasureTime) - rHead.Metrics.QLenFG*cfg.WarmupTime
	if d := math.Abs(long.Metrics.QLenFG*cfg.MeasureTime-wantArea) / wantArea; d > 1e-12 {
		t.Errorf("straddling jobs leak area across measStart: rel diff %g", d)
	}
}
