package sim

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"bgperf/internal/core"
	"bgperf/internal/obs"
	"bgperf/internal/par"
)

// KeepReplicationsMax is the largest replication count for which
// RunReplications retains the full per-replication Results (counters, batch
// half-widths) in ReplicationResult.Replications. Beyond it only the compact
// RepMetrics rows are kept, so the memory of a replication study is bounded
// by ~100 bytes per replication regardless of scale.
const KeepReplicationsMax = 64

// ReplicationResult aggregates independent simulation replications of one
// configuration: the across-replication mean of every metric plus ~95%
// confidence half-widths on the headline queue lengths and the foreground
// response time.
type ReplicationResult struct {
	// Mean holds the arithmetic mean of each metric across replications.
	Mean core.Metrics `json:"mean"`
	// RespTimeFGP95 and RespTimeFGP99 are across-replication means of the
	// per-replication streaming percentile estimates (see Result).
	RespTimeFGP95 float64 `json:"respTimeFGP95"`
	RespTimeFGP99 float64 `json:"respTimeFGP99"`
	// Reps is the number of replications aggregated.
	Reps int `json:"reps"`
	// QLenFGHalf, QLenBGHalf, and RespTimeFGHalf are ±half-widths of ~95%
	// confidence intervals. With a single replication they fall back to that
	// run's batch-means half-widths (zero for RespTimeFGHalf); with two or
	// more they are Student-t intervals over the per-replication means.
	QLenFGHalf     float64 `json:"qlenFGHalf"`
	QLenBGHalf     float64 `json:"qlenBGHalf"`
	RespTimeFGHalf float64 `json:"respTimeFGHalf"`
	// RepMetrics holds the per-replication metric rows in seed order —
	// compact (no counters or batch detail) and always populated, so
	// dispersion diagnostics work at any replication count. Excluded from
	// JSON output to keep it compact.
	RepMetrics []core.Metrics `json:"-"`
	// Replications are the underlying full per-replication results, in seed
	// order. Populated only when Reps <= KeepReplicationsMax; large studies
	// keep just RepMetrics. Excluded from JSON output.
	Replications []*Result `json:"-"`
}

// RunReplications simulates reps independent replications of cfg across a
// bounded pool of at most workers goroutines (0: all cores) and aggregates
// them. Replication r runs with seed cfg.Seed + r, so replication 0
// reproduces Run(cfg) exactly and the aggregate is bit-identical for every
// worker count. Within each replication the event, arrival, and service
// random streams are derived from the replication seed through SplitMix64
// (see seed.go), which keeps every stream of every replication pairwise
// distinct — consecutive-integer replication seeds cannot collide into each
// other's streams.
func RunReplications(cfg Config, reps, workers int) (*ReplicationResult, error) {
	return RunReplicationsOpts(nil, cfg, reps, workers, nil)
}

// RunReplicationsOpts is RunReplications with an optional context for
// cancellation and an optional obs.Observer receiving per-run event counters
// and replication progress (nil is valid for both). Cancellation stops
// unstarted replications immediately and aborts in-flight ones at their next
// event-loop poll, returning a context.Canceled-wrapped error.
func RunReplicationsOpts(ctx context.Context, cfg Config, reps, workers int, o obs.Observer) (*ReplicationResult, error) {
	if reps < 1 {
		return nil, core.NewValidationError(ErrConfig, "Replications", "need at least 1 replication, got %d", reps)
	}
	agg := &ReplicationResult{Reps: reps, RepMetrics: make([]core.Metrics, reps)}
	keep := reps <= KeepReplicationsMax
	if keep {
		agg.Replications = make([]*Result, reps)
	}
	// Per-replication percentile estimates, aggregated after the fan-out in
	// seed order so the result is bit-identical for every worker count.
	p95s := make([]float64, reps)
	p99s := make([]float64, reps)
	var done atomic.Int64
	err := par.ForCtx(ctx, workers, reps, func(r int) error {
		repCfg := cfg
		repCfg.Seed = cfg.Seed + int64(r)
		res, err := RunOpts(ctx, repCfg, o)
		if err != nil {
			return fmt.Errorf("replication %d (seed %d): %w", r, repCfg.Seed, err)
		}
		agg.RepMetrics[r] = res.Metrics
		p95s[r], p99s[r] = res.RespTimeFGP95, res.RespTimeFGP99
		if keep {
			agg.Replications[r] = res
		}
		if o != nil {
			o.ReplicationDone(int(done.Add(1)), reps)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r := range agg.RepMetrics {
		addMetrics(&agg.Mean, agg.RepMetrics[r])
		agg.RespTimeFGP95 += p95s[r]
		agg.RespTimeFGP99 += p99s[r]
	}
	scaleMetrics(&agg.Mean, 1/float64(reps))
	agg.RespTimeFGP95 /= float64(reps)
	agg.RespTimeFGP99 /= float64(reps)
	if reps == 1 {
		agg.QLenFGHalf = agg.Replications[0].QLenFGHalf
		agg.QLenBGHalf = agg.Replications[0].QLenBGHalf
		return agg, nil
	}
	agg.QLenFGHalf = tHalfWidth(agg.RepMetrics, func(m *core.Metrics) float64 { return m.QLenFG })
	agg.QLenBGHalf = tHalfWidth(agg.RepMetrics, func(m *core.Metrics) float64 { return m.QLenBG })
	agg.RespTimeFGHalf = tHalfWidth(agg.RepMetrics, func(m *core.Metrics) float64 { return m.RespTimeFG })
	return agg, nil
}

// addMetrics accumulates src into dst field by field.
func addMetrics(dst *core.Metrics, src core.Metrics) {
	dst.QLenFG += src.QLenFG
	dst.QLenBG += src.QLenBG
	dst.CompBG += src.CompBG
	dst.WaitPFG += src.WaitPFG
	dst.UtilFG += src.UtilFG
	dst.UtilBG += src.UtilBG
	dst.ProbIdleWait += src.ProbIdleWait
	dst.ProbEmpty += src.ProbEmpty
	dst.ThroughputFG += src.ThroughputFG
	dst.ThroughputBG += src.ThroughputBG
	dst.GenRateBG += src.GenRateBG
	dst.DropRateBG += src.DropRateBG
	dst.RespTimeFG += src.RespTimeFG
	dst.RespTimeBG += src.RespTimeBG
	dst.DeadlineMissBG += src.DeadlineMissBG
}

// scaleMetrics multiplies every field of m by c.
func scaleMetrics(m *core.Metrics, c float64) {
	m.QLenFG *= c
	m.QLenBG *= c
	m.CompBG *= c
	m.WaitPFG *= c
	m.UtilFG *= c
	m.UtilBG *= c
	m.ProbIdleWait *= c
	m.ProbEmpty *= c
	m.ThroughputFG *= c
	m.ThroughputBG *= c
	m.GenRateBG *= c
	m.DropRateBG *= c
	m.RespTimeFG *= c
	m.RespTimeBG *= c
	m.DeadlineMissBG *= c
}

// t95 holds two-sided 95% Student-t critical values for 1..30 degrees of
// freedom; beyond that the normal value 1.96 is close enough.
var t95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tCritical95(df int) float64 {
	if df < 1 {
		return math.NaN()
	}
	if df <= len(t95) {
		return t95[df-1]
	}
	return 1.96
}

// tHalfWidth returns the ±half-width of a 95% Student-t confidence interval
// for the mean of value(m) across the replication metric rows.
func tHalfWidth(rows []core.Metrics, value func(*core.Metrics) float64) float64 {
	n := float64(len(rows))
	var mean float64
	for i := range rows {
		mean += value(&rows[i])
	}
	mean /= n
	var ss float64
	for i := range rows {
		d := value(&rows[i]) - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / (n - 1))
	return tCritical95(len(rows)-1) * sd / math.Sqrt(n)
}
