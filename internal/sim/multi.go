package sim

import (
	"errors"
	"fmt"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/rng"
)

// ErrMultiConfig reports an invalid two-priority simulation configuration.
var ErrMultiConfig = errors.New("sim: invalid multiclass configuration")

// MultiConfig parameterizes a two-priority background simulation, mirroring
// multiclass.Config: class 1 is served before class 2 whenever the idle wait
// expires.
type MultiConfig struct {
	// Arrival is the foreground arrival process.
	Arrival *arrival.MAP
	// ServiceRate is the exponential service rate for all classes.
	ServiceRate float64
	// BG1Prob and BG2Prob are the per-completion spawn probabilities.
	BG1Prob, BG2Prob float64
	// BG1Buffer and BG2Buffer are the per-class buffer capacities.
	BG1Buffer, BG2Buffer int
	// IdleRate is the idle-wait rate.
	IdleRate float64
	// IdlePolicy selects per-job or per-period re-arming (zero: per-job).
	IdlePolicy core.IdleWaitPolicy

	// Seed, WarmupTime, MeasureTime as in Config.
	Seed        int64
	WarmupTime  float64
	MeasureTime float64
}

func (c MultiConfig) withDefaults() MultiConfig {
	if c.IdlePolicy == 0 {
		c.IdlePolicy = core.IdleWaitPerJob
	}
	return c
}

func (c MultiConfig) validate() error {
	switch {
	case c.Arrival == nil:
		return fmt.Errorf("%w: nil arrival process", ErrMultiConfig)
	case c.ServiceRate <= 0:
		return fmt.Errorf("%w: service rate %g", ErrMultiConfig, c.ServiceRate)
	case c.BG1Prob < 0 || c.BG2Prob < 0 || c.BG1Prob+c.BG2Prob > 1:
		return fmt.Errorf("%w: spawn probabilities (%g, %g)", ErrMultiConfig, c.BG1Prob, c.BG2Prob)
	case c.BG1Buffer < 0 || c.BG2Buffer < 0:
		return fmt.Errorf("%w: negative buffer", ErrMultiConfig)
	case (c.BG1Prob > 0 && c.BG1Buffer > 0 || c.BG2Prob > 0 && c.BG2Buffer > 0) && c.IdleRate <= 0:
		return fmt.Errorf("%w: idle rate required with background work", ErrMultiConfig)
	case c.MeasureTime <= 0:
		return fmt.Errorf("%w: measurement window %g", ErrMultiConfig, c.MeasureTime)
	case c.WarmupTime < 0:
		return fmt.Errorf("%w: negative warmup", ErrMultiConfig)
	}
	return nil
}

// MultiCounters are raw event counts of a two-priority run.
type MultiCounters struct {
	ArrivalsFG   int64
	CompletedFG  int64
	DelayedFG    int64
	GeneratedBG1 int64
	GeneratedBG2 int64
	DroppedBG1   int64
	DroppedBG2   int64
	CompletedBG1 int64
	CompletedBG2 int64
	Events       int64 // total events processed inside the window
}

// MultiResult holds measured estimates of a two-priority run. The metric
// names mirror multiclass.Metrics; RespTimeFG and its percentiles are
// simulator extras the analytic model does not expose.
type MultiResult struct {
	QLenFG, QLenBG1, QLenBG2     float64
	CompBG1, CompBG2, WaitPFG    float64
	UtilFG, UtilBG1, UtilBG2     float64
	ProbIdleWait, ProbEmpty      float64
	ThroughputBG1, ThroughputBG2 float64
	// RespTimeFG is the mean foreground response time; RespTimeFGP95 and
	// RespTimeFGP99 are streaming P² percentile estimates (0 when no FG job
	// completed in-window).
	RespTimeFG    float64
	RespTimeFGP95 float64
	RespTimeFGP99 float64
	Counters      MultiCounters
	SimTime       float64
}

type multiState int

const (
	mIdle multiState = iota
	mIdleWait
	mServingFG
	mServingBG1
	mServingBG2
)

// multiRunState is the flattened event-loop state of the two-priority
// simulator — the same machinery as runState (inline xoshiro256** stream,
// branch-based window clipping, ring-buffer FIFO), with per-class background
// queues instead of one.
type multiRunState struct {
	rng       rng.Rand
	sampler   *arrival.Sampler
	svcScale  float64 // 1/ServiceRate
	idleScale float64 // 1/IdleRate
	perPeriod bool

	now        float64
	nextArr    float64
	serviceEnd float64
	idleExpiry float64
	state      multiState
	fgQueue    int
	bg1, bg2   int // waiting per class (excluding in service)
	fgTimes    fifo

	measStart float64
	measEnd   float64
	fgArea    float64
	bg1Area   float64
	bg2Area   float64
	utilFG    float64
	utilB1    float64
	utilB2    float64
	idleW     float64
	emptyT    float64
	respSum   float64
	p95, p99  p2Quantile
	counters  MultiCounters
}

func (rs *multiRunState) accumulate(next float64) {
	lo, hi := rs.now, next
	if lo < rs.measStart {
		lo = rs.measStart
	}
	if hi > rs.measEnd {
		hi = rs.measEnd
	}
	if hi <= lo {
		return
	}
	span := hi - lo
	nf, n1, n2 := float64(rs.fgQueue), float64(rs.bg1), float64(rs.bg2)
	switch rs.state {
	case mServingFG:
		nf++
		rs.utilFG += span
	case mServingBG1:
		n1++
		rs.utilB1 += span
	case mServingBG2:
		n2++
		rs.utilB2 += span
	case mIdleWait:
		rs.idleW += span
	default:
		rs.emptyT += span
	}
	rs.fgArea += nf * span
	rs.bg1Area += n1 * span
	rs.bg2Area += n2 * span
}

func (rs *multiRunState) startFG() {
	rs.fgQueue--
	rs.state = mServingFG
	rs.serviceEnd = rs.now + rs.rng.ExpFloat64()*rs.svcScale
	rs.idleExpiry = inf
}

func (rs *multiRunState) startBG() {
	if rs.bg1 > 0 {
		rs.bg1--
		rs.state = mServingBG1
	} else {
		rs.bg2--
		rs.state = mServingBG2
	}
	rs.serviceEnd = rs.now + rs.rng.ExpFloat64()*rs.svcScale
	rs.idleExpiry = inf
}

func (rs *multiRunState) armIdleOrRest() {
	rs.serviceEnd = inf
	if rs.bg1+rs.bg2 > 0 {
		rs.state = mIdleWait
		rs.idleExpiry = rs.now + rs.rng.ExpFloat64()*rs.idleScale
	} else {
		rs.state = mIdle
		rs.idleExpiry = inf
	}
}

// RunMulti simulates the two-priority system.
func RunMulti(cfg MultiConfig) (*MultiResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Stream seeds derive from cfg.Seed via SplitMix64 exactly as in Run
	// (see seed.go). The first three stream indices belong to the
	// single-class simulator; skipping them keeps a RunMulti at some seed
	// from sharing randomness with a Run at the same seed (the two are
	// compared against each other in cross-checks).
	seeds := newSeedStream(cfg.Seed)
	for i := 0; i < 3; i++ {
		seeds.next()
	}
	var rs multiRunState
	rs.rng = rng.New(seeds.next())
	rs.sampler = arrival.NewSampler(cfg.Arrival, seeds.next())
	rs.svcScale = 1 / cfg.ServiceRate
	rs.idleScale = 1 / cfg.IdleRate
	rs.perPeriod = cfg.IdlePolicy == core.IdleWaitPerPeriod
	rs.state = mIdle
	rs.nextArr = rs.sampler.Next()
	rs.serviceEnd = inf
	rs.idleExpiry = inf
	rs.fgTimes.init(fifoInitialCap)
	rs.measStart = cfg.WarmupTime
	rs.measEnd = cfg.WarmupTime + cfg.MeasureTime
	rs.p95.initP2(0.95)
	rs.p99.initP2(0.99)

	for rs.now < rs.measEnd {
		// Same tie-break as Run: arrival, then service completion, then
		// idle expiry at equal timestamps (see nextEvent).
		next, kind := nextEvent(rs.nextArr, rs.serviceEnd, rs.idleExpiry, inf)
		rs.accumulate(next)
		rs.now = next
		in := next >= rs.measStart && next < rs.measEnd
		if in {
			rs.counters.Events++
		}
		switch kind {
		case evArrival:
			if in {
				rs.counters.ArrivalsFG++
				if rs.state == mServingBG1 || rs.state == mServingBG2 {
					rs.counters.DelayedFG++
				}
			}
			rs.fgQueue++
			rs.fgTimes.push(next)
			if rs.state == mIdle || rs.state == mIdleWait {
				rs.startFG()
			}
			rs.nextArr = next + rs.sampler.Next()

		case evService:
			switch rs.state {
			case mServingFG:
				t0 := rs.fgTimes.pop()
				if in {
					rs.counters.CompletedFG++
					resp := next - t0
					rs.respSum += resp
					// Same P² decimation as Run (see p2Stride).
					if rs.counters.CompletedFG&(p2Stride-1) == 1 {
						rs.p95.add(resp)
						rs.p99.add(resp)
					}
				}
				rs.spawnBG(in, cfg)
				if rs.fgQueue > 0 {
					rs.startFG()
				} else {
					rs.armIdleOrRest()
				}
			case mServingBG1, mServingBG2:
				if in {
					if rs.state == mServingBG1 {
						rs.counters.CompletedBG1++
					} else {
						rs.counters.CompletedBG2++
					}
				}
				if rs.fgQueue > 0 {
					rs.startFG()
				} else if rs.bg1+rs.bg2 > 0 && rs.perPeriod {
					rs.startBG()
				} else {
					rs.armIdleOrRest()
				}
			default:
				return nil, fmt.Errorf("sim: multiclass completion in state %d", rs.state)
			}

		default:
			if rs.state != mIdleWait || rs.bg1+rs.bg2 == 0 {
				return nil, fmt.Errorf("sim: multiclass idle expiry in state %d", rs.state)
			}
			rs.startBG()
		}
	}

	res := &MultiResult{Counters: rs.counters}
	t := cfg.MeasureTime
	res.SimTime = t
	res.QLenFG = rs.fgArea / t
	res.QLenBG1 = rs.bg1Area / t
	res.QLenBG2 = rs.bg2Area / t
	res.UtilFG = rs.utilFG / t
	res.UtilBG1 = rs.utilB1 / t
	res.UtilBG2 = rs.utilB2 / t
	res.ProbIdleWait = rs.idleW / t
	res.ProbEmpty = rs.emptyT / t
	res.ThroughputBG1 = float64(res.Counters.CompletedBG1) / t
	res.ThroughputBG2 = float64(res.Counters.CompletedBG2) / t
	res.CompBG1, res.CompBG2 = 1, 1
	if g := res.Counters.GeneratedBG1; g > 0 {
		res.CompBG1 = float64(g-res.Counters.DroppedBG1) / float64(g)
	}
	if g := res.Counters.GeneratedBG2; g > 0 {
		res.CompBG2 = float64(g-res.Counters.DroppedBG2) / float64(g)
	}
	if res.Counters.ArrivalsFG > 0 {
		res.WaitPFG = float64(res.Counters.DelayedFG) / float64(res.Counters.ArrivalsFG)
	}
	if res.Counters.CompletedFG > 0 {
		res.RespTimeFG = rs.respSum / float64(res.Counters.CompletedFG)
		res.RespTimeFGP95 = rs.p95.Value()
		res.RespTimeFGP99 = rs.p99.Value()
	}
	return res, nil
}

// spawnBG flips the class coin after a foreground completion and admits or
// drops the spawned job against its class buffer.
func (rs *multiRunState) spawnBG(in bool, cfg MultiConfig) {
	u := rs.rng.Float64()
	switch {
	case u < cfg.BG1Prob:
		if in {
			rs.counters.GeneratedBG1++
		}
		if rs.bg1 < cfg.BG1Buffer {
			rs.bg1++
		} else if in {
			rs.counters.DroppedBG1++
		}
	case u < cfg.BG1Prob+cfg.BG2Prob:
		if in {
			rs.counters.GeneratedBG2++
		}
		if rs.bg2 < cfg.BG2Buffer {
			rs.bg2++
		} else if in {
			rs.counters.DroppedBG2++
		}
	}
}
