package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
)

// ErrMultiConfig reports an invalid two-priority simulation configuration.
var ErrMultiConfig = errors.New("sim: invalid multiclass configuration")

// MultiConfig parameterizes a two-priority background simulation, mirroring
// multiclass.Config: class 1 is served before class 2 whenever the idle wait
// expires.
type MultiConfig struct {
	// Arrival is the foreground arrival process.
	Arrival *arrival.MAP
	// ServiceRate is the exponential service rate for all classes.
	ServiceRate float64
	// BG1Prob and BG2Prob are the per-completion spawn probabilities.
	BG1Prob, BG2Prob float64
	// BG1Buffer and BG2Buffer are the per-class buffer capacities.
	BG1Buffer, BG2Buffer int
	// IdleRate is the idle-wait rate.
	IdleRate float64
	// IdlePolicy selects per-job or per-period re-arming (zero: per-job).
	IdlePolicy core.IdleWaitPolicy

	// Seed, WarmupTime, MeasureTime as in Config.
	Seed        int64
	WarmupTime  float64
	MeasureTime float64
}

func (c MultiConfig) withDefaults() MultiConfig {
	if c.IdlePolicy == 0 {
		c.IdlePolicy = core.IdleWaitPerJob
	}
	return c
}

func (c MultiConfig) validate() error {
	switch {
	case c.Arrival == nil:
		return fmt.Errorf("%w: nil arrival process", ErrMultiConfig)
	case c.ServiceRate <= 0:
		return fmt.Errorf("%w: service rate %g", ErrMultiConfig, c.ServiceRate)
	case c.BG1Prob < 0 || c.BG2Prob < 0 || c.BG1Prob+c.BG2Prob > 1:
		return fmt.Errorf("%w: spawn probabilities (%g, %g)", ErrMultiConfig, c.BG1Prob, c.BG2Prob)
	case c.BG1Buffer < 0 || c.BG2Buffer < 0:
		return fmt.Errorf("%w: negative buffer", ErrMultiConfig)
	case (c.BG1Prob > 0 && c.BG1Buffer > 0 || c.BG2Prob > 0 && c.BG2Buffer > 0) && c.IdleRate <= 0:
		return fmt.Errorf("%w: idle rate required with background work", ErrMultiConfig)
	case c.MeasureTime <= 0:
		return fmt.Errorf("%w: measurement window %g", ErrMultiConfig, c.MeasureTime)
	case c.WarmupTime < 0:
		return fmt.Errorf("%w: negative warmup", ErrMultiConfig)
	}
	return nil
}

// MultiCounters are raw event counts of a two-priority run.
type MultiCounters struct {
	ArrivalsFG   int64
	CompletedFG  int64
	DelayedFG    int64
	GeneratedBG1 int64
	GeneratedBG2 int64
	DroppedBG1   int64
	DroppedBG2   int64
	CompletedBG1 int64
	CompletedBG2 int64
}

// MultiResult holds measured estimates of a two-priority run. The metric
// names mirror multiclass.Metrics.
type MultiResult struct {
	QLenFG, QLenBG1, QLenBG2     float64
	CompBG1, CompBG2, WaitPFG    float64
	UtilFG, UtilBG1, UtilBG2     float64
	ProbIdleWait, ProbEmpty      float64
	ThroughputBG1, ThroughputBG2 float64
	Counters                     MultiCounters
	SimTime                      float64
}

type multiState int

const (
	mIdle multiState = iota
	mIdleWait
	mServingFG
	mServingBG1
	mServingBG2
)

// RunMulti simulates the two-priority system.
func RunMulti(cfg MultiConfig) (*MultiResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Stream seeds derive from cfg.Seed via SplitMix64 exactly as in Run
	// (see seed.go). The first three stream indices belong to the
	// single-class simulator; skipping them keeps a RunMulti at some seed
	// from sharing randomness with a Run at the same seed (the two are
	// compared against each other in cross-checks).
	seeds := newSeedStream(cfg.Seed)
	for i := 0; i < 3; i++ {
		seeds.next()
	}
	var (
		rng     = rand.New(rand.NewSource(seeds.next()))
		sampler = arrival.NewSampler(cfg.Arrival, seeds.next())

		now        float64
		state      = mIdle
		fgQueue    int
		bg1, bg2   int // waiting per class (excluding in service)
		nextArr    = sampler.Next()
		serviceEnd = math.MaxFloat64
		idleExp    = math.MaxFloat64

		measStart = cfg.WarmupTime
		measEnd   = cfg.WarmupTime + cfg.MeasureTime

		res                      MultiResult
		fgArea, bg1Area, bg2Area float64
		utilFG, utilB1, utilB2   float64
		idleW, emptyT            float64
	)
	expo := func(rate float64) float64 { return -math.Log(1-rng.Float64()) / rate }
	counts := func() (nf, n1, n2 float64) {
		nf, n1, n2 = float64(fgQueue), float64(bg1), float64(bg2)
		switch state {
		case mServingFG:
			nf++
		case mServingBG1:
			n1++
		case mServingBG2:
			n2++
		}
		return nf, n1, n2
	}
	accumulate := func(dt float64) {
		lo := math.Max(now, measStart)
		hi := math.Min(now+dt, measEnd)
		if hi <= lo {
			return
		}
		span := hi - lo
		nf, n1, n2 := counts()
		fgArea += nf * span
		bg1Area += n1 * span
		bg2Area += n2 * span
		switch state {
		case mServingFG:
			utilFG += span
		case mServingBG1:
			utilB1 += span
		case mServingBG2:
			utilB2 += span
		case mIdleWait:
			idleW += span
		case mIdle:
			emptyT += span
		}
	}
	inWindow := func() bool { return now >= measStart && now < measEnd }
	startFG := func() {
		fgQueue--
		state = mServingFG
		serviceEnd = now + expo(cfg.ServiceRate)
		idleExp = math.MaxFloat64
	}
	startBG := func() {
		if bg1 > 0 {
			bg1--
			state = mServingBG1
		} else {
			bg2--
			state = mServingBG2
		}
		serviceEnd = now + expo(cfg.ServiceRate)
		idleExp = math.MaxFloat64
	}
	armIdleOrRest := func() {
		serviceEnd = math.MaxFloat64
		if bg1+bg2 > 0 {
			state = mIdleWait
			idleExp = now + expo(cfg.IdleRate)
		} else {
			state = mIdle
			idleExp = math.MaxFloat64
		}
	}
	spawnBG := func() {
		u := rng.Float64()
		switch {
		case u < cfg.BG1Prob:
			if inWindow() {
				res.Counters.GeneratedBG1++
			}
			if bg1 < cfg.BG1Buffer {
				bg1++
			} else if inWindow() {
				res.Counters.DroppedBG1++
			}
		case u < cfg.BG1Prob+cfg.BG2Prob:
			if inWindow() {
				res.Counters.GeneratedBG2++
			}
			if bg2 < cfg.BG2Buffer {
				bg2++
			} else if inWindow() {
				res.Counters.DroppedBG2++
			}
		}
	}

	for now < measEnd {
		next := math.Min(nextArr, math.Min(serviceEnd, idleExp))
		accumulate(next - now)
		now = next
		switch {
		case now == nextArr:
			if inWindow() {
				res.Counters.ArrivalsFG++
				if state == mServingBG1 || state == mServingBG2 {
					res.Counters.DelayedFG++
				}
			}
			fgQueue++
			if state == mIdle || state == mIdleWait {
				startFG()
			}
			nextArr = now + sampler.Next()

		case now == serviceEnd:
			switch state {
			case mServingFG:
				if inWindow() {
					res.Counters.CompletedFG++
				}
				spawnBG()
				if fgQueue > 0 {
					startFG()
				} else {
					armIdleOrRest()
				}
			case mServingBG1, mServingBG2:
				if inWindow() {
					if state == mServingBG1 {
						res.Counters.CompletedBG1++
					} else {
						res.Counters.CompletedBG2++
					}
				}
				if fgQueue > 0 {
					startFG()
				} else if bg1+bg2 > 0 && cfg.IdlePolicy == core.IdleWaitPerPeriod {
					startBG()
				} else {
					armIdleOrRest()
				}
			default:
				return nil, fmt.Errorf("sim: multiclass completion in state %d", state)
			}

		default:
			if state != mIdleWait || bg1+bg2 == 0 {
				return nil, fmt.Errorf("sim: multiclass idle expiry in state %d", state)
			}
			startBG()
		}
	}

	t := cfg.MeasureTime
	res.SimTime = t
	res.QLenFG = fgArea / t
	res.QLenBG1 = bg1Area / t
	res.QLenBG2 = bg2Area / t
	res.UtilFG = utilFG / t
	res.UtilBG1 = utilB1 / t
	res.UtilBG2 = utilB2 / t
	res.ProbIdleWait = idleW / t
	res.ProbEmpty = emptyT / t
	res.ThroughputBG1 = float64(res.Counters.CompletedBG1) / t
	res.ThroughputBG2 = float64(res.Counters.CompletedBG2) / t
	res.CompBG1, res.CompBG2 = 1, 1
	if g := res.Counters.GeneratedBG1; g > 0 {
		res.CompBG1 = float64(g-res.Counters.DroppedBG1) / float64(g)
	}
	if g := res.Counters.GeneratedBG2; g > 0 {
		res.CompBG2 = float64(g-res.Counters.DroppedBG2) / float64(g)
	}
	if res.Counters.ArrivalsFG > 0 {
		res.WaitPFG = float64(res.Counters.DelayedFG) / float64(res.Counters.ArrivalsFG)
	}
	return &res, nil
}
