package sim

// fifo is a reusable FIFO of float64 timestamps backed by a power-of-two
// ring buffer. It replaces the earlier `queue = append(queue, x)` /
// `queue = queue[1:]` idiom, which leaks capacity: reslicing from the front
// never returns space to the runtime, so append keeps outgrowing the backing
// array and every simulated job eventually costs an amortized reallocation.
// The ring reuses its slots forever; it grows (doubling) only when the
// population in system genuinely exceeds the current capacity, so a run's
// allocation count is independent of its length once the high-water mark is
// reached (pinned by TestRingReuse and the AllocsPerRun gates).
type fifo struct {
	buf  []float64
	mask int // len(buf) - 1; len(buf) is a power of two
	head int // index of the oldest element
	n    int // population
}

// fifoInitialCap is the initial ring capacity (slots). It is sized so that
// queue populations seen in practice never force a mid-run grow — growth
// during measurement would make allocation counts depend on run length.
const fifoInitialCap = 4096

// init sizes the ring to capacity c rounded up to a power of two (minimum 8),
// reusing the existing backing array when it is already large enough.
func (f *fifo) init(c int) {
	size := 8
	for size < c {
		size <<= 1
	}
	if len(f.buf) < size {
		f.buf = make([]float64, size)
	}
	f.mask = len(f.buf) - 1
	f.head = 0
	f.n = 0
}

// push appends x at the tail, growing the ring if it is full.
func (f *fifo) push(x float64) {
	if f.n == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.n)&f.mask] = x
	f.n++
}

// pop removes and returns the oldest element. It must not be called on an
// empty ring (the simulator pops exactly once per in-service completion).
func (f *fifo) pop() float64 {
	x := f.buf[f.head]
	f.head = (f.head + 1) & f.mask
	f.n--
	return x
}

// len returns the current population.
func (f *fifo) len() int { return f.n }

// cap returns the current slot capacity (for tests).
func (f *fifo) cap() int { return len(f.buf) }

// grow doubles the backing array, unrolling the ring into index order.
func (f *fifo) grow() {
	next := make([]float64, 2*len(f.buf))
	for i := 0; i < f.n; i++ {
		next[i] = f.buf[(f.head+i)&f.mask]
	}
	f.buf = next
	f.mask = len(next) - 1
	f.head = 0
}
