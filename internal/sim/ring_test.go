package sim

import (
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/rng"
)

// TestRingFIFOOrder checks the ring preserves FIFO order across wrap-around
// and growth.
func TestRingFIFOOrder(t *testing.T) {
	var f fifo
	f.init(8)
	next, expect := 0.0, 0.0
	// Interleave pushes and pops with a drifting population so head wraps
	// many times and the buffer grows twice.
	r := rng.New(3)
	for step := 0; step < 100000; step++ {
		if r.Float64() < 0.55 || f.len() == 0 {
			f.push(next)
			next++
		} else {
			if got := f.pop(); got != expect {
				t.Fatalf("step %d: pop = %g, want %g", step, got, expect)
			}
			expect++
		}
	}
	for f.len() > 0 {
		if got := f.pop(); got != expect {
			t.Fatalf("drain: pop = %g, want %g", got, expect)
		}
		expect++
	}
}

// TestRingGrowth checks capacity rounds up to powers of two and doubles
// exactly when the population exceeds it.
func TestRingGrowth(t *testing.T) {
	var f fifo
	f.init(5)
	if f.cap() != 8 {
		t.Fatalf("init(5) capacity = %d, want 8", f.cap())
	}
	for i := 0; i < 8; i++ {
		f.push(float64(i))
	}
	if f.cap() != 8 {
		t.Fatalf("capacity grew early: %d", f.cap())
	}
	f.push(8)
	if f.cap() != 16 {
		t.Fatalf("capacity after overflow = %d, want 16", f.cap())
	}
	for i := 0; i <= 8; i++ {
		if got := f.pop(); got != float64(i) {
			t.Fatalf("pop after growth = %g, want %d", got, i)
		}
	}
	// init on a grown ring reuses the backing array.
	buf := &f.buf[0]
	f.init(4)
	if &f.buf[0] != buf {
		t.Fatal("init reallocated a sufficiently large buffer")
	}
}

// TestRingReuseAcrossLongRun is the property test for the capacity-leak fix:
// the old `fgTimes = append(fgTimes, t); fgTimes = fgTimes[1:]` FIFO grew
// its backing array with every job ever simulated, so a 4x longer run did
// proportionally more allocating. The ring must instead reach its high-water
// capacity and then stay put: simulating 4x the horizon may not change the
// buffer capacity (the workload's queue population is what sizes it, not the
// run length), for both the single-class and two-priority simulators.
func TestRingReuseAcrossLongRun(t *testing.T) {
	m, err := arrival.MMPP2(0.02, 0.05, 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(horizon float64) int {
		var rs runState
		rs.setup(Config{
			Arrival: m, ServiceRate: 1, BGProb: 0.6, BGBuffer: 4, IdleRate: 1,
			Seed: 11, MeasureTime: horizon, Batches: 20,
		}.withDefaults())
		for rs.now < rs.measEnd {
			next, kind := nextEvent(rs.nextArr, rs.serviceEnd, rs.idleExpiry, inf)
			rs.now = next
			switch kind {
			case evArrival:
				rs.fgQueue++
				rs.fgTimes.push(next)
				if rs.state == stateIdle || rs.state == stateIdleWait {
					rs.startFG()
				}
				rs.nextArr = next + rs.sampler.Next()
			case evService:
				if rs.state == stateServingFG {
					rs.fgTimes.pop()
					if rs.rng.Float64() < rs.bgProb && rs.bgQueue < rs.bgBuffer {
						rs.bgQueue++
					}
				}
				if rs.fgQueue > 0 {
					rs.startFG()
				} else {
					rs.armIdleOrRest()
				}
			default:
				rs.startBG()
			}
		}
		return rs.fgTimes.cap()
	}
	short, long := run(20000), run(80000)
	if short != long {
		t.Errorf("ring capacity depends on run length: %d slots at T, %d at 4T", short, long)
	}
	if short != fifoInitialCap {
		t.Errorf("ring grew past its initial capacity (%d -> %d): initial sizing too small for this workload", fifoInitialCap, short)
	}
}
