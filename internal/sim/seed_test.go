package sim

import (
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/rng"
)

// streamSeedsFor reproduces Run's stream derivation for one replication:
// the event-RNG, arrival-sampler, and service-MAP-sampler seeds of a run
// with the given seed, in consumption order.
func streamSeedsFor(seed int64) [3]int64 {
	s := newSeedStream(seed)
	return [3]int64{s.next(), s.next(), s.next()}
}

// TestStreamSeedsPairwiseDistinct is the regression test for the
// replication-seed derivation: across a replication study (seeds
// base..base+reps-1) every stream seed of every replication must be
// distinct from every other, for any base seed.
//
// The pre-fix derivation (event rng Seed^0x5eed, arrival sampler Seed,
// service sampler Seed^0x5e41ce) fails this at reps = 16385 with base seed
// 0: 7917^0x5eed == 16384, so replication 7917's event RNG and replication
// 16384's arrival sampler were seeded identically, correlating two
// nominally independent replications. The SplitMix64 derivation maps
// replication r, stream k to mix(base + r + k·γ) with mix a bijection, so a
// collision would need r1 − r2 ≡ (k2 − k1)·γ (mod 2^64) — impossible for
// any realistic replication count.
func TestStreamSeedsPairwiseDistinct(t *testing.T) {
	bases := []int64{0, 1, 7, -3, 0x5e00, 1 << 40}
	for _, base := range bases {
		const reps = 1000
		seen := make(map[int64][2]int, 3*reps)
		for r := int64(0); r < reps; r++ {
			for k, s := range streamSeedsFor(base + r) {
				if prev, dup := seen[s]; dup {
					t.Fatalf("base %d: stream seed %d collides: (rep %d, stream %d) and (rep %d, stream %d)",
						base, s, prev[0], prev[1], r, k)
				}
				seen[s] = [2]int{int(r), k}
			}
		}
	}

	// The adversarial replication count that broke the XOR-constant scheme.
	const reps = 16385
	seen := make(map[int64][2]int, 3*reps)
	for r := int64(0); r < reps; r++ {
		for k, s := range streamSeedsFor(r) {
			if prev, dup := seen[s]; dup {
				t.Fatalf("stream seed %d collides: (rep %d, stream %d) and (rep %d, stream %d)",
					s, prev[0], prev[1], r, k)
			}
			seen[s] = [2]int{int(r), k}
		}
	}
}

// TestStreamSeedsDistinctFromMulti pins the domain separation between the
// single-class and two-priority simulators: RunMulti at a seed must not
// share stream seeds with Run at the same seed (the two are cross-checked
// against each other at equal seeds).
func TestStreamSeedsDistinctFromMulti(t *testing.T) {
	for _, seed := range []int64{0, 1, 99, -17} {
		single := streamSeedsFor(seed)
		s := newSeedStream(seed)
		for i := 0; i < 3; i++ {
			s.next()
		}
		multi := [2]int64{s.next(), s.next()}
		for _, a := range single {
			for _, b := range multi {
				if a == b {
					t.Fatalf("seed %d: single-class and multiclass simulators share stream seed %d", seed, a)
				}
			}
		}
	}
}

// TestRunReplicationZeroMatchesRun pins the documented seed mapping after
// the SplitMix64 change: replication 0 of RunReplications still reproduces
// Run(cfg) bit for bit, and replication r reproduces Run at Seed + r.
func TestRunReplicationZeroMatchesRun(t *testing.T) {
	m, err := arrival.MMPP2(0.02, 0.05, 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Arrival: m, ServiceRate: 1, BGProb: 0.5, BGBuffer: 3,
		IdleRate: 1, Seed: 42, WarmupTime: 200, MeasureTime: 20000,
	}
	agg, err := RunReplications(cfg, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		repCfg := cfg
		repCfg.Seed = cfg.Seed + int64(r)
		want, err := Run(repCfg)
		if err != nil {
			t.Fatal(err)
		}
		if *agg.Replications[r] != *want {
			t.Errorf("replication %d does not reproduce Run with seed %d", r, repCfg.Seed)
		}
	}
}

// TestStreamSeedsFeedDistinctStreams spot-checks that the derived seeds
// actually decorrelate the generators they feed: the first draws of the
// three streams of one run, and of neighbouring replications, differ.
func TestStreamSeedsFeedDistinctStreams(t *testing.T) {
	draw := func(seed int64) float64 {
		r := rng.New(seed)
		return r.Float64()
	}
	seen := make(map[float64]bool)
	for r := int64(0); r < 100; r++ {
		for _, s := range streamSeedsFor(r) {
			v := draw(s)
			if seen[v] {
				t.Fatalf("replications share a first draw %v", v)
			}
			seen[v] = true
		}
	}
}

// TestSeedStreamMatchesReference pins the derived stream-seed sequence
// bit-for-bit against an inline transcription of the SplitMix64 mixer that
// seed.go carried before the derivation moved into internal/rng (PR 7).
// Every pinned simulation output in the repository embeds these seeds; any
// drift would silently re-seed every stream of every run.
func TestSeedStreamMatchesReference(t *testing.T) {
	legacy := func(seed int64, k int) int64 {
		state := uint64(seed)
		var z uint64
		for i := 0; i < k; i++ {
			state += 0x9e3779b97f4a7c15
			z = state
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
		}
		return int64(z)
	}
	for _, seed := range []int64{0, 1, 42, -7, 1 << 50} {
		s := newSeedStream(seed)
		for k := 1; k <= 8; k++ {
			if got, want := s.next(), legacy(seed, k); got != want {
				t.Fatalf("seed %d stream index %d: got %#x, want %#x", seed, k, got, want)
			}
		}
	}
}
