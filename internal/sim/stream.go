package sim

import "sort"

// Streaming estimators for per-run and across-replication statistics.
//
// The simulator used to keep every foreground response time (implicitly, via
// the batch sums) and RunReplications used to retain every per-replication
// Result to compute Student-t intervals at the end. Both are O(n) memory in
// quantities that PR 7 pushes into the millions. The two estimators here are
// O(1): Welford's online moment recurrence (Welford, Technometrics 1962) for
// means and variances, and the P² algorithm (Jain & Chlamtac, CACM 1985) for
// quantiles, which tracks five markers that approximate the p/2, p and
// (1+p)/2 quantiles and repositions them with a piecewise-parabolic
// interpolation after every observation.

// p2Stride is the decimation factor of the response-time percentile
// estimators: the P² markers are fed every p2Stride-th in-window foreground
// completion. Systematic sampling of a stationary stream keeps the quantile
// estimates unbiased (every p2Stride-th response time has the same marginal
// law as the full stream) while bounding the estimators' cost to a fixed
// fraction of the event loop; any realistic measurement window still feeds
// them thousands of samples. Must be a power of two.
const p2Stride = 4

// welford accumulates count, mean, and centered second moment online. The
// zero value is an empty accumulator.
type welford struct {
	n    int64
	mean float64
	m2   float64
}

// add folds one observation into the accumulator.
func (w *welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Mean returns the running mean (0 with no observations).
func (w *welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 observations).
func (w *welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// p2Quantile estimates a single quantile online with the P² algorithm:
// five markers whose heights bracket the target quantile and whose positions
// are nudged toward ideal (quantile-proportional) positions after every
// observation, interpolating heights with the piecewise-parabolic (P²)
// formula, or linearly when the parabola would leave the bracket. Storage is
// constant regardless of observation count.
type p2Quantile struct {
	p     float64
	n     int64
	q     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based observation counts)
	want  [5]float64 // desired marker positions
	dwant [5]float64 // desired-position increments per observation
}

// initP2 prepares the estimator for quantile p in (0, 1).
func (e *p2Quantile) initP2(p float64) {
	e.p = p
	e.n = 0
	e.dwant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
}

// add folds one observation into the estimator.
//
// The bookkeeping exploits two P² invariants to stay off the original
// paper's index loops: marker 0 never moves (pos[0] ≡ 1, and its desired
// increment is 0), and marker 4 tracks the observation count exactly
// (pos[4] ≡ n ≡ want[4], so it can never need adjustment). Only markers
// 1..3 carry live positions, desired positions, and adjustment checks.
func (e *p2Quantile) add(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := 0; i < 5; i++ {
				e.pos[i] = float64(i + 1)
				e.want[i] = 1 + 4*e.dwant[i]
			}
		}
		return
	}
	e.n++
	// Locate the cell containing x (clamping the extremes) and bump the
	// positions of the markers above it. For the high quantiles the
	// simulator tracks, the first comparison is strongly predictable.
	if x < e.q[2] {
		if x < e.q[1] {
			if x < e.q[0] {
				e.q[0] = x
			}
			e.pos[1]++
		}
		e.pos[2]++
		e.pos[3]++
	} else if x < e.q[3] {
		e.pos[3]++
	} else if x > e.q[4] {
		e.q[4] = x
	}
	e.pos[4] = float64(e.n)
	e.want[1] += e.dwant[1]
	e.want[2] += e.dwant[2]
	e.want[3] += e.dwant[3]
	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			qp := e.parabolic(i, s)
			if e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the piecewise-parabolic height update for marker i moved by
// d ∈ {−1, +1}.
func (e *p2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height update when the parabola overshoots a
// neighboring marker.
func (e *p2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact quantile of the sorted sample
// (0 with none).
func (e *p2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		s := make([]float64, e.n)
		copy(s, e.q[:e.n])
		sort.Float64s(s)
		idx := int(e.p * float64(e.n))
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	return e.q[2]
}
