package sim

import (
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/phtype"
	"bgperf/internal/raceflag"
)

// Steady-state allocation gates for the event loop.
//
// A run allocates a fixed setup cost (samplers, compiled distributions,
// batch arrays, the ring buffer, the Result) and must allocate nothing per
// event: before PR 7 the fgTimes append/reslice FIFO leaked capacity, so
// allocations grew with the horizon (~275k allocs for the validation
// benchmark). The gates pin both faces of "steady-state zero": the absolute
// per-run budget is small, and — the sharper invariant — the count is
// IDENTICAL for a 4x longer run, which processes ~4x the events. Any
// per-event allocation, however small, breaks the equality.

// allocBudget is the per-run setup allowance. A run currently costs ~30
// allocations (samplers, tables, batch slices, ring, Result); the headroom
// keeps the gate from tripping on toolchain noise while still catching any
// per-event regression via the equality check.
const allocBudget = 64

func allocGateConfigs(t *testing.T) map[string]Config {
	t.Helper()
	m, err := arrival.MMPP2(0.02, 0.05, 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := phtype.FitTwoMoment(1.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	svcMAP, err := arrival.MMPP2(0.1, 0.2, 1.5, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Config{
		"exp":         {Arrival: m, ServiceRate: 1, BGProb: 0.6, BGBuffer: 4, IdleRate: 1, Seed: 5},
		"ph-service":  {Arrival: m, Service: ph, BGProb: 0.4, BGBuffer: 3, IdleRate: 2, Seed: 5},
		"map-service": {Arrival: m, ServiceMAP: svcMAP, BGProb: 0.5, BGBuffer: 2, IdleRate: 1, Seed: 5},
	}
}

func TestAllocsSteadyStateRun(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	for name, cfg := range allocGateConfigs(t) {
		t.Run(name, func(t *testing.T) {
			measure := func(horizon float64) float64 {
				c := cfg
				c.WarmupTime, c.MeasureTime = 500, horizon
				return testing.AllocsPerRun(5, func() {
					if _, err := Run(c); err != nil {
						t.Fatal(err)
					}
				})
			}
			short := measure(20000)
			long := measure(80000)
			if short != long {
				t.Errorf("allocations grow with the horizon: %.0f at T, %.0f at 4T — the event loop allocates in steady state", short, long)
			}
			if short > allocBudget {
				t.Errorf("per-run setup allocations %.0f exceed budget %d", short, allocBudget)
			}
		})
	}
}

func TestAllocsSteadyStateRunMulti(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	m, err := arrival.MMPP2(0.02, 0.05, 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MultiConfig{
		Arrival: m, ServiceRate: 1, BG1Prob: 0.3, BG2Prob: 0.3,
		BG1Buffer: 3, BG2Buffer: 4, IdleRate: 1, Seed: 5,
	}
	measure := func(horizon float64) float64 {
		c := cfg
		c.WarmupTime, c.MeasureTime = 500, horizon
		return testing.AllocsPerRun(5, func() {
			if _, err := RunMulti(c); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(20000)
	long := measure(80000)
	if short != long {
		t.Errorf("multiclass allocations grow with the horizon: %.0f at T, %.0f at 4T", short, long)
	}
	if short > allocBudget {
		t.Errorf("multiclass per-run setup allocations %.0f exceed budget %d", short, allocBudget)
	}
}
