package sim

import (
	"math"
	"sort"
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/rng"
)

// TestWelfordMatchesTwoPass checks the online moments against a naive
// two-pass computation on the same data.
func TestWelfordMatchesTwoPass(t *testing.T) {
	r := rng.New(17)
	const n = 50000
	xs := make([]float64, n)
	var w welford
	for i := range xs {
		// Heavy-ish tail to stress cancellation: sum of two exponentials
		// squared.
		x := r.ExpFloat64() + r.ExpFloat64()*r.ExpFloat64()
		xs[i] = x
		w.add(x)
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	variance := ss / (n - 1)
	if d := math.Abs(w.Mean() - mean); d > 1e-12*math.Abs(mean) {
		t.Errorf("Welford mean %v, two-pass %v", w.Mean(), mean)
	}
	if d := math.Abs(w.Var() - variance); d > 1e-9*variance {
		t.Errorf("Welford variance %v, two-pass %v", w.Var(), variance)
	}
}

// exactQuantile returns the empirical p-quantile of xs (sorted copy).
func exactQuantile(xs []float64, p float64) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	idx := int(p * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// TestP2MatchesExactQuantiles feeds the P² estimator the full stream and
// compares against the exact sorted-sample quantile for several
// distribution shapes and quantiles. P² is an approximation; the agreement
// bound (1.5% of the exact value, or absolute 0.02 near zero) is far tighter
// than any use the simulator puts the estimate to.
func TestP2MatchesExactQuantiles(t *testing.T) {
	const n = 200000
	gens := []struct {
		name string
		gen  func(r *rng.Rand) float64
	}{
		{"exponential", func(r *rng.Rand) float64 { return r.ExpFloat64() }},
		{"uniform", func(r *rng.Rand) float64 { return r.Float64() }},
		{"heavy-tail", func(r *rng.Rand) float64 { x := r.ExpFloat64(); return x * x }},
		{"shifted-bimodal", func(r *rng.Rand) float64 {
			if r.Float64() < 0.3 {
				return 10 + r.ExpFloat64()
			}
			return r.ExpFloat64()
		}},
	}
	for _, g := range gens {
		for _, p := range []float64{0.5, 0.95, 0.99} {
			r := rng.New(1234)
			var est p2Quantile
			est.initP2(p)
			xs := make([]float64, n)
			for i := range xs {
				x := g.gen(&r)
				xs[i] = x
				est.add(x)
			}
			want := exactQuantile(xs, p)
			got := est.Value()
			if d := math.Abs(got - want); d > 0.015*math.Abs(want)+0.02 {
				t.Errorf("%s p=%g: P² = %v, exact = %v (diff %v)", g.name, p, got, want, d)
			}
		}
	}
}

// TestP2SmallSampleFallback checks the exact-sorted fallback below five
// observations.
func TestP2SmallSampleFallback(t *testing.T) {
	var est p2Quantile
	est.initP2(0.95)
	if est.Value() != 0 {
		t.Fatalf("empty estimator Value = %v, want 0", est.Value())
	}
	for _, x := range []float64{3, 1, 2} {
		est.add(x)
	}
	if got := est.Value(); got != 3 {
		t.Fatalf("3-sample p95 = %v, want max 3", got)
	}
}

// TestRunPercentilesAgainstMM1 is the end-to-end check of the surfaced
// percentile metrics: with Poisson arrivals, exponential service, and no
// background work the system is an M/M/1 queue, whose stationary response
// time is exponential with rate µ−λ, so the p-quantile is −ln(1−p)/(µ−λ).
// The estimates come from the decimated P² stream (see p2Stride), so the
// tolerance is statistical, not exact.
func TestRunPercentilesAgainstMM1(t *testing.T) {
	m, err := arrival.Poisson(0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Arrival: m, ServiceRate: 1, Seed: 9,
		WarmupTime: 5000, MeasureTime: 400000,
	})
	if err != nil {
		t.Fatal(err)
	}
	const diff = 0.5 // µ − λ
	wantP95 := -math.Log(0.05) / diff
	wantP99 := -math.Log(0.01) / diff
	if d := math.Abs(res.RespTimeFGP95-wantP95) / wantP95; d > 0.05 {
		t.Errorf("M/M/1 p95 response = %v, want %v (rel diff %v)", res.RespTimeFGP95, wantP95, d)
	}
	if d := math.Abs(res.RespTimeFGP99-wantP99) / wantP99; d > 0.08 {
		t.Errorf("M/M/1 p99 response = %v, want %v (rel diff %v)", res.RespTimeFGP99, wantP99, d)
	}
	if res.RespTimeFGP95 <= res.Metrics.RespTimeFG || res.RespTimeFGP99 <= res.RespTimeFGP95 {
		t.Errorf("percentile ordering violated: mean %v, p95 %v, p99 %v",
			res.Metrics.RespTimeFG, res.RespTimeFGP95, res.RespTimeFGP99)
	}
}

// TestReplicationPercentileAggregation checks RunReplications surfaces the
// across-replication mean of the per-replication percentile estimates and
// populates the compact RepMetrics rows at any replication count.
func TestReplicationPercentileAggregation(t *testing.T) {
	m, err := arrival.Poisson(0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Arrival: m, ServiceRate: 1, Seed: 4, WarmupTime: 100, MeasureTime: 20000}
	agg, err := RunReplications(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wantP95, wantP99 float64
	for r := 0; r < 3; r++ {
		repCfg := cfg
		repCfg.Seed = cfg.Seed + int64(r)
		res, err := Run(repCfg)
		if err != nil {
			t.Fatal(err)
		}
		wantP95 += res.RespTimeFGP95 / 3
		wantP99 += res.RespTimeFGP99 / 3
		if agg.RepMetrics[r] != res.Metrics {
			t.Errorf("RepMetrics[%d] does not match Run at seed %d", r, repCfg.Seed)
		}
	}
	if agg.RespTimeFGP95 != wantP95 || agg.RespTimeFGP99 != wantP99 {
		t.Errorf("aggregated percentiles (%v, %v), want (%v, %v)",
			agg.RespTimeFGP95, agg.RespTimeFGP99, wantP95, wantP99)
	}
}
