package sim

import "bgperf/internal/rng"

// Random-stream seed derivation.
//
// A single Run owns several independent random streams: the event RNG
// (service draws, BG spawn coin flips, idle waits), the arrival-process
// sampler, and — when ServiceMAP is set — the correlated-service sampler.
// RunReplications additionally fans one base seed out over replications as
// cfg.Seed + r (the documented mapping: replication r is exactly Run with
// seed cfg.Seed + r).
//
// The streams were originally separated by XORing the run seed with fixed
// constants (Seed^0x5eed, Seed^0x5e41ce). Combined with consecutive-integer
// replication seeds that scheme is collision-prone: XOR by a constant moves a
// seed by at most the constant's magnitude, so the event-RNG seed of one
// replication can equal the arrival-sampler seed of another once the
// replication count (or the gap between two base seeds in concurrent
// studies) reaches that magnitude — e.g. with base seed 0 the old event seed
// of replication 7917 (7917^0x5eed = 16384) collided with the arrival seed
// of replication 16384, feeding two "independent" replications byte-identical
// randomness.
//
// seedStream fixes this by deriving every per-run stream seed through
// SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
// generators", OOPSLA 2014): successive outputs of a counter-based avalanche
// mixer seeded with the run seed. The mixer is a bijection of the 2^64 state
// space evaluated at state+k·γ for stream index k, so two stream seeds
// collide only when (r1 − r2) ≡ (k2 − k1)·γ (mod 2^64) — with γ odd and
// astronomically large relative to any replication count, the streams of all
// replications of a study are pairwise distinct (pinned by
// TestStreamSeedsPairwiseDistinct).
//
// The mixer itself lives in internal/rng (rng.SplitMix) since PR 7, shared
// with the generator-seeding path; the derived seed sequence is bit-for-bit
// identical to the pre-rng layout (pinned by TestSeedStreamMatchesReference).

// seedStream derives a sequence of well-separated stream seeds from one base
// seed via SplitMix64. The zero value is not meaningful; construct with
// newSeedStream.
type seedStream struct{ sm rng.SplitMix }

// newSeedStream returns a derivation sequence for the given run seed.
func newSeedStream(seed int64) seedStream {
	return seedStream{sm: rng.NewSplitMix(uint64(seed))}
}

// next returns the next derived stream seed.
func (s *seedStream) next() int64 { return int64(s.sm.Uint64()) }
