// Package sim provides an event-driven simulator of the foreground/background
// storage system of the paper — the same system package core solves
// analytically, implemented independently so the two act as cross-checks.
// The simulator additionally supports semantics the Markov chain cannot
// express, such as deterministic idle waits.
//
// The event loop is built for throughput (millions of events per second):
// all run state lives in a flat runState struct (no closure captures), the
// random streams are inline xoshiro256** generators with ziggurat
// exponential sampling (internal/rng), window clipping is branch-based with
// a monotone batch cursor, and the FG response-time FIFO is a reusable ring
// buffer — so steady-state event processing performs no heap allocations.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/obs"
	"bgperf/internal/phtype"
	"bgperf/internal/rng"
)

// ErrConfig reports an invalid simulation configuration.
var ErrConfig = errors.New("sim: invalid configuration")

// IdleDist selects the idle-wait distribution.
type IdleDist int

const (
	// IdleExponential draws idle waits from an exponential distribution
	// with rate IdleRate — the paper's model and the analytic chain.
	IdleExponential IdleDist = iota + 1
	// IdleDeterministic uses a constant idle wait of 1/IdleRate — a policy
	// real disk firmware often uses, outside the Markov chain's reach.
	IdleDeterministic
)

func (d IdleDist) String() string {
	switch d {
	case IdleExponential:
		return "exponential"
	case IdleDeterministic:
		return "deterministic"
	default:
		return fmt.Sprintf("IdleDist(%d)", int(d))
	}
}

// ParseIdleDist is the inverse of IdleDist.String.
func ParseIdleDist(s string) (IdleDist, error) {
	switch s {
	case "exponential":
		return IdleExponential, nil
	case "deterministic":
		return IdleDeterministic, nil
	default:
		return 0, core.NewValidationError(ErrConfig, "IdleDist", "unknown idle-wait distribution %q (want exponential or deterministic)", s)
	}
}

// Config parameterizes a simulation run. The queueing semantics mirror
// core.Config exactly (single non-preemptive server, FCFS foreground,
// best-effort background after an idle wait, finite BG buffer with drops).
type Config struct {
	// Arrival is the FG arrival process.
	Arrival *arrival.MAP
	// ServiceRate is the exponential service rate µ for both job classes.
	// Leave it 0 when Service is set.
	ServiceRate float64
	// Service optionally replaces the exponential service law with a
	// phase-type distribution, mirroring core.Config.Service.
	Service *phtype.Dist
	// ServiceMAP optionally draws correlated service times from a MAP whose
	// phase persists across jobs (frozen while not serving), mirroring
	// core.Config.ServiceMAP. Mutually exclusive with ServiceRate/Service.
	ServiceMAP *arrival.MAP
	// BGProb is the probability a completing FG job generates a BG job.
	BGProb float64
	// BGBuffer is the BG buffer capacity X.
	BGBuffer int
	// IdleRate is the idle-wait rate α (mean wait 1/α). Leave it 0 when
	// IdleWait is set.
	IdleRate float64
	// IdleWait optionally replaces the exponential idle wait with a
	// phase-type distribution, mirroring core.Config.IdleWait. Incompatible
	// with IdleDeterministic.
	IdleWait *phtype.Dist
	// IdlePolicy selects per-job or per-period idle-wait re-arming
	// (zero value: per-job, matching core).
	IdlePolicy core.IdleWaitPolicy
	// IdleDist selects the idle-wait distribution (zero value:
	// exponential).
	IdleDist IdleDist
	// ModFactor is the capacity-modulation factor φ ∈ (0, 1], mirroring
	// core.Config.ModFactor: while any BG work is in the system the server
	// runs at rate φ·µ, so service draws are stretched by 1/φ. Zero means 1.
	ModFactor float64
	// BGAdmit selects the BG admission policy, mirroring
	// core.Config.BGAdmit (zero value: AdmitAll).
	BGAdmit core.BGAdmission
	// FGThreshold is the util-threshold K, mirroring
	// core.Config.FGThreshold.
	FGThreshold int
	// DeadlineRate is the renege rate δ of core.AdmitDeadline, mirroring
	// core.Config.DeadlineRate.
	DeadlineRate float64

	// Seed makes the run reproducible.
	Seed int64
	// WarmupTime is simulated time discarded before measurement.
	WarmupTime float64
	// MeasureTime is the simulated measurement window.
	MeasureTime float64
	// Batches is the number of batch-means segments for confidence
	// intervals (default 20).
	Batches int
}

func (c Config) withDefaults() Config {
	if c.IdlePolicy == 0 {
		c.IdlePolicy = core.IdleWaitPerJob
	}
	if c.IdleDist == 0 {
		c.IdleDist = IdleExponential
	}
	if c.ModFactor == 0 {
		c.ModFactor = 1
	}
	if c.BGAdmit == 0 {
		c.BGAdmit = core.AdmitAll
	}
	if c.Batches == 0 {
		c.Batches = 20
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Arrival == nil:
		return core.NewValidationError(ErrConfig, "Arrival", "nil arrival process")
	case c.Service == nil && c.ServiceMAP == nil && c.ServiceRate <= 0:
		return core.NewValidationError(ErrConfig, "ServiceRate", "service rate %g must be positive", c.ServiceRate)
	case c.Service != nil && (c.ServiceRate != 0 || c.ServiceMAP != nil):
		return core.NewValidationError(ErrConfig, "Service", "set exactly one of ServiceRate, Service, ServiceMAP")
	case c.ServiceMAP != nil && c.ServiceRate != 0:
		return core.NewValidationError(ErrConfig, "ServiceMAP", "set exactly one of ServiceRate, Service, ServiceMAP")
	case c.BGProb < 0 || c.BGProb > 1:
		return core.NewValidationError(ErrConfig, "BGProb", "BG probability %g outside [0,1]", c.BGProb)
	case c.BGBuffer < 0:
		return core.NewValidationError(ErrConfig, "BGBuffer", "negative BG buffer")
	case c.IdleWait != nil && c.IdleRate != 0:
		return core.NewValidationError(ErrConfig, "IdleWait", "set either IdleRate or IdleWait, not both")
	case c.IdleWait != nil && c.IdleDist == IdleDeterministic:
		return core.NewValidationError(ErrConfig, "IdleDist", "IdleWait and IdleDeterministic are incompatible")
	case c.BGBuffer > 0 && c.IdleRate <= 0 && c.IdleWait == nil:
		return core.NewValidationError(ErrConfig, "IdleRate", "idle rate %g must be positive with a BG buffer", c.IdleRate)
	case !(c.ModFactor > 0 && c.ModFactor <= 1):
		return core.NewValidationError(ErrConfig, "ModFactor", "modulation factor %g must lie in (0,1]", c.ModFactor)
	case c.BGAdmit != core.AdmitAll && c.BGAdmit != core.AdmitUtilThreshold && c.BGAdmit != core.AdmitDeadline:
		return core.NewValidationError(ErrConfig, "BGAdmit", "unknown BG admission policy %d", int(c.BGAdmit))
	case c.FGThreshold < 0:
		return core.NewValidationError(ErrConfig, "FGThreshold", "FG threshold %d must be nonnegative", c.FGThreshold)
	case c.FGThreshold != 0 && c.BGAdmit != core.AdmitUtilThreshold:
		return core.NewValidationError(ErrConfig, "FGThreshold", "FG threshold requires the util-threshold admission policy")
	case c.BGAdmit == core.AdmitDeadline && c.DeadlineRate <= 0:
		return core.NewValidationError(ErrConfig, "DeadlineRate", "deadline rate %g must be positive with the deadline admission policy", c.DeadlineRate)
	case c.BGAdmit != core.AdmitDeadline && c.DeadlineRate != 0:
		return core.NewValidationError(ErrConfig, "DeadlineRate", "deadline rate requires the deadline admission policy")
	case c.MeasureTime <= 0:
		return core.NewValidationError(ErrConfig, "MeasureTime", "measurement window %g must be positive", c.MeasureTime)
	case c.WarmupTime < 0:
		return core.NewValidationError(ErrConfig, "WarmupTime", "negative warmup")
	case c.Batches < 2:
		return core.NewValidationError(ErrConfig, "Batches", "need at least 2 batches")
	}
	return nil
}

// Counters are raw event counts over the measurement window.
type Counters struct {
	ArrivalsFG      int64
	CompletedFG     int64
	DelayedFG       int64 // FG arrivals that found a BG job in service
	GeneratedBG     int64
	AdmittedBG      int64
	DroppedBG       int64
	CompletedBG     int64
	IdleExpirations int64 // idle-wait timers that expired and started BG service
	RenegedBG       int64 // admitted BG jobs whose deadline expired while waiting
	Events          int64 // total events processed inside the window
}

// Result holds the measured steady-state estimates.
type Result struct {
	// Metrics mirrors the analytic metric set; CompBG here is
	// admitted/generated and WaitPFG is delayed/arrivals.
	Metrics core.Metrics
	// RespTimeFGP95 is the streaming P² estimate of the 95th-percentile
	// foreground response time over the measurement window; RespTimeFGP99
	// likewise for the 99th. Both are 0 when no FG job completed in-window.
	RespTimeFGP95 float64
	RespTimeFGP99 float64
	// QLenFGHalf is the ±half-width of a ~95% batch-means confidence
	// interval on Metrics.QLenFG; QLenBGHalf likewise.
	QLenFGHalf float64
	QLenBGHalf float64
	// Counters are the raw counts behind the ratios.
	Counters Counters
	// SimTime is the measured (post-warmup) simulated time.
	SimTime float64
}

type serverState int

const (
	stateIdle     serverState = iota // nothing in service, no timer
	stateIdleWait                    // BG pending, idle-wait timer armed
	stateServingFG
	stateServingBG
)

const inf = math.MaxFloat64

// eventKind identifies which timer fires next in the event loop.
type eventKind int

const (
	evArrival eventKind = iota
	evService
	evIdle
	evRenege
)

// nextEvent picks the earliest of the four pending timers, breaking ties in
// the fixed order arrival, then service completion, then idle expiry, then
// deadline renege (the strict < keeps the earlier-ranked candidate at equal
// timestamps). The order is part of the simulator's semantics — an arrival
// coinciding with a BG service completion is counted as delayed, and a
// renege racing any other event loses — and is pinned by
// TestEventTieBreakOrder.
func nextEvent(arr, svc, idle, renege float64) (float64, eventKind) {
	next, kind := arr, evArrival
	if svc < next {
		next, kind = svc, evService
	}
	if idle < next {
		next, kind = idle, evIdle
	}
	if renege < next {
		next, kind = renege, evRenege
	}
	return next, kind
}

// runState is the flattened per-run state of the event loop. Everything the
// hot path touches lives here as a plain field — no closures, no interface
// values — so the compiler keeps the loop free of pointer chasing and the
// steady state free of allocations.
type runState struct {
	// Random streams and samplers (rng is the event stream: service draws,
	// BG spawn coin flips, idle waits).
	rng        rng.Rand
	sampler    *arrival.Sampler
	svcSampler *arrival.Sampler // non-nil iff ServiceMAP is set
	svcPH      *phtype.Compiled // non-nil iff Service is set
	idlePH     *phtype.Compiled // non-nil iff IdleWait is set
	svcScale   float64          // 1/ServiceRate (exponential service)
	idleScale  float64          // 1/IdleRate (exponential or deterministic)
	idleDet    bool
	perPeriod  bool
	bgProb     float64
	bgBuffer   int
	// Capacity modulation and smart admission (mirroring core). modFactor 1
	// keeps every hot-path branch below untaken, so the baseline event
	// stream is bit-identical to the pre-modulation simulator.
	modFactor    float64 // φ
	modInv       float64 // 1/φ: service-draw stretch while BG work is present
	admitUtil    bool    // util-threshold admission active
	fgThreshold  int     // K of the util-threshold policy
	deadlineRate float64 // δ of the deadline policy (0: no reneging)

	// Dynamic state.
	now        float64
	nextArr    float64
	serviceEnd float64
	idleExpiry float64
	nextRenege float64
	state      serverState
	fgQueue    int // waiting FG jobs (excluding in service)
	bgQueue    int // waiting BG jobs (excluding in service)
	fgTimes    fifo

	// Measurement window and accumulators.
	measStart float64
	measEnd   float64
	fgArea    float64 // ∫ FG-in-system dt
	bgArea    float64 // ∫ BG-in-system dt
	utilFG    float64
	utilBG    float64
	idleW     float64
	emptyT    float64
	respSum   float64
	p95, p99  p2Quantile
	counters  Counters

	// Batch-means attribution: a monotone cursor over batch segments.
	batchLen float64
	batchEnd float64 // end of the current batch (measEnd for the last)
	bi       int     // current batch index
	batchFG  []float64
	batchBG  []float64
}

// setup initializes rs from a validated configuration. Stream-seed
// consumption order (event RNG, arrival sampler, optional service MAP
// sampler) is part of the reproducibility contract — see seed.go.
func (rs *runState) setup(cfg Config) {
	seeds := newSeedStream(cfg.Seed)
	rs.rng = rng.New(seeds.next())
	rs.sampler = arrival.NewSampler(cfg.Arrival, seeds.next())
	if cfg.ServiceMAP != nil {
		rs.svcSampler = arrival.NewSampler(cfg.ServiceMAP, seeds.next())
	}
	if cfg.Service != nil {
		rs.svcPH = phtype.Compile(cfg.Service)
	}
	if cfg.IdleWait != nil {
		rs.idlePH = phtype.Compile(cfg.IdleWait)
	}
	rs.svcScale = 1 / cfg.ServiceRate
	rs.idleScale = 1 / cfg.IdleRate
	rs.idleDet = cfg.IdleDist == IdleDeterministic
	rs.perPeriod = cfg.IdlePolicy == core.IdleWaitPerPeriod
	rs.bgProb = cfg.BGProb
	rs.bgBuffer = cfg.BGBuffer
	rs.modFactor = cfg.ModFactor
	rs.modInv = 1 / cfg.ModFactor
	rs.admitUtil = cfg.BGAdmit == core.AdmitUtilThreshold
	rs.fgThreshold = cfg.FGThreshold
	rs.deadlineRate = cfg.DeadlineRate

	rs.state = stateIdle
	rs.nextArr = rs.sampler.Next()
	rs.serviceEnd = inf
	rs.idleExpiry = inf
	rs.nextRenege = inf
	rs.fgTimes.init(fifoInitialCap)

	rs.measStart = cfg.WarmupTime
	rs.measEnd = cfg.WarmupTime + cfg.MeasureTime
	rs.p95.initP2(0.95)
	rs.p99.initP2(0.99)

	rs.batchLen = cfg.MeasureTime / float64(cfg.Batches)
	rs.batchFG = make([]float64, cfg.Batches)
	rs.batchBG = make([]float64, cfg.Batches)
	rs.bi = 0
	rs.batchEnd = rs.batchBound(0)
}

// batchBound returns the end time of batch bi, with the last batch absorbing
// float round-off by ending exactly at measEnd.
func (rs *runState) batchBound(bi int) float64 {
	if bi >= len(rs.batchFG)-1 {
		return rs.measEnd
	}
	return rs.measStart + float64(bi+1)*rs.batchLen
}

func (rs *runState) drawService() float64 {
	switch {
	case rs.svcSampler != nil:
		// The MAP phase persists across calls: correlated services, frozen
		// while the server idles.
		return rs.svcSampler.Next()
	case rs.svcPH != nil:
		return rs.svcPH.Sample(&rs.rng)
	default:
		return rs.rng.ExpFloat64() * rs.svcScale
	}
}

func (rs *runState) idleWait() float64 {
	switch {
	case rs.idlePH != nil:
		return rs.idlePH.Sample(&rs.rng)
	case rs.idleDet:
		return rs.idleScale
	default:
		return rs.rng.ExpFloat64() * rs.idleScale
	}
}

// accumulate integrates the current state over (now, next) clipped to the
// measurement window, spreading queue-length area over batches. Clipping is
// branch-based (no math.Min/Max calls) and the common case — an interval
// fully inside the current batch — costs one comparison beyond the area
// updates.
func (rs *runState) accumulate(next float64) {
	lo, hi := rs.now, next
	if lo < rs.measStart {
		lo = rs.measStart
	}
	if hi > rs.measEnd {
		hi = rs.measEnd
	}
	if hi <= lo {
		return
	}
	span := hi - lo
	nf, nb := float64(rs.fgQueue), float64(rs.bgQueue)
	switch rs.state {
	case stateServingFG:
		nf++
		rs.utilFG += span
	case stateServingBG:
		nb++
		rs.utilBG += span
	case stateIdleWait:
		rs.idleW += span
	default:
		rs.emptyT += span
	}
	rs.fgArea += nf * span
	rs.bgArea += nb * span
	// Batch attribution: the cursor only moves forward because simulated
	// time is monotone, so each call either lands in the current batch
	// (fast path) or walks the cursor across whole batch segments.
	for hi > rs.batchEnd {
		seg := rs.batchEnd - lo
		rs.batchFG[rs.bi] += nf * seg
		rs.batchBG[rs.bi] += nb * seg
		lo = rs.batchEnd
		rs.bi++
		rs.batchEnd = rs.batchBound(rs.bi)
	}
	rs.batchFG[rs.bi] += nf * (hi - lo)
	rs.batchBG[rs.bi] += nb * (hi - lo)
}

// startFG begins a foreground service. BG population changes only at FG
// completion epochs and deadline reneges, so the modulation speed chosen
// here holds for the whole draw except the one renege-rescale case handled
// in the event loop; stretching the entire draw by 1/φ is therefore exact.
func (rs *runState) startFG() {
	rs.fgQueue--
	rs.state = stateServingFG
	d := rs.drawService()
	if rs.modFactor != 1 && rs.bgQueue > 0 {
		d *= rs.modInv
	}
	rs.serviceEnd = rs.now + d
	rs.idleExpiry = inf
}

// startBG begins a background service; the job itself keeps the system
// modulated (x ≥ 1) for the full draw, and reneges only shrink the waiting
// pool, so no rescale case exists here.
func (rs *runState) startBG() {
	rs.bgQueue--
	rs.state = stateServingBG
	d := rs.drawService()
	if rs.modFactor != 1 {
		d *= rs.modInv
	}
	rs.serviceEnd = rs.now + d
	rs.idleExpiry = inf
	rs.rearmRenege()
}

// rearmRenege redraws the pooled deadline timer after a change to the
// waiting-BG population: the minimum of w independent exponential deadlines
// with rate δ is exponential with rate w·δ, and memorylessness makes a fresh
// draw at every population change distribution-exact. Guarded on the policy
// so baseline runs consume no extra random numbers.
func (rs *runState) rearmRenege() {
	if rs.deadlineRate <= 0 {
		return
	}
	if rs.bgQueue > 0 {
		rs.nextRenege = rs.now + rs.rng.ExpFloat64()/(float64(rs.bgQueue)*rs.deadlineRate)
	} else {
		rs.nextRenege = inf
	}
}

func (rs *runState) armIdleOrRest() {
	rs.serviceEnd = inf
	if rs.bgQueue > 0 {
		rs.state = stateIdleWait
		rs.idleExpiry = rs.now + rs.idleWait()
	} else {
		rs.state = stateIdle
		rs.idleExpiry = inf
	}
}

// Run simulates the system and returns measured metrics.
//
// Run is safe to call concurrently from multiple goroutines, including with
// the same Config value: every call owns its random streams, and the
// structures a Config references (arrival.MAP, phtype.Dist) are immutable.
// Use RunReplications to fan independent replications out over a worker
// pool and aggregate them.
func Run(cfg Config) (*Result, error) {
	return RunOpts(nil, cfg, nil)
}

// RunOpts is Run with an optional context for cancellation and an optional
// obs.Observer receiving the run's event counters (nil is valid for both and
// reverts to the plain fast path). Cancellation is cooperative: the event
// loop polls ctx every few thousand events, so a canceled simulation returns
// a context.Canceled-wrapped error within microseconds rather than finishing
// the measurement window.
func RunOpts(ctx context.Context, cfg Config, o obs.Observer) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Every random stream of the run gets its own SplitMix64-derived seed
	// (see seed.go): replication studies map replication r to Seed + r, and
	// the avalanche mixer guarantees the event/arrival/service streams of
	// all replications stay pairwise distinct.
	var rs runState
	rs.setup(cfg)

	var events int64
	for rs.now < rs.measEnd {
		if events++; ctx != nil && events&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: canceled at t=%g: %w", rs.now, err)
			}
		}
		next, kind := nextEvent(rs.nextArr, rs.serviceEnd, rs.idleExpiry, rs.nextRenege)
		rs.accumulate(next)
		rs.now = next
		in := next >= rs.measStart && next < rs.measEnd
		if in {
			rs.counters.Events++
		}
		switch kind {
		case evArrival:
			// Foreground arrival.
			if in {
				rs.counters.ArrivalsFG++
				if rs.state == stateServingBG {
					rs.counters.DelayedFG++
				}
			}
			rs.fgQueue++
			rs.fgTimes.push(next)
			if rs.state == stateIdle || rs.state == stateIdleWait {
				rs.startFG()
			}
			rs.nextArr = next + rs.sampler.Next()

		case evService:
			switch rs.state {
			case stateServingFG:
				t0 := rs.fgTimes.pop()
				if in {
					rs.counters.CompletedFG++
					resp := next - t0
					rs.respSum += resp
					// The P² markers see every p2Stride-th completion:
					// systematic decimation of a stationary stream leaves
					// quantile estimates unbiased but caps the estimators'
					// share of the event budget.
					if rs.counters.CompletedFG&(p2Stride-1) == 1 {
						rs.p95.add(resp)
						rs.p99.add(resp)
					}
				}
				if rs.rng.Float64() < rs.bgProb {
					if in {
						rs.counters.GeneratedBG++
					}
					// Admission: buffer space always required; the
					// util-threshold policy additionally demands a
					// foreground backlog of at most K jobs (the queue left
					// behind by the completing job, i.e. core's yLeft).
					if rs.bgQueue < rs.bgBuffer && (!rs.admitUtil || rs.fgQueue <= rs.fgThreshold) {
						rs.bgQueue++
						rs.rearmRenege()
						if in {
							rs.counters.AdmittedBG++
						}
					} else if in {
						rs.counters.DroppedBG++
					}
				}
				if rs.fgQueue > 0 {
					rs.startFG()
				} else {
					rs.armIdleOrRest()
				}
			case stateServingBG:
				if in {
					rs.counters.CompletedBG++
				}
				if rs.fgQueue > 0 {
					rs.startFG()
				} else if rs.bgQueue > 0 && rs.perPeriod {
					rs.startBG()
				} else {
					rs.armIdleOrRest()
				}
			default:
				return nil, fmt.Errorf("sim: service completion in state %d", rs.state)
			}

		case evRenege:
			// A waiting BG job's deadline expired. The pooled timer fires at
			// rate bgQueue·δ, so any waiting job may be the one to leave;
			// they are exchangeable, so no identity bookkeeping is needed.
			if rs.deadlineRate <= 0 || rs.bgQueue == 0 {
				return nil, fmt.Errorf("sim: renege in state %d with %d BG", rs.state, rs.bgQueue)
			}
			rs.bgQueue--
			if in {
				rs.counters.RenegedBG++
			}
			rs.rearmRenege()
			switch {
			case rs.state == stateIdleWait && rs.bgQueue == 0:
				// The last waiting job left: disarm the idle timer.
				rs.state = stateIdle
				rs.idleExpiry = inf
			case rs.state == stateServingFG && rs.modFactor != 1 && rs.bgQueue == 0:
				// The last BG job left mid-FG-service: the server speeds
				// back up from φ·µ to µ, shrinking the remaining service
				// time by φ — exact for any service law, because the
				// remaining work is fixed and only the rate changes.
				rs.serviceEnd = rs.now + (rs.serviceEnd-rs.now)*rs.modFactor
			}

		default: // idle-wait expiry
			if rs.state != stateIdleWait || rs.bgQueue == 0 {
				return nil, fmt.Errorf("sim: idle expiry in state %d with %d BG", rs.state, rs.bgQueue)
			}
			if in {
				rs.counters.IdleExpirations++
			}
			rs.startBG()
		}
	}

	res := &Result{Counters: rs.counters}
	t := cfg.MeasureTime
	res.SimTime = t
	m := &res.Metrics
	m.QLenFG = rs.fgArea / t
	m.QLenBG = rs.bgArea / t
	m.UtilFG = rs.utilFG / t
	m.UtilBG = rs.utilBG / t
	m.ProbIdleWait = rs.idleW / t
	m.ProbEmpty = rs.emptyT / t
	m.ThroughputFG = float64(res.Counters.CompletedFG) / t
	m.ThroughputBG = float64(res.Counters.CompletedBG) / t
	m.GenRateBG = float64(res.Counters.GeneratedBG) / t
	m.DropRateBG = float64(res.Counters.DroppedBG) / t
	if res.Counters.GeneratedBG > 0 {
		m.CompBG = float64(res.Counters.AdmittedBG) / float64(res.Counters.GeneratedBG)
	} else {
		m.CompBG = 1
	}
	if res.Counters.ArrivalsFG > 0 {
		m.WaitPFG = float64(res.Counters.DelayedFG) / float64(res.Counters.ArrivalsFG)
	}
	if res.Counters.CompletedFG > 0 {
		m.RespTimeFG = rs.respSum / float64(res.Counters.CompletedFG)
		res.RespTimeFGP95 = rs.p95.Value()
		res.RespTimeFGP99 = rs.p99.Value()
	}
	if res.Counters.AdmittedBG > 0 {
		// Little's law over the BG population: mean sojourn of admitted jobs.
		m.RespTimeBG = rs.bgArea / float64(res.Counters.AdmittedBG)
		m.DeadlineMissBG = float64(res.Counters.RenegedBG) / float64(res.Counters.AdmittedBG)
	}

	res.QLenFGHalf = batchHalfWidth(rs.batchFG, rs.batchLen)
	res.QLenBGHalf = batchHalfWidth(rs.batchBG, rs.batchLen)
	if o != nil {
		c := res.Counters
		o.SimRun(obs.SimCounters{
			ArrivalsFG: c.ArrivalsFG, CompletedFG: c.CompletedFG,
			DelayedFG: c.DelayedFG, GeneratedBG: c.GeneratedBG,
			AdmittedBG: c.AdmittedBG, DroppedBG: c.DroppedBG,
			CompletedBG: c.CompletedBG, IdleExpirations: c.IdleExpirations,
			RenegedBG: c.RenegedBG, Events: c.Events,
		})
	}
	return res, nil
}

// batchHalfWidth returns the ~95% half-width of the batch-means estimator
// (normal critical value; adequate for ≥ 20 batches).
func batchHalfWidth(batchAreas []float64, batchLen float64) float64 {
	n := float64(len(batchAreas))
	var mean float64
	for _, a := range batchAreas {
		mean += a / batchLen
	}
	mean /= n
	var ss float64
	for _, a := range batchAreas {
		d := a/batchLen - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / (n - 1))
	return 1.96 * sd / math.Sqrt(n)
}
