// Package sim provides an event-driven simulator of the foreground/background
// storage system of the paper — the same system package core solves
// analytically, implemented independently so the two act as cross-checks.
// The simulator additionally supports semantics the Markov chain cannot
// express, such as deterministic idle waits.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/obs"
	"bgperf/internal/phtype"
)

// ErrConfig reports an invalid simulation configuration.
var ErrConfig = errors.New("sim: invalid configuration")

// IdleDist selects the idle-wait distribution.
type IdleDist int

const (
	// IdleExponential draws idle waits from an exponential distribution
	// with rate IdleRate — the paper's model and the analytic chain.
	IdleExponential IdleDist = iota + 1
	// IdleDeterministic uses a constant idle wait of 1/IdleRate — a policy
	// real disk firmware often uses, outside the Markov chain's reach.
	IdleDeterministic
)

func (d IdleDist) String() string {
	switch d {
	case IdleExponential:
		return "exponential"
	case IdleDeterministic:
		return "deterministic"
	default:
		return fmt.Sprintf("IdleDist(%d)", int(d))
	}
}

// ParseIdleDist is the inverse of IdleDist.String.
func ParseIdleDist(s string) (IdleDist, error) {
	switch s {
	case "exponential":
		return IdleExponential, nil
	case "deterministic":
		return IdleDeterministic, nil
	default:
		return 0, core.NewValidationError(ErrConfig, "IdleDist", "unknown idle-wait distribution %q (want exponential or deterministic)", s)
	}
}

// Config parameterizes a simulation run. The queueing semantics mirror
// core.Config exactly (single non-preemptive server, FCFS foreground,
// best-effort background after an idle wait, finite BG buffer with drops).
type Config struct {
	// Arrival is the FG arrival process.
	Arrival *arrival.MAP
	// ServiceRate is the exponential service rate µ for both job classes.
	// Leave it 0 when Service is set.
	ServiceRate float64
	// Service optionally replaces the exponential service law with a
	// phase-type distribution, mirroring core.Config.Service.
	Service *phtype.Dist
	// ServiceMAP optionally draws correlated service times from a MAP whose
	// phase persists across jobs (frozen while not serving), mirroring
	// core.Config.ServiceMAP. Mutually exclusive with ServiceRate/Service.
	ServiceMAP *arrival.MAP
	// BGProb is the probability a completing FG job generates a BG job.
	BGProb float64
	// BGBuffer is the BG buffer capacity X.
	BGBuffer int
	// IdleRate is the idle-wait rate α (mean wait 1/α). Leave it 0 when
	// IdleWait is set.
	IdleRate float64
	// IdleWait optionally replaces the exponential idle wait with a
	// phase-type distribution, mirroring core.Config.IdleWait. Incompatible
	// with IdleDeterministic.
	IdleWait *phtype.Dist
	// IdlePolicy selects per-job or per-period idle-wait re-arming
	// (zero value: per-job, matching core).
	IdlePolicy core.IdleWaitPolicy
	// IdleDist selects the idle-wait distribution (zero value:
	// exponential).
	IdleDist IdleDist

	// Seed makes the run reproducible.
	Seed int64
	// WarmupTime is simulated time discarded before measurement.
	WarmupTime float64
	// MeasureTime is the simulated measurement window.
	MeasureTime float64
	// Batches is the number of batch-means segments for confidence
	// intervals (default 20).
	Batches int
}

func (c Config) withDefaults() Config {
	if c.IdlePolicy == 0 {
		c.IdlePolicy = core.IdleWaitPerJob
	}
	if c.IdleDist == 0 {
		c.IdleDist = IdleExponential
	}
	if c.Batches == 0 {
		c.Batches = 20
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Arrival == nil:
		return core.NewValidationError(ErrConfig, "Arrival", "nil arrival process")
	case c.Service == nil && c.ServiceMAP == nil && c.ServiceRate <= 0:
		return core.NewValidationError(ErrConfig, "ServiceRate", "service rate %g must be positive", c.ServiceRate)
	case c.Service != nil && (c.ServiceRate != 0 || c.ServiceMAP != nil):
		return core.NewValidationError(ErrConfig, "Service", "set exactly one of ServiceRate, Service, ServiceMAP")
	case c.ServiceMAP != nil && c.ServiceRate != 0:
		return core.NewValidationError(ErrConfig, "ServiceMAP", "set exactly one of ServiceRate, Service, ServiceMAP")
	case c.BGProb < 0 || c.BGProb > 1:
		return core.NewValidationError(ErrConfig, "BGProb", "BG probability %g outside [0,1]", c.BGProb)
	case c.BGBuffer < 0:
		return core.NewValidationError(ErrConfig, "BGBuffer", "negative BG buffer")
	case c.IdleWait != nil && c.IdleRate != 0:
		return core.NewValidationError(ErrConfig, "IdleWait", "set either IdleRate or IdleWait, not both")
	case c.IdleWait != nil && c.IdleDist == IdleDeterministic:
		return core.NewValidationError(ErrConfig, "IdleDist", "IdleWait and IdleDeterministic are incompatible")
	case c.BGBuffer > 0 && c.IdleRate <= 0 && c.IdleWait == nil:
		return core.NewValidationError(ErrConfig, "IdleRate", "idle rate %g must be positive with a BG buffer", c.IdleRate)
	case c.MeasureTime <= 0:
		return core.NewValidationError(ErrConfig, "MeasureTime", "measurement window %g must be positive", c.MeasureTime)
	case c.WarmupTime < 0:
		return core.NewValidationError(ErrConfig, "WarmupTime", "negative warmup")
	case c.Batches < 2:
		return core.NewValidationError(ErrConfig, "Batches", "need at least 2 batches")
	}
	return nil
}

// Counters are raw event counts over the measurement window.
type Counters struct {
	ArrivalsFG      int64
	CompletedFG     int64
	DelayedFG       int64 // FG arrivals that found a BG job in service
	GeneratedBG     int64
	AdmittedBG      int64
	DroppedBG       int64
	CompletedBG     int64
	IdleExpirations int64 // idle-wait timers that expired and started BG service
}

// Result holds the measured steady-state estimates.
type Result struct {
	// Metrics mirrors the analytic metric set; CompBG here is
	// admitted/generated and WaitPFG is delayed/arrivals.
	Metrics core.Metrics
	// QLenFGHalf is the ±half-width of a ~95% batch-means confidence
	// interval on Metrics.QLenFG; QLenBGHalf likewise.
	QLenFGHalf float64
	QLenBGHalf float64
	// Counters are the raw counts behind the ratios.
	Counters Counters
	// SimTime is the measured (post-warmup) simulated time.
	SimTime float64
}

type serverState int

const (
	stateIdle     serverState = iota // nothing in service, no timer
	stateIdleWait                    // BG pending, idle-wait timer armed
	stateServingFG
	stateServingBG
)

const inf = math.MaxFloat64

// Run simulates the system and returns measured metrics.
//
// Run is safe to call concurrently from multiple goroutines, including with
// the same Config value: every call owns its random streams, and the
// structures a Config references (arrival.MAP, phtype.Dist) are immutable.
// Use RunReplications to fan independent replications out over a worker
// pool and aggregate them.
func Run(cfg Config) (*Result, error) {
	return RunOpts(nil, cfg, nil)
}

// RunOpts is Run with an optional context for cancellation and an optional
// obs.Observer receiving the run's event counters (nil is valid for both and
// reverts to the plain fast path). Cancellation is cooperative: the event
// loop polls ctx every few thousand events, so a canceled simulation returns
// a context.Canceled-wrapped error within microseconds rather than finishing
// the measurement window.
func RunOpts(ctx context.Context, cfg Config, o obs.Observer) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Every random stream of the run gets its own SplitMix64-derived seed
	// (see seed.go): replication studies map replication r to Seed + r, and
	// the avalanche mixer guarantees the event/arrival/service streams of
	// all replications stay pairwise distinct.
	seeds := newSeedStream(cfg.Seed)
	var (
		rng     = rand.New(rand.NewSource(seeds.next()))
		sampler = arrival.NewSampler(cfg.Arrival, seeds.next())

		now        float64
		state      = stateIdle
		fgQueue    int // waiting FG jobs (excluding in service)
		bgQueue    int // waiting BG jobs (excluding in service)
		nextArr    = sampler.Next()
		serviceEnd = inf
		idleExpiry = inf

		measStart = cfg.WarmupTime
		measEnd   = cfg.WarmupTime + cfg.MeasureTime

		res     Result
		fgArea  float64 // ∫ FG-in-system dt
		bgArea  float64 // ∫ BG-in-system dt
		utilFG  float64
		utilBG  float64
		idleW   float64
		emptyT  float64
		respSum float64
		fgTimes []float64 // FIFO arrival stamps of FG in system

		batchLen = cfg.MeasureTime / float64(cfg.Batches)
		batchFG  = make([]float64, cfg.Batches)
		batchBG  = make([]float64, cfg.Batches)
	)

	expo := func(rate float64) float64 {
		return -math.Log(1-rng.Float64()) / rate
	}
	var svcSampler *arrival.Sampler
	if cfg.ServiceMAP != nil {
		svcSampler = arrival.NewSampler(cfg.ServiceMAP, seeds.next())
	}
	drawService := func() float64 {
		switch {
		case svcSampler != nil:
			// The MAP phase persists across calls: correlated services,
			// frozen while the server idles.
			return svcSampler.Next()
		case cfg.Service != nil:
			return phtype.SampleOnce(cfg.Service, rng)
		default:
			return expo(cfg.ServiceRate)
		}
	}
	idleWait := func() float64 {
		switch {
		case cfg.IdleWait != nil:
			return phtype.SampleOnce(cfg.IdleWait, rng)
		case cfg.IdleDist == IdleDeterministic:
			return 1 / cfg.IdleRate
		default:
			return expo(cfg.IdleRate)
		}
	}
	fgCount := func() int {
		n := fgQueue
		if state == stateServingFG {
			n++
		}
		return n
	}
	bgCount := func() int {
		n := bgQueue
		if state == stateServingBG {
			n++
		}
		return n
	}
	// accumulate integrates state over (now, now+dt) clipped to the
	// measurement window, spreading queue-length area over batches.
	accumulate := func(dt float64) {
		lo := math.Max(now, measStart)
		hi := math.Min(now+dt, measEnd)
		if hi <= lo {
			return
		}
		span := hi - lo
		nf, nb := float64(fgCount()), float64(bgCount())
		fgArea += nf * span
		bgArea += nb * span
		switch state {
		case stateServingFG:
			utilFG += span
		case stateServingBG:
			utilBG += span
		case stateIdleWait:
			idleW += span
		case stateIdle:
			emptyT += span
		}
		// Batch attribution (split across batch boundaries). Iterate batch
		// indices rather than advancing a float time cursor: a cursor that
		// lands exactly on a batch edge would produce zero-length segments
		// and never progress.
		biLo := int((lo - measStart) / batchLen)
		if biLo < 0 {
			biLo = 0
		}
		if biLo >= cfg.Batches {
			biLo = cfg.Batches - 1
		}
		for bi := biLo; bi < cfg.Batches; bi++ {
			bStart := measStart + float64(bi)*batchLen
			if bStart >= hi {
				break
			}
			segLo := math.Max(lo, bStart)
			segHi := math.Min(hi, bStart+batchLen)
			if bi == cfg.Batches-1 {
				segHi = hi // absorb float round-off at the window end
			}
			if seg := segHi - segLo; seg > 0 {
				batchFG[bi] += nf * seg
				batchBG[bi] += nb * seg
			}
		}
	}
	inWindow := func() bool { return now >= measStart && now < measEnd }

	startFG := func() {
		fgQueue--
		state = stateServingFG
		serviceEnd = now + drawService()
		idleExpiry = inf
	}
	startBG := func() {
		bgQueue--
		state = stateServingBG
		serviceEnd = now + drawService()
		idleExpiry = inf
	}
	armIdleOrRest := func() {
		serviceEnd = inf
		if bgQueue > 0 {
			state = stateIdleWait
			idleExpiry = now + idleWait()
		} else {
			state = stateIdle
			idleExpiry = inf
		}
	}

	var events int64
	for now < measEnd {
		if events++; ctx != nil && events&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: canceled at t=%g: %w", now, err)
			}
		}
		next := math.Min(nextArr, math.Min(serviceEnd, idleExpiry))
		accumulate(next - now)
		now = next
		switch {
		case now == nextArr:
			// Foreground arrival.
			if inWindow() {
				res.Counters.ArrivalsFG++
				if state == stateServingBG {
					res.Counters.DelayedFG++
				}
			}
			fgQueue++
			fgTimes = append(fgTimes, now)
			if state == stateIdle || state == stateIdleWait {
				startFG()
			}
			nextArr = now + sampler.Next()

		case now == serviceEnd:
			switch state {
			case stateServingFG:
				if inWindow() {
					res.Counters.CompletedFG++
					respSum += now - fgTimes[0]
				}
				fgTimes = fgTimes[1:]
				if rng.Float64() < cfg.BGProb {
					if inWindow() {
						res.Counters.GeneratedBG++
					}
					if bgQueue < cfg.BGBuffer {
						bgQueue++
						if inWindow() {
							res.Counters.AdmittedBG++
						}
					} else if inWindow() {
						res.Counters.DroppedBG++
					}
				}
				if fgQueue > 0 {
					startFG()
				} else {
					armIdleOrRest()
				}
			case stateServingBG:
				if inWindow() {
					res.Counters.CompletedBG++
				}
				if fgQueue > 0 {
					startFG()
				} else if bgQueue > 0 && cfg.IdlePolicy == core.IdleWaitPerPeriod {
					startBG()
				} else {
					armIdleOrRest()
				}
			default:
				return nil, fmt.Errorf("sim: service completion in state %d", state)
			}

		default: // idle-wait expiry
			if state != stateIdleWait || bgQueue == 0 {
				return nil, fmt.Errorf("sim: idle expiry in state %d with %d BG", state, bgQueue)
			}
			if inWindow() {
				res.Counters.IdleExpirations++
			}
			startBG()
		}
	}

	t := cfg.MeasureTime
	res.SimTime = t
	m := &res.Metrics
	m.QLenFG = fgArea / t
	m.QLenBG = bgArea / t
	m.UtilFG = utilFG / t
	m.UtilBG = utilBG / t
	m.ProbIdleWait = idleW / t
	m.ProbEmpty = emptyT / t
	m.ThroughputFG = float64(res.Counters.CompletedFG) / t
	m.ThroughputBG = float64(res.Counters.CompletedBG) / t
	m.GenRateBG = float64(res.Counters.GeneratedBG) / t
	m.DropRateBG = float64(res.Counters.DroppedBG) / t
	if res.Counters.GeneratedBG > 0 {
		m.CompBG = float64(res.Counters.AdmittedBG) / float64(res.Counters.GeneratedBG)
	} else {
		m.CompBG = 1
	}
	if res.Counters.ArrivalsFG > 0 {
		m.WaitPFG = float64(res.Counters.DelayedFG) / float64(res.Counters.ArrivalsFG)
	}
	if res.Counters.CompletedFG > 0 {
		m.RespTimeFG = respSum / float64(res.Counters.CompletedFG)
	}
	if res.Counters.AdmittedBG > 0 {
		// Little's law over the BG population: mean sojourn of admitted jobs.
		m.RespTimeBG = bgArea / float64(res.Counters.AdmittedBG)
	}

	res.QLenFGHalf = batchHalfWidth(batchFG, batchLen)
	res.QLenBGHalf = batchHalfWidth(batchBG, batchLen)
	if o != nil {
		c := res.Counters
		o.SimRun(obs.SimCounters{
			ArrivalsFG: c.ArrivalsFG, CompletedFG: c.CompletedFG,
			DelayedFG: c.DelayedFG, GeneratedBG: c.GeneratedBG,
			AdmittedBG: c.AdmittedBG, DroppedBG: c.DroppedBG,
			CompletedBG: c.CompletedBG, IdleExpirations: c.IdleExpirations,
		})
	}
	return &res, nil
}

// batchHalfWidth returns the ~95% half-width of the batch-means estimator
// (normal critical value; adequate for ≥ 20 batches).
func batchHalfWidth(batchAreas []float64, batchLen float64) float64 {
	n := float64(len(batchAreas))
	var mean float64
	for _, a := range batchAreas {
		mean += a / batchLen
	}
	mean /= n
	var ss float64
	for _, a := range batchAreas {
		d := a/batchLen - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / (n - 1))
	return 1.96 * sd / math.Sqrt(n)
}
