package sim

import (
	"math"
	"testing"

	"bgperf/internal/core"
)

func TestMultiValidation(t *testing.T) {
	ap := poisson(t, 1)
	tests := []struct {
		name string
		cfg  MultiConfig
	}{
		{"nil arrival", MultiConfig{ServiceRate: 1, MeasureTime: 10}},
		{"no service", MultiConfig{Arrival: ap, MeasureTime: 10}},
		{"bad probs", MultiConfig{Arrival: ap, ServiceRate: 2, BG1Prob: 0.7, BG2Prob: 0.7, MeasureTime: 10}},
		{"negative buffer", MultiConfig{Arrival: ap, ServiceRate: 2, BG1Buffer: -1, MeasureTime: 10}},
		{"no idle rate", MultiConfig{Arrival: ap, ServiceRate: 2, BG1Prob: 0.2, BG1Buffer: 2, MeasureTime: 10}},
		{"no window", MultiConfig{Arrival: ap, ServiceRate: 2}},
		{"negative warmup", MultiConfig{Arrival: ap, ServiceRate: 2, MeasureTime: 1, WarmupTime: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := RunMulti(tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestMultiDeterministic(t *testing.T) {
	cfg := MultiConfig{
		Arrival: poisson(t, 1), ServiceRate: 2,
		BG1Prob: 0.3, BG2Prob: 0.3, BG1Buffer: 3, BG2Buffer: 3,
		IdleRate: 1, Seed: 5, WarmupTime: 100, MeasureTime: 20000,
	}
	r1, err := RunMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *r1 != *r2 {
		t.Error("same seed produced different multiclass results")
	}
}

func TestMultiFlowConservation(t *testing.T) {
	cfg := MultiConfig{
		Arrival: poisson(t, 1), ServiceRate: 2,
		BG1Prob: 0.4, BG2Prob: 0.4, BG1Buffer: 2, BG2Buffer: 2,
		IdleRate: 0.8, Seed: 9, WarmupTime: 500, MeasureTime: 1e5,
	}
	r, err := RunMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Counters
	adm1 := c.GeneratedBG1 - c.DroppedBG1
	adm2 := c.GeneratedBG2 - c.DroppedBG2
	if diff := adm1 - c.CompletedBG1; diff < -5 || diff > 5 {
		t.Errorf("class 1: admitted %d vs completed %d", adm1, c.CompletedBG1)
	}
	if diff := adm2 - c.CompletedBG2; diff < -5 || diff > 5 {
		t.Errorf("class 2: admitted %d vs completed %d", adm2, c.CompletedBG2)
	}
	// Server-state probabilities partition.
	total := r.UtilFG + r.UtilBG1 + r.UtilBG2 + r.ProbIdleWait + r.ProbEmpty
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("state probabilities sum to %v", total)
	}
}

func TestMultiSingleClassMatchesSingleSim(t *testing.T) {
	// With p2 = 0 the two-class simulator must match the single-class one
	// statistically (different RNG streams, so compare loosely).
	base := Config{
		Arrival: poisson(t, 1), ServiceRate: 2, BGProb: 0.5, BGBuffer: 4,
		IdleRate: 1, Seed: 3, WarmupTime: 1000, MeasureTime: 4e5,
	}
	single, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunMulti(MultiConfig{
		Arrival: base.Arrival, ServiceRate: 2, BG1Prob: 0.5, BG1Buffer: 4,
		IdleRate: 1, Seed: 3, WarmupTime: 1000, MeasureTime: 4e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single.Metrics.QLenFG-multi.QLenFG) > 0.05*single.Metrics.QLenFG+0.02 {
		t.Errorf("QLenFG: single %v vs multi %v", single.Metrics.QLenFG, multi.QLenFG)
	}
	if math.Abs(single.Metrics.CompBG-multi.CompBG1) > 0.02 {
		t.Errorf("CompBG: single %v vs multi %v", single.Metrics.CompBG, multi.CompBG1)
	}
}

func TestMultiPerPeriodPolicy(t *testing.T) {
	cfg := MultiConfig{
		Arrival: poisson(t, 1), ServiceRate: 2,
		BG1Prob: 0.4, BG2Prob: 0.4, BG1Buffer: 3, BG2Buffer: 3,
		IdleRate: 0.5, IdlePolicy: core.IdleWaitPerPeriod,
		Seed: 13, WarmupTime: 500, MeasureTime: 2e5,
	}
	r, err := RunMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.CompBG1 <= 0 || r.CompBG2 <= 0 {
		t.Errorf("per-period run produced no completions: %+v", r)
	}
}
