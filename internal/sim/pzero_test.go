package sim

import (
	"math"
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
)

// BGProb = 0 edge-case regression tests. With no background work the model
// degenerates to an MMPP/M/1-style queue: no BG job is ever generated, so
// every BG metric must be exactly zero on both sides, and CompBG must report
// the 0/0 completion ratio as 1 (all of nothing completes) rather than NaN —
// on the simulator, on the replication aggregate, and on the analytic
// solver. A sign-swapped guard (CompBG=0, or an unguarded 0/0) would
// silently poison sweeps over p that include the p=0 baseline column.

func TestBGProbZeroSimAnalyticParity(t *testing.T) {
	m, err := arrival.MMPP2(0.02, 0.05, 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, buffer := range []int{0, 3} {
		simRes, err := Run(Config{
			Arrival: m, ServiceRate: 1, BGProb: 0, BGBuffer: buffer,
			IdleRate: 1, Seed: 9, WarmupTime: 500, MeasureTime: 50000,
		})
		if err != nil {
			t.Fatalf("buffer %d: %v", buffer, err)
		}
		model, err := core.NewModel(core.Config{
			Arrival: m, ServiceRate: 1, BGProb: 0, BGBuffer: buffer, IdleRate: 1,
		})
		if err != nil {
			t.Fatalf("buffer %d: %v", buffer, err)
		}
		sol, err := model.Solve()
		if err != nil {
			t.Fatalf("buffer %d: %v", buffer, err)
		}
		for _, side := range []struct {
			name string
			m    core.Metrics
		}{{"sim", simRes.Metrics}, {"analytic", sol.Metrics}} {
			if side.m.CompBG != 1 {
				t.Errorf("buffer %d: %s CompBG = %v at p=0, want exactly 1", buffer, side.name, side.m.CompBG)
			}
			for _, z := range []struct {
				name string
				v    float64
			}{
				{"QLenBG", side.m.QLenBG}, {"UtilBG", side.m.UtilBG},
				{"ThroughputBG", side.m.ThroughputBG}, {"GenRateBG", side.m.GenRateBG},
				{"DropRateBG", side.m.DropRateBG}, {"RespTimeBG", side.m.RespTimeBG},
				{"WaitPFG", side.m.WaitPFG}, {"ProbIdleWait", side.m.ProbIdleWait},
			} {
				if z.v != 0 {
					t.Errorf("buffer %d: %s %s = %v at p=0, want exactly 0", buffer, side.name, z.name, z.v)
				}
			}
			for _, f := range []struct {
				name string
				v    float64
			}{
				{"QLenFG", side.m.QLenFG}, {"UtilFG", side.m.UtilFG},
				{"ProbEmpty", side.m.ProbEmpty}, {"RespTimeFG", side.m.RespTimeFG},
				{"ThroughputFG", side.m.ThroughputFG},
			} {
				if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
					t.Errorf("buffer %d: %s %s = %v at p=0", buffer, side.name, f.name, f.v)
				}
			}
		}
		if c := simRes.Counters; c.GeneratedBG != 0 || c.AdmittedBG != 0 ||
			c.DroppedBG != 0 || c.CompletedBG != 0 || c.IdleExpirations != 0 {
			t.Errorf("buffer %d: BG events fired at p=0: %+v", buffer, c)
		}
	}
}

// TestBGProbZeroReplicationAggregate pins that the replication aggregate
// inherits the guarded values instead of averaging NaNs: CompBG stays
// exactly 1 and RespTimeBG exactly 0 across replications with zero admitted
// BG jobs.
func TestBGProbZeroReplicationAggregate(t *testing.T) {
	m, err := arrival.MMPP2(0.02, 0.05, 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := RunReplications(Config{
		Arrival: m, ServiceRate: 1, BGProb: 0, BGBuffer: 3,
		IdleRate: 1, Seed: 5, WarmupTime: 200, MeasureTime: 10000,
	}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Mean.CompBG != 1 {
		t.Errorf("aggregate CompBG = %v at p=0, want exactly 1", agg.Mean.CompBG)
	}
	if agg.Mean.RespTimeBG != 0 || agg.Mean.QLenBG != 0 {
		t.Errorf("aggregate BG metrics nonzero at p=0: RespTimeBG %v, QLenBG %v",
			agg.Mean.RespTimeBG, agg.Mean.QLenBG)
	}
	if math.IsNaN(agg.QLenBGHalf) {
		t.Errorf("QLenBGHalf is NaN at p=0")
	}
}
