package cluster

import (
	"testing"
	"time"
)

// testClock is an adjustable clock injected into breakers under test.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker() (*Breaker, *testClock) {
	clk := &testClock{t: time.Unix(1000, 0)}
	b := NewBreaker()
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker()
	for i := 0; i < DefaultFailThreshold-1; i++ {
		if !b.Allow() {
			t.Fatalf("breaker refused before threshold (failure %d)", i)
		}
		b.Failure()
	}
	if b.Blocked() {
		t.Fatal("breaker open below threshold")
	}
	b.Failure() // threshold-th consecutive failure trips it
	if !b.Blocked() || b.Allow() {
		t.Fatal("breaker still admitting calls after threshold failures")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker()
	for i := 0; i < DefaultFailThreshold; i++ {
		b.Failure()
	}
	clk.advance(DefaultBaseBackoff + time.Millisecond)
	if !b.Allow() {
		t.Fatal("backoff expired but probe refused")
	}
	// Only one probe at a time: a second concurrent call is refused.
	if b.Allow() {
		t.Fatal("second probe admitted while the first is in flight")
	}
	b.Success()
	if !b.Allow() || b.Blocked() {
		t.Fatal("breaker not closed after a successful probe")
	}
}

func TestBreakerExponentialBackoff(t *testing.T) {
	b, clk := newTestBreaker()
	for i := 0; i < DefaultFailThreshold; i++ {
		b.Failure()
	}
	// First open: base backoff. Just before expiry it still refuses.
	clk.advance(DefaultBaseBackoff - time.Millisecond)
	if b.Allow() {
		t.Fatal("admitted before the first backoff expired")
	}
	clk.advance(2 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused after first backoff")
	}
	b.Failure() // failed probe: reopen for 2× base
	clk.advance(DefaultBaseBackoff + time.Millisecond)
	if b.Allow() {
		t.Fatal("doubled backoff not applied after failed probe")
	}
	clk.advance(DefaultBaseBackoff) // now past 2× base total
	if !b.Allow() {
		t.Fatal("probe refused after doubled backoff expired")
	}
	b.Success()
	// Success resets the backoff ladder: the next trip is base again.
	for i := 0; i < DefaultFailThreshold; i++ {
		b.Failure()
	}
	clk.advance(DefaultBaseBackoff + time.Millisecond)
	if !b.Allow() {
		t.Fatal("backoff ladder not reset by success")
	}
}

func TestBreakerBackoffCap(t *testing.T) {
	b, clk := newTestBreaker()
	// Trip and fail the probe many times; the open window must never
	// exceed DefaultMaxBackoff.
	for i := 0; i < DefaultFailThreshold; i++ {
		b.Failure()
	}
	for trip := 0; trip < 12; trip++ {
		clk.advance(DefaultMaxBackoff + time.Millisecond)
		if !b.Allow() {
			t.Fatalf("trip %d: probe refused past the backoff cap", trip)
		}
		b.Failure()
	}
	clk.advance(DefaultMaxBackoff + time.Millisecond)
	if !b.Allow() {
		t.Fatal("open window exceeded DefaultMaxBackoff")
	}
}
