package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Forwarding and membership defaults; see Config.
const (
	// DefaultHealthInterval is the period between /healthz probes per peer.
	DefaultHealthInterval = 2 * time.Second
	// DefaultHealthTimeout bounds one health probe.
	DefaultHealthTimeout = 1 * time.Second
	// DefaultForwardRetries is how many times a forward is retried (after
	// the first attempt) before the caller falls back to a local solve.
	DefaultForwardRetries = 1
	// DefaultRetryBackoff is the pause between forward retries.
	DefaultRetryBackoff = 50 * time.Millisecond
	// maxForwardBody bounds a forwarded response body read from a peer.
	maxForwardBody = 8 << 20
)

// ErrPeerUnavailable is returned by Forward when the target peer is
// refusing calls (breaker open) or every attempt failed; the caller should
// degrade to answering locally.
var ErrPeerUnavailable = errors.New("cluster: peer unavailable")

// Config configures a Cluster. Self and Peers are required.
type Config struct {
	// Self is this process's own advertised address (host:port), and must
	// appear in Peers; keys the ring assigns to Self are solved locally.
	Self string
	// Peers is the static cluster membership, every bgperfd's host:port
	// including Self. All peers must share the same list (order-insensitive)
	// or they will compute different rings.
	Peers []string
	// VirtualNodes is the ring's virtual-node count per peer; <= 0 means
	// DefaultVirtualNodes.
	VirtualNodes int
	// HealthInterval is the membership probe period; 0 means
	// DefaultHealthInterval, negative disables background probing (peers
	// stay up unless the breaker trips — used by tests).
	HealthInterval time.Duration
	// Client is the HTTP client for forwards and probes; nil means a
	// dedicated client with sane timeouts.
	Client *http.Client
}

// peerState is the live view of one remote peer.
type peerState struct {
	up      bool
	breaker *Breaker
}

// PeerStatus is one row of the membership snapshot served at /clusterz.
type PeerStatus struct {
	// Addr is the peer's advertised host:port.
	Addr string `json:"addr"`
	// Self marks this process's own row.
	Self bool `json:"self,omitempty"`
	// Up reports the last health-probe verdict (always true for Self).
	Up bool `json:"up"`
	// BreakerOpen reports that the peer's circuit breaker is refusing
	// forwards right now.
	BreakerOpen bool `json:"breakerOpen,omitempty"`
}

// Cluster is the membership + routing half of cluster mode: it owns the
// ring, the per-peer health state and breakers, and the forwarding client.
// Create one with New, start probing with Start, and stop it with Close.
type Cluster struct {
	self   string
	ring   *Ring
	client *http.Client

	mu    sync.Mutex
	state map[string]*peerState

	interval time.Duration
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New validates cfg and builds the cluster routing state. Peers start out
// optimistically up; the first health sweep corrects that within one
// interval, and the breaker contains the damage meanwhile.
func New(cfg Config) (*Cluster, error) {
	ring, err := NewRing(cfg.Peers, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	found := false
	for _, p := range ring.Peers() {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", cfg.Self, cfg.Peers)
	}
	interval := cfg.HealthInterval
	if interval == 0 {
		interval = DefaultHealthInterval
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	c := &Cluster{
		self:     cfg.Self,
		ring:     ring,
		client:   client,
		state:    make(map[string]*peerState),
		interval: interval,
		stop:     make(chan struct{}),
	}
	for _, p := range ring.Peers() {
		if p != cfg.Self {
			c.state[p] = &peerState{up: true, breaker: NewBreaker()}
		}
	}
	return c, nil
}

// Self returns this process's advertised address.
func (c *Cluster) Self() string { return c.self }

// Start launches the background health prober. A negative configured
// interval disables it (tests drive CheckHealth directly).
func (c *Cluster) Start() {
	if c.interval < 0 {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(c.interval)
		defer ticker.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-ticker.C:
				c.CheckHealth(context.Background())
			}
		}
	}()
}

// Close stops the health prober. It never touches in-flight forwards.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// CheckHealth probes every remote peer's /healthz once and updates the
// up/down state: any 200 marks the peer up, anything else (including a
// draining peer's 503) marks it down so the ring routes around it.
func (c *Cluster) CheckHealth(ctx context.Context) {
	c.mu.Lock()
	peers := make([]string, 0, len(c.state))
	for p := range c.state {
		peers = append(peers, p)
	}
	c.mu.Unlock()
	for _, p := range peers {
		up := c.probe(ctx, p)
		c.mu.Lock()
		if st, ok := c.state[p]; ok {
			st.up = up
		}
		c.mu.Unlock()
	}
}

// probe performs one bounded health check against peer.
func (c *Cluster) probe(ctx context.Context, peer string) bool {
	ctx, cancel := context.WithTimeout(ctx, DefaultHealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// available reports whether peer should receive forwards right now: last
// probe said up, and its breaker is not refusing calls.
func (c *Cluster) available(peer string) bool {
	if peer == c.self {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.state[peer]
	return ok && st.up && !st.breaker.Blocked()
}

// Owner routes key to its owning available peer. local is true when this
// process should answer the key itself — either because it owns it, or
// because no other peer is available (the degrade-don't-fail rule: a dead
// worker's share of the key space is served by whoever is asked).
func (c *Cluster) Owner(key string) (peer string, local bool) {
	owner := c.ring.OwnerAmong(key, c.available)
	if owner == "" || owner == c.self {
		return c.self, true
	}
	return owner, false
}

// Forward POSTs body to http://peer+path with the forwarded-marker header
// set (so the receiver answers locally rather than re-routing), retrying
// transient failures with backoff, and accounting the outcome on the
// peer's breaker. It returns the response body and HTTP status. Any HTTP
// status from the peer — including 4xx/5xx application errors — is a
// successful forward; only transport failures and breaker refusals return
// ErrPeerUnavailable.
func (c *Cluster) Forward(ctx context.Context, peer, path string, body []byte) ([]byte, int, error) {
	c.mu.Lock()
	st, ok := c.state[peer]
	c.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: unknown peer %q", ErrPeerUnavailable, peer)
	}
	if !st.breaker.Allow() {
		return nil, 0, fmt.Errorf("%w: circuit breaker open for %s", ErrPeerUnavailable, peer)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		respBody, status, err := c.post(ctx, peer, path, body)
		if err == nil {
			st.breaker.Success()
			return respBody, status, nil
		}
		lastErr = err
		st.breaker.Failure()
		if attempt >= DefaultForwardRetries || ctx.Err() != nil || !st.breaker.Allow() {
			break
		}
		select {
		case <-time.After(DefaultRetryBackoff):
		case <-ctx.Done():
			return nil, 0, fmt.Errorf("%w: %v", ErrPeerUnavailable, ctx.Err())
		}
	}
	c.mu.Lock()
	st.up = false // fail fast until the next health sweep proves recovery
	c.mu.Unlock()
	return nil, 0, fmt.Errorf("%w: %v", ErrPeerUnavailable, lastErr)
}

// ForwardedHeader marks a request as already routed by a peer; a receiver
// seeing it answers locally, which makes routing loops impossible even
// when peers momentarily disagree about liveness.
const ForwardedHeader = "X-Bgperf-Forwarded"

// post performs one forward attempt.
func (c *Cluster) post(ctx context.Context, peer, path string, body []byte) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+peer+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, "1")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody))
	if err != nil {
		return nil, 0, err
	}
	return respBody, resp.StatusCode, nil
}

// Status returns the membership snapshot, self first then peers sorted by
// address — the /clusterz payload.
func (c *Cluster) Status() []PeerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := []PeerStatus{{Addr: c.self, Self: true, Up: true}}
	peers := make([]string, 0, len(c.state))
	for p := range c.state {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, p := range peers {
		st := c.state[p]
		out = append(out, PeerStatus{Addr: p, Up: st.up, BreakerOpen: st.breaker.Blocked()})
	}
	return out
}
