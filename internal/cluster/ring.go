// Package cluster shards the solve-cache key space across a static set of
// bgperfd processes. It provides the three mechanisms the serving layer
// composes into cluster mode:
//
//   - a consistent hash ring (Ring) mapping each core.CacheKey to its
//     owning peer, with virtual nodes for balance — when a peer dies, only
//     the keys it owned move (to their next peers clockwise), the rest of
//     the space is untouched;
//   - health-checked membership (Cluster) over a static -peers list: every
//     peer is probed at /healthz on an interval, and a down or draining
//     peer stops receiving forwards until it recovers;
//   - a per-peer circuit breaker (Breaker) with exponential-backoff reopen
//     probes, so a hung peer fails fast instead of eating a timeout per
//     request, and the caller degrades to solving locally.
//
// The package is transport-shaped but model-agnostic: it moves opaque JSON
// bodies between peers and never imports the serving layer. See
// docs/OPERATIONS.md for deployment topologies and the full failure model.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the number of ring positions per peer. 128 vnodes
// keep the expected per-peer load within a few percent of uniform for the
// cluster sizes a static peer list is plausible for (≤ dozens of peers).
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a set of peers. Build one
// with NewRing; membership changes are expressed at lookup time (OwnerAmong
// with a liveness predicate), not by mutating the ring, so every peer in a
// cluster computes identical ownership from the same static peer list.
type Ring struct {
	points []ringPoint
	peers  []string
}

// ringPoint is one virtual node: a position on the 64-bit ring owned by a
// peer.
type ringPoint struct {
	pos  uint64
	peer string
}

// NewRing builds a ring over peers with vnodes virtual nodes each (<= 0
// means DefaultVirtualNodes). Peer order does not matter — positions
// depend only on the peer names — and duplicate peers are collapsed.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(peers))
	r := &Ring{}
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer address")
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		r.peers = append(r.peers, p)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				pos:  hashPos(fmt.Sprintf("%s#%d", p, i)),
				peer: p,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return a.peer < b.peer // total order even on (astronomically rare) collisions
	})
	sort.Strings(r.peers)
	return r, nil
}

// hashPos maps a label (a vnode name or a cache key) onto the ring.
func hashPos(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// Peers returns the distinct peers on the ring, sorted.
func (r *Ring) Peers() []string {
	out := make([]string, len(r.peers))
	copy(out, r.peers)
	return out
}

// Owner returns the peer owning key: the first virtual node clockwise from
// the key's ring position.
func (r *Ring) Owner(key string) string {
	return r.OwnerAmong(key, nil)
}

// OwnerAmong returns the owner of key among live peers: the first virtual
// node clockwise whose peer satisfies alive (nil means every peer is
// live). This is the rebalance rule — a dead peer's keys fall through to
// the next distinct peers clockwise, while keys owned by live peers keep
// their owner. Returns "" when no peer is alive.
func (r *Ring) OwnerAmong(key string, alive func(peer string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	pos := hashPos(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if alive == nil || alive(p.peer) {
			return p.peer
		}
	}
	return ""
}
