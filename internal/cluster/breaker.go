package cluster

import (
	"sync"
	"time"
)

// Breaker defaults; see NewBreaker.
const (
	// DefaultFailThreshold is the consecutive-failure count that opens a
	// breaker.
	DefaultFailThreshold = 3
	// DefaultBaseBackoff is the open duration after the first trip; each
	// consecutive trip doubles it.
	DefaultBaseBackoff = 500 * time.Millisecond
	// DefaultMaxBackoff caps the exponential open duration.
	DefaultMaxBackoff = 10 * time.Second
)

// Breaker is a per-peer circuit breaker. Closed, it admits every call.
// After FailThreshold consecutive failures it opens: calls are refused
// without touching the network until the backoff expires, then exactly one
// probe is admitted (half-open). A successful probe closes the breaker and
// resets the backoff; a failed one reopens it for twice as long, up to
// MaxBackoff. All methods are safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	failures  int       // consecutive failures since the last success
	trips     int       // consecutive opens since the last success
	openUntil time.Time // zero when closed
	probing   bool      // a half-open probe is in flight
	threshold int
	base      time.Duration
	max       time.Duration
	now       func() time.Time // injected clock for tests
}

// NewBreaker returns a closed breaker with the default thresholds.
func NewBreaker() *Breaker {
	return &Breaker{
		threshold: DefaultFailThreshold,
		base:      DefaultBaseBackoff,
		max:       DefaultMaxBackoff,
		now:       time.Now,
	}
}

// Allow reports whether a call may proceed, consuming the half-open probe
// slot when the backoff has expired. Callers that proceed must report the
// outcome through Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if b.now().Before(b.openUntil) {
		return false
	}
	// Backoff expired: admit one probe at a time.
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// Blocked reports whether the breaker is currently refusing calls, without
// consuming the probe slot. Membership routing uses it to steer keys away
// from a tripped peer before attempting a forward.
func (b *Breaker) Blocked() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openUntil.IsZero() && b.now().Before(b.openUntil)
}

// Success records a successful call, closing the breaker and resetting the
// consecutive-failure count and backoff.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.trips = 0
	b.openUntil = time.Time{}
	b.probing = false
}

// Failure records a failed call; at the threshold the breaker opens with
// exponential backoff (doubling per consecutive trip, capped at max).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.probing = false
	if !b.openUntil.IsZero() && !b.now().Before(b.openUntil) {
		// A failed half-open probe: reopen immediately, doubled.
		b.trip()
		return
	}
	if b.failures >= b.threshold && b.openUntil.IsZero() {
		b.trip()
	}
}

// trip opens the breaker for the current backoff; callers hold b.mu.
func (b *Breaker) trip() {
	d := b.base << b.trips
	if d > b.max || d <= 0 {
		d = b.max
	}
	b.trips++
	b.openUntil = b.now().Add(d)
	b.failures = 0
}
