package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
)

// testPeer is an httptest server acting as a remote bgperfd: healthy (or
// not) at /healthz, echoing at /v1/solve.
func testPeer(t *testing.T, healthy *atomic.Bool) (addr string, hits *atomic.Int64) {
	t.Helper()
	hits = &atomic.Int64{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			if healthy.Load() {
				w.WriteHeader(http.StatusOK)
			} else {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
		case "/v1/solve":
			hits.Add(1)
			if r.Header.Get(ForwardedHeader) != "1" {
				t.Errorf("forwarded request missing %s header", ForwardedHeader)
			}
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"echo":true}`))
		}
	}))
	t.Cleanup(ts.Close)
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host, hits
}

// newTestCluster builds a cluster of self plus the given remote addresses,
// with background probing disabled (tests drive CheckHealth directly).
func newTestCluster(t *testing.T, self string, remotes ...string) *Cluster {
	t.Helper()
	c, err := New(Config{
		Self:           self,
		Peers:          append([]string{self}, remotes...),
		HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Self: "a:1", Peers: []string{"b:1"}}); err == nil {
		t.Fatal("self outside the peer list accepted")
	}
	if _, err := New(Config{Self: "a:1"}); err == nil {
		t.Fatal("empty peer list accepted")
	}
}

func TestForwardAndStatus(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	addr, hits := testPeer(t, &healthy)
	c := newTestCluster(t, "self:0", addr)

	body, status, err := c.Forward(context.Background(), addr, "/v1/solve", []byte(`{"x":1}`))
	if err != nil || status != http.StatusOK {
		t.Fatalf("Forward = %d, %v", status, err)
	}
	if !strings.Contains(string(body), `"echo":true`) {
		t.Fatalf("unexpected forward body %s", body)
	}
	if hits.Load() != 1 {
		t.Fatalf("peer saw %d solves, want 1", hits.Load())
	}
	st := c.Status()
	if len(st) != 2 || !st[0].Self || st[0].Addr != "self:0" {
		t.Fatalf("status = %+v", st)
	}
	var buf []byte
	if buf, err = json.Marshal(st); err != nil || !strings.Contains(string(buf), addr) {
		t.Fatalf("status not serializable with peer row: %s %v", buf, err)
	}
}

func TestForwardToUnknownPeer(t *testing.T) {
	c := newTestCluster(t, "self:0")
	if _, _, err := c.Forward(context.Background(), "ghost:1", "/v1/solve", nil); err == nil {
		t.Fatal("forward to unknown peer succeeded")
	}
}

// TestHealthMarksPeerDownAndRecovers pins membership semantics: a failing
// (or draining) /healthz takes the peer out of routing, and a passing one
// brings it back.
func TestHealthMarksPeerDownAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	addr, _ := testPeer(t, &healthy)
	c := newTestCluster(t, "self:0", addr)

	// Find a key the remote owns while up.
	var key string
	for i := 0; ; i++ {
		if k := keyFor(i); c.ring.Owner(k) == addr {
			key = k
			break
		}
	}
	if peer, local := c.Owner(key); local || peer != addr {
		t.Fatalf("key not routed to its owner: peer=%s local=%v", peer, local)
	}

	healthy.Store(false) // peer starts draining: healthz flips to 503
	c.CheckHealth(context.Background())
	if peer, local := c.Owner(key); !local || peer != "self:0" {
		t.Fatalf("down peer still routed to: peer=%s local=%v", peer, local)
	}

	healthy.Store(true)
	c.CheckHealth(context.Background())
	if peer, local := c.Owner(key); local || peer != addr {
		t.Fatalf("recovered peer not routed to: peer=%s local=%v", peer, local)
	}
}

// TestForwardFailureTripsBreakerAndFallsBack pins the degrade path: a dead
// peer's forwards fail with ErrPeerUnavailable, the breaker opens after
// the threshold, Owner routes the dead peer's keys to self, and Forward
// refuses instantly while open.
func TestForwardFailureTripsBreakerAndFallsBack(t *testing.T) {
	// A peer nobody listens on: forwards fail with connection refused.
	dead := "127.0.0.1:1" // reserved port: refused immediately
	cDead := newTestCluster(t, "self:0", dead)
	var key string
	for i := 0; ; i++ {
		if k := keyFor(i); cDead.ring.Owner(k) == dead {
			key = k
			break
		}
	}
	ctx := context.Background()
	// One Forward call retries internally and records >= 2 failures; after
	// enough calls the breaker must be open.
	var lastErr error
	for i := 0; i < DefaultFailThreshold; i++ {
		_, _, lastErr = cDead.Forward(ctx, dead, "/v1/solve", []byte(`{}`))
		if lastErr == nil {
			t.Fatal("forward to a dead peer succeeded")
		}
	}
	if !strings.Contains(lastErr.Error(), "peer unavailable") {
		t.Fatalf("error does not wrap ErrPeerUnavailable: %v", lastErr)
	}
	// The failed forwards marked the peer down: its keys now answer locally.
	if peer, local := cDead.Owner(key); !local || peer != "self:0" {
		t.Fatalf("dead peer still owns keys after breaker trip: peer=%s local=%v", peer, local)
	}
	st := cDead.Status()
	if len(st) != 2 || st[1].Up {
		t.Fatalf("dead peer still marked up: %+v", st)
	}
}
