package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// keyFor derives a valid-looking cache key from a seed.
func keyFor(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := NewRing([]string{"a:1", ""}, 0); err == nil {
		t.Fatal("empty peer address accepted")
	}
	r, err := NewRing([]string{"a:1", "a:1", "b:1"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Peers(); len(got) != 2 {
		t.Fatalf("duplicate peers not collapsed: %v", got)
	}
}

// TestRingDeterministicAndOrderInsensitive pins that every cluster member
// computes identical ownership from the same peer set, whatever the order
// of its -peers flag.
func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a, err := NewRing([]string{"n1:8377", "n2:8377", "n3:8377"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3:8377", "n1:8377", "n2:8377"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		k := keyFor(i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %d owned by %s on ring a but %s on ring b", i, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingBalance checks the virtual nodes spread keys within a loose
// uniformity band: each of 3 peers owns between half and double its fair
// share of 3000 keys.
func TestRingBalance(t *testing.T) {
	peers := []string{"n1:8377", "n2:8377", "n3:8377"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(keyFor(i))]++
	}
	fair := n / len(peers)
	for _, p := range peers {
		if counts[p] < fair/2 || counts[p] > fair*2 {
			t.Fatalf("peer %s owns %d of %d keys; fair share %d (distribution %v)", p, counts[p], n, fair, counts)
		}
	}
}

// TestRingRebalanceOnPeerLoss pins the consistent-hashing contract: losing
// a peer moves only the keys it owned, and they redistribute to the
// survivors; keys owned by survivors never move.
func TestRingRebalanceOnPeerLoss(t *testing.T) {
	peers := []string{"n1:8377", "n2:8377", "n3:8377"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	before := make([]string, n)
	for i := 0; i < n; i++ {
		before[i] = r.Owner(keyFor(i))
	}
	dead := "n2:8377"
	alive := func(p string) bool { return p != dead }
	moved := map[string]int{}
	for i := 0; i < n; i++ {
		after := r.OwnerAmong(keyFor(i), alive)
		if after == dead {
			t.Fatalf("key %d still routed to the dead peer", i)
		}
		if before[i] != dead {
			if after != before[i] {
				t.Fatalf("key %d owned by live peer %s moved to %s on unrelated peer loss", i, before[i], after)
			}
			continue
		}
		moved[after]++
	}
	// The dead peer's share must spread over both survivors, not pile onto
	// one (that is what the virtual nodes buy).
	if len(moved) != 2 {
		t.Fatalf("dead peer's keys went to %d survivors, want 2: %v", len(moved), moved)
	}
}

func TestRingAllDead(t *testing.T) {
	r, err := NewRing([]string{"n1:8377"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if owner := r.OwnerAmong(keyFor(1), func(string) bool { return false }); owner != "" {
		t.Fatalf("ring with no live peers returned owner %q", owner)
	}
}
