package markov

import (
	"math"
	"testing"

	"bgperf/internal/mat"
)

func TestTransientTwoStateClosedForm(t *testing.T) {
	// For Q = [[−a,a],[b,−b]] starting in state 0:
	// p00(t) = b/(a+b) + a/(a+b)·e^{−(a+b)t}.
	const a, b = 1.5, 0.5
	q := twoStateGen(a, b)
	times := []float64{0, 0.1, 0.5, 1, 3, 10}
	dists, err := Transient(q, []float64{1, 0}, times)
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range times {
		want := b/(a+b) + a/(a+b)*math.Exp(-(a+b)*tm)
		if got := dists[i][0]; math.Abs(got-want) > 1e-10 {
			t.Errorf("p00(%v) = %v, want %v", tm, got, want)
		}
	}
}

func TestTransientConvergesToStationary(t *testing.T) {
	q := mat.MustFromRows([][]float64{
		{-2, 1, 1},
		{1, -3, 2},
		{0.5, 0.5, -1},
	})
	pi, err := StationaryCTMC(q)
	if err != nil {
		t.Fatal(err)
	}
	dists, err := Transient(q, []float64{0, 0, 1}, []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if math.Abs(dists[0][i]-pi[i]) > 1e-9 {
			t.Errorf("state %d: transient %v vs stationary %v", i, dists[0][i], pi[i])
		}
	}
}

func TestTransientZeroTimeIsInitial(t *testing.T) {
	q := twoStateGen(1, 1)
	dists, err := Transient(q, []float64{0.25, 0.75}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dists[0][0]-0.25) > 1e-12 || math.Abs(dists[0][1]-0.75) > 1e-12 {
		t.Errorf("π(0) = %v, want initial vector", dists[0])
	}
}

func TestTransientMassConserved(t *testing.T) {
	q := mat.MustFromRows([][]float64{
		{-5, 5, 0},
		{0, -10, 10},
		{1, 0, -1},
	})
	dists, err := Transient(q, []float64{1, 0, 0}, []float64{0.01, 0.1, 1, 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dists {
		var sum float64
		for _, v := range d {
			if v < 0 {
				t.Fatalf("negative mass at time index %d: %v", i, d)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("time index %d: mass %v", i, sum)
		}
	}
}

func TestTransientValidation(t *testing.T) {
	q := twoStateGen(1, 1)
	if _, err := Transient(q, []float64{1}, []float64{1}); err == nil {
		t.Error("wrong-length initial vector accepted")
	}
	if _, err := Transient(q, []float64{0.5, 0.4}, []float64{1}); err == nil {
		t.Error("deficient initial vector accepted")
	}
	if _, err := Transient(q, []float64{-0.5, 1.5}, []float64{1}); err == nil {
		t.Error("negative initial mass accepted")
	}
	if _, err := Transient(q, []float64{1, 0}, []float64{2, 1}); err == nil {
		t.Error("decreasing times accepted")
	}
	if _, err := Transient(q, []float64{1, 0}, []float64{-1}); err == nil {
		t.Error("negative time accepted")
	}
	out, err := Transient(q, []float64{1, 0}, nil)
	if err != nil || out != nil {
		t.Errorf("empty times: got %v, %v", out, err)
	}
}
