package markov

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bgperf/internal/mat"
)

func twoStateGen(a, b float64) *mat.Matrix {
	return mat.MustFromRows([][]float64{
		{-a, a},
		{b, -b},
	})
}

func TestCheckGeneratorValid(t *testing.T) {
	if err := CheckGenerator(twoStateGen(1, 2), 0); err != nil {
		t.Errorf("valid generator rejected: %v", err)
	}
}

func TestCheckGeneratorRejects(t *testing.T) {
	tests := []struct {
		name string
		q    *mat.Matrix
	}{
		{"nonzero row sum", mat.MustFromRows([][]float64{{-1, 2}, {1, -1}})},
		{"negative off-diagonal", mat.MustFromRows([][]float64{{1, -1}, {1, -1}})},
		{"positive diagonal", mat.MustFromRows([][]float64{{1, -1}, {2, -2}})},
		{"not square", mat.New(2, 3)},
		{"NaN", mat.MustFromRows([][]float64{{math.NaN(), 0}, {0, 0}})},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := CheckGenerator(tt.q, 0); err == nil {
				t.Error("invalid generator accepted")
			}
		})
	}
}

func TestCheckStochastic(t *testing.T) {
	p := mat.MustFromRows([][]float64{{0.25, 0.75}, {0.5, 0.5}})
	if err := CheckStochastic(p, 0); err != nil {
		t.Errorf("valid stochastic matrix rejected: %v", err)
	}
	bad := mat.MustFromRows([][]float64{{0.5, 0.4}, {0.5, 0.5}})
	if err := CheckStochastic(bad, 0); err == nil {
		t.Error("defective stochastic matrix accepted")
	}
	neg := mat.MustFromRows([][]float64{{1.5, -0.5}, {0.5, 0.5}})
	if err := CheckStochastic(neg, 0); err == nil {
		t.Error("negative entry accepted")
	}
}

func TestStationaryCTMCTwoState(t *testing.T) {
	// Birth rate a, death rate b: π = (b, a)/(a+b).
	pi, err := StationaryCTMC(twoStateGen(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.75) > 1e-12 || math.Abs(pi[1]-0.25) > 1e-12 {
		t.Errorf("pi = %v, want [0.75 0.25]", pi)
	}
}

func TestStationaryCTMCBirthDeath(t *testing.T) {
	// 3-state birth-death with birth 1, death 2: geometric with ratio 1/2.
	q := mat.MustFromRows([][]float64{
		{-1, 1, 0},
		{2, -3, 1},
		{0, 2, -2},
	})
	pi, err := StationaryCTMC(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4.0 / 7, 2.0 / 7, 1.0 / 7}
	for i := range want {
		if math.Abs(pi[i]-want[i]) > 1e-12 {
			t.Errorf("pi[%d] = %v, want %v", i, pi[i], want[i])
		}
	}
}

func TestStationaryCTMCReducible(t *testing.T) {
	// Two absorbing states: zero generator is reducible.
	q := mat.New(2, 2)
	if _, err := StationaryCTMC(q); err == nil {
		t.Error("reducible chain accepted")
	} else if !errors.Is(err, ErrReducible) {
		t.Errorf("error = %v, want ErrReducible", err)
	}
}

func TestStationaryDTMC(t *testing.T) {
	p := mat.MustFromRows([][]float64{{0.5, 0.5}, {0.25, 0.75}})
	pi, err := StationaryDTMC(p)
	if err != nil {
		t.Fatal(err)
	}
	// Balance: pi0*0.5 = pi1*0.25 => pi = (1/3, 2/3).
	if math.Abs(pi[0]-1.0/3) > 1e-12 {
		t.Errorf("pi = %v, want [1/3 2/3]", pi)
	}
}

func TestStationaryDTMCIdentityReducible(t *testing.T) {
	if _, err := StationaryDTMC(mat.Identity(3)); err == nil {
		t.Error("identity DTMC (reducible) accepted")
	}
}

func TestUniformize(t *testing.T) {
	q := twoStateGen(1, 4)
	p, theta := Uniformize(q)
	if theta < 4 {
		t.Errorf("theta = %v, want >= 4", theta)
	}
	if err := CheckStochastic(p, 1e-9); err != nil {
		t.Errorf("uniformized matrix not stochastic: %v", err)
	}
	// Same stationary distribution.
	piQ, err := StationaryCTMC(q)
	if err != nil {
		t.Fatal(err)
	}
	piP, err := StationaryDTMC(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range piQ {
		if math.Abs(piQ[i]-piP[i]) > 1e-9 {
			t.Errorf("stationary mismatch at %d: ctmc %v dtmc %v", i, piQ[i], piP[i])
		}
	}
}

func TestUniformizeZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniformize(0) did not panic")
		}
	}()
	Uniformize(mat.New(2, 2))
}

func TestEmbeddedDTMC(t *testing.T) {
	q := mat.MustFromRows([][]float64{
		{-2, 1, 1},
		{0, -3, 3},
		{1, 1, -2},
	})
	p := EmbeddedDTMC(q)
	if err := CheckStochastic(p, 1e-12); err != nil {
		t.Fatalf("embedded chain not stochastic: %v", err)
	}
	if p.At(0, 1) != 0.5 || p.At(1, 2) != 1 {
		t.Errorf("unexpected embedded chain: %v", p)
	}
}

func TestEmbeddedDTMCAbsorbing(t *testing.T) {
	q := mat.MustFromRows([][]float64{
		{-1, 1},
		{0, 0},
	})
	p := EmbeddedDTMC(q)
	if p.At(1, 1) != 1 {
		t.Errorf("absorbing state should self-loop, got %v", p)
	}
}

func TestExpectedHoldingTimes(t *testing.T) {
	q := mat.MustFromRows([][]float64{
		{-4, 4},
		{0, 0},
	})
	h := ExpectedHoldingTimes(q)
	if h[0] != 0.25 || !math.IsInf(h[1], 1) {
		t.Errorf("holding times = %v", h)
	}
}

// randomGenerator builds an irreducible generator with positive off-diagonal
// rates in (0, 1].
func randomGenerator(rng *rand.Rand, n int) *mat.Matrix {
	q := mat.New(n, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.Float64() + 1e-3
			q.Set(i, j, v)
			sum += v
		}
		q.Set(i, i, -sum)
	}
	return q
}

func TestQuickStationaryResidual(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%6) + 2
		rng := rand.New(rand.NewSource(seed))
		q := randomGenerator(rng, n)
		pi, err := StationaryCTMC(q)
		if err != nil {
			return false
		}
		if math.Abs(mat.Sum(pi)-1) > 1e-9 {
			return false
		}
		res := q.VecMul(pi)
		for _, v := range res {
			if math.Abs(v) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickUniformizePreservesStationary(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%5) + 2
		rng := rand.New(rand.NewSource(seed))
		q := randomGenerator(rng, n)
		p, _ := Uniformize(q)
		piQ, err1 := StationaryCTMC(q)
		piP, err2 := StationaryDTMC(p)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range piQ {
			if math.Abs(piQ[i]-piP[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGTHMatchesLU(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%6) + 2
		rng := rand.New(rand.NewSource(seed))
		q := randomGenerator(rng, n)
		lu, err1 := StationaryCTMC(q)
		gth, err2 := StationaryCTMCGTH(q)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range lu {
			if math.Abs(lu[i]-gth[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGTHStiffGenerator(t *testing.T) {
	// Rates spanning 12 orders of magnitude: GTH stays exact where naive
	// elimination loses digits. Closed form for the 2-state chain:
	// π = (b, a)/(a+b).
	const a, b = 1e6, 1e-6
	pi, err := StationaryCTMCGTH(twoStateGen(a, b))
	if err != nil {
		t.Fatal(err)
	}
	want0 := b / (a + b)
	if math.Abs(pi[0]-want0) > 1e-15*want0 && math.Abs(pi[0]-want0) > 1e-24 {
		t.Errorf("pi[0] = %v, want %v", pi[0], want0)
	}
	if math.Abs(pi[0]+pi[1]-1) > 1e-15 {
		t.Errorf("mass = %v", pi[0]+pi[1])
	}
}

func TestGTHTraceMMPPGenerators(t *testing.T) {
	// The paper's Soft.Dev. modulating chain (rates ~1e-6): both solvers
	// agree; GTH serves as the reference.
	q := mat.MustFromRows([][]float64{
		{-0.9e-6, 0.9e-6},
		{1.9e-6, -1.9e-6},
	})
	lu, err := StationaryCTMC(q)
	if err != nil {
		t.Fatal(err)
	}
	gth, err := StationaryCTMCGTH(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lu {
		if math.Abs(lu[i]-gth[i]) > 1e-12 {
			t.Errorf("state %d: LU %v vs GTH %v", i, lu[i], gth[i])
		}
	}
}

func TestGTHRejects(t *testing.T) {
	if _, err := StationaryCTMCGTH(mat.New(2, 2)); err == nil {
		t.Error("zero generator accepted")
	}
	// Absorbing upper state: state 1 cannot reach state 0.
	q := mat.MustFromRows([][]float64{{-1, 1}, {0, 0}})
	if _, err := StationaryCTMCGTH(q); err == nil {
		t.Error("reducible chain accepted")
	}
}

func TestGTHSingleState(t *testing.T) {
	pi, err := StationaryCTMCGTH(mat.New(1, 1))
	if err != nil || len(pi) != 1 || pi[0] != 1 {
		t.Errorf("single state: %v, %v", pi, err)
	}
}
