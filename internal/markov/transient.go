package markov

import (
	"fmt"
	"math"

	"bgperf/internal/mat"
)

// Transient computes the state distribution of the CTMC with generator q at
// each of the given times, starting from pi0, by uniformization:
//
//	π(t) = Σ_k e^{−θt}(θt)^k/k! · π0·Pᵏ,  P = I + Q/θ.
//
// The Poisson sum is truncated adaptively so the neglected mass stays below
// 1e-12 per time point. Times must be nondecreasing and nonnegative; the
// returned slice has one distribution per time.
func Transient(q *mat.Matrix, pi0 []float64, times []float64) ([][]float64, error) {
	n := q.Rows()
	if len(pi0) != n {
		return nil, fmt.Errorf("%w: initial vector has %d entries for %d states", ErrNotGenerator, len(pi0), n)
	}
	if err := CheckGenerator(q, 0); err != nil {
		return nil, err
	}
	var mass float64
	for i, v := range pi0 {
		if v < 0 {
			return nil, fmt.Errorf("markov: negative initial mass %g at state %d", v, i)
		}
		mass += v
	}
	if math.Abs(mass-1) > 1e-9 {
		return nil, fmt.Errorf("markov: initial vector sums to %g", mass)
	}
	prev := math.Inf(-1)
	for _, t := range times {
		if t < 0 || math.IsNaN(t) {
			return nil, fmt.Errorf("markov: invalid time %g", t)
		}
		if t < prev {
			return nil, fmt.Errorf("markov: times must be nondecreasing")
		}
		prev = t
	}
	if len(times) == 0 {
		return nil, nil
	}

	p, theta := Uniformize(q)
	pT := p.Transpose()
	out := make([][]float64, len(times))

	// Powers π0·Pᵏ are shared across time points: compute them lazily and
	// keep only the running vector; for each time accumulate the Poisson-
	// weighted sum as k advances. Since times are sorted, process all times
	// in one sweep up to the largest needed k.
	maxT := times[len(times)-1]
	lambdaMax := theta * maxT
	kMax := int(lambdaMax+12*math.Sqrt(lambdaMax+4)) + 40

	// Per-time Poisson log-weights are generated incrementally.
	type acc struct {
		lambda  float64
		logTerm float64 // log of e^{−λ}λ^k/k!
		sum     []float64
	}
	accs := make([]*acc, len(times))
	for i, t := range times {
		accs[i] = &acc{lambda: theta * t, logTerm: -theta * t, sum: make([]float64, n)}
	}
	v := make([]float64, n)
	copy(v, pi0)
	for k := 0; k <= kMax; k++ {
		for _, a := range accs {
			w := math.Exp(a.logTerm)
			if w > 0 {
				for i := range a.sum {
					a.sum[i] += w * v[i]
				}
			}
			if a.lambda > 0 {
				a.logTerm += math.Log(a.lambda) - math.Log(float64(k+1))
			} else {
				a.logTerm = math.Inf(-1)
			}
		}
		if k < kMax {
			v = pT.MulVec(v)
		}
	}
	for i, a := range accs {
		// Renormalize the tiny truncated tail.
		total := mat.Sum(a.sum)
		if total <= 0 {
			return nil, fmt.Errorf("markov: transient mass lost at t=%g", times[i])
		}
		mat.ScaleVec(a.sum, 1/total)
		out[i] = a.sum
	}
	return out, nil
}
