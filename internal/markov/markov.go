// Package markov provides continuous- and discrete-time Markov chain
// utilities: generator and stochastic-matrix validation, stationary
// distributions of finite irreducible chains, and uniformization.
//
// These primitives underpin both the arrival-process library (stationary
// phase vectors of MMPPs) and the QBD solver (drift conditions, logarithmic
// reduction on the uniformized chain).
package markov

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"bgperf/internal/mat"
)

// stationaryCount counts StationaryCTMC solves process-wide; see
// StationaryCalls.
var stationaryCount atomic.Int64

// StationaryCalls returns the cumulative number of StationaryCTMC solves
// performed process-wide since start or the last ResetStationaryCalls. It
// exists so tests can assert call budgets on solver paths (e.g. that a QBD
// solve runs exactly one drift computation). Safe for concurrent use.
func StationaryCalls() int64 { return stationaryCount.Load() }

// ResetStationaryCalls zeroes the counter reported by StationaryCalls.
func ResetStationaryCalls() { stationaryCount.Store(0) }

// ErrNotGenerator reports a matrix that is not a CTMC infinitesimal
// generator (nonnegative off-diagonal entries, zero row sums).
var ErrNotGenerator = errors.New("markov: not an infinitesimal generator")

// ErrNotStochastic reports a matrix that is not row stochastic.
var ErrNotStochastic = errors.New("markov: not a stochastic matrix")

// ErrReducible reports a chain whose stationary system is singular, which for
// our use means the chain is reducible or otherwise degenerate.
var ErrReducible = errors.New("markov: chain has no unique stationary distribution")

// defaultTol is the validation tolerance for row sums and signs.
const defaultTol = 1e-9

// CheckGenerator verifies that q is a CTMC generator: square, finite,
// nonnegative off-diagonal, non-positive diagonal, and row sums zero within
// tol (defaultTol when tol <= 0).
func CheckGenerator(q *mat.Matrix, tol float64) error {
	if tol <= 0 {
		tol = defaultTol
	}
	n := q.Rows()
	if n != q.Cols() {
		return fmt.Errorf("%w: %dx%d is not square", ErrNotGenerator, q.Rows(), q.Cols())
	}
	if !q.IsFinite() {
		return fmt.Errorf("%w: non-finite entries", ErrNotGenerator)
	}
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			v := q.At(i, j)
			sum += v
			if i == j {
				if v > tol {
					return fmt.Errorf("%w: positive diagonal %g at row %d", ErrNotGenerator, v, i)
				}
			} else if v < -tol {
				return fmt.Errorf("%w: negative off-diagonal %g at (%d,%d)", ErrNotGenerator, v, i, j)
			}
		}
		scale := math.Max(1, math.Abs(q.At(i, i)))
		if math.Abs(sum) > tol*scale {
			return fmt.Errorf("%w: row %d sums to %g", ErrNotGenerator, i, sum)
		}
	}
	return nil
}

// CheckStochastic verifies that p is a row-stochastic matrix within tol.
func CheckStochastic(p *mat.Matrix, tol float64) error {
	if tol <= 0 {
		tol = defaultTol
	}
	n := p.Rows()
	if n != p.Cols() {
		return fmt.Errorf("%w: %dx%d is not square", ErrNotStochastic, p.Rows(), p.Cols())
	}
	if !p.IsFinite() {
		return fmt.Errorf("%w: non-finite entries", ErrNotStochastic)
	}
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			v := p.At(i, j)
			if v < -tol {
				return fmt.Errorf("%w: negative entry %g at (%d,%d)", ErrNotStochastic, v, i, j)
			}
			sum += v
		}
		if math.Abs(sum-1) > tol {
			return fmt.Errorf("%w: row %d sums to %g", ErrNotStochastic, i, sum)
		}
	}
	return nil
}

// StationaryCTMC returns the stationary probability vector π of the
// irreducible CTMC with generator q: πQ = 0, πe = 1.
func StationaryCTMC(q *mat.Matrix) ([]float64, error) {
	stationaryCount.Add(1)
	if err := CheckGenerator(q, 0); err != nil {
		return nil, err
	}
	return stationaryFromSingular(q)
}

// StationaryDTMC returns the stationary probability vector π of the
// irreducible DTMC with transition matrix p: πP = π, πe = 1.
func StationaryDTMC(p *mat.Matrix) ([]float64, error) {
	if err := CheckStochastic(p, 0); err != nil {
		return nil, err
	}
	q := p.SubMat(mat.Identity(p.Rows()))
	return stationaryFromSingular(q)
}

// stationaryFromSingular solves x·M = 0, x·e = 1 where M has a one-
// dimensional left null space, by replacing the last column of M with ones.
func stationaryFromSingular(m *mat.Matrix) ([]float64, error) {
	n := m.Rows()
	if n == 0 {
		return nil, ErrReducible
	}
	a := m.Clone()
	for i := 0; i < n; i++ {
		a.Set(i, n-1, 1)
	}
	rhs := make([]float64, n)
	rhs[n-1] = 1
	x, err := mat.SolveLeft(a, rhs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrReducible, err)
	}
	// Clamp tiny negative round-off and renormalize.
	var sum float64
	for i, v := range x {
		if v < 0 {
			if v < -1e-8 {
				return nil, fmt.Errorf("%w: negative stationary mass %g", ErrReducible, v)
			}
			x[i] = 0
			v = 0
		}
		sum += v
	}
	if sum <= 0 {
		return nil, ErrReducible
	}
	mat.ScaleVec(x, 1/sum)
	return x, nil
}

// Uniformize converts the generator q into the transition matrix of its
// uniformized DTMC, P = I + Q/θ, and returns (P, θ). The uniformization rate
// θ is max_i |q_ii| inflated slightly so P stays strictly substochastic in
// each transient row, which improves the numerical behaviour of logarithmic
// reduction. Uniformize panics if q has a zero diagonal everywhere (no
// transitions at all).
func Uniformize(q *mat.Matrix) (*mat.Matrix, float64) {
	n := q.Rows()
	theta := 0.0
	for i := 0; i < n; i++ {
		if d := -q.At(i, i); d > theta {
			theta = d
		}
	}
	if theta == 0 {
		panic("markov: cannot uniformize the zero generator")
	}
	theta *= 1 + 1e-12
	p := q.Clone().Scale(1 / theta)
	for i := 0; i < n; i++ {
		p.Add(i, i, 1)
	}
	return p, theta
}

// EmbeddedDTMC returns the jump-chain transition matrix of the CTMC with
// generator q: P[i][j] = q_ij / (−q_ii) for i ≠ j. States with zero exit rate
// (absorbing) get a self-loop.
func EmbeddedDTMC(q *mat.Matrix) *mat.Matrix {
	n := q.Rows()
	p := mat.New(n, n)
	for i := 0; i < n; i++ {
		exit := -q.At(i, i)
		if exit <= 0 {
			p.Set(i, i, 1)
			continue
		}
		for j := 0; j < n; j++ {
			if j != i {
				p.Set(i, j, q.At(i, j)/exit)
			}
		}
	}
	return p
}

// ExpectedHoldingTimes returns the mean sojourn time 1/(−q_ii) per state;
// +Inf for absorbing states.
func ExpectedHoldingTimes(q *mat.Matrix) []float64 {
	n := q.Rows()
	h := make([]float64, n)
	for i := 0; i < n; i++ {
		exit := -q.At(i, i)
		if exit <= 0 {
			h[i] = math.Inf(1)
			continue
		}
		h[i] = 1 / exit
	}
	return h
}
