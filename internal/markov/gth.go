package markov

import (
	"fmt"

	"bgperf/internal/mat"
)

// StationaryCTMCGTH returns the stationary vector of an irreducible CTMC by
// the Grassmann–Taksar–Heyman (GTH) algorithm. GTH performs state-by-state
// censoring using only additions and multiplications of nonnegative
// quantities — no subtractions — so it is immune to the cancellation that
// can degrade LU-based solves on stiff generators (rates spanning many
// orders of magnitude, as the paper's trace MMPPs do).
func StationaryCTMCGTH(q *mat.Matrix) ([]float64, error) {
	if err := CheckGenerator(q, 0); err != nil {
		return nil, err
	}
	n := q.Rows()
	if n == 0 {
		return nil, ErrReducible
	}
	if n == 1 {
		return []float64{1}, nil
	}
	// Work on the off-diagonal rates only; diagonals are implied.
	a := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				v := q.At(i, j)
				if v < 0 {
					v = 0 // tolerance-level noise from CheckGenerator
				}
				a.Set(i, j, v)
			}
		}
	}
	// Censoring sweep: eliminate states n−1, …, 1. After eliminating state
	// k, a[i][j] (i,j < k) describes the chain watched only on {0..k−1}.
	for k := n - 1; k >= 1; k-- {
		var out float64 // total rate out of state k toward {0..k−1}
		for j := 0; j < k; j++ {
			out += a.At(k, j)
		}
		if out <= 0 {
			return nil, fmt.Errorf("%w: state %d cannot reach lower-indexed states", ErrReducible, k)
		}
		for i := 0; i < k; i++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			scale := aik / out
			for j := 0; j < k; j++ {
				if j != i {
					a.Add(i, j, scale*a.At(k, j))
				}
			}
		}
	}
	// Back substitution: unnormalized π with π[0] = 1.
	pi := make([]float64, n)
	pi[0] = 1
	for k := 1; k < n; k++ {
		var out float64
		for j := 0; j < k; j++ {
			out += a.At(k, j)
		}
		var in float64
		for i := 0; i < k; i++ {
			in += pi[i] * a.At(i, k)
		}
		pi[k] = in / out
	}
	sum := mat.Sum(pi)
	if sum <= 0 {
		return nil, ErrReducible
	}
	return mat.ScaleVec(pi, 1/sum), nil
}
