package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 100
		counts := make([]atomic.Int64, n)
		if err := For(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	if err := For(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := For(4, -3, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty range")
	}
}

// TestForLowestIndexError pins the deterministic error contract: whatever the
// scheduling, the error of the lowest failing index wins.
func TestForLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 2, 8} {
		err := For(workers, 50, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, …
				return fmt.Errorf("index %d: %w", i, sentinel)
			}
			return nil
		})
		if err == nil || !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: want sentinel error, got %v", workers, err)
		}
		if want := "index 3: boom"; err.Error() != want {
			t.Fatalf("workers=%d: want %q, got %q", workers, want, err)
		}
	}
}

// TestForBoundedConcurrency checks the pool never has more than `workers`
// calls in flight.
func TestForBoundedConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := For(workers, 200, func(int) error {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, want <= %d", p, workers)
	}
}

func TestJobs(t *testing.T) {
	var sum atomic.Int64
	jobs := make([]func() error, 10)
	for i := range jobs {
		i := i
		jobs[i] = func() error { sum.Add(int64(i)); return nil }
	}
	if err := Jobs(4, jobs); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 45 {
		t.Fatalf("sum = %d, want 45", got)
	}
	if err := Jobs(2, nil); err != nil {
		t.Fatal(err)
	}
}
