// Package par provides the bounded worker-pool primitive behind the parallel
// experiment sweep engine and the simulator's replication runner. It is
// deliberately tiny — stdlib sync only — and designed for deterministic
// results: callers write results index-addressed into caller-owned storage,
// so output is bit-identical to a serial loop regardless of scheduling.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n) across a bounded pool of workers
// (workers <= 0: runtime.GOMAXPROCS(0), i.e. all cores). fn must be safe to
// call from multiple goroutines and must write any result index-addressed
// into storage owned by the caller; For never reorders or drops indices.
//
// Every index runs regardless of failures elsewhere; afterwards For returns
// the error of the lowest failing index, so error selection matches a serial
// loop that solved every point, independent of goroutine scheduling. With
// one worker (or n <= 1) it degenerates to exactly that serial loop, except
// that the serial path stops at the first error.
func For(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForCtx is For with cooperative cancellation: once ctx is done, indices that
// have not started return ctx.Err() instead of running fn. Indices already in
// flight run to completion (fn may additionally watch ctx itself for prompt
// in-flight aborts). Error selection keeps For's contract — the lowest
// failing index wins — so a canceled sweep deterministically reports the
// first index that did not complete. A nil ctx behaves exactly like For.
func ForCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if ctx == nil {
		return For(workers, n, fn)
	}
	return For(workers, n, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(i)
	})
}

// Jobs runs every closure in jobs across a bounded pool of workers, with the
// same determinism and error-selection contract as For.
func Jobs(workers int, jobs []func() error) error {
	return For(workers, len(jobs), func(i int) error { return jobs[i]() })
}
