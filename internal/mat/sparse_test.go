package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randomStructured returns an n×n matrix with the kind of structure the QBD
// generator blocks have: a scaled identity, a few dense block bands, and
// isolated entries, with overall density below dens.
func randomStructured(rng *rand.Rand, n int, dens float64) *Matrix {
	m := New(n, n)
	// Scaled identity part (A0/A2 of the paper's chain are mostly this).
	if rng.Intn(2) == 0 {
		s := rng.Float64() * 3
		for i := 0; i < n; i++ {
			m.Set(i, i, s)
		}
	}
	// Random entries up to the target density.
	target := int(dens * float64(n*n))
	for e := 0; e < target; e++ {
		m.Set(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
	}
	// A dense sub-block (phase blocks of the modulating MAP).
	if n >= 8 {
		r0, c0 := rng.Intn(n-4), rng.Intn(n-4)
		for i := r0; i < r0+4; i++ {
			for j := c0; j < c0+4; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
	}
	return m
}

// TestSparseMulBitIdentical pins the determinism contract across all three
// multiply paths: for randomized structured matrices, sparse·dense and
// dense·sparse must produce exactly the bits of the dense MulInto (which
// itself straddles the naive and blocked kernels across these sizes).
func TestSparseMulBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 5, 16, 23, 24, 25, 48, 96, 153} {
		for _, dens := range []float64{0, 0.02, 0.1, 0.4} {
			a := randomStructured(rng, n, dens)
			b := New(n, n)
			for i := range b.a {
				b.a[i] = rng.NormFloat64()
			}
			s := NewSparse(a)
			if got := s.Dense(); !got.Equalf(a, 0) {
				t.Fatalf("n=%d dens=%g: Dense(NewSparse(a)) != a", n, dens)
			}

			want := New(n, n)
			want.MulInto(a, b)
			got := New(n, n)
			s.MulInto(got, b)
			requireBits(t, "sparse·dense", n, dens, got, want)

			want.MulInto(b, a)
			s.MulRightInto(got, b)
			requireBits(t, "dense·sparse", n, dens, got, want)
		}
	}
}

// TestSparseMulCounts checks sparse products participate in the process-wide
// MulCount budget, so op-count gates cover every kernel the solvers use.
func TestSparseMulCounts(t *testing.T) {
	a := MustFromRows([][]float64{{1, 0}, {0, 2}})
	b := MustFromRows([][]float64{{3, 4}, {5, 6}})
	s := NewSparse(a)
	dst := New(2, 2)
	ResetMulCount()
	s.MulInto(dst, b)
	s.MulRightInto(dst, b)
	if got := MulCount(); got != 2 {
		t.Fatalf("sparse products counted %d, want 2", got)
	}
}

func requireBits(t *testing.T, what string, n int, dens float64, got, want *Matrix) {
	t.Helper()
	for i := 0; i < got.rows; i++ {
		for j := 0; j < got.cols; j++ {
			g, x := got.At(i, j), want.At(i, j)
			if math.Float64bits(g) != math.Float64bits(x) {
				t.Fatalf("%s n=%d dens=%g: (%d,%d) got bits %x want %x (%g vs %g)",
					what, n, dens, i, j, math.Float64bits(g), math.Float64bits(x), g, x)
			}
		}
	}
}
