package mat

import "testing"

// TestWorkspaceStats pins the pool accounting: first acquisitions are
// misses, re-acquisitions after Release are hits, and a nil workspace
// reports a zero value.
func TestWorkspaceStats(t *testing.T) {
	ws := NewWorkspace()
	m1 := ws.Matrix(3, 3)
	m2 := ws.Matrix(3, 3)
	ws.Release(m1, m2)
	_ = ws.Matrix(3, 3) // served from the pool

	v := ws.Vector(4)
	ws.ReleaseVector(v)
	_ = ws.Vector(4) // hit

	s := ws.Stats()
	if s.MatrixMisses != 2 || s.MatrixHits != 1 {
		t.Errorf("matrix stats = %d hits / %d misses, want 1/2", s.MatrixHits, s.MatrixMisses)
	}
	if s.VectorMisses != 1 || s.VectorHits != 1 {
		t.Errorf("vector stats = %d hits / %d misses, want 1/1", s.VectorHits, s.VectorMisses)
	}

	var nilWS *Workspace
	if got := nilWS.Stats(); got != (WorkspaceStats{}) {
		t.Errorf("nil workspace stats = %+v, want zero", got)
	}
}
