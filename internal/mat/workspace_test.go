package mat

import (
	"math"
	"math/rand"
	"testing"

	"bgperf/internal/raceflag"
)

// randMat returns a rows×cols matrix of uniform(−1,1) entries, with about
// sparsity of them forced to exactly zero (the naive kernel's skip path).
func randMat(rng *rand.Rand, rows, cols int, sparsity float64) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < sparsity {
				continue
			}
			m.Set(i, j, 2*rng.Float64()-1)
		}
	}
	return m
}

// randVec returns a length-n vector of uniform(−1,1) entries.
func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*rng.Float64() - 1
	}
	return v
}

// diagDominant returns a random diagonally dominant n×n matrix (comfortably
// nonsingular, so factorization properties hold).
func diagDominant(rng *rand.Rand, n int) *Matrix {
	m := randMat(rng, n, n, 0)
	for i := 0; i < n; i++ {
		m.Set(i, i, float64(n)+1+rng.Float64())
	}
	return m
}

func requireClose(t *testing.T, got, want *Matrix, tol float64, what string) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", what, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := 0; i < want.Rows(); i++ {
		for j := 0; j < want.Cols(); j++ {
			if d := math.Abs(got.At(i, j) - want.At(i, j)); d > tol {
				t.Fatalf("%s: entry (%d,%d) differs by %g: got %g want %g", what, i, j, d, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func requireCloseVec(t *testing.T, got, want []float64, tol float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > tol {
			t.Fatalf("%s: entry %d differs by %g", what, i, d)
		}
	}
}

// intoShapes is the random shape pool for the *Into property tests: a spread
// of small, rectangular, and above-threshold sizes.
var intoShapes = [][2]int{{1, 1}, {3, 5}, {7, 7}, {12, 4}, {23, 23}, {24, 24}, {25, 31}, {40, 40}}

// TestIntoVariantsMatchAllocating checks every *Into variant against its
// allocating counterpart to 1e-15 across random shapes. The pairs share
// their arithmetic order, so they must agree essentially exactly.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const tol = 1e-15
	for _, shape := range intoShapes {
		r, c := shape[0], shape[1]
		a := randMat(rng, r, c, 0.2)
		b := randMat(rng, r, c, 0.2)

		requireClose(t, New(r, c).AddInto(a, b), a.AddMat(b), tol, "AddInto")
		requireClose(t, New(r, c).SubInto(a, b), a.SubMat(b), tol, "SubInto")
		requireClose(t, New(r, c).ScaleInto(a, 0.37), a.Clone().Scale(0.37), tol, "ScaleInto")
		requireClose(t, New(c, r).TransposeInto(a), a.Transpose(), tol, "TransposeInto")
		requireClose(t, a.CloneInto(New(r, c)), a.Clone(), tol, "CloneInto")

		x := randVec(rng, c)
		requireCloseVec(t, a.MulVecInto(make([]float64, r), x), a.MulVec(x), tol, "MulVecInto")
		y := randVec(rng, r)
		requireCloseVec(t, a.VecMulInto(make([]float64, c), y), a.VecMul(y), tol, "VecMulInto")
		requireCloseVec(t, a.RowSumsInto(make([]float64, r)), a.RowSums(), tol, "RowSumsInto")

		// Aliased destinations, where documented as allowed.
		sum := a.Clone()
		sum.AddInto(sum, b)
		requireClose(t, sum, a.AddMat(b), tol, "AddInto aliasing receiver")
		neg := a.Clone()
		neg.ScaleInto(neg, -1)
		requireClose(t, neg, a.Clone().Scale(-1), tol, "ScaleInto aliasing receiver")
	}
}

// TestLUIntoVariantsMatchAllocating checks FactorizeInto, SolveVecInto,
// SolveMatInto, and InverseInto against Factorize/SolveVec/SolveMat/Inverse
// to 1e-15 across random nonsingular systems, including buffer reuse across
// differently-valued matrices of the same size.
func TestLUIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const tol = 1e-15
	f := &LU{} // reused across every system below, growing as needed
	for _, n := range []int{1, 2, 5, 9, 17, 24, 33} {
		for trial := 0; trial < 3; trial++ {
			a := diagDominant(rng, n)
			want, err := Factorize(a)
			if err != nil {
				t.Fatalf("n=%d: Factorize: %v", n, err)
			}
			if err := FactorizeInto(f, a); err != nil {
				t.Fatalf("n=%d: FactorizeInto: %v", n, err)
			}
			if got, w := f.Det(), want.Det(); math.Abs(got-w) > tol*math.Max(1, math.Abs(w)) {
				t.Fatalf("n=%d: Det %g, want %g", n, got, w)
			}

			bvec := randVec(rng, n)
			requireCloseVec(t, f.SolveVecInto(make([]float64, n), bvec), want.SolveVec(bvec), tol, "SolveVecInto")
			// Aliased right-hand side.
			aliased := append([]float64(nil), bvec...)
			f.SolveVecInto(aliased, aliased)
			requireCloseVec(t, aliased, want.SolveVec(bvec), tol, "SolveVecInto aliased")

			bm := randMat(rng, n, 3, 0)
			requireClose(t, f.SolveMatInto(New(n, 3), bm), want.SolveMat(bm), tol, "SolveMatInto")

			wantInv, err := Inverse(a)
			if err != nil {
				t.Fatalf("n=%d: Inverse: %v", n, err)
			}
			requireClose(t, f.InverseInto(New(n, n)), wantInv, tol, "InverseInto")
		}
	}
}

// TestWorkspaceReuse checks the pooling contract: released buffers come back
// (zeroed) for the same shape, different shapes stay distinct, and a nil
// workspace degrades to plain allocation.
func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace()
	m := ws.Matrix(3, 4)
	m.Set(1, 2, 42)
	ws.Release(m)
	got := ws.Matrix(3, 4)
	if got != m {
		t.Fatal("same-shape acquisition did not reuse the released buffer")
	}
	if got.At(1, 2) != 0 {
		t.Fatal("reused buffer was not zeroed")
	}
	if other := ws.Matrix(4, 3); other == m {
		t.Fatal("transposed shape must not reuse a 3x4 buffer")
	}

	id := ws.Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity entry (%d,%d) = %g", i, j, id.At(i, j))
			}
		}
	}

	v := ws.Vector(5)
	v[3] = 7
	ws.ReleaseVector(v)
	if got := ws.Vector(5); got[3] != 0 {
		t.Fatal("reused vector was not zeroed")
	}

	f := ws.LU(4)
	ws.ReleaseLU(f)
	if got := ws.LU(4); got != f {
		t.Fatal("same-size LU was not reused")
	}

	var nilWS *Workspace
	if nm := nilWS.Matrix(2, 2); nm == nil || nm.Rows() != 2 {
		t.Fatal("nil workspace must allocate")
	}
	nilWS.Release(New(2, 2))             // must not panic
	nilWS.ReleaseVector(nilWS.Vector(3)) // must not panic
	nilWS.ReleaseLU(nilWS.LU(2))         // must not panic
}

// TestIntoKernelsZeroAlloc pins the allocation-free contract of the *Into
// operations and of LU reuse via FactorizeInto — the property the QBD hot
// loops are built on.
func TestIntoKernelsZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	rng := rand.New(rand.NewSource(3))
	const n = 24
	a := diagDominant(rng, n)
	b := randMat(rng, n, n, 0)
	dst := New(n, n)
	x := randVec(rng, n)
	vdst := make([]float64, n)
	f := NewLU(n)

	checks := []struct {
		name string
		fn   func()
	}{
		{"AddInto", func() { dst.AddInto(a, b) }},
		{"SubInto", func() { dst.SubInto(a, b) }},
		{"ScaleInto", func() { dst.ScaleInto(a, 2) }},
		{"TransposeInto", func() { dst.TransposeInto(a) }},
		{"CloneInto", func() { a.CloneInto(dst) }},
		{"MulInto", func() { dst.MulInto(a, b) }},
		{"MulVecInto", func() { a.MulVecInto(vdst, x) }},
		{"VecMulInto", func() { a.VecMulInto(vdst, x) }},
		{"RowSumsInto", func() { a.RowSumsInto(vdst) }},
		{"FactorizeInto+InverseInto", func() {
			if err := FactorizeInto(f, a); err != nil {
				t.Fatal(err)
			}
			f.InverseInto(dst)
		}},
		{"SolveVecInto", func() { f.SolveVecInto(vdst, x) }},
	}
	for _, c := range checks {
		c.fn() // warm up one-time growth
		if allocs := testing.AllocsPerRun(20, c.fn); allocs != 0 {
			t.Errorf("%s allocated %.0f times per run, want 0", c.name, allocs)
		}
	}

	ws := NewWorkspace()
	ws.Release(ws.Matrix(n, n))
	roundTrip := func() { ws.Release(ws.Matrix(n, n)) }
	if allocs := testing.AllocsPerRun(20, roundTrip); allocs != 0 {
		t.Errorf("workspace matrix round trip allocated %.0f times per run, want 0", allocs)
	}
}
