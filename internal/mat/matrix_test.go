package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewZeroValued(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("got %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestSetAtAdd(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Errorf("At(0,1) = %v, want 7", m.At(0, 1))
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("I[%d][%d] = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestDiag(t *testing.T) {
	d := Diag([]float64{2, 3})
	want := MustFromRows([][]float64{{2, 0}, {0, 3}})
	if !d.Equalf(want, 0) {
		t.Errorf("Diag = %v, want %v", d, want)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares backing storage with original")
	}
}

func TestRowAndSetRow(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 100 // must not affect m
	if m.At(1, 0) != 3 {
		t.Error("Row returned a view, want a copy")
	}
	m.SetRow(0, []float64{7, 8})
	if m.At(0, 1) != 8 {
		t.Errorf("SetRow: At(0,1) = %v, want 8", m.At(0, 1))
	}
}

func TestZeroAndScale(t *testing.T) {
	m := MustFromRows([][]float64{{1, -2}})
	m.Scale(3)
	if m.At(0, 1) != -6 {
		t.Errorf("Scale: got %v, want -6", m.At(0, 1))
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Error("Zero did not clear entries")
	}
}

func TestAddSubMat(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	b := MustFromRows([][]float64{{5, 6}, {7, 8}})
	sum := a.AddMat(b)
	diff := sum.SubMat(b)
	if !diff.Equalf(a, 1e-15) {
		t.Error("(a+b)-b != a")
	}
	c := a.Clone()
	c.AddInPlace(b)
	if !c.Equalf(sum, 0) {
		t.Error("AddInPlace disagrees with AddMat")
	}
}

func TestMul(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	b := MustFromRows([][]float64{{0, 1}, {1, 0}})
	got := a.Mul(b)
	want := MustFromRows([][]float64{{2, 1}, {4, 3}})
	if !got.Equalf(want, 1e-15) {
		t.Errorf("a*b = %v, want %v", got, want)
	}
}

func TestMulRectangular(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2, 3}})     // 1x3
	b := MustFromRows([][]float64{{1}, {2}, {3}}) // 3x1
	got := a.Mul(b)                               // 1x1
	if got.Rows() != 1 || got.Cols() != 1 || got.At(0, 0) != 14 {
		t.Errorf("a*b = %v, want [[14]]", got)
	}
}

func TestTranspose(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 1) != 6 {
		t.Errorf("transpose wrong: %v", at)
	}
}

func TestVecMulMulVec(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	x := []float64{1, 1}
	left := a.VecMul(x) // x*a = [4 6]
	if left[0] != 4 || left[1] != 6 {
		t.Errorf("VecMul = %v, want [4 6]", left)
	}
	right := a.MulVec(x) // a*x = [3 7]
	if right[0] != 3 || right[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", right)
	}
}

func TestRowSums(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {-3, 3}})
	s := a.RowSums()
	if s[0] != 3 || s[1] != 0 {
		t.Errorf("RowSums = %v, want [3 0]", s)
	}
}

func TestNorms(t *testing.T) {
	a := MustFromRows([][]float64{{1, -5}, {2, 2}})
	if a.MaxAbs() != 5 {
		t.Errorf("MaxAbs = %v, want 5", a.MaxAbs())
	}
	if a.NormInf() != 6 {
		t.Errorf("NormInf = %v, want 6", a.NormInf())
	}
}

func TestIsFinite(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}})
	if !a.IsFinite() {
		t.Error("finite matrix reported non-finite")
	}
	a.Set(0, 0, math.NaN())
	if a.IsFinite() {
		t.Error("NaN matrix reported finite")
	}
	a.Set(0, 0, math.Inf(1))
	if a.IsFinite() {
		t.Error("Inf matrix reported finite")
	}
}

func TestKron(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	b := MustFromRows([][]float64{{0, 5}, {6, 7}})
	got := a.Kron(b)
	want := MustFromRows([][]float64{
		{0, 5, 0, 10},
		{6, 7, 12, 14},
		{0, 15, 0, 20},
		{18, 21, 24, 28},
	})
	if !got.Equalf(want, 1e-15) {
		t.Errorf("Kron =\n%v, want\n%v", got, want)
	}
}

func TestKronIdentity(t *testing.T) {
	// I ⊗ A is block diagonal with A blocks; (I⊗A)(I⊗B) = I⊗(AB).
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	b := MustFromRows([][]float64{{2, 0}, {1, 1}})
	id := Identity(3)
	lhs := id.Kron(a).Mul(id.Kron(b))
	rhs := id.Kron(a.Mul(b))
	if !lhs.Equalf(rhs, 1e-12) {
		t.Error("(I⊗A)(I⊗B) != I⊗(AB)")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := MustFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 0.8, 1e-12) || !almostEqual(x[1], 1.4, 1e-12) {
		t.Errorf("x = %v, want [0.8 1.4]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system accepted")
	}
}

func TestSolveLeft(t *testing.T) {
	a := MustFromRows([][]float64{{2, 1}, {0, 3}})
	// x*a = [2 7] => x = [1 2]
	x, err := SolveLeft(a, []float64{2, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Errorf("x = %v, want [1 2]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the first diagonal entry forces a row swap.
	a := MustFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	a := MustFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(inv).Equalf(Identity(2), 1e-12) {
		t.Error("a * a^-1 != I")
	}
}

func TestDet(t *testing.T) {
	a := MustFromRows([][]float64{{4, 7}, {2, 6}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Det(), 10, 1e-12) {
		t.Errorf("det = %v, want 10", f.Det())
	}
}

func TestFactorizeNonSquare(t *testing.T) {
	if _, err := Factorize(New(2, 3)); err == nil {
		t.Fatal("non-square factorization accepted")
	}
}

func TestSolveMat(t *testing.T) {
	a := MustFromRows([][]float64{{2, 0}, {0, 4}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.SolveMat(Identity(2))
	want := MustFromRows([][]float64{{0.5, 0}, {0, 0.25}})
	if !x.Equalf(want, 1e-15) {
		t.Errorf("inverse via SolveMat = %v, want %v", x, want)
	}
}

func TestSpectralRadiusDiagonal(t *testing.T) {
	a := Diag([]float64{0.2, 0.9, 0.5})
	r := SpectralRadius(a, 1e-12, 1000)
	if !almostEqual(r, 0.9, 1e-9) {
		t.Errorf("spectral radius = %v, want 0.9", r)
	}
}

func TestSpectralRadiusStochastic(t *testing.T) {
	// Row-stochastic matrices have spectral radius exactly 1.
	p := MustFromRows([][]float64{{0.3, 0.7}, {0.6, 0.4}})
	r := SpectralRadius(p, 1e-12, 1000)
	if !almostEqual(r, 1, 1e-9) {
		t.Errorf("spectral radius = %v, want 1", r)
	}
}

func TestSpectralRadiusZero(t *testing.T) {
	if r := SpectralRadius(New(3, 3), 1e-12, 100); r != 0 {
		t.Errorf("spectral radius of zero matrix = %v, want 0", r)
	}
}

func TestVectorHelpers(t *testing.T) {
	if got := Dot([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := Sum([]float64{1, 2, -0.5}); got != 2.5 {
		t.Errorf("Sum = %v, want 2.5", got)
	}
	v := ScaleVec([]float64{1, 2}, 2)
	if v[1] != 4 {
		t.Errorf("ScaleVec = %v, want [2 4]", v)
	}
	ones := Ones(3)
	if Sum(ones) != 3 {
		t.Errorf("Ones(3) = %v", ones)
	}
}

// randomWellConditioned builds an n×n strictly diagonally dominant matrix,
// which is guaranteed nonsingular.
func randomWellConditioned(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		var rowAbs float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.NormFloat64()
			m.Set(i, j, v)
			rowAbs += math.Abs(v)
		}
		m.Set(i, i, rowAbs+1+rng.Float64())
	}
	return m
}

func TestQuickSolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%8) + 1
		r := rand.New(rand.NewSource(seed))
		a := randomWellConditioned(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		res := a.MulVec(x)
		for i := range res {
			if math.Abs(res[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickInverseRoundTrip(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%6) + 1
		r := rand.New(rand.NewSource(seed))
		a := randomWellConditioned(r, n)
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return a.Mul(inv).Equalf(Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64, r8, c8 uint8) bool {
		rows, cols := int(r8%5)+1, int(c8%5)+1
		r := rand.New(rand.NewSource(seed))
		m := New(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, r.NormFloat64())
			}
		}
		return m.Transpose().Transpose().Equalf(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickKronMixedProduct(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD) for conforming sizes.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(seed%3+3) % 3
		n += 2 // 2..4
		mk := func() *Matrix {
			m := New(n, n)
			for i := range m.a {
				m.a[i] = r.NormFloat64()
			}
			return m
		}
		a, b, c, d := mk(), mk(), mk(), mk()
		lhs := a.Kron(b).Mul(c.Kron(d))
		rhs := a.Mul(c).Kron(b.Mul(d))
		return lhs.Equalf(rhs, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickVecMulMatchesTransposeMulVec(t *testing.T) {
	f := func(seed int64, r8, c8 uint8) bool {
		rows, cols := int(r8%5)+1, int(c8%5)+1
		r := rand.New(rand.NewSource(seed))
		m := New(rows, cols)
		for i := range m.a {
			m.a[i] = r.NormFloat64()
		}
		x := make([]float64, rows)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		lhs := m.VecMul(x)
		rhs := m.Transpose().MulVec(x)
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMul32(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := randomWellConditioned(rng, 32)
	n := randomWellConditioned(rng, 32)
	dst := New(32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.MulInto(m, n)
	}
}

func BenchmarkSolve64(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := randomWellConditioned(rng, 64)
	rhs := make([]float64, 64)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(m, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
