package mat

import (
	"fmt"
	"math"
)

// LU holds the LU factorization with partial pivoting of a square matrix:
// P·A = L·U, stored compactly in lu with the pivot sequence in piv. The
// scratch buffers make the *Into solvers allocation-free, so one LU reused
// via FactorizeInto amortizes to zero allocations per factorization.
type LU struct {
	lu      *Matrix
	piv     []int
	sign    int
	scratch []float64 // permutation staging for SolveVecInto
}

// NewLU returns an n×n factorization shell with all buffers preallocated,
// ready for FactorizeInto.
func NewLU(n int) *LU {
	return &LU{
		lu:      New(n, n),
		piv:     make([]int, n),
		sign:    1,
		scratch: make([]float64, n),
	}
}

// Factorize computes the LU factorization with partial pivoting of the square
// matrix a. It returns ErrSingular when a pivot underflows working precision.
func Factorize(a *Matrix) (*LU, error) {
	f := &LU{}
	if err := FactorizeInto(f, a); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorizeInto factorizes a into f, reusing f's storage and pivot buffers
// when their size matches (and growing them otherwise). a is not modified.
// On ErrSingular the contents of f are unspecified but f remains reusable.
func FactorizeInto(f *LU, a *Matrix) error {
	if a.rows != a.cols {
		return fmt.Errorf("%w: LU of %dx%d matrix", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	if f.lu == nil || f.lu.rows != n {
		f.lu = New(n, n)
		f.piv = make([]int, n)
		f.scratch = make([]float64, n)
	}
	copy(f.lu.a, a.a)
	lu, piv := f.lu, f.piv
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at or below the diagonal.
		p, mx := k, math.Abs(lu.a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.a[i*n+k]); v > mx {
				p, mx = i, v
			}
		}
		if mx == 0 {
			return ErrSingular
		}
		if p != k {
			ri, rk := lu.a[p*n:(p+1)*n], lu.a[k*n:(k+1)*n]
			for j := 0; j < n; j++ {
				ri[j], rk[j] = rk[j], ri[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.a[k*n+k]
		// Eliminate below the pivot four rows at a time: the pivot row rk
		// streams once per quad instead of once per row. Every updated element
		// receives exactly one update per pivot regardless of grouping, so
		// widening cannot change any result bits. Quads with a zero factor
		// fall back to per-row updates to keep the zero-skip.
		rk := lu.a[k*n+k+1 : (k+1)*n]
		i := k + 1
		for ; i+3 < n; i += 4 {
			fac0 := lu.a[i*n+k] / pivVal
			fac1 := lu.a[(i+1)*n+k] / pivVal
			fac2 := lu.a[(i+2)*n+k] / pivVal
			fac3 := lu.a[(i+3)*n+k] / pivVal
			lu.a[i*n+k] = fac0
			lu.a[(i+1)*n+k] = fac1
			lu.a[(i+2)*n+k] = fac2
			lu.a[(i+3)*n+k] = fac3
			ri0 := lu.a[i*n+k+1 : (i+1)*n]
			ri1 := lu.a[(i+1)*n+k+1 : (i+2)*n]
			ri2 := lu.a[(i+2)*n+k+1 : (i+3)*n]
			ri3 := lu.a[(i+3)*n+k+1 : (i+4)*n]
			if fac0 != 0 && fac1 != 0 && fac2 != 0 && fac3 != 0 {
				for j, v := range rk {
					ri0[j] -= fac0 * v
					ri1[j] -= fac1 * v
					ri2[j] -= fac2 * v
					ri3[j] -= fac3 * v
				}
				continue
			}
			for r, fac := range [4]float64{fac0, fac1, fac2, fac3} {
				if fac == 0 {
					continue
				}
				ri := [4][]float64{ri0, ri1, ri2, ri3}[r]
				for j, v := range rk {
					ri[j] -= fac * v
				}
			}
		}
		for ; i < n; i++ {
			fac := lu.a[i*n+k] / pivVal
			lu.a[i*n+k] = fac
			if fac == 0 {
				continue
			}
			ri := lu.a[i*n+k+1 : (i+1)*n]
			for j, v := range rk {
				ri[j] -= fac * v
			}
		}
	}
	f.sign = sign
	return nil
}

// SolveVec solves A·x = b for x, overwriting nothing; b is copied.
func (f *LU) SolveVec(b []float64) []float64 {
	x := make([]float64, f.lu.rows)
	return f.SolveVecInto(x, b)
}

// SolveVecInto solves A·x = b into dst and returns dst. dst may alias b.
func (f *LU) SolveVecInto(dst, b []float64) []float64 {
	n := f.lu.rows
	if len(b) != n || len(dst) != n {
		panic(ErrShape)
	}
	// Stage the permuted right-hand side through scratch so dst may alias b.
	s := f.ensureScratch()
	for i, p := range f.piv {
		s[i] = b[p]
	}
	copy(dst, s)
	// Forward substitution with unit lower-triangular L.
	for i := 1; i < n; i++ {
		row := f.lu.a[i*n : i*n+i]
		var s float64
		for j, v := range row {
			s += v * dst[j]
		}
		dst[i] -= s
	}
	// Back substitution with U, accumulating in descending j order — the
	// direction the row-paired tile kernel shares its streamed x rows in, so
	// vector and tiled solves stay bit-identical.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.a[i*n : (i+1)*n]
		s := dst[i]
		for j := n - 1; j > i; j-- {
			s -= row[j] * dst[j]
		}
		dst[i] = s / row[i]
	}
	return dst
}

// SolveMat solves A·X = B column by column and returns X.
func (f *LU) SolveMat(b *Matrix) *Matrix {
	x := New(f.lu.rows, b.cols)
	f.SolveMatInto(x, b)
	return x
}

// solveTileWidth is the number of right-hand-side columns the blocked
// substitution advances per pass. One pass reads each LU row once for the
// whole tile (instead of once per column), so the factor matrix streams
// through cache tileWidth× less often. 32 columns is a 256-byte tile row —
// four cache lines — which leaves room in L1 for the LU row being broadcast.
const solveTileWidth = 32

// substituteTile runs forward and back substitution on one column tile of the
// right-hand-side matrix x (already permuted), in place. Per column the
// arithmetic is exactly SolveVecInto's: the inner products accumulate into a
// separate accumulator — ascending j in the forward pass, descending j in the
// back pass, the directions that let each pass pair rows — so a tiled solve
// is bit-identical to a column-by-column solve. Like the blocked multiply
// kernel, the j loop advances four source rows per pass — as four separate
// in-order accumulations, never one reassociated sum — so the per-row slice
// and loop bookkeeping amortizes without changing any bits.
func (f *LU) substituteTile(x *Matrix, j0, j1 int) { f.substituteTileFrom(x, j0, j1, 0) }

// substituteTileFrom is substituteTile for a tile whose permuted right-hand
// side is known to be zero in every row above `start`. Rows i <= start keep
// their values (their forward results equal their inputs: all earlier y are
// zero), and every inner product skips the j < start terms, which are exact
// zeros — so the output is bit-identical to substituteTile, which is the
// start = 0 case. InverseInto passes the first pivot row that lands in the
// tile; for near-diagonal pivoting this removes about a third of the forward
// substitution work of a full inverse.
func (f *LU) substituteTileFrom(x *Matrix, j0, j1, start int) {
	n := f.lu.rows
	width := x.cols
	var acc, acc1 [solveTileWidth]float64
	t := j1 - j0
	// Forward substitution with unit lower-triangular L. Rows advance in
	// pairs (i, i+1): the shared prefix j < i streams each x row once for
	// both accumulator chains; row i then finishes, and row i+1 applies its
	// j = i term — the last index of its ascending-j sequence — against the
	// freshly solved x[i] before finishing. Quad grouping and pairing only
	// change which row accumulates next, never the per-row ascending order,
	// so the result is bit-identical to the single-row substitution.
	i := start + 1
	for ; i+1 < n; i += 2 {
		row0 := f.lu.a[i*n : i*n+i]
		row1 := f.lu.a[(i+1)*n : (i+1)*n+i+1]
		for c := 0; c < t; c++ {
			acc[c] = 0
			acc1[c] = 0
		}
		j := start
		for ; j+3 < i; j += 4 {
			v00, v01, v02, v03 := row0[j], row0[j+1], row0[j+2], row0[j+3]
			v10, v11, v12, v13 := row1[j], row1[j+1], row1[j+2], row1[j+3]
			zero0 := v00 == 0 && v01 == 0 && v02 == 0 && v03 == 0
			zero1 := v10 == 0 && v11 == 0 && v12 == 0 && v13 == 0
			if zero0 && zero1 {
				continue
			}
			x0 := x.a[j*width+j0 : j*width+j1]
			x1 := x.a[(j+1)*width+j0 : (j+1)*width+j1]
			x2 := x.a[(j+2)*width+j0 : (j+2)*width+j1]
			x3 := x.a[(j+3)*width+j0 : (j+3)*width+j1]
			// Reslicing the accumulators to the tile length lets the compiler
			// drop the per-access bounds checks inside the hot loops.
			a0s, a1s := acc[:len(x0)], acc1[:len(x0)]
			switch {
			case zero1:
				for c := range x0 {
					a := a0s[c]
					a += v00 * x0[c]
					a += v01 * x1[c]
					a += v02 * x2[c]
					a += v03 * x3[c]
					a0s[c] = a
				}
			case zero0:
				for c := range x0 {
					a := a1s[c]
					a += v10 * x0[c]
					a += v11 * x1[c]
					a += v12 * x2[c]
					a += v13 * x3[c]
					a1s[c] = a
				}
			default:
				for c := range x0 {
					a0 := a0s[c]
					a0 += v00 * x0[c]
					a0 += v01 * x1[c]
					a0 += v02 * x2[c]
					a0 += v03 * x3[c]
					a0s[c] = a0
					a1 := a1s[c]
					a1 += v10 * x0[c]
					a1 += v11 * x1[c]
					a1 += v12 * x2[c]
					a1 += v13 * x3[c]
					a1s[c] = a1
				}
			}
		}
		for ; j < i; j++ {
			v0, v1 := row0[j], row1[j]
			if v0 == 0 && v1 == 0 {
				continue
			}
			xrow := x.a[j*width+j0 : j*width+j1]
			if v0 != 0 {
				for c, xv := range xrow {
					acc[c] += v0 * xv
				}
			}
			if v1 != 0 {
				for c, xv := range xrow {
					acc1[c] += v1 * xv
				}
			}
		}
		dst := x.a[i*width+j0 : i*width+j1]
		for c := range dst {
			dst[c] -= acc[c]
		}
		if v := row1[i]; v != 0 {
			for c, xv := range dst {
				acc1[c] += v * xv
			}
		}
		dst1 := x.a[(i+1)*width+j0 : (i+1)*width+j1]
		for c := range dst1 {
			dst1[c] -= acc1[c]
		}
	}
	for ; i < n; i++ {
		row := f.lu.a[i*n : i*n+i]
		for c := 0; c < t; c++ {
			acc[c] = 0
		}
		j := start
		for ; j+3 < i; j += 4 {
			v0, v1, v2, v3 := row[j], row[j+1], row[j+2], row[j+3]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			x0 := x.a[j*width+j0 : j*width+j1]
			x1 := x.a[(j+1)*width+j0 : (j+1)*width+j1]
			x2 := x.a[(j+2)*width+j0 : (j+2)*width+j1]
			x3 := x.a[(j+3)*width+j0 : (j+3)*width+j1]
			as := acc[:len(x0)]
			for c := range x0 {
				a := as[c]
				a += v0 * x0[c]
				a += v1 * x1[c]
				a += v2 * x2[c]
				a += v3 * x3[c]
				as[c] = a
			}
		}
		for ; j < i; j++ {
			v := row[j]
			if v == 0 {
				continue
			}
			xrow := x.a[j*width+j0 : j*width+j1]
			for c, xv := range xrow {
				acc[c] += v * xv
			}
		}
		dst := x.a[i*width+j0 : i*width+j1]
		for c := range dst {
			dst[c] -= acc[c]
		}
	}
	// Back substitution with U, in descending j order per row — the same
	// order as SolveVecInto. Rows retire in pairs (i, i−1): both share the
	// streamed x rows j > i; row i then finalizes, and row i−1 applies its
	// j = i term — the last index of its descending sequence — against the
	// freshly solved x[i] before finalizing. Quad grouping and pairing only
	// change which row accumulates next, never the per-row descending order,
	// so the result is bit-identical to the single-row substitution.
	i = n - 1
	for ; i-1 >= 0; i -= 2 {
		row1 := f.lu.a[i*n : (i+1)*n]
		row0 := f.lu.a[(i-1)*n : i*n]
		dst1 := x.a[i*width+j0 : i*width+j1]
		dst0 := x.a[(i-1)*width+j0 : (i-1)*width+j1]
		for c, xv := range dst1 {
			acc1[c] = xv
			acc[c] = dst0[c]
		}
		j := n - 1
		for ; j-3 > i; j -= 4 {
			v10, v11, v12, v13 := row1[j], row1[j-1], row1[j-2], row1[j-3]
			v00, v01, v02, v03 := row0[j], row0[j-1], row0[j-2], row0[j-3]
			zero1 := v10 == 0 && v11 == 0 && v12 == 0 && v13 == 0
			zero0 := v00 == 0 && v01 == 0 && v02 == 0 && v03 == 0
			if zero0 && zero1 {
				continue
			}
			x0 := x.a[j*width+j0 : j*width+j1]
			x1 := x.a[(j-1)*width+j0 : (j-1)*width+j1]
			x2 := x.a[(j-2)*width+j0 : (j-2)*width+j1]
			x3 := x.a[(j-3)*width+j0 : (j-3)*width+j1]
			a0s, a1s := acc[:len(x0)], acc1[:len(x0)]
			switch {
			case zero0:
				for c := range x0 {
					a := a1s[c]
					a -= v10 * x0[c]
					a -= v11 * x1[c]
					a -= v12 * x2[c]
					a -= v13 * x3[c]
					a1s[c] = a
				}
			case zero1:
				for c := range x0 {
					a := a0s[c]
					a -= v00 * x0[c]
					a -= v01 * x1[c]
					a -= v02 * x2[c]
					a -= v03 * x3[c]
					a0s[c] = a
				}
			default:
				for c := range x0 {
					a1 := a1s[c]
					a1 -= v10 * x0[c]
					a1 -= v11 * x1[c]
					a1 -= v12 * x2[c]
					a1 -= v13 * x3[c]
					a1s[c] = a1
					a0 := a0s[c]
					a0 -= v00 * x0[c]
					a0 -= v01 * x1[c]
					a0 -= v02 * x2[c]
					a0 -= v03 * x3[c]
					a0s[c] = a0
				}
			}
		}
		for ; j > i; j-- {
			v1, v0 := row1[j], row0[j]
			if v0 == 0 && v1 == 0 {
				continue
			}
			xrow := x.a[j*width+j0 : j*width+j1]
			if v1 != 0 {
				for c, xv := range xrow {
					acc1[c] -= v1 * xv
				}
			}
			if v0 != 0 {
				for c, xv := range xrow {
					acc[c] -= v0 * xv
				}
			}
		}
		piv1 := row1[i]
		for c := range dst1 {
			dst1[c] = acc1[c] / piv1
		}
		if v := row0[i]; v != 0 {
			for c, xv := range dst1 {
				acc[c] -= v * xv
			}
		}
		piv0 := row0[i-1]
		for c := range dst0 {
			dst0[c] = acc[c] / piv0
		}
	}
	if i == 0 {
		row := f.lu.a[0:n]
		dst := x.a[j0:j1]
		for c, xv := range dst {
			acc[c] = xv
		}
		j := n - 1
		for ; j-3 > 0; j -= 4 {
			v0, v1, v2, v3 := row[j], row[j-1], row[j-2], row[j-3]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			x0 := x.a[j*width+j0 : j*width+j1]
			x1 := x.a[(j-1)*width+j0 : (j-1)*width+j1]
			x2 := x.a[(j-2)*width+j0 : (j-2)*width+j1]
			x3 := x.a[(j-3)*width+j0 : (j-3)*width+j1]
			as := acc[:len(x0)]
			for c := range x0 {
				a := as[c]
				a -= v0 * x0[c]
				a -= v1 * x1[c]
				a -= v2 * x2[c]
				a -= v3 * x3[c]
				as[c] = a
			}
		}
		for ; j > 0; j-- {
			v := row[j]
			if v == 0 {
				continue
			}
			xrow := x.a[j*width+j0 : j*width+j1]
			for c, xv := range xrow {
				acc[c] -= v * xv
			}
		}
		piv := row[0]
		for c := range dst {
			dst[c] = acc[c] / piv
		}
	}
}

// SolveMatInto solves A·X = B into dst and returns dst. dst must not alias b.
// The substitution runs over column tiles of the right-hand side — same
// per-column arithmetic as SolveVecInto (bit-identical results, pinned by
// tests), but each LU row is read once per tile instead of once per column.
func (f *LU) SolveMatInto(dst, b *Matrix) *Matrix {
	n := f.lu.rows
	if b.rows != n || dst.rows != n || dst.cols != b.cols {
		panic(ErrShape)
	}
	// Stage the row permutation: dst = P·B.
	for i, p := range f.piv {
		copy(dst.a[i*dst.cols:(i+1)*dst.cols], b.a[p*b.cols:(p+1)*b.cols])
	}
	for j0 := 0; j0 < dst.cols; j0 += solveTileWidth {
		j1 := j0 + solveTileWidth
		if j1 > dst.cols {
			j1 = dst.cols
		}
		f.substituteTile(dst, j0, j1)
	}
	return dst
}

// InverseInto writes A⁻¹ into dst, where f is the factorization of A, without
// allocating (beyond one-time growth of f's scratch buffers). dst must be
// n×n. Like SolveMatInto it substitutes over column tiles; the results are
// bit-identical to solving the identity column by column.
func (f *LU) InverseInto(dst *Matrix) *Matrix {
	n := f.lu.rows
	if dst.rows != n || dst.cols != n {
		panic(ErrShape)
	}
	// dst = P·I: row i of the permuted identity has a one in column piv[i].
	dst.Zero()
	for i, p := range f.piv {
		dst.a[i*n+p] = 1
	}
	for j0 := 0; j0 < n; j0 += solveTileWidth {
		j1 := j0 + solveTileWidth
		if j1 > n {
			j1 = n
		}
		// Every row of the permuted identity above the first pivot that
		// lands in this column tile is zero there, so the forward
		// substitution can begin at that row.
		start := 0
		for i, p := range f.piv {
			if p >= j0 && p < j1 {
				start = i
				break
			}
		}
		f.substituteTileFrom(dst, j0, j1, start)
	}
	return dst
}

func (f *LU) ensureScratch() []float64 {
	if len(f.scratch) != f.lu.rows {
		f.scratch = make([]float64, f.lu.rows)
	}
	return f.scratch
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.a[i*n+i]
	}
	return d
}

// Solve solves the linear system a·x = b.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b), nil
}

// SolveLeft solves the row-vector system x·a = b, i.e. aᵀ·xᵀ = bᵀ.
func SolveLeft(a *Matrix, b []float64) ([]float64, error) {
	return Solve(a.Transpose(), b)
}

// Inverse returns a⁻¹ or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	out := New(a.rows, a.rows)
	f.InverseInto(out)
	return out, nil
}

// SpectralRadius estimates the spectral radius of the entrywise-nonnegative
// matrix a by power iteration. For nonnegative matrices (the R and G matrices
// of QBD theory) the dominant eigenvalue is real and nonnegative, so power
// iteration converges; tol controls the relative change stopping criterion.
func SpectralRadius(a *Matrix, tol float64, maxIter int) float64 {
	n := a.rows
	if n == 0 {
		return 0
	}
	if n != a.cols {
		panic(ErrShape)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	prev := 0.0
	for it := 0; it < maxIter; it++ {
		y := a.MulVec(x)
		var norm float64
		for _, v := range y {
			if av := math.Abs(v); av > norm {
				norm = av
			}
		}
		if norm == 0 {
			return 0
		}
		for i := range y {
			y[i] /= norm
		}
		x = y
		if it > 0 && math.Abs(norm-prev) <= tol*math.Max(norm, 1e-300) {
			return norm
		}
		prev = norm
	}
	return prev
}

// Ones returns a length-n vector of ones.
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Sum returns the sum of the entries of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// ScaleVec multiplies x by s in place and returns x.
func ScaleVec(x []float64, s float64) []float64 {
	for i := range x {
		x[i] *= s
	}
	return x
}
