package mat

import (
	"fmt"
	"math"
)

// LU holds the LU factorization with partial pivoting of a square matrix:
// P·A = L·U, stored compactly in lu with the pivot sequence in piv.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// Factorize computes the LU factorization with partial pivoting of the square
// matrix a. It returns ErrSingular when a pivot underflows working precision.
func Factorize(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: LU of %dx%d matrix", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at or below the diagonal.
		p, mx := k, math.Abs(lu.a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.a[i*n+k]); v > mx {
				p, mx = i, v
			}
		}
		if mx == 0 {
			return nil, ErrSingular
		}
		if p != k {
			ri, rk := lu.a[p*n:(p+1)*n], lu.a[k*n:(k+1)*n]
			for j := 0; j < n; j++ {
				ri[j], rk[j] = rk[j], ri[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.a[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu.a[i*n+k] / pivVal
			lu.a[i*n+k] = f
			if f == 0 {
				continue
			}
			ri, rk := lu.a[i*n:(i+1)*n], lu.a[k*n:(k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= f * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves A·x = b for x, overwriting nothing; b is copied.
func (f *LU) SolveVec(b []float64) []float64 {
	n := f.lu.rows
	if len(b) != n {
		panic(ErrShape)
	}
	x := make([]float64, n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution with unit lower-triangular L.
	for i := 1; i < n; i++ {
		row := f.lu.a[i*n : i*n+i]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.a[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveMat solves A·X = B column by column and returns X.
func (f *LU) SolveMat(b *Matrix) *Matrix {
	n := f.lu.rows
	if b.rows != n {
		panic(ErrShape)
	}
	x := New(n, b.cols)
	col := make([]float64, n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.a[i*b.cols+j]
		}
		sol := f.SolveVec(col)
		for i := 0; i < n; i++ {
			x.a[i*x.cols+j] = sol[i]
		}
	}
	return x
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.a[i*n+i]
	}
	return d
}

// Solve solves the linear system a·x = b.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b), nil
}

// SolveLeft solves the row-vector system x·a = b, i.e. aᵀ·xᵀ = bᵀ.
func SolveLeft(a *Matrix, b []float64) ([]float64, error) {
	return Solve(a.Transpose(), b)
}

// Inverse returns a⁻¹ or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.SolveMat(Identity(a.rows)), nil
}

// SpectralRadius estimates the spectral radius of the entrywise-nonnegative
// matrix a by power iteration. For nonnegative matrices (the R and G matrices
// of QBD theory) the dominant eigenvalue is real and nonnegative, so power
// iteration converges; tol controls the relative change stopping criterion.
func SpectralRadius(a *Matrix, tol float64, maxIter int) float64 {
	n := a.rows
	if n == 0 {
		return 0
	}
	if n != a.cols {
		panic(ErrShape)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	prev := 0.0
	for it := 0; it < maxIter; it++ {
		y := a.MulVec(x)
		var norm float64
		for _, v := range y {
			if av := math.Abs(v); av > norm {
				norm = av
			}
		}
		if norm == 0 {
			return 0
		}
		for i := range y {
			y[i] /= norm
		}
		x = y
		if it > 0 && math.Abs(norm-prev) <= tol*math.Max(norm, 1e-300) {
			return norm
		}
		prev = norm
	}
	return prev
}

// Ones returns a length-n vector of ones.
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Sum returns the sum of the entries of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// ScaleVec multiplies x by s in place and returns x.
func ScaleVec(x []float64, s float64) []float64 {
	for i := range x {
		x[i] *= s
	}
	return x
}
