package mat

import (
	"fmt"
	"math"
)

// LU holds the LU factorization with partial pivoting of a square matrix:
// P·A = L·U, stored compactly in lu with the pivot sequence in piv. The
// scratch buffers make the *Into solvers allocation-free, so one LU reused
// via FactorizeInto amortizes to zero allocations per factorization.
type LU struct {
	lu      *Matrix
	piv     []int
	sign    int
	scratch []float64 // permutation staging for SolveVecInto
	col     []float64 // column staging for SolveMatInto / InverseInto
}

// NewLU returns an n×n factorization shell with all buffers preallocated,
// ready for FactorizeInto.
func NewLU(n int) *LU {
	return &LU{
		lu:      New(n, n),
		piv:     make([]int, n),
		sign:    1,
		scratch: make([]float64, n),
		col:     make([]float64, n),
	}
}

// Factorize computes the LU factorization with partial pivoting of the square
// matrix a. It returns ErrSingular when a pivot underflows working precision.
func Factorize(a *Matrix) (*LU, error) {
	f := &LU{}
	if err := FactorizeInto(f, a); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorizeInto factorizes a into f, reusing f's storage and pivot buffers
// when their size matches (and growing them otherwise). a is not modified.
// On ErrSingular the contents of f are unspecified but f remains reusable.
func FactorizeInto(f *LU, a *Matrix) error {
	if a.rows != a.cols {
		return fmt.Errorf("%w: LU of %dx%d matrix", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	if f.lu == nil || f.lu.rows != n {
		f.lu = New(n, n)
		f.piv = make([]int, n)
		f.scratch = make([]float64, n)
		f.col = make([]float64, n)
	}
	copy(f.lu.a, a.a)
	lu, piv := f.lu, f.piv
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at or below the diagonal.
		p, mx := k, math.Abs(lu.a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.a[i*n+k]); v > mx {
				p, mx = i, v
			}
		}
		if mx == 0 {
			return ErrSingular
		}
		if p != k {
			ri, rk := lu.a[p*n:(p+1)*n], lu.a[k*n:(k+1)*n]
			for j := 0; j < n; j++ {
				ri[j], rk[j] = rk[j], ri[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.a[k*n+k]
		for i := k + 1; i < n; i++ {
			fac := lu.a[i*n+k] / pivVal
			lu.a[i*n+k] = fac
			if fac == 0 {
				continue
			}
			ri, rk := lu.a[i*n:(i+1)*n], lu.a[k*n:(k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= fac * rk[j]
			}
		}
	}
	f.sign = sign
	return nil
}

// SolveVec solves A·x = b for x, overwriting nothing; b is copied.
func (f *LU) SolveVec(b []float64) []float64 {
	x := make([]float64, f.lu.rows)
	return f.SolveVecInto(x, b)
}

// SolveVecInto solves A·x = b into dst and returns dst. dst may alias b.
func (f *LU) SolveVecInto(dst, b []float64) []float64 {
	n := f.lu.rows
	if len(b) != n || len(dst) != n {
		panic(ErrShape)
	}
	// Stage the permuted right-hand side through scratch so dst may alias b.
	s := f.ensureScratch()
	for i, p := range f.piv {
		s[i] = b[p]
	}
	copy(dst, s)
	// Forward substitution with unit lower-triangular L.
	for i := 1; i < n; i++ {
		row := f.lu.a[i*n : i*n+i]
		var s float64
		for j, v := range row {
			s += v * dst[j]
		}
		dst[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.a[i*n : (i+1)*n]
		s := dst[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * dst[j]
		}
		dst[i] = s / row[i]
	}
	return dst
}

// SolveMat solves A·X = B column by column and returns X.
func (f *LU) SolveMat(b *Matrix) *Matrix {
	x := New(f.lu.rows, b.cols)
	f.SolveMatInto(x, b)
	return x
}

// SolveMatInto solves A·X = B column by column into dst and returns dst.
// dst must not alias b.
func (f *LU) SolveMatInto(dst, b *Matrix) *Matrix {
	n := f.lu.rows
	if b.rows != n || dst.rows != n || dst.cols != b.cols {
		panic(ErrShape)
	}
	col := f.ensureCol()
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.a[i*b.cols+j]
		}
		f.SolveVecInto(col, col)
		for i := 0; i < n; i++ {
			dst.a[i*dst.cols+j] = col[i]
		}
	}
	return dst
}

// InverseInto writes A⁻¹ into dst, where f is the factorization of A, without
// allocating (beyond one-time growth of f's scratch buffers). dst must be
// n×n.
func (f *LU) InverseInto(dst *Matrix) *Matrix {
	n := f.lu.rows
	if dst.rows != n || dst.cols != n {
		panic(ErrShape)
	}
	col := f.ensureCol()
	for j := 0; j < n; j++ {
		for i := range col {
			col[i] = 0
		}
		col[j] = 1
		f.SolveVecInto(col, col)
		for i := 0; i < n; i++ {
			dst.a[i*n+j] = col[i]
		}
	}
	return dst
}

func (f *LU) ensureScratch() []float64 {
	if len(f.scratch) != f.lu.rows {
		f.scratch = make([]float64, f.lu.rows)
	}
	return f.scratch
}

func (f *LU) ensureCol() []float64 {
	if len(f.col) != f.lu.rows {
		f.col = make([]float64, f.lu.rows)
	}
	return f.col
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.a[i*n+i]
	}
	return d
}

// Solve solves the linear system a·x = b.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b), nil
}

// SolveLeft solves the row-vector system x·a = b, i.e. aᵀ·xᵀ = bᵀ.
func SolveLeft(a *Matrix, b []float64) ([]float64, error) {
	return Solve(a.Transpose(), b)
}

// Inverse returns a⁻¹ or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	out := New(a.rows, a.rows)
	f.InverseInto(out)
	return out, nil
}

// SpectralRadius estimates the spectral radius of the entrywise-nonnegative
// matrix a by power iteration. For nonnegative matrices (the R and G matrices
// of QBD theory) the dominant eigenvalue is real and nonnegative, so power
// iteration converges; tol controls the relative change stopping criterion.
func SpectralRadius(a *Matrix, tol float64, maxIter int) float64 {
	n := a.rows
	if n == 0 {
		return 0
	}
	if n != a.cols {
		panic(ErrShape)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	prev := 0.0
	for it := 0; it < maxIter; it++ {
		y := a.MulVec(x)
		var norm float64
		for _, v := range y {
			if av := math.Abs(v); av > norm {
				norm = av
			}
		}
		if norm == 0 {
			return 0
		}
		for i := range y {
			y[i] /= norm
		}
		x = y
		if it > 0 && math.Abs(norm-prev) <= tol*math.Max(norm, 1e-300) {
			return norm
		}
		prev = norm
	}
	return prev
}

// Ones returns a length-n vector of ones.
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Sum returns the sum of the entries of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// ScaleVec multiplies x by s in place and returns x.
func ScaleVec(x []float64, s float64) []float64 {
	for i := range x {
		x[i] *= s
	}
	return x
}
