package mat

// Sparse is a compressed-sparse-row (CSR) snapshot of a matrix: the exact
// nonzero structure and values at capture time. The QBD solver uses it for
// the highly structured generator blocks (A0/A2 and the boundary Up/Down
// blocks are mostly scaled identities and block bands), whose products
// against dense iterates then cost O(nnz·n) instead of O(n³).
//
// Determinism contract: both multiply kernels apply the per-output-element
// additions in strictly ascending inner (k) order, skipping only products
// whose sparse factor entry is exactly zero. Adding a product with a zero
// factor cannot change a finite accumulation (the accumulator never holds
// −0.0: it starts at +0.0 and round-to-nearest addition never produces −0.0
// from distinct operands), so for the finite matrices the solver handles the
// results are bit-identical to the dense zero-skipping kernel — pinned by
// straddle tests in sparse_test.go.
type Sparse struct {
	rows, cols int
	rowStart   []int // index into colIdx/val; len rows+1
	colIdx     []int
	val        []float64
}

// NewSparse captures the nonzero structure and values of m. Entries equal to
// zero (including −0.0) are dropped.
func NewSparse(m *Matrix) *Sparse {
	nnz := 0
	for _, v := range m.a {
		if v != 0 {
			nnz++
		}
	}
	s := &Sparse{
		rows:     m.rows,
		cols:     m.cols,
		rowStart: make([]int, m.rows+1),
		colIdx:   make([]int, 0, nnz),
		val:      make([]float64, 0, nnz),
	}
	for i := 0; i < m.rows; i++ {
		row := m.a[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			if v != 0 {
				s.colIdx = append(s.colIdx, j)
				s.val = append(s.val, v)
			}
		}
		s.rowStart[i+1] = len(s.colIdx)
	}
	return s
}

// Rows returns the number of rows.
func (s *Sparse) Rows() int { return s.rows }

// Cols returns the number of columns.
func (s *Sparse) Cols() int { return s.cols }

// NNZ returns the number of stored nonzero entries.
func (s *Sparse) NNZ() int { return len(s.val) }

// Density returns the nonzero fraction, in [0, 1].
func (s *Sparse) Density() float64 {
	if s.rows*s.cols == 0 {
		return 0
	}
	return float64(len(s.val)) / float64(s.rows*s.cols)
}

// MulInto computes the sparse·dense product s·b into dst and returns dst.
// dst must not alias b. Per output element the additions run in ascending k
// order, exactly like the dense kernels, so results are bit-identical to
// dst.MulInto(dense(s), b).
func (s *Sparse) MulInto(dst, b *Matrix) *Matrix {
	if s.cols != b.rows || dst.rows != s.rows || dst.cols != b.cols {
		panic(ErrShape)
	}
	mulCount.Add(1)
	width := b.cols
	for i := 0; i < s.rows; i++ {
		out := dst.a[i*width : (i+1)*width]
		for k := range out {
			out[k] = 0
		}
		lo, hi := s.rowStart[i], s.rowStart[i+1]
		for p := lo; p < hi; p++ {
			v := s.val[p]
			brow := b.a[s.colIdx[p]*width : (s.colIdx[p]+1)*width]
			for j, bv := range brow {
				out[j] += v * bv
			}
		}
	}
	return dst
}

// MulRightInto computes the dense·sparse product a·s into dst and returns
// dst. dst must not alias a. The k loop ascends and skips zero entries of a
// exactly as the naive dense kernel does; within each k only s's stored
// nonzeros contribute, which cannot change a finite accumulation (see the
// type comment), so results are bit-identical to dst.MulInto(a, dense(s)).
func (s *Sparse) MulRightInto(dst, a *Matrix) *Matrix {
	if a.cols != s.rows || dst.rows != a.rows || dst.cols != s.cols {
		panic(ErrShape)
	}
	mulCount.Add(1)
	width := s.cols
	for i := 0; i < a.rows; i++ {
		out := dst.a[i*width : (i+1)*width]
		for k := range out {
			out[k] = 0
		}
		arow := a.a[i*a.cols : (i+1)*a.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			lo, hi := s.rowStart[k], s.rowStart[k+1]
			for p := lo; p < hi; p++ {
				out[s.colIdx[p]] += av * s.val[p]
			}
		}
	}
	return dst
}

// Dense expands the snapshot back into a dense matrix (for tests and
// debugging).
func (s *Sparse) Dense() *Matrix {
	m := New(s.rows, s.cols)
	for i := 0; i < s.rows; i++ {
		for p := s.rowStart[i]; p < s.rowStart[i+1]; p++ {
			m.a[i*s.cols+s.colIdx[p]] = s.val[p]
		}
	}
	return m
}
