package mat

import (
	"math"
	"math/rand"
	"testing"
)

// TestMulIntoWorkersBitIdentical pins the determinism contract of the
// row-banded parallel multiply: for every worker count the result must be
// exactly the serial MulInto's, across sizes that straddle both the banding
// threshold and the naive/blocked kernel switch. Run under -race (the CI
// parallel-path job does) this also exercises the disjoint-write claim.
func TestMulIntoWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 8, 63, 64, 65, 128, 153} {
		a := New(n, n)
		b := New(n, n)
		for i := range a.a {
			a.a[i] = rng.NormFloat64()
			b.a[i] = rng.NormFloat64()
		}
		want := New(n, n)
		want.MulInto(a, b)
		for _, workers := range []int{1, 2, 3, 7, 16, n + 5} {
			got := New(n, n)
			MulIntoWorkers(got, a, b, workers)
			for i := 0; i < n*n; i++ {
				if math.Float64bits(got.a[i]) != math.Float64bits(want.a[i]) {
					t.Fatalf("n=%d workers=%d: element %d differs: %g vs %g",
						n, workers, i, got.a[i], want.a[i])
				}
			}
		}
	}
}
