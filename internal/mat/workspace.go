package mat

import "sync"

// Workspace owns reusable scratch matrices, vectors, and LU factorizations,
// pooled by shape. Solver hot loops acquire buffers from a Workspace instead
// of allocating, run their iterations allocation-free, and release the
// buffers when a differently-shaped stage can reuse the memory.
//
// Usage rules:
//
//   - A Workspace is safe for concurrent borrowers: acquisitions and releases
//     from multiple goroutines are serialized by an internal mutex, so the
//     intra-solve parallel paths (block-row multiplies fanned over a worker
//     pool) may share one workspace. Note that only the pool bookkeeping is
//     synchronized — the buffers themselves are owned by exactly one borrower
//     between acquisition and release, as before.
//   - Matrix and Vector return zeroed buffers; LU returns a factorization
//     shell ready for FactorizeInto.
//   - Release hands a buffer back for reuse. Releasing a buffer twice, or
//     using it after release, corrupts later acquisitions — release only what
//     you own, exactly once.
//   - Buffers that outlive the workspace scope (values returned to callers)
//     must simply not be released; the workspace never takes a buffer back on
//     its own.
//   - A nil *Workspace is valid everywhere and degrades to plain allocation,
//     so APIs can thread an optional workspace without branching.
type Workspace struct {
	mu   sync.Mutex
	mats map[int64][]*Matrix
	vecs map[int][][]float64
	lus  map[int][]*LU

	stats WorkspaceStats
}

// WorkspaceStats counts pool hits (acquisitions served from a released
// buffer) and misses (fresh allocations) per buffer kind. Counting is plain
// field increments on the acquisition paths — no allocation, no branches —
// so it is always on; Stats exposes the totals to the observability layer.
type WorkspaceStats struct {
	MatrixHits, MatrixMisses int64
	VectorHits, VectorMisses int64
	LUHits, LUMisses         int64
}

// Stats returns the accumulated pool statistics (zero for a nil workspace).
func (w *Workspace) Stats() WorkspaceStats {
	if w == nil {
		return WorkspaceStats{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		mats: make(map[int64][]*Matrix),
		vecs: make(map[int][][]float64),
		lus:  make(map[int][]*LU),
	}
}

// wsPool recycles whole workspaces — and with them every buffer ever
// released into one — across solver invocations. A cold workspace's first
// solve allocates its working set; subsequent solves of same-shaped models
// run entirely on pooled memory, which removes the dominant allocation and
// page-zeroing cost of repeated solves (parameter sweeps, the check harness,
// the daemon's request loop).
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// AcquireWorkspace returns a workspace from the process-wide pool (or a fresh
// one), with its statistics reset so Stats reports per-acquisition counts.
// Buffers retained inside it from earlier uses are reused by shape as usual.
// Pair with ReleaseWorkspace; a workspace must not be used after release.
//
// Everything that escapes the acquiring solve (results handed to callers)
// must be allocated outside the workspace: after ReleaseWorkspace the next
// acquirer may hand out the same buffers.
func AcquireWorkspace() *Workspace {
	w := wsPool.Get().(*Workspace)
	w.mu.Lock()
	w.stats = WorkspaceStats{}
	w.mu.Unlock()
	return w
}

// ReleaseWorkspace returns w to the process-wide pool. Nil is a no-op.
func ReleaseWorkspace(w *Workspace) {
	if w == nil {
		return
	}
	wsPool.Put(w)
}

func matKey(rows, cols int) int64 { return int64(rows)<<32 | int64(uint32(cols)) }

// Matrix returns a zeroed rows×cols matrix, reusing a released buffer of the
// same shape when one is available.
func (w *Workspace) Matrix(rows, cols int) *Matrix {
	if w == nil {
		return New(rows, cols)
	}
	key := matKey(rows, cols)
	w.mu.Lock()
	if pool := w.mats[key]; len(pool) > 0 {
		m := pool[len(pool)-1]
		w.mats[key] = pool[:len(pool)-1]
		w.stats.MatrixHits++
		w.mu.Unlock()
		m.Zero()
		return m
	}
	w.stats.MatrixMisses++
	w.mu.Unlock()
	return New(rows, cols)
}

// MatrixUninit returns a rows×cols matrix with unspecified contents, reusing
// a released buffer of the same shape when one is available. It is the
// acquisition for destinations that are fully overwritten before any read —
// MulInto, ScaleInto, SubInto, CloneInto, TransposeInto, SolveMatInto, and
// InverseInto targets — where Matrix's zeroing is pure overhead. Callers that
// read any element before writing it must use Matrix instead.
func (w *Workspace) MatrixUninit(rows, cols int) *Matrix {
	if w == nil {
		return New(rows, cols)
	}
	key := matKey(rows, cols)
	w.mu.Lock()
	if pool := w.mats[key]; len(pool) > 0 {
		m := pool[len(pool)-1]
		w.mats[key] = pool[:len(pool)-1]
		w.stats.MatrixHits++
		w.mu.Unlock()
		return m
	}
	w.stats.MatrixMisses++
	w.mu.Unlock()
	return New(rows, cols)
}

// Identity returns an n×n identity matrix drawn from the workspace.
func (w *Workspace) Identity(n int) *Matrix {
	m := w.Matrix(n, n)
	for i := 0; i < n; i++ {
		m.a[i*n+i] = 1
	}
	return m
}

// Release returns matrices to the workspace for reuse. Nil entries are
// ignored; releasing into a nil workspace is a no-op.
func (w *Workspace) Release(ms ...*Matrix) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, m := range ms {
		if m == nil {
			continue
		}
		key := matKey(m.rows, m.cols)
		w.mats[key] = append(w.mats[key], m)
	}
}

// Vector returns a zeroed length-n vector, reusing a released one when
// available.
func (w *Workspace) Vector(n int) []float64 {
	if w == nil {
		return make([]float64, n)
	}
	w.mu.Lock()
	if pool := w.vecs[n]; len(pool) > 0 {
		v := pool[len(pool)-1]
		w.vecs[n] = pool[:len(pool)-1]
		w.stats.VectorHits++
		w.mu.Unlock()
		for i := range v {
			v[i] = 0
		}
		return v
	}
	w.stats.VectorMisses++
	w.mu.Unlock()
	return make([]float64, n)
}

// ReleaseVector returns vectors to the workspace for reuse.
func (w *Workspace) ReleaseVector(vs ...[]float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, v := range vs {
		if v == nil {
			continue
		}
		w.vecs[len(v)] = append(w.vecs[len(v)], v)
	}
}

// LU returns an n×n factorization shell (storage and pivot buffers
// preallocated) ready for FactorizeInto, reusing a released one when
// available.
func (w *Workspace) LU(n int) *LU {
	if w == nil {
		return NewLU(n)
	}
	w.mu.Lock()
	if pool := w.lus[n]; len(pool) > 0 {
		f := pool[len(pool)-1]
		w.lus[n] = pool[:len(pool)-1]
		w.stats.LUHits++
		w.mu.Unlock()
		return f
	}
	w.stats.LUMisses++
	w.mu.Unlock()
	return NewLU(n)
}

// ReleaseLU returns a factorization shell to the workspace for reuse.
func (w *Workspace) ReleaseLU(fs ...*LU) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, f := range fs {
		if f == nil || f.lu == nil {
			continue
		}
		n := f.lu.rows
		w.lus[n] = append(w.lus[n], f)
	}
}
