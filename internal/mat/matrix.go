// Package mat implements the dense real linear algebra needed by the
// matrix-analytic machinery in this repository: matrix arithmetic, LU-based
// linear solves and inversion, Kronecker products, and spectral-radius
// estimation. It is deliberately small, allocation-conscious, and built only
// on the standard library.
//
// Matrices are dense, row-major, and indexed from zero. All operations either
// return fresh matrices or write into explicitly provided destinations; no
// operation aliases its inputs unless documented.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// ErrSingular is returned by factorizations and solvers when the input matrix
// is singular to working precision.
var ErrSingular = errors.New("mat: matrix is singular")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	a          []float64
}

// mulCount counts matrix-matrix products process-wide; see MulCount.
var mulCount atomic.Int64

// MulCount returns the cumulative number of matrix-matrix products (Mul or
// MulInto calls) performed process-wide since start or the last
// ResetMulCount. It exists so tests can assert operation budgets on solver
// hot loops. Safe for concurrent use.
func MulCount() int64 { return mulCount.Load() }

// ResetMulCount zeroes the counter reported by MulCount.
func ResetMulCount() { mulCount.Store(0) }

// New returns a zero-valued rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimension")
	}
	return &Matrix{rows: rows, cols: cols, a: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of rows. All rows must have equal
// length. The data is copied.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrShape, i, len(r), c)
		}
		copy(m.a[i*c:(i+1)*c], r)
	}
	return m, nil
}

// MustFromRows is FromRows but panics on ragged input. It is intended for
// package-level literals and tests.
func MustFromRows(rows [][]float64) *Matrix {
	m, err := FromRows(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.a[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on its diagonal.
func Diag(d []float64) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.a[i*len(d)+i] = v
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.a[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.a[i*m.cols+j] = v }

// Add increments the element at row i, column j by v.
func (m *Matrix) Add(i, j int, v float64) { m.a[i*m.cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.a, m.a)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	r := make([]float64, m.cols)
	copy(r, m.a[i*m.cols:(i+1)*m.cols])
	return r
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(ErrShape)
	}
	copy(m.a[i*m.cols:(i+1)*m.cols], v)
}

// Zero resets every entry of m to zero in place.
func (m *Matrix) Zero() {
	for i := range m.a {
		m.a[i] = 0
	}
}

// Scale multiplies every entry by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.a {
		m.a[i] *= s
	}
	return m
}

// AddMat returns m + n as a new matrix.
func (m *Matrix) AddMat(n *Matrix) *Matrix {
	if m.rows != n.rows || m.cols != n.cols {
		panic(ErrShape)
	}
	out := m.Clone()
	for i := range out.a {
		out.a[i] += n.a[i]
	}
	return out
}

// SubMat returns m − n as a new matrix.
func (m *Matrix) SubMat(n *Matrix) *Matrix {
	if m.rows != n.rows || m.cols != n.cols {
		panic(ErrShape)
	}
	out := m.Clone()
	for i := range out.a {
		out.a[i] -= n.a[i]
	}
	return out
}

// AddInPlace adds n into m in place and returns m.
func (m *Matrix) AddInPlace(n *Matrix) *Matrix {
	if m.rows != n.rows || m.cols != n.cols {
		panic(ErrShape)
	}
	for i := range m.a {
		m.a[i] += n.a[i]
	}
	return m
}

// AddInto sets m = a + b entrywise and returns m. The receiver may alias a
// and/or b.
func (m *Matrix) AddInto(a, b *Matrix) *Matrix {
	if a.rows != b.rows || a.cols != b.cols || m.rows != a.rows || m.cols != a.cols {
		panic(ErrShape)
	}
	for i := range m.a {
		m.a[i] = a.a[i] + b.a[i]
	}
	return m
}

// SubInto sets m = a − b entrywise and returns m. The receiver may alias a
// and/or b.
func (m *Matrix) SubInto(a, b *Matrix) *Matrix {
	if a.rows != b.rows || a.cols != b.cols || m.rows != a.rows || m.cols != a.cols {
		panic(ErrShape)
	}
	for i := range m.a {
		m.a[i] = a.a[i] - b.a[i]
	}
	return m
}

// ScaleInto sets m = s·a entrywise and returns m. The receiver may alias a.
func (m *Matrix) ScaleInto(a *Matrix, s float64) *Matrix {
	if m.rows != a.rows || m.cols != a.cols {
		panic(ErrShape)
	}
	for i := range m.a {
		m.a[i] = a.a[i] * s
	}
	return m
}

// TransposeInto sets m = aᵀ and returns m. The receiver must not alias a.
func (m *Matrix) TransposeInto(a *Matrix) *Matrix {
	if m.rows != a.cols || m.cols != a.rows {
		panic(ErrShape)
	}
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			m.a[j*m.cols+i] = a.a[i*a.cols+j]
		}
	}
	return m
}

// CloneInto copies m into dst, which must have m's shape, and returns dst:
// Clone without the allocation.
func (m *Matrix) CloneInto(dst *Matrix) *Matrix {
	if m.rows != dst.rows || m.cols != dst.cols {
		panic(ErrShape)
	}
	copy(dst.a, m.a)
	return dst
}

// AddBlockAt adds src entrywise into the receiver at offset (ro, co):
// m[ro+i, co+j] += src[i, j]. Exact-zero entries of src are skipped, so the
// structurally sparse rate blocks of the chain builders (scaled identities,
// bands) cost only their nonzeros. The row-slice walk makes this the bulk
// replacement for per-element At/Add assembly loops.
func (m *Matrix) AddBlockAt(ro, co int, src *Matrix) {
	if ro < 0 || co < 0 || ro+src.rows > m.rows || co+src.cols > m.cols {
		panic(ErrShape)
	}
	for i := 0; i < src.rows; i++ {
		srow := src.a[i*src.cols : (i+1)*src.cols]
		drow := m.a[(ro+i)*m.cols+co : (ro+i)*m.cols+co+src.cols]
		for j, v := range srow {
			if v != 0 {
				drow[j] += v
			}
		}
	}
}

// Mul returns the matrix product m·n as a new matrix.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	out := New(m.rows, n.cols)
	out.MulInto(m, n)
	return out
}

// MulInto computes a·b into the receiver, which must have matching shape and
// must not alias a or b. Large products take a cache-blocked, 4-way-unrolled
// kernel (see kernels.go); small ones keep the zero-skipping naive kernel.
// Both paths apply the per-element additions in the same k order, so results
// are identical regardless of which kernel runs.
func (m *Matrix) MulInto(a, b *Matrix) {
	if a.cols != b.rows || m.rows != a.rows || m.cols != b.cols {
		panic(ErrShape)
	}
	mulCount.Add(1)
	if a.cols >= blockedMulMin && b.cols >= blockedMulMin {
		mulIntoBlocked(m, a, b)
		return
	}
	mulIntoNaive(m, a, b)
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.a[j*t.cols+i] = m.a[i*m.cols+j]
		}
	}
	return t
}

// VecMul returns the row-vector product x·m.
func (m *Matrix) VecMul(x []float64) []float64 {
	if len(x) != m.rows {
		panic(ErrShape)
	}
	out := make([]float64, m.cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.a[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// MulVec returns the column-vector product m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(ErrShape)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.a[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// VecMulInto computes the row-vector product x·m into dst and returns dst.
// dst must not alias x.
func (m *Matrix) VecMulInto(dst, x []float64) []float64 {
	if len(x) != m.rows || len(dst) != m.cols {
		panic(ErrShape)
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.a[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			dst[j] += xi * v
		}
	}
	return dst
}

// MulVecInto computes the column-vector product m·x into dst and returns dst.
// dst must not alias x.
func (m *Matrix) MulVecInto(dst, x []float64) []float64 {
	if len(x) != m.cols || len(dst) != m.rows {
		panic(ErrShape)
	}
	for i := 0; i < m.rows; i++ {
		row := m.a[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// RowSums returns the vector of row sums.
func (m *Matrix) RowSums() []float64 {
	out := make([]float64, m.rows)
	return m.RowSumsInto(out)
}

// RowSumsInto writes the vector of row sums into dst and returns dst.
func (m *Matrix) RowSumsInto(dst []float64) []float64 {
	if len(dst) != m.rows {
		panic(ErrShape)
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = m.RowSum(i)
	}
	return dst
}

// RowSum returns the sum of row i without allocating.
func (m *Matrix) RowSum(i int) float64 {
	row := m.a[i*m.cols : (i+1)*m.cols]
	var s float64
	for _, v := range row {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute entry of m (zero for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.a {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// NormInf returns the maximum absolute row sum.
func (m *Matrix) NormInf() float64 {
	var mx float64
	for i := 0; i < m.rows; i++ {
		row := m.a[i*m.cols : (i+1)*m.cols]
		var s float64
		for _, v := range row {
			s += math.Abs(v)
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// Equalf reports whether m and n agree entrywise within tol.
func (m *Matrix) Equalf(n *Matrix, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.a {
		if math.Abs(m.a[i]-n.a[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every entry is finite (no NaN or ±Inf).
func (m *Matrix) IsFinite() bool {
	for _, v := range m.a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Kron returns the Kronecker product m ⊗ n.
func (m *Matrix) Kron(n *Matrix) *Matrix {
	out := New(m.rows*n.rows, m.cols*n.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			mij := m.a[i*m.cols+j]
			if mij == 0 {
				continue
			}
			for k := 0; k < n.rows; k++ {
				dst := out.a[(i*n.rows+k)*out.cols+j*n.cols : (i*n.rows+k)*out.cols+(j+1)*n.cols]
				src := n.a[k*n.cols : (k+1)*n.cols]
				for l, v := range src {
					dst[l] = mij * v
				}
			}
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "% .6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
