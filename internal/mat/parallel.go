package mat

import "bgperf/internal/par"

// parallelMulMinRows is the smallest output-row count worth fanning across
// goroutines: below it the spawn/join overhead of the worker pool exceeds
// the arithmetic of a band.
const parallelMulMinRows = 64

// MulIntoWorkers computes a·b into dst like MulInto, fanning contiguous
// output-row bands across a bounded worker pool (workers <= 1, or a product
// too small to pay for the fan-out, degrades to the serial MulInto). Each
// band runs the same kernel arithmetic as the serial multiply on its rows
// and bands write disjoint row ranges of dst, so the result is bit-identical
// to MulInto for every worker count — pinned by tests. dst must not alias a
// or b.
func MulIntoWorkers(dst, a, b *Matrix, workers int) {
	rows := a.rows
	if workers <= 1 || rows < parallelMulMinRows {
		dst.MulInto(a, b)
		return
	}
	if a.cols != b.rows || dst.rows != rows || dst.cols != b.cols {
		panic(ErrShape)
	}
	mulCount.Add(1)
	blocked := a.cols >= blockedMulMin && b.cols >= blockedMulMin
	if workers > rows {
		workers = rows
	}
	band := (rows + workers - 1) / workers
	nBands := (rows + band - 1) / band
	// The kernels cannot fail; par.For's error slot stays nil throughout.
	_ = par.For(workers, nBands, func(w int) error {
		i0 := w * band
		i1 := i0 + band
		if i1 > rows {
			i1 = rows
		}
		if blocked {
			mulIntoBlockedRows(dst, a, b, i0, i1)
		} else {
			mulIntoNaiveRows(dst, a, b, i0, i1)
		}
		return nil
	})
}
