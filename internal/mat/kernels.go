package mat

// Matrix-multiply kernels behind MulInto.
//
// The naive kernel is the original i-k-j loop with a zero-skip on a's
// entries; it wins on the small, structurally sparse generator blocks of the
// paper's default model (order ~20). The blocked kernel targets the larger
// dense blocks produced by the Extension and Scalability sweeps: it tiles the
// output columns so the destination row stays cache-hot, and unrolls the k
// loop 4-way so each destination element is loaded and stored once per four
// accumulations instead of once per one.
//
// Determinism contract: for every output element, both kernels apply the
// products in strictly ascending k order with no reassociation, so they
// produce identical floating-point results (up to the sign of exact zeros).
// Tests in kernels_test.go pin this.

const (
	// blockedMulMin is the minimum inner dimension (a.cols) and output width
	// (b.cols) at which the blocked kernel pays for its bookkeeping. The
	// paper-default model solves blocks of order ~22, which stay on the naive
	// kernel; the Extension (two-priority) and Scalability (X = 50) sweeps
	// cross the threshold.
	blockedMulMin = 24
	// mulBlockJ is the output-column tile width in float64s (2 KiB per row
	// tile), sized so a destination tile plus four source rows stay in L1.
	mulBlockJ = 256
)

// mulIntoNaive is the zero-skipping triple loop for small or sparse operands.
func mulIntoNaive(m, a, b *Matrix) {
	for i := 0; i < a.rows; i++ {
		dst := m.a[i*m.cols : (i+1)*m.cols]
		for k := range dst {
			dst[k] = 0
		}
		for k := 0; k < a.cols; k++ {
			aik := a.a[i*a.cols+k]
			if aik == 0 {
				continue
			}
			brow := b.a[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				dst[j] += aik * bv
			}
		}
	}
}

// mulIntoBlocked is the column-tiled, 4-way k-unrolled kernel for large
// dense operands.
func mulIntoBlocked(m, a, b *Matrix) {
	rows, inner, width := a.rows, a.cols, b.cols
	for jt := 0; jt < width; jt += mulBlockJ {
		jhi := jt + mulBlockJ
		if jhi > width {
			jhi = width
		}
		for i := 0; i < rows; i++ {
			dst := m.a[i*width+jt : i*width+jhi]
			for j := range dst {
				dst[j] = 0
			}
			arow := a.a[i*inner : (i+1)*inner]
			k := 0
			for ; k+3 < inner; k += 4 {
				a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := b.a[k*width+jt : k*width+jhi]
				b1 := b.a[(k+1)*width+jt : (k+1)*width+jhi]
				b2 := b.a[(k+2)*width+jt : (k+2)*width+jhi]
				b3 := b.a[(k+3)*width+jt : (k+3)*width+jhi]
				for j := range dst {
					// Four separate accumulations (not one summed
					// expression) keep the k-ascending rounding order of the
					// naive kernel.
					t := dst[j]
					t += a0 * b0[j]
					t += a1 * b1[j]
					t += a2 * b2[j]
					t += a3 * b3[j]
					dst[j] = t
				}
			}
			for ; k < inner; k++ {
				aik := arow[k]
				if aik == 0 {
					continue
				}
				brow := b.a[k*width+jt : k*width+jhi]
				for j, bv := range brow {
					dst[j] += aik * bv
				}
			}
		}
	}
}
