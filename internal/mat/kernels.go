package mat

// Matrix-multiply kernels behind MulInto.
//
// The naive kernel is the original i-k-j loop with a zero-skip on a's
// entries; it wins on the small, structurally sparse generator blocks of the
// paper's default model (order ~20). The blocked kernel targets the larger
// dense blocks produced by the Extension and Scalability sweeps: it tiles the
// output columns so the destination row stays cache-hot, and unrolls the k
// loop 4-way so each destination element is loaded and stored once per four
// accumulations instead of once per one.
//
// Determinism contract: for every output element, both kernels apply the
// products in strictly ascending k order with no reassociation, so they
// produce identical floating-point results (up to the sign of exact zeros).
// Tests in kernels_test.go pin this.

const (
	// blockedMulMin is the minimum inner dimension (a.cols) and output width
	// (b.cols) at which the blocked kernel pays for its bookkeeping. The
	// paper-default model solves blocks of order ~22, which stay on the naive
	// kernel; the Extension (two-priority) and Scalability (X = 50) sweeps
	// cross the threshold.
	blockedMulMin = 24
	// mulBlockJ is the output-column tile width in float64s (2 KiB per row
	// tile), sized so a destination tile plus four source rows stay in L1.
	mulBlockJ = 256
)

// mulIntoNaive is the zero-skipping triple loop for small or sparse operands.
func mulIntoNaive(m, a, b *Matrix) { mulIntoNaiveRows(m, a, b, 0, a.rows) }

// mulIntoNaiveRows is mulIntoNaive restricted to output rows [i0, i1) — the
// unit of work the row-banded parallel multiply distributes. Each output row
// is computed exactly as in the serial kernel, so banding never changes bits.
func mulIntoNaiveRows(m, a, b *Matrix, i0, i1 int) {
	for i := i0; i < i1; i++ {
		dst := m.a[i*m.cols : (i+1)*m.cols]
		for k := range dst {
			dst[k] = 0
		}
		for k := 0; k < a.cols; k++ {
			aik := a.a[i*a.cols+k]
			if aik == 0 {
				continue
			}
			brow := b.a[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				dst[j] += aik * bv
			}
		}
	}
}

// mulIntoBlocked is the column-tiled, 4-way k-unrolled kernel for large
// dense operands.
func mulIntoBlocked(m, a, b *Matrix) { mulIntoBlockedRows(m, a, b, 0, a.rows) }

// mulIntoBlockedRows is mulIntoBlocked restricted to output rows [i0, i1),
// for the row-banded parallel multiply. Per output row the arithmetic is the
// serial kernel's, so banding never changes bits.
//
// Rows advance in pairs: the four b rows of each k quad are loaded once and
// feed both output rows, halving the streamed b traffic, and the two
// accumulator chains are independent, so the FP-add latency of one row hides
// behind the other. Each output row still applies its products in strictly
// ascending k order as four separate accumulations — pairing changes which
// row computes next, never the order within a row, so results are
// bit-identical to the single-row kernel (pinned by tests).
func mulIntoBlockedRows(m, a, b *Matrix, i0, i1 int) {
	inner, width := a.cols, b.cols
	for jt := 0; jt < width; jt += mulBlockJ {
		jhi := jt + mulBlockJ
		if jhi > width {
			jhi = width
		}
		i := i0
		for ; i+1 < i1; i += 2 {
			dst0 := m.a[i*width+jt : i*width+jhi]
			dst1 := m.a[(i+1)*width+jt : (i+1)*width+jhi]
			for j := range dst0 {
				dst0[j] = 0
				dst1[j] = 0
			}
			arow0 := a.a[i*inner : (i+1)*inner]
			arow1 := a.a[(i+1)*inner : (i+2)*inner]
			k := 0
			for ; k+3 < inner; k += 4 {
				a00, a01, a02, a03 := arow0[k], arow0[k+1], arow0[k+2], arow0[k+3]
				a10, a11, a12, a13 := arow1[k], arow1[k+1], arow1[k+2], arow1[k+3]
				zero0 := a00 == 0 && a01 == 0 && a02 == 0 && a03 == 0
				zero1 := a10 == 0 && a11 == 0 && a12 == 0 && a13 == 0
				if zero0 && zero1 {
					continue
				}
				b0 := b.a[k*width+jt : k*width+jhi]
				b1 := b.a[(k+1)*width+jt : (k+1)*width+jhi]
				b2 := b.a[(k+2)*width+jt : (k+2)*width+jhi]
				b3 := b.a[(k+3)*width+jt : (k+3)*width+jhi]
				switch {
				case zero1:
					for j := range dst0 {
						t := dst0[j]
						t += a00 * b0[j]
						t += a01 * b1[j]
						t += a02 * b2[j]
						t += a03 * b3[j]
						dst0[j] = t
					}
				case zero0:
					for j := range dst1 {
						t := dst1[j]
						t += a10 * b0[j]
						t += a11 * b1[j]
						t += a12 * b2[j]
						t += a13 * b3[j]
						dst1[j] = t
					}
				default:
					for j := range dst0 {
						t0 := dst0[j]
						t0 += a00 * b0[j]
						t0 += a01 * b1[j]
						t0 += a02 * b2[j]
						t0 += a03 * b3[j]
						dst0[j] = t0
						t1 := dst1[j]
						t1 += a10 * b0[j]
						t1 += a11 * b1[j]
						t1 += a12 * b2[j]
						t1 += a13 * b3[j]
						dst1[j] = t1
					}
				}
			}
			for ; k < inner; k++ {
				a0v, a1v := arow0[k], arow1[k]
				if a0v == 0 && a1v == 0 {
					continue
				}
				brow := b.a[k*width+jt : k*width+jhi]
				if a0v != 0 {
					for j, bv := range brow {
						dst0[j] += a0v * bv
					}
				}
				if a1v != 0 {
					for j, bv := range brow {
						dst1[j] += a1v * bv
					}
				}
			}
		}
		for ; i < i1; i++ {
			dst := m.a[i*width+jt : i*width+jhi]
			for j := range dst {
				dst[j] = 0
			}
			arow := a.a[i*inner : (i+1)*inner]
			k := 0
			for ; k+3 < inner; k += 4 {
				a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := b.a[k*width+jt : k*width+jhi]
				b1 := b.a[(k+1)*width+jt : (k+1)*width+jhi]
				b2 := b.a[(k+2)*width+jt : (k+2)*width+jhi]
				b3 := b.a[(k+3)*width+jt : (k+3)*width+jhi]
				for j := range dst {
					// Four separate accumulations (not one summed
					// expression) keep the k-ascending rounding order of the
					// naive kernel.
					t := dst[j]
					t += a0 * b0[j]
					t += a1 * b1[j]
					t += a2 * b2[j]
					t += a3 * b3[j]
					dst[j] = t
				}
			}
			for ; k < inner; k++ {
				aik := arow[k]
				if aik == 0 {
					continue
				}
				brow := b.a[k*width+jt : k*width+jhi]
				for j, bv := range brow {
					dst[j] += aik * bv
				}
			}
		}
	}
}
