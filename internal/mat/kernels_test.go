package mat

import (
	"math/rand"
	"testing"
)

// TestBlockedMatchesNaive compares mulIntoBlocked against mulIntoNaive
// directly at sizes straddling blockedMulMin, including rectangular shapes
// and sparse operands. The blocked kernel accumulates each output element in
// the same k-ascending order as the naive one, so the results must agree to
// 1e-15 (in practice bit-for-bit).
func TestBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	shapes := []struct{ m, k, n int }{
		{4, 4, 4},
		{8, 8, 8},
		{23, 23, 23},
		{24, 24, 24},
		{25, 25, 25},
		{40, 40, 40},
		{64, 64, 64},
		{23, 25, 24}, // straddles the threshold in every dimension
		{30, 7, 50},  // short inner dimension exercises the k tail loop
		{5, 60, 33},  // long inner dimension, many unrolled k quads
	}
	for _, sh := range shapes {
		for _, sparsity := range []float64{0, 0.4, 0.95} {
			a := randMat(rng, sh.m, sh.k, sparsity)
			b := randMat(rng, sh.k, sh.n, sparsity)
			want := New(sh.m, sh.n)
			mulIntoNaive(want, a, b)
			got := New(sh.m, sh.n)
			mulIntoBlocked(got, a, b)
			requireClose(t, got, want, 1e-15, "blocked vs naive")

			// And through the public dispatching entry point.
			pub := New(sh.m, sh.n)
			pub.MulInto(a, b)
			requireClose(t, pub, want, 1e-15, "MulInto dispatch")
		}
	}
}

// TestBlockedWideOutput exercises output widths beyond one j-tile so the
// tiling loop itself runs more than once.
func TestBlockedWideOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randMat(rng, 8, 16, 0.1)
	b := randMat(rng, 16, mulBlockJ+37, 0.1)
	want := New(8, mulBlockJ+37)
	mulIntoNaive(want, a, b)
	got := New(8, mulBlockJ+37)
	mulIntoBlocked(got, a, b)
	requireClose(t, got, want, 1e-15, "blocked wide output")
}

func benchmarkMulKernel(b *testing.B, n int, kernel func(dst, x, y *Matrix)) {
	rng := rand.New(rand.NewSource(29))
	x := randMat(rng, n, n, 0)
	y := randMat(rng, n, n, 0)
	dst := New(n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(dst, x, y)
	}
}

func BenchmarkMulIntoNaive64(b *testing.B)    { benchmarkMulKernel(b, 64, mulIntoNaive) }
func BenchmarkMulIntoBlocked64(b *testing.B)  { benchmarkMulKernel(b, 64, mulIntoBlocked) }
func BenchmarkMulIntoNaive128(b *testing.B)   { benchmarkMulKernel(b, 128, mulIntoNaive) }
func BenchmarkMulIntoBlocked128(b *testing.B) { benchmarkMulKernel(b, 128, mulIntoBlocked) }

func BenchmarkInverseInto64(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	a := diagDominant(rng, 64)
	f := NewLU(64)
	dst := New(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := FactorizeInto(f, a); err != nil {
			b.Fatal(err)
		}
		f.InverseInto(dst)
	}
}
