package mat

import (
	"sync"
	"testing"
)

// TestWorkspaceConcurrentBorrowers pins the concurrency contract of the
// shape-keyed pool: multiple goroutines borrowing and releasing buffers from
// one Workspace must not race on the pool bookkeeping. Before the pool was
// mutex-protected this test failed under -race (concurrent map writes in
// Matrix/Release) and could corrupt the free lists; it now must pass under
// -race and hand every borrower a buffer it exclusively owns.
func TestWorkspaceConcurrentBorrowers(t *testing.T) {
	ws := NewWorkspace()
	// Pre-seed the pools so hits and misses both occur concurrently.
	seed := []*Matrix{ws.Matrix(8, 8), ws.Matrix(8, 8), ws.Matrix(3, 5)}
	ws.Release(seed...)
	ws.ReleaseVector(ws.Vector(8), ws.Vector(8))
	ws.ReleaseLU(ws.LU(8))

	const (
		workers = 8
		rounds  = 200
	)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				m := ws.Matrix(8, 8)
				n := ws.Matrix(3, 5)
				v := ws.Vector(8)
				f := ws.LU(8)
				// Exercise exclusive ownership: if two borrowers were ever
				// handed the same buffer, the race detector flags the
				// concurrent writes below.
				fill := float64(w*rounds + r)
				for i := 0; i < 8; i++ {
					for j := 0; j < 8; j++ {
						m.Set(i, j, fill)
					}
					v[i] = fill
				}
				if err := FactorizeInto(f, Identity(8)); err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < 8; i++ {
					for j := 0; j < 8; j++ {
						if m.At(i, j) != fill {
							t.Errorf("worker %d round %d: buffer shared with another borrower", w, r)
							return
						}
					}
				}
				ws.Release(m, n)
				ws.ReleaseVector(v)
				ws.ReleaseLU(f)
			}
		}()
	}
	wg.Wait()

	s := ws.Stats()
	if s.MatrixHits+s.MatrixMisses < workers*rounds {
		t.Fatalf("stats lost acquisitions under concurrency: %+v", s)
	}
}
