package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randomSparseDominant returns a random diagonally dominant n×n matrix with
// a third of its off-diagonal entries exactly zero, so factorization always
// succeeds and the substitution kernels' zero-skip paths are exercised.
func randomSparseDominant(rng *rand.Rand, n int) *Matrix {
	a := New(n, n)
	for i := 0; i < n; i++ {
		var rowAbs float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.NormFloat64()
			if rng.Intn(3) == 0 {
				v = 0 // keep zero entries common: the kernels skip them
			}
			a.Set(i, j, v)
			if v < 0 {
				rowAbs -= v
			} else {
				rowAbs += v
			}
		}
		a.Set(i, i, rowAbs+1+rng.Float64())
	}
	return a
}

// solveMatByColumns is the reference implementation: one SolveVecInto per
// right-hand-side column, exactly the pre-tiling code path.
func solveMatByColumns(f *LU, b *Matrix) *Matrix {
	n := b.rows
	out := New(n, b.cols)
	col := make([]float64, n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		f.SolveVecInto(col, col)
		for i := 0; i < n; i++ {
			out.Set(i, j, col[i])
		}
	}
	return out
}

// TestSolveMatIntoBitIdenticalToVecSolves pins the determinism contract of
// the tiled substitution: SolveMatInto and InverseInto must produce exactly
// the same bits as solving column by column with SolveVecInto, across sizes
// that straddle the tile width (including ragged final tiles).
func TestSolveMatIntoBitIdenticalToVecSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 7, 16, 31, 32, 33, 64, 97, 153} {
		a := randomSparseDominant(rng, n)
		f, err := Factorize(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, w := range []int{1, 5, n} {
			b := New(n, w)
			for i := range b.a {
				b.a[i] = rng.NormFloat64()
			}
			got := f.SolveMat(b)
			want := solveMatByColumns(f, b)
			requireBitIdentical(t, "SolveMatInto", n, w, got, want)
		}
		inv := New(n, n)
		f.InverseInto(inv)
		id := Identity(n)
		wantInv := solveMatByColumns(f, id)
		requireBitIdentical(t, "InverseInto", n, n, inv, wantInv)
	}
}

func requireBitIdentical(t *testing.T, what string, n, w int, got, want *Matrix) {
	t.Helper()
	for i := 0; i < got.rows; i++ {
		for j := 0; j < got.cols; j++ {
			g, x := got.At(i, j), want.At(i, j)
			if math.Float64bits(g) != math.Float64bits(x) {
				t.Fatalf("%s n=%d w=%d: (%d,%d) got %x want %x (%g vs %g)",
					what, n, w, i, j, math.Float64bits(g), math.Float64bits(x), g, x)
			}
		}
	}
}
