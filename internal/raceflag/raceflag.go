// Package raceflag reports whether the binary was built with the race
// detector. Allocation-budget tests (testing.AllocsPerRun gates) skip under
// the race detector, whose instrumentation perturbs allocation counts; CI
// runs them in a separate non-instrumented step.
package raceflag

// Enabled is true when the build has -race; see raceflag_on.go.
var Enabled = false
