package experiments

import "bgperf/internal/obs"

// Generator names one reproducible experiment.
type Generator struct {
	// Name is the CLI-facing identifier ("1", "5", "validation", …).
	Name string
	// Paper describes what it reproduces.
	Paper string
	// Run produces the artifacts.
	Run func() (Result, error)
}

// Options tunes the experiment registry.
type Options struct {
	// TraceLength is the synthetic trace length for Figure 1. The default
	// of 3,000,000 exceeds the paper's "few hundred thousand entries"
	// because the fitted MMPPs must be *sampled* here and they modulate
	// slowly (~5·10⁵ arrivals per phase cycle for E-mail); shorter synthetic
	// traces give unstable sample means.
	TraceLength int
	// Seed drives the stochastic experiments (trace sampling, simulation).
	Seed int64
	// Workers bounds the fan-out of the sweep engine: independent grid
	// points (QBD solves, validation simulations) run on at most Workers
	// goroutines (0: all cores, 1: serial). Results are collected
	// index-addressed, so every artifact is bit-identical across worker
	// counts.
	Workers int
	// Validation sizes the simulation cross-check.
	Validation ValidationOptions
	// Observer, when non-nil, collects solver and simulator diagnostics from
	// the shared load sweeps and the validation cross-check (must tolerate
	// concurrent calls — grid points solve in parallel).
	Observer obs.Observer
}

func (o Options) withDefaults() Options {
	if o.TraceLength == 0 {
		o.TraceLength = 3000000
	}
	o.Validation.Seed = o.Seed
	o.Validation.Workers = o.Workers
	o.Validation.Observer = o.Observer
	return o
}

// All returns every experiment in paper order. Generators sharing load
// sweeps reuse one Suite, so running them all solves each grid only once.
func All(opts Options) []Generator {
	opts = opts.withDefaults()
	suite := NewSuiteObserved(opts.Workers, opts.Observer)
	w := opts.Workers
	return []Generator{
		{Name: "1", Paper: "Fig. 1 — trace ACF and characteristics table",
			Run: func() (Result, error) { return Figure1(opts.TraceLength, opts.Seed) }},
		{Name: "2", Paper: "Fig. 2 — MMPP ACF and parameter table", Run: Figure2},
		{Name: "5", Paper: "Fig. 5 — FG queue length vs load", Run: suite.Figure5},
		{Name: "6", Paper: "Fig. 6 — delayed FG fraction vs load", Run: suite.Figure6},
		{Name: "7", Paper: "Fig. 7 — BG completion rate vs load", Run: suite.Figure7},
		{Name: "8", Paper: "Fig. 8 — BG queue length vs load", Run: suite.Figure8},
		{Name: "9", Paper: "Fig. 9 — FG queue length vs idle wait",
			Run: func() (Result, error) { return Figure9(w) }},
		{Name: "10", Paper: "Fig. 10 — BG completion rate vs idle wait",
			Run: func() (Result, error) { return Figure10(w) }},
		{Name: "11", Paper: "Fig. 11 — FG queue length across arrival processes",
			Run: func() (Result, error) { return Figure11(w) }},
		{Name: "12", Paper: "Fig. 12 — BG completion rate across arrival processes",
			Run: func() (Result, error) { return Figure12(w) }},
		{Name: "13", Paper: "Fig. 13 — delayed FG fraction across arrival processes",
			Run: func() (Result, error) { return Figure13(w) }},
		{Name: "validation", Paper: "V-1 — analytic vs simulation cross-check",
			Run: func() (Result, error) { return Validation(opts.Validation) }},
		{Name: "ablation", Paper: "A-1 — idle policy and buffer-size ablations", Run: Ablation},
		{Name: "extension", Paper: "E-1 — two background priority classes (the paper's future work)",
			Run: func() (Result, error) { return Extension(w) }},
		{Name: "baseline", Paper: "B-1 — exact chain vs classical vacation-model decomposition",
			Run: func() (Result, error) { return Baseline(w) }},
		// Scalability stays serial by design: it reports per-solve wall-clock
		// timings, which concurrent solves would pollute.
		{Name: "scalability", Paper: "S-1 — solver wall-clock scaling with the state space", Run: Scalability},
	}
}

// Lookup returns the generator with the given name, or false.
func Lookup(name string, opts Options) (Generator, bool) {
	for _, g := range All(opts) {
		if g.Name == name {
			return g, true
		}
	}
	return Generator{}, false
}
