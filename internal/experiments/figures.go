package experiments

import (
	"fmt"
	"sync"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/obs"
	"bgperf/internal/par"
	"bgperf/internal/trace"
	"bgperf/internal/workload"
)

// Default sweep grids. The paper sweeps foreground utilization by scaling
// the MMPP means; the high-ACF workload saturates at far lower utilization
// than the short-range-dependent one, so the grids differ (matching the
// paper's differing x-ranges in Fig. 5–8).
var (
	emailUtils = []float64{0.02, 0.05, 0.08, 0.12, 0.16, 0.20, 0.24, 0.28, 0.32, 0.36}
	softUtils  = []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85}
	indepUtils = []float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95}

	// pAll includes the no-background baseline (Fig. 5/6); pBG covers the
	// background metrics (Fig. 7/8) where p = 0 is vacuous.
	pAll = []float64{0, 0.1, 0.3, 0.6, 0.9}
	pBG  = []float64{0.1, 0.3, 0.6, 0.9}

	idleMults = []float64{0.25, 0.5, 1, 2, 4, 8}
)

// Suite generates the paper's artifacts, caching the expensive load sweeps
// shared between figures.
//
// A Suite is safe for concurrent use: the cached sweeps are computed at most
// once (sync.Once-guarded, even under concurrent first use) and are
// read-only afterwards, so any number of goroutines may generate figures
// from one shared Suite. Grid points of a sweep are themselves fanned out
// over a bounded worker pool; results are collected index-addressed, so the
// output is bit-identical to a serial run regardless of worker count.
type Suite struct {
	workers  int
	observer obs.Observer

	once  sync.Once
	err   error
	email *sweep
	soft  *sweep
}

// NewSuite returns an empty suite; sweeps are computed on first use, fanned
// out over all cores.
func NewSuite() *Suite { return NewSuiteWorkers(0) }

// NewSuiteWorkers returns an empty suite whose sweeps fan grid points out
// over at most workers goroutines (workers <= 0: all cores; 1: serial).
func NewSuiteWorkers(workers int) *Suite { return NewSuiteObserved(workers, nil) }

// NewSuiteObserved is NewSuiteWorkers with an optional obs.Observer that
// every QBD solve of the cached load sweeps reports to (nil: no
// instrumentation). The observer must tolerate concurrent calls — sweep grid
// points solve in parallel.
func NewSuiteObserved(workers int, o obs.Observer) *Suite {
	return &Suite{workers: workers, observer: o}
}

// sweep holds solved metrics over a utilization × p grid for one workload.
type sweep struct {
	name    string
	utils   []float64
	ps      []float64
	metrics [][]core.Metrics // [pIdx][utilIdx]
}

// runSweep solves the model across the grid with idle wait equal to the mean
// service time (the paper's default). Grid points are independent QBD solves,
// so they fan out over the worker pool; each writes only its own
// pre-allocated metrics cell, keeping the result identical to a serial run.
func runSweep(name string, m *arrival.MAP, utils, ps []float64, workers int, o obs.Observer) (*sweep, error) {
	s := &sweep{name: name, utils: utils, ps: ps}
	s.metrics = make([][]core.Metrics, len(ps))
	for pi := range ps {
		s.metrics[pi] = make([]core.Metrics, len(utils))
	}
	err := par.For(workers, len(ps)*len(utils), func(i int) error {
		pi, ui := i/len(utils), i%len(utils)
		p, util := ps[pi], utils[ui]
		scaled, err := workload.AtUtilization(m, util)
		if err != nil {
			return fmt.Errorf("experiments: %s sweep: %w", name, err)
		}
		met, err := solveMetricsObs(scaled, p, core.IdleWaitPerJob, workload.ServiceRatePerMs, o)
		if err != nil {
			return fmt.Errorf("experiments: %s util %g p %g: %w", name, util, p, err)
		}
		s.metrics[pi][ui] = met
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// solveMetrics solves one configuration with the paper defaults (buffer 5,
// idle rate = idleRate).
func solveMetrics(m *arrival.MAP, p float64, policy core.IdleWaitPolicy, idleRate float64) (core.Metrics, error) {
	return solveMetricsObs(m, p, policy, idleRate, nil)
}

// solveMetricsObs is solveMetrics reporting to an optional observer.
func solveMetricsObs(m *arrival.MAP, p float64, policy core.IdleWaitPolicy, idleRate float64, o obs.Observer) (core.Metrics, error) {
	model, err := core.NewModel(core.Config{
		Arrival:     m,
		ServiceRate: workload.ServiceRatePerMs,
		BGProb:      p,
		BGBuffer:    5,
		IdleRate:    idleRate,
		IdlePolicy:  policy,
	})
	if err != nil {
		return core.Metrics{}, err
	}
	sol, err := model.SolveObserved(o)
	if err != nil {
		return core.Metrics{}, err
	}
	return sol.Metrics, nil
}

// series extracts one curve (metric vs utilization) from a sweep.
func (s *sweep) series(pIdx int, label string, metric func(core.Metrics) float64) Series {
	pts := make([]Point, len(s.utils))
	for ui, util := range s.utils {
		pts[ui] = Point{X: util, Y: metric(s.metrics[pIdx][ui])}
	}
	return Series{Label: label, Points: pts}
}

func (s *Suite) loadSweeps() error {
	s.once.Do(func() {
		email, err := workload.Email()
		if err != nil {
			s.err = err
			return
		}
		soft, err := workload.SoftwareDevelopment()
		if err != nil {
			s.err = err
			return
		}
		if s.email, err = runSweep("E-mail", email, emailUtils, pAll, s.workers, s.observer); err != nil {
			s.err = err
			return
		}
		s.soft, s.err = runSweep("Software Development", soft, softUtils, pAll, s.workers, s.observer)
	})
	return s.err
}

// loadFigure builds the (a) E-mail / (b) Soft.Dev pair of one load-sweep
// figure.
func (s *Suite) loadFigure(id, title, ylabel string, ps []float64, metric func(core.Metrics) float64) (Result, error) {
	if err := s.loadSweeps(); err != nil {
		return Result{}, err
	}
	build := func(sub string, sw *sweep) Figure {
		f := Figure{
			ID:     id + sub,
			Title:  fmt.Sprintf("%s — %s", title, sw.name),
			XLabel: "fg-util",
			YLabel: ylabel,
		}
		for pi, p := range sw.ps {
			if !contains(ps, p) {
				continue
			}
			f.Series = append(f.Series, sw.series(pi, fmt.Sprintf("p=%.1f", p), metric))
		}
		return f
	}
	return Result{Figures: []Figure{build("a", s.email), build("b", s.soft)}}, nil
}

func contains(xs []float64, v float64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Figure1 reproduces the trace-characterization figure: the sample ACF of
// inter-arrival times of the three (synthetic) traces plus the mean/CV/
// utilization table. n is the trace length (the paper uses a few hundred
// thousand entries).
func Figure1(n int, seed int64) (Result, error) {
	traces, err := workload.Traces()
	if err != nil {
		return Result{}, err
	}
	fig := Figure{
		ID:     "fig1",
		Title:  "ACF of inter-arrival times of the three traces",
		XLabel: "lag",
		YLabel: "ACF",
		Notes:  "traces are synthetic, sampled from the fitted MMPPs (DESIGN.md substitution #1); sample utilization fluctuates across seeds because the MMPPs modulate slowly",
	}
	tbl := Table{
		ID:     "fig1-table",
		Title:  "Trace characteristics (times in ms)",
		Header: []string{"trace", "ia-mean", "ia-cv", "svc-mean", "svc-cv", "util"},
	}
	const maxLag = 100
	for i, w := range traces {
		tr := trace.GenerateWithService(w.MAP, n, seed+int64(i), workload.ServiceRatePerMs)
		acf := tr.InterarrivalACF(maxLag)
		pts := make([]Point, maxLag)
		for k, v := range acf {
			pts[k] = Point{X: float64(k + 1), Y: v}
		}
		fig.Series = append(fig.Series, Series{Label: w.Name, Points: pts})
		ia := tr.InterarrivalStats()
		sv := tr.ServiceStats()
		tbl.Rows = append(tbl.Rows, []string{
			w.Name, fmtG(ia.Mean), fmtG(ia.CV), fmtG(sv.Mean), fmtG(sv.CV),
			fmt.Sprintf("%.1f%%", 100*tr.Utilization()),
		})
	}
	return Result{Figures: []Figure{fig}, Tables: []Table{tbl}}, nil
}

// Figure2 reproduces the model-characterization figure: the analytic ACF of
// the three fitted MMPPs and their parameter table (paper Eq. 4 form).
func Figure2() (Result, error) {
	traces, err := workload.Traces()
	if err != nil {
		return Result{}, err
	}
	fig := Figure{
		ID:     "fig2",
		Title:  "ACF of the 2-state MMPP models",
		XLabel: "lag",
		YLabel: "ACF",
	}
	tbl := Table{
		ID:     "fig2-table",
		Title:  "MMPP parameters (rates per ms)",
		Header: []string{"workload", "v1", "v2", "l1", "l2", "rate", "CV", "util"},
		Notes:  "Soft.Dev. and User Accounts rows are the paper's digits; the E-mail row is re-fitted (corrupt scan)",
	}
	const maxLag = 100
	for _, w := range traces {
		acf := w.MAP.ACFSeries(maxLag)
		pts := make([]Point, maxLag)
		for k, v := range acf {
			pts[k] = Point{X: float64(k + 1), Y: v}
		}
		fig.Series = append(fig.Series, Series{Label: w.Name, Points: pts})
		d0, d1 := w.MAP.D0(), w.MAP.D1()
		tbl.Rows = append(tbl.Rows, []string{
			w.Name,
			fmtG(d0.At(0, 1)), fmtG(d0.At(1, 0)),
			fmtG(d1.At(0, 0)), fmtG(d1.At(1, 1)),
			fmtG(w.MAP.Rate()), fmtG(w.MAP.CV()),
			fmt.Sprintf("%.1f%%", 100*w.MAP.Rate()/workload.ServiceRatePerMs),
		})
	}
	return Result{Figures: []Figure{fig}, Tables: []Table{tbl}}, nil
}

// Figure5 reproduces the FG average queue length versus foreground load.
func (s *Suite) Figure5() (Result, error) {
	return s.loadFigure("fig5", "Average queue length of foreground jobs", "fg-qlen", pAll,
		func(m core.Metrics) float64 { return m.QLenFG })
}

// Figure6 reproduces the portion of FG jobs delayed by a BG job versus load.
func (s *Suite) Figure6() (Result, error) {
	return s.loadFigure("fig6", "Portion of foreground jobs delayed by a background job", "fg-delayed-frac", pAll,
		func(m core.Metrics) float64 { return m.WaitPFG })
}

// Figure7 reproduces the BG completion rate versus foreground load.
func (s *Suite) Figure7() (Result, error) {
	return s.loadFigure("fig7", "Completion rate of background jobs", "bg-completion", pBG,
		func(m core.Metrics) float64 { return m.CompBG })
}

// Figure8 reproduces the BG average queue length versus foreground load.
func (s *Suite) Figure8() (Result, error) {
	return s.loadFigure("fig8", "Average queue length of background jobs", "bg-qlen", pBG,
		func(m core.Metrics) float64 { return m.QLenBG })
}

// idleSweep solves the two trace workloads at their native utilizations
// across idle-wait durations (in multiples of the mean service time). The
// figure and series skeletons are assembled serially; the independent solves
// behind each point fan out over the worker pool and write their own
// pre-allocated point.
func idleSweep(workers int, metric func(core.Metrics) float64, id, title, ylabel string) (Result, error) {
	email, err := workload.Email()
	if err != nil {
		return Result{}, err
	}
	soft, err := workload.SoftwareDevelopment()
	if err != nil {
		return Result{}, err
	}
	var res Result
	var jobs []func() error
	for _, w := range []workload.Named{
		{Name: "E-mail", MAP: email},
		{Name: "Software Development", MAP: soft},
	} {
		w := w
		sub := "a"
		if w.Name != "E-mail" {
			sub = "b"
		}
		f := Figure{
			ID:     id + sub,
			Title:  fmt.Sprintf("%s — %s (native trace load)", title, w.Name),
			XLabel: "idle-wait (× service time)",
			YLabel: ylabel,
		}
		for _, p := range pBG {
			p := p
			pts := make([]Point, len(idleMults))
			for i, mult := range idleMults {
				i, mult := i, mult
				jobs = append(jobs, func() error {
					// Idle wait of mult service times ⇒ α = µ/mult.
					met, err := solveMetrics(w.MAP, p, core.IdleWaitPerJob, workload.ServiceRatePerMs/mult)
					if err != nil {
						return fmt.Errorf("experiments: idle sweep %s p=%g mult=%g: %w", w.Name, p, mult, err)
					}
					pts[i] = Point{X: mult, Y: metric(met)}
					return nil
				})
			}
			f.Series = append(f.Series, Series{Label: fmt.Sprintf("p=%.1f", p), Points: pts})
		}
		res.Figures = append(res.Figures, f)
	}
	if err := par.Jobs(workers, jobs); err != nil {
		return Result{}, err
	}
	return res, nil
}

// Figure9 reproduces the FG queue length versus idle-wait duration, fanning
// the grid out over at most workers goroutines (0: all cores).
func Figure9(workers int) (Result, error) {
	return idleSweep(workers, func(m core.Metrics) float64 { return m.QLenFG },
		"fig9", "Foreground queue length vs idle wait", "fg-qlen")
}

// Figure10 reproduces the BG completion rate versus idle-wait duration,
// fanning the grid out over at most workers goroutines (0: all cores).
func Figure10(workers int) (Result, error) {
	return idleSweep(workers, func(m core.Metrics) float64 { return m.CompBG },
		"fig10", "Background completion rate vs idle wait", "bg-completion")
}

// dependenceFigure builds the Sec. 5.4 comparison (paper Fig. 11–13): the
// same metric under High-ACF MMPP, Low-ACF MMPP, IPP, and Poisson arrivals,
// at p = 0.3 and p = 0.9. Following the paper's split x-axis, correlated and
// independent processes are reported as separate sub-figures because they
// saturate at utilizations an order of magnitude apart.
func dependenceFigure(workers int, id, title, ylabel string, metric func(core.Metrics) float64) (Result, error) {
	procs, err := workload.DependenceComparison()
	if err != nil {
		return Result{}, err
	}
	var res Result
	var jobs []func() error
	for _, p := range []float64{0.3, 0.9} {
		p := p
		for _, group := range []struct {
			sub   string
			names []string
			utils []float64
		}{
			{"-corr", []string{"High ACF", "Low ACF"}, emailUtils},
			{"-indep", []string{"IPP", "Expo"}, indepUtils},
		} {
			f := Figure{
				ID:     fmt.Sprintf("%s-p%.0f%s", id, p*10, group.sub),
				Title:  fmt.Sprintf("%s — E-mail parameterization, p=%.1f (%s arrivals)", title, p, group.sub[1:]),
				XLabel: "fg-util",
				YLabel: ylabel,
			}
			for _, proc := range procs {
				proc := proc
				if !containsString(group.names, proc.Name) {
					continue
				}
				pts := make([]Point, len(group.utils))
				for i, util := range group.utils {
					i, util := i, util
					jobs = append(jobs, func() error {
						scaled, err := workload.AtUtilization(proc.MAP, util)
						if err != nil {
							return err
						}
						met, err := solveMetrics(scaled, p, core.IdleWaitPerJob, workload.ServiceRatePerMs)
						if err != nil {
							return fmt.Errorf("experiments: dependence %s util %g: %w", proc.Name, util, err)
						}
						pts[i] = Point{X: util, Y: metric(met)}
						return nil
					})
				}
				f.Series = append(f.Series, Series{Label: proc.Name, Points: pts})
			}
			res.Figures = append(res.Figures, f)
		}
	}
	if err := par.Jobs(workers, jobs); err != nil {
		return Result{}, err
	}
	return res, nil
}

func containsString(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Figure11 reproduces the FG queue length under the four arrival processes,
// fanning the grid out over at most workers goroutines (0: all cores).
func Figure11(workers int) (Result, error) {
	return dependenceFigure(workers, "fig11", "Average foreground queue length", "fg-qlen",
		func(m core.Metrics) float64 { return m.QLenFG })
}

// Figure12 reproduces the BG completion rate under the four arrival
// processes, fanning the grid out over at most workers goroutines (0: all
// cores).
func Figure12(workers int) (Result, error) {
	return dependenceFigure(workers, "fig12", "Background completion rate", "bg-completion",
		func(m core.Metrics) float64 { return m.CompBG })
}

// Figure13 reproduces the delayed-FG fraction under the four arrival
// processes, fanning the grid out over at most workers goroutines (0: all
// cores).
func Figure13(workers int) (Result, error) {
	return dependenceFigure(workers, "fig13", "Portion of foreground jobs delayed by a background job", "fg-delayed-frac",
		func(m core.Metrics) float64 { return m.WaitPFG })
}
