package experiments

import (
	"fmt"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/obs"
	"bgperf/internal/par"
	"bgperf/internal/phtype"
	"bgperf/internal/sim"
	"bgperf/internal/workload"
)

// ValidationOptions sizes the analytic-versus-simulation cross-check.
type ValidationOptions struct {
	// MeasureTime is the simulated measurement window in ms (default 2e8 —
	// long enough for the slow-mixing trace MMPPs to average out).
	MeasureTime float64
	// Seed makes the runs reproducible.
	Seed int64
	// Workers bounds the fan-out over the validation cases (0: all cores).
	// Each case carries its own derived seed, so the table is identical for
	// every worker count.
	Workers int
	// Observer, when non-nil, receives solver stage timings and simulator
	// event counters from every case (must tolerate concurrent calls).
	Observer obs.Observer
}

func (o ValidationOptions) withDefaults() ValidationOptions {
	if o.MeasureTime == 0 {
		o.MeasureTime = 2e8
	}
	return o
}

// Validation cross-checks the analytic chain against the independent event
// simulator on a grid of workloads, loads, and background probabilities —
// our addition (table V-1 in DESIGN.md), standing in for the paper's
// unreported internal validation.
func Validation(opts ValidationOptions) (Result, error) {
	opts = opts.withDefaults()
	email, err := workload.Email()
	if err != nil {
		return Result{}, err
	}
	soft, err := workload.SoftwareDevelopment()
	if err != nil {
		return Result{}, err
	}
	poisson, err := workload.EmailPoisson()
	if err != nil {
		return Result{}, err
	}
	cases := []struct {
		name string
		m    *arrival.MAP
		util float64
		p    float64
	}{
		{"Expo", poisson, 0.50, 0.6},
		{"Expo", poisson, 0.80, 0.9},
		{"Soft.Dev.", soft, 0.30, 0.3},
		{"Soft.Dev.", soft, 0.60, 0.9},
		{"E-mail", email, 0.10, 0.6},
		{"E-mail", email, 0.20, 0.9},
	}
	tbl := Table{
		ID:    "validation",
		Title: "Analytic model vs event simulation",
		Header: []string{
			"workload", "util", "p",
			"qlenFG(ana)", "qlenFG(sim)", "±95%",
			"compBG(ana)", "compBG(sim)",
			"waitPFG(ana)", "waitPFG(sim)",
		},
		Notes: "idle wait = mean service time, buffer 5; simulation window " + fmtG(opts.MeasureTime) + " ms",
	}
	// Each case is one analytic solve plus one long simulation with its own
	// derived seed, so cases fan out over the worker pool independently.
	tbl.Rows = make([][]string, len(cases))
	err = par.For(opts.Workers, len(cases), func(i int) error {
		c := cases[i]
		scaled, err := workload.AtUtilization(c.m, c.util)
		if err != nil {
			return err
		}
		ana, err := solveMetricsObs(scaled, c.p, core.IdleWaitPerJob, workload.ServiceRatePerMs, opts.Observer)
		if err != nil {
			return fmt.Errorf("experiments: validation %s: %w", c.name, err)
		}
		res, err := sim.RunOpts(nil, sim.Config{
			Arrival:     scaled,
			ServiceRate: workload.ServiceRatePerMs,
			BGProb:      c.p,
			BGBuffer:    5,
			IdleRate:    workload.ServiceRatePerMs,
			Seed:        opts.Seed + int64(i),
			WarmupTime:  opts.MeasureTime / 20,
			MeasureTime: opts.MeasureTime,
		}, opts.Observer)
		if err != nil {
			return fmt.Errorf("experiments: validation sim %s: %w", c.name, err)
		}
		tbl.Rows[i] = []string{
			c.name, fmt.Sprintf("%.2f", c.util), fmt.Sprintf("%.1f", c.p),
			fmtG(ana.QLenFG), fmtG(res.Metrics.QLenFG), fmtG(res.QLenFGHalf),
			fmtG(ana.CompBG), fmtG(res.Metrics.CompBG),
			fmtG(ana.WaitPFG), fmtG(res.Metrics.WaitPFG),
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Tables: []Table{tbl}}, nil
}

// Ablation quantifies the two modelling choices the paper leaves open
// (table A-1 in DESIGN.md): the idle-wait re-arming policy and the BG buffer
// size (the paper states buffers up to 25 behave qualitatively like 5).
func Ablation() (Result, error) {
	email, err := workload.Email()
	if err != nil {
		return Result{}, err
	}
	soft, err := workload.SoftwareDevelopment()
	if err != nil {
		return Result{}, err
	}

	policy := Table{
		ID:     "ablation-idle-policy",
		Title:  "Idle-wait policy: re-arm per BG job vs once per idle period (E-mail, native load)",
		Header: []string{"p", "qlenFG(job)", "qlenFG(period)", "compBG(job)", "compBG(period)", "waitPFG(job)", "waitPFG(period)"},
	}
	for _, p := range pBG {
		perJob, err := solveMetrics(email, p, core.IdleWaitPerJob, workload.ServiceRatePerMs)
		if err != nil {
			return Result{}, err
		}
		perPeriod, err := solveMetrics(email, p, core.IdleWaitPerPeriod, workload.ServiceRatePerMs)
		if err != nil {
			return Result{}, err
		}
		policy.Rows = append(policy.Rows, []string{
			fmt.Sprintf("%.1f", p),
			fmtG(perJob.QLenFG), fmtG(perPeriod.QLenFG),
			fmtG(perJob.CompBG), fmtG(perPeriod.CompBG),
			fmtG(perJob.WaitPFG), fmtG(perPeriod.WaitPFG),
		})
	}

	buffer := Table{
		ID:     "ablation-buffer",
		Title:  "BG buffer size 5 vs 25 (Soft.Dev., p = 0.6)",
		Header: []string{"util", "compBG(X=5)", "compBG(X=25)", "qlenBG(X=5)", "qlenBG(X=25)", "qlenFG(X=5)", "qlenFG(X=25)"},
		Notes:  "the paper reports qualitatively identical results for buffers 5–25",
	}
	for _, util := range []float64{0.1, 0.3, 0.5, 0.7} {
		scaled, err := workload.AtUtilization(soft, util)
		if err != nil {
			return Result{}, err
		}
		row := []string{fmt.Sprintf("%.1f", util)}
		var cells [3][2]string
		for bi, buf := range []int{5, 25} {
			model, err := core.NewModel(core.Config{
				Arrival:     scaled,
				ServiceRate: workload.ServiceRatePerMs,
				BGProb:      0.6,
				BGBuffer:    buf,
				IdleRate:    workload.ServiceRatePerMs,
			})
			if err != nil {
				return Result{}, err
			}
			sol, err := model.Solve()
			if err != nil {
				return Result{}, fmt.Errorf("experiments: ablation buffer %d util %g: %w", buf, util, err)
			}
			cells[0][bi] = fmtG(sol.CompBG)
			cells[1][bi] = fmtG(sol.QLenBG)
			cells[2][bi] = fmtG(sol.QLenFG)
		}
		for _, pair := range cells {
			row = append(row, pair[0], pair[1])
		}
		buffer.Rows = append(buffer.Rows, row)
	}

	service, err := serviceAblation(soft)
	if err != nil {
		return Result{}, err
	}
	return Result{Tables: []Table{policy, buffer, service}}, nil
}

// serviceAblation quantifies the paper's exponential-service approximation:
// the measured disk service CV is below 1, so the paper's exponential law
// (CV = 1) is pessimistic. The PH-service extension (footnote 3) compares
// Erlang-4 (CV = 0.5, near the measured process), exponential, and a bursty
// H2 (CV = 2) at the same 6 ms mean.
func serviceAblation(soft *arrival.MAP) (Table, error) {
	tbl := Table{
		ID:     "ablation-service",
		Title:  "Service-time distribution at a 6 ms mean (Soft.Dev. at 20% load, p = 0.6)",
		Header: []string{"service", "scv", "qlenFG", "respFG-ms", "compBG", "waitPFG"},
		Notes:  "the paper uses exponential service; the measured disk service CV is below 1 (closer to the Erlang row)",
	}
	scaled, err := workload.AtUtilization(soft, 0.2)
	if err != nil {
		return Table{}, err
	}
	for _, variant := range []struct {
		name string
		scv  float64
	}{
		{"Erlang-4", 0.25},
		{"exponential", 1},
		{"H2", 4},
	} {
		svc, err := phtype.FitTwoMoment(workload.MeanServiceTimeMs, variant.scv)
		if err != nil {
			return Table{}, err
		}
		model, err := core.NewModel(core.Config{
			Arrival:  scaled,
			Service:  svc,
			BGProb:   0.6,
			BGBuffer: 5,
			IdleRate: workload.ServiceRatePerMs,
		})
		if err != nil {
			return Table{}, err
		}
		sol, err := model.Solve()
		if err != nil {
			return Table{}, fmt.Errorf("experiments: service ablation %s: %w", variant.name, err)
		}
		tbl.Rows = append(tbl.Rows, []string{
			variant.name, fmtG(variant.scv),
			fmtG(sol.QLenFG), fmtG(sol.RespTimeFG),
			fmtG(sol.CompBG), fmtG(sol.WaitPFG),
		})
	}
	return tbl, nil
}
