package experiments

import (
	"fmt"

	"bgperf/internal/multiclass"
	"bgperf/internal/par"
	"bgperf/internal/workload"
)

// Extension generates table E-1: the paper's announced future-work model of
// two background priority classes (urgent WRITE verification as class 1,
// bulk scrubbing as class 2). It splits a fixed total background probability
// across the classes and reports per-class completion under rising
// foreground load, showing what strict priority buys the urgent class.
//
// The (util, split) grid points are independent solves and fan out over at
// most workers goroutines (0: all cores); rows are collected index-addressed
// so the table matches a serial run exactly.
func Extension(workers int) (Result, error) {
	soft, err := workload.SoftwareDevelopment()
	if err != nil {
		return Result{}, err
	}
	const totalP = 0.6
	splits := []struct {
		name   string
		p1, p2 float64
	}{
		{"25/75", 0.15, 0.45},
		{"50/50", 0.30, 0.30},
		{"75/25", 0.45, 0.15},
	}
	tbl := Table{
		ID:    "extension-priorities",
		Title: "Two background priority classes (Soft.Dev.; total p = 0.6; buffers 5+5; idle wait = service time)",
		Header: []string{
			"util", "split p1/p2",
			"compBG1", "compBG2", "qlenBG1", "qlenBG2", "qlenFG", "waitPFG",
		},
		Notes: "class 1 (e.g. WRITE verification) is picked before class 2 (e.g. scrubbing) at every idle-wait expiry",
	}
	utilGrid := []float64{0.10, 0.20, 0.30}
	tbl.Rows = make([][]string, len(utilGrid)*len(splits))
	err = par.For(workers, len(tbl.Rows), func(i int) error {
		util, sp := utilGrid[i/len(splits)], splits[i%len(splits)]
		scaled, err := workload.AtUtilization(soft, util)
		if err != nil {
			return err
		}
		model, err := multiclass.NewModel(multiclass.Config{
			Arrival:     scaled,
			ServiceRate: workload.ServiceRatePerMs,
			BG1Prob:     sp.p1,
			BG2Prob:     sp.p2,
			BG1Buffer:   5,
			BG2Buffer:   5,
			IdleRate:    workload.ServiceRatePerMs,
		})
		if err != nil {
			return err
		}
		sol, err := model.Solve()
		if err != nil {
			return fmt.Errorf("experiments: extension util %g split %s: %w", util, sp.name, err)
		}
		tbl.Rows[i] = []string{
			fmt.Sprintf("%.2f", util), sp.name,
			fmtG(sol.CompBG1), fmtG(sol.CompBG2),
			fmtG(sol.QLenBG1), fmtG(sol.QLenBG2),
			fmtG(sol.QLenFG), fmtG(sol.WaitPFG),
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Tables: []Table{tbl}}, nil
}
