package experiments

import (
	"fmt"
	"time"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/workload"
)

// Scalability generates table S-1: wall-clock solve time as the state space
// grows with the background buffer size and the arrival-process order. The
// repeating blocks have (2X+1)·A·S states; the dominant costs are the
// logarithmic reduction for G/R (cubic in the block size) and the block-LU
// boundary sweep. Timings are machine-dependent — the table documents
// scaling shape, not absolute speed.
func Scalability() (Result, error) {
	tbl := Table{
		ID:     "scalability",
		Title:  "Solver wall-clock time vs state-space size (Soft.Dev. at 30% load, p = 0.6)",
		Header: []string{"buffer X", "MAP order", "block states", "solve-ms"},
		Notes:  "timings vary by machine; the shape (cubic in block size) is the point",
	}
	soft, err := workload.SoftwareDevelopment()
	if err != nil {
		return Result{}, err
	}
	scaled, err := workload.AtUtilization(soft, 0.3)
	if err != nil {
		return Result{}, err
	}
	// An order-4 variant: the Soft.Dev. MMPP superposed with itself.
	order4, err := scaled.Superpose(scaled)
	if err != nil {
		return Result{}, err
	}
	order4, err = order4.WithRate(scaled.Rate()) // keep the load at 30%
	if err != nil {
		return Result{}, err
	}
	for _, c := range []struct {
		buf int
		m   *arrival.MAP
	}{
		{5, scaled}, {10, scaled}, {25, scaled}, {50, scaled},
		{5, order4}, {25, order4},
	} {
		model, err := core.NewModel(core.Config{
			Arrival:     c.m,
			ServiceRate: workload.ServiceRatePerMs,
			BGProb:      0.6,
			BGBuffer:    c.buf,
			IdleRate:    workload.ServiceRatePerMs,
		})
		if err != nil {
			return Result{}, err
		}
		start := time.Now()
		if _, err := model.Solve(); err != nil {
			return Result{}, fmt.Errorf("experiments: scalability X=%d: %w", c.buf, err)
		}
		elapsed := time.Since(start)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", c.buf),
			fmt.Sprintf("%d", c.m.Order()),
			fmt.Sprintf("%d", (2*c.buf+1)*c.m.Order()),
			fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000),
		})
	}
	return Result{Tables: []Table{tbl}}, nil
}
