package experiments

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/figures.golden from the current solver output")

// goldenTol is the allowed numeric drift per golden coordinate. The figure
// grids are analytic-only (no simulation), so any drift beyond float
// round-off means the solver's numbers moved.
const goldenTol = 1e-9

const goldenPath = "testdata/figures.golden"

// goldenFigures regenerates the pinned paper figures: the headline FG
// queue-length and BG completion grids (Fig. 5 and 7) and their
// arrival-dependence counterparts (Fig. 10 and 12). All four are analytic
// sweeps — deterministic for every worker count.
func goldenFigures(t *testing.T) []Figure {
	t.Helper()
	s := NewSuite()
	var figs []Figure
	for _, gen := range []struct {
		name string
		run  func() (Result, error)
	}{
		{"Figure5", s.Figure5},
		{"Figure7", s.Figure7},
		{"Figure10", func() (Result, error) { return Figure10(0) }},
		{"Figure12", func() (Result, error) { return Figure12(0) }},
	} {
		res, err := gen.run()
		if err != nil {
			t.Fatalf("%s: %v", gen.name, err)
		}
		figs = append(figs, res.Figures...)
	}
	return figs
}

// writeGolden serializes figures as one tab-separated line per point, with
// full float64 round-trip precision.
func writeGolden(path string, figs []Figure) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "# figure-id\tseries\tpoint\tx\ty  (regenerate with: go test ./internal/experiments -run TestGoldenFigures -update)")
	for _, fig := range figs {
		for _, s := range fig.Series {
			for i, p := range s.Points {
				fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\n", fig.ID, s.Label, i,
					strconv.FormatFloat(p.X, 'g', -1, 64),
					strconv.FormatFloat(p.Y, 'g', -1, 64))
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type goldenPoint struct {
	x, y float64
}

func readGolden(path string) (map[string]goldenPoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	points := make(map[string]goldenPoint)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 5 {
			return nil, fmt.Errorf("malformed golden line %q", line)
		}
		x, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, err
		}
		y, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, err
		}
		points[fields[0]+"|"+fields[1]+"|"+fields[2]] = goldenPoint{x, y}
	}
	return points, sc.Err()
}

// TestGoldenFigures pins the numeric output of the paper's headline figure
// grids (Fig. 5, 7, 10, 12) against a checked-in fixture: any drift beyond
// 1e-9 fails, so refactors of the solver, kernels, or sweep engine cannot
// silently change the reproduced results. After an intentional model change,
// regenerate with -update and review the diff.
func TestGoldenFigures(t *testing.T) {
	figs := goldenFigures(t)
	if *updateGolden {
		if err := writeGolden(goldenPath, figs); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := readGolden(goldenPath)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with -update): %v", err)
	}
	seen := make(map[string]bool, len(want))
	for _, fig := range figs {
		for _, s := range fig.Series {
			for i, p := range s.Points {
				key := fig.ID + "|" + s.Label + "|" + strconv.Itoa(i)
				g, ok := want[key]
				if !ok {
					t.Errorf("point %s not in golden fixture (new series? regenerate with -update)", key)
					continue
				}
				seen[key] = true
				if d := math.Abs(p.X - g.x); d > goldenTol {
					t.Errorf("%s: x drifted by %.3g (got %.17g, golden %.17g)", key, d, p.X, g.x)
				}
				if d := math.Abs(p.Y - g.y); d > goldenTol*math.Max(1, math.Abs(g.y)) {
					t.Errorf("%s: y drifted by %.3g (got %.17g, golden %.17g)", key, d, p.Y, g.y)
				}
			}
		}
	}
	for key := range want {
		if !seen[key] {
			t.Errorf("golden point %s no longer generated", key)
		}
	}
}
