package experiments

import (
	"fmt"

	"bgperf/internal/arrival"
	"bgperf/internal/core"
	"bgperf/internal/par"
	"bgperf/internal/refqueue"
	"bgperf/internal/workload"
)

// Baseline generates table B-1: the exact chain versus the classical
// M/G/1-with-multiple-vacations decomposition — the modelling style of the
// paper's related work (its reference [2] and the vacation literature
// [20, 15, 22, 23]). The mapping treats every pause the server takes at an
// empty foreground queue as an i.i.d. vacation V = idle wait + one
// background service (E[V] = 1/α + 1/µ), which silently assumes background
// work is always available. The table quantifies that assumption: the
// approximation tracks the exact model only when the background buffer is
// rarely empty (high p, moderate load) and overstates foreground waiting
// badly elsewhere — the gap the paper's explicit chain closes. Poisson
// arrivals throughout; for correlated arrivals the decomposition has no
// defensible form at all, which is the paper's larger point.
//
// The (util, p) grid points are independent solves and fan out over at most
// workers goroutines (0: all cores); rows are collected index-addressed so
// the table matches a serial run exactly.
func Baseline(workers int) (Result, error) {
	const (
		mu    = workload.ServiceRatePerMs
		alpha = workload.ServiceRatePerMs // idle wait = one service time
	)
	tbl := Table{
		ID:    "baseline-vacation",
		Title: "Exact chain vs M/G/1 multiple-vacation decomposition (Poisson arrivals, buffer 5, idle wait = service time)",
		Header: []string{
			"util", "p",
			"fg-wait(exact)", "fg-wait(vacation)", "overstatement",
			"p(bg buffer empty)",
		},
		Notes: "vacation V = idle wait + one BG service; the decomposition assumes BG work is always pending",
	}
	var (
		svcMean = 1 / mu
		svcM2   = 2 / (mu * mu)
		vacMean = 1/alpha + 1/mu
		// V is a sum of independent exponentials:
		// E[V²] = Var + mean² = (1/α² + 1/µ²) + (1/α + 1/µ)².
		vacM2 = (1/(alpha*alpha) + 1/(mu*mu)) + vacMean*vacMean
	)
	utilGrid := []float64{0.2, 0.5, 0.8}
	pGrid := []float64{0.1, 0.5, 0.9}
	tbl.Rows = make([][]string, len(utilGrid)*len(pGrid))
	err := par.For(workers, len(tbl.Rows), func(i int) error {
		util, p := utilGrid[i/len(pGrid)], pGrid[i%len(pGrid)]
		ap, err := arrival.Poisson(util * mu)
		if err != nil {
			return err
		}
		model, err := core.NewModel(core.Config{
			Arrival:     ap,
			ServiceRate: mu,
			BGProb:      p,
			BGBuffer:    5,
			IdleRate:    alpha,
		})
		if err != nil {
			return err
		}
		sol, err := model.Solve()
		if err != nil {
			return fmt.Errorf("experiments: baseline util %g p %g: %w", util, p, err)
		}
		exactWait := sol.RespTimeFG - svcMean
		vacWait, err := refqueue.MG1VacationWait(util*mu, svcMean, svcM2, vacMean, vacM2)
		if err != nil {
			return err
		}
		emptyBuf := sol.BGOccupancyDist()[0]
		tbl.Rows[i] = []string{
			fmt.Sprintf("%.1f", util), fmt.Sprintf("%.1f", p),
			fmtG(exactWait), fmtG(vacWait),
			fmt.Sprintf("%.0f%%", 100*(vacWait-exactWait)/exactWait),
			fmtG(emptyBuf),
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Tables: []Table{tbl}}, nil
}
