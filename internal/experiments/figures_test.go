package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// seriesByLabel finds a series in a figure.
func seriesByLabel(t *testing.T, f Figure, label string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("figure %s has no series %q (have %v)", f.ID, label, labels(f.Series))
	return Series{}
}

// figureByID finds a figure in a result.
func figureByID(t *testing.T, r Result, id string) Figure {
	t.Helper()
	for _, f := range r.Figures {
		if f.ID == id {
			return f
		}
	}
	t.Fatalf("result has no figure %q", id)
	return Figure{}
}

// yAt returns the y value at the given x (exact match).
func yAt(t *testing.T, s Series, x float64) float64 {
	t.Helper()
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	t.Fatalf("series %q has no point at x=%v", s.Label, x)
	return 0
}

func TestFigure1Shapes(t *testing.T) {
	r, err := Figure1(3000000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Figures) != 1 || len(r.Tables) != 1 {
		t.Fatalf("unexpected artifact counts: %d figures, %d tables", len(r.Figures), len(r.Tables))
	}
	fig := r.Figures[0]
	if len(fig.Series) != 3 {
		t.Fatalf("got %d ACF series, want 3", len(fig.Series))
	}
	email := seriesByLabel(t, fig, "E-mail")
	soft := seriesByLabel(t, fig, "Software Development")
	// Dependence persists for E-mail, decays for Soft.Dev. (paper Fig. 1).
	if email.Points[79].Y < soft.Points[79].Y {
		t.Errorf("ACF(80): E-mail %v < Soft.Dev %v", email.Points[79].Y, soft.Points[79].Y)
	}
	if email.Points[79].Y < 0.2 {
		t.Errorf("E-mail sample ACF(80) = %v, want persistently high", email.Points[79].Y)
	}
	// The table reports the documented utilizations.
	tbl := r.Tables[0]
	wantUtil := map[string]float64{"E-mail": 0.08, "Software Development": 0.068, "User Accounts": 0.005}
	for _, row := range tbl.Rows {
		u, err := strconv.ParseFloat(strings.TrimSuffix(row[5], "%"), 64)
		if err != nil {
			t.Fatalf("bad util cell %q", row[5])
		}
		if want := wantUtil[row[0]]; math.Abs(u/100-want) > 0.025 {
			t.Errorf("%s utilization %v%%, want ~%v%%", row[0], u, 100*want)
		}
	}
}

func TestFigure2Shapes(t *testing.T) {
	r, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	fig := r.Figures[0]
	email := seriesByLabel(t, fig, "E-mail")
	soft := seriesByLabel(t, fig, "Software Development")
	for i := range email.Points {
		if email.Points[i].Y < 0 || email.Points[i].Y > 0.5 {
			t.Fatalf("analytic ACF out of MMPP2 range at lag %d: %v", i+1, email.Points[i].Y)
		}
	}
	if email.Points[99].Y <= soft.Points[99].Y {
		t.Errorf("ACF(100): E-mail %v must exceed Soft.Dev %v", email.Points[99].Y, soft.Points[99].Y)
	}
	if len(r.Tables[0].Rows) != 3 {
		t.Errorf("parameter table has %d rows, want 3", len(r.Tables[0].Rows))
	}
}

func TestFigure5Shapes(t *testing.T) {
	s := NewSuite()
	r, err := s.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	a := figureByID(t, r, "fig5a")
	b := figureByID(t, r, "fig5b")
	for _, f := range []Figure{a, b} {
		if len(f.Series) != 5 {
			t.Fatalf("%s has %d series, want 5 (p values)", f.ID, len(f.Series))
		}
		// Queue length grows monotonically with load for every p.
		for _, sr := range f.Series {
			for i := 1; i < len(sr.Points); i++ {
				if sr.Points[i].Y < sr.Points[i-1].Y {
					t.Errorf("%s %s: queue length not monotone at %v", f.ID, sr.Label, sr.Points[i].X)
				}
			}
		}
	}
	// Saturation hits the high-ACF workload at far lower utilization: find
	// the first utilization where the p=0 queue exceeds 10.
	knee := func(f Figure) float64 {
		sr := seriesByLabel(t, f, "p=0.0")
		for _, pt := range sr.Points {
			if pt.Y > 10 {
				return pt.X
			}
		}
		return 1
	}
	if ka, kb := knee(a), knee(b); ka >= kb {
		t.Errorf("saturation knees: E-mail %v must come before Soft.Dev %v", ka, kb)
	}
	// Background load barely moves the curves (paper: "nearly insensitive").
	base := seriesByLabel(t, a, "p=0.0")
	heavy := seriesByLabel(t, a, "p=0.9")
	atHigh := len(base.Points) - 1
	if rel := (heavy.Points[atHigh].Y - base.Points[atHigh].Y) / base.Points[atHigh].Y; rel > 0.05 {
		t.Errorf("p sensitivity at saturation = %v, want < 5%%", rel)
	}
}

func TestFigure6Shapes(t *testing.T) {
	s := NewSuite()
	r, err := s.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range r.Figures {
		for _, sr := range f.Series {
			if sr.Label == "p=0.0" {
				for _, pt := range sr.Points {
					if pt.Y != 0 {
						t.Errorf("%s: delayed fraction %v without BG work", f.ID, pt.Y)
					}
				}
				continue
			}
			var peak float64
			for _, pt := range sr.Points {
				if pt.Y < 0 || pt.Y > 0.5 {
					t.Errorf("%s %s: delayed fraction %v out of range", f.ID, sr.Label, pt.Y)
				}
				if pt.Y > peak {
					peak = pt.Y
				}
			}
			// Paper: beyond a point the affected portion drops dramatically.
			last := sr.Points[len(sr.Points)-1].Y
			if peak > 0.01 && last > 0.8*peak {
				t.Errorf("%s %s: no high-load drop (peak %v, last %v)", f.ID, sr.Label, peak, last)
			}
		}
	}
}

func TestFigure7Shapes(t *testing.T) {
	s := NewSuite()
	r, err := s.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	a := figureByID(t, r, "fig7a")
	b := figureByID(t, r, "fig7b")
	for _, f := range []Figure{a, b} {
		for _, sr := range f.Series {
			for i, pt := range sr.Points {
				if pt.Y < 0 || pt.Y > 1+1e-9 {
					t.Errorf("%s %s: completion rate %v outside [0,1]", f.ID, sr.Label, pt.Y)
				}
				if i > 0 && pt.Y > sr.Points[i-1].Y+1e-9 {
					t.Errorf("%s %s: completion rate rises with load at %v", f.ID, sr.Label, pt.X)
				}
			}
			if last := sr.Points[len(sr.Points)-1].Y; last > 0.05 {
				t.Errorf("%s %s: completion rate %v at saturation, want ~0", f.ID, sr.Label, last)
			}
		}
	}
	// Collapse happens sooner for the high-ACF workload: at 16% load E-mail
	// has already collapsed while Soft.Dev at 15% still completes most work.
	if ya, yb := yAt(t, seriesByLabel(t, a, "p=0.3"), 0.16), yAt(t, seriesByLabel(t, b, "p=0.3"), 0.15); ya > 0.1 || yb < 0.5 {
		t.Errorf("collapse ordering: E-mail@0.16 = %v (want < 0.1), Soft.Dev@0.15 = %v (want > 0.5)", ya, yb)
	}
}

func TestFigure8Shapes(t *testing.T) {
	s := NewSuite()
	r, err := s.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range r.Figures {
		for _, sr := range f.Series {
			for _, pt := range sr.Points {
				if pt.Y < 0 || pt.Y > 5 {
					t.Errorf("%s %s: BG queue %v outside [0, buffer]", f.ID, sr.Label, pt.Y)
				}
			}
		}
	}
	// Paper: the LRD workload holds a smaller BG queue than the SRD one at
	// comparable loads, because more of its BG jobs are dropped.
	email := yAt(t, seriesByLabel(t, figureByID(t, r, "fig8a"), "p=0.9"), 0.16)
	soft := yAt(t, seriesByLabel(t, figureByID(t, r, "fig8b"), "p=0.9"), 0.15)
	if email >= soft {
		t.Errorf("BG queue ordering: E-mail %v must fall below Soft.Dev %v", email, soft)
	}
}

func TestFigure9And10IdleWaitTradeoff(t *testing.T) {
	r9, err := Figure9(0)
	if err != nil {
		t.Fatal(err)
	}
	r10, err := Figure10(0)
	if err != nil {
		t.Fatal(err)
	}
	// Longer idle wait: FG queue length falls, BG completion falls (paper
	// Sec. 5.3 trade-off), monotonically in the wait multiple.
	for _, f := range r9.Figures {
		for _, sr := range f.Series {
			for i := 1; i < len(sr.Points); i++ {
				if sr.Points[i].Y > sr.Points[i-1].Y+1e-12 {
					t.Errorf("%s %s: FG queue rises with idle wait at %v", f.ID, sr.Label, sr.Points[i].X)
				}
			}
		}
	}
	for _, f := range r10.Figures {
		for _, sr := range f.Series {
			for i := 1; i < len(sr.Points); i++ {
				if sr.Points[i].Y > sr.Points[i-1].Y+1e-12 {
					t.Errorf("%s %s: BG completion rises with idle wait at %v", f.ID, sr.Label, sr.Points[i].X)
				}
			}
		}
	}
	// The paper's argument for a small idle wait: going from wait 0.5× to 2×
	// costs far more BG completion (relatively) than it saves FG queueing.
	fgSeries := seriesByLabel(t, figureByID(t, r9, "fig9a"), "p=0.6")
	bgSeries := seriesByLabel(t, figureByID(t, r10, "fig10a"), "p=0.6")
	fgGain := (yAt(t, fgSeries, 0.5) - yAt(t, fgSeries, 2)) / yAt(t, fgSeries, 0.5)
	bgLoss := (yAt(t, bgSeries, 0.5) - yAt(t, bgSeries, 2)) / yAt(t, bgSeries, 0.5)
	if bgLoss < fgGain {
		t.Errorf("idle-wait trade-off inverted: FG gain %v vs BG loss %v", fgGain, bgLoss)
	}
}

func TestFigure11Crossover(t *testing.T) {
	r, err := Figure11(0)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Sec. 5.4: the queue length reached under correlated arrivals at
	// ~20% load takes ~95% load under Poisson arrivals.
	corr := figureByID(t, r, "fig11-p3-corr")
	indep := figureByID(t, r, "fig11-p3-indep")
	high := seriesByLabel(t, corr, "High ACF")
	expo := seriesByLabel(t, indep, "Expo")
	if hq, eq := yAt(t, high, 0.20), yAt(t, expo, 0.90); hq < eq {
		t.Errorf("High ACF@0.20 = %v must exceed Expo@0.90 = %v", hq, eq)
	}
	// Orders of magnitude at matched utilization.
	if hq, eq := yAt(t, high, 0.20), yAt(t, expo, 0.20); hq < 100*eq {
		t.Errorf("High ACF@0.20 = %v not orders beyond Expo@0.20 = %v", hq, eq)
	}
	// Low ACF sits between High ACF and the renewal processes.
	low := seriesByLabel(t, corr, "Low ACF")
	if l, h := yAt(t, low, 0.20), yAt(t, high, 0.20); l >= h {
		t.Errorf("Low ACF@0.20 = %v not below High ACF %v", l, h)
	}
	// IPP (same CV, no correlation) stays close to the variability-driven
	// envelope — far below the correlated process at matched load.
	ipp := seriesByLabel(t, indep, "IPP")
	if i, h := yAt(t, ipp, 0.20), yAt(t, high, 0.20); i >= h/10 {
		t.Errorf("IPP@0.20 = %v not far below High ACF %v", i, h)
	}
}

func TestFigure12DependenceHurtsCompletion(t *testing.T) {
	r, err := Figure12(0)
	if err != nil {
		t.Fatal(err)
	}
	corr := figureByID(t, r, "fig12-p9-corr")
	indep := figureByID(t, r, "fig12-p9-indep")
	high := yAt(t, seriesByLabel(t, corr, "High ACF"), 0.20)
	expo := yAt(t, seriesByLabel(t, indep, "Expo"), 0.20)
	if high >= expo {
		t.Errorf("CompBG@0.20: High ACF %v must fall below Expo %v", high, expo)
	}
	if expo-high < 0.3 {
		t.Errorf("CompBG gap %v at 20%% load, want the paper's dramatic difference", expo-high)
	}
}

func TestFigure13PeakOrdering(t *testing.T) {
	r, err := Figure13(0)
	if err != nil {
		t.Fatal(err)
	}
	peakX := func(s Series) float64 {
		best, bestX := -1.0, 0.0
		for _, pt := range s.Points {
			if pt.Y > best {
				best, bestX = pt.Y, pt.X
			}
		}
		return bestX
	}
	corr := figureByID(t, r, "fig13-p9-corr")
	indep := figureByID(t, r, "fig13-p9-indep")
	if pc, pi := peakX(seriesByLabel(t, corr, "High ACF")), peakX(seriesByLabel(t, indep, "Expo")); pc >= pi {
		t.Errorf("worst-impact region reached at %v (High ACF) vs %v (Expo); paper says sooner under correlation", pc, pi)
	}
}

func TestValidationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	r, err := Validation(ValidationOptions{MeasureTime: 5e6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.Tables[0]
	if len(tbl.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(tbl.Rows))
	}
	// The Poisson rows must agree tightly even with a short window.
	for _, row := range tbl.Rows {
		if row[0] != "Expo" {
			continue
		}
		ana, _ := strconv.ParseFloat(row[3], 64)
		simv, _ := strconv.ParseFloat(row[4], 64)
		if math.Abs(ana-simv) > 0.15*ana {
			t.Errorf("Expo row disagrees: analytic %v vs sim %v", ana, simv)
		}
	}
}

func TestAblationTables(t *testing.T) {
	r, err := Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 3 {
		t.Fatalf("got %d tables, want 3", len(r.Tables))
	}
	policy := r.Tables[0]
	for _, row := range policy.Rows {
		compJob, _ := strconv.ParseFloat(row[3], 64)
		compPeriod, _ := strconv.ParseFloat(row[4], 64)
		if compPeriod < compJob-1e-9 {
			t.Errorf("p=%s: per-period completion %v below per-job %v", row[0], compPeriod, compJob)
		}
	}
	buffer := r.Tables[1]
	for _, row := range buffer.Rows {
		comp5, _ := strconv.ParseFloat(row[1], 64)
		comp25, _ := strconv.ParseFloat(row[2], 64)
		if comp25 < comp5-1e-9 {
			t.Errorf("util %s: X=25 completion %v below X=5 %v", row[0], comp25, comp5)
		}
	}
	// Service ablation: FG queue length must grow with service variability.
	service := r.Tables[2]
	if len(service.Rows) != 3 {
		t.Fatalf("service ablation has %d rows, want 3", len(service.Rows))
	}
	prev := -1.0
	for _, row := range service.Rows {
		qlen, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad qlen cell %q", row[2])
		}
		if qlen <= prev {
			t.Errorf("service scv %s: qlenFG %v not above previous %v", row[1], qlen, prev)
		}
		prev = qlen
	}
}

func TestExtensionTable(t *testing.T) {
	r, err := Extension(0)
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.Tables[0]
	if len(tbl.Rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		comp1, _ := strconv.ParseFloat(row[2], 64)
		comp2, _ := strconv.ParseFloat(row[3], 64)
		if comp1 < 0 || comp1 > 1 || comp2 < 0 || comp2 > 1 {
			t.Errorf("completion rates out of range: %v %v", comp1, comp2)
		}
		// At the balanced split, strict priority must favor class 1.
		if row[1] == "50/50" && comp1 < comp2 {
			t.Errorf("util %s: priority inverted (comp1 %v < comp2 %v)", row[0], comp1, comp2)
		}
	}
}

func TestBaselineTable(t *testing.T) {
	r, err := Baseline(0)
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.Tables[0]
	if len(tbl.Rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		exact, err1 := strconv.ParseFloat(row[2], 64)
		vac, err2 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad cells in row %v", row)
		}
		// The decomposition assumes BG work is always pending, so it can
		// only overstate the exact foreground wait.
		if vac < exact-1e-9 {
			t.Errorf("util %s p %s: vacation %v below exact %v", row[0], row[1], vac, exact)
		}
	}
	// The approximation must tighten as p grows (the buffer empties less):
	// compare overstatement at p=0.1 vs p=0.9 for util 0.5.
	gap := func(rowIdx int) float64 {
		e, _ := strconv.ParseFloat(tbl.Rows[rowIdx][2], 64)
		v, _ := strconv.ParseFloat(tbl.Rows[rowIdx][3], 64)
		return (v - e) / e
	}
	if gap(3) <= gap(5) { // rows: util .5 with p .1 at idx 3, p .9 at idx 5
		t.Errorf("vacation approximation should tighten with p: gap(p=.1)=%v gap(p=.9)=%v", gap(3), gap(5))
	}
}

func TestScalabilityTable(t *testing.T) {
	r, err := Scalability()
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.Tables[0]
	if len(tbl.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		ms, err := strconv.ParseFloat(row[3], 64)
		if err != nil || ms <= 0 {
			t.Errorf("bad timing cell %q", row[3])
		}
	}
}

func TestRegistry(t *testing.T) {
	gens := All(Options{})
	if len(gens) != 16 {
		t.Fatalf("registry has %d generators, want 16", len(gens))
	}
	seen := make(map[string]bool, len(gens))
	for _, g := range gens {
		if g.Name == "" || g.Paper == "" || g.Run == nil {
			t.Errorf("incomplete generator %+v", g)
		}
		if seen[g.Name] {
			t.Errorf("duplicate generator %q", g.Name)
		}
		seen[g.Name] = true
	}
	if _, ok := Lookup("5", Options{}); !ok {
		t.Error("Lookup(5) failed")
	}
	if _, ok := Lookup("nope", Options{}); ok {
		t.Error("Lookup(nope) succeeded")
	}
}
