// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 3 and 5) from the analytic model, plus two additions: an
// analytic-versus-simulation validation table and an ablation of the design
// choices the chain leaves open (idle-wait policy, BG buffer size).
//
// Each generator returns plain data (Figure / Table values); rendering to
// aligned text or CSV is separate so the cmd tools, benchmarks, and tests
// share one code path.
//
// Generators whose grids are embarrassingly parallel (the load sweeps behind
// Fig. 5–13 and the baseline/extension/validation tables) fan their
// independent solves out over a bounded worker pool (Options.Workers;
// 0 = all cores). Results are always collected index-addressed, so every
// artifact is bit-identical across worker counts, and a Suite may be shared
// between goroutines.
package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced paper figure: one or more series over a shared
// x-axis.
type Figure struct {
	// ID names the artifact, e.g. "fig5a".
	ID string
	// Title describes the plot, including the workload.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds the curves (one per parameter value or process).
	Series []Series
	// Notes records reproduction caveats (substitutions, scales).
	Notes string
}

// Table is a reproduced paper table (or one of our validation tables).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Result bundles the artifacts of one experiment.
type Result struct {
	Figures []Figure
	Tables  []Table
}

// merge appends other's artifacts to r.
func (r *Result) merge(other Result) {
	r.Figures = append(r.Figures, other.Figures...)
	r.Tables = append(r.Tables, other.Tables...)
}

// fmtG renders a float compactly for text output.
func fmtG(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// WriteText renders the figure as an aligned text table: the x column
// followed by one column per series.
func (f Figure) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	if f.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", f.Notes)
	}
	header := append([]string{f.XLabel}, labels(f.Series)...)
	rows := [][]string{}
	for i := range longestSeries(f.Series) {
		row := make([]string, 0, len(header))
		x := ""
		for _, s := range f.Series {
			if i < len(s.Points) {
				x = fmtG(s.Points[i].X)
				break
			}
		}
		row = append(row, x)
		for _, s := range f.Series {
			if i < len(s.Points) {
				row = append(row, fmtG(s.Points[i].Y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	writeAligned(&b, header, rows)
	fmt.Fprintf(&b, "(y axis: %s)\n\n", f.YLabel)
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the figure as CSV with an x column per series pair —
// series may have different x grids, so columns come in (x, y) pairs.
func (f Figure) WriteCSV(w io.Writer) error {
	var b strings.Builder
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%s:x,%s:y,", csvEscape(s.Label), csvEscape(s.Label))
	}
	b.WriteString("\n")
	for i := range longestSeries(f.Series) {
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "%s,%s,", fmtG(s.Points[i].X), fmtG(s.Points[i].Y))
			} else {
				b.WriteString(",,")
			}
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteText renders the table with aligned columns.
func (t Table) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	writeAligned(&b, t.Header, t.Rows)
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV.
func (t Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteText renders every artifact of the result.
func (r Result) WriteText(w io.Writer) error {
	for _, t := range r.Tables {
		if err := t.WriteText(w); err != nil {
			return err
		}
	}
	for _, f := range r.Figures {
		if err := f.WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

func labels(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Label
	}
	return out
}

func longestSeries(series []Series) []struct{} {
	max := 0
	for _, s := range series {
		if len(s.Points) > max {
			max = len(s.Points)
		}
	}
	return make([]struct{}, max)
}

func writeAligned(b *strings.Builder, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(header)
	for _, row := range rows {
		writeRow(row)
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
}
