package experiments

import (
	"strings"
	"testing"
)

func sampleFigure() Figure {
	return Figure{
		ID:     "figX",
		Title:  "Sample",
		XLabel: "x",
		YLabel: "y",
		Notes:  "just a test",
		Series: []Series{
			{Label: "a", Points: []Point{{X: 1, Y: 2}, {X: 2, Y: 4}}},
			{Label: "b, quoted", Points: []Point{{X: 1, Y: 3}}},
		},
	}
}

func TestFigureWriteText(t *testing.T) {
	var b strings.Builder
	if err := sampleFigure().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"figX", "Sample", "just a test", "x", "a", "b, quoted", "(y axis: y)"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Ragged series render "-" placeholders.
	if !strings.Contains(out, "-") {
		t.Error("missing placeholder for short series")
	}
}

func TestFigureWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleFigure().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 { // header + 2 data rows
		t.Fatalf("got %d CSV lines, want 3:\n%s", len(lines), b.String())
	}
	if !strings.Contains(lines[0], `"b, quoted":x`) {
		t.Errorf("label with comma not quoted: %s", lines[0])
	}
}

func TestTableWrite(t *testing.T) {
	tbl := Table{
		ID:     "tblX",
		Title:  "Tbl",
		Header: []string{"k", "v"},
		Rows:   [][]string{{"one", "1"}, {"two", "2"}},
		Notes:  "note here",
	}
	var txt strings.Builder
	if err := tbl.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tblX", "note here", "one", "2"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("table text missing %q", want)
		}
	}
	var csvOut strings.Builder
	if err := tbl.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csvOut.String(), "\n"); got != 3 {
		t.Errorf("CSV has %d lines, want 3", got)
	}
}

func TestResultWriteText(t *testing.T) {
	r := Result{
		Figures: []Figure{sampleFigure()},
		Tables:  []Table{{ID: "t", Title: "T", Header: []string{"h"}, Rows: [][]string{{"v"}}}},
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "== t: T ==") {
		t.Errorf("result text incomplete:\n%s", out)
	}
}

func TestFigureWriteGnuplot(t *testing.T) {
	var b strings.Builder
	if err := sampleFigure().WriteGnuplot(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"set title \"Sample\"",
		"set xlabel \"x\"",
		"$data0 << EOD",
		"$data1 << EOD",
		"with linespoints title \"a\"",
		`with linespoints title "b, quoted"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gnuplot output missing %q:\n%s", want, out)
		}
	}
	// One data row per point.
	if got := strings.Count(out, "\nEOD"); got != 2 {
		t.Errorf("got %d data blocks, want 2", got)
	}
}
