package experiments

import (
	"fmt"
	"io"
	"strings"
)

// WriteGnuplot renders the figure as a self-contained gnuplot script with
// inline data blocks, so every reproduced figure can be plotted next to the
// paper's:
//
//	go run ./cmd/experiments -figure 7 -format gnuplot -outdir plots/
//	gnuplot -p plots/fig7a.gp
//
// Queue-length figures span orders of magnitude; callers can flip the
// logscale line the script emits commented out.
func (f Figure) WriteGnuplot(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", f.ID, f.Title)
	if f.Notes != "" {
		fmt.Fprintf(&b, "# note: %s\n", f.Notes)
	}
	fmt.Fprintf(&b, "set title %q\n", f.Title)
	fmt.Fprintf(&b, "set xlabel %q\n", f.XLabel)
	fmt.Fprintf(&b, "set ylabel %q\n", f.YLabel)
	b.WriteString("set key top left\nset grid\n# set logscale y\n")
	for i, s := range f.Series {
		fmt.Fprintf(&b, "$data%d << EOD\n", i)
		for _, pt := range s.Points {
			fmt.Fprintf(&b, "%s %s\n", fmtG(pt.X), fmtG(pt.Y))
		}
		b.WriteString("EOD\n")
	}
	b.WriteString("plot ")
	for i, s := range f.Series {
		if i > 0 {
			b.WriteString(", \\\n     ")
		}
		fmt.Fprintf(&b, "$data%d using 1:2 with linespoints title %q", i, s.Label)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}
