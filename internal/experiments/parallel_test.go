package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// renderAll runs a generator and renders every artifact of its result to text.
func renderAll(t *testing.T, run func() (Result, error)) string {
	t.Helper()
	res, err := run()
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := res.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// suiteReport renders figures 5–8 of one suite into a single report string.
func suiteReport(t *testing.T, s *Suite) string {
	t.Helper()
	var b strings.Builder
	for _, run := range []func() (Result, error){s.Figure5, s.Figure6, s.Figure7, s.Figure8} {
		b.WriteString(renderAll(t, run))
	}
	return b.String()
}

// TestSuiteParallelDeterminism pins the tentpole guarantee: a parallel run
// of the sweep engine produces byte-identical report output to a serial run.
func TestSuiteParallelDeterminism(t *testing.T) {
	serial := suiteReport(t, NewSuiteWorkers(1))
	parallel := suiteReport(t, NewSuiteWorkers(8))
	if serial != parallel {
		t.Fatalf("parallel suite output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "fig5a") || !strings.Contains(serial, "fig8b") {
		t.Fatalf("report looks incomplete:\n%s", serial)
	}
}

// TestGridGeneratorsParallelDeterminism covers the non-Suite parallel
// generators: idle sweeps, dependence figures, baseline and extension
// tables must be byte-identical across worker counts.
func TestGridGeneratorsParallelDeterminism(t *testing.T) {
	for _, g := range []struct {
		name string
		run  func(workers int) (Result, error)
	}{
		{"figure9", Figure9},
		{"figure11", Figure11},
		{"baseline", Baseline},
		{"extension", Extension},
	} {
		g := g
		t.Run(g.name, func(t *testing.T) {
			serial := renderAll(t, func() (Result, error) { return g.run(1) })
			parallel := renderAll(t, func() (Result, error) { return g.run(8) })
			if serial != parallel {
				t.Fatalf("%s: parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
					g.name, serial, parallel)
			}
		})
	}
}

// TestValidationParallelDeterminism checks the simulation cross-check table
// is identical across worker counts (per-case derived seeds).
func TestValidationParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed; skipped in -short")
	}
	opts := ValidationOptions{MeasureTime: 2e6, Seed: 3}
	opts.Workers = 1
	serial := renderAll(t, func() (Result, error) { return Validation(opts) })
	opts.Workers = 8
	parallel := renderAll(t, func() (Result, error) { return Validation(opts) })
	if serial != parallel {
		t.Fatalf("validation table differs across worker counts:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestSuiteConcurrentUse hammers one shared Suite from many goroutines —
// first use races on the sync.Once-guarded sweep cache — and checks every
// goroutine sees the same artifacts. Run under -race this is the concurrency
// regression test for the old "not safe for concurrent use" Suite.
func TestSuiteConcurrentUse(t *testing.T) {
	s := NewSuiteWorkers(4)
	const goroutines = 8
	reports := make([]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			var b strings.Builder
			for _, run := range []func() (Result, error){s.Figure5, s.Figure6, s.Figure7, s.Figure8} {
				res, err := run()
				if err != nil {
					errs[i] = err
					return
				}
				if err := res.WriteText(&b); err != nil {
					errs[i] = err
					return
				}
			}
			reports[i] = b.String()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	for i := 1; i < goroutines; i++ {
		if reports[i] != reports[0] {
			t.Fatalf("goroutine %d saw different artifacts than goroutine 0", i)
		}
	}
	// And the shared suite still matches an independent serial suite.
	if want := suiteReport(t, NewSuiteWorkers(1)); reports[0] != want {
		t.Fatal("concurrent suite output differs from a serial suite")
	}
}
