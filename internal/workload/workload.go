// Package workload catalogs the arrival-process parameterizations of the
// paper's Sec. 3.1: 2-state MMPPs standing in for the three measured disk
// traces (E-mail, Software Development, User Accounts servers) plus the
// independent-arrival counterparts of Sec. 5.4 (IPP and Poisson) and a
// low-dependence MMPP variant.
//
// Provenance. The Software Development and User Accounts rows of the paper's
// Fig. 2 parameter table are legible and reproduced digit for digit. The
// E-mail row is corrupt in the available scan, so its MMPP was re-fitted by
// moment matching (arrival.FitMMPP2) to the documented workload shape: 8%
// utilization at the 6 ms mean service time, high variability, and a slowly
// decaying ("High ACF", LRD-like) autocorrelation function. All rates are per
// millisecond.
package workload

import (
	"fmt"

	"bgperf/internal/arrival"
)

// MeanServiceTimeMs is the paper's mean disk service time (Sec. 3.1).
const MeanServiceTimeMs = 6.0

// ServiceRatePerMs is µ, the exponential service rate implied by the 6 ms
// mean service time.
const ServiceRatePerMs = 1.0 / MeanServiceTimeMs

// Paper Fig. 2 MMPP parameters (per-millisecond rates). The E-mail row is a
// re-fit; see the package comment.
const (
	emailV1, emailV2, emailL1, emailL2 = 1.9728237e-07, 3.0317823e-08, 9.9099097e-02, 1.5308224e-04
	softV1, softV2, softL1, softL2     = 0.9e-6, 1.9e-6, 1.0e-4, 3.5e-2
	userV1, userV2, userL1, userL2     = 0.36e-4, 0.13e-5, 0.1e-1, 0.49e-3
)

// Email returns the MMPP standing in for the paper's E-mail server trace:
// the "High ACF" workload (8% utilized at 6 ms service, strong long-range
// dependence).
func Email() (*arrival.MAP, error) {
	return arrival.MMPP2(emailV1, emailV2, emailL1, emailL2)
}

// SoftwareDevelopment returns the paper's Software Development MMPP: the
// "Low ACF" (short-range dependent) workload, ~6-7% utilized.
func SoftwareDevelopment() (*arrival.MAP, error) {
	return arrival.MMPP2(softV1, softV2, softL1, softL2)
}

// UserAccounts returns the paper's User Accounts MMPP: a lightly loaded
// system with a strong ACF structure (the paper notes it behaves
// qualitatively like E-mail).
func UserAccounts() (*arrival.MAP, error) {
	return arrival.MMPP2(userV1, userV2, userL1, userL2)
}

// EmailLowACF returns an MMPP matching the E-mail mean and CV but with a
// much weaker dependence structure — the "Low ACF" curve of the paper's
// Sec. 5.4 comparison.
func EmailLowACF() (*arrival.MAP, error) {
	email, err := Email()
	if err != nil {
		return nil, err
	}
	return arrival.FitMMPP2(arrival.FitSpec{
		Rate:  email.Rate(),
		SCV:   email.SCV(),
		Decay: 0.95,
	})
}

// EmailIPP returns an Interrupted Poisson Process with the E-mail mean and
// CV: equally variable but completely uncorrelated (a renewal process), the
// paper's instrument for separating variability from dependence.
func EmailIPP() (*arrival.MAP, error) {
	email, err := Email()
	if err != nil {
		return nil, err
	}
	return arrival.IPPFromMoments(email.Rate(), email.SCV(), 0.1)
}

// EmailPoisson returns the Poisson process with the E-mail mean rate — the
// fully independent, low-variability baseline.
func EmailPoisson() (*arrival.MAP, error) {
	email, err := Email()
	if err != nil {
		return nil, err
	}
	return arrival.Poisson(email.Rate())
}

// AtUtilization rescales a workload so its foreground utilization at the
// paper's service rate equals util — the paper's load sweep ("we scale the
// mean of the two MMPPs to obtain different foreground utilizations").
func AtUtilization(m *arrival.MAP, util float64) (*arrival.MAP, error) {
	if util <= 0 || util >= 1 {
		return nil, fmt.Errorf("workload: utilization %g outside (0,1)", util)
	}
	return m.WithRate(util * ServiceRatePerMs)
}

// Named pairs a workload with its catalog name.
type Named struct {
	Name string
	MAP  *arrival.MAP
}

// Traces returns the three trace-derived MMPPs of Fig. 1/2.
func Traces() ([]Named, error) {
	email, err := Email()
	if err != nil {
		return nil, err
	}
	soft, err := SoftwareDevelopment()
	if err != nil {
		return nil, err
	}
	user, err := UserAccounts()
	if err != nil {
		return nil, err
	}
	return []Named{
		{Name: "E-mail", MAP: email},
		{Name: "Software Development", MAP: soft},
		{Name: "User Accounts", MAP: user},
	}, nil
}

// DependenceComparison returns the four arrival processes of the paper's
// Sec. 5.4 study, all sharing the E-mail mean (and CV where applicable):
// high-ACF MMPP, low-ACF MMPP, IPP, and Poisson.
func DependenceComparison() ([]Named, error) {
	email, err := Email()
	if err != nil {
		return nil, err
	}
	low, err := EmailLowACF()
	if err != nil {
		return nil, err
	}
	ipp, err := EmailIPP()
	if err != nil {
		return nil, err
	}
	poisson, err := EmailPoisson()
	if err != nil {
		return nil, err
	}
	return []Named{
		{Name: "High ACF", MAP: email},
		{Name: "Low ACF", MAP: low},
		{Name: "IPP", MAP: ipp},
		{Name: "Expo", MAP: poisson},
	}, nil
}
