package workload

import (
	"math"
	"testing"
)

func TestEmailShape(t *testing.T) {
	m, err := Email()
	if err != nil {
		t.Fatal(err)
	}
	if util := m.Rate() * MeanServiceTimeMs; math.Abs(util-0.08) > 0.005 {
		t.Errorf("E-mail utilization = %v, paper reports 8%%", util)
	}
	if m.SCV() < 50 {
		t.Errorf("E-mail scv = %v, want high variability", m.SCV())
	}
	if m.ACFDecay() < 0.999 {
		t.Errorf("E-mail decay = %v, want LRD-like (>= 0.999)", m.ACFDecay())
	}
	if m.ACF(100) < 0.3 {
		t.Errorf("E-mail ACF(100) = %v, want persistently high", m.ACF(100))
	}
}

func TestSoftwareDevelopmentShape(t *testing.T) {
	m, err := SoftwareDevelopment()
	if err != nil {
		t.Fatal(err)
	}
	if util := m.Rate() * MeanServiceTimeMs; math.Abs(util-0.068) > 0.005 {
		t.Errorf("Soft.Dev utilization = %v, paper reports ~6%%", util)
	}
	email, _ := Email()
	if m.ACFDecay() >= email.ACFDecay() {
		t.Errorf("Soft.Dev decay %v must be faster (smaller) than E-mail %v", m.ACFDecay(), email.ACFDecay())
	}
}

func TestUserAccountsShape(t *testing.T) {
	m, err := UserAccounts()
	if err != nil {
		t.Fatal(err)
	}
	if util := m.Rate() * MeanServiceTimeMs; util > 0.03 {
		t.Errorf("User Accounts utilization = %v, paper reports a lightly loaded system", util)
	}
	if m.ACF(1) <= 0 {
		t.Errorf("User Accounts ACF(1) = %v, want positive", m.ACF(1))
	}
}

func TestEmailLowACF(t *testing.T) {
	high, err := Email()
	if err != nil {
		t.Fatal(err)
	}
	low, err := EmailLowACF()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(low.Rate()-high.Rate()) > 1e-9*high.Rate() {
		t.Errorf("rates differ: %v vs %v", low.Rate(), high.Rate())
	}
	if rel := math.Abs(low.SCV()-high.SCV()) / high.SCV(); rel > 0.01 {
		t.Errorf("SCV differs by %v", rel)
	}
	if low.ACF(50) >= high.ACF(50) {
		t.Errorf("low-ACF ACF(50) = %v not below high-ACF %v", low.ACF(50), high.ACF(50))
	}
}

func TestEmailIPP(t *testing.T) {
	high, err := Email()
	if err != nil {
		t.Fatal(err)
	}
	ipp, err := EmailIPP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ipp.Rate()-high.Rate()) > 1e-9*high.Rate() {
		t.Errorf("rates differ: %v vs %v", ipp.Rate(), high.Rate())
	}
	if rel := math.Abs(ipp.SCV()-high.SCV()) / high.SCV(); rel > 0.01 {
		t.Errorf("SCV differs by %v", rel)
	}
	if acf := ipp.ACF(1); math.Abs(acf) > 1e-9 {
		t.Errorf("IPP ACF(1) = %v, want 0", acf)
	}
}

func TestEmailPoisson(t *testing.T) {
	p, err := EmailPoisson()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.SCV()-1) > 1e-9 {
		t.Errorf("Poisson scv = %v", p.SCV())
	}
}

func TestAtUtilization(t *testing.T) {
	m, err := Email()
	if err != nil {
		t.Fatal(err)
	}
	for _, util := range []float64{0.05, 0.3, 0.8} {
		scaled, err := AtUtilization(m, util)
		if err != nil {
			t.Fatal(err)
		}
		if got := scaled.Rate() * MeanServiceTimeMs; math.Abs(got-util) > 1e-9 {
			t.Errorf("scaled utilization = %v, want %v", got, util)
		}
		if math.Abs(scaled.SCV()-m.SCV()) > 1e-6*m.SCV() {
			t.Error("scaling changed the SCV")
		}
	}
	if _, err := AtUtilization(m, 0); err == nil {
		t.Error("zero utilization accepted")
	}
	if _, err := AtUtilization(m, 1.2); err == nil {
		t.Error("supercritical utilization accepted")
	}
}

func TestTraces(t *testing.T) {
	traces, err := Traces()
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("got %d traces, want 3", len(traces))
	}
	for _, tr := range traces {
		if tr.Name == "" || tr.MAP == nil {
			t.Errorf("incomplete trace entry %+v", tr)
		}
	}
}

func TestDependenceComparison(t *testing.T) {
	procs, err := DependenceComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 4 {
		t.Fatalf("got %d processes, want 4", len(procs))
	}
	rate := procs[0].MAP.Rate()
	for _, p := range procs {
		if math.Abs(p.MAP.Rate()-rate) > 1e-9*rate {
			t.Errorf("%s rate %v differs from E-mail %v", p.Name, p.MAP.Rate(), rate)
		}
	}
	// Dependence ordering at lag 10: High > Low > IPP ≈ Expo ≈ 0.
	a := func(i int) float64 { return procs[i].MAP.ACF(10) }
	if !(a(0) > a(1) && a(1) > a(2)+1e-9) {
		t.Errorf("ACF(10) ordering violated: %v %v %v", a(0), a(1), a(2))
	}
	if math.Abs(a(2)) > 1e-9 || math.Abs(a(3)) > 1e-9 {
		t.Errorf("renewal processes must have zero ACF: %v %v", a(2), a(3))
	}
}
