package workload

import (
	"math"
	"testing"

	"bgperf/internal/arrival"
	"bgperf/internal/trace"
)

func TestFromTraceRoundTrip(t *testing.T) {
	// Generate a long trace from a known fast-mixing MMPP and recover a
	// model with matching descriptors.
	ref, err := arrival.MMPP2(0.002, 0.004, 1.0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(ref, 500000, 11)
	fit, err := FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(fit.Rate()-ref.Rate()) / ref.Rate(); rel > 0.05 {
		t.Errorf("rate %v vs %v (rel %v)", fit.Rate(), ref.Rate(), rel)
	}
	if rel := math.Abs(fit.SCV()-ref.SCV()) / ref.SCV(); rel > 0.15 {
		t.Errorf("scv %v vs %v (rel %v)", fit.SCV(), ref.SCV(), rel)
	}
	if math.Abs(fit.ACFDecay()-ref.ACFDecay()) > 0.05 {
		t.Errorf("decay %v vs %v", fit.ACFDecay(), ref.ACFDecay())
	}
	// The model-level ACF must track the sample over moderate lags.
	sample := tr.InterarrivalACF(20)
	model := fit.ACFSeries(20)
	for k := 0; k < 20; k += 5 {
		if math.Abs(sample[k]-model[k]) > 0.08 {
			t.Errorf("ACF(%d): sample %v vs fitted model %v", k+1, sample[k], model[k])
		}
	}
}

func TestFromTraceErrors(t *testing.T) {
	short := &trace.Trace{Interarrivals: []float64{1, 2, 3}}
	if _, err := FromTrace(short); err == nil {
		t.Error("short trace accepted")
	}
	// A Poisson trace has SCV ≈ 1: no MMPP burstiness to fit.
	p, _ := arrival.Poisson(1)
	if _, err := FromTrace(trace.Generate(p, 50000, 3)); err == nil {
		t.Error("Poisson trace accepted for MMPP fitting")
	}
}

func TestEstimateACFDecay(t *testing.T) {
	// Clean geometric series recovers γ.
	series := make([]float64, 60)
	for k := range series {
		series[k] = 0.4 * math.Pow(0.93, float64(k))
	}
	gamma, err := EstimateACFDecay(series)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gamma-0.93) > 1e-9 {
		t.Errorf("gamma = %v, want 0.93", gamma)
	}
	// Pure noise below the floor must be rejected.
	if _, err := EstimateACFDecay([]float64{0.004, -0.002, 0.003}); err == nil {
		t.Error("noise series accepted")
	}
	// A flat high series caps just below one.
	flat := []float64{0.3, 0.3, 0.3, 0.3}
	gamma, err = EstimateACFDecay(flat)
	if err != nil {
		t.Fatal(err)
	}
	if gamma >= 1 || gamma < 0.99 {
		t.Errorf("flat series gamma = %v, want just below 1", gamma)
	}
}
