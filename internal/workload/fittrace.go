package workload

import (
	"errors"
	"fmt"
	"math"

	"bgperf/internal/arrival"
	"bgperf/internal/trace"
)

// ErrFitTrace reports a trace whose sample statistics cannot parameterize an
// MMPP(2).
var ErrFitTrace = errors.New("workload: trace not fittable by an MMPP(2)")

// FromTrace fits a 2-state MMPP to a measured (or synthetic) trace — the
// paper's Sec. 3.1 workflow: match the sample mean and CV of the
// inter-arrival times and the shape of the sample ACF. The decay of the ACF
// is estimated by a log-linear regression over the lags that rise above the
// sampling noise floor; the lag-1 ACF is left to be implied by the MMPP(2)
// feasibility manifold (see arrival.FitSpec).
//
// Traces need enough samples for the estimates to stabilize — as a rule of
// thumb, tens of phase cycles of the underlying process.
func FromTrace(tr *trace.Trace) (*arrival.MAP, error) {
	st := tr.InterarrivalStats()
	if st.Count < 1000 {
		return nil, fmt.Errorf("%w: only %d samples", ErrFitTrace, st.Count)
	}
	if st.Mean <= 0 {
		return nil, fmt.Errorf("%w: nonpositive mean inter-arrival time", ErrFitTrace)
	}
	if st.SCV <= 1 {
		// At or below Poisson variability there is no burstiness to model.
		return nil, fmt.Errorf("%w: sample SCV %.3g (needs > 1; use a Poisson or Erlang model instead)", ErrFitTrace, st.SCV)
	}
	const maxLag = 200
	acf := tr.InterarrivalACF(maxLag)
	decay, err := EstimateACFDecay(acf)
	if err != nil {
		return nil, err
	}
	return arrival.FitMMPP2(arrival.FitSpec{
		Rate:  1 / st.Mean,
		SCV:   st.SCV,
		Decay: decay,
	})
}

// EstimateACFDecay fits a geometric decay factor γ to a sample ACF series
// (acf[k] ≈ c·γ^k) by least-squares regression of log acf against the lag,
// using the prefix of lags that stay above a noise floor. It returns
// ErrFitTrace when the series shows no usable positive correlation.
func EstimateACFDecay(acf []float64) (float64, error) {
	const floor = 0.01
	// Use the longest prefix above the noise floor; a geometric fit only
	// makes sense on contiguously positive values.
	n := 0
	for _, v := range acf {
		if v < floor {
			break
		}
		n++
	}
	if n < 2 {
		return 0, fmt.Errorf("%w: sample ACF below noise floor from lag 1", ErrFitTrace)
	}
	// Least squares on (k, log acf_k), k = 0-based lag index.
	var sx, sy, sxx, sxy float64
	for k := 0; k < n; k++ {
		x := float64(k)
		y := math.Log(acf[k])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return 0, fmt.Errorf("%w: degenerate ACF regression", ErrFitTrace)
	}
	slope := (float64(n)*sxy - sx*sy) / den
	gamma := math.Exp(slope)
	if gamma >= 1 {
		// A flat sample ACF over a short window still means strong
		// persistence; cap just below one so the fit remains feasible.
		gamma = 1 - 1e-4
	}
	if gamma <= 0 {
		return 0, fmt.Errorf("%w: estimated decay %g", ErrFitTrace, gamma)
	}
	return gamma, nil
}
