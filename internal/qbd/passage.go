package qbd

import (
	"fmt"

	"bgperf/internal/mat"
)

// MeanFirstPassageDown returns, per starting phase, the expected time for
// the level process to first move one level down, starting from a repeating
// level — the mean of Neuts' "fundamental period". Conditioning on the first
// event yields the linear system
//
//	(A1 + A0 + A0·G)·τ = −1,
//
// because an upward jump costs one nested fundamental period (ending in a
// phase distributed by the corresponding row of G) before progress resumes.
// For the M/M/1 special case this reduces to the classical busy-period mean
// 1/(µ−λ).
func (p *Process) MeanFirstPassageDown() ([]float64, error) {
	stable, err := p.Stable()
	if err != nil {
		return nil, err
	}
	if !stable {
		// Downward passage happens with probability < 1 (or takes infinite
		// expected time at criticality); the mean is undefined.
		return nil, fmt.Errorf("%w: mean downward passage time is infinite", ErrUnstable)
	}
	g, err := p.G()
	if err != nil {
		return nil, err
	}
	sys := p.a1.AddMat(p.a0).AddInPlace(p.a0.Mul(g)).Scale(-1)
	tau, err := mat.Solve(sys, mat.Ones(p.order))
	if err != nil {
		return nil, fmt.Errorf("qbd: first passage system: %w", err)
	}
	for i, v := range tau {
		if v < 0 {
			return nil, fmt.Errorf("%w: negative passage time %g in phase %d", ErrNoConvergence, v, i)
		}
	}
	return tau, nil
}

// MeanFirstPassageLevels returns the expected time to descend k levels from
// a repeating level, per starting phase: the passage times accumulate along
// the phase distributions G, G², … of successive arrivals at lower levels.
func (p *Process) MeanFirstPassageLevels(k int) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: passage depth %d", ErrInvalid, k)
	}
	tau, err := p.MeanFirstPassageDown()
	if err != nil {
		return nil, err
	}
	g, err := p.G()
	if err != nil {
		return nil, err
	}
	total := make([]float64, p.order)
	copy(total, tau)
	// dist rows track the phase distribution after each completed descent;
	// the walk ping-pongs two preallocated matrices and one add buffer.
	dist := mat.Identity(p.order)
	next := mat.New(p.order, p.order)
	add := make([]float64, p.order)
	for step := 1; step < k; step++ {
		next.MulInto(dist, g)
		dist, next = next, dist
		dist.MulVecInto(add, tau)
		for i := range total {
			total[i] += add[i]
		}
	}
	return total, nil
}
