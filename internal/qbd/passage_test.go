package qbd

import (
	"errors"
	"math"
	"testing"
)

func TestMeanFirstPassageDownMM1(t *testing.T) {
	// M/M/1 busy period mean: 1/(µ−λ).
	for _, tt := range []struct{ lambda, mu float64 }{
		{1, 2}, {0.5, 1}, {3, 4},
	} {
		p, _ := mm1(tt.lambda, tt.mu)
		tau, err := p.MeanFirstPassageDown()
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / (tt.mu - tt.lambda)
		if math.Abs(tau[0]-want) > 1e-10*want {
			t.Errorf("λ=%v µ=%v: passage time %v, want %v", tt.lambda, tt.mu, tau[0], want)
		}
	}
}

func TestMeanFirstPassageDownMG1(t *testing.T) {
	// M/G/1 busy period mean: E[S]/(1−ρ), for Erlang-2 service starting a
	// fresh service (phase 0).
	const lambda, mu = 0.6, 1.0
	p, _ := me2q(lambda, mu)
	tau, err := p.MeanFirstPassageDown()
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	want := (1 / mu) / (1 - rho)
	if math.Abs(tau[0]-want) > 1e-10*want {
		t.Errorf("busy period %v, want %v", tau[0], want)
	}
	// Starting mid-service (phase 1, half the work left) must be shorter.
	if tau[1] >= tau[0] {
		t.Errorf("mid-service passage %v not below fresh-service %v", tau[1], tau[0])
	}
}

func TestMeanFirstPassageLevels(t *testing.T) {
	// In M/M/1 the k-level descent is k independent busy periods.
	p, _ := mm1(1, 2)
	for _, k := range []int{1, 2, 5} {
		tau, err := p.MeanFirstPassageLevels(k)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(k) / (2 - 1)
		if math.Abs(tau[0]-want) > 1e-9*want {
			t.Errorf("k=%d: %v, want %v", k, tau[0], want)
		}
	}
	if _, err := p.MeanFirstPassageLevels(0); err == nil {
		t.Error("zero depth accepted")
	}
}

func TestMeanFirstPassageUnstableRejected(t *testing.T) {
	// The mean downward passage time is infinite for non-positive-recurrent
	// processes; the call must fail rather than return a huge number.
	p, _ := mm1(2, 1)
	if _, err := p.MeanFirstPassageDown(); !errors.Is(err, ErrUnstable) {
		t.Errorf("error = %v, want ErrUnstable", err)
	}
}
