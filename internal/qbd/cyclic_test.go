package qbd

import (
	"math"
	"testing"

	"bgperf/internal/mat"
	"bgperf/internal/raceflag"
)

// bigProcess builds a stable order-n QBD whose A0/A2 are scaled identities
// (the structure of the paper's chains) and whose phase chain is an
// irreducible ring. For n >= sparseMinOrder this exercises the CSR fast
// paths in rWS and the boundary sweep.
func bigProcess(t *testing.T, n int) *Process {
	t.Helper()
	a0, a1, a2 := mat.New(n, n), mat.New(n, n), mat.New(n, n)
	for i := 0; i < n; i++ {
		a0.Set(i, i, 0.3)
		a2.Set(i, i, 0.7)
		a1.Set(i, (i+1)%n, 0.2)
		a1.Set(i, i, -(0.3 + 0.7 + 0.2))
	}
	p, err := New(a0, a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCyclicReductionG(t *testing.T) {
	b0, b1, b2 := logRedBlocks()
	g, iters, err := cyclicReduction(b0, b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	if iters < 1 {
		t.Fatalf("expected at least one iteration, got %d", iters)
	}
	for i, s := range g.RowSums() {
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("G row %d sums to %g, want 1", i, s)
		}
	}
}

// TestCyclicReductionMulBudget pins cyclic reduction's op budget: exactly
// four matrix products per iteration (the shared up·S·down, down·S·up, and
// the two block squarings) and none outside the loop — the final G assembly
// is a triangular solve, not a product.
func TestCyclicReductionMulBudget(t *testing.T) {
	b0, b1, b2 := logRedBlocks()
	mat.ResetMulCount()
	_, iters, err := cyclicReduction(b0, b1, b2)
	muls := mat.MulCount()
	if err != nil {
		t.Fatal(err)
	}
	want := MulBudget(RSchemeCyclic, iters)
	if muls != want {
		t.Fatalf("cyclicReduction used %d matrix products over %d iterations, want exactly %d",
			muls, iters, want)
	}
}

// TestCyclicReductionStepZeroAlloc pins the zero-allocation contract of the
// cyclic-reduction inner loop, the CR counterpart of
// TestLogReductionStepZeroAlloc.
func TestCyclicReductionStepZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	b0, b1, b2 := logRedBlocks()
	s := newCRState(b0.Rows(), nil, 1)
	s.start(b0, b1, b2)
	// A converged state keeps iterating harmlessly (up and down shrink
	// toward zero), so AllocsPerRun can re-run step on the same state.
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cyclicReduction step allocated %.0f times per run, want 0", allocs)
	}
}

// TestCyclicAgreesWithLogReduction pins the 1e-12 cross-check between the
// default scheme and the logarithmic-reduction reference at the G level.
func TestCyclicAgreesWithLogReduction(t *testing.T) {
	b0, b1, b2 := logRedBlocks()
	gLR, _, err := logReduction(b0, b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	gCR, _, err := cyclicReduction(b0, b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < gLR.Rows(); i++ {
		for j := 0; j < gLR.Cols(); j++ {
			if d := math.Abs(gLR.At(i, j) - gCR.At(i, j)); d > 1e-12 {
				t.Fatalf("G disagreement at (%d,%d): %g", i, j, d)
			}
		}
	}
}

// TestRSchemeAgreement solves the same processes under both schemes and
// requires the R matrices to agree to 1e-12, covering the degenerate
// one-phase chain, a rectangular-boundary PH-service chain, and a large
// sparse-block chain that exercises the CSR fast paths.
func TestRSchemeAgreement(t *testing.T) {
	builds := []struct {
		name  string
		build func() *Process
	}{
		{"mm1", func() *Process { p, _ := mm1(1, 2.5); return p }},
		{"me2q", func() *Process { p, _ := me2q(0.4, 1.0); return p }},
		{"big96", func() *Process { return bigProcess(t, 96) }},
	}
	for _, b := range builds {
		t.Run(b.name, func(t *testing.T) {
			pCR := b.build()
			pCR.Tune(Tuning{Scheme: RSchemeCyclic})
			rCR, err := pCR.R()
			if err != nil {
				t.Fatal(err)
			}
			pLR := b.build()
			pLR.Tune(Tuning{Scheme: RSchemeLogarithmic})
			rLR, err := pLR.R()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < rCR.Rows(); i++ {
				for j := 0; j < rCR.Cols(); j++ {
					if d := math.Abs(rCR.At(i, j) - rLR.At(i, j)); d > 1e-12 {
						t.Fatalf("R disagreement at (%d,%d): %g (cyclic %g vs logarithmic %g)",
							i, j, d, rCR.At(i, j), rLR.At(i, j))
					}
				}
			}
		})
	}
}

// TestWorkersBitIdentical pins the determinism contract of intra-solve
// parallelism: for both schemes, R computed with a fanned-out worker pool is
// bit-for-bit the serial result. Run under -race (the CI race job) this also
// exercises the concurrent use of the shared workspace and the disjoint
// row-band writes.
func TestWorkersBitIdentical(t *testing.T) {
	for _, scheme := range []RScheme{RSchemeCyclic, RSchemeLogarithmic} {
		t.Run(scheme.String(), func(t *testing.T) {
			pSerial := bigProcess(t, 96)
			pSerial.Tune(Tuning{Scheme: scheme})
			rSerial, err := pSerial.R()
			if err != nil {
				t.Fatal(err)
			}
			pPar := bigProcess(t, 96)
			pPar.Tune(Tuning{Scheme: scheme, Workers: 4})
			rPar, err := pPar.R()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < rSerial.Rows(); i++ {
				for j := 0; j < rSerial.Cols(); j++ {
					s, p := rSerial.At(i, j), rPar.At(i, j)
					if math.Float64bits(s) != math.Float64bits(p) {
						t.Fatalf("R(%d,%d) differs across worker counts: %g vs %g", i, j, s, p)
					}
				}
			}
		})
	}
}

// TestSparseBlocksGating checks the CSR snapshots appear exactly when both
// gates pass: large order and low density.
func TestSparseBlocksGating(t *testing.T) {
	small, _ := me2q(0.4, 1.0)
	if sA0, sA2 := small.sparseBlocks(); sA0 != nil || sA2 != nil {
		t.Fatal("order-2 process built sparse snapshots below sparseMinOrder")
	}
	big := bigProcess(t, 96)
	sA0, sA2 := big.sparseBlocks()
	if sA0 == nil || sA2 == nil {
		t.Fatal("order-96 scaled-identity blocks should have sparse snapshots")
	}
	if sA0.NNZ() != 96 || sA2.NNZ() != 96 {
		t.Fatalf("snapshot NNZ = %d/%d, want 96/96", sA0.NNZ(), sA2.NNZ())
	}
}

func TestParseRScheme(t *testing.T) {
	for _, s := range []RScheme{RSchemeCyclic, RSchemeLogarithmic} {
		got, err := ParseRScheme(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseRScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseRScheme("newton"); err == nil {
		t.Fatal("ParseRScheme accepted an unknown scheme")
	}
}
