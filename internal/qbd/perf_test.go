package qbd

import (
	"strings"
	"testing"

	"bgperf/internal/markov"
	"bgperf/internal/mat"
	"bgperf/internal/raceflag"
)

// TestLogReductionStepZeroAlloc pins the zero-allocation contract of the
// logarithmic-reduction inner loop: once the working set is built, each
// iteration runs entirely on preallocated buffers.
func TestLogReductionStepZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	b0, b1, b2 := logRedBlocks()
	s := newLogRedState(b0.Rows(), nil, 1)
	if err := s.start(b0, b1, b2); err != nil {
		t.Fatal(err)
	}
	// A converged state keeps iterating harmlessly (t shrinks toward zero),
	// so AllocsPerRun can re-run step on the same state.
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("logReduction step allocated %.0f times per run, want 0", allocs)
	}
}

// TestNewValidationOrderStable checks that when several blocks are malformed,
// New reports the same block every time — validation follows the fixed order
// A0, A1, A2 rather than map iteration order.
func TestNewValidationOrderStable(t *testing.T) {
	// A0 is the 2x2 reference shape; both A1 and A2 are mis-shaped, so an
	// order-dependent implementation could report either.
	a0 := mat.New(2, 2)
	a1 := mat.New(3, 3)
	a2 := mat.New(4, 4)
	const want = "A1 is 3x3, want 2x2"
	var first string
	for i := 0; i < 20; i++ {
		_, err := New(a0, a1, a2)
		if err == nil {
			t.Fatal("New accepted mismatched block shapes")
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("iteration %d: error %q does not mention %q", i, err, want)
		}
		if first == "" {
			first = err.Error()
		} else if err.Error() != first {
			t.Fatalf("iteration %d: error changed from %q to %q", i, first, err)
		}
	}
}

// TestDriftCached checks that Drift is computed once per process: Stable, R,
// and repeated Drift calls must share a single StationaryCTMC solve.
func TestDriftCached(t *testing.T) {
	p, _ := me2q(0.4, 1.0)
	markov.ResetStationaryCalls()
	if _, _, err := p.Drift(); err != nil {
		t.Fatal(err)
	}
	if got := markov.StationaryCalls(); got != 1 {
		t.Fatalf("first Drift made %d StationaryCTMC calls, want 1", got)
	}
	if _, err := p.Stable(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Drift(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.R(); err != nil {
		t.Fatal(err)
	}
	if got := markov.StationaryCalls(); got != 1 {
		t.Fatalf("Stable+Drift+R made %d StationaryCTMC calls in total, want 1", got)
	}
}
