// Package qbd solves Quasi-Birth-Death processes — continuous-time Markov
// chains whose generator is block tridiagonal with a repeating portion —
// using the matrix-geometric method of Neuts and the logarithmic-reduction
// algorithm of Latouche and Ramaswami, the same machinery the paper cites
// ([10]) for solving its foreground/background model.
//
// A QBD is described by the repeating blocks (A0, A1, A2): A0 carries the
// rates one level up, A2 one level down, and A1 the within-level rates
// including the negative diagonal. The stationary distribution of the
// repeating levels is matrix-geometric, π_{j+1} = π_j·R, where R is the
// minimal nonnegative solution of A0 + R·A1 + R²·A2 = 0.
package qbd

import (
	"errors"
	"fmt"
	"math"

	"bgperf/internal/markov"
	"bgperf/internal/mat"
)

// ErrInvalid reports malformed QBD blocks.
var ErrInvalid = errors.New("qbd: invalid process")

// ErrUnstable reports a QBD whose drift condition fails (no stationary
// distribution).
var ErrUnstable = errors.New("qbd: process is not positive recurrent")

// ErrNoConvergence reports an iterative solver that did not converge.
var ErrNoConvergence = errors.New("qbd: iteration did not converge")

// Process holds the repeating blocks of a QBD.
type Process struct {
	a0, a1, a2 *mat.Matrix
	order      int
}

// New validates the repeating blocks and returns the process. A0 and A2 must
// be entrywise nonnegative, A1 must have nonnegative off-diagonal entries,
// and A = A0+A1+A2 must be an irreducible generator.
func New(a0, a1, a2 *mat.Matrix) (*Process, error) {
	m := a0.Rows()
	for name, b := range map[string]*mat.Matrix{"A0": a0, "A1": a1, "A2": a2} {
		if b.Rows() != m || b.Cols() != m {
			return nil, fmt.Errorf("%w: %s is %dx%d, want %dx%d", ErrInvalid, name, b.Rows(), b.Cols(), m, m)
		}
		if !b.IsFinite() {
			return nil, fmt.Errorf("%w: %s has non-finite entries", ErrInvalid, name)
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if a0.At(i, j) < 0 || a2.At(i, j) < 0 {
				return nil, fmt.Errorf("%w: negative rate in A0/A2 at (%d,%d)", ErrInvalid, i, j)
			}
			if i != j && a1.At(i, j) < 0 {
				return nil, fmt.Errorf("%w: negative off-diagonal in A1 at (%d,%d)", ErrInvalid, i, j)
			}
		}
	}
	sum := a0.AddMat(a1).AddInPlace(a2)
	if err := markov.CheckGenerator(sum, 1e-8); err != nil {
		return nil, fmt.Errorf("%w: A0+A1+A2: %v", ErrInvalid, err)
	}
	return &Process{a0: a0.Clone(), a1: a1.Clone(), a2: a2.Clone(), order: m}, nil
}

// Order returns the per-level block size.
func (p *Process) Order() int { return p.order }

// A0 returns a copy of the up-transition block.
func (p *Process) A0() *mat.Matrix { return p.a0.Clone() }

// A1 returns a copy of the local block.
func (p *Process) A1() *mat.Matrix { return p.a1.Clone() }

// A2 returns a copy of the down-transition block.
func (p *Process) A2() *mat.Matrix { return p.a2.Clone() }

// Drift returns the mean upward and downward drift rates (φA0e, φA2e) under
// the stationary phase distribution φ of the generator A = A0+A1+A2. The
// process is positive recurrent iff up < down.
func (p *Process) Drift() (up, down float64, err error) {
	a := p.a0.AddMat(p.a1).AddInPlace(p.a2)
	var phi []float64
	if p.order == 1 {
		phi = []float64{1}
	} else {
		// Note: A may be reducible with a single recurrent class (e.g. the
		// paper's chain, where BG-serving phases are entered only from the
		// boundary). The LU-based solve handles that — transient phases get
		// zero mass — whereas GTH would reject the chain outright.
		phi, err = markov.StationaryCTMC(a)
		if err != nil {
			return 0, 0, fmt.Errorf("qbd: drift: %w", err)
		}
	}
	up = mat.Dot(phi, p.a0.RowSums())
	down = mat.Dot(phi, p.a2.RowSums())
	return up, down, nil
}

// Stable reports whether the QBD is positive recurrent (mean drift strictly
// downward).
func (p *Process) Stable() (bool, error) {
	up, down, err := p.Drift()
	if err != nil {
		return false, err
	}
	return up < down, nil
}

// G computes the first-passage matrix G — entry (i,j) is the probability that
// the process, started in phase i of level n+1, first enters level n in phase
// j — by logarithmic reduction on the uniformized chain. For a recurrent QBD,
// G is stochastic.
func (p *Process) G() (*mat.Matrix, error) {
	// Uniformize: the diagonal lives in A1.
	theta := 0.0
	for i := 0; i < p.order; i++ {
		if d := -p.a1.At(i, i); d > theta {
			theta = d
		}
	}
	if theta == 0 {
		return nil, fmt.Errorf("%w: zero generator", ErrInvalid)
	}
	theta *= 1 + 1e-12
	b0 := p.a0.Clone().Scale(1 / theta)
	b1 := p.a1.Clone().Scale(1 / theta)
	for i := 0; i < p.order; i++ {
		b1.Add(i, i, 1)
	}
	b2 := p.a2.Clone().Scale(1 / theta)
	g, _, err := logReduction(b0, b1, b2)
	return g, err
}

// logReduction runs the Latouche–Ramaswami logarithmic-reduction algorithm on
// the DTMC blocks (b0 up, b1 local, b2 down). It also reports the number of
// iterations taken, which the op-count regression tests use to pin the exact
// multiplication budget of this innermost solver loop.
func logReduction(b0, b1, b2 *mat.Matrix) (*mat.Matrix, int, error) {
	m := b0.Rows()
	id := mat.Identity(m)
	inv, err := mat.Inverse(id.SubMat(b1))
	if err != nil {
		return nil, 0, fmt.Errorf("qbd: logarithmic reduction: %w", err)
	}
	h := inv.Mul(b0) // level-up kernel
	l := inv.Mul(b2) // level-down kernel
	g := l.Clone()
	t := h.Clone()
	const maxIter = 200
	for iter := 0; iter < maxIter; iter++ {
		u := h.Mul(l).AddInPlace(l.Mul(h))
		hh := h.Mul(h)
		ll := l.Mul(l)
		inv, err = mat.Inverse(id.SubMat(u))
		if err != nil {
			return nil, iter, fmt.Errorf("qbd: logarithmic reduction step %d: %w", iter, err)
		}
		h = inv.Mul(hh)
		l = inv.Mul(ll)
		tl := t.Mul(l) // shared by the G update and the step criterion below
		g.AddInPlace(tl)
		// For a recurrent QBD the row sums of G approach one; the defect
		// measures remaining mass. For transient chains this never reaches
		// zero, so also stop when the update becomes negligible.
		defect := 0.0
		for _, s := range g.RowSums() {
			if d := math.Abs(1 - s); d > defect {
				defect = d
			}
		}
		if defect < 1e-13 || tl.MaxAbs() < 1e-15 {
			return g, iter + 1, nil
		}
		t = t.Mul(h)
	}
	return nil, maxIter, fmt.Errorf("%w: logarithmic reduction after %d iterations", ErrNoConvergence, maxIter)
}

// R computes the rate matrix R, the minimal nonnegative solution of
// A0 + R·A1 + R²·A2 = 0, via R = A0·(−(A1 + A0·G))⁻¹. The spectral radius of
// R is < 1 exactly when the process is stable.
func (p *Process) R() (*mat.Matrix, error) {
	stable, err := p.Stable()
	if err != nil {
		return nil, err
	}
	if !stable {
		up, down, _ := p.Drift()
		return nil, fmt.Errorf("%w: upward drift %.6g >= downward drift %.6g", ErrUnstable, up, down)
	}
	g, err := p.G()
	if err != nil {
		return nil, err
	}
	u := p.a1.AddMat(p.a0.Mul(g)).Scale(-1)
	inv, err := mat.Inverse(u)
	if err != nil {
		return nil, fmt.Errorf("qbd: R: %w", err)
	}
	r := p.a0.Mul(inv)
	// Clamp round-off negatives: R is nonnegative in exact arithmetic.
	for i := 0; i < r.Rows(); i++ {
		for j := 0; j < r.Cols(); j++ {
			if v := r.At(i, j); v < 0 {
				if v < -1e-9 {
					return nil, fmt.Errorf("%w: R has negative entry %g", ErrNoConvergence, v)
				}
				r.Set(i, j, 0)
			}
		}
	}
	return r, nil
}

// RByIteration computes R by the classical functional iteration
// R ← −(A0 + R²A2)·A1⁻¹, mainly as an independent cross-check of the
// logarithmic-reduction path. tol is the max-abs change stopping criterion.
func (p *Process) RByIteration(tol float64, maxIter int) (*mat.Matrix, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 100000
	}
	invA1, err := mat.Inverse(p.a1)
	if err != nil {
		return nil, fmt.Errorf("qbd: RByIteration: %w", err)
	}
	m := p.order
	r := mat.New(m, m)
	for iter := 0; iter < maxIter; iter++ {
		next := p.a0.AddMat(r.Mul(r).Mul(p.a2)).Mul(invA1).Scale(-1)
		diff := next.SubMat(r).MaxAbs()
		r = next
		if diff < tol {
			return r, nil
		}
	}
	return nil, fmt.Errorf("%w: functional iteration after %d steps", ErrNoConvergence, maxIter)
}
