// Package qbd solves Quasi-Birth-Death processes — continuous-time Markov
// chains whose generator is block tridiagonal with a repeating portion —
// using the matrix-geometric method of Neuts and the logarithmic-reduction
// algorithm of Latouche and Ramaswami, the same machinery the paper cites
// ([10]) for solving its foreground/background model.
//
// A QBD is described by the repeating blocks (A0, A1, A2): A0 carries the
// rates one level up, A2 one level down, and A1 the within-level rates
// including the negative diagonal. The stationary distribution of the
// repeating levels is matrix-geometric, π_{j+1} = π_j·R, where R is the
// minimal nonnegative solution of A0 + R·A1 + R²·A2 = 0.
//
// The solver hot loops run on preallocated working sets (mat.Workspace and
// the *Into kernels): the logarithmic-reduction iteration performs zero heap
// allocations in steady state, pinned by regression tests.
package qbd

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"bgperf/internal/markov"
	"bgperf/internal/mat"
	"bgperf/internal/obs"
)

// ErrInvalid reports malformed QBD blocks.
var ErrInvalid = errors.New("qbd: invalid process")

// ErrUnstable reports a QBD whose drift condition fails (no stationary
// distribution).
var ErrUnstable = errors.New("qbd: process is not positive recurrent")

// ErrNoConvergence reports an iterative solver that did not converge.
var ErrNoConvergence = errors.New("qbd: iteration did not converge")

// Process holds the repeating blocks of a QBD.
type Process struct {
	a0, a1, a2 *mat.Matrix
	order      int

	// Drift is needed by Stable, the R error path, and first-passage
	// queries; it is computed at most once per process.
	driftOnce          sync.Once
	driftUp, driftDown float64
	driftErr           error

	// tuning selects the G/R iteration and the intra-solve multiply fan-out;
	// the zero value is the default (cyclic reduction, serial).
	tuning Tuning

	// Sparse snapshots of A0/A2, built lazily for large sparse blocks (the
	// scaled-identity-like transition blocks of the paper's chains); nil when
	// the dense kernels are the better choice.
	sparseOnce sync.Once
	sA0, sA2   *mat.Sparse
}

// sparseMinOrder and sparseMaxDensity gate the CSR snapshots of A0/A2: below
// the order threshold the dense kernels win (and the snapshot allocations
// would show up in the small-model solve alloc budget); above the density
// threshold the sparse traversal saves nothing over the zero-skipping dense
// kernels.
const (
	sparseMinOrder   = 48
	sparseMaxDensity = 0.25
)

// sparseBlocks returns the CSR snapshots of A0 and A2 when they are worth
// using (large order, low density), building them at most once per process.
// Either result may be nil independently. The sparse kernels are bit-identical
// to the dense ones (pinned in internal/mat), so using a snapshot never
// changes results.
func (p *Process) sparseBlocks() (sA0, sA2 *mat.Sparse) {
	p.sparseOnce.Do(func() {
		if p.order < sparseMinOrder {
			return
		}
		if s := mat.NewSparse(p.a0); s.Density() <= sparseMaxDensity {
			p.sA0 = s
		}
		if s := mat.NewSparse(p.a2); s.Density() <= sparseMaxDensity {
			p.sA2 = s
		}
	})
	return p.sA0, p.sA2
}

// New validates the repeating blocks and returns the process. A0 and A2 must
// be entrywise nonnegative, A1 must have nonnegative off-diagonal entries,
// and A = A0+A1+A2 must be an irreducible generator. Blocks are validated in
// the fixed order A0, A1, A2, so the reported error is deterministic when
// several blocks are malformed.
func New(a0, a1, a2 *mat.Matrix) (*Process, error) {
	m := a0.Rows()
	blocks := []struct {
		name string
		m    *mat.Matrix
	}{{"A0", a0}, {"A1", a1}, {"A2", a2}}
	for _, b := range blocks {
		if b.m.Rows() != m || b.m.Cols() != m {
			return nil, fmt.Errorf("%w: %s is %dx%d, want %dx%d", ErrInvalid, b.name, b.m.Rows(), b.m.Cols(), m, m)
		}
		if !b.m.IsFinite() {
			return nil, fmt.Errorf("%w: %s has non-finite entries", ErrInvalid, b.name)
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if a0.At(i, j) < 0 || a2.At(i, j) < 0 {
				return nil, fmt.Errorf("%w: negative rate in A0/A2 at (%d,%d)", ErrInvalid, i, j)
			}
			if i != j && a1.At(i, j) < 0 {
				return nil, fmt.Errorf("%w: negative off-diagonal in A1 at (%d,%d)", ErrInvalid, i, j)
			}
		}
	}
	sum := a0.AddMat(a1).AddInPlace(a2)
	if err := markov.CheckGenerator(sum, 1e-8); err != nil {
		return nil, fmt.Errorf("%w: A0+A1+A2: %v", ErrInvalid, err)
	}
	return &Process{a0: a0.Clone(), a1: a1.Clone(), a2: a2.Clone(), order: m}, nil
}

// Order returns the per-level block size.
func (p *Process) Order() int { return p.order }

// A0 returns a copy of the up-transition block.
func (p *Process) A0() *mat.Matrix { return p.a0.Clone() }

// A1 returns a copy of the local block.
func (p *Process) A1() *mat.Matrix { return p.a1.Clone() }

// A2 returns a copy of the down-transition block.
func (p *Process) A2() *mat.Matrix { return p.a2.Clone() }

// Drift returns the mean upward and downward drift rates (φA0e, φA2e) under
// the stationary phase distribution φ of the generator A = A0+A1+A2. The
// process is positive recurrent iff up < down. The result is computed once
// and cached, so Stable, R, and the passage-time queries share a single
// StationaryCTMC solve.
func (p *Process) Drift() (up, down float64, err error) {
	p.driftOnce.Do(p.computeDrift)
	return p.driftUp, p.driftDown, p.driftErr
}

func (p *Process) computeDrift() {
	a := p.a0.AddMat(p.a1).AddInPlace(p.a2)
	var phi []float64
	if p.order == 1 {
		phi = []float64{1}
	} else {
		// Note: A may be reducible with a single recurrent class (e.g. the
		// paper's chain, where BG-serving phases are entered only from the
		// boundary). The LU-based solve handles that — transient phases get
		// zero mass — whereas GTH would reject the chain outright.
		var err error
		phi, err = markov.StationaryCTMC(a)
		if err != nil {
			// A with several closed classes (e.g. a chain whose repeating
			// region freezes part of the phase, as under the util-threshold
			// admission policy) has no unique stationary vector. The level
			// process can dwell arbitrarily long in any closed class, so the
			// QBD is positive recurrent iff every class drifts down; report
			// the drift of the binding class (smallest down-minus-up margin).
			up, down, cerr := p.classDrift(a)
			if cerr != nil {
				p.driftErr = fmt.Errorf("qbd: drift: %w", err)
				return
			}
			p.driftUp, p.driftDown = up, down
			return
		}
	}
	p.driftUp = mat.Dot(phi, p.a0.RowSums())
	p.driftDown = mat.Dot(phi, p.a2.RowSums())
}

// classDrift computes the per-closed-class drift of a reducible phase
// generator A and returns the (up, down) pair of the class with the smallest
// stability margin down − up. Closed classes are the strongly connected
// components of A's support graph with no edges leaving them; restricted to
// such a class, A is an irreducible generator with its own stationary vector
// and therefore its own conditional drift.
func (p *Process) classDrift(a *mat.Matrix) (up, down float64, err error) {
	classes := closedClasses(a)
	if len(classes) == 0 {
		return 0, 0, fmt.Errorf("qbd: drift: no closed class in A")
	}
	upRates := p.a0.RowSums()
	downRates := p.a2.RowSums()
	margin := math.Inf(1)
	for _, class := range classes {
		sub := mat.New(len(class), len(class))
		for i, gi := range class {
			for j, gj := range class {
				sub.Set(i, j, a.At(gi, gj))
			}
		}
		phi, serr := markov.StationaryCTMC(sub)
		if serr != nil {
			return 0, 0, serr
		}
		var cu, cd float64
		for i, gi := range class {
			cu += phi[i] * upRates[gi]
			cd += phi[i] * downRates[gi]
		}
		if cd-cu < margin {
			margin = cd - cu
			up, down = cu, cd
		}
	}
	return up, down, nil
}

// closedClasses returns the strongly connected components of the support
// graph of generator a that have no outgoing edges (Tarjan's algorithm,
// iterative). States in open components are transient within a and carry no
// stationary mass.
func closedClasses(a *mat.Matrix) [][]int {
	n := a.Rows()
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && a.At(i, j) > 0 {
				adj[i] = append(adj[i], j)
			}
		}
	}
	const unvisited = -1
	var (
		index   = make([]int, n)
		lowlink = make([]int, n)
		onStack = make([]bool, n)
		comp    = make([]int, n)
		stack   []int
		sccs    [][]int
		nextIdx int
		frameV  []int
		frameEi []int
	)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frameV = append(frameV[:0], root)
		frameEi = append(frameEi[:0], 0)
		index[root] = nextIdx
		lowlink[root] = nextIdx
		nextIdx++
		stack = append(stack, root)
		onStack[root] = true
		for len(frameV) > 0 {
			v := frameV[len(frameV)-1]
			ei := frameEi[len(frameEi)-1]
			if ei < len(adj[v]) {
				frameEi[len(frameEi)-1]++
				w := adj[v][ei]
				if index[w] == unvisited {
					index[w] = nextIdx
					lowlink[w] = nextIdx
					nextIdx++
					stack = append(stack, w)
					onStack[w] = true
					frameV = append(frameV, w)
					frameEi = append(frameEi, 0)
				} else if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
				continue
			}
			frameV = frameV[:len(frameV)-1]
			frameEi = frameEi[:len(frameEi)-1]
			if len(frameV) > 0 {
				if parent := frameV[len(frameV)-1]; lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(sccs)
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	var closed [][]int
	for ci, scc := range sccs {
		open := false
		for _, v := range scc {
			for _, w := range adj[v] {
				if comp[w] != ci {
					open = true
					break
				}
			}
			if open {
				break
			}
		}
		if !open {
			closed = append(closed, scc)
		}
	}
	return closed
}

// Stable reports whether the QBD is positive recurrent (mean drift strictly
// downward).
func (p *Process) Stable() (bool, error) {
	up, down, err := p.Drift()
	if err != nil {
		return false, err
	}
	return up < down, nil
}

// G computes the first-passage matrix G — entry (i,j) is the probability that
// the process, started in phase i of level n+1, first enters level n in phase
// j — by logarithmic reduction on the uniformized chain. For a recurrent QBD,
// G is stochastic.
func (p *Process) G() (*mat.Matrix, error) {
	g, _, _, err := p.gWS(nil, nil)
	return g, err
}

// gWS is G with an optional workspace supplying the reduction's scratch
// buffers and an optional observer receiving the per-iteration convergence
// trace (nil is valid for both). It also returns the iteration count and the
// final residual for convergence reporting.
func (p *Process) gWS(ws *mat.Workspace, o obs.Observer) (*mat.Matrix, int, float64, error) {
	// Uniformize: the diagonal lives in A1.
	theta := 0.0
	for i := 0; i < p.order; i++ {
		if d := -p.a1.At(i, i); d > theta {
			theta = d
		}
	}
	if theta == 0 {
		return nil, 0, 0, fmt.Errorf("%w: zero generator", ErrInvalid)
	}
	theta *= 1 + 1e-12
	m := p.order
	b0 := ws.MatrixUninit(m, m).ScaleInto(p.a0, 1/theta)
	b1 := ws.MatrixUninit(m, m).ScaleInto(p.a1, 1/theta)
	for i := 0; i < m; i++ {
		b1.Add(i, i, 1)
	}
	b2 := ws.MatrixUninit(m, m).ScaleInto(p.a2, 1/theta)
	var (
		g        *mat.Matrix
		iters    int
		residual float64
		err      error
	)
	switch p.tuning.Scheme {
	case RSchemeLogarithmic:
		g, iters, residual, err = logReductionObs(b0, b1, b2, ws, o, p.tuning.Workers)
	default:
		g, iters, residual, err = cyclicReductionObs(b0, b1, b2, ws, o, p.tuning.Workers)
	}
	ws.Release(b0, b1, b2)
	return g, iters, residual, err
}

// logRedState is the preallocated working set of one logarithmic-reduction
// run: the ~8 square temporaries of the iteration, a reusable LU, and a row-
// sum buffer. After newLogRedState, the steady-state step performs zero heap
// allocations (pinned by TestLogReductionStepZeroAlloc).
type logRedState struct {
	ws      *mat.Workspace
	workers int

	id      *mat.Matrix // I, fixed
	h, l    *mat.Matrix // level-up / level-down kernels
	g, t    *mat.Matrix // accumulated G and the product of h's
	u       *mat.Matrix // h·l + l·h
	hh, ll  *mat.Matrix // h², l²
	tl      *mat.Matrix // t·l, shared by the G update and the stop criterion
	inv     *mat.Matrix // (I − u)⁻¹
	scratch *mat.Matrix // ping-pong partner / subtraction target
	lu      *mat.LU
	rowSums []float64

	// defect is the residual (max |1 − rowsum(G)|) after the latest step —
	// the quantity the convergence trace reports.
	defect float64
}

// newLogRedState acquires the working set for order-m blocks from ws (nil ws
// allocates directly). workers bounds the block-row fan-out of the step's
// multiplies (<= 1 serial; results are bit-identical for every worker count).
func newLogRedState(m int, ws *mat.Workspace, workers int) *logRedState {
	return &logRedState{
		ws:      ws,
		workers: workers,
		// Every buffer but the identity is fully overwritten before its first
		// read (products, clones, differences, inverse targets), so the
		// working set skips acquisition zeroing.
		id:      ws.Identity(m),
		h:       ws.MatrixUninit(m, m),
		l:       ws.MatrixUninit(m, m),
		g:       ws.MatrixUninit(m, m),
		t:       ws.MatrixUninit(m, m),
		u:       ws.MatrixUninit(m, m),
		hh:      ws.MatrixUninit(m, m),
		ll:      ws.MatrixUninit(m, m),
		tl:      ws.MatrixUninit(m, m),
		inv:     ws.MatrixUninit(m, m),
		scratch: ws.MatrixUninit(m, m),
		lu:      ws.LU(m),
		rowSums: ws.Vector(m),
	}
}

// release hands every buffer except g (the caller's result) back to the
// workspace.
func (s *logRedState) release() {
	s.ws.Release(s.id, s.h, s.l, s.t, s.u, s.hh, s.ll, s.tl, s.inv, s.scratch)
	s.ws.ReleaseLU(s.lu)
	s.ws.ReleaseVector(s.rowSums)
}

// start initializes the kernels from the DTMC blocks (b0 up, b1 local, b2
// down): h = (I−b1)⁻¹·b0, l = (I−b1)⁻¹·b2, g = l, t = h.
func (s *logRedState) start(b0, b1, b2 *mat.Matrix) error {
	s.scratch.SubInto(s.id, b1)
	if err := mat.FactorizeInto(s.lu, s.scratch); err != nil {
		return err
	}
	s.lu.InverseInto(s.inv)
	s.h.MulInto(s.inv, b0)
	s.l.MulInto(s.inv, b2)
	s.l.CloneInto(s.g)
	s.h.CloneInto(s.t)
	return nil
}

// step runs one reduction iteration in place, with zero heap allocations:
// every temporary is a preallocated buffer, and t advances by ping-ponging
// with scratch. done reports convergence (G's defect below 1e-13, or a
// negligible update for transient chains).
func (s *logRedState) step() (done bool, err error) {
	mat.MulIntoWorkers(s.u, s.h, s.l, s.workers)
	mat.MulIntoWorkers(s.scratch, s.l, s.h, s.workers)
	s.u.AddInPlace(s.scratch)
	mat.MulIntoWorkers(s.hh, s.h, s.h, s.workers)
	mat.MulIntoWorkers(s.ll, s.l, s.l, s.workers)
	s.scratch.SubInto(s.id, s.u)
	if err := mat.FactorizeInto(s.lu, s.scratch); err != nil {
		return false, err
	}
	s.lu.InverseInto(s.inv)
	mat.MulIntoWorkers(s.h, s.inv, s.hh, s.workers)
	mat.MulIntoWorkers(s.l, s.inv, s.ll, s.workers)
	mat.MulIntoWorkers(s.tl, s.t, s.l, s.workers) // shared by the G update and the step criterion below
	s.g.AddInPlace(s.tl)
	// For a recurrent QBD the row sums of G approach one; the defect
	// measures remaining mass. For transient chains this never reaches
	// zero, so also stop when the update becomes negligible.
	defect := 0.0
	for _, rs := range s.g.RowSumsInto(s.rowSums) {
		if d := math.Abs(1 - rs); d > defect {
			defect = d
		}
	}
	s.defect = defect
	if defect < 1e-13 || s.tl.MaxAbs() < 1e-15 {
		return true, nil
	}
	mat.MulIntoWorkers(s.scratch, s.t, s.h, s.workers)
	s.t, s.scratch = s.scratch, s.t
	return false, nil
}

// logReduction runs the Latouche–Ramaswami logarithmic-reduction algorithm on
// the DTMC blocks (b0 up, b1 local, b2 down). It also reports the number of
// iterations taken, which the op-count regression tests use to pin the exact
// multiplication budget of this innermost solver loop (8·iters + 1 matrix
// products).
func logReduction(b0, b1, b2 *mat.Matrix) (*mat.Matrix, int, error) {
	g, iters, _, err := logReductionObs(b0, b1, b2, nil, nil, 1)
	return g, iters, err
}

// logReductionObs is logReduction drawing its working set from ws (nil ws
// allocates), reporting the per-iteration residual to o (nil o skips all
// reporting — the unobserved loop stays allocation-free), and fanning its
// block-row multiplies over workers goroutines (<= 1 serial; results are
// bit-identical for every worker count). The returned G is not handed back
// to ws; every other buffer is released for reuse by later solver stages.
// residual is G's defect after the final iteration.
func logReductionObs(b0, b1, b2 *mat.Matrix, ws *mat.Workspace, o obs.Observer, workers int) (g *mat.Matrix, iters int, residual float64, err error) {
	s := newLogRedState(b0.Rows(), ws, workers)
	defer s.release()
	if err := s.start(b0, b1, b2); err != nil {
		return nil, 0, 0, fmt.Errorf("qbd: logarithmic reduction: %w", err)
	}
	const maxIter = 200
	for iter := 0; iter < maxIter; iter++ {
		done, err := s.step()
		if o != nil {
			o.RIteration(iter+1, s.defect)
		}
		if err != nil {
			return nil, iter, s.defect, fmt.Errorf("qbd: logarithmic reduction step %d: %w", iter, err)
		}
		if done {
			return s.g, iter + 1, s.defect, nil
		}
	}
	return nil, maxIter, s.defect, fmt.Errorf("%w: logarithmic reduction after %d iterations", ErrNoConvergence, maxIter)
}

// R computes the rate matrix R, the minimal nonnegative solution of
// A0 + R·A1 + R²·A2 = 0, via R = A0·(−(A1 + A0·G))⁻¹. The spectral radius of
// R is < 1 exactly when the process is stable.
func (p *Process) R() (*mat.Matrix, error) { return p.rWS(nil, nil) }

// rWS is R with an optional workspace for every intermediate and an optional
// observer receiving the convergence trace plus a completion report with
// sp(R) (nil is valid for both; with a nil observer no timing or spectral-
// radius work runs).
func (p *Process) rWS(ws *mat.Workspace, o obs.Observer) (*mat.Matrix, error) {
	stable, err := p.Stable()
	if err != nil {
		return nil, err
	}
	if !stable {
		up, down, _ := p.Drift()
		return nil, fmt.Errorf("%w: upward drift %.6g >= downward drift %.6g", ErrUnstable, up, down)
	}
	g, iters, residual, err := p.gWS(ws, o)
	if err != nil {
		return nil, err
	}
	m := p.order
	sA0, _ := p.sparseBlocks()
	u := ws.MatrixUninit(m, m)
	if sA0 != nil {
		sA0.MulInto(u, g)
	} else {
		u.MulInto(p.a0, g)
	}
	u.AddInPlace(p.a1)
	u.Scale(-1)
	lu := ws.LU(m)
	if err := mat.FactorizeInto(lu, u); err != nil {
		ws.Release(g, u)
		ws.ReleaseLU(lu)
		return nil, fmt.Errorf("qbd: R: %w", err)
	}
	inv := ws.MatrixUninit(m, m)
	lu.InverseInto(inv)
	r := mat.New(m, m) // escapes into the Solution; never pooled
	if sA0 != nil {
		sA0.MulInto(r, inv)
	} else {
		r.MulInto(p.a0, inv)
	}
	ws.Release(g, u, inv)
	ws.ReleaseLU(lu)
	// Clamp round-off negatives: R is nonnegative in exact arithmetic.
	for i := 0; i < r.Rows(); i++ {
		for j := 0; j < r.Cols(); j++ {
			if v := r.At(i, j); v < 0 {
				if v < -1e-9 {
					return nil, fmt.Errorf("%w: R has negative entry %g", ErrNoConvergence, v)
				}
				r.Set(i, j, 0)
			}
		}
	}
	if o != nil {
		o.RSolved(iters, residual, mat.SpectralRadius(r, 1e-12, 10000))
	}
	return r, nil
}

// RByIteration computes R by the classical functional iteration
// R ← −(A0 + R²A2)·A1⁻¹, mainly as an independent cross-check of the
// logarithmic-reduction path. tol is the max-abs change stopping criterion.
// The loop runs on four preallocated buffers (R, R², the assembled update,
// and a difference scratch) with zero allocations per iteration.
func (p *Process) RByIteration(tol float64, maxIter int) (*mat.Matrix, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 100000
	}
	invA1, err := mat.Inverse(p.a1)
	if err != nil {
		return nil, fmt.Errorf("qbd: RByIteration: %w", err)
	}
	m := p.order
	r := mat.New(m, m)
	rr := mat.New(m, m)
	next := mat.New(m, m)
	diff := mat.New(m, m)
	for iter := 0; iter < maxIter; iter++ {
		rr.MulInto(r, r)
		diff.MulInto(rr, p.a2)
		diff.AddInPlace(p.a0)
		next.MulInto(diff, invA1)
		next.Scale(-1)
		diff.SubInto(next, r)
		d := diff.MaxAbs()
		r, next = next, r
		if d < tol {
			return r, nil
		}
	}
	return nil, fmt.Errorf("%w: functional iteration after %d steps", ErrNoConvergence, maxIter)
}
