package qbd

import (
	"fmt"
	"time"

	"bgperf/internal/mat"
	"bgperf/internal/obs"
)

// Boundary describes the level-dependent boundary portion of a QBD: levels
// 0..B with arbitrary (possibly growing) sizes, after which the repeating
// blocks (A0, A1, A2) of a Process take over at level B+1.
type Boundary struct {
	// Local[j] is the within-level generator block of boundary level j
	// (including the diagonal), j = 0..B.
	Local []*mat.Matrix
	// Up[j] carries the rates from boundary level j to level j+1, j = 0..B.
	// Up[B] leads into the first repeating level and must therefore have
	// Process.Order() columns.
	Up []*mat.Matrix
	// Down[j] carries the rates from boundary level j to level j−1, j = 1..B.
	// Down[0] is ignored and may be nil.
	Down []*mat.Matrix
	// RepDown carries the rates from the first repeating level (B+1) into
	// boundary level B. When nil, the repeating A2 is used, which requires
	// level B to have the repeating size.
	RepDown *mat.Matrix
}

// levels returns the number of boundary levels B+1.
func (b Boundary) levels() int { return len(b.Local) }

func (b Boundary) validate(p *Process) error {
	nb := b.levels()
	if nb == 0 {
		return fmt.Errorf("%w: boundary needs at least level 0", ErrInvalid)
	}
	if len(b.Up) != nb {
		return fmt.Errorf("%w: %d Up blocks for %d boundary levels", ErrInvalid, len(b.Up), nb)
	}
	if len(b.Down) != nb {
		return fmt.Errorf("%w: %d Down blocks for %d boundary levels", ErrInvalid, len(b.Down), nb)
	}
	for j := 0; j < nb; j++ {
		n := b.Local[j].Rows()
		if b.Local[j].Cols() != n {
			return fmt.Errorf("%w: Local[%d] is %dx%d", ErrInvalid, j, n, b.Local[j].Cols())
		}
		wantUpCols := p.Order()
		if j+1 < nb {
			wantUpCols = b.Local[j+1].Rows()
		}
		if b.Up[j].Rows() != n || b.Up[j].Cols() != wantUpCols {
			return fmt.Errorf("%w: Up[%d] is %dx%d, want %dx%d", ErrInvalid, j, b.Up[j].Rows(), b.Up[j].Cols(), n, wantUpCols)
		}
		if j > 0 {
			prev := b.Local[j-1].Rows()
			if b.Down[j] == nil || b.Down[j].Rows() != n || b.Down[j].Cols() != prev {
				return fmt.Errorf("%w: Down[%d] must be %dx%d", ErrInvalid, j, n, prev)
			}
		}
	}
	repDown := b.RepDown
	if repDown == nil {
		if b.Local[nb-1].Rows() != p.Order() {
			return fmt.Errorf("%w: implicit RepDown needs boundary level %d of size %d, got %d",
				ErrInvalid, nb-1, p.Order(), b.Local[nb-1].Rows())
		}
	} else if repDown.Rows() != p.Order() || repDown.Cols() != b.Local[nb-1].Rows() {
		return fmt.Errorf("%w: RepDown is %dx%d, want %dx%d", ErrInvalid,
			repDown.Rows(), repDown.Cols(), p.Order(), b.Local[nb-1].Rows())
	}
	return nil
}

// Solution is the stationary distribution of a QBD with boundary: explicit
// probability vectors for the boundary levels, the first repeating level, and
// the rate matrix R generating all further levels geometrically.
type Solution struct {
	// BoundaryPi[j] is π_j for boundary level j (j = 0..B).
	BoundaryPi [][]float64
	// RepPi is π_{B+1}, the first repeating level.
	RepPi []float64
	// R is the rate matrix: π_{B+1+k} = RepPi · R^k.
	R *mat.Matrix

	firstRep int         // index of the first repeating level (B+1)
	sumR     *mat.Matrix // (I−R)⁻¹, cached

	// Geometric-tail moment vectors, computed once at Solve time: every
	// metric assembled from the tail (core.maskedMass probes them per
	// masked weight) reads the cached copies instead of redoing the
	// matrix-power algebra.
	tailSum []float64 // Σ_k RepPi·R^k
	tailW   []float64 // Σ_k k·RepPi·R^k
	tailW2  []float64 // Σ_k k²·RepPi·R^k
}

// Solve computes the stationary distribution of the QBD with the given
// boundary by linear level reduction — block LU elimination on the block-
// tridiagonal balance equations, O(Σ n_j³) instead of a dense O((Σ n_j)³)
// global solve. It returns ErrUnstable for non-positive-recurrent processes.
//
// All scratch matrices — the logarithmic-reduction working set, the per-level
// fold of the backward sweep, and the tail-moment algebra — come from one
// mat.Workspace owned by the call, so buffers freed by one stage are reused
// by the next instead of allocated fresh.
func Solve(b Boundary, p *Process) (*Solution, error) {
	return SolveObserved(b, p, nil)
}

// SolveObserved is Solve with an optional obs.Observer (nil is valid and
// reverts to the uninstrumented fast path — no clocks are read and no
// reports are made). With an observer attached it reports the R-solve and
// boundary-solve stage durations, the logarithmic-reduction convergence
// trace, sp(R), and the workspace pool statistics of the whole solve.
func SolveObserved(b Boundary, p *Process, o obs.Observer) (*Solution, error) {
	if err := b.validate(p); err != nil {
		return nil, err
	}
	ws := mat.AcquireWorkspace()
	defer mat.ReleaseWorkspace(ws)
	var t0 time.Time
	if o != nil {
		t0 = time.Now()
	}
	r, err := p.rWS(ws, o)
	if o != nil {
		o.StageDone(obs.StageRSolve, time.Since(t0))
		defer func() {
			s := ws.Stats()
			o.WorkspaceStats(obs.WorkspaceStats{
				MatrixHits: s.MatrixHits, MatrixMisses: s.MatrixMisses,
				VectorHits: s.VectorHits, VectorMisses: s.VectorMisses,
				LUHits: s.LUHits, LUMisses: s.LUMisses,
			})
		}()
		t0 = time.Now()
		defer func() { o.StageDone(obs.StageBoundary, time.Since(t0)) }()
	}
	if err != nil {
		return nil, err
	}
	m := p.Order()
	sumR := mat.New(m, m) // cached on the Solution; never pooled
	{
		idMinusR := ws.MatrixUninit(m, m).ScaleInto(r, -1)
		for i := 0; i < m; i++ {
			idMinusR.Add(i, i, 1)
		}
		lu := ws.LU(m)
		if err := mat.FactorizeInto(lu, idMinusR); err != nil {
			return nil, fmt.Errorf("qbd: (I−R) singular: %w", err)
		}
		lu.InverseInto(sumR)
		ws.Release(idMinusR)
		ws.ReleaseLU(lu)
	}

	nb := b.levels()
	repDown := b.RepDown
	if repDown == nil {
		repDown = p.a2
	}

	// Backward sweep: fold each level's equation into the one below.
	// S_{B+1} = A1 + R·A2 (the censored top level); then
	// S_j = Local_j + Up_j·(−S_{j+1})⁻¹·Down_{j+1}. Each folded level also
	// yields the propagation matrix T_{j+1} = Up_j·(−S_{j+1})⁻¹ used by the
	// forward sweep π_{j+1} = π_j·T_{j+1}. The fold ping-pongs workspace
	// buffers: each level releases its fold before acquiring the next, so
	// same-shaped levels reuse the same memory.
	sTop := ws.MatrixUninit(m, m)
	if _, sA2 := p.sparseBlocks(); sA2 != nil {
		sA2.MulRightInto(sTop, r)
	} else {
		sTop.MulInto(r, p.a2)
	}
	sTop.AddInPlace(p.a1)
	prop := make([]*mat.Matrix, nb+1) // prop[j]: π_j = π_{j−1}·prop[j], j ≥ 1
	s := sTop
	for j := nb; j >= 1; j-- {
		n := s.Rows()
		neg := ws.MatrixUninit(n, n).ScaleInto(s, -1)
		lu := ws.LU(n)
		if err := mat.FactorizeInto(lu, neg); err != nil {
			return nil, fmt.Errorf("qbd: level reduction at %d: %w", j, err)
		}
		negInv := ws.MatrixUninit(n, n)
		lu.InverseInto(negInv)
		up := b.Up[j-1]
		// Held until the forward sweep below has consumed it, then released.
		// Up is structurally sparse (one arrival block per phase group), so
		// the zero-skipping dense kernel makes this product cheap.
		prop[j] = ws.MatrixUninit(up.Rows(), n)
		prop[j].MulInto(up, negInv)
		down := repDown
		if j < nb {
			down = b.Down[j]
		}
		local := b.Local[j-1]
		sNext := ws.MatrixUninit(local.Rows(), local.Cols())
		// The fold T·Down is dense·sparse — Down carries one service block
		// per phase group — so the CSR right-multiply kernel turns the n³
		// product into O(n·nnz) when the block is big and sparse enough.
		if sd := sparseDown(down); sd != nil {
			sd.MulRightInto(sNext, prop[j])
		} else {
			sNext.MulInto(prop[j], down)
		}
		sNext.AddInPlace(local)
		ws.Release(neg, negInv, s)
		ws.ReleaseLU(lu)
		s = sNext
	}

	// π_0 spans the one-dimensional left null space of S_0.
	pi0, err := leftNullVector(s)
	if err != nil {
		return nil, fmt.Errorf("qbd: boundary level 0: %w", err)
	}
	ws.Release(s)

	// Forward sweep and global normalization. π_{j+1} = π_j·T_{j+1} is a
	// row-vector product, so no transposition is needed.
	sol := &Solution{R: r, firstRep: nb, sumR: sumR}
	sol.BoundaryPi = make([][]float64, nb)
	cur := pi0
	total := 0.0
	for j := 0; j < nb; j++ {
		sol.BoundaryPi[j] = cur
		total += mat.Sum(cur)
		next := make([]float64, prop[j+1].Cols()) // persists in the Solution
		cur = prop[j+1].VecMulInto(next, cur)
	}
	ws.Release(prop[1:]...)
	sol.RepPi = cur
	total += mat.Dot(cur, sumR.RowSums())
	if total <= 0 {
		return nil, fmt.Errorf("qbd: nonpositive boundary mass %g", total)
	}
	for j := range sol.BoundaryPi {
		sol.BoundaryPi[j] = clampProbs(mat.ScaleVec(sol.BoundaryPi[j], 1/total))
	}
	sol.RepPi = clampProbs(mat.ScaleVec(sol.RepPi, 1/total))
	sol.cacheTailMoments(ws)
	return sol, nil
}

// sparseDown returns a CSR snapshot of a boundary down block when the sparse
// right-multiply kernel wins (large block, low density — the same gates as the
// repeating-block snapshots), or nil to keep the dense kernel. The sparse
// kernel is bit-identical to the dense one (pinned in internal/mat), so the
// choice never changes results.
func sparseDown(down *mat.Matrix) *mat.Sparse {
	if down.Rows() < sparseMinOrder {
		return nil
	}
	if s := mat.NewSparse(down); s.Density() <= sparseMaxDensity {
		return s
	}
	return nil
}

// cacheTailMoments precomputes the three geometric-tail moment vectors from
// R, (I−R)⁻¹, and RepPi, using ws for every matrix intermediate.
func (s *Solution) cacheTailMoments(ws *mat.Workspace) {
	m := s.R.Rows()
	// Σ_k RepPi·R^k = RepPi·(I−R)⁻¹.
	s.tailSum = s.sumR.VecMulInto(make([]float64, m), s.RepPi)

	// Σ_k k·RepPi·R^k = RepPi·(I−R)⁻²·R.
	sumR2 := ws.MatrixUninit(m, m)
	sumR2.MulInto(s.sumR, s.sumR)
	v := ws.Vector(m)
	sumR2.VecMulInto(v, s.RepPi)
	s.tailW = s.R.VecMulInto(make([]float64, m), v)

	// Σ_k k²·RepPi·R^k = RepPi·R·(I+R)·(I−R)⁻³.
	cube := ws.MatrixUninit(m, m)
	cube.MulInto(sumR2, s.sumR)
	ipr := s.R.CloneInto(ws.MatrixUninit(m, m))
	for i := 0; i < m; i++ {
		ipr.Add(i, i, 1)
	}
	rIpr := ws.MatrixUninit(m, m)
	rIpr.MulInto(s.R, ipr)
	factor := ws.MatrixUninit(m, m)
	factor.MulInto(rIpr, cube)
	s.tailW2 = factor.VecMulInto(make([]float64, m), s.RepPi)

	ws.Release(sumR2, cube, ipr, rIpr, factor)
	ws.ReleaseVector(v)
}

// leftNullVector returns the (nonnegative, sum-1) left null vector of the
// generator-like matrix s, whose rank defect is one for an irreducible
// censored chain.
func leftNullVector(s *mat.Matrix) ([]float64, error) {
	n := s.Rows()
	a := s.Clone()
	for i := 0; i < n; i++ {
		a.Set(i, n-1, 1)
	}
	rhs := make([]float64, n)
	rhs[n-1] = 1
	x, err := mat.SolveLeft(a, rhs)
	if err != nil {
		return nil, err
	}
	var sum float64
	for i, v := range x {
		if v < 0 {
			if v < -1e-8 {
				return nil, fmt.Errorf("negative null-vector mass %g at %d", v, i)
			}
			x[i] = 0
			v = 0
		}
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("zero null vector")
	}
	return mat.ScaleVec(x, 1/sum), nil
}

// clampProbs zeroes tiny negative round-off in stationary masses.
func clampProbs(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if v < 0 && v > -1e-10 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// FirstRepLevel returns the index of the first repeating level (B+1).
func (s *Solution) FirstRepLevel() int { return s.firstRep }

// LevelPi returns the stationary vector of an arbitrary level, computing
// RepPi·R^k on demand for repeating levels. The walk ping-pongs two buffers;
// π·R is a row-vector product, so no transposition happens.
func (s *Solution) LevelPi(level int) []float64 {
	if level < s.firstRep {
		out := make([]float64, len(s.BoundaryPi[level]))
		copy(out, s.BoundaryPi[level])
		return out
	}
	v := make([]float64, len(s.RepPi))
	copy(v, s.RepPi)
	if level == s.firstRep {
		return v
	}
	w := make([]float64, len(v))
	for k := s.firstRep; k < level; k++ {
		s.R.VecMulInto(w, v)
		v, w = w, v
	}
	return v
}

// TailSum returns Σ_{k≥0} RepPi·R^k = RepPi·(I−R)⁻¹, the total probability
// vector of all repeating levels by phase.
func (s *Solution) TailSum() []float64 { return copyVec(s.tailSum) }

// TailWeightedSum returns Σ_{k≥0} k·RepPi·R^k = RepPi·R·(I−R)⁻², used for
// first moments over the geometric tail.
func (s *Solution) TailWeightedSum() []float64 { return copyVec(s.tailW) }

// TailSquareWeightedSum returns Σ_{k≥0} k²·RepPi·R^k = RepPi·R(I+R)·(I−R)⁻³,
// used for second moments over the geometric tail.
func (s *Solution) TailSquareWeightedSum() []float64 { return copyVec(s.tailW2) }

func copyVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// TotalMass returns the total probability mass (1 up to numerical error).
func (s *Solution) TotalMass() float64 {
	total := 0.0
	for _, pi := range s.BoundaryPi {
		total += mat.Sum(pi)
	}
	return total + mat.Sum(s.tailSum)
}

// MeanLevel returns E[level] — for a queueing chain whose level counts
// customers, the mean number in system.
func (s *Solution) MeanLevel() float64 {
	var mean float64
	for j, pi := range s.BoundaryPi {
		mean += float64(j) * mat.Sum(pi)
	}
	mean += float64(s.firstRep) * mat.Sum(s.tailSum)
	mean += mat.Sum(s.tailW)
	return mean
}

// LevelMass returns the total probability of one level.
func (s *Solution) LevelMass(level int) float64 {
	return mat.Sum(s.LevelPi(level))
}
