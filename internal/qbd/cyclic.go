package qbd

import (
	"fmt"
	"math"

	"bgperf/internal/mat"
	"bgperf/internal/obs"
)

// RScheme selects the matrix iteration used to compute the first-passage
// matrix G (and from it R). Both schemes converge quadratically to the same
// minimal solution; they differ in per-iteration cost and in the residual
// they expose to the convergence trace.
type RScheme int

const (
	// RSchemeCyclic is the cyclic-reduction algorithm of Bini and Meini —
	// the default. Each iteration performs four matrix products plus one
	// factorization with two multi-RHS solves, against logarithmic
	// reduction's eight products plus a factorization and inverse, so it is
	// the faster scheme on every block size.
	RSchemeCyclic RScheme = iota
	// RSchemeLogarithmic is the logarithmic-reduction algorithm of Latouche
	// and Ramaswami, the scheme the paper cites ([10]). Kept both as an
	// independent cross-check of the default (the two agree to 1e-12 on
	// every generator configuration, pinned by tests) and for convergence
	// traces in G-defect form.
	RSchemeLogarithmic
)

// String returns the scheme name used in diagnostics and CLI flags.
func (s RScheme) String() string {
	switch s {
	case RSchemeCyclic:
		return "cyclic"
	case RSchemeLogarithmic:
		return "logarithmic"
	default:
		return fmt.Sprintf("RScheme(%d)", int(s))
	}
}

// ParseRScheme converts a CLI/string form back into an RScheme.
func ParseRScheme(s string) (RScheme, error) {
	switch s {
	case "cyclic":
		return RSchemeCyclic, nil
	case "logarithmic":
		return RSchemeLogarithmic, nil
	}
	return 0, fmt.Errorf("%w: unknown R scheme %q (want cyclic or logarithmic)", ErrInvalid, s)
}

// Tuning selects numerical strategy knobs for a Process's solves. The zero
// value is the default configuration: cyclic reduction, serial multiplies.
// Every tuning produces bit-identical metrics for a given Scheme — Workers
// only changes wall-clock (pinned by tests).
type Tuning struct {
	// Scheme is the G/R iteration to run.
	Scheme RScheme
	// Workers bounds the goroutine fan-out of the block-row-banded matrix
	// multiplies inside the iteration; values <= 1 run serially. Results are
	// bit-identical for every worker count.
	Workers int
}

// Tune installs t for all subsequent solves on p. It must not be called
// concurrently with a solve.
func (p *Process) Tune(t Tuning) { p.tuning = t }

// Tuning returns the currently installed tuning.
func (p *Process) Tuning() Tuning { return p.tuning }

// MulBudget returns the exact number of MulCount-visible matrix products a
// convergent run of the scheme performs over iters iterations — the op
// budget the regression tests pin so accidental extra products in the
// innermost solver loops fail fast. LU factorizations and triangular solves
// are not matrix products and are not counted.
//
// Logarithmic reduction: eight products per iteration (two for u, h², l²,
// the two inverse applications, the shared t·l, and the t·h advance —
// skipped on the final iteration) plus the two pre-loop kernel products:
// 8·iters + 1. Cyclic reduction: four products per iteration (the shared
// up·S·down, down·S·up, and the two block squarings) and none outside the
// loop — the final G assembly is a triangular solve: 4·iters.
func MulBudget(scheme RScheme, iters int) int64 {
	switch scheme {
	case RSchemeCyclic:
		return int64(4 * iters)
	case RSchemeLogarithmic:
		return int64(8*iters + 1)
	}
	panic(fmt.Sprintf("qbd: MulBudget of unknown scheme %d", int(scheme)))
}

// crTol is the stopping threshold on min(‖up‖∞, ‖down‖∞). The vanishing
// iterate decays multiplicatively (quadratically in exact arithmetic, and
// rounding cannot stall a product of substochastic factors), so the
// threshold is always reached and overshooting it costs at most one cheap
// extra iteration while guaranteeing G to near machine precision.
const crTol = 1e-14

// crState is the preallocated working set of one cyclic-reduction run: the
// three block iterates, the censored-level accumulator, the two solve
// targets, a factorization scratch, a ping-pong buffer, and a reusable LU.
// After newCRState, step performs zero heap allocations (pinned by
// TestCyclicReductionStepZeroAlloc).
type crState struct {
	ws      *mat.Workspace
	workers int

	id      *mat.Matrix // I, fixed
	down    *mat.Matrix // A₋₁ iterate (level-down block)
	local   *mat.Matrix // A₀ iterate (within-level block)
	up      *mat.Matrix // A₁ iterate (level-up block)
	hat     *mat.Matrix // Â₀, the censored first-level accumulator
	t1, t2  *mat.Matrix // S·down, S·up with S = (I − local)⁻¹
	work    *mat.Matrix // I − local / I − hat factorization target
	scratch *mat.Matrix // product target / ping-pong partner
	lu      *mat.LU
	rowSums []float64

	// residual is min(‖up‖∞, ‖down‖∞) after the latest step — the quantity
	// the convergence trace reports. Which block vanishes identifies the
	// drift: up for recurrent chains, down for transient ones.
	residual float64
}

// newCRState acquires the working set for order-m blocks from ws (nil ws
// allocates directly).
func newCRState(m int, ws *mat.Workspace, workers int) *crState {
	return &crState{
		ws:      ws,
		workers: workers,
		// Every buffer but the identity is fully overwritten before its first
		// read (start clones the inputs; the solve and product targets are
		// pure destinations), so the working set skips acquisition zeroing.
		id:      ws.Identity(m),
		down:    ws.MatrixUninit(m, m),
		local:   ws.MatrixUninit(m, m),
		up:      ws.MatrixUninit(m, m),
		hat:     ws.MatrixUninit(m, m),
		t1:      ws.MatrixUninit(m, m),
		t2:      ws.MatrixUninit(m, m),
		work:    ws.MatrixUninit(m, m),
		scratch: ws.MatrixUninit(m, m),
		lu:      ws.LU(m),
		rowSums: ws.Vector(m),
	}
}

// release hands every buffer back to the workspace.
func (s *crState) release() {
	s.ws.Release(s.id, s.down, s.local, s.up, s.hat, s.t1, s.t2, s.work, s.scratch)
	s.ws.ReleaseLU(s.lu)
	s.ws.ReleaseVector(s.rowSums)
}

// start copies the DTMC blocks (b0 up, b1 local, b2 down) into the iterates;
// the accumulator starts as the local block. The inputs are never written.
func (s *crState) start(b0, b1, b2 *mat.Matrix) {
	b2.CloneInto(s.down)
	b1.CloneInto(s.local)
	b0.CloneInto(s.up)
	b1.CloneInto(s.hat)
}

// step runs one cyclic-reduction iteration in place, with zero heap
// allocations. With S = (I − local)⁻¹ applied by two multi-RHS solves:
//
//	local' = local + up·S·down + down·S·up
//	hat'   = hat + up·S·down   (shares the up·S·down product with local')
//	down'  = down·S·down
//	up'    = up·S·up
//
// done reports convergence: the drift-determined iterate has vanished and
// the censored accumulator is final.
func (s *crState) step() (done bool, err error) {
	s.work.SubInto(s.id, s.local)
	if err := mat.FactorizeInto(s.lu, s.work); err != nil {
		return false, err
	}
	s.lu.SolveMatInto(s.t1, s.down)
	s.lu.SolveMatInto(s.t2, s.up)
	mat.MulIntoWorkers(s.scratch, s.up, s.t1, s.workers) // up·S·down
	s.local.AddInPlace(s.scratch)
	s.hat.AddInPlace(s.scratch)
	mat.MulIntoWorkers(s.scratch, s.down, s.t2, s.workers) // down·S·up
	s.local.AddInPlace(s.scratch)
	mat.MulIntoWorkers(s.scratch, s.down, s.t1, s.workers) // down·S·down
	s.down, s.scratch = s.scratch, s.down
	mat.MulIntoWorkers(s.scratch, s.up, s.t2, s.workers) // up·S·up
	s.up, s.scratch = s.scratch, s.up
	s.residual = math.Min(s.infNorm(s.down), s.infNorm(s.up))
	return s.residual < crTol, nil
}

// infNorm computes ‖m‖∞ (max absolute row sum) on the preallocated row-sum
// buffer.
func (s *crState) infNorm(m *mat.Matrix) float64 {
	norm := 0.0
	for _, rs := range m.RowSumsInto(s.rowSums) {
		if a := math.Abs(rs); a > norm {
			norm = a
		}
	}
	return norm
}

// cyclicReduction runs the Bini–Meini cyclic-reduction algorithm on the DTMC
// blocks (b0 up, b1 local, b2 down), returning G and the iteration count the
// op-budget regression tests pin (MulBudget(RSchemeCyclic, iters) products).
func cyclicReduction(b0, b1, b2 *mat.Matrix) (*mat.Matrix, int, error) {
	g, iters, _, err := cyclicReductionObs(b0, b1, b2, nil, nil, 1)
	return g, iters, err
}

// cyclicReductionObs is cyclicReduction drawing its working set from ws (nil
// ws allocates), reporting the per-iteration residual min(‖up‖∞, ‖down‖∞)
// to o (nil o skips all reporting), and fanning its block-row multiplies
// over workers goroutines (<= 1 serial; results are bit-identical for every
// worker count). The returned G is not handed back to ws. residual is G's
// defect (max |1 − rowsum|), the same quantity the logarithmic-reduction
// path reports, so RSolved reports are comparable across schemes.
func cyclicReductionObs(b0, b1, b2 *mat.Matrix, ws *mat.Workspace, o obs.Observer, workers int) (g *mat.Matrix, iters int, residual float64, err error) {
	s := newCRState(b0.Rows(), ws, workers)
	defer s.release()
	s.start(b0, b1, b2)
	const maxIter = 200
	for iter := 0; iter < maxIter; iter++ {
		done, err := s.step()
		if o != nil {
			o.RIteration(iter+1, s.residual)
		}
		if err != nil {
			return nil, iter, s.residual, fmt.Errorf("qbd: cyclic reduction step %d: %w", iter, err)
		}
		if !done {
			continue
		}
		// G = (I − Â₀)⁻¹·b2: the first repeating level, censored on itself,
		// reaches level 0 by any number of hat-loops followed by one down
		// step.
		s.work.SubInto(s.id, s.hat)
		if err := mat.FactorizeInto(s.lu, s.work); err != nil {
			return nil, iter + 1, s.residual, fmt.Errorf("qbd: cyclic reduction: censored level: %w", err)
		}
		g = s.ws.MatrixUninit(b0.Rows(), b0.Cols())
		s.lu.SolveMatInto(g, b2)
		defect := 0.0
		for _, rs := range g.RowSumsInto(s.rowSums) {
			if d := math.Abs(1 - rs); d > defect {
				defect = d
			}
		}
		return g, iter + 1, defect, nil
	}
	return nil, maxIter, s.residual, fmt.Errorf("%w: cyclic reduction after %d iterations", ErrNoConvergence, maxIter)
}
