package qbd

import (
	"math"
	"testing"

	"bgperf/internal/mat"
)

// logRedBlocks returns a small recurrent uniformized QBD (DTMC blocks):
// nonnegative, rows of b0+b1+b2 summing to one, downward drift dominant.
func logRedBlocks() (b0, b1, b2 *mat.Matrix) {
	b0 = mat.MustFromRows([][]float64{{0.1, 0.1}, {0.05, 0.1}})
	b1 = mat.MustFromRows([][]float64{{0.2, 0.2}, {0.15, 0.2}})
	b2 = mat.MustFromRows([][]float64{{0.3, 0.1}, {0.2, 0.3}})
	return b0, b1, b2
}

// TestLogReductionMulBudget is the regression test for the redundant
// t·l product the loop used to compute twice per iteration (once for the G
// update, again for the step criterion). The fixed loop performs exactly
// eight matrix-matrix products per iteration (two for u, h², l², the two
// inverse applications, the shared t·l, and the t·h advance — the latter
// skipped on the final iteration) plus the two pre-loop kernel products:
// 8·iters + 2 − 1. The buggy version needed 9·iters + 1.
func TestLogReductionMulBudget(t *testing.T) {
	b0, b1, b2 := logRedBlocks()
	mat.ResetMulCount()
	g, iters, err := logReduction(b0, b1, b2)
	muls := mat.MulCount()
	if err != nil {
		t.Fatal(err)
	}
	if iters < 1 {
		t.Fatalf("expected at least one iteration, got %d", iters)
	}
	want := MulBudget(RSchemeLogarithmic, iters)
	if muls != want {
		t.Fatalf("logReduction used %d matrix products over %d iterations, want exactly %d (one t·l per iteration)",
			muls, iters, want)
	}
	// Sanity: G of a recurrent QBD is stochastic.
	for i, s := range g.RowSums() {
		if math.Abs(s-1) > 1e-10 {
			t.Fatalf("G row %d sums to %g, want 1", i, s)
		}
	}
}

// TestLogReductionMatchesProcessG checks the counted path is the same one
// Process.G uses, so the budget above governs every solve.
func TestLogReductionMatchesProcessG(t *testing.T) {
	// A CTMC QBD whose uniformization is well-conditioned.
	a0 := mat.MustFromRows([][]float64{{0.4, 0}, {0.1, 0.2}})
	a1 := mat.MustFromRows([][]float64{{-2.4, 0.5}, {0.3, -2.0}})
	a2 := mat.MustFromRows([][]float64{{1.0, 0.5}, {0.4, 1.0}})
	p, err := New(a0, a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.G()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range g.RowSums() {
		if math.Abs(s-1) > 1e-10 {
			t.Fatalf("G row %d sums to %g, want 1", i, s)
		}
	}
}
