package qbd

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bgperf/internal/mat"
)

// mm1 builds the M/M/1 queue as a degenerate one-phase QBD.
func mm1(lambda, mu float64) (*Process, Boundary) {
	p, err := New(
		mat.MustFromRows([][]float64{{lambda}}),
		mat.MustFromRows([][]float64{{-(lambda + mu)}}),
		mat.MustFromRows([][]float64{{mu}}),
	)
	if err != nil {
		panic(err)
	}
	b := Boundary{
		Local: []*mat.Matrix{mat.MustFromRows([][]float64{{-lambda}})},
		Up:    []*mat.Matrix{mat.MustFromRows([][]float64{{lambda}})},
		Down:  []*mat.Matrix{nil},
	}
	return p, b
}

// me2q builds the M/E2/1 queue: Poisson(λ) arrivals, Erlang-2 service with
// stage rate 2µ. Phases track the service stage; boundary level 0 is the
// single empty state, exercising rectangular boundary blocks.
func me2q(lambda, mu float64) (*Process, Boundary) {
	s := 2 * mu
	p, err := New(
		mat.MustFromRows([][]float64{{lambda, 0}, {0, lambda}}),
		mat.MustFromRows([][]float64{{-(lambda + s), s}, {0, -(lambda + s)}}),
		mat.MustFromRows([][]float64{{0, 0}, {s, 0}}),
	)
	if err != nil {
		panic(err)
	}
	b := Boundary{
		Local:   []*mat.Matrix{mat.MustFromRows([][]float64{{-lambda}})},
		Up:      []*mat.Matrix{mat.MustFromRows([][]float64{{lambda, 0}})},
		Down:    []*mat.Matrix{nil},
		RepDown: mat.MustFromRows([][]float64{{0}, {s}}),
	}
	return p, b
}

func TestMM1RMatrix(t *testing.T) {
	p, _ := mm1(1, 2)
	r, err := p.R()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.At(0, 0)-0.5) > 1e-10 {
		t.Errorf("R = %v, want 0.5 (= ρ)", r.At(0, 0))
	}
}

func TestMM1Stationary(t *testing.T) {
	const lambda, mu = 1.0, 2.5
	rho := lambda / mu
	p, b := mm1(lambda, mu)
	sol, err := Solve(b, p)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= 10; j++ {
		want := (1 - rho) * math.Pow(rho, float64(j))
		if got := sol.LevelMass(j); math.Abs(got-want) > 1e-10 {
			t.Errorf("π_%d = %v, want %v", j, got, want)
		}
	}
	wantMean := rho / (1 - rho)
	if got := sol.MeanLevel(); math.Abs(got-wantMean) > 1e-9 {
		t.Errorf("E[N] = %v, want %v", got, wantMean)
	}
	if mass := sol.TotalMass(); math.Abs(mass-1) > 1e-10 {
		t.Errorf("total mass = %v", mass)
	}
}

func TestME21MatchesPollaczekKhinchine(t *testing.T) {
	// M/G/1 with Erlang-2 service: E[N] = ρ + ρ²(1+cs²)/(2(1−ρ)), cs² = 1/2.
	tests := []struct{ lambda, mu float64 }{
		{0.3, 1}, {0.6, 1}, {0.9, 1}, {1.5, 2},
	}
	for _, tt := range tests {
		rho := tt.lambda / tt.mu
		p, b := me2q(tt.lambda, tt.mu)
		sol, err := Solve(b, p)
		if err != nil {
			t.Fatalf("λ=%v: %v", tt.lambda, err)
		}
		want := rho + rho*rho*1.5/(2*(1-rho))
		if got := sol.MeanLevel(); math.Abs(got-want) > 1e-8 {
			t.Errorf("λ=%v µ=%v: E[N] = %v, want %v (P-K)", tt.lambda, tt.mu, got, want)
		}
	}
}

func TestDriftMM1(t *testing.T) {
	p, _ := mm1(1, 2)
	up, down, err := p.Drift()
	if err != nil {
		t.Fatal(err)
	}
	if up != 1 || down != 2 {
		t.Errorf("drift = (%v, %v), want (1, 2)", up, down)
	}
	stable, err := p.Stable()
	if err != nil || !stable {
		t.Errorf("stable = %v, %v; want true, nil", stable, err)
	}
}

func TestUnstableRejected(t *testing.T) {
	p, b := mm1(2, 1)
	if _, err := p.R(); !errors.Is(err, ErrUnstable) {
		t.Errorf("R() error = %v, want ErrUnstable", err)
	}
	if _, err := Solve(b, p); !errors.Is(err, ErrUnstable) {
		t.Errorf("Solve error = %v, want ErrUnstable", err)
	}
}

func TestCriticallyLoadedRejected(t *testing.T) {
	p, _ := mm1(1, 1)
	if _, err := p.R(); !errors.Is(err, ErrUnstable) {
		t.Errorf("ρ=1 accepted: %v", err)
	}
}

func TestGStochastic(t *testing.T) {
	p, _ := me2q(0.5, 1)
	g, err := p.G()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range g.RowSums() {
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("G row %d sums to %v, want 1 (recurrent)", i, s)
		}
	}
}

func TestRQuadraticResidual(t *testing.T) {
	p, _ := me2q(0.7, 1)
	r, err := p.R()
	if err != nil {
		t.Fatal(err)
	}
	res := p.A0().AddMat(r.Mul(p.A1())).AddInPlace(r.Mul(r).Mul(p.A2()))
	if res.MaxAbs() > 1e-10 {
		t.Errorf("A0 + RA1 + R²A2 residual = %v", res.MaxAbs())
	}
}

func TestRMatchesFunctionalIteration(t *testing.T) {
	p, _ := me2q(0.8, 1)
	rLR, err := p.R()
	if err != nil {
		t.Fatal(err)
	}
	rFI, err := p.RByIteration(1e-13, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rLR.Equalf(rFI, 1e-8) {
		t.Errorf("logarithmic reduction and functional iteration disagree:\n%v\nvs\n%v", rLR, rFI)
	}
}

func TestNewValidation(t *testing.T) {
	ok := mat.MustFromRows([][]float64{{1}})
	tests := []struct {
		name       string
		a0, a1, a2 *mat.Matrix
	}{
		{"shape", mat.New(2, 2), mat.New(1, 1), mat.New(1, 1)},
		{"negative A0", mat.MustFromRows([][]float64{{-1}}), mat.MustFromRows([][]float64{{0}}), ok},
		{"negative A2", ok, mat.MustFromRows([][]float64{{0}}), mat.MustFromRows([][]float64{{-1}})},
		{"bad row sums", ok, mat.MustFromRows([][]float64{{-5}}), ok},
		{"nan", mat.MustFromRows([][]float64{{math.NaN()}}), ok, ok},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.a0, tt.a1, tt.a2); err == nil {
				t.Error("invalid blocks accepted")
			}
		})
	}
}

func TestBoundaryValidation(t *testing.T) {
	p, good := mm1(1, 2)
	if _, err := Solve(Boundary{}, p); err == nil {
		t.Error("empty boundary accepted")
	}
	bad := good
	bad.Up = []*mat.Matrix{mat.New(1, 3)}
	if _, err := Solve(bad, p); err == nil {
		t.Error("mismatched Up accepted")
	}
	bad = good
	bad.Down = nil
	if _, err := Solve(bad, p); err == nil {
		t.Error("missing Down slice accepted")
	}
	bad = good
	bad.RepDown = mat.New(3, 3)
	if _, err := Solve(bad, p); err == nil {
		t.Error("mismatched RepDown accepted")
	}
	// Implicit RepDown with a wrong-size top boundary level must fail.
	p2, _ := me2q(0.5, 1)
	b2 := Boundary{
		Local: []*mat.Matrix{mat.MustFromRows([][]float64{{-0.5}})},
		Up:    []*mat.Matrix{mat.MustFromRows([][]float64{{0.5, 0}})},
		Down:  []*mat.Matrix{nil},
	}
	if _, err := Solve(b2, p2); err == nil {
		t.Error("implicit RepDown with size mismatch accepted")
	}
}

func TestLevelPiConsistency(t *testing.T) {
	p, b := me2q(0.7, 1)
	sol, err := Solve(b, p)
	if err != nil {
		t.Fatal(err)
	}
	// π_{j+1} = π_j·R for repeating levels.
	for j := sol.FirstRepLevel(); j < sol.FirstRepLevel()+5; j++ {
		got := sol.LevelPi(j + 1)
		want := sol.R.Transpose().MulVec(sol.LevelPi(j))
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("level %d: π·R mismatch at phase %d", j+1, i)
			}
		}
	}
}

func TestTailSums(t *testing.T) {
	p, b := mm1(1, 2)
	sol, err := Solve(b, p)
	if err != nil {
		t.Fatal(err)
	}
	// Compare closed-form tail sums with brute-force accumulation.
	var bruteMass, bruteWeighted, bruteSquare float64
	for k := 0; k < 200; k++ {
		m := sol.LevelMass(sol.FirstRepLevel() + k)
		bruteMass += m
		bruteWeighted += float64(k) * m
		bruteSquare += float64(k) * float64(k) * m
	}
	if got := mat.Sum(sol.TailSum()); math.Abs(got-bruteMass) > 1e-10 {
		t.Errorf("TailSum = %v, brute force %v", got, bruteMass)
	}
	if got := mat.Sum(sol.TailWeightedSum()); math.Abs(got-bruteWeighted) > 1e-10 {
		t.Errorf("TailWeightedSum = %v, brute force %v", got, bruteWeighted)
	}
	if got := mat.Sum(sol.TailSquareWeightedSum()); math.Abs(got-bruteSquare) > 1e-9 {
		t.Errorf("TailSquareWeightedSum = %v, brute force %v", got, bruteSquare)
	}
}

func TestSecondMomentMM1(t *testing.T) {
	// M/M/1: E[N²] = ρ(1+ρ)/(1−ρ)².
	const lambda, mu = 1.0, 2.5
	rho := lambda / mu
	p, b := mm1(lambda, mu)
	sol, err := Solve(b, p)
	if err != nil {
		t.Fatal(err)
	}
	// E[N²] over levels: boundary (level 0 contributes 0) + tail with
	// level = first + k = 1 + k, so N² = 1 + 2k + k².
	first := float64(sol.FirstRepLevel())
	m2 := first*first*mat.Sum(sol.TailSum()) +
		2*first*mat.Sum(sol.TailWeightedSum()) +
		mat.Sum(sol.TailSquareWeightedSum())
	want := rho * (1 + rho) / ((1 - rho) * (1 - rho))
	if math.Abs(m2-want) > 1e-9*want {
		t.Errorf("E[N²] = %v, want %v", m2, want)
	}
}

// randomStableQBD builds a random QBD with a reflecting boundary
// (Local[0] = A1+A2), retrying until the drift condition holds.
func randomStableQBD(rng *rand.Rand, m int) (*Process, Boundary, bool) {
	for attempt := 0; attempt < 20; attempt++ {
		a0 := mat.New(m, m)
		a1 := mat.New(m, m)
		a2 := mat.New(m, m)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				a0.Set(i, j, rng.Float64()*0.5)
				a2.Set(i, j, rng.Float64()+0.5)
				if i != j {
					a1.Set(i, j, rng.Float64())
				}
			}
		}
		for i := 0; i < m; i++ {
			row := -(mat.Sum(a0.Row(i)) + mat.Sum(a2.Row(i)) + mat.Sum(a1.Row(i)))
			a1.Set(i, i, row)
		}
		p, err := New(a0, a1, a2)
		if err != nil {
			continue
		}
		if ok, err := p.Stable(); err != nil || !ok {
			continue
		}
		b := Boundary{
			Local: []*mat.Matrix{a1.AddMat(a2)},
			Up:    []*mat.Matrix{a0.Clone()},
			Down:  []*mat.Matrix{nil},
		}
		return p, b, true
	}
	return nil, Boundary{}, false
}

func TestQuickRandomStableQBD(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		m := int(szRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))
		p, b, ok := randomStableQBD(rng, m)
		if !ok {
			return true // could not build a stable instance; skip
		}
		r, err := p.R()
		if err != nil {
			return false
		}
		if sp := mat.SpectralRadius(r, 1e-10, 5000); sp >= 1 {
			return false
		}
		res := p.A0().AddMat(r.Mul(p.A1())).AddInPlace(r.Mul(r).Mul(p.A2()))
		if res.MaxAbs() > 1e-8 {
			return false
		}
		sol, err := Solve(b, p)
		if err != nil {
			return false
		}
		if math.Abs(sol.TotalMass()-1) > 1e-8 {
			return false
		}
		// Balance residual at a mid-tail level: π_{j−1}A0 + π_jA1 + π_{j+1}A2 = 0.
		j := sol.FirstRepLevel() + 2
		lhs := make([]float64, m)
		for i := range lhs {
			lhs[i] = 0
		}
		add := func(v []float64, a *mat.Matrix) {
			r := a.Transpose().MulVec(v)
			for i := range lhs {
				lhs[i] += r[i]
			}
		}
		add(sol.LevelPi(j-1), p.A0())
		add(sol.LevelPi(j), p.A1())
		add(sol.LevelPi(j+1), p.A2())
		for _, v := range lhs {
			if math.Abs(v) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRLogReduction(b *testing.B) {
	p, _ := me2q(0.8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.R(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveME21(b *testing.B) {
	p, bd := me2q(0.8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(bd, p); err != nil {
			b.Fatal(err)
		}
	}
}
