package serve

import (
	"fmt"
	"testing"
	"unsafe"

	"bgperf/internal/core"
)

func metricsN(n int) core.Metrics { return core.Metrics{QLenFG: float64(n)} }

func TestCacheEntryBound(t *testing.T) {
	c := newCache[core.Metrics](3, 0, nil)
	for i := 0; i < 5; i++ {
		c.Add(fmt.Sprintf("k%d", i), metricsN(i))
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); ok {
			t.Errorf("k%d should have been evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		m, ok := c.Get(fmt.Sprintf("k%d", i))
		if !ok || m.QLenFG != float64(i) {
			t.Errorf("k%d missing or wrong: %v %v", i, m.QLenFG, ok)
		}
	}
}

func TestCacheRecency(t *testing.T) {
	c := newCache[core.Metrics](2, 0, nil)
	c.Add("a", metricsN(1))
	c.Add("b", metricsN(2))
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Add("c", metricsN(3))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a was refreshed and must survive")
	}
}

func TestCacheByteBudget(t *testing.T) {
	per := int64(len("somekey-0")) + int64(unsafe.Sizeof(core.Metrics{})) + entryOverhead
	c := newCache[core.Metrics](1000, 3*per, nil)
	for i := 0; i < 5; i++ {
		c.Add(fmt.Sprintf("somekey-%d", i), metricsN(i))
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3 under the byte budget", c.Len())
	}
	if c.Bytes() > 3*per {
		t.Fatalf("bytes = %d exceeds budget %d", c.Bytes(), 3*per)
	}
}

// TestCacheByteBudgetKeepsOne pins that a budget smaller than a single
// entry still caches the most recent entry rather than thrashing to empty —
// the eviction loop never removes the entry it just inserted.
func TestCacheByteBudgetKeepsOne(t *testing.T) {
	c := newCache[core.Metrics](1000, 1, nil)
	c.Add("a", metricsN(1))
	if c.Len() != 1 {
		t.Fatalf("len = %d, want the just-inserted entry to survive", c.Len())
	}
	c.Add("b", metricsN(2))
	if c.Len() != 1 {
		t.Fatalf("len = %d, want exactly one entry under a tiny budget", c.Len())
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("the newer entry should be the survivor")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newCache[core.Metrics](0, 0, nil)
	c.Add("a", metricsN(1))
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache must always miss")
	}
	if c.Len() != 0 {
		t.Fatalf("disabled cache holds %d entries", c.Len())
	}
}

func TestCacheReAddRefreshes(t *testing.T) {
	c := newCache[core.Metrics](2, 0, nil)
	c.Add("a", metricsN(1))
	c.Add("b", metricsN(2))
	c.Add("a", metricsN(1)) // refresh, not duplicate
	if c.Len() != 2 {
		t.Fatalf("re-adding duplicated the entry: len %d", c.Len())
	}
	c.Add("c", metricsN(3))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("refreshed entry evicted before the stale one")
	}
}
