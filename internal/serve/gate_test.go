package serve

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestAdmissionGateSheds pins the admission controller: with one slot and
// a one-deep queue, a third concurrent request is shed with 503 and a
// Retry-After hint, the shed counter moves, and the admitted requests
// still answer normally once the slot frees up.
func TestAdmissionGateSheds(t *testing.T) {
	s := newTest(t, Options{MaxInFlight: 1, MaxQueue: 1})

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.solveBarrier = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	// Request A: takes the slot and parks in the solver barrier.
	aDone := make(chan *int, 1)
	go func() {
		rec := postJSON(t, s.Handler(), "/v1/solve", fig5Body)
		aDone <- &rec.Code
	}()
	<-entered

	// Request B (a different point, so it cannot coalesce with A): fills
	// the wait queue.
	bDone := make(chan *int, 1)
	go func() {
		rec := postJSON(t, s.Handler(), "/v1/solve",
			`{"workload":"email","utilization":0.2,"bgProb":0.4}`)
		bDone <- &rec.Code
	}()
	waitFor(t, func() bool { return s.Stats().Queued == 1 })

	// Request C: slot busy, queue full — shed.
	rec := postJSON(t, s.Handler(), "/v1/solve",
		`{"workload":"email","utilization":0.2,"bgProb":0.5}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("third request got %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	var res PointResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil || res.Error == nil {
		t.Fatalf("shed response not the uniform error envelope: %s (%v)", rec.Body, err)
	}
	if res.Error.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed error code = %d, want 503", res.Error.Code)
	}
	if got := s.Stats().Shed; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// Free the slot: A and the queued B both complete successfully.
	close(release)
	for name, ch := range map[string]chan *int{"A": aDone, "B": bDone} {
		select {
		case code := <-ch:
			if *code != http.StatusOK {
				t.Fatalf("request %s finished with %d, want 200", name, *code)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("request %s never completed", name)
		}
	}
	if q := s.Stats().Queued; q != 0 {
		t.Fatalf("queue gauge = %d after drain, want 0", q)
	}
}

// TestGateDisabledByDefault pins the default: without MaxInFlight there is
// no gate object at all, and requests are never shed.
func TestGateDisabledByDefault(t *testing.T) {
	s := newTest(t, Options{})
	if s.gate != nil {
		t.Fatal("zero Options built an admission gate")
	}
	if rec := postJSON(t, s.Handler(), "/v1/solve", fig5Body); rec.Code != http.StatusOK {
		t.Fatalf("ungated solve got %d, want 200", rec.Code)
	}
}

// waitFor polls cond for a bounded time; the deadline failure names the
// caller's line.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
