package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"

	"bgperf/internal/par"
)

// streamWindow bounds how far the solvers may run ahead of the slowest
// unemitted point: at most this many completed-but-unwritten results are
// buffered before fast workers block. The window keeps memory flat on a
// 10k-point grid while still letting the pool stay busy across one slow
// point.
const streamWindow = 64

// wantsNDJSON reports whether the request asked for a streamed sweep.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// streamSweep answers a sweep as NDJSON: one PointResult per line, in
// request order, each line written (and flushed) as soon as its point —
// and every point before it — has finished. Lines carry exactly the
// object that the batch response holds at the same index, so a client
// concatenating the lines reconstructs SweepResponse.Results verbatim.
//
// Ordering without head-of-line memory blowup: workers park each finished
// result in its slot and signal a per-index channel; a single emitter
// walks the indices in order. A window semaphore bounds the run-ahead.
// This cannot deadlock: par claims indices in ascending order, so
// whenever the emitter is waiting on index i, every held window slot
// belongs to an index < i whose result is already (or about to be)
// signalled, and slots drain as the emitter advances.
func (s *Server) streamSweep(ctx context.Context, w http.ResponseWriter, req SweepRequest, local bool) {
	s.stats.Stream()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	n := len(req.Points)
	results := make([]PointResult, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	window := make(chan struct{}, streamWindow)

	// The solver fan-out runs concurrently with the emitter below; its
	// cancellation rides the request context, so a disconnected client
	// (or expired deadline) stops the remaining solves.
	go par.ForCtx(ctx, s.workers, n, func(i int) error {
		select {
		case window <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
		res, status := s.solvePoint(ctx, req.Points[i], local)
		finishResult(&res, status)
		results[i] = res
		close(done[i])
		return nil
	})

	enc := json.NewEncoder(w) // compact: one object per line
	for i := 0; i < n; i++ {
		select {
		case <-done[i]:
		case <-ctx.Done():
			return // client gone or deadline hit: stop emitting
		}
		if err := enc.Encode(results[i]); err != nil {
			return // write failure: client disconnected mid-line
		}
		<-window
		if flusher != nil {
			flusher.Flush()
		}
	}
}
