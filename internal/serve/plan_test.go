package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bgperf/internal/core"
	"bgperf/internal/plan"
	"bgperf/internal/trace"
	"bgperf/internal/workload"
)

// planBody builds a /v1/optimize body for the Figure 5 base point with the
// given SLO and variable.
func planBody(t *testing.T, slo plan.SLO, v string) string {
	t.Helper()
	req := OptimizeRequest{
		SolveRequest: SolveRequest{Workload: "email", Utilization: 0.2, BGProb: 0.3},
		SLO:          slo,
		Var:          v,
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// fig5SLO computes a satisfiable-but-binding SLO for the Figure 5 base
// point: the foreground queue length at p = 0.5, so the frontier lands near
// 0.5 regardless of the workload's absolute scale.
func fig5SLO(t *testing.T) plan.SLO {
	t.Helper()
	req := SolveRequest{Workload: "email", Utilization: 0.2, BGProb: 0.5}
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return plan.SLO{QLenFG: sol.Metrics.QLenFG}
}

// TestOptimizePlanCacheSkipsPlanner pins the plan-cache contract: the
// second identical optimize request is answered from the plan cache without
// re-running the inverse search.
func TestOptimizePlanCacheSkipsPlanner(t *testing.T) {
	s := newTest(t, Options{})
	body := planBody(t, fig5SLO(t), "p")

	first := postJSON(t, s.Handler(), "/v1/optimize", body)
	if first.Code != http.StatusOK {
		t.Fatalf("first optimize: %d %s", first.Code, first.Body)
	}
	var r1 PlanPointResult
	json.Unmarshal(first.Body.Bytes(), &r1)
	if r1.Cached || r1.Plan == nil || r1.Key == "" {
		t.Fatalf("first response should be an uncached plan with a key: %s", first.Body)
	}
	if r1.Plan.Var != "p" || r1.Plan.Value <= 0 || r1.Plan.Value > 1 {
		t.Fatalf("implausible frontier: %+v", r1.Plan)
	}

	second := postJSON(t, s.Handler(), "/v1/optimize", body)
	if second.Code != http.StatusOK {
		t.Fatalf("second optimize: %d %s", second.Code, second.Body)
	}
	var r2 PlanPointResult
	json.Unmarshal(second.Body.Bytes(), &r2)
	if !r2.Cached || r2.Key != r1.Key {
		t.Fatalf("second identical request not served from the plan cache: %s", second.Body)
	}
	b1, _ := json.Marshal(r1.Plan)
	b2, _ := json.Marshal(r2.Plan)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached plan differs from computed plan:\n%s\n%s", b1, b2)
	}
	st := s.Stats()
	if st.Plans != 1 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("serve counters: %+v, want 1 plan / 1 hit / 1 miss", st)
	}
	if st.Solves != 0 {
		t.Fatalf("plan internal solves leaked into the request-level Solves counter: %+v", st)
	}
}

// TestOptimizeMatchesDirectPlan pins the CLI/daemon parity acceptance
// criterion: the daemon's "plan" object is byte-identical to marshaling the
// result of the same plan.Maximize call — the same JSON `bgperf plan -json`
// prints.
func TestOptimizeMatchesDirectPlan(t *testing.T) {
	slo := fig5SLO(t)
	req := SolveRequest{Workload: "email", Utilization: 0.2, BGProb: 0.3}
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := plan.Maximize(cfg, slo, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}

	s := newTest(t, Options{})
	rec := postJSON(t, s.Handler(), "/v1/optimize", planBody(t, slo, "p"))
	if rec.Code != http.StatusOK {
		t.Fatalf("optimize: %d %s", rec.Code, rec.Body)
	}
	var res struct {
		Plan json.RawMessage `json:"plan"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, res.Plan); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compact.Bytes(), want) {
		t.Fatalf("daemon plan differs from direct plan:\ndaemon %s\ndirect %s", compact.Bytes(), want)
	}
}

func TestOptimizeErrors(t *testing.T) {
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantField  string
		wantInMsg  string
	}{
		{
			name:       "malformed JSON",
			body:       `{"workload":`,
			wantStatus: http.StatusBadRequest,
			wantField:  "body",
		},
		{
			name:       "unknown request field",
			body:       `{"workload":"email","slo":{"qlenFG":1},"bogus":1}`,
			wantStatus: http.StatusBadRequest,
			wantField:  "body",
		},
		{
			name:       "no SLO bound",
			body:       `{"workload":"email","utilization":0.2}`,
			wantStatus: http.StatusBadRequest,
			wantField:  "SLO",
		},
		{
			name:       "unknown variable",
			body:       `{"workload":"email","utilization":0.2,"slo":{"qlenFG":10},"var":"q"}`,
			wantStatus: http.StatusBadRequest,
			wantField:  "var",
		},
		{
			name:       "negative tolerance",
			body:       `{"workload":"email","utilization":0.2,"slo":{"qlenFG":10},"tolerance":-1}`,
			wantStatus: http.StatusBadRequest,
			wantField:  "tolerance",
		},
		{
			name: "infeasible SLO",
			// The Email workload's queue length at 20% load is far above 1e-6
			// even with background work disabled.
			body:       `{"workload":"email","utilization":0.2,"slo":{"qlenFG":1e-6}}`,
			wantStatus: http.StatusUnprocessableEntity,
			wantInMsg:  "infeasible",
		},
		{
			name:       "unstable foreground load",
			body:       `{"workload":"email","utilization":1.05,"slo":{"qlenFG":10}}`,
			wantStatus: http.StatusUnprocessableEntity,
			wantInMsg:  "saturates",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newTest(t, Options{})
			rec := postJSON(t, s.Handler(), "/v1/optimize", tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body %s", rec.Code, tc.wantStatus, rec.Body)
			}
			var res PlanPointResult
			if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
				t.Fatalf("response not JSON: %v", err)
			}
			if res.Error == nil {
				t.Fatalf("want error body, got %s", rec.Body)
			}
			if res.Error.Code != tc.wantStatus {
				t.Errorf("error.code = %d, want %d", res.Error.Code, tc.wantStatus)
			}
			if tc.wantField != "" && res.Error.Field != tc.wantField {
				t.Errorf("error.field = %q, want %q (message %q)", res.Error.Field, tc.wantField, res.Error.Message)
			}
			if tc.wantInMsg != "" && !strings.Contains(res.Error.Message, tc.wantInMsg) {
				t.Errorf("error.message %q does not mention %q", res.Error.Message, tc.wantInMsg)
			}
		})
	}
}

// emailNDJSON samples an NDJSON trace from the Email workload, long enough
// for the MMPP(2) fit.
func emailNDJSON(t *testing.T, n int) string {
	t.Helper()
	m, err := workload.Email()
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(m, n, 1)
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestPlanFromTrace(t *testing.T) {
	s := newTest(t, Options{})
	body := emailNDJSON(t, 2000)
	// A huge queue-length bound is satisfiable at any p, so the plan
	// deterministically reports the domain cap.
	path := "/v1/plan-from-trace?qlenFG=1e9&utilization=0.3&var=p"
	rec := postJSON(t, s.Handler(), path, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("plan-from-trace: %d %s", rec.Code, rec.Body)
	}
	var res PlanPointResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Error != nil {
		t.Fatalf("want a plan, got %s", rec.Body)
	}
	if !res.Plan.AtCap || res.Plan.Value != 1 {
		t.Fatalf("loose SLO should cap at p = 1: %+v", res.Plan)
	}
	if res.Fit == nil || res.Fit.Samples != 2000 || res.Fit.Rate <= 0 {
		t.Fatalf("fit summary missing or implausible: %+v", res.Fit)
	}

	// The identical upload plans to the identical cache key: second request
	// is a plan-cache hit (the fit re-runs, the search does not).
	rec = postJSON(t, s.Handler(), path, body)
	var res2 PlanPointResult
	json.Unmarshal(rec.Body.Bytes(), &res2)
	if !res2.Cached || res2.Key != res.Key {
		t.Fatalf("identical trace upload missed the plan cache: %s", rec.Body)
	}
	if st := s.Stats(); st.Plans != 1 {
		t.Fatalf("plans = %d, want 1", st.Plans)
	}
}

// TestPlanFromTraceScenarioParams pins the PR 10 query-parameter surface:
// the scenario fields (modFactor, bgAdmit, fgThreshold, deadlineRate) and
// var=mod must be accepted on /v1/plan-from-trace — previously they would
// have been rejected as unknown parameters.
func TestPlanFromTraceScenarioParams(t *testing.T) {
	s := newTest(t, Options{})
	body := emailNDJSON(t, 2000)
	path := "/v1/plan-from-trace?qlenFG=1e9&utilization=0.3&var=mod" +
		"&bgAdmit=deadline&deadlineRate=0.4"
	rec := postJSON(t, s.Handler(), path, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("plan-from-trace with scenario params: %d %s", rec.Code, rec.Body)
	}
	var res PlanPointResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Error != nil {
		t.Fatalf("want a plan, got %s", rec.Body)
	}
	// The loose SLO makes every stable φ feasible, so the downward search
	// lands at the stability boundary (or the domain floor): a genuine
	// fraction of 1, never above it.
	if res.Plan.Value <= 0 || res.Plan.Value > 1 {
		t.Fatalf("mod frontier out of (0, 1]: %+v", res.Plan)
	}
	if res.Plan.Var != "mod" {
		t.Fatalf("plan var = %q, want mod", res.Plan.Var)
	}
}

func TestPlanFromTraceErrors(t *testing.T) {
	s := newTest(t, Options{})
	cases := []struct {
		name       string
		path       string
		body       string
		wantStatus int
		wantInMsg  string
	}{
		{
			name:       "malformed trace",
			path:       "/v1/plan-from-trace?qlenFG=10",
			body:       "not ndjson\n",
			wantStatus: http.StatusBadRequest,
			wantInMsg:  "malformed trace",
		},
		{
			name:       "trace too short to fit",
			path:       "/v1/plan-from-trace?qlenFG=10",
			body:       emailNDJSON(t, 100),
			wantStatus: http.StatusBadRequest,
			wantInMsg:  "samples",
		},
		{
			name:       "unknown query parameter",
			path:       "/v1/plan-from-trace?qlenFG=10&bogus=1",
			body:       emailNDJSON(t, 2000),
			wantStatus: http.StatusBadRequest,
			wantInMsg:  "unknown query parameter",
		},
		{
			name:       "bad numeric parameter",
			path:       "/v1/plan-from-trace?qlenFG=ten",
			body:       emailNDJSON(t, 2000),
			wantStatus: http.StatusBadRequest,
			wantInMsg:  "bad numeric parameter",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postJSON(t, s.Handler(), tc.path, tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body %s", rec.Code, tc.wantStatus, rec.Body)
			}
			var res PlanPointResult
			if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
				t.Fatal(err)
			}
			if res.Error == nil || !strings.Contains(res.Error.Message, tc.wantInMsg) {
				t.Fatalf("error %+v does not mention %q", res.Error, tc.wantInMsg)
			}
		})
	}
}

// TestPlanEndpointsDrainAndMethod pins that the new endpoints share the
// serving stack's draining gate and method check.
func TestPlanEndpointsDrainAndMethod(t *testing.T) {
	s := newTest(t, Options{})
	for _, path := range []string{"/v1/optimize", "/v1/plan-from-trace"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %d, want 405", path, rec.Code)
		}
	}
	s.StartDrain()
	for _, path := range []string{"/v1/optimize", "/v1/plan-from-trace"} {
		rec := postJSON(t, s.Handler(), path, "{}")
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("draining POST %s = %d, want 503", path, rec.Code)
		}
	}
	if st := s.Stats(); st.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", st.Rejected)
	}
}

// TestOptimizeCacheKeyNormalizesBaseVariable pins that two optimize
// requests differing only in the base value of the searched variable share
// one plan cache entry — the search overrides that value anyway.
func TestOptimizeCacheKeyNormalizesBaseVariable(t *testing.T) {
	s := newTest(t, Options{})
	slo := fig5SLO(t)
	sloJSON, _ := json.Marshal(slo)
	b1 := fmt.Sprintf(`{"workload":"email","utilization":0.2,"bgProb":0.1,"slo":%s}`, sloJSON)
	b2 := fmt.Sprintf(`{"workload":"email","utilization":0.2,"bgProb":0.9,"slo":%s}`, sloJSON)

	r1 := postJSON(t, s.Handler(), "/v1/optimize", b1)
	r2 := postJSON(t, s.Handler(), "/v1/optimize", b2)
	if r1.Code != http.StatusOK || r2.Code != http.StatusOK {
		t.Fatalf("optimize: %d / %d", r1.Code, r2.Code)
	}
	var p1, p2 PlanPointResult
	json.Unmarshal(r1.Body.Bytes(), &p1)
	json.Unmarshal(r2.Body.Bytes(), &p2)
	if p1.Key != p2.Key {
		t.Fatalf("base-p value fragmented the plan cache: %s vs %s", p1.Key, p2.Key)
	}
	if !p2.Cached {
		t.Fatal("second request should hit the plan cache despite a different base p")
	}
}
